package e9patch

import (
	"context"
	"sort"

	"e9patch/internal/e9err"
	"e9patch/internal/x86"
)

// Stream is an incremental rewrite session: the binary is parsed and
// disassembled once, patch selections arrive progressively — the
// JSON-RPC backend feeds one Select or SelectAddrs call per protocol
// message — and Finish runs the decision and emit phases over the
// accumulated union. The output is byte-identical to a single-shot
// Rewrite whose selector matches the same locations.
//
// The input slice is never written: callers may hand a Stream the
// read-only mmap view from elf64.OpenInput, so a browser-class binary
// is paged in by the kernel on demand and never occupies the Go heap.
// A Stream is not safe for concurrent use; drive it from one goroutine
// (the protocol layer is sequential by construction).
type Stream struct {
	cfg      Config
	input    []byte
	st       *pipelineState
	insts    int // cached count: st is released during Finish
	badBytes int
	seen     map[int]struct{}
	selected []int
	diag     []Selector // replayed for coordinate diagnostics when nothing matched
	closed   bool
}

// NewStream opens an incremental session over input. Unlike Rewrite,
// cfg.Select is optional here: when set it contributes the initial
// selection, and every later Select/SelectAddrs adds to the union.
// Parsing and disassembly happen now; all Limits except the per-site
// cap are enforced here too.
func NewStream(ctx context.Context, input []byte, cfg Config) (_ *Stream, err error) {
	defer e9err.Recover("stream", &err)
	st, err := openPipeline(ctx, input, &cfg, false)
	if err != nil {
		return nil, err
	}
	s := &Stream{
		cfg: cfg, input: input, st: st,
		insts: len(st.insts), badBytes: st.badBytes,
		seen: make(map[int]struct{}),
	}
	if cfg.Select != nil {
		if _, err := s.Select(cfg.Select); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Insts returns the number of disassembled instructions.
func (s *Stream) Insts() int { return s.insts }

// BadBytes returns the count of undecodable bytes (offsets, for the
// superset modes) the recovery frontend skipped.
func (s *Stream) BadBytes() int { return s.badBytes }

// Selected returns the number of distinct patch locations accumulated
// so far.
func (s *Stream) Selected() int { return len(s.selected) }

// guard rejects use after Finish.
func (s *Stream) guard() error {
	if s.closed {
		return e9err.Malformed("stream", "e9patch: stream session already finished")
	}
	return nil
}

// add merges newly selected instruction indices into the session,
// returning how many were new. The patch-site limit is enforced
// incrementally so a hostile stream fails at the message that crosses
// the cap instead of after buffering an unbounded selection.
func (s *Stream) add(idxs []int) (int, error) {
	added := 0
	for _, i := range idxs {
		if _, dup := s.seen[i]; dup {
			continue
		}
		s.seen[i] = struct{}{}
		s.selected = append(s.selected, i)
		added++
	}
	if lim := s.cfg.Limits; lim.MaxPatchSites > 0 && len(s.selected) > lim.MaxPatchSites {
		return added, e9err.Limit("match", e9err.ReasonTooManySites,
			"e9patch: stream selected %d patch sites, limit is %d", len(s.selected), lim.MaxPatchSites)
	}
	return added, nil
}

// Select runs a selector over the disassembly and merges its matches
// into the session, returning the number of locations that were new.
func (s *Stream) Select(sel Selector) (_ int, err error) {
	defer e9err.Recover("stream", &err)
	if err := s.guard(); err != nil {
		return 0, err
	}
	if sel == nil {
		return 0, e9err.Malformed("stream", "e9patch: nil selector")
	}
	s.diag = append(s.diag, sel)
	return s.add(parallelSelect(sel, s.st.insts, s.st.width, s.cfg.Pool))
}

// SelectAddrs merges the instructions starting at exactly the given
// runtime virtual addresses (PIEBase included for PIE binaries) —
// the streaming counterpart of SelectAddresses. Each address is a
// binary search over the address-ascending disassembly, so per-message
// cost is O(k log n) rather than a full instruction sweep; addresses
// that hit no instruction boundary are silently unmatched, surfacing
// only through the return count and the empty-selection diagnostics.
func (s *Stream) SelectAddrs(addrs ...uint64) (int, error) {
	if err := s.guard(); err != nil {
		return 0, err
	}
	insts := s.st.insts
	idxs := make([]int, 0, len(addrs))
	for _, a := range addrs {
		i := sort.Search(len(insts), func(i int) bool { return insts[i].Addr >= a })
		if i < len(insts) && insts[i].Addr == a {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) < len(addrs) {
		// Remember the misses so Finish can diagnose the classic
		// coordinate mix-up if the whole session matched nothing.
		missed := append([]uint64(nil), addrs...)
		s.diag = append(s.diag, func(insts []x86.Inst) []int {
			var out []int
			for _, a := range missed {
				i := sort.Search(len(insts), func(i int) bool { return insts[i].Addr >= a })
				if i < len(insts) && insts[i].Addr == a {
					out = append(out, i)
				}
			}
			return out
		})
	}
	return s.add(idxs)
}

// Reserve adds [lo, hi) to the virtual-address ranges trampolines must
// avoid, like Config.ReserveVA. Reservations take effect at Finish, so
// they may arrive any time before it.
func (s *Stream) Reserve(lo, hi uint64) error {
	if err := s.guard(); err != nil {
		return err
	}
	if hi <= lo {
		return e9err.Malformed("stream", "e9patch: empty reservation [%#x,%#x)", lo, hi)
	}
	s.cfg.ReserveVA = append(s.cfg.ReserveVA, [2]uint64{lo, hi})
	return nil
}

// Finish runs the remaining decision phases (injection preparation,
// address-space reservation, S1 patching) over the accumulated
// selection and emits the rewritten binary via the single-allocation
// compose path. The session cannot be used afterwards.
//
// Unlike the plan/apply pipeline, a session has no artifact to keep:
// once patching has decided everything, the disassembly, the selection
// bookkeeping and the rewriter's decision state are released before the
// output is materialized (SkipPlan above means there is no per-location
// record either), so the emit-phase peak holds only the patched text,
// the trampolines and the output image. On browser-class inputs that —
// plus the mmap'd input staying off the heap — is what keeps the
// streaming session's peak memory well under the one-shot rewrite's.
func (s *Stream) Finish(ctx context.Context) (_ *Result, err error) {
	defer e9err.Recover("stream", &err)
	if err := s.guard(); err != nil {
		return nil, err
	}
	s.closed = true
	sort.Ints(s.selected)

	var warnings []string
	if len(s.selected) == 0 {
		for _, sel := range s.diag {
			warnings = append(warnings, diagnoseSelection(sel, s.st.insts, nil, s.st.bias)...)
		}
	}

	rw, inject, err := finishPlanPhase(ctx, s.st, &s.cfg, s.selected, true)
	if err != nil {
		return nil, err
	}

	// Pull everything the emit phase and the Result need out of the
	// session state, then drop the rest — most importantly the
	// instruction array and the rewriter's working copies.
	f, bias, textOff := s.st.f, s.st.bias, s.st.textOff
	mode, sstats := s.st.mode, s.st.sstats
	code, trs, sigTab := rw.Code(), rw.Trampolines(), rw.SigTab()
	stats, locs := rw.Stats(), rw.Results()
	s.st, s.seen, s.selected, s.diag = nil, nil, nil, nil
	rw = nil

	out, gres, err := materializeCompose(s.input, f, bias, textOff,
		code, trs, sigTab, s.cfg.Granularity, inject)
	if err != nil {
		return nil, err
	}
	return &Result{
		Output:        out,
		Stats:         stats,
		Group:         gres.Stats,
		Mappings:      gres.Stats.Mappings,
		InputSize:     len(s.input),
		OutputSize:    len(out),
		Insts:         s.insts,
		BadBytes:      s.badBytes,
		Disasm:        string(mode),
		Recovery:      sstats,
		Bias:          bias,
		Trampolines:   len(trs),
		InjectedBytes: injectedBytes(inject),
		Locations:     locs,
		Warnings:      warnings,
	}, nil
}
