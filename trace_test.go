package e9patch

import (
	"testing"

	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// TestTraceShowsTrampolineFlow uses the emulator's trace hook to
// verify the exact dynamic control-flow contract of a patched binary:
// execution reaches the patch site's address, transfers into the
// trampoline region (outside the original image), re-executes the
// displaced instruction's semantics there, and returns to the original
// successor.
func TestTraceShowsTrampolineFlow(t *testing.T) {
	prog, err := workload.BuildKernel("memstream", false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Rewrite(prog.ELF, Config{
		Select:    SelectHeapWrites,
		ReserveVA: workload.ReserveVA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var patchAddrs []uint64
	for _, lr := range res.Locations {
		if lr.Tactic != 0 {
			patchAddrs = append(patchAddrs, lr.Addr)
		}
	}
	if len(patchAddrs) == 0 {
		t.Fatal("nothing patched")
	}

	m := workload.NewMachine(nil)
	entry, err := Load(m, res.Output)
	if err != nil {
		t.Fatal(err)
	}
	// Image bounds: anything executed outside is trampoline code.
	imgLo, imgHi := uint64(0x400000), uint64(0x500000)

	type visit struct{ inImage bool }
	var transitions int
	var sawPatchSite, sawReturn bool
	prev := visit{inImage: true}
	siteSet := map[uint64]bool{}
	for _, a := range patchAddrs {
		siteSet[a] = true
	}
	var lastSite uint64
	m.Trace = func(inst *x86.Inst) {
		in := inst.Addr >= imgLo && inst.Addr < imgHi
		if siteSet[inst.Addr] {
			sawPatchSite = true
			lastSite = inst.Addr
		}
		if in != prev.inImage {
			transitions++
			if in && lastSite != 0 {
				// Returning from a trampoline: execution resumes at
				// an address inside the image.
				sawReturn = true
			}
		}
		prev = visit{inImage: in}
	}
	m.RIP = entry
	if err := m.Run(500_000_000); err != nil {
		t.Fatal(err)
	}

	if !sawPatchSite {
		t.Error("execution never hit a patch site address (jump targets not preserved?)")
	}
	if transitions < 2 {
		t.Errorf("only %d image<->trampoline transitions observed", transitions)
	}
	if !sawReturn {
		t.Error("control flow never returned from a trampoline")
	}
}
