GO ?= go

.PHONY: all build fmt vet test race difftest bench ci

all: build test

build:
	$(GO) build ./...

# fmt fails if any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# difftest runs the differential suites: rewriter (original vs patched),
# engines (interp vs tbc, including the FuzzEngines seed corpus), and
# the tbc parity/self-modifying-code tests.
difftest:
	$(GO) test -run 'TestDifferentialFuzz|TestFuzzSelectAllCoverage' .
	$(GO) test -run FuzzEngines .
	$(GO) test ./internal/emu/tbc/

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

ci: fmt vet race difftest
