GO ?= go

.PHONY: all build fmt vet test race difftest enginecheck plancheck speccheck rpccheck disasmcheck bench bench-json bench-parallel bench-plancache bench-match bench-stream bench-disasm bench-cluster servertest clustercheck fuzzshort fuzzhostile ci

all: build test

build:
	$(GO) build ./...

# fmt fails if any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# difftest runs the differential suites: rewriter (original vs patched),
# engines (interp vs tbc vs ir, including the FuzzEngines seed corpus),
# the per-engine stats/speedup tests, and the parallel-vs-sequential
# corpus (byte-identity at every worker count, under the race detector).
difftest:
	$(GO) test -run 'TestDifferentialFuzz|TestFuzzSelectAllCoverage' .
	$(GO) test -run FuzzEngines .
	$(GO) test ./internal/emu/...
	$(GO) test -race -run 'TestParallelRewrite|TestParallelEmulatorEquivalence|FuzzParallelRewrite' .
	$(GO) test -race -run 'TestParallel|TestRegionConflictRedo|TestBeltFallback|TestShardable|Shardable' ./internal/patch/ ./internal/disasm/ ./internal/match/

# enginecheck is the cross-engine correctness gate: the shared
# conformance suite and golden per-instruction traces over every
# registered engine (interp, tbc, ir), the engine-specific
# optimization/speedup tests, and a short three-way differential fuzz.
# Re-record goldens with:
#   go test ./internal/emu/enginetest/ -run TestEngineGoldenTraces -update-golden
enginecheck:
	$(GO) test ./internal/emu/enginetest/
	$(GO) test ./internal/emu/tbc/ ./internal/emu/ir/
	$(GO) test -run '^FuzzEngines$$' -fuzz '^FuzzEngines$$' -fuzztime 5s .

# plancheck verifies the plan/apply split: plan determinism, golden
# JSON schema, serialization round trips, and Plan+Apply byte-identity
# with the legacy monolithic rewrite over the difftest corpus (every
# binary x tactic config x parallelism width), plus the plan IR unit
# tests and the server's plan-cache rematerialization path.
plancheck:
	$(GO) test -run 'TestPlan|TestApplyValidation|TestRewriteInputImmutable' .
	$(GO) test ./internal/plan/
	$(GO) test -run TestPlanCacheRematerialize ./internal/server/

# speccheck verifies the match/patch spec language end to end: the
# lang unit suite (typed diagnostics, hostile-input caps, fuzz seed
# corpus), the golden spec corpus, the A1/A2 spec-vs-hardcoded
# byte-identity gate at every parallelism width, the call-trampoline
# recipes executed under the emulator (argument marshalling asserted),
# and the served spec/payload transport with its 422 mapping.
speccheck:
	$(GO) test ./internal/lang/
	$(GO) test -run 'TestSpecGoldenCorpus|TestRecipeFilesInSync|TestSpecSelectorEquivalence' .
	$(GO) test -run 'TestSyscallTraceRecipe|TestBranchCoverageRecipe|TestCallArgumentMarshalling|TestApplyRejectsHostileInjections' .
	$(GO) test -run 'TestSpec|TestBadSpecMaps422' ./internal/server/

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# bench-json regenerates every machine-readable BENCH_*.json artefact
# (the perf trajectory): engine throughput, parallel scaling, the
# plan-cache speedup, the spec-matcher cost, the streaming memory
# bound, and the per-disassembly-mode recovery sweep.
bench-json: bench-parallel bench-plancache bench-match bench-stream bench-disasm bench-cluster
	$(GO) run ./cmd/e9bench -enginespeed -json BENCH_engines.json

# bench-parallel records the rewrite-phase scaling curve (widths 1..8)
# with the byte-identity check; on a single-core runner the curve is
# honestly flat and the identity bit is the load-bearing result.
bench-parallel:
	$(GO) run ./cmd/e9bench -parallelism 8 -json BENCH_parallel.json

# bench-plancache records how much of a full rewrite a plan-cache hit
# skips (plan once, apply = rematerialize), with byte-identity checked.
bench-plancache:
	$(GO) run ./cmd/e9bench -plancache -json BENCH_plancache.json

# bench-match records the spec-language matcher's per-instruction cost
# against the hardcoded selectors it subsumes (selection identity is
# checked before timing; a divergence fails the run).
bench-match:
	$(GO) run ./cmd/e9bench -matchlang -json BENCH_match.json

# bench-stream proves the zero-copy streaming memory claim on a
# browser-class (120 MB) workload: each input path runs in its own
# child process, peak RSS comes from the kernel (getrusage), outputs
# must be byte-identical, and the streaming peak must stay under the
# buffered peak minus half the input — the run fails otherwise.
bench-stream:
	$(GO) run ./cmd/e9bench -stream -json BENCH_stream.json

# rpccheck verifies the JSON-RPC backend protocol end to end: the
# golden transcripts in testdata/rpc replayed against the built
# cmd/e9patch binary (outputs hash-compared with the library path),
# the usage/abuse paths of the backend binary, the e9tool -backend
# subprocess pipeline, the in-library session grammar/abuse suite with
# its fuzz seed corpus, and the served /v2/rewrite streaming endpoint.
rpccheck:
	$(GO) test -run 'TestRPCGolden|TestUsageOnTerminalStdin|TestBackendReportsStreamErrors' -count 1 ./cmd/e9patch/
	$(GO) test -run TestBackendPipeline -count 1 ./cmd/e9tool/
	$(GO) test ./internal/rpc/
	$(GO) test -run 'TestStreamEndpoint' -count 1 ./internal/server/

# disasmcheck gates the pluggable recovery frontends: linear
# byte-identity at every width, the superset ⊇ linear differential over
# every workload profile, the CET anchor-closure unit and profile
# suites, end-to-end superset-cet rewrites of CET and DSO binaries
# verified under the emulator, plan↔mode digest binding, the .so
# builder/parser geometry, the modern workload rows, and a short
# exploration of the superset-prune fuzzer.
disasmcheck:
	$(GO) test ./internal/disasm/
	$(GO) test -run 'TestDisasm|TestSupersetCETRewriteEquivalent|TestDSORewriteEquivalent|TestPlanModeBinding|TestSupersetRewriteReportsStats' .
	$(GO) test -run 'TestSharedBuildRoundTrip|TestInitSegmentSpans|TestTextRange|TestExecSpans|TestBuildBackCompat' ./internal/elf64/
	$(GO) test -run 'TestModernProfiles|TestPaperSharedRowsUnchanged' ./internal/workload/
	$(GO) test -run 'TestSpecDisasm' ./internal/server/
	$(GO) test -run 'TestSessionDisasmOption' ./internal/rpc/
	$(GO) test -run '^FuzzSupersetPrune$$' -fuzz '^FuzzSupersetPrune$$' -fuzztime 5s ./internal/disasm/

# bench-disasm records the per-mode recovery benchmark: instruction
# counts (decoded/valid/kept), the CET prune ratio, plan sites and
# rewrite throughput for each disassembly mode over a paper-era row
# plus the CET and DSO profiles.
bench-disasm:
	$(GO) run ./cmd/e9bench -disasm -json BENCH_disasm.json

# servertest is the e9served smoke test: build the real binary, start
# it on an ephemeral port, POST a corpus binary, and check the output
# is byte-identical to a direct e9patch.Rewrite.
servertest:
	$(GO) test -run TestServedSmoke -count 1 ./cmd/e9served/

# clustercheck gates the distributed e9served surfaces on an in-process
# 3-node cluster: consistent-hash forwarding, peer plan-fetch
# byte-identity, owner-down local fallback, the internal plan endpoint,
# plan-delta responses (identity and gzip wire coding), /v1/batch
# validation/quotas/streaming, the chaos batch (one node killed
# mid-batch over the hostile corpus must finish with zero 5xx), and the
# trusted-apply contract backing peer rematerialization.
clustercheck:
	$(GO) test -run 'TestCluster|TestBatch|TestPlanFetch|TestPlanDelta|TestLastWaiterCancelDuringPeerFetch' -count 1 ./internal/server/
	$(GO) test -run 'TestApplyTrusted' -count 1 .
	$(GO) test ./internal/cluster/

# bench-cluster records the distributed wins with their acceptance
# gates enforced in-run: peer plan-fetch must be >=5x cheaper than a
# replan (whole-request, byte-identity checked) and plan-delta egress
# must stay <=10% of the full-binary response on the 120 MB profile.
bench-cluster:
	$(GO) run ./cmd/e9bench -cluster -json BENCH_cluster.json

# fuzzshort actually explores the differential fuzzers for a few
# seconds each (plain `go test` only replays the seed corpus).
fuzzshort:
	$(GO) test -run '^FuzzEngines$$' -fuzz '^FuzzEngines$$' -fuzztime 5s .
	$(GO) test -run '^FuzzParallelRewrite$$' -fuzz '^FuzzParallelRewrite$$' -fuzztime 5s .

# fuzzhostile explores the malformed-ELF input space (seeded from the
# checked-in testdata/hostile corpus) plus the hostile deterministic
# suites: truncations, header bit flips, tampered plans, limit bounds.
# The property is containment — hostile input may be rejected, but only
# with a classified error, never a panic or ErrInternal.
fuzzhostile:
	$(GO) test -run 'TestHostile|TestLibraryLimits|TestMmapFallbackDifferential' -count 1 .
	$(GO) test -run '^FuzzRewriteHostileELF$$' -fuzz '^FuzzRewriteHostileELF$$' -fuzztime 10s .

ci: fmt vet race difftest enginecheck plancheck speccheck rpccheck disasmcheck servertest clustercheck fuzzshort fuzzhostile
