package e9patch

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"e9patch/internal/elf64"
	"e9patch/internal/patch"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// Differential test corpus for the parallel pipeline: every binary ×
// tactic configuration × parallelism level must produce output
// byte-identical to the sequential rewrite, with identical statistics,
// per-location outcomes and warnings. Parallelism is pure scheduling.

// assertSameParallelResult compares everything a caller can observe.
func assertSameParallelResult(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if !bytes.Equal(want.Output, got.Output) {
		t.Errorf("%s: output bytes differ from sequential rewrite", label)
	}
	if want.Stats != got.Stats {
		t.Errorf("%s: stats differ: %+v vs %+v", label, want.Stats, got.Stats)
	}
	if !reflect.DeepEqual(want.Locations, got.Locations) {
		t.Errorf("%s: per-location results differ", label)
	}
	if !reflect.DeepEqual(want.Warnings, got.Warnings) {
		t.Errorf("%s: warnings differ: %v vs %v", label, want.Warnings, got.Warnings)
	}
	if want.Trampolines != got.Trampolines || want.Mappings != got.Mappings ||
		want.Insts != got.Insts || want.BadBytes != got.BadBytes {
		t.Errorf("%s: pipeline counters differ", label)
	}
}

// hostileELF assembles the T2/T3 scenario from the patch tests as a
// standalone binary: a 3-byte heap write whose successor bytes force
// negative rel32 windows, so only eviction tactics can patch it.
func hostileELF(t *testing.T) []byte {
	t.Helper()
	a := x86.NewAsm(elf64.DefaultBase + elf64.TextVaddrOff)
	a.MovMemReg64(x86.M(x86.RBX, 0), x86.RAX)
	a.Raw(0x81, 0xC3, 0x88, 0x99, 0xAA, 0xBB)
	a.XorRegReg64(x86.RCX, x86.RAX)
	a.CmpMemImm8(x86.M(x86.RBX, -4), 77)
	a.Ret()
	text, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := buildTestELF(text)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// parallelCorpusConfigs spans the tactic space: each configuration
// drives different escalation paths (B1/B2/T1 on the plain ones, T2 or
// T3 via the ablations, B0 forced and as fallback).
var parallelCorpusConfigs = []struct {
	name string
	cfg  Config
}{
	{"A1", Config{Select: SelectJumps}},
	{"A2", Config{Select: SelectHeapWrites}},
	{"all-b0fallback", Config{Select: SelectAll, Patch: patch.Options{B0Fallback: true}}},
	{"A2-noT2", Config{Select: SelectHeapWrites, Patch: patch.Options{DisableT2: true}}},
	{"A2-noT1T2T3", Config{Select: SelectHeapWrites,
		Patch: patch.Options{DisableT1: true, DisableT2: true, DisableT3: true, B0Fallback: true}}},
	{"forceB0", Config{Select: SelectJumps, Patch: patch.Options{ForceB0: true}}},
}

func TestParallelRewriteCorpusKernels(t *testing.T) {
	type binEntry struct {
		name string
		bin  []byte
	}
	var corpus []binEntry
	for _, arch := range []string{"branchy", "memstream", "matrix", "pointer", "callheavy"} {
		prog, err := workload.BuildKernel(arch, arch == "matrix" || arch == "pointer")
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, binEntry{arch, prog.ELF})
	}
	corpus = append(corpus, binEntry{"hostile", hostileELF(t)})

	var covered patch.Stats
	for _, be := range corpus {
		for _, tc := range parallelCorpusConfigs {
			cfg := tc.cfg
			cfg.ReserveVA = append(cfg.ReserveVA, workload.ReserveVA()...)
			cfg.Parallelism = 1
			seq, err := Rewrite(be.bin, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", be.name, tc.name, err)
			}
			for i := range covered.ByTactic {
				covered.ByTactic[i] += seq.Stats.ByTactic[i]
			}
			for _, par := range []int{2, 8} {
				cfg.Parallelism = par
				res, err := Rewrite(be.bin, cfg)
				if err != nil {
					t.Fatalf("%s/%s/p=%d: %v", be.name, tc.name, par, err)
				}
				assertSameParallelResult(t, seq, res,
					fmt.Sprintf("%s/%s/p=%d", be.name, tc.name, par))
			}
		}
	}
	// The corpus must exercise every tactic at least once.
	for _, tac := range []patch.Tactic{patch.TacticB1, patch.TacticB2, patch.TacticT1,
		patch.TacticT2, patch.TacticT3, patch.TacticB0} {
		if covered.ByTactic[tac] == 0 {
			t.Errorf("corpus never exercised tactic %v", tac)
		}
	}
}

// TestParallelRewriteProfiles drives the multi-region patching path at
// DEFAULT thresholds: the synthetic SPEC profile binaries have
// hundreds of guard-band-separated clusters (gcc A2: ~500), so their
// patch phase genuinely decomposes, speculates and replays.
func TestParallelRewriteProfiles(t *testing.T) {
	cases := []struct {
		profile string
		scale   float64
		cfg     Config
	}{
		{"gcc", 0.1, Config{Select: SelectJumps}},
		{"gcc", 0.1, Config{Select: SelectHeapWrites}},
		{"gamess", 0.05, Config{Select: SelectHeapWrites}},
	}
	for _, tc := range cases {
		p, err := workload.ProfileByName(tc.profile)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := workload.BuildStatic(p, tc.scale)
		if err != nil {
			t.Fatal(err)
		}
		cfg := tc.cfg
		cfg.Parallelism = 1
		seq, err := Rewrite(prog.ELF, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Stats.Total < 1000 {
			t.Fatalf("%s: only %d locations — not a multi-region workload", tc.profile, seq.Stats.Total)
		}
		for _, par := range []int{2, 8} {
			cfg.Parallelism = par
			res, err := Rewrite(prog.ELF, cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertSameParallelResult(t, seq, res,
				fmt.Sprintf("%s@%g/p=%d", tc.profile, tc.scale, par))
		}
	}
}

// TestParallelEmulatorEquivalence closes the loop behaviourally: the
// output of a parallel rewrite must not just match the sequential
// bytes, it must run — same output stream and exit code as the
// original binary under the tbc translation-cache engine.
func TestParallelEmulatorEquivalence(t *testing.T) {
	saved := workload.Engine
	workload.Engine = "tbc"
	defer func() { workload.Engine = saved }()

	for _, arch := range []string{"branchy", "memstream", "callheavy"} {
		prog, err := workload.BuildKernel(arch, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Rewrite(prog.ELF, Config{
			Select:      SelectJumps,
			ReserveVA:   workload.ReserveVA(),
			Parallelism: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		orig := runBinary(t, prog.ELF, nil)
		patched := runBinary(t, res.Output, nil)
		if !reflect.DeepEqual(orig.Output, patched.Output) {
			t.Errorf("%s: output stream diverged after parallel rewrite", arch)
		}
		if orig.ExitCode != patched.ExitCode {
			t.Errorf("%s: exit %#x != %#x", arch, patched.ExitCode, orig.ExitCode)
		}
		if patched.Counters.Cycles < orig.Counters.Cycles {
			t.Errorf("%s: patched ran faster than original?", arch)
		}
	}
}

// TestDiagnoseSelectionCoordinates covers both directions of the
// address-coordinate diagnostic — including the non-PIE direction,
// which previously produced no warning at all.
func TestDiagnoseSelectionCoordinates(t *testing.T) {
	mkText := func(base uint64) []byte {
		a := x86.NewAsm(base)
		a.MovMemReg64(x86.M(x86.RBX, 0), x86.RAX)
		a.AddRegImm64(x86.RAX, 32)
		a.Ret()
		text, err := a.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return text
	}
	const linkText = elf64.DefaultBase + elf64.TextVaddrOff
	nonPIE, err := buildTestELF(mkText(linkText))
	if err != nil {
		t.Fatal(err)
	}
	pie, err := elf64.Build(elf64.BuildSpec{
		PIE:      true,
		Text:     mkText(elf64.TextVaddrOff),
		Data:     make([]byte, 64),
		BSSSize:  0x1000,
		EntryOff: 0,
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		bin      []byte
		addr     uint64
		matches  int
		wantWarn string
	}{
		{"nonPIE-correct", nonPIE, linkText, 1, ""},
		{"nonPIE-runtime-style", nonPIE, linkText + PIEBase, 0, "not PIE"},
		{"PIE-correct", pie, PIEBase + elf64.TextVaddrOff, 1, ""},
		{"PIE-file-relative", pie, elf64.TextVaddrOff, 0, "file-relative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Rewrite(tc.bin, Config{Select: SelectAddresses(tc.addr)})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Total != tc.matches {
				t.Fatalf("selected %d locations, want %d", res.Stats.Total, tc.matches)
			}
			if tc.wantWarn == "" {
				if len(res.Warnings) != 0 {
					t.Fatalf("unexpected warnings: %v", res.Warnings)
				}
				return
			}
			if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], tc.wantWarn) {
				t.Fatalf("warnings = %v, want one mentioning %q", res.Warnings, tc.wantWarn)
			}
		})
	}

	// An empty selection that is empty in BOTH coordinate systems (no
	// jumps in a jump-free binary) must stay silent.
	res, err := Rewrite(nonPIE, Config{Select: SelectJumps})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total != 0 || len(res.Warnings) != 0 {
		t.Fatalf("false-positive diagnostic: total=%d warnings=%v", res.Stats.Total, res.Warnings)
	}
}

// FuzzParallelRewrite cross-checks random programs under random
// parallelism and region granularity against the sequential rewrite,
// then runs the parallel output to confirm it still behaves like the
// original program.
func FuzzParallelRewrite(f *testing.F) {
	for seed := int64(0); seed < 6; seed++ {
		f.Add(seed, uint8(seed*5+1))
	}
	f.Fuzz(func(t *testing.T, seed int64, knobs uint8) {
		rng := rand.New(rand.NewSource(seed))
		bin, err := genProgram(rng, seed%2 == 0)
		if err != nil {
			t.Skip() // assembler rejected the combination; not a rewrite bug
		}
		width := int(knobs%8) + 2     // 2..9 workers
		minRegion := 1 << (knobs % 5) // region granularity 1..16
		mk := func(par int) Config {
			return Config{
				Select:      SelectJumps,
				Parallelism: par,
				Patch:       patch.Options{MinRegionSize: minRegion, B0Fallback: knobs%2 == 0},
			}
		}
		seq, err := Rewrite(bin, mk(1))
		if err != nil {
			t.Fatal(err)
		}
		par, err := Rewrite(bin, mk(width))
		if err != nil {
			t.Fatal(err)
		}
		assertSameParallelResult(t, seq, par,
			fmt.Sprintf("seed=%d width=%d minRegion=%d", seed, width, minRegion))

		om := fuzzRun(t, bin)
		pm := fuzzRun(t, par.Output)
		if om.ExitCode != pm.ExitCode {
			t.Fatalf("exit: original %#x, parallel-rewritten %#x", om.ExitCode, pm.ExitCode)
		}
		if !reflect.DeepEqual(om.Output, pm.Output) {
			t.Fatal("output stream diverged after parallel rewrite")
		}
	})
}
