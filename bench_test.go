// Benchmarks regenerating every table and figure of the paper's
// evaluation, one per artefact, plus micro-benchmarks of the core
// pipeline stages. The experiment benchmarks run at a reduced binary
// scale so `go test -bench=.` finishes in minutes; `cmd/e9bench` runs
// the same drivers at any scale (use -full for the paper's sizes) and
// prints the complete tables.
//
// Custom metrics reported:
//
//	cov%      patching coverage (Table 1 Succ%)
//	base%     baseline (B1+B2) coverage
//	size%     output/input file size
//	time%     patched/original cycle ratio
package e9patch_test

import (
	"io"
	"testing"

	"e9patch"
	"e9patch/internal/disasm"
	"e9patch/internal/elf64"
	"e9patch/internal/emu"
	"e9patch/internal/eval"
	"e9patch/internal/loader"
	"e9patch/internal/lowfat"
	"e9patch/internal/workload"
)

// benchOpt keeps experiment benchmarks fast; EXPERIMENTS.md records
// full runs via cmd/e9bench.
var benchOpt = eval.Options{Scale: 0.02, Iters: 4000}

// benchProfiles is a representative Table 1 slice: integer SPEC,
// Fortran SPEC with huge .bss, PIE, and a shared object.
func benchProfiles(b *testing.B) []workload.Profile {
	b.Helper()
	var out []workload.Profile
	for _, n := range []string{"perlbench", "gamess", "vim", "libc.so"} {
		p, err := workload.ProfileByName(n)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// BenchmarkTable1A1 regenerates Table 1's jump-instrumentation half
// over the representative profile slice.
func BenchmarkTable1A1(b *testing.B) {
	benchTable1(b, eval.A1)
}

// BenchmarkTable1A2 regenerates Table 1's heap-write half.
func BenchmarkTable1A2(b *testing.B) {
	benchTable1(b, eval.A2)
}

func benchTable1(b *testing.B, app eval.App) {
	profiles := benchProfiles(b)
	var cov, base, size float64
	for i := 0; i < b.N; i++ {
		cov, base, size = 0, 0, 0
		for _, p := range profiles {
			res, err := eval.RewriteProfile(p, app, benchOpt.Scale, nil)
			if err != nil {
				b.Fatal(err)
			}
			cov += res.Stats.SuccPercent()
			base += res.Stats.BasePercent()
			size += res.SizePercent()
		}
	}
	n := float64(len(profiles))
	b.ReportMetric(cov/n, "cov%")
	b.ReportMetric(base/n, "base%")
	b.ReportMetric(size/n, "size%")
}

// BenchmarkTable1Time regenerates the Table 1 Time% columns for one
// SPEC row (perlbench kernel, both applications).
func BenchmarkTable1Time(b *testing.B) {
	p, err := workload.ProfileByName("perlbench")
	if err != nil {
		b.Fatal(err)
	}
	workload.KernelIters = benchOpt.Iters
	var t1, t2 float64
	for i := 0; i < b.N; i++ {
		if t1, err = eval.KernelOverhead(p, eval.A1, e9patch.Config{}, false); err != nil {
			b.Fatal(err)
		}
		if t2, err = eval.KernelOverhead(p, eval.A2, e9patch.Config{}, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(t1, "A1time%")
	b.ReportMetric(t2, "A2time%")
}

// BenchmarkFigure4Dromaeo regenerates the Figure 4 browser series.
func BenchmarkFigure4Dromaeo(b *testing.B) {
	workload.KernelIters = benchOpt.Iters
	var chrome, firefox float64
	for i := 0; i < b.N; i++ {
		pts, err := eval.Figure4(benchOpt, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		var cs, fs []float64
		for _, p := range pts {
			cs = append(cs, p.Chrome)
			fs = append(fs, p.FireFox)
		}
		chrome, firefox = eval.GeoMean(cs), eval.GeoMean(fs)
	}
	b.ReportMetric(chrome, "chrome%")
	b.ReportMetric(firefox, "firefox%")
}

// BenchmarkFigure5LowFat regenerates the Figure 5 hardening series for
// a SPEC subset (one kernel per archetype).
func BenchmarkFigure5LowFat(b *testing.B) {
	workload.KernelIters = benchOpt.Iters
	names := []string{"perlbench", "bzip2", "gamess", "mcf", "dealII"}
	var empty, lf float64
	for i := 0; i < b.N; i++ {
		empty, lf = 0, 0
		for _, n := range names {
			p, err := workload.ProfileByName(n)
			if err != nil {
				b.Fatal(err)
			}
			e, err := eval.KernelOverhead(p, eval.A2, e9patch.Config{}, false)
			if err != nil {
				b.Fatal(err)
			}
			l, err := eval.KernelOverhead(p, eval.A2, e9patch.Config{Template: lowfat.CheckTemplate{}}, true)
			if err != nil {
				b.Fatal(err)
			}
			empty += e
			lf += l
		}
	}
	n := float64(len(names))
	b.ReportMetric(empty/n, "empty%")
	b.ReportMetric(lf/n, "lowfat%")
}

// BenchmarkAblationGrouping regenerates the §6.1 grouping-vs-naive
// file-size ablation.
func BenchmarkAblationGrouping(b *testing.B) {
	var grouped, naive float64
	for i := 0; i < b.N; i++ {
		out, err := eval.AblationGrouping(benchOpt, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		grouped, naive = out[0].GroupedSizePct, out[0].NaiveSizePct
	}
	b.ReportMetric(grouped, "grouped-size%")
	b.ReportMetric(naive, "naive-size%")
}

// BenchmarkAblationGranularity regenerates the §4 mapping-count sweep.
func BenchmarkAblationGranularity(b *testing.B) {
	var m1, m64 float64
	for i := 0; i < b.N; i++ {
		pts, err := eval.AblationGranularity(benchOpt, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		m1 = float64(pts[0].Mappings)
		m64 = float64(pts[len(pts)-1].Mappings)
	}
	b.ReportMetric(m1, "mapsM1")
	b.ReportMetric(m64, "mapsM64")
}

// BenchmarkAblationPIE regenerates the §6.1 PIE-coverage comparison.
func BenchmarkAblationPIE(b *testing.B) {
	var native, pie float64
	for i := 0; i < b.N; i++ {
		out, err := eval.AblationPIE(benchOpt, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		native, pie = 0, 0
		for _, c := range out {
			native += c.NativeBase
			pie += c.PIEBase
		}
		native /= float64(len(out))
		pie /= float64(len(out))
	}
	b.ReportMetric(native, "native-base%")
	b.ReportMetric(pie, "pie-base%")
}

// BenchmarkAblationB0 regenerates the §2.1.1 signal-handler baseline.
func BenchmarkAblationB0(b *testing.B) {
	workload.KernelIters = benchOpt.Iters
	var factor float64
	for i := 0; i < b.N; i++ {
		c, err := eval.AblationB0(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		factor = c.Factor
	}
	b.ReportMetric(factor, "b0/jump-x")
}

// BenchmarkMotivationAccuracy regenerates the §1 accuracy-decay table.
func BenchmarkMotivationAccuracy(b *testing.B) {
	var at1000 float64
	for i := 0; i < b.N; i++ {
		pts := eval.MotivationAccuracy()
		for _, p := range pts {
			if p.Jumps == 1000 {
				at1000 = p.Effective
			}
		}
	}
	b.ReportMetric(at1000, "eff%@1000")
}

// --- micro-benchmarks of the pipeline stages ---

func buildBenchBinary(b *testing.B) []byte {
	b.Helper()
	p, err := workload.ProfileByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.BuildStatic(p, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	return prog.ELF
}

// BenchmarkLinearDisasm measures frontend throughput.
func BenchmarkLinearDisasm(b *testing.B) {
	bin := buildBenchBinary(b)
	f, err := elf64.Parse(bin)
	if err != nil {
		b.Fatal(err)
	}
	text, addr, _ := f.Text()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := disasm.Linear(text, addr)
		if len(res.Insts) == 0 {
			b.Fatal("no instructions")
		}
	}
}

// BenchmarkRewrite measures end-to-end rewriting throughput (A2).
func BenchmarkRewrite(b *testing.B) {
	bin := buildBenchBinary(b)
	b.SetBytes(int64(len(bin)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e9patch.Rewrite(bin, e9patch.Config{
			Select:    e9patch.SelectHeapWrites,
			ReserveVA: workload.ReserveVA(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Total == 0 {
			b.Fatal("no patch points")
		}
	}
}

// BenchmarkPlan measures the decision phase alone: disassembly,
// matching, tactic search and trampoline allocation, without
// materializing an output binary.
func BenchmarkPlan(b *testing.B) {
	bin := buildBenchBinary(b)
	b.SetBytes(int64(len(bin)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := e9patch.Plan(bin, e9patch.Config{
			Select:    e9patch.SelectHeapWrites,
			ReserveVA: workload.ReserveVA(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(p.Sites) == 0 {
			b.Fatal("no patch points")
		}
	}
}

// BenchmarkApplyPlan measures rematerialization from a cached plan —
// the plan-cache-hit path of e9served: the plan is made once outside
// the timer, and each iteration replays it onto the input. Compare
// with BenchmarkRewrite for the decision-search cost a plan hit skips.
func BenchmarkApplyPlan(b *testing.B) {
	bin := buildBenchBinary(b)
	p, err := e9patch.Plan(bin, e9patch.Config{
		Select:    e9patch.SelectHeapWrites,
		ReserveVA: workload.ReserveVA(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(bin)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e9patch.Apply(bin, p)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Patched() == 0 {
			b.Fatal("nothing patched")
		}
	}
}

// BenchmarkEmulator measures emulated instruction throughput under the
// default engine (the tbc translation cache).
func BenchmarkEmulator(b *testing.B) {
	benchEmulator(b, workload.Engine)
}

// BenchmarkEmulatorInterp pins the decode-per-step interpreter.
func BenchmarkEmulatorInterp(b *testing.B) {
	benchEmulator(b, "interp")
}

// BenchmarkEmulatorTBC pins the translation cache; compare with
// BenchmarkEmulatorInterp for the engine speedup.
func BenchmarkEmulatorTBC(b *testing.B) {
	benchEmulator(b, "tbc")
}

func benchEmulator(b *testing.B, engine string) {
	saved := workload.Engine
	workload.Engine = engine
	defer func() { workload.Engine = saved }()
	workload.KernelIters = 20000
	prog, err := workload.BuildKernel("memstream", false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		m := workload.NewMachine(nil)
		entry, err := loader.BuildImage(m, prog.ELF, loader.Options{})
		if err != nil {
			b.Fatal(err)
		}
		m.RIP = entry
		if err := m.Run(1_000_000_000); err != nil {
			b.Fatal(err)
		}
		instr = m.Counters.Instructions
	}
	b.ReportMetric(float64(instr), "instr/run")
}

// BenchmarkLoader measures image reconstruction from a patched binary.
func BenchmarkLoader(b *testing.B) {
	bin := buildBenchBinary(b)
	res, err := e9patch.Rewrite(bin, e9patch.Config{
		Select:    e9patch.SelectHeapWrites,
		ReserveVA: workload.ReserveVA(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(res.Output)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := emu.NewMachine()
		if _, err := e9patch.Load(m, res.Output); err != nil {
			b.Fatal(err)
		}
	}
}
