// Command gen regenerates the hostile-ELF corpus in testdata/hostile.
//
// Each corpus file is a deterministic mutation of one small valid
// binary, targeting a specific parser or pipeline assumption: header
// truncation, offset/size fields near 2^64 that wrap naive bounds
// arithmetic, segment tables that overrun the file, degenerate or
// unloaded .text, and plain garbage. The rewriter must answer every
// one with a classified error (malformed / unsupported / resource
// limit) — never a panic, never ErrInternal. The corpus is checked in;
// rerun this only when the layout of the seed binary changes:
//
//	go run ./testdata/hostile/gen
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"e9patch/internal/elf64"
)

var le = binary.LittleEndian

// ELF64 field offsets (all verified against elf64's writer):
const (
	ehdrSize = 64
	phdrSize = 56
	shdrSize = 64

	ePhOff    = 32 // e_phoff, 8 bytes
	eShOff    = 40 // e_shoff, 8 bytes
	ePhNum    = 56 // e_phnum, 2 bytes
	eShNum    = 60 // e_shnum, 2 bytes
	eShStrNdx = 62 // e_shstrndx, 2 bytes

	pType   = 0  // p_type, 4 bytes
	pOffset = 8  // p_offset, 8 bytes
	pVaddr  = 16 // p_vaddr, 8 bytes
	pFilesz = 32 // p_filesz, 8 bytes
	pMemsz  = 40 // p_memsz, 8 bytes

	shOffset = 24 // sh_offset, 8 bytes
	shSize   = 32 // sh_size, 8 bytes
)

// seedText is a small counting loop with a conditional branch, so the
// valid control binary gives the jcc selector something to patch:
//
//	xor eax, eax
//	add eax, 1
//	cmp eax, 0x100
//	jne -10        ; back to the add
//	ret
var seedText = []byte{
	0x31, 0xC0,
	0x83, 0xC0, 0x01,
	0x3D, 0x00, 0x01, 0x00, 0x00,
	0x75, 0xF6,
	0xC3,
}

func main() {
	dir := flag.String("o", "testdata/hostile", "output directory")
	flag.Parse()

	valid, err := elf64.Build(elf64.BuildSpec{
		Text:     seedText,
		EntryOff: 0,
		Data:     make([]byte, 32),
		BSSSize:  64,
	})
	if err != nil {
		log.Fatal(err)
	}
	shOff := le.Uint64(valid[eShOff:])
	// Section table: [0] SHT_NULL, [1] .text, [4] .shstrtab.
	textShdr := shOff + 1*shdrSize
	strShdr := shOff + 4*shdrSize
	phdr0 := uint64(ehdrSize) // first PT_LOAD (the RX text segment)

	// Deterministic non-ELF bytes for the garbage variant.
	garbage := make([]byte, 128)
	for i := range garbage {
		garbage[i] = byte(i*37 + 13)
	}

	variants := []struct {
		name string
		data []byte
	}{
		// The unmodified seed: the control the tests rewrite successfully.
		{"valid.bin", valid},

		// Not an ELF at all.
		{"garbage-header.bin", garbage},
		{"short-magic.bin", []byte("\x7fELF")},

		// Truncations at structurally interesting boundaries.
		{"truncated-ehdr.bin", valid[:40]},
		{"truncated-phdr.bin", valid[:ehdrSize+phdrSize/2]},
		{"mid-truncate.bin", valid[:len(valid)/2]},

		// Header table offsets/counts near 2^64: naive off+size bounds
		// checks wrap and index past the buffer.
		{"phoff-overflow.bin", put64(valid, ePhOff, 0xFFFFFFFFFFFFFFF0)},
		{"phnum-huge.bin", put16(valid, ePhNum, 0xFFFF)},
		{"shoff-overflow.bin", put64(valid, eShOff, 0xFFFFFFFFFFFFFFF0)},
		{"shnum-huge.bin", put16(valid, eShNum, 0xFFFF)},
		{"shstrndx-oob.bin", put16(valid, eShStrNdx, 0xFFF0)},

		// Section records pointing outside the file.
		{"shstr-overflow.bin", put64(valid, strShdr+shOffset, 1<<60)},
		{"text-off-overflow.bin", put64(valid, textShdr+shOffset, 0xFFFFFFFFFFFFFFF0)},
		{"text-size-overflow.bin", put64(valid, textShdr+shSize, 0xFFFFFFFFFFFFFFF0)},
		{"degenerate-text.bin", put64(valid, textShdr+shSize, 0)},

		// Program-header lies about the text segment.
		{"memsz-wrap.bin", put64(valid, phdr0+pVaddr, 0xFFFFFFFFFFFFF000)},
		{"filesz-overrun.bin", put64(valid, phdr0+pFilesz, uint64(len(valid))+0x1000)},
		{"memsz-lt-filesz.bin", put64(valid, phdr0+pMemsz, 1)},
		{"segment-off-overflow.bin", put64(valid, phdr0+pOffset, 0xFFFFFFFFFFFFFFF0)},
		{"text-not-loaded.bin", put32(valid, phdr0+pType, 0)}, // PT_LOAD → PT_NULL
	}

	for _, v := range variants {
		path := filepath.Join(*dir, v.name)
		if err := os.WriteFile(path, v.data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(v.data))
	}
}

// put64/put32/put16 return a copy of b with a little-endian value
// patched in at off, leaving the seed binary untouched.
func put64(b []byte, off, v uint64) []byte {
	c := append([]byte(nil), b...)
	le.PutUint64(c[off:], v)
	return c
}

func put32(b []byte, off uint64, v uint32) []byte {
	c := append([]byte(nil), b...)
	le.PutUint32(c[off:], v)
	return c
}

func put16(b []byte, off uint64, v uint16) []byte {
	c := append([]byte(nil), b...)
	le.PutUint16(c[off:], v)
	return c
}
