package e9patch

import (
	"time"

	"e9patch/internal/e9err"
)

// The structured error taxonomy. Every error the rewriter returns on
// hostile or degenerate input belongs to exactly one of these classes;
// match with errors.Is and recover the context fields (phase, offset,
// machine-readable reason) with errors.As against *Error.
//
//	_, err := e9patch.Rewrite(input, cfg)
//	switch {
//	case errors.Is(err, e9patch.ErrMalformedBinary):   // garbage input
//	case errors.Is(err, e9patch.ErrUnsupportedBinary): // out of scope
//	case errors.Is(err, e9patch.ErrResourceLimit):     // over a Limits bound
//	case errors.Is(err, e9patch.ErrInternal):          // our bug (recovered panic)
//	}
var (
	// ErrMalformedBinary classifies structurally broken inputs:
	// truncated headers, overflowing section offsets, inconsistent
	// geometry, undecodable plans. Retrying the same input is pointless.
	ErrMalformedBinary = e9err.ErrMalformed
	// ErrUnsupportedBinary classifies well-formed inputs outside the
	// rewriter's scope (wrong machine, wrong ELF class, unknown plan
	// schema version). Also not retryable.
	ErrUnsupportedBinary = e9err.ErrUnsupported
	// ErrResourceLimit classifies inputs rejected by a Config.Limits
	// bound (input size, text size, patch sites, trampoline budget,
	// per-phase deadline). The same input may succeed under a larger
	// budget.
	ErrResourceLimit = e9err.ErrResourceLimit
	// ErrInternal classifies broken invariants — typically a panic
	// contained by a recovery boundary. These are rewriter bugs, never
	// the client's; the *Error carries the recovery site's stack.
	ErrInternal = e9err.ErrInternal
	// ErrBadSpec classifies spec-language (internal/lang) match or
	// patch specifications that fail to parse or typecheck. The
	// *Error's reason and message carry the 1-based line:column of the
	// offending token; e9served maps this class to HTTP 422.
	ErrBadSpec = e9err.ErrBadSpec
)

// Error is the concrete classified error type behind the taxonomy;
// errors.As(err, &e) recovers the pipeline phase, the file offset or
// address the failure was detected at, the machine-readable rejection
// reason for resource limits, and — for recovered panics — the stack.
type Error = e9err.Error

// Limits bounds the resources a single rewrite may consume, so one
// hostile or degenerate input cannot exhaust the process. The zero
// value disables every bound (no limits). Violations are reported as
// ErrResourceLimit with a machine-readable reason.
type Limits struct {
	// MaxInputBytes caps the input binary size (0: unlimited).
	MaxInputBytes int64
	// MaxTextBytes caps the .text section size the pipeline will
	// disassemble and patch (0: unlimited).
	MaxTextBytes int64
	// MaxPatchSites caps the number of locations the selector may
	// choose (0: unlimited). Every site costs trampoline memory and
	// patch work, so a hostile selector multiplies cost by this factor.
	MaxPatchSites int
	// MaxTrampolineBytes caps the total emitted trampoline code bytes
	// (0: unlimited); it bounds the rewrite's arena footprint.
	MaxTrampolineBytes int64
	// PhaseTimeout bounds each pipeline phase (disassembly, patching)
	// separately (0: unlimited). Expiry aborts the rewrite with an
	// ErrResourceLimit carrying the phase-deadline reason.
	PhaseTimeout time.Duration
}

// MaxGranularity is the largest physical-page-grouping block size (in
// pages) the rewriter accepts. Granularity sizes block allocations in
// the emit phase, so an unbounded value would let a hostile
// configuration demand arbitrarily large contiguous buffers.
const MaxGranularity = 4096
