package e9patch

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"e9patch/internal/elf64"
)

// openBothPaths loads path once through the mmap path and once with the
// portable fallback forced, failing if the mmap path did not actually
// map (regressions in the platform shim would silently degrade the
// zero-copy claim).
func openBothPaths(t *testing.T, path string) (mapped, read *elf64.Input) {
	t.Helper()
	mapped, err := elf64.OpenInput(path)
	if err != nil {
		t.Fatalf("OpenInput (mmap): %v", err)
	}
	t.Cleanup(func() { mapped.Close() })
	if !mapped.Mapped {
		t.Fatal("mmap path fell back to the portable read on this platform")
	}
	prev := elf64.SetMmapDisabledForTesting(true)
	read, err = elf64.OpenInput(path)
	elf64.SetMmapDisabledForTesting(prev)
	if err != nil {
		t.Fatalf("OpenInput (fallback): %v", err)
	}
	t.Cleanup(func() { read.Close() })
	if read.Mapped {
		t.Fatal("fallback path reported Mapped")
	}
	return mapped, read
}

// TestMmapFallbackDifferential drives the whole rewriter — not just the
// loader — over both input paths for every corpus binary: the hostile
// set plus the valid control and a branchy binary with real trampoline
// pressure. The two paths must agree exactly: identical bytes loaded,
// identical outputs on success, identically-classified errors on
// rejection. This is the contract that lets OpenInput treat mmap
// failure as a silent fallback rather than an error.
func TestMmapFallbackDifferential(t *testing.T) {
	corpus := hostileCorpus(t)
	corpus["branchy.bin"] = branchyELF(t)

	dir := t.TempDir()
	for name, data := range corpus {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			mapped, read := openBothPaths(t, path)
			if !bytes.Equal(mapped.Data, read.Data) {
				t.Fatal("mmap view and portable read loaded different bytes")
			}

			cfg := Config{Select: SelectJumps}
			mres, merr := Rewrite(mapped.Data, cfg)
			rres, rerr := Rewrite(read.Data, cfg)
			if classify(merr) != classify(rerr) {
				t.Fatalf("error classes diverged: mmap %v (%s) vs fallback %v (%s)",
					merr, classify(merr), rerr, classify(rerr))
			}
			requireContained(t, name, merr)
			if merr == nil && !bytes.Equal(mres.Output, rres.Output) {
				t.Fatal("rewritten outputs diverged between input paths")
			}

			// The streaming session is the path that actually receives
			// mmap views in production (the JSON-RPC backend and the v2
			// endpoint feed it); hold it to the same contract.
			sres, serr := streamRewrite(mapped.Data, cfg)
			if classify(serr) != classify(merr) {
				t.Fatalf("stream error class diverged: %v (%s) vs %v (%s)",
					serr, classify(serr), merr, classify(merr))
			}
			if merr == nil && !bytes.Equal(sres.Output, mres.Output) {
				t.Fatal("streamed output diverged from buffered rewrite on mmap view")
			}
		})
	}
}

// streamRewrite runs one Stream session equivalent to Rewrite(input, cfg).
func streamRewrite(input []byte, cfg Config) (*Result, error) {
	s, err := NewStream(context.Background(), input, cfg)
	if err != nil {
		return nil, err
	}
	return s.Finish(context.Background())
}
