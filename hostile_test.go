package e9patch

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"e9patch/internal/e9err"
	"e9patch/internal/elf64"
	"e9patch/internal/workload"
)

// branchyELF builds the branchy workload kernel: a binary with enough
// patchable jumps that rewriting it emits real writes and trampolines.
func branchyELF(t *testing.T) []byte {
	t.Helper()
	prog, err := workload.BuildKernel("branchy", true)
	if err != nil {
		t.Fatal(err)
	}
	return prog.ELF
}

// classify returns which taxonomy class err falls under, or "" when it
// matches none — the hostile-input contract is that every error leaving
// the public API on bad input classifies as malformed, unsupported or
// resource-limit, and never as internal.
func classify(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrInternal):
		return "internal"
	case errors.Is(err, ErrMalformedBinary):
		return "malformed"
	case errors.Is(err, ErrUnsupportedBinary):
		return "unsupported"
	case errors.Is(err, ErrResourceLimit):
		return "limit"
	}
	return ""
}

// requireContained fails the test unless err (from rewriting input) is
// nil or a classified input/limit error. An internal error means a
// panic was contained by the recovery boundary or a bug was promoted —
// either way a crasher to fix, not a hostile input rejected.
func requireContained(t *testing.T, name string, err error) {
	t.Helper()
	switch classify(err) {
	case "ok", "malformed", "unsupported", "limit":
	case "internal":
		var ee *Error
		if errors.As(err, &ee) && ee.Recovered() {
			t.Errorf("%s: panic contained but not fixed: %v\n%s", name, err, ee.Stack)
		} else {
			t.Errorf("%s: internal error on hostile input: %v", name, err)
		}
	default:
		t.Errorf("%s: unclassified error escaped the taxonomy: %v", name, err)
	}
}

// hostileCorpus loads every checked-in corpus binary.
func hostileCorpus(t testing.TB) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "hostile", "*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 14 {
		t.Fatalf("hostile corpus has %d files, want at least 14 (regenerate with `go run ./testdata/hostile/gen`)", len(paths))
	}
	corpus := make(map[string][]byte, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		corpus[filepath.Base(p)] = data
	}
	return corpus
}

// TestHostileCorpus rewrites every corpus file: the valid control must
// succeed and every hostile variant must come back with a classified
// error — no panic escapes, no ErrInternal.
func TestHostileCorpus(t *testing.T) {
	for name, data := range hostileCorpus(t) {
		_, err := Rewrite(data, Config{Select: SelectJumps})
		requireContained(t, name, err)
		if name == "valid.bin" && err != nil {
			t.Errorf("valid.bin: control binary failed to rewrite: %v", err)
		}
	}
}

// TestHostileTruncations feeds every prefix of a valid binary through
// the rewriter (densely over the header region, sampled beyond it).
func TestHostileTruncations(t *testing.T) {
	valid := hostileCorpus(t)["valid.bin"]
	for n := 0; n < len(valid); n++ {
		if n > 512 && n%101 != 0 {
			continue
		}
		_, err := Rewrite(valid[:n], Config{Select: SelectJumps})
		requireContained(t, "truncate:"+itoa(n), err)
	}
}

// TestHostileHeaderBitFlips flips each bit of the ELF header and the
// program-header table in turn. Any single-bit lie must either still
// rewrite (benign field) or fail classified.
func TestHostileHeaderBitFlips(t *testing.T) {
	valid := hostileCorpus(t)["valid.bin"]
	const region = 64 + 3*56 // ehdr + the three phdrs
	for off := 0; off < region; off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 1 << bit
			_, err := Rewrite(mut, Config{Select: SelectJumps})
			requireContained(t, "flip:"+itoa(off)+"."+itoa(bit), err)
		}
	}
}

// TestHostilePlans covers the second untrusted input surface: patch
// plans. Garbage, version skew and out-of-text writes must all come
// back classified from Decode/Apply.
func TestHostilePlans(t *testing.T) {
	if _, err := DecodePlan([]byte("{not json")); !errors.Is(err, ErrMalformedBinary) {
		t.Errorf("garbage plan JSON: %v, want ErrMalformedBinary", err)
	}
	if _, err := DecodePlan([]byte(`{"version": 9999}`)); !errors.Is(err, ErrUnsupportedBinary) {
		t.Errorf("future plan version: %v, want ErrUnsupportedBinary", err)
	}

	bin := branchyELF(t)
	p, err := Plan(bin, Config{Select: SelectJumps})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(bin, nil); !errors.Is(err, ErrMalformedBinary) {
		t.Errorf("nil plan: %v, want ErrMalformedBinary", err)
	}
	writes := 0
	for i := range p.Sites {
		for j := range p.Sites[i].Writes {
			p.Sites[i].Writes[j].Addr = 0xFFFFFFFFFFFF0000 // far outside .text
			writes++
		}
	}
	if writes == 0 {
		t.Fatal("plan recorded no writes; the branchy kernel should be patchable")
	}
	if _, err := Apply(bin, p); !errors.Is(err, ErrMalformedBinary) {
		t.Errorf("out-of-text plan writes: %v, want ErrMalformedBinary", err)
	}

	tampered, err := Plan(bin, Config{Select: SelectJumps})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tampered.Sites {
		tampered.Sites[i].Tactic = "no-such-tactic"
	}
	if _, err := Apply(bin, tampered); !errors.Is(err, ErrMalformedBinary) {
		t.Errorf("unknown plan tactic: %v, want ErrMalformedBinary", err)
	}
}

// TestLibraryLimits exercises each Config.Limits bound at the library
// layer and checks both the sentinel and the machine-readable reason.
func TestLibraryLimits(t *testing.T) {
	valid := hostileCorpus(t)["valid.bin"]
	bin := branchyELF(t)

	cases := []struct {
		name   string
		input  []byte
		limits Limits
		reason string
	}{
		{"input-too-large", valid, Limits{MaxInputBytes: 16}, e9err.ReasonInputTooLarge},
		{"text-too-large", valid, Limits{MaxTextBytes: 4}, e9err.ReasonTextTooLarge},
		{"too-many-sites", bin, Limits{MaxPatchSites: 1}, e9err.ReasonTooManySites},
		{"trampoline-budget", bin, Limits{MaxTrampolineBytes: 1}, e9err.ReasonTrampolineBudget},
		{"phase-deadline", valid, Limits{PhaseTimeout: time.Nanosecond}, e9err.ReasonPhaseDeadline},
	}
	for _, tc := range cases {
		_, err := Rewrite(tc.input, Config{Select: SelectJumps, Limits: tc.limits})
		if !errors.Is(err, ErrResourceLimit) {
			t.Errorf("%s: error %v, want ErrResourceLimit", tc.name, err)
			continue
		}
		var ee *Error
		if !errors.As(err, &ee) || ee.Reason != tc.reason {
			t.Errorf("%s: reason %q, want %q (err %v)", tc.name, ee.Reason, tc.reason, err)
		}
	}

	// The same limits left at zero must not reject anything.
	if _, err := Rewrite(valid, Config{Select: SelectJumps}); err != nil {
		t.Errorf("no limits: %v, want success", err)
	}
}

// FuzzRewriteHostileELF explores the malformed-ELF input space, seeded
// with the checked-in corpus. The property under test is containment:
// Rewrite may reject an input, but only with a classified error — an
// escaped panic or ErrInternal is a crasher. Plain `go test` runs the
// seed corpus; `go test -fuzz=FuzzRewriteHostileELF` explores further.
func FuzzRewriteHostileELF(f *testing.F) {
	for _, data := range hostileCorpus(f) {
		f.Add(data, 1)
	}
	f.Fuzz(func(t *testing.T, data []byte, gran int) {
		if gran > MaxGranularity {
			gran = MaxGranularity
		}
		_, err := Rewrite(data, Config{Select: SelectJumps, Granularity: gran})
		requireContained(t, "fuzz", err)
	})
}

// TestHostileLoaderBlob checks the appended-blob trailer parser against
// a rewritten binary whose trailer bytes have been tampered with.
func TestHostileLoaderBlob(t *testing.T) {
	valid := hostileCorpus(t)["valid.bin"]
	res, err := Rewrite(valid, Config{Select: SelectJumps})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output
	if _, ok := elf64.AppendedBlob(out); !ok {
		t.Skip("rewrite appended no blob")
	}
	for _, off := range []int{24, 16, 8, 1} {
		mut := append([]byte(nil), out...)
		mut[len(mut)-off] ^= 0xFF
		// Either the tampered trailer is rejected outright or the blob
		// bounds still land inside the file; never a slice panic.
		if blob, ok := elf64.AppendedBlob(mut); ok && len(blob) > len(mut) {
			t.Fatalf("tampered trailer at -%d returned out-of-range blob", off)
		}
	}
}

// itoa avoids pulling strconv into the test imports for two call sites.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
