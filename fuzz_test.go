package e9patch

import (
	"fmt"
	"math/rand"
	"testing"

	"e9patch/internal/elf64"
	"e9patch/internal/emu"
	"e9patch/internal/patch"
	"e9patch/internal/trampoline"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// Differential fuzzing: structured random programs are rewritten under
// every application (A1, A2, and the patch-everything L3 stress) and
// executed before/after; outputs, exit codes and cycle ordering must
// agree. This directly tests the paper's correctness claim — all
// jump targets preserved, every displaced instruction operationally
// equivalent — over a far larger space than the hand-written tests.

// genProgram emits a random but always-terminating program. It returns
// the ELF image. The program allocates a buffer, runs `loops` passes of
// a randomized body (ALU soup, masked heap stores/loads, forward
// branches, leaf calls), then outputs a register checksum.
func genProgram(rng *rand.Rand, pie bool) ([]byte, error) {
	base := uint64(elf64.DefaultBase + elf64.TextVaddrOff)
	linkBase := base
	if pie {
		linkBase = elf64.TextVaddrOff
	}
	a := x86.NewAsm(linkBase)

	regs := []x86.Reg{x86.RAX, x86.RCX, x86.RDX, x86.RSI, x86.RDI, x86.R8, x86.R9, x86.R11, x86.R13}
	anyReg := func() x86.Reg { return regs[rng.Intn(len(regs))] }

	over := a.NewLabel()
	a.Jmp(over)

	// Leaf functions: mangle rdi, store through rbx, return.
	nLeaf := rng.Intn(3) + 1
	leaves := make([]*x86.Label, nLeaf)
	for i := range leaves {
		l := a.NewLabel()
		a.Bind(l)
		switch rng.Intn(3) {
		case 0:
			a.ImulRegRegImm32(x86.RDI, x86.RDI, int32(rng.Intn(97)+3))
		case 1:
			a.NotReg64(x86.RDI)
		case 2:
			a.AddRegImm64(x86.RDI, int32(rng.Intn(1000)))
		}
		a.MovRegReg64(x86.R10, x86.RDI)
		a.AndRegImm64(x86.R10, 0xFF8)
		a.MovMemReg64(x86.MIdx(x86.RBX, x86.R10, 1, 0), x86.RDI)
		a.MovRegReg64(x86.RAX, x86.RDI)
		a.Ret()
		leaves[i] = l
	}

	a.Bind(over)
	// rbx = malloc(8 KB).
	a.MovRegImm32(x86.RDI, 0x2000)
	a.MovRegImm64(x86.R10, workload.RTMalloc)
	a.CallReg(x86.R10)
	a.MovRegReg64(x86.RBX, x86.RAX)
	// Seed registers deterministically from the rng.
	for _, r := range regs {
		a.MovRegImm64(r, rng.Uint64())
	}
	// Counted outer loop in r12.
	a.XorRegReg32(x86.R12, x86.R12)
	top := a.NewLabel()
	a.Bind(top)

	nOps := rng.Intn(40) + 20
	for i := 0; i < nOps; i++ {
		switch rng.Intn(16) {
		case 0:
			a.AddRegReg64(anyReg(), anyReg())
		case 1:
			a.SubRegImm64(anyReg(), int32(rng.Intn(1<<20)))
		case 2:
			a.XorRegReg64(anyReg(), anyReg())
		case 3: // masked heap store (A2 site)
			a.MovRegReg64(x86.R10, anyReg())
			a.AndRegImm64(x86.R10, 0xFF8)
			a.MovMemReg64(x86.MIdx(x86.RBX, x86.R10, 1, 0), anyReg())
		case 4: // masked heap load
			a.MovRegReg64(x86.R10, anyReg())
			a.AndRegImm64(x86.R10, 0xFF8)
			a.MovRegMem64(anyReg(), x86.MIdx(x86.RBX, x86.R10, 1, 0))
		case 5: // forward conditional skip (A1 site)
			skip := a.NewLabel()
			cc := x86.Cond(rng.Intn(16))
			a.TestRegReg64(anyReg(), anyReg())
			if rng.Intn(2) == 0 {
				a.JccShort(cc, skip)
			} else {
				a.Jcc(cc, skip)
			}
			a.AddRegImm64(anyReg(), int32(rng.Intn(100)))
			a.ImulRegReg64(anyReg(), anyReg())
			a.Bind(skip)
		case 6: // leaf call
			a.MovRegReg64(x86.RDI, anyReg())
			a.Call(leaves[rng.Intn(nLeaf)])
		case 7:
			a.Lea(anyReg(), x86.MIdx(x86.RBX, x86.RCX, 1, int32(rng.Intn(64))))
		case 8:
			a.ShlRegImm64(anyReg(), uint8(rng.Intn(31)))
		case 9:
			a.MovZXRegMem8(anyReg(), x86.M(x86.RBX, int32(rng.Intn(256))))
		case 10: // byte store (1-byte-adjacent patching material)
			a.MovMemReg8(x86.M(x86.RBX, int32(rng.Intn(256))), x86.RAX)
		case 11: // push/pop pair (single-byte instructions: L2 material)
			r := anyReg()
			a.PushReg(r)
			a.PopReg(r)
		case 12: // carry chain: partial-flag writer feeding adc/sbb
			a.AddRegReg64(anyReg(), anyReg())
			a.AdcRegImm64(anyReg(), int32(rng.Intn(1<<16)))
			a.SbbRegReg64(anyReg(), anyReg())
		case 13: // setcc right after a shift (CF/OF from the shift lattice)
			a.ShlRegImm64(anyReg(), uint8(rng.Intn(31)))
			a.Setcc(x86.Cond(rng.Intn(16)), anyReg())
		case 14: // bare CF manipulation consumed by adc
			switch rng.Intn(3) {
			case 0:
				a.Cmc()
			case 1:
				a.Clc()
			case 2:
				a.Stc()
			}
			a.AdcRegImm64(anyReg(), int32(rng.Intn(100)))
		case 15: // flags into the data flow, and data into the flags
			if rng.Intn(2) == 0 {
				a.NegReg64(anyReg())
				a.Pushfq()
				a.PopReg(anyReg())
			} else {
				a.PushReg(anyReg())
				a.Popfq()
				a.Setcc(x86.Cond(rng.Intn(16)), anyReg())
				a.AdcRegImm64(anyReg(), int32(rng.Intn(100)))
			}
		}
	}

	a.AddRegImm64(x86.R12, 1)
	a.CmpRegImm64(x86.R12, int32(rng.Intn(6)+2))
	a.Jcc(x86.CondL, top)

	// Checksum of every register.
	a.XorRegReg32(x86.RDI, x86.RDI)
	for _, r := range regs {
		a.AddRegReg64(x86.RDI, r)
	}
	a.MovRegImm64(x86.R10, workload.RTOutput)
	a.CallReg(x86.R10)
	a.MovRegReg64(x86.RAX, x86.RDI)
	a.Ret()

	text, err := a.Finish()
	if err != nil {
		return nil, err
	}
	return elf64.Build(elf64.BuildSpec{
		PIE:  pie,
		Text: text,
		Data: make([]byte, 128),
	})
}

func fuzzRun(t *testing.T, bin []byte) *emu.Machine {
	t.Helper()
	m := workload.NewMachine(nil)
	entry, err := Load(m, bin)
	if err != nil {
		t.Fatal(err)
	}
	m.RIP = entry
	if err := m.Run(50_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

// TestDifferentialFuzz is the main property test: for many random
// programs and several rewriting configurations, patched behaviour
// must equal original behaviour.
func TestDifferentialFuzz(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 8
	}
	const counterAddr = 0x3_0000_0000
	configs := []struct {
		name string
		cfg  Config
		prep func(m *emu.Machine)
	}{
		{name: "A1-empty", cfg: Config{Select: SelectJumps}},
		{name: "A2-empty", cfg: Config{Select: SelectHeapWrites}},
		{name: "A1-noT3", cfg: Config{Select: SelectJumps, Patch: patch.Options{DisableT3: true}}},
		{name: "all-b0fallback", cfg: Config{
			Select: SelectAll,
			Patch:  patch.Options{B0Fallback: true},
		}},
		{name: "A2-counter", cfg: Config{
			Select:   SelectHeapWrites,
			Template: trampoline.Counter{Addr: counterAddr},
		}, prep: func(m *emu.Machine) { m.Mem.Map(counterAddr, 8) }},
	}

	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		pie := trial%3 == 0
		bin, err := genProgram(rng, pie)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		origM := fuzzRun(t, bin)

		for _, c := range configs {
			cfg := c.cfg
			cfg.ReserveVA = append([][2]uint64{{counterAddr &^ 0xFFF, counterAddr + 0x1000}},
				workload.ReserveVA()...)
			res, err := Rewrite(bin, cfg)
			if err != nil {
				t.Fatalf("trial %d %s: rewrite: %v", trial, c.name, err)
			}
			pm := workload.NewMachine(nil)
			if c.prep != nil {
				c.prep(pm)
			}
			entry, err := Load(pm, res.Output)
			if err != nil {
				t.Fatalf("trial %d %s: load: %v", trial, c.name, err)
			}
			pm.RIP = entry
			if err := pm.Run(200_000_000); err != nil {
				t.Fatalf("trial %d (pie=%v) %s: patched run: %v\n%s",
					trial, pie, c.name, err, describe(res))
			}
			if len(pm.Output) != len(origM.Output) || pm.Output[0] != origM.Output[0] {
				t.Fatalf("trial %d (pie=%v) %s: output %v != %v\n%s",
					trial, pie, c.name, pm.Output, origM.Output, describe(res))
			}
			if pm.ExitCode != origM.ExitCode {
				t.Fatalf("trial %d %s: exit %#x != %#x", trial, c.name, pm.ExitCode, origM.ExitCode)
			}
		}
	}
}

// FuzzEngines is the engine-differential target: every random program
// must behave identically under every registered engine — the
// decode-per-step interpreter (the reference), the tbc translation
// cache, and the IR-lifting engine — same ExitCode, final registers,
// flags, output stream, memory image, and byte-identical Counters.
// The generator includes dedicated flag-stress material (adc/sbb
// chains, setcc after shifts, cmc/clc/stc, pushfq/popfq) aimed at the
// IR engine's lazy-flag machinery. Under plain `go test` the seed
// corpus runs; `go test -fuzz=FuzzEngines` explores further.
func FuzzEngines(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed, seed%3 == 0)
	}
	f.Fuzz(func(t *testing.T, seed int64, pie bool) {
		rng := rand.New(rand.NewSource(seed))
		bin, err := genProgram(rng, pie)
		if err != nil {
			t.Skip() // assembler rejected the combination; not an engine bug
		}
		run := func(engine string) *emu.Machine {
			saved := workload.Engine
			workload.Engine = engine
			defer func() { workload.Engine = saved }()
			return fuzzRun(t, bin)
		}
		ref := run("interp")
		for _, name := range emu.EngineNames() {
			if name == "interp" {
				continue
			}
			em := run(name)
			if ref.ExitCode != em.ExitCode {
				t.Fatalf("exit: interp %#x, %s %#x", ref.ExitCode, name, em.ExitCode)
			}
			if ref.Regs != em.Regs || ref.RIP != em.RIP || ref.Flags != em.Flags {
				t.Fatalf("final state diverged:\ninterp regs=%x rip=%#x flags=%#x\n%s regs=%x rip=%#x flags=%#x",
					ref.Regs, ref.RIP, ref.Flags, name, em.Regs, em.RIP, em.Flags)
			}
			if ref.Counters != em.Counters {
				t.Fatalf("counters diverged:\ninterp %+v\n%s %+v", ref.Counters, name, em.Counters)
			}
			if len(ref.Output) != len(em.Output) {
				t.Fatalf("output length: interp %d, %s %d", len(ref.Output), name, len(em.Output))
			}
			for i := range ref.Output {
				if ref.Output[i] != em.Output[i] {
					t.Fatalf("output[%d]: interp %#x, %s %#x", i, ref.Output[i], name, em.Output[i])
				}
			}
			if addr, diff := emu.DiffMemory(ref.Mem, em.Mem); diff {
				t.Fatalf("memory diverged at %#x (interp vs %s)", addr, name)
			}
		}
	})
}

func describe(res *Result) string {
	s := res.Stats
	return fmt.Sprintf("stats: total=%d B1=%d B2=%d T1=%d T2=%d T3=%d B0=%d failed=%d",
		s.Total, s.ByTactic[patch.TacticB1], s.ByTactic[patch.TacticB2],
		s.ByTactic[patch.TacticT1], s.ByTactic[patch.TacticT2],
		s.ByTactic[patch.TacticT3], s.ByTactic[patch.TacticB0], s.Failed)
}

// TestFuzzSelectAllCoverage sanity-checks the L3 stress: patching every
// instruction still succeeds for a large majority of locations.
func TestFuzzSelectAllCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bin, err := genProgram(rng, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Rewrite(bin, Config{
		Select:    SelectAll,
		Patch:     patch.Options{B0Fallback: true},
		ReserveVA: workload.ReserveVA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SuccPercent() < 80 {
		t.Errorf("patch-everything coverage %.1f%% (%s)", res.Stats.SuccPercent(), describe(res))
	}
}
