// Package e9patch is a static binary rewriter for x86-64 ELF binaries
// that needs no control-flow recovery, reproducing the system from
// "Binary Rewriting without Control Flow Recovery" (Duck, Gao,
// Roychoudhury — PLDI 2020).
//
// The rewriter replaces selected instructions with (possibly punned,
// padded, or evicted) jumps to trampolines, strictly in place,
// preserving the set of jump targets. New content — trampoline pages
// merged by physical page grouping, the mmap table, and the SIGTRAP
// dispatch table — is appended at end-of-file without moving a byte of
// the original binary.
//
// Typical use:
//
//	res, err := e9patch.Rewrite(binary, e9patch.Config{
//	        Select:   e9patch.SelectHeapWrites,
//	        Template: trampoline.Empty{},
//	})
package e9patch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"e9patch/internal/disasm"
	"e9patch/internal/e9err"
	"e9patch/internal/elf64"
	"e9patch/internal/emu"
	"e9patch/internal/group"
	"e9patch/internal/loader"
	"e9patch/internal/match"
	"e9patch/internal/patch"
	"e9patch/internal/plan"
	"e9patch/internal/trampoline"
	"e9patch/internal/va"
	"e9patch/internal/work"
	"e9patch/internal/x86"
)

// PIEBase is the deterministic load bias applied to ET_DYN binaries
// (the address the Linux loader picks for PIE executables when ASLR is
// disabled; our simulated loader is deterministic by design).
const PIEBase uint64 = 0x5555_5555_4000

// Pool is a bounded worker pool shared across rewrites: when several
// concurrent rewrites are handed the same pool, the sum of their
// helper goroutines never exceeds the pool size, no matter how many
// rewrites run at once.
type Pool = work.Pool

// NewPool creates a worker pool with n slots (n <= 0: GOMAXPROCS).
func NewPool(n int) *Pool { return work.NewPool(n) }

// DisasmMode selects the instruction-recovery frontend the rewriter
// runs before matching. Every mode feeds the same downstream pipeline;
// they differ only in which candidate instructions they recover.
type DisasmMode = disasm.Mode

// The available recovery frontends.
const (
	// DisasmLinear is the classic linear sweep (the default; the zero
	// value of Config.Disasm selects it). Byte-identical to releases
	// that predate pluggable modes, at every parallelism width.
	DisasmLinear = disasm.ModeLinear
	// DisasmSuperset decodes at every byte offset and keeps the
	// refined superset — for binaries whose instruction boundaries are
	// unknown (stripped, or with data interleaved in text).
	DisasmSuperset = disasm.ModeSuperset
	// DisasmSupersetCET prunes the superset to the forward closure of
	// endbr64 landing pads, classifying reachable code on CET-enabled
	// binaries without control-flow recovery.
	DisasmSupersetCET = disasm.ModeSupersetCET
)

// ParseDisasmMode validates a mode name from a flag or wire protocol
// ("" selects DisasmLinear).
func ParseDisasmMode(s string) (DisasmMode, error) { return disasm.ParseMode(s) }

// DisasmStats describes what a superset-family frontend recovered;
// see disasm.SupersetStats.
type DisasmStats = disasm.SupersetStats

// Selector chooses patch locations among the disassembled instructions.
type Selector func(insts []x86.Inst) []int

// ParallelSafe marks a custom selector as safe for sharded matching
// and returns it. A selector is shard-safe when its decision for
// instruction i depends on insts[i] alone — no neighbour inspection,
// no internal state, no dependence on slice positions. Selectors not
// marked safe are simply evaluated sequentially.
func ParallelSafe(sel Selector) Selector {
	match.RegisterShardable(sel)
	return sel
}

func init() {
	// The built-in selectors are all per-instruction predicates.
	match.RegisterShardable(SelectJumps)
	match.RegisterShardable(SelectHeapWrites)
	match.RegisterShardable(SelectAll)
	match.RegisterShardable(disasm.SelectJumps)
	match.RegisterShardable(disasm.SelectHeapWrites)
	match.RegisterShardable(disasm.SelectAll)
}

// SelectJumps is the paper's application A1: instrument all jmp/jcc.
func SelectJumps(insts []x86.Inst) []int { return disasm.SelectJumps(insts) }

// SelectHeapWrites is the paper's application A2: instrument all
// instructions that may write through heap pointers.
func SelectHeapWrites(insts []x86.Inst) []int { return disasm.SelectHeapWrites(insts) }

// SelectAll selects every instruction (stress-tests limitation L3).
func SelectAll(insts []x86.Inst) []int { return disasm.SelectAll(insts) }

// SelectAddresses selects the instructions starting at exactly the
// given virtual addresses (runtime coordinates, i.e. including PIEBase
// for PIE binaries) — the binary-patching use case, where the patch
// targets a handful of known locations.
func SelectAddresses(addrs ...uint64) Selector {
	want := make(map[uint64]bool, len(addrs))
	for _, a := range addrs {
		want[a] = true
	}
	sel := func(insts []x86.Inst) []int {
		var out []int
		for i := range insts {
			if want[insts[i].Addr] {
				out = append(out, i)
			}
		}
		return out
	}
	match.RegisterShardable(sel)
	return sel
}

// SelectMatch compiles an E9Tool-style matcher expression into a
// selector, e.g. "jcc & short", "heapwrite | call",
// "mnemonic=mov & !memwrite". See the match package for the grammar.
func SelectMatch(expr string) (Selector, error) {
	pred, err := match.Compile(expr)
	if err != nil {
		return nil, err
	}
	return match.Select(pred), nil
}

// Template builds trampoline code for displaced instructions; see the
// trampoline package for the built-in templates (Empty, Counter, Raw,
// Call) and the lowfat package for the hardening check.
type Template = trampoline.Template

// Injection is one extra memory image mapped into the rewritten
// binary's address space at load time, in runtime coordinates — how
// spec-language call patches ship their payload ELF segments. The
// pipeline validates that injections never overlap the input's own
// segments (page-rounded) or each other, and reserves their pages so
// no trampoline lands inside them.
type Injection = plan.Injection

// injectDefaultBase is where pipeline-allocated injections (the call
// template's argument tables) go when the configuration injects
// nothing of its own. It sits far above both link bases and PIEBase,
// and below the stack region.
const injectDefaultBase uint64 = 0xA_0000_0000

// RawTemplate adapts a code-emitting callback into a trampoline
// template, for arbitrary binary patches (the paper's Example 3.1).
// The callback receives the displaced instruction and the resume
// address (its original successor) and emits the full patch body.
func RawTemplate(code func(a *x86.Asm, inst *x86.Inst, resume uint64) error) Template {
	return trampoline.Raw{Code: code}
}

// Config controls a rewrite.
type Config struct {
	// Select picks the patch locations (required).
	Select Selector
	// Template builds the patch trampolines (default: empty
	// instrumentation that re-executes the displaced instruction).
	Template trampoline.Template
	// Patch carries tactic switches (DisableT1/T2/T3, B0Fallback, …).
	// Its Template fields are overridden by Template above.
	Patch patch.Options
	// Granularity is the physical-page-grouping block size in pages
	// (default 1 = most aggressive; <0 disables grouping entirely,
	// emitting a naïve one-to-one physical image).
	Granularity int
	// ReserveVA lists extra [lo, hi) ranges trampolines must avoid
	// (e.g. runtime-call addresses).
	ReserveVA [][2]uint64
	// Inject lists extra memory images to map into the output binary
	// (payload ELF segments for spec-language call patches). Addresses
	// are runtime coordinates; pages are reserved against trampoline
	// placement and recorded in the PatchPlan.
	Inject []Injection
	// SkipPrefix disassembles only after the first SkipPrefix bytes of
	// .text (the paper's ChromeMain workaround for data-in-text).
	SkipPrefix uint64
	// Disasm selects the instruction-recovery frontend (DisasmLinear,
	// DisasmSuperset, DisasmSupersetCET; the zero value is
	// DisasmLinear). The recovered set is the instruction universe
	// selectors match over and plans are bound to: a PatchPlan records
	// the mode plus a digest of the recovered set, and Apply rejects a
	// plan replayed under a different universe.
	Disasm DisasmMode
	// Parallelism bounds the worker goroutines used by the sharded
	// disassembly, matching and region-parallel patching phases
	// (default: GOMAXPROCS; 1 runs everything sequentially). The output
	// is byte-identical for every value — parallelism only changes
	// scheduling, never placement decisions.
	Parallelism int
	// Pool, when non-nil, is a shared bounded worker pool: concurrent
	// rewrites handed the same pool never exceed its size in total
	// helper goroutines, even while each also shards internally.
	Pool *Pool
	// Limits bounds the resources this rewrite may consume (input and
	// text size, patch sites, trampoline bytes, per-phase deadlines).
	// The zero value disables every bound; violations surface as
	// ErrResourceLimit.
	Limits Limits
}

// Result is the outcome of a rewrite.
type Result struct {
	// Output is the rewritten binary (original bytes + appended blob).
	Output []byte
	// Stats are the per-tactic patching statistics (Table 1).
	Stats patch.Stats
	// Group reports the physical page grouping outcome.
	Group group.Stats
	// Mappings is the number of load-time mmap calls required.
	Mappings int
	// InputSize and OutputSize are the file sizes in bytes.
	InputSize, OutputSize int
	// Insts is the number of recovered instructions; BadBytes the count
	// of undecodable bytes (offsets, for the superset modes) the
	// frontend skipped.
	Insts, BadBytes int
	// Disasm names the instruction-recovery mode the rewrite ran with
	// ("linear", "superset" or "superset-cet").
	Disasm string
	// Recovery carries the superset frontend's decode/prune statistics.
	// It is nil for linear mode and whenever recovery did not run
	// in-process (the trusted apply step inside Rewrite replays the
	// plan's decisions without re-disassembling).
	Recovery *DisasmStats
	// Bias is the load bias used during patching (PIEBase for PIE).
	Bias uint64
	// Trampolines is the number of trampolines emitted.
	Trampolines int
	// InjectedBytes is the total size of injected memory images
	// (payload segments and argument tables; 0 without injections).
	InjectedBytes int
	// Locations records the per-location outcome (address in runtime
	// coordinates and the tactic that succeeded), in patch order.
	Locations []patch.LocResult
	// Warnings lists non-fatal anomalies detected during the rewrite,
	// e.g. an address-based selector that matched nothing because its
	// addresses looked file-relative for a PIE binary.
	Warnings []string
}

// SizePercent returns the output/input file size ratio in percent
// (Table 1's Size% column, 0 when the input size is unknown).
func (r *Result) SizePercent() float64 {
	if r.InputSize == 0 {
		return 0
	}
	return 100 * float64(r.OutputSize) / float64(r.InputSize)
}

// PatchPlan is the serializable decision record produced by Plan and
// consumed by Apply: one entry per patch location carrying the chosen
// tactic, the committed byte edits, the trampoline layout (eviction
// chains included) and any B0 dispatch bindings. See internal/plan for
// the JSON schema and DESIGN.md §9 for the architecture.
type PatchPlan = plan.PatchPlan

// DecodePlan parses a plan previously rendered with PatchPlan.Encode,
// rejecting unknown schema versions.
func DecodePlan(data []byte) (*PatchPlan, error) { return plan.Decode(data) }

// Rewrite statically rewrites the binary according to cfg. The input
// slice is not modified.
//
// Rewrite is Plan followed by Apply: every decision is first recorded
// into a PatchPlan, then a decision-free materializer replays the plan
// onto the input. Callers that want the intermediate artefact (to
// cache, audit or ship it) use the two phases directly.
func Rewrite(input []byte, cfg Config) (*Result, error) {
	return RewriteContext(context.Background(), input, cfg)
}

// ctxErr converts a context cancellation into the rewrite error
// returned at phase boundaries.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("e9patch: rewrite aborted: %w", err)
	}
	return nil
}

// phaseDeadline derives a per-phase context when Limits.PhaseTimeout is
// set; with no timeout the parent context is returned unchanged with a
// no-op cancel, so callers can treat both shapes uniformly.
func phaseDeadline(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// RewriteContext is Rewrite with cancellation: the pipeline checks ctx
// at every phase boundary (parse → disasm → match → patch →
// trampoline/group → emit) and inside the patching loop, so a rewrite
// whose caller has gone away stops early instead of emitting an output
// nobody will read. The returned error wraps ctx.Err() when aborted.
func RewriteContext(ctx context.Context, input []byte, cfg Config) (_ *Result, err error) {
	p, st, err := planContext(ctx, input, cfg)
	if err != nil {
		return nil, err
	}
	// The plan was produced in-process an instant ago from this very
	// input: its universe digest is trusted rather than re-derived, so
	// Rewrite pays for instruction recovery exactly once.
	defer e9err.Recover("apply", &err)
	res, err := applyContext(ctx, input, p, false)
	if err != nil {
		return nil, err
	}
	// The trusted apply skipped re-recovery; surface the planning
	// phase's recovery statistics on the one-shot result.
	res.Recovery = st.sstats
	return res, nil
}

// Plan runs the decision phase only: disassemble, match, run the S1
// reverse-order tactic selection and allocate every trampoline against
// the binary's address space — without materializing an output. The
// returned plan is deterministic (planning twice yields byte-identical
// encodings), bound to the input by SHA-256, and Apply(input, plan)
// reproduces Rewrite(input, cfg) byte-for-byte. The input slice is not
// modified.
func Plan(input []byte, cfg Config) (*PatchPlan, error) {
	return PlanContext(context.Background(), input, cfg)
}

// PlanContext is Plan with cancellation (see RewriteContext). It is a
// recovery boundary: a panic escaping the pipeline — a rewriter bug
// tripped by unforeseen input — is contained and returned as
// ErrInternal with the stack attached, never propagated to the caller.
func PlanContext(ctx context.Context, input []byte, cfg Config) (*PatchPlan, error) {
	p, _, err := planContext(ctx, input, cfg)
	return p, err
}

// planContext is PlanContext returning the pipeline state alongside
// the plan, so in-process callers (RewriteContext) can surface
// planning-phase statistics without re-running recovery.
func planContext(ctx context.Context, input []byte, cfg Config) (_ *PatchPlan, _ *planPipeline, err error) {
	defer e9err.Recover("plan", &err)
	st, err := runPlanPipeline(ctx, input, cfg, false)
	if err != nil {
		return nil, nil, err
	}
	p := &plan.PatchPlan{
		Version:      plan.Version,
		Bias:         st.bias,
		TextAddr:     st.textAddr + st.bias,
		TextLen:      st.textLen,
		Granularity:  st.gran,
		SkipPrefix:   cfg.SkipPrefix,
		Disasm:       string(st.mode),
		DisasmDigest: st.digest,
		Insts:        st.insts,
		BadBytes:     st.badBytes,
		Warnings:     st.warnings,
		Injections:   st.inject,
		Sites:        st.rw.Sites(),
	}
	p.BindInput(input)
	return p, st, nil
}

// Apply materializes a plan onto input: replay the recorded byte
// edits, group the recorded trampolines and append the loader blob.
// No decision logic runs — a plan produced on one machine can be
// audited and applied on another. The input must be the binary the
// plan was made for (checked via the bound SHA-256 and the text
// geometry); the input slice is not modified.
func Apply(input []byte, p *PatchPlan) (*Result, error) {
	return ApplyContext(context.Background(), input, p)
}

// ApplyContext is Apply with cancellation. Like PlanContext it is a
// recovery boundary: hostile plans are validated up front, and any
// residual panic is contained and returned as ErrInternal.
//
// When the plan carries a disassembly-universe digest, ApplyContext
// re-runs instruction recovery under the plan's recorded mode and
// requires the digests to match: a plan emitted under one mode (or
// against a different binary revision) is rejected instead of silently
// replaying byte edits into a universe the planner never saw.
func ApplyContext(ctx context.Context, input []byte, p *PatchPlan) (_ *Result, err error) {
	defer e9err.Recover("apply", &err)
	return applyContext(ctx, input, p, true)
}

// ApplyTrusted is ApplyTrustedContext without cancellation.
func ApplyTrusted(input []byte, p *PatchPlan) (*Result, error) {
	return ApplyTrustedContext(context.Background(), input, p)
}

// ApplyTrustedContext materializes a plan from a trusted producer —
// this process, or a cluster peer running the same build — without
// re-deriving the disassembly-universe digest that ApplyContext checks.
//
// It only accepts input-bound plans (non-empty InputSHA256, still
// verified against input): for a bound plan the recorded universe is a
// deterministic function of the mode and text bytes the hash already
// pins, so re-derivation can only re-prove what the binding
// established — at full instruction-recovery cost, which dominates
// Apply on large binaries. Every structural validation (text geometry,
// write bounds, injection ranges, tactic names) still runs; what is
// skipped is purely the redundant recovery pass. Plans from untrusted
// sources should keep going through ApplyContext, whose digest check
// rejects a plan that lies about its recovery mode.
func ApplyTrustedContext(ctx context.Context, input []byte, p *PatchPlan) (_ *Result, err error) {
	defer e9err.Recover("apply", &err)
	if p != nil && p.InputSHA256 == "" {
		return nil, e9err.Malformed("apply", "e9patch: ApplyTrusted requires an input-bound plan (empty inputSha256): use Apply")
	}
	return applyContext(ctx, input, p, false)
}

// applyContext materializes a plan. verifyUniverse selects whether the
// recorded disassembly digest is re-derived and checked (the public
// Apply surface) or trusted (the in-process Rewrite fast path).
func applyContext(ctx context.Context, input []byte, p *PatchPlan, verifyUniverse bool) (*Result, error) {
	if p == nil {
		return nil, e9err.Malformed("apply", "e9patch: nil plan")
	}
	if p.Version != plan.Version {
		return nil, e9err.Unsupported("apply", "e9patch: unsupported plan version %d (this build understands %d)", p.Version, plan.Version)
	}
	if p.Granularity > MaxGranularity {
		return nil, e9err.Unsupported("apply", "e9patch: plan granularity %d exceeds the maximum %d", p.Granularity, MaxGranularity)
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := p.CheckInput(input); err != nil {
		return nil, err
	}

	// Parse the input read-only: the compose path below never writes to
	// the parsed image, so no private copy is needed — input may be a
	// read-only mmap view.
	f, err := elf64.Parse(input)
	if err != nil {
		return nil, err
	}
	var bias uint64
	if f.IsPIE() {
		bias = PIEBase
	}
	if bias != p.Bias {
		return nil, e9err.Malformed("apply", "e9patch: plan load bias %#x does not match binary (%#x)", p.Bias, bias)
	}
	textOff, textAddr, textSize, err := f.TextRange()
	if err != nil {
		return nil, err
	}
	text := input[textOff : textOff+textSize]
	if textAddr+bias != p.TextAddr || len(text) != p.TextLen {
		return nil, e9err.Malformed("apply", "e9patch: plan text geometry %#x+%d does not match binary %#x+%d",
			p.TextAddr, p.TextLen, textAddr+bias, len(text))
	}
	mode, err := disasm.ParseMode(p.Disasm)
	if err != nil {
		return nil, e9err.Unsupported("apply", "e9patch: plan %v", err)
	}
	var sstats *disasm.SupersetStats
	if verifyUniverse && p.DisasmDigest != "" {
		// Re-derive the instruction universe under the plan's recorded
		// mode and bind it to the recorded digest: replaying under a
		// different mode (or a drifted binary) is a mismatch, not a
		// silent mispatch. Recovery is deterministic in width, so any
		// parallelism reproduces the planner's digest.
		if p.SkipPrefix > uint64(len(text)) {
			return nil, e9err.Malformed("apply", "e9patch: plan skip prefix %d exceeds .text size %d", p.SkipPrefix, len(text))
		}
		dres, stats, dok := disasm.RecoverCancel(mode, text[p.SkipPrefix:], textAddr+bias+p.SkipPrefix,
			runtime.GOMAXPROCS(0), nil, ctx.Done())
		if !dok {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			return nil, e9err.Internal("apply", "e9patch: disassembly aborted without a cancellation cause")
		}
		if got := disasm.UniverseDigest(mode, dres); got != p.DisasmDigest {
			return nil, e9err.Malformed("apply",
				"e9patch: plan's recorded %s-mode instruction universe does not match this binary (digest mismatch): replan, or apply under the mode the plan was emitted with", mode)
		}
		sstats = stats
	}
	// Injections come from the (possibly hostile) plan; revalidate them
	// against this binary before mapping anything.
	if err := validateInjections(p.Injections, f, bias, "apply"); err != nil {
		return nil, err
	}

	// Replay the decision stream: byte edits into a fresh text image,
	// trampolines and dispatch entries into the emit inputs, tactics
	// into the statistics. The accumulators are sized from the plan up
	// front — replay is decision-free, so the counts are exact.
	code := make([]byte, len(text))
	copy(code, text)
	nsig := 0
	for i := range p.Sites {
		nsig += len(p.Sites[i].SigTab)
	}
	var trs []patch.Trampoline
	var locs []patch.LocResult
	if n := p.TrampolineCount(); n > 0 {
		trs = make([]patch.Trampoline, 0, n)
	}
	if len(p.Sites) > 0 {
		locs = make([]patch.LocResult, 0, len(p.Sites))
	}
	sig := make(map[uint64]uint64, nsig)
	var stats patch.Stats
	for i := range p.Sites {
		s := &p.Sites[i]
		tac, ok := patch.TacticFromName(s.Tactic)
		if !ok {
			return nil, e9err.MalformedAt("apply", s.Addr, "e9patch: plan site: unknown tactic %q", s.Tactic)
		}
		stats.Total++
		if tac == patch.TacticNone {
			stats.Failed++
		} else {
			stats.ByTactic[tac]++
		}
		locs = append(locs, patch.LocResult{Addr: s.Addr, Tactic: tac})
		for _, wr := range s.Writes {
			o := int64(wr.Addr) - int64(p.TextAddr)
			if o < 0 || o+int64(len(wr.Data)) > int64(len(code)) {
				return nil, e9err.MalformedAt("apply", wr.Addr, "e9patch: plan write of %d bytes outside .text", len(wr.Data))
			}
			copy(code[o:], wr.Data)
		}
		for _, tr := range s.Trampolines {
			trs = append(trs, patch.Trampoline{Addr: tr.Addr, Code: tr.Code, ForAddr: tr.For, Evictee: tr.Evictee})
		}
		for _, se := range s.SigTab {
			sig[se.Int3] = se.Trampoline
		}
	}

	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	out, gres, err := materializeCompose(input, f, bias, textOff, code, trs, sig, p.Granularity, p.Injections)
	if err != nil {
		return nil, err
	}
	return &Result{
		Output:        out,
		Stats:         stats,
		Group:         gres.Stats,
		Mappings:      gres.Stats.Mappings,
		InputSize:     len(input),
		OutputSize:    len(out),
		Insts:         p.Insts,
		BadBytes:      p.BadBytes,
		Disasm:        string(mode),
		Recovery:      sstats,
		Bias:          bias,
		Trampolines:   len(trs),
		InjectedBytes: injectedBytes(p.Injections),
		Locations:     locs,
		Warnings:      p.Warnings,
	}, nil
}

// pipelineState is the parse+disassembly outcome shared by the
// one-shot pipeline and the streaming session: the decision phases that
// follow (selection, injections, patching) all run against it.
type pipelineState struct {
	f        *elf64.File
	bias     uint64
	textOff  uint64 // file offset of .text
	textAddr uint64 // link-time .text address
	text     []byte
	insts    []x86.Inst
	badBytes int
	width    int
	mode     disasm.Mode
	sstats   *disasm.SupersetStats // nil for linear mode
}

// universeDigest fingerprints the recovered instruction universe for
// plan binding.
func (st *pipelineState) universeDigest() string {
	return disasm.UniverseDigest(st.mode, disasm.Result{Insts: st.insts, BadBytes: st.badBytes})
}

// openPipeline runs the front half of the decision pipeline: normalize
// the configuration, enforce the input-side limits, parse the ELF and
// disassemble .text. cfg is normalized in place (template and
// granularity defaults). When private is set the binary is copied first
// so a later in-place materialization (rewriteLegacy) cannot touch the
// caller's bytes; the zero-copy paths pass private=false and are
// guaranteed read-only access to input — it may be an mmap view.
func openPipeline(ctx context.Context, input []byte, cfg *Config, private bool) (*pipelineState, error) {
	if cfg.Template == nil {
		cfg.Template = trampoline.Empty{}
	}
	if cfg.Granularity == 0 {
		cfg.Granularity = 1
	}
	if cfg.Granularity > MaxGranularity {
		return nil, e9err.Unsupported("plan", "e9patch: granularity %d exceeds the maximum %d", cfg.Granularity, MaxGranularity)
	}
	mode, err := disasm.ParseMode(string(cfg.Disasm))
	if err != nil {
		return nil, e9err.Unsupported("plan", "e9patch: %v", err)
	}
	cfg.Disasm = mode
	lim := cfg.Limits
	if lim.MaxInputBytes > 0 && int64(len(input)) > lim.MaxInputBytes {
		return nil, e9err.Limit("parse", e9err.ReasonInputTooLarge,
			"e9patch: input is %d bytes, limit is %d", len(input), lim.MaxInputBytes)
	}

	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	data := input
	if private {
		data = make([]byte, len(input))
		copy(data, input)
	}
	f, err := elf64.Parse(data)
	if err != nil {
		return nil, err
	}
	var bias uint64
	if f.IsPIE() {
		bias = PIEBase
	}

	textOff, textAddr, textSize, err := f.TextRange()
	if err != nil {
		return nil, err
	}
	text := f.Data[textOff : textOff+textSize]
	if lim.MaxTextBytes > 0 && int64(len(text)) > lim.MaxTextBytes {
		return nil, e9err.Limit("parse", e9err.ReasonTextTooLarge,
			"e9patch: .text is %d bytes, limit is %d", len(text), lim.MaxTextBytes)
	}
	if cfg.SkipPrefix > uint64(len(text)) {
		return nil, fmt.Errorf("e9patch: SkipPrefix %d exceeds .text size %d", cfg.SkipPrefix, len(text))
	}
	width := cfg.Parallelism
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}

	// The frontend: sharded instruction recovery under the configured
	// mode, locations and sizes only. Linear's sharded sweep provably
	// equals the sequential one (seam repair, see disasm.Parallel) and
	// the superset decode is per-offset independent, so shard geometry
	// is free to follow width in every mode.
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	dctx, dcancel := phaseDeadline(ctx, lim.PhaseTimeout)
	dres, sstats, dok := disasm.RecoverCancel(mode, text[cfg.SkipPrefix:], textAddr+bias+cfg.SkipPrefix, width, cfg.Pool, dctx.Done())
	if !dok {
		deadlined := errors.Is(dctx.Err(), context.DeadlineExceeded)
		dcancel()
		if deadlined {
			return nil, e9err.Limit("disasm", e9err.ReasonPhaseDeadline,
				"e9patch: disassembly exceeded the phase deadline %s", lim.PhaseTimeout)
		}
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		return nil, e9err.Internal("disasm", "e9patch: disassembly aborted without a cancellation cause")
	}
	dcancel()

	return &pipelineState{
		f:        f,
		bias:     bias,
		textOff:  textOff,
		textAddr: textAddr,
		text:     text,
		insts:    dres.Insts,
		badBytes: dres.BadBytes,
		width:    width,
		mode:     mode,
		sstats:   sstats,
	}, nil
}

// finishPlanPhase runs the decision phases that follow selection:
// injection preparation and validation, address-space reservation, and
// the S1 reverse-order patch loop with trampoline allocation. selected
// holds instruction indices in ascending order. skipPlan drops the
// per-location plan record for consumers that materialize straight
// from the live rewriter (the streaming session).
func finishPlanPhase(ctx context.Context, st *pipelineState, cfg *Config, selected []int, skipPlan bool) (*patch.Rewriter, []plan.Injection, error) {
	lim := cfg.Limits

	// Injection phase: copy the configured injections, give Preparer
	// templates (the call trampoline's argument tables) their
	// whole-selection pass with an allocator that appends further
	// injections, then validate the lot against the binary's segments.
	inject := make([]plan.Injection, 0, len(cfg.Inject))
	for _, inj := range cfg.Inject {
		d := make(plan.Bytes, len(inj.Data))
		copy(d, inj.Data)
		inject = append(inject, plan.Injection{Addr: inj.Addr, Data: d})
	}
	if prep, ok := cfg.Template.(trampoline.Preparer); ok {
		alloc := func(data []byte) (uint64, error) {
			base := injectionTop(inject)
			d := make(plan.Bytes, len(data))
			copy(d, data)
			inject = append(inject, plan.Injection{Addr: base, Data: d})
			return base, nil
		}
		if err := prep.Prepare(st.insts, selected, alloc); err != nil {
			return nil, nil, e9err.Wrap(e9err.ErrUnsupported, "plan", err)
		}
	}
	if err := validateInjections(inject, st.f, st.bias, "plan"); err != nil {
		return nil, nil, err
	}

	// Address-space model: all loaded segments are off limits
	// (page-rounded, since the loader maps whole pages), as are any
	// caller-reserved ranges.
	space := va.NewDefault()
	for _, p := range st.f.Progs {
		if p.Type != elf64.PTLoad || p.Memsz == 0 {
			continue
		}
		lo := (p.Vaddr + st.bias) &^ (elf64.PageSize - 1)
		hi := (p.Vaddr + st.bias + p.Memsz + elf64.PageSize - 1) &^ (elf64.PageSize - 1)
		if err := reserveMerged(space, lo, hi); err != nil {
			return nil, nil, err
		}
	}
	for _, iv := range cfg.ReserveVA {
		if err := reserveMerged(space, iv[0], iv[1]); err != nil {
			return nil, nil, err
		}
	}
	for _, inj := range inject {
		lo := inj.Addr &^ (elf64.PageSize - 1)
		hi := (inj.Addr + uint64(len(inj.Data)) + elf64.PageSize - 1) &^ (elf64.PageSize - 1)
		if err := reserveMerged(space, lo, hi); err != nil {
			return nil, nil, err
		}
	}
	_, loadHi := st.f.LoadBounds()
	poolHint := (loadHi + st.bias + 2*elf64.PageSize) &^ (elf64.PageSize - 1)

	// Patch phase: the heavy loop also polls ctx between locations.
	if err := ctxErr(ctx); err != nil {
		return nil, nil, err
	}
	popts := cfg.Patch
	popts.Template = cfg.Template
	popts.Workers = st.width
	popts.SkipPlan = skipPlan
	if cfg.Pool != nil {
		popts.Pool = cfg.Pool
	}
	if lim.MaxTrampolineBytes > 0 {
		popts.TrampolineBudget = lim.MaxTrampolineBytes
	}
	pctx, pcancel := phaseDeadline(ctx, lim.PhaseTimeout)
	popts.Cancel = pctx.Done()
	rw := patch.New(st.text, st.textAddr+st.bias, st.insts, space, poolHint, popts)
	rw.PatchAll(selected)
	deadlined := errors.Is(pctx.Err(), context.DeadlineExceeded)
	pcancel()
	if deadlined {
		return nil, nil, e9err.Limit("patch", e9err.ReasonPhaseDeadline,
			"e9patch: patching exceeded the phase deadline %s", lim.PhaseTimeout)
	}
	if err := ctxErr(ctx); err != nil {
		return nil, nil, err
	}
	if rw.LimitExceeded() {
		return nil, nil, e9err.Limit("patch", e9err.ReasonTrampolineBudget,
			"e9patch: emitted trampoline code exceeds the %d-byte budget", lim.MaxTrampolineBytes)
	}
	return rw, inject, nil
}

// planPipeline is the state the decision phase hands to its consumers
// (PlanContext, and rewriteLegacy for the differential reference).
type planPipeline struct {
	f        *elf64.File
	bias     uint64
	textAddr uint64 // link-time .text address
	textLen  int
	rw       *patch.Rewriter
	insts    int
	badBytes int
	warnings []string
	gran     int // normalized granularity (negative: naive emission)
	inject   []plan.Injection
	mode     disasm.Mode
	digest   string                // universe digest of the recovered set
	sstats   *disasm.SupersetStats // nil for linear mode
}

// runPlanPipeline executes the decision phases: parse → sharded
// disassembly → match → S1 reverse-order patching with trampoline
// allocation. The input slice is never written; private selects whether
// the parsed file gets its own copy of the bytes (required only when
// the caller will materialize in place afterwards, i.e. rewriteLegacy —
// the plan-only path reads the input and nothing else).
func runPlanPipeline(ctx context.Context, input []byte, cfg Config, private bool) (*planPipeline, error) {
	if cfg.Select == nil {
		return nil, errors.New("e9patch: Config.Select is required")
	}
	st, err := openPipeline(ctx, input, &cfg, private)
	if err != nil {
		return nil, err
	}

	// Match phase: run the selector over the disassembly, sharded when
	// the selector is registered as per-instruction pure.
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	selected := parallelSelect(cfg.Select, st.insts, st.width, cfg.Pool)
	if lim := cfg.Limits; lim.MaxPatchSites > 0 && len(selected) > lim.MaxPatchSites {
		return nil, e9err.Limit("match", e9err.ReasonTooManySites,
			"e9patch: selector chose %d patch sites, limit is %d", len(selected), lim.MaxPatchSites)
	}
	warnings := diagnoseSelection(cfg.Select, st.insts, selected, st.bias)

	rw, inject, err := finishPlanPhase(ctx, st, &cfg, selected, false)
	if err != nil {
		return nil, err
	}
	return &planPipeline{
		f:        st.f,
		bias:     st.bias,
		textAddr: st.textAddr,
		textLen:  len(st.text),
		rw:       rw,
		insts:    len(st.insts),
		badBytes: st.badBytes,
		warnings: warnings,
		gran:     cfg.Granularity,
		inject:   inject,
		mode:     st.mode,
		digest:   st.universeDigest(),
		sstats:   st.sstats,
	}, nil
}

// buildBlob is the emit core shared by every materialization path:
// group trampolines and injections into merged physical blocks
// (addresses stored link-relative so the loader can apply any bias) and
// encode the loader blob. entry is the output binary's entry point.
func buildBlob(entry, bias uint64, trs []patch.Trampoline, sig map[uint64]uint64, gran int, inject []plan.Injection) ([]byte, *group.Result, error) {
	chunks := make([]group.Chunk, len(trs), len(trs)+len(inject))
	for i, tr := range trs {
		chunks[i] = group.Chunk{Addr: tr.Addr - bias, Data: tr.Code}
	}
	// Injections ride the same blob: addresses are stored link-relative
	// like trampoline chunks (the subtraction may wrap for a PIE bias —
	// the loader's bias addition wraps back to the absolute address).
	for _, inj := range inject {
		chunks = append(chunks, group.Chunk{Addr: inj.Addr - bias, Data: inj.Data})
	}
	naive := false
	if gran < 0 {
		gran, naive = 1, true
	}
	gres, err := group.Build(chunks, gran)
	if err != nil {
		// Grouping rejects overlapping or inconsistent trampoline
		// layouts; the plan pipeline never produces them, so reaching
		// this from Apply means the plan itself was bad.
		return nil, nil, e9err.Wrap(e9err.ErrMalformed, "emit", err)
	}
	if naive {
		gres = ungroup(gres)
	}
	shifted := make(map[uint64]uint64, len(sig))
	for k, v := range sig {
		shifted[k-bias] = v - bias
	}
	return loader.Encode(gres, gran, shifted, entry), gres, nil
}

// materialize is the in-place emit tail: write the patched text into
// the (privately copied) file image, then append the loader blob
// without moving a byte of the original.
func materialize(f *elf64.File, bias, textAddr uint64, code []byte, trs []patch.Trampoline, sig map[uint64]uint64, gran int, inject []plan.Injection) ([]byte, *group.Result, error) {
	if err := f.PatchBytes(textAddr, code); err != nil {
		return nil, nil, err
	}
	blob, gres, err := buildBlob(f.Header.Entry, bias, trs, sig, gran, inject)
	if err != nil {
		return nil, nil, err
	}
	return elf64.Append(f.Data, blob), gres, nil
}

// materializeCompose is the zero-copy emit tail: it never writes to the
// parsed file, instead composing the output in a single allocation from
// the original bytes, the patched text image and the loader blob —
// byte-identical to materialize. input must be the exact bytes f was
// parsed from (it may be a read-only mmap view), and code overlays
// .text at textOff as validated by TextRange.
func materializeCompose(input []byte, f *elf64.File, bias, textOff uint64, code []byte, trs []patch.Trampoline, sig map[uint64]uint64, gran int, inject []plan.Injection) ([]byte, *group.Result, error) {
	blob, gres, err := buildBlob(f.Header.Entry, bias, trs, sig, gran, inject)
	if err != nil {
		return nil, nil, err
	}
	return elf64.Compose(input, textOff, code, blob), gres, nil
}

// rewriteLegacy is the pre-split monolithic pipeline: decide and
// materialize in one pass, straight from the rewriter's own state with
// no plan in between. It is retained as the reference implementation
// the Plan/Apply differential tests (make plancheck) compare against,
// with the same recovery boundary as the split phases.
func rewriteLegacy(ctx context.Context, input []byte, cfg Config) (_ *Result, err error) {
	defer e9err.Recover("rewrite", &err)
	st, err := runPlanPipeline(ctx, input, cfg, true)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	rw := st.rw
	trs := rw.Trampolines()
	out, gres, err := materialize(st.f, st.bias, st.textAddr, rw.Code(), trs, rw.SigTab(), st.gran, st.inject)
	if err != nil {
		return nil, err
	}
	return &Result{
		Output:        out,
		Stats:         rw.Stats(),
		Group:         gres.Stats,
		Mappings:      gres.Stats.Mappings,
		InputSize:     len(input),
		OutputSize:    len(out),
		Insts:         st.insts,
		BadBytes:      st.badBytes,
		Disasm:        string(st.mode),
		Recovery:      st.sstats,
		Bias:          st.bias,
		Trampolines:   len(trs),
		InjectedBytes: injectedBytes(st.inject),
		Locations:     rw.Results(),
		Warnings:      st.warnings,
	}, nil
}

// injectedBytes sums the injected image sizes.
func injectedBytes(inject []plan.Injection) int {
	n := 0
	for _, inj := range inject {
		n += len(inj.Data)
	}
	return n
}

// injectionTop returns the page-aligned address just past the highest
// existing injection, where the pipeline allocates its own tables —
// right above the payload so the whole injected region stays compact.
// With no injections configured it falls back to injectDefaultBase.
func injectionTop(inject []plan.Injection) uint64 {
	top := injectDefaultBase
	for _, inj := range inject {
		if end := (inj.Addr + uint64(len(inj.Data)) + elf64.PageSize - 1) &^ (elf64.PageSize - 1); end > top {
			top = end
		}
	}
	return top
}

// validateInjections rejects injection lists that could corrupt the
// output: empty or address-wrapping images, images overlapping each
// other, and images overlapping the binary's own loaded segments
// (page-rounded — the loader maps whole pages, and injected pages are
// mapped before the input's segments). phase is "plan" (a
// configuration mistake, ErrUnsupported) or "apply" (a hostile plan,
// ErrMalformed).
func validateInjections(inject []plan.Injection, f *elf64.File, bias uint64, phase string) error {
	if len(inject) == 0 {
		return nil
	}
	fail := func(format string, args ...any) error {
		if phase == "apply" {
			return e9err.Malformed(phase, format, args...)
		}
		return e9err.Unsupported(phase, format, args...)
	}
	type span struct{ lo, hi uint64 }
	spans := make([]span, 0, len(inject))
	for _, inj := range inject {
		if len(inj.Data) == 0 {
			return fail("e9patch: empty injection at %#x", inj.Addr)
		}
		end := inj.Addr + uint64(len(inj.Data))
		if end < inj.Addr {
			return fail("e9patch: injection at %#x wraps the address space", inj.Addr)
		}
		lo := inj.Addr &^ (elf64.PageSize - 1)
		hi := (end + elf64.PageSize - 1) &^ (elf64.PageSize - 1)
		for _, p := range f.Progs {
			if p.Type != elf64.PTLoad || p.Memsz == 0 {
				continue
			}
			slo := (p.Vaddr + bias) &^ (elf64.PageSize - 1)
			shi := (p.Vaddr + bias + p.Memsz + elf64.PageSize - 1) &^ (elf64.PageSize - 1)
			if lo < shi && slo < hi {
				return fail("e9patch: injection [%#x,%#x) overlaps loaded segment [%#x,%#x)",
					inj.Addr, end, p.Vaddr+bias, p.Vaddr+bias+p.Memsz)
			}
		}
		for _, s := range spans {
			if inj.Addr < s.hi && s.lo < end {
				return fail("e9patch: injection [%#x,%#x) overlaps another injection", inj.Addr, end)
			}
		}
		spans = append(spans, span{lo: inj.Addr, hi: end})
	}
	return nil
}

// parallelSelect evaluates the selector, sharding the instruction
// slice across workers when the selector is registered as
// per-instruction pure (match.Shardable); shard results are index-
// offset and concatenated, which equals the sequential evaluation
// exactly. Unregistered selectors always run sequentially.
func parallelSelect(sel Selector, insts []x86.Inst, width int, pool *work.Pool) []int {
	const minShardInsts = 4096
	nsh := len(insts) / minShardInsts
	if most := width * 4; nsh > most {
		nsh = most
	}
	if width <= 1 || nsh <= 1 || !match.Shardable(sel) {
		return sel(insts)
	}
	parts := make([][]int, nsh)
	work.ForEach(pool, width, nsh, func(i int) {
		lo := i * len(insts) / nsh
		hi := (i + 1) * len(insts) / nsh
		part := sel(insts[lo:hi])
		for j := range part {
			part[j] += lo
		}
		parts[i] = part
	})
	var out []int
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// diagnoseSelection explains an empty selection caused by the most
// common address-coordinate mix-up: an address-based selector
// (SelectAddresses or an addr= matcher) fed addresses in the wrong
// coordinate system. PIE instructions carry runtime addresses (file
// address + PIEBase), non-PIE instructions carry link-time addresses.
// The check is selector-agnostic: re-run the selector over a view of
// the disassembly shifted into the other coordinate system; if it now
// matches, the input addresses were in the wrong one.
func diagnoseSelection(sel Selector, insts []x86.Inst, selected []int, bias uint64) []string {
	if len(selected) != 0 || len(insts) == 0 {
		return nil
	}
	shifted := make([]x86.Inst, len(insts))
	copy(shifted, insts)
	if bias != 0 {
		for i := range shifted {
			shifted[i].Addr -= bias
		}
		if n := len(sel(shifted)); n != 0 {
			return []string{fmt.Sprintf(
				"0 locations selected, but %d would match without the PIE load bias: "+
					"input addresses looked file-relative (< PIEBase); pass runtime "+
					"addresses (file address + e9patch.PIEBase) for PIE binaries", n)}
		}
		return nil
	}
	// Non-PIE: the converse mistake — runtime-style (PIEBase-shifted)
	// addresses fed to a binary loaded at its link address.
	for i := range shifted {
		shifted[i].Addr += PIEBase
	}
	if n := len(sel(shifted)); n != 0 {
		return []string{fmt.Sprintf(
			"0 locations selected, but %d would match with the PIE load bias "+
				"added: input addresses looked PIE-runtime-relative (>= PIEBase), "+
				"but this binary is not PIE; pass link-time addresses", n)}
	}
	return nil
}

// reserveMerged reserves [lo, hi), tolerating overlap with existing
// reservations (segments may share page-rounded boundaries; broad
// exclusion zones may span already-reserved runtime regions).
func reserveMerged(s *va.Space, lo, hi uint64) error {
	if lo < s.Min() {
		lo = s.Min()
	}
	if hi > s.Max() {
		hi = s.Max()
	}
	cursor := lo
	for cursor < hi {
		// Skip any occupied interval covering the cursor.
		if iv, ok := s.Floor(cursor); ok && iv.Hi > cursor {
			cursor = iv.Hi
			continue
		}
		gapEnd := hi
		if next, ok := s.Ceiling(cursor); ok && next.Lo < hi {
			gapEnd = next.Lo
		}
		if gapEnd > cursor {
			if err := s.Reserve(cursor, gapEnd); err != nil {
				return err
			}
		}
		cursor = gapEnd
	}
	return nil
}

// ungroup expands a grouped result into the naïve one-to-one physical
// mapping (grouping disabled, for the §6.1 file-size ablation).
func ungroup(g *group.Result) *group.Result {
	out := &group.Result{Stats: g.Stats}
	for _, mp := range g.Mappings {
		out.Blocks = append(out.Blocks, g.Blocks[mp.Phys])
		out.Mappings = append(out.Mappings, group.Mapping{Vaddr: mp.Vaddr, Phys: len(out.Blocks) - 1})
	}
	out.Stats.PhysBlocks = len(out.Blocks)
	return out
}

// Load builds an executable image from an original or rewritten binary
// in the given machine, returning the entry point. PIE binaries are
// loaded at PIEBase.
func Load(m *emu.Machine, file []byte) (uint64, error) {
	f, err := elf64.Parse(file)
	if err != nil {
		return 0, err
	}
	var bias uint64
	if f.IsPIE() {
		bias = PIEBase
	}
	return loader.BuildImage(m, file, loader.Options{Bias: bias})
}
