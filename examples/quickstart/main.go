// Quickstart: statically rewrite a binary with the empty heap-write
// instrumentation (application A2), then execute both the original and
// the patched binary in the bundled emulator and show that behaviour
// is preserved while every heap write detours through a trampoline.
package main

import (
	"fmt"
	"log"

	"e9patch"
	"e9patch/internal/emu"
	"e9patch/internal/patch"
	"e9patch/internal/workload"
)

func main() {
	// 1. Get a target binary. Any x86-64 ELF works; here we generate
	// the "memstream" benchmark kernel so the example is self-contained.
	prog, err := workload.BuildKernel("memstream", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input binary: %d bytes (non-PIE)\n", len(prog.ELF))

	// 2. Rewrite it: every instruction that may write through a heap
	// pointer is replaced by a (possibly punned) jump to a trampoline
	// that re-executes it — no control-flow recovery involved.
	res, err := e9patch.Rewrite(prog.ELF, e9patch.Config{
		Select:    e9patch.SelectHeapWrites,
		ReserveVA: workload.ReserveVA(), // keep trampolines away from the demo heap
	})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Stats
	fmt.Printf("patched %d/%d heap-write sites (%.2f%% coverage)\n",
		s.Patched(), s.Total, s.SuccPercent())
	fmt.Printf("  B1+B2 baseline: %.2f%%   T1: %.2f%%   T2: %.2f%%   T3: %.2f%%\n",
		s.BasePercent(),
		s.Percent(s.ByTactic[patch.TacticT1]),
		s.Percent(s.ByTactic[patch.TacticT2]),
		s.Percent(s.ByTactic[patch.TacticT3]))
	fmt.Printf("output binary: %d bytes (%.2f%% of input, %d trampolines, %d mappings)\n",
		res.OutputSize, res.SizePercent(), res.Trampolines, res.Mappings)

	// 3. Run both binaries on identical inputs.
	run := func(bin []byte) *emu.Machine {
		m := workload.NewMachine(nil)
		entry, err := e9patch.Load(m, bin)
		if err != nil {
			log.Fatal(err)
		}
		m.RIP = entry
		if err := m.Run(200_000_000); err != nil {
			log.Fatal(err)
		}
		return m
	}
	orig := run(prog.ELF)
	patched := run(res.Output)

	fmt.Printf("\noriginal: checksum %#x in %d cycles\n", orig.Output[0], orig.Counters.Cycles)
	fmt.Printf("patched:  checksum %#x in %d cycles (%.1f%%, %d trampoline hops)\n",
		patched.Output[0],
		patched.Counters.Cycles,
		100*float64(patched.Counters.Cycles)/float64(orig.Counters.Cycles),
		patched.Counters.FarJumps)
	if orig.Output[0] != patched.Output[0] {
		log.Fatal("behaviour diverged!")
	}
	fmt.Println("\nbehaviour preserved ✓")
}
