// Command gen writes the payload ELFs the shipped spec recipes
// reference (trace_payload.elf, coverage_payload.elf):
//
//	go run ./examples/specs/gen
//	e9tool -spec examples/specs/syscall_trace.e9spec -o out.elf in.elf
//
// The payloads are linked at workload.PayloadBase with their patch
// functions exported as global symbols, which is all the spec
// language requires of user payloads.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"e9patch/internal/workload"
)

func main() {
	dir := flag.String("o", "examples/specs", "output directory for the payload ELFs")
	flag.Parse()

	payloads := []struct {
		file  string
		build func() ([]byte, error)
	}{
		{"trace_payload.elf", workload.BuildTracePayload},
		{"coverage_payload.elf", workload.BuildCoveragePayload},
	}
	for _, p := range payloads {
		raw, err := p.build()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gen: %s: %v\n", p.file, err)
			os.Exit(1)
		}
		path := filepath.Join(*dir, p.file)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "gen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(raw))
	}
}
