// Binary patching (the paper's Example 3.1): fix a CVE-2019-18408
// style use-after-free at the binary level, without source code and
// without moving a single instruction.
//
// The miniature "archive reader" below reproduces the bug shape: when
// read_data fails, ppmd7 state is freed but rar->start_new_table is
// not set, so a later path dereferences the stale table. The developer
// patch adds `rar->start_new_table = 1` after the free. We apply that
// patch at the binary level by patching the first instruction after
// the call — exactly the paper's strategy — using a Raw trampoline
// template that executes the displaced instruction, performs the fix,
// and returns.
package main

import (
	"fmt"
	"log"

	"e9patch"
	"e9patch/internal/elf64"
	"e9patch/internal/emu"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// rar struct layout in the emulated heap.
const (
	offStartNewTable = 0x38 // rar->start_new_table
	offTable         = 0x40 // rar->context table pointer
)

// buildVulnerable assembles the buggy archive reader and returns the
// binary plus the virtual address of the patch point (the first
// instruction after the failing call to free).
func buildVulnerable() ([]byte, uint64, error) {
	const base = elf64.DefaultBase + elf64.TextVaddrOff
	a := x86.NewAsm(base)

	over := a.NewLabel()
	a.Jmp(over)

	// read_data: always fails (returns 1 != ARCHIVE_OK).
	readData := a.NewLabel()
	a.Bind(readData)
	a.MovRegImm32(x86.RAX, 1)
	a.Ret()

	// use_table(rar in r14): if start_new_table, rebuild; otherwise
	// dereference the (stale) table pointer -> wrong output.
	useTable := a.NewLabel()
	a.Bind(useTable)
	rebuild := a.NewLabel()
	a.CmpMemImm8(x86.M(x86.R14, offStartNewTable), 1)
	a.JccShort(x86.CondE, rebuild)
	a.MovRegMem64(x86.RAX, x86.M(x86.R14, offTable)) // stale pointer
	a.MovRegMem64(x86.RAX, x86.M(x86.RAX, 0))        // use-after-free read
	a.Ret()
	a.Bind(rebuild)
	a.MovRegImm32(x86.RAX, 42) // fresh table value
	a.Ret()

	a.Bind(over)
	// rar = malloc(0x80); rar->start_new_table = 0.
	a.MovRegImm32(x86.RDI, 0x80)
	a.MovRegImm64(x86.R11, workload.RTMalloc)
	a.CallReg(x86.R11)
	a.MovRegReg64(x86.R14, x86.RAX)
	a.MovMemImm8(x86.M(x86.R14, offStartNewTable), 0)
	// table = malloc(0x40); *table = 666 (stale content after free).
	a.MovRegImm32(x86.RDI, 0x40)
	a.MovRegImm64(x86.R11, workload.RTMalloc)
	a.CallReg(x86.R11)
	a.MovMemImm32Sx64(x86.M(x86.RAX, 0), 666)
	a.MovMemReg64(x86.M(x86.R14, offTable), x86.RAX)

	// ret = read_data(...); if (ret != ARCHIVE_OK) ppmd7.free(ctx);
	a.Call(readData)
	a.MovRegImm64(x86.R11, workload.RTFree)
	a.CallReg(x86.R11)
	// ---- PATCH POINT: first instruction after the free call ----
	patchOff := a.Len()
	a.MovRegReg32(x86.RBP, x86.RBX) // the paper's `mov %ebx,%ebp` at 422a61
	// -------------------------------------------------------------
	a.Call(useTable)
	a.MovRegReg64(x86.RDI, x86.RAX)
	a.MovRegImm64(x86.R11, workload.RTOutput)
	a.CallReg(x86.R11)
	a.Ret()

	text, err := a.Finish()
	if err != nil {
		return nil, 0, err
	}
	bin, err := elf64.Build(elf64.BuildSpec{Text: text, Data: make([]byte, 64), BSSSize: 0x1000})
	return bin, base + uint64(patchOff), err
}

func run(bin []byte) *emu.Machine {
	m := workload.NewMachine(nil)
	entry, err := e9patch.Load(m, bin)
	if err != nil {
		log.Fatal(err)
	}
	m.RIP = entry
	if err := m.Run(1_000_000); err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	bin, patchAddr, err := buildVulnerable()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vulnerable binary: %d bytes, patch point at %#x\n", len(bin), patchAddr)

	before := run(bin)
	fmt.Printf("before patch: output = %v  (666 = stale table used after free)\n", before.Output)

	// The binary patch: at the patch point, run the displaced
	// instruction plus the developer fix `rar->start_new_table = 1`.
	res, err := e9patch.Rewrite(bin, e9patch.Config{
		Select: func(insts []x86.Inst) []int {
			for i := range insts {
				if insts[i].Addr == patchAddr {
					return []int{i}
				}
			}
			return nil
		},
		Template: e9patch.RawTemplate(func(a *x86.Asm, inst *x86.Inst, resume uint64) error {
			a.Raw(inst.Bytes...)                              // displaced mov %ebx,%ebp
			a.MovMemImm8(x86.M(x86.R14, offStartNewTable), 1) // the fix
			a.JmpRel32(resume)
			return a.Err()
		}),
		ReserveVA: workload.ReserveVA(),
	})
	if err != nil {
		log.Fatal(err)
	}
	r := res.Stats
	fmt.Printf("patched 1 location via tactic breakdown B1=%d B2=%d T1=%d T2=%d T3=%d\n",
		r.ByTactic[1], r.ByTactic[2], r.ByTactic[3], r.ByTactic[4], r.ByTactic[5])

	after := run(res.Output)
	fmt.Printf("after patch:  output = %v  (42 = table rebuilt, bug fixed)\n", after.Output)
	if after.Output[0] != 42 {
		log.Fatal("patch did not take effect")
	}
	fmt.Println("\nbinary patch applied without control-flow recovery ✓")
}
