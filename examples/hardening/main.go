// Binary heap-write hardening (the paper's §6.3): instrument every
// heap-write instruction with a low-fat-pointer redzone check
// (p − base(p) >= 16) and swap the allocator for the low-fat runtime —
// all at the binary level, with no source code and no control-flow
// recovery.
//
// The demo program contains both correct writes and two spatial memory
// errors (an underflow into the object's own redzone and an overflow
// into the next object's redzone). The hardened binary detects exactly
// the bad writes while leaving behaviour otherwise unchanged.
package main

import (
	"fmt"
	"log"

	"e9patch"
	"e9patch/internal/elf64"
	"e9patch/internal/emu"
	"e9patch/internal/lowfat"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// buildBuggy assembles a program that makes legitimate writes to a
// 64-byte heap object plus one underflow and one overflow write.
func buildBuggy() ([]byte, error) {
	const base = elf64.DefaultBase + elf64.TextVaddrOff
	a := x86.NewAsm(base)

	// p = malloc(64)
	a.MovRegImm32(x86.RDI, 64)
	a.MovRegImm64(x86.R11, workload.RTMalloc)
	a.CallReg(x86.R11)
	a.MovRegReg64(x86.RBX, x86.RAX)

	// Legitimate writes: p[0..7], p[56..63].
	a.MovRegImm32(x86.RAX, 0x1111)
	a.MovMemReg64(x86.M(x86.RBX, 0), x86.RAX)
	a.MovMemReg64(x86.M(x86.RBX, 56), x86.RAX)

	// BUG 1: underflow — write into the object's own redzone.
	a.MovMemReg64(x86.M(x86.RBX, -8), x86.RAX)

	// BUG 2: overflow — write past the object into the next slot's
	// redzone (class size for 64+16 is 128 bytes).
	a.MovMemReg64(x86.M(x86.RBX, 128-16), x86.RAX)

	// Output a checksum so we can verify behaviour is unchanged.
	a.MovRegMem64(x86.RDI, x86.M(x86.RBX, 0))
	a.AddRegMem64(x86.RDI, x86.M(x86.RBX, 56))
	a.MovRegImm64(x86.R11, workload.RTOutput)
	a.CallReg(x86.R11)
	a.Ret()

	text, err := a.Finish()
	if err != nil {
		return nil, err
	}
	return elf64.Build(elf64.BuildSpec{Text: text, Data: make([]byte, 64), BSSSize: 0x1000})
}

func run(bin []byte, hardenedHeap bool) *emu.Machine {
	m := workload.NewMachine(func(m *emu.Machine) {
		if hardenedHeap {
			lowfat.Install(m, workload.RTMalloc, workload.RTFree)
		} else {
			workload.BindStandard(m)
		}
	})
	entry, err := e9patch.Load(m, bin)
	if err != nil {
		log.Fatal(err)
	}
	m.RIP = entry
	if err := m.Run(1_000_000); err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	bin, err := buildBuggy()
	if err != nil {
		log.Fatal(err)
	}

	plain := run(bin, false)
	fmt.Printf("unhardened run: output %v — the two bad writes corrupt silently\n", plain.Output)

	// Harden: A2 selector + the low-fat redzone check template.
	res, err := e9patch.Rewrite(bin, e9patch.Config{
		Select:    e9patch.SelectHeapWrites,
		Template:  lowfat.CheckTemplate{},
		ReserveVA: append(workload.ReserveVA(), lowfat.ReserveVA()...),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hardened %d/%d heap-write sites (%.2f%% coverage)\n",
		res.Stats.Patched(), res.Stats.Total, res.Stats.SuccPercent())

	hardened := run(res.Output, true)
	fmt.Printf("hardened run:   output %v, redzone violations detected: %d\n",
		hardened.Output, lowfat.Violations(hardened))

	if plain.Output[0] != hardened.Output[0] {
		log.Fatal("hardening changed program behaviour")
	}
	if got := lowfat.Violations(hardened); got != 2 {
		log.Fatalf("expected exactly 2 violations (underflow + overflow), got %d", got)
	}
	fmt.Println("\nexactly the two spatial memory errors detected; behaviour preserved ✓")
}
