// Dynamic branch tracing: instrument every jmp/jcc (application A1)
// with a counter trampoline — the control-flow-agnostic analogue of
// basic-block counting that the paper uses as its instrumentation
// benchmark. The counter lives in the program's address space and is
// incremented by real emitted x86 (pushfq/movabs/add/popfq), so the
// instrumentation is visible in the cycle counts too.
package main

import (
	"fmt"
	"log"

	"e9patch"
	"e9patch/internal/trampoline"
	"e9patch/internal/workload"
)

// counterAddr must be outside the binary and its heap; we reserve it
// during rewriting and map it before running.
const counterAddr = 0x3_0000_0000

func main() {
	for _, arch := range []string{"branchy", "matrix", "callheavy"} {
		prog, err := workload.BuildKernel(arch, false)
		if err != nil {
			log.Fatal(err)
		}
		res, err := e9patch.Rewrite(prog.ELF, e9patch.Config{
			Select:   e9patch.SelectJumps,
			Template: trampoline.Counter{Addr: counterAddr},
			ReserveVA: append(workload.ReserveVA(),
				[2]uint64{counterAddr &^ 0xFFF, (counterAddr + 0x1000) &^ 0xFFF}),
		})
		if err != nil {
			log.Fatal(err)
		}

		m := workload.NewMachine(nil)
		m.Mem.Map(counterAddr, 8)
		entry, err := e9patch.Load(m, res.Output)
		if err != nil {
			log.Fatal(err)
		}
		m.RIP = entry
		if err := m.Run(500_000_000); err != nil {
			log.Fatal(err)
		}

		buf, _ := m.Mem.ReadBytes(counterAddr, 8)
		var count uint64
		for i := 7; i >= 0; i-- {
			count = count<<8 | uint64(buf[i])
		}
		fmt.Printf("%-10s %6d static jump sites patched (%.1f%% coverage) | %9d dynamic branch executions | %d instructions retired\n",
			arch, res.Stats.Patched(), res.Stats.SuccPercent(), count, m.Counters.Instructions)
		if count == 0 {
			log.Fatal("tracing counter never fired")
		}
	}
	fmt.Println("\nbranch tracing via static rewriting ✓")
}
