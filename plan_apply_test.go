package e9patch

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"e9patch/internal/plan"
	"e9patch/internal/workload"
)

// Differential suite for the plan/apply split (make plancheck): for
// every corpus binary × tactic config × parallelism width,
// Apply(Plan(input)) must be byte-identical to the legacy monolithic
// rewrite, the plan encoding must be deterministic (and independent of
// the worker count), and a plan must survive a JSON round trip intact.

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// planCorpus returns the same binaries the parallel differential suite
// uses: the five kernel archetypes, the eviction-hostile synthetic,
// and two multi-region SPEC profiles that genuinely decompose.
func planCorpus(t *testing.T) []struct {
	name string
	bin  []byte
} {
	t.Helper()
	var corpus []struct {
		name string
		bin  []byte
	}
	add := func(name string, bin []byte) {
		corpus = append(corpus, struct {
			name string
			bin  []byte
		}{name, bin})
	}
	for _, arch := range []string{"branchy", "memstream", "matrix", "pointer", "callheavy"} {
		prog, err := workload.BuildKernel(arch, arch == "matrix" || arch == "pointer")
		if err != nil {
			t.Fatal(err)
		}
		add(arch, prog.ELF)
	}
	add("hostile", hostileELF(t))
	for _, pc := range []struct {
		profile string
		scale   float64
	}{{"gcc", 0.05}, {"gamess", 0.05}} {
		p, err := workload.ProfileByName(pc.profile)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := workload.BuildStatic(p, pc.scale)
		if err != nil {
			t.Fatal(err)
		}
		add(pc.profile, prog.ELF)
	}
	return corpus
}

// TestPlanApplyEquivalence is the tentpole differential: across the
// full corpus × tactic-config matrix at parallelism 1, 2 and 8, the
// two-phase pipeline must reproduce the legacy single-pass rewrite
// exactly — output bytes, statistics, per-location outcomes, warnings
// and counters — and the plan encoding must not depend on the width.
func TestPlanApplyEquivalence(t *testing.T) {
	for _, be := range planCorpus(t) {
		for _, tc := range parallelCorpusConfigs {
			cfg := tc.cfg
			cfg.ReserveVA = append(cfg.ReserveVA, workload.ReserveVA()...)
			cfg.Parallelism = 1
			legacy, err := rewriteLegacy(context.Background(), be.bin, cfg)
			if err != nil {
				t.Fatalf("%s/%s: legacy: %v", be.name, tc.name, err)
			}
			var firstEnc []byte
			for _, par := range []int{1, 2, 8} {
				label := fmt.Sprintf("%s/%s/p=%d", be.name, tc.name, par)
				cfg.Parallelism = par
				p, err := Plan(be.bin, cfg)
				if err != nil {
					t.Fatalf("%s: plan: %v", label, err)
				}
				enc, err := p.Encode()
				if err != nil {
					t.Fatalf("%s: encode: %v", label, err)
				}
				if firstEnc == nil {
					firstEnc = enc
				} else if !bytes.Equal(firstEnc, enc) {
					t.Errorf("%s: plan encoding depends on the worker count", label)
				}
				res, err := Apply(be.bin, p)
				if err != nil {
					t.Fatalf("%s: apply: %v", label, err)
				}
				assertSameParallelResult(t, legacy, res, label)
				if res.Trampolines != p.TrampolineCount() {
					t.Errorf("%s: plan counts %d trampolines, result %d",
						label, p.TrampolineCount(), res.Trampolines)
				}
			}
		}
	}
}

// TestPlanRoundTripApply proves serialization fidelity on a real
// workload: a plan that went through Encode → Decode applies to the
// same bytes as the in-memory plan, so a plan can be produced on one
// machine and applied on another.
func TestPlanRoundTripApply(t *testing.T) {
	bin := planCorpus(t)[0].bin
	cfg := Config{Select: SelectHeapWrites, ReserveVA: workload.ReserveVA()}
	p, err := Plan(bin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Apply(bin, p)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := DecodePlan(enc)
	if err != nil {
		t.Fatal(err)
	}
	reenc, err := p2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, reenc) {
		t.Error("plan changed across Encode → Decode → Encode")
	}
	viaJSON, err := Apply(bin, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Output, viaJSON.Output) {
		t.Error("round-tripped plan materializes different bytes")
	}
}

// TestPlanDeterminism pins the determinism contract: planning the same
// binary twice yields byte-identical encodings.
func TestPlanDeterminism(t *testing.T) {
	bin := hostileELF(t)
	cfg := Config{Select: SelectHeapWrites}
	var last []byte
	for i := 0; i < 3; i++ {
		p, err := Plan(bin, cfg)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if last != nil && !bytes.Equal(last, enc) {
			t.Fatalf("plan encoding differs between runs %d and %d", i-1, i)
		}
		last = enc
	}
}

// TestPlanGoldenJSON pins the serialized schema against a committed
// golden file (regenerate with `go test -run TestPlanGoldenJSON
// -update .` after an intentional schema change).
func TestPlanGoldenJSON(t *testing.T) {
	bin := hostileELF(t)
	p, err := Plan(bin, Config{Select: SelectHeapWrites, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "plan_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(want, enc) {
		t.Errorf("plan JSON deviates from %s (regenerate with -update if the schema change is intentional)", golden)
	}
	// The golden plan must decode and re-encode unchanged.
	p2, err := DecodePlan(want)
	if err != nil {
		t.Fatal(err)
	}
	reenc, err := p2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, reenc) {
		t.Error("golden plan changed across Decode → Encode")
	}
}

// TestApplyValidation covers Apply's refusal surface: a plan must not
// silently materialize onto the wrong input, a tampered schema
// version, or out-of-range writes.
func TestApplyValidation(t *testing.T) {
	bin := hostileELF(t)
	p, err := Plan(bin, Config{Select: SelectHeapWrites})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Apply(bin, nil); err == nil {
		t.Error("nil plan: want error")
	}

	other := make([]byte, len(bin))
	copy(other, bin)
	other[len(other)-1] ^= 0xFF
	if _, err := Apply(other, p); err == nil || !strings.Contains(err.Error(), "input mismatch") {
		t.Errorf("modified input: want input-mismatch error, got %v", err)
	}

	bad := *p
	bad.Version = plan.Version + 1
	if _, err := Apply(bin, &bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: want version error, got %v", err)
	}

	// Unbound plan with an out-of-text write: caught structurally.
	oob := &PatchPlan{
		Version: plan.Version, Bias: p.Bias, TextAddr: p.TextAddr, TextLen: p.TextLen,
		Sites: []plan.Site{{Addr: p.TextAddr, Tactic: "B1", Writes: []plan.Write{
			{Addr: p.TextAddr + uint64(p.TextLen), Data: plan.Bytes{0x90}},
		}}},
	}
	if _, err := Apply(bin, oob); err == nil || !strings.Contains(err.Error(), "outside .text") {
		t.Errorf("out-of-range write: want range error, got %v", err)
	}
}

// TestRewriteInputImmutable enforces the documented contract that
// Rewrite and RewriteContext never mutate the caller's input slice,
// across all six tactic configurations of the differential corpus.
func TestRewriteInputImmutable(t *testing.T) {
	bin := hostileELF(t)
	for _, tc := range parallelCorpusConfigs {
		pristine := make([]byte, len(bin))
		copy(pristine, bin)
		if _, err := Rewrite(bin, tc.cfg); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !bytes.Equal(bin, pristine) {
			t.Fatalf("%s: Rewrite mutated the input slice", tc.name)
		}
		if _, err := RewriteContext(context.Background(), bin, tc.cfg); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !bytes.Equal(bin, pristine) {
			t.Fatalf("%s: RewriteContext mutated the input slice", tc.name)
		}
	}
}

// TestSizePercentZeroInput pins the InputSize == 0 guard (a zero-value
// Result must not divide by zero).
func TestSizePercentZeroInput(t *testing.T) {
	r := &Result{OutputSize: 1234}
	if got := r.SizePercent(); got != 0 {
		t.Fatalf("SizePercent with zero InputSize = %v, want 0", got)
	}
	r = &Result{InputSize: 200, OutputSize: 300}
	if got := r.SizePercent(); got != 150 {
		t.Fatalf("SizePercent = %v, want 150", got)
	}
}

// TestApplyTrusted pins the trusted apply path's contract: identical
// bytes to the verifying Apply, refusal of input-unbound plans (an
// unbound plan has no hash pinning the universe, so skipping the
// digest check would be unchecked trust), refusal of the wrong input,
// and — the reason the path exists — no universe re-derivation, pinned
// by accepting a plan whose digest was tampered but whose input
// binding still matches.
func TestApplyTrusted(t *testing.T) {
	bin := planCorpus(t)[0].bin
	sel, err := SelectMatch("jcc & short")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Select: sel, ReserveVA: workload.ReserveVA()}
	p, err := Plan(bin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	verified, err := Apply(bin, p)
	if err != nil {
		t.Fatal(err)
	}
	trusted, err := ApplyTrusted(bin, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(verified.Output, trusted.Output) {
		t.Error("ApplyTrusted materializes different bytes than Apply")
	}

	unbound := *p
	unbound.InputSHA256 = ""
	if _, err := ApplyTrusted(bin, &unbound); err == nil {
		t.Error("ApplyTrusted accepted an input-unbound plan")
	} else if !strings.Contains(err.Error(), "input-bound") {
		t.Errorf("unbound-plan refusal does not explain itself: %v", err)
	}
	if _, err := Apply(bin, &unbound); err != nil {
		t.Errorf("Apply must still accept unbound plans (hand-authored): %v", err)
	}

	other := append([]byte(nil), bin...)
	other[len(other)-1] ^= 0xFF
	if _, err := ApplyTrusted(other, p); err == nil {
		t.Error("ApplyTrusted accepted an input that does not match the plan's binding")
	}

	tampered := *p
	tampered.DisasmDigest = strings.Repeat("0", len(p.DisasmDigest))
	if _, err := Apply(bin, &tampered); err == nil {
		t.Error("Apply must reject a tampered universe digest")
	}
	if _, err := ApplyTrusted(bin, &tampered); err != nil {
		t.Errorf("ApplyTrusted re-derived the universe it is documented to skip: %v", err)
	}
}
