package e9patch

import (
	"testing"

	"e9patch/internal/elf64"
	"e9patch/internal/emu"
	"e9patch/internal/patch"
	"e9patch/internal/trampoline"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

func init() { workload.KernelIters = 1500 }

// runBinary loads and executes a binary (original or rewritten) and
// returns the machine state.
func runBinary(t *testing.T, bin []byte, bind workload.MallocBinding, prep ...func(m *emu.Machine)) *emu.Machine {
	t.Helper()
	m := workload.NewMachine(bind)
	workload.BindJit(m)
	for _, p := range prep {
		p(m)
	}
	entry, err := Load(m, bin)
	if err != nil {
		t.Fatal(err)
	}
	m.RIP = entry
	if err := m.Run(500_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

// rewriteKernel builds a kernel, rewrites it, and asserts full
// behavioural equivalence between original and patched runs.
func assertEquivalent(t *testing.T, arch string, pie bool, cfg Config, prep ...func(m *emu.Machine)) (*emu.Machine, *emu.Machine, *Result) {
	t.Helper()
	prog, err := workload.BuildKernel(arch, pie)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ReserveVA = append(cfg.ReserveVA, workload.ReserveVA()...)
	res, err := Rewrite(prog.ELF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := runBinary(t, prog.ELF, nil, prep...)
	patched := runBinary(t, res.Output, nil, prep...)

	if len(orig.Output) != len(patched.Output) {
		t.Fatalf("%s: output length %d != %d", arch, len(orig.Output), len(patched.Output))
	}
	for i := range orig.Output {
		if orig.Output[i] != patched.Output[i] {
			t.Fatalf("%s: output[%d] = %#x != %#x", arch, i, patched.Output[i], orig.Output[i])
		}
	}
	if orig.ExitCode != patched.ExitCode {
		t.Fatalf("%s: exit code %#x != %#x", arch, patched.ExitCode, orig.ExitCode)
	}
	if patched.Counters.Cycles < orig.Counters.Cycles {
		t.Errorf("%s: patched ran faster (%d < %d cycles)?", arch, patched.Counters.Cycles, orig.Counters.Cycles)
	}
	return orig, patched, res
}

func TestDifferentialAllKernelsA1(t *testing.T) {
	for _, arch := range []string{"branchy", "memstream", "matrix", "pointer", "callheavy"} {
		t.Run(arch, func(t *testing.T) {
			_, patched, res := assertEquivalent(t, arch, false, Config{Select: SelectJumps})
			if res.Stats.Total == 0 {
				t.Fatal("no jump locations found")
			}
			if res.Stats.SuccPercent() < 90 {
				t.Errorf("A1 coverage %.1f%%", res.Stats.SuccPercent())
			}
			if patched.Counters.FarJumps < 2 {
				t.Error("instrumented run shows no trampoline hops")
			}
		})
	}
}

func TestDifferentialAllKernelsA2(t *testing.T) {
	for _, arch := range []string{"branchy", "memstream", "matrix", "pointer", "callheavy"} {
		t.Run(arch, func(t *testing.T) {
			_, _, res := assertEquivalent(t, arch, false, Config{Select: SelectHeapWrites})
			if res.Stats.Total == 0 {
				t.Fatal("no heap-write locations found")
			}
			if res.Stats.SuccPercent() < 90 {
				t.Errorf("A2 coverage %.1f%%", res.Stats.SuccPercent())
			}
		})
	}
}

func TestDifferentialPIE(t *testing.T) {
	orig, _, res := assertEquivalent(t, "branchy", true, Config{Select: SelectHeapWrites})
	if res.Bias != PIEBase {
		t.Errorf("bias = %#x", res.Bias)
	}
	if orig.ExitCode == 0 {
		t.Error("degenerate kernel")
	}
	// PIE should make the baseline nearly universal.
	if res.Stats.BasePercent() < 80 {
		t.Errorf("PIE Base%% = %.2f, expected high", res.Stats.BasePercent())
	}
}

func TestDifferentialCounterTemplate(t *testing.T) {
	// Counter instrumentation must count exactly the executed patched
	// instructions without changing behaviour.
	const counterAddr = workload.HeapBase + workload.HeapSize - 0x1000
	_, patched, res := assertEquivalent(t, "memstream", false, Config{
		Select:   SelectHeapWrites,
		Template: trampoline.Counter{Addr: counterAddr},
	}, func(m *emu.Machine) { m.Mem.Map(counterAddr, 8) })
	if res.Stats.Patched() == 0 {
		t.Fatal("nothing patched")
	}
	buf, ok := patched.Mem.ReadBytes(counterAddr, 8)
	if !ok {
		t.Fatal("counter page unmapped")
	}
	var count uint64
	for i := 7; i >= 0; i-- {
		count = count<<8 | uint64(buf[i])
	}
	if count == 0 {
		t.Error("counter never incremented")
	}
	t.Logf("dynamic heap writes counted: %d", count)
}

func TestDifferentialB0Fallback(t *testing.T) {
	// With all tactics disabled, everything becomes int3+SIGTRAP; the
	// program must still behave identically, at enormous cost.
	orig, patched, res := assertEquivalent(t, "branchy", false, Config{
		Select: SelectJumps,
		Patch: patch.Options{
			DisableT1: true, DisableT2: true, DisableT3: true,
			B0Fallback: true,
		},
	})
	if res.Stats.ByTactic[patch.TacticB0] == 0 {
		t.Skip("no B0 fallbacks triggered in this build")
	}
	if patched.Counters.Signals == 0 {
		t.Error("no signals dispatched")
	}
	ratio := float64(patched.Counters.Cycles) / float64(orig.Counters.Cycles)
	if ratio < 3 {
		t.Errorf("B0 overhead ratio %.1f, expected orders of magnitude", ratio)
	}
}

func TestDifferentialGranularity(t *testing.T) {
	// Coarser grouping must not change behaviour, only the mapping
	// count and physical size.
	_, _, res1 := assertEquivalent(t, "pointer", false, Config{Select: SelectJumps, Granularity: 1})
	_, _, res16 := assertEquivalent(t, "pointer", false, Config{Select: SelectJumps, Granularity: 16})
	if res16.Mappings > res1.Mappings {
		t.Errorf("mappings grew with coarser granularity: %d > %d", res16.Mappings, res1.Mappings)
	}
	if res16.Group.PhysBytes() < res1.Group.PhysBytes() {
		t.Errorf("physical bytes shrank with coarser granularity")
	}
}

func TestDifferentialNaiveGrouping(t *testing.T) {
	// Grouping disabled: identical behaviour, larger file.
	_, _, grouped := assertEquivalent(t, "branchy", false, Config{Select: SelectJumps, Granularity: 1})
	_, _, naive := assertEquivalent(t, "branchy", false, Config{Select: SelectJumps, Granularity: -1})
	if naive.OutputSize < grouped.OutputSize {
		t.Errorf("naive file (%d) smaller than grouped (%d)", naive.OutputSize, grouped.OutputSize)
	}
}

func TestDromaeoDifferential(t *testing.T) {
	for _, s := range workload.DromaeoSuites[:4] {
		prog, err := workload.BuildDromaeo(s, true, 10)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Rewrite(prog.ELF, Config{
			Select:    SelectHeapWrites,
			ReserveVA: workload.ReserveVA(),
		})
		if err != nil {
			t.Fatal(err)
		}
		orig := runBinary(t, prog.ELF, nil)
		patched := runBinary(t, res.Output, nil)
		if orig.Output[0] != patched.Output[0] {
			t.Fatalf("%s: checksum mismatch", s.Name)
		}
	}
}

// TestJumpTargetPreservation is the paper's core guarantee: indirect
// control flow to any original instruction address must still work
// after patching — even when the target instruction was itself patched
// or evicted.
func TestJumpTargetPreservation(t *testing.T) {
	const base = 0x401000
	a := x86.NewAsm(base)

	over := a.NewLabel()
	a.Jmp(over)

	// Three tiny functions, each beginning with a heap write (an A2
	// patch site at the exact address stored in the function table).
	var fns []*x86.Label
	for i := 0; i < 3; i++ {
		fn := a.NewLabel()
		a.Bind(fn)
		a.MovMemReg64(x86.M(x86.RBX, int32(8*i)), x86.RCX) // patch site
		a.AddRegImm64(x86.RCX, int32(i+1))
		a.Ret()
		fns = append(fns, fn)
	}
	_ = fns

	a.Bind(over)
	a.MovRegImm64(x86.RBX, workload.HeapBase)
	a.MovRegImm32(x86.RDI, 64)
	a.MovRegImm64(x86.R11, workload.RTMalloc)
	a.CallReg(x86.R11)
	a.MovRegReg64(x86.RBX, x86.RAX)
	a.MovRegImm32(x86.RCX, 1)
	// Call each function indirectly through a register (the function
	// addresses are jump targets the rewriter must preserve).
	for i := 0; i < 3; i++ {
		a.MovRegImm64(x86.RDX, 0) // placeholder, patched below
		a.CallReg(x86.RDX)
	}
	a.MovRegReg64(x86.RDI, x86.RCX)
	a.MovRegImm64(x86.R11, workload.RTOutput)
	a.CallReg(x86.R11)
	a.Ret()

	code := a.MustFinish()

	// Fill the movabs placeholders with the actual function addresses.
	fnAddrs := findFnAddrs(t, code, base, 3)
	patched := 0
	for off := 0; off+10 <= len(code); off++ {
		if code[off] == 0x48 && code[off+1] == 0xBA { // movabs rdx, imm64
			v := uint64(0)
			for b := 0; b < 8; b++ {
				v |= uint64(code[off+2+b]) << (8 * uint(b))
			}
			if v == 0 && patched < 3 {
				addr := fnAddrs[patched]
				for b := 0; b < 8; b++ {
					code[off+2+b] = byte(addr >> (8 * uint(b)))
				}
				patched++
			}
		}
	}
	if patched != 3 {
		t.Fatalf("patched %d movabs placeholders", patched)
	}

	prog, err := buildTestELF(code)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Rewrite(prog, Config{Select: SelectHeapWrites, ReserveVA: workload.ReserveVA()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Patched() == 0 {
		t.Fatal("function-entry patch sites were not patched")
	}
	orig := runBinary(t, prog, nil)
	after := runBinary(t, res.Output, nil)
	if orig.Output[0] != after.Output[0] {
		t.Fatalf("indirect calls broke: %v vs %v", orig.Output, after.Output)
	}
	if orig.Output[0] != 1+1+2+3 {
		t.Fatalf("unexpected baseline output %v", orig.Output)
	}
}

// findFnAddrs locates the three `mov [rbx+8i], rcx` function entries.
func findFnAddrs(t *testing.T, code []byte, base uint64, n int) []uint64 {
	t.Helper()
	var out []uint64
	for off := 0; off+4 <= len(code) && len(out) < n; off++ {
		// 48 89 0B / 48 89 4B 08 / 48 89 4B 10 (mov [rbx+d], rcx)
		if code[off] == 0x48 && code[off+1] == 0x89 &&
			(code[off+2] == 0x0B || code[off+2] == 0x4B) {
			out = append(out, base+uint64(off))
		}
	}
	if len(out) != n {
		t.Fatalf("found %d function entries, want %d", len(out), n)
	}
	return out
}

func buildTestELF(text []byte) ([]byte, error) {
	return elf64.Build(elf64.BuildSpec{
		Text:     text,
		EntryOff: 0,
		Data:     make([]byte, 64),
		BSSSize:  0x1000,
	})
}
