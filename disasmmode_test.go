package e9patch

import (
	"bytes"
	"errors"
	"testing"

	"e9patch/internal/elf64"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// TestDisasmLinearByteIdentical pins the tentpole's compatibility bar
// at the library boundary: the zero-valued config, the explicit
// "linear" mode, and every parallelism width produce byte-identical
// rewrites.
func TestDisasmLinearByteIdentical(t *testing.T) {
	p, err := workload.ProfileByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.BuildStatic(p, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Rewrite(prog.ELF, Config{Select: SelectJumps})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []DisasmMode{"", DisasmLinear} {
		for _, width := range []int{1, 2, 8} {
			res, err := Rewrite(prog.ELF, Config{Select: SelectJumps, Disasm: mode, Parallelism: width})
			if err != nil {
				t.Fatalf("mode %q width %d: %v", mode, width, err)
			}
			if !bytes.Equal(res.Output, base.Output) {
				t.Fatalf("mode %q width %d: output differs from the zero-config rewrite", mode, width)
			}
			if res.Disasm != string(DisasmLinear) {
				t.Errorf("mode %q: Result.Disasm = %q", mode, res.Disasm)
			}
			if res.Recovery != nil {
				t.Errorf("mode %q: linear rewrite reports superset stats", mode)
			}
		}
	}
}

// TestDisasmUnknownModeRejected: a bad mode string fails at the
// configuration boundary as ErrUnsupported, before any parsing work.
func TestDisasmUnknownModeRejected(t *testing.T) {
	prog := smallCETProgram(t, false)
	_, err := Rewrite(prog, Config{Select: SelectJumps, Disasm: "recursive"})
	if !errors.Is(err, ErrUnsupportedBinary) {
		t.Fatalf("err = %v, want ErrUnsupportedBinary", err)
	}
	if _, err := ParseDisasmMode("superset-cet"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDisasmMode("Superset"); err == nil {
		t.Fatal("case-mangled mode accepted")
	}
}

// smallCETProgram assembles a runnable CET-style program: endbr64 at
// every function prologue and after the indirect call's return point,
// heap writes and branches to patch, output at the end.
func smallCETProgram(t *testing.T, shared bool) []byte {
	t.Helper()
	const base = 0x401000
	a := x86.NewAsm(base)
	a.Endbr64()
	a.MovRegImm32(x86.RDI, 64)
	a.MovRegImm64(x86.R11, workload.RTMalloc)
	a.CallReg(x86.R11)
	a.MovRegReg64(x86.RBX, x86.RAX)
	a.MovRegImm32(x86.RCX, 0)
	a.Endbr64() // landing pad after the indirect call's return point
	loop := a.NewLabel()
	a.Bind(loop)
	a.MovMemReg64(x86.M(x86.RBX, 0), x86.RCX) // heap-write patch site
	a.AddRegImm64(x86.RCX, 3)
	a.CmpRegImm64(x86.RCX, 60)
	a.JccShort(x86.CondL, loop) // jump patch site
	a.MovRegReg64(x86.RDI, x86.RCX)
	a.MovRegImm64(x86.R11, workload.RTOutput)
	a.CallReg(x86.R11)
	a.Ret()
	code := a.MustFinish()

	raw, err := elf64.Build(elf64.BuildSpec{
		Shared:   shared,
		Text:     code,
		EntryOff: 0,
		Data:     make([]byte, 64),
		BSSSize:  0x1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestSupersetCETRewriteEquivalent rewrites a CET program under the
// superset-cet frontend and verifies behavioral equivalence under the
// emulator: the anchor closure recovers exactly the genuine reachable
// instructions, so patching them preserves execution.
func TestSupersetCETRewriteEquivalent(t *testing.T) {
	prog := smallCETProgram(t, false)
	for _, sel := range []struct {
		name string
		s    Selector
	}{{"jumps", SelectJumps}, {"heapwrites", SelectHeapWrites}, {"all", SelectAll}} {
		t.Run(sel.name, func(t *testing.T) {
			res, err := Rewrite(prog, Config{
				Select:    sel.s,
				Disasm:    DisasmSupersetCET,
				ReserveVA: workload.ReserveVA(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Disasm != string(DisasmSupersetCET) {
				t.Errorf("Result.Disasm = %q", res.Disasm)
			}
			if res.Stats.Patched() == 0 {
				t.Fatal("nothing patched under superset-cet")
			}
			orig := runBinary(t, prog, nil)
			patched := runBinary(t, res.Output, nil)
			if !bytes.Equal(u64bytes(orig.Output), u64bytes(patched.Output)) {
				t.Fatalf("superset-cet rewrite changed behavior: %v vs %v", orig.Output, patched.Output)
			}
			if orig.ExitCode != patched.ExitCode {
				t.Fatalf("exit codes differ: %#x vs %#x", orig.ExitCode, patched.ExitCode)
			}
		})
	}
}

// TestDSORewriteEquivalent: a plain shared object (ET_DYN, no entry
// point) is a first-class input — rewritten under superset-cet and
// executed at PIEBase by pointing RIP at its text section, behavior is
// preserved.
func TestDSORewriteEquivalent(t *testing.T) {
	dso := smallCETProgram(t, true)
	f, err := elf64.Parse(dso)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsDSO() {
		t.Fatal("test binary is not a DSO")
	}
	_, textAddr, err := f.Text()
	if err != nil {
		t.Fatal(err)
	}

	res, err := Rewrite(dso, Config{
		Select:    SelectHeapWrites,
		Disasm:    DisasmSupersetCET,
		ReserveVA: workload.ReserveVA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Patched() == 0 {
		t.Fatal("nothing patched in the DSO")
	}
	if res.Bias != PIEBase {
		t.Errorf("DSO bias = %#x, want PIEBase", res.Bias)
	}

	// A DSO has no entry point: load it and call into its text start,
	// the way a dynamic loader would call an exported function.
	run := func(bin []byte) []uint64 {
		t.Helper()
		m := workload.NewMachine(nil)
		if _, err := Load(m, bin); err != nil {
			t.Fatal(err)
		}
		m.RIP = PIEBase + textAddr
		if err := m.Run(50_000_000); err != nil {
			t.Fatalf("run: %v", err)
		}
		return m.Output
	}
	orig := run(dso)
	patched := run(res.Output)
	if !bytes.Equal(u64bytes(orig), u64bytes(patched)) {
		t.Fatalf("DSO rewrite changed behavior: %v vs %v", orig, patched)
	}
	if len(orig) == 0 || orig[0] != 60 {
		t.Fatalf("degenerate DSO run: %v", orig)
	}
}

func u64bytes(v []uint64) []byte {
	out := make([]byte, 0, 8*len(v))
	for _, x := range v {
		out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
			byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
	}
	return out
}

// TestPlanModeBinding: a plan records its recovery mode and universe
// digest; Apply re-derives the universe and rejects a plan replayed
// under a different mode or against a tampered digest.
func TestPlanModeBinding(t *testing.T) {
	prog := smallCETProgram(t, false)
	cfg := Config{Select: SelectJumps, Disasm: DisasmSuperset, ReserveVA: workload.ReserveVA()}
	p, err := Plan(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Disasm != string(DisasmSuperset) || p.DisasmDigest == "" {
		t.Fatalf("plan does not bind its mode: disasm=%q digest=%q", p.Disasm, p.DisasmDigest)
	}

	// The honest replay works.
	if _, err := Apply(prog, p); err != nil {
		t.Fatalf("honest apply: %v", err)
	}

	// Mode flipped: the digest covers the mode, so the universe check
	// fails even before any instruction-set difference matters.
	flipped := *p
	flipped.Disasm = string(DisasmLinear)
	if _, err := Apply(prog, &flipped); !errors.Is(err, ErrMalformedBinary) {
		t.Fatalf("cross-mode apply: err = %v, want ErrMalformedBinary", err)
	}
	flipped.Disasm = string(DisasmSupersetCET)
	if _, err := Apply(prog, &flipped); !errors.Is(err, ErrMalformedBinary) {
		t.Fatalf("cross-mode apply (cet): err = %v, want ErrMalformedBinary", err)
	}

	// Digest tampered: rejected.
	tampered := *p
	b := []byte(tampered.DisasmDigest)
	if b[0] == '0' {
		b[0] = '1'
	} else {
		b[0] = '0'
	}
	tampered.DisasmDigest = string(b)
	if _, err := Apply(prog, &tampered); !errors.Is(err, ErrMalformedBinary) {
		t.Fatalf("tampered digest: err = %v, want ErrMalformedBinary", err)
	}

	// Legacy plans (no digest recorded) still apply: the check is
	// opt-out for pre-mode plans, not a schema break.
	legacy := *p
	legacy.Disasm = ""
	legacy.DisasmDigest = ""
	if _, err := Apply(prog, &legacy); err != nil {
		// A superset plan replayed without its mode annotation patches
		// against the linear universe; sites outside it are rejected as
		// malformed, which is also acceptable — what must not happen is
		// a digest complaint.
		if !errors.Is(err, ErrMalformedBinary) {
			t.Fatalf("legacy apply: unexpected error class: %v", err)
		}
	}

	// A linear plan round-trips with its digest too.
	lp, err := Plan(prog, Config{Select: SelectJumps, ReserveVA: workload.ReserveVA()})
	if err != nil {
		t.Fatal(err)
	}
	if lp.Disasm != string(DisasmLinear) || lp.DisasmDigest == "" {
		t.Fatalf("linear plan unbound: %q %q", lp.Disasm, lp.DisasmDigest)
	}
	if _, err := Apply(prog, lp); err != nil {
		t.Fatalf("linear apply: %v", err)
	}
}

// TestSupersetRewriteReportsStats: the one-shot Result surfaces the
// recovery statistics for the superset family.
func TestSupersetRewriteReportsStats(t *testing.T) {
	prog := smallCETProgram(t, false)
	res, err := Rewrite(prog, Config{Select: SelectJumps, Disasm: DisasmSuperset, ReserveVA: workload.ReserveVA()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Disasm != string(DisasmSuperset) {
		t.Errorf("Result.Disasm = %q", res.Disasm)
	}
	if res.Recovery == nil {
		t.Fatal("no recovery stats for a superset rewrite")
	}
	if res.Recovery.Kept == 0 || res.Recovery.Decoded < res.Recovery.Kept {
		t.Errorf("stats inconsistent: %+v", res.Recovery)
	}
}
