package e9patch

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"e9patch/internal/lang"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// TestSpecGoldenCorpus parses every spec under testdata/specs/ and
// compares its e9dump rendering (typed AST + shardability) against the
// committed golden file. Refresh with `go test -run SpecGolden -update`.
func TestSpecGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "specs", "*.e9spec"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 6 {
		t.Fatalf("corpus has %d specs, expected at least 6", len(files))
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".e9spec")
		t.Run(name, func(t *testing.T) {
			text, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := lang.ParseSpec(string(text))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			dump := sp.Dump()
			golden := strings.TrimSuffix(file, ".e9spec") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(golden, []byte(dump), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if dump != string(want) {
				t.Errorf("dump drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, dump, want)
			}
		})
	}
}

// TestRecipeFilesInSync asserts the shipped examples/specs/ files carry
// exactly the canonical recipe text compiled into the workload package.
func TestRecipeFilesInSync(t *testing.T) {
	for _, rec := range workload.Recipes() {
		raw, err := os.ReadFile(rec.File)
		if err != nil {
			t.Errorf("recipe %s: %v", rec.Name, err)
			continue
		}
		if string(raw) != rec.Spec {
			t.Errorf("recipe %s: %s drifted from the canonical spec text in internal/workload", rec.Name, rec.File)
		}
		if _, err := lang.ParseSpec(rec.Spec); err != nil {
			t.Errorf("recipe %s does not parse: %v", rec.Name, err)
		}
	}
}

// TestSpecSelectorEquivalence is the acceptance gate for the compiled
// selectors: the spec-language A1/A2 recipes must reproduce the
// hardcoded SelectJumps/SelectHeapWrites rewrites byte-identically,
// with identical serialized plans, at every parallelism level.
func TestSpecSelectorEquivalence(t *testing.T) {
	selCases := []struct {
		name, expr string
		sel        func([]x86.Inst) []int
	}{
		{"a1_jumps", "branch", SelectJumps},
		{"a2_heapwrites", "heapwrite", SelectHeapWrites},
	}
	kernels := []struct {
		arch string
		pie  bool
	}{
		{"branchy", false},
		{"memstream", false},
		{"branchy", true},
	}
	for _, c := range selCases {
		sp, err := lang.FromParts(c.expr, "")
		if err != nil {
			t.Fatal(err)
		}
		br, err := sp.Build(nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range kernels {
			prog, err := workload.BuildKernel(k.arch, k.pie)
			if err != nil {
				t.Fatal(err)
			}
			refPlan, err := Plan(prog.ELF, Config{Select: c.sel, ReserveVA: workload.ReserveVA()})
			if err != nil {
				t.Fatal(err)
			}
			refEnc, err := refPlan.Encode()
			if err != nil {
				t.Fatal(err)
			}
			refRes, err := Apply(prog.ELF, refPlan)
			if err != nil {
				t.Fatal(err)
			}
			if refRes.Stats.Total == 0 {
				t.Fatalf("%s/%s: reference selector matched nothing", c.name, k.arch)
			}
			for _, par := range []int{1, 2, 8} {
				cfg := Config{
					Select:      br.Select,
					Template:    br.Template,
					Parallelism: par,
					ReserveVA:   workload.ReserveVA(),
				}
				p, err := Plan(prog.ELF, cfg)
				if err != nil {
					t.Fatalf("%s/%s P=%d: %v", c.name, k.arch, par, err)
				}
				enc, err := p.Encode()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(enc, refEnc) {
					t.Errorf("%s/%s pie=%t P=%d: plan differs from hardcoded selector's",
						c.name, k.arch, k.pie, par)
					continue
				}
				res, err := Apply(prog.ELF, p)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(res.Output, refRes.Output) {
					t.Errorf("%s/%s pie=%t P=%d: output differs from hardcoded selector's",
						c.name, k.arch, k.pie, par)
				}
			}
		}
	}
}
