package e9patch

import (
	"testing"

	"e9patch/internal/emu"
	"e9patch/internal/trampoline"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// TestContextCallInstrumentation verifies the general instrumentation
// template: every executed patch site invokes the bound routine with
// its own address, the full register context survives, and behaviour is
// unchanged.
func TestContextCallInstrumentation(t *testing.T) {
	const fnAddr = 0x3_0000_0000
	prog, err := workload.BuildKernel("branchy", false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Rewrite(prog.ELF, Config{
		Select:   SelectHeapWrites,
		Template: trampoline.ContextCall{Fn: fnAddr},
		ReserveVA: append(workload.ReserveVA(),
			[2]uint64{fnAddr &^ 0xFFF, fnAddr + 0x1000}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Patched() == 0 {
		t.Fatal("nothing patched")
	}
	patchedAddrs := map[uint64]bool{}
	for _, lr := range res.Locations {
		if lr.Tactic != 0 {
			patchedAddrs[lr.Addr] = true
		}
	}

	orig := runBinary(t, prog.ELF, nil)

	hits := map[uint64]uint64{}
	m := workload.NewMachine(nil)
	m.Runtime[fnAddr] = func(m *emu.Machine) error {
		hits[m.Regs[x86.RDI]]++
		return nil
	}
	entry, err := Load(m, res.Output)
	if err != nil {
		t.Fatal(err)
	}
	m.RIP = entry
	if err := m.Run(500_000_000); err != nil {
		t.Fatal(err)
	}

	if m.Output[0] != orig.Output[0] {
		t.Fatalf("behaviour diverged: %#x vs %#x", m.Output[0], orig.Output[0])
	}
	if len(hits) == 0 {
		t.Fatal("instrumentation routine never called")
	}
	var total uint64
	for addr, n := range hits {
		total += n
		if !patchedAddrs[addr] {
			t.Errorf("instrumentation fired for unpatched address %#x", addr)
		}
	}
	t.Logf("instrumentation: %d sites, %d dynamic hits", len(hits), total)
}
