package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// backendClient drives an e9patch backend subprocess over its stdin /
// stdout pipe using the line-delimited JSON-RPC protocol (internal/rpc,
// DESIGN.md §12). e9tool keeps the analysis side — parsing the matcher,
// choosing options — and ships only protocol messages to the backend,
// mirroring the E9Tool/E9Patch process split.
type backendClient struct {
	cmd    *exec.Cmd
	in     io.WriteCloser
	out    *bufio.Reader
	nextID int
}

type backendResponse struct {
	Result json.RawMessage `json:"result"`
	Error  *struct {
		Code    int    `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func startBackend(path string) (*backendClient, error) {
	cmd := exec.Command(path, "-backend")
	cmd.Stderr = os.Stderr
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting backend %s: %w", path, err)
	}
	return &backendClient{cmd: cmd, in: in, out: bufio.NewReader(out)}, nil
}

// call sends one request with an id and waits for its response line.
// A wire-level error object becomes a client-side error carrying the
// backend's classification code.
func (c *backendClient) call(method string, params any) (json.RawMessage, error) {
	c.nextID++
	req := map[string]any{
		"jsonrpc": "2.0",
		"method":  method,
		"id":      c.nextID,
	}
	if params != nil {
		req["params"] = params
	}
	line, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	line = append(line, '\n')
	if _, err := c.in.Write(line); err != nil {
		return nil, fmt.Errorf("backend %s request: %w", method, err)
	}
	reply, err := c.out.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("backend %s: no response: %w", method, err)
	}
	var resp backendResponse
	if err := json.Unmarshal(reply, &resp); err != nil {
		return nil, fmt.Errorf("backend %s: bad response %q: %w", method, reply, err)
	}
	if resp.Error != nil {
		return nil, fmt.Errorf("backend %s failed (code %d): %s", method, resp.Error.Code, resp.Error.Message)
	}
	return resp.Result, nil
}

func (c *backendClient) close() error {
	c.in.Close()
	return c.cmd.Wait()
}

// backendOptions is what e9tool can express over the wire; the spec
// language lowers to in-process closures and cannot cross a pipe, so
// -backend is restricted to the legacy -match path with the empty or
// counter templates.
type backendOptions struct {
	match       string
	output      string
	granularity int
	skipPrefix  uint64
	disasm      string
	b0Fallback  bool
	counter     uint64
}

// runBackend performs a full option* binary patch emit session against
// an e9patch subprocess and prints a summary from the wire responses.
func runBackend(path, input string, o backendOptions) error {
	absIn, err := filepath.Abs(input)
	if err != nil {
		return err
	}
	absOut, err := filepath.Abs(o.output)
	if err != nil {
		return err
	}
	c, err := startBackend(path)
	if err != nil {
		return err
	}
	// Backend already dead on a protocol error: surface the RPC failure,
	// not the exit status.
	defer c.close()

	opt := map[string]any{"granularity": o.granularity}
	if o.skipPrefix != 0 {
		opt["skipPrefix"] = o.skipPrefix
	}
	if o.disasm != "" {
		opt["disasm"] = o.disasm
	}
	if o.b0Fallback {
		opt["b0Fallback"] = true
	}
	if o.counter != 0 {
		opt["counter"] = o.counter
	}
	if _, err := c.call("option", opt); err != nil {
		return err
	}
	binRes, err := c.call("binary", map[string]any{"filename": absIn})
	if err != nil {
		return err
	}
	var bin struct {
		Size     int64 `json:"size"`
		Insts    int   `json:"insts"`
		BadBytes int   `json:"badBytes"`
	}
	if err := json.Unmarshal(binRes, &bin); err != nil {
		return fmt.Errorf("backend binary: bad result: %w", err)
	}
	patchRes, err := c.call("patch", map[string]any{"match": o.match})
	if err != nil {
		return err
	}
	var sel struct {
		Matched  int `json:"matched"`
		Selected int `json:"selected"`
	}
	if err := json.Unmarshal(patchRes, &sel); err != nil {
		return fmt.Errorf("backend patch: bad result: %w", err)
	}
	emitRes, err := c.call("emit", map[string]any{"output": absOut, "format": "binary"})
	if err != nil {
		return err
	}
	var emit struct {
		OutputSize  int64    `json:"outputSize"`
		Trampolines int      `json:"trampolines"`
		Patched     int      `json:"patched"`
		Failed      int      `json:"failed"`
		Mappings    int      `json:"mappings"`
		Warnings    []string `json:"warnings"`
	}
	if err := json.Unmarshal(emitRes, &emit); err != nil {
		return fmt.Errorf("backend emit: bad result: %w", err)
	}
	if err := c.close(); err != nil {
		return fmt.Errorf("backend exit: %w", err)
	}

	fmt.Printf("backend: matched %d of %d instructions; patched %d; failed %d\n",
		sel.Selected, bin.Insts, emit.Patched, emit.Failed)
	fmt.Printf("backend: %d trampolines, %d mappings; size %d -> %d bytes\n",
		emit.Trampolines, emit.Mappings, bin.Size, emit.OutputSize)
	for _, w := range emit.Warnings {
		fmt.Fprintf(os.Stderr, "e9tool: warning: %s\n", w)
	}
	return nil
}
