package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"e9patch"
	"e9patch/internal/patch"
	"e9patch/internal/trampoline"
	"e9patch/internal/workload"
)

// TestBackendPipeline builds the real e9tool and e9patch binaries and
// drives a rewrite through the frontend/backend process split:
//
//	e9tool -backend e9patch -match EXPR -o OUT INPUT
//
// The file the backend emits must be byte-identical to an in-process
// Rewrite with the same configuration — the pipe must not change a
// single output byte.
func TestBackendPipeline(t *testing.T) {
	dir := t.TempDir()
	e9patchBin := filepath.Join(dir, "e9patch")
	if out, err := exec.Command("go", "build", "-o", e9patchBin, "../e9patch").CombinedOutput(); err != nil {
		t.Fatalf("go build e9patch: %v\n%s", err, out)
	}
	e9toolBin := filepath.Join(dir, "e9tool")
	if out, err := exec.Command("go", "build", "-o", e9toolBin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build e9tool: %v\n%s", err, out)
	}

	saved := workload.KernelIters
	workload.KernelIters = 1500
	defer func() { workload.KernelIters = saved }()
	prog, err := workload.BuildKernel("branchy", true)
	if err != nil {
		t.Fatal(err)
	}
	inPath := filepath.Join(dir, "input.bin")
	if err := os.WriteFile(inPath, prog.ELF, 0o755); err != nil {
		t.Fatal(err)
	}

	for name, tc := range map[string]struct {
		args []string
		cfg  e9patch.Config
	}{
		"match": {
			args: []string{"-match", "jcc & short"},
		},
		"counter-b0": {
			args: []string{"-match", "heapwrite", "-action", "counter=0x404000",
				"-b0-fallback", "-granularity", "2"},
			cfg: e9patch.Config{
				Template:    trampoline.Counter{Addr: 0x404000},
				Granularity: 2,
				Patch:       patch.Options{B0Fallback: true},
			},
		},
	} {
		t.Run(name, func(t *testing.T) {
			outPath := filepath.Join(dir, name+".out")
			args := append([]string{"-backend", e9patchBin, "-o", outPath}, tc.args...)
			args = append(args, inPath)
			cmd := exec.Command(e9toolBin, args...)
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("e9tool -backend: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
			}
			if !strings.Contains(stdout.String(), "backend:") {
				t.Fatalf("no backend summary on stdout: %s", stdout.String())
			}

			matchExpr := tc.args[1]
			sel, err := e9patch.SelectMatch(matchExpr)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tc.cfg
			cfg.Select = sel
			want, err := e9patch.Rewrite(prog.ELF, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(outPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want.Output) {
				t.Fatalf("backend pipeline output (%d bytes) differs from in-process rewrite (%d bytes)",
					len(got), len(want.Output))
			}
		})
	}

	// The spec language cannot cross the pipe: -backend with -M must be
	// a usage error, not a silent in-process fallback.
	cmd := exec.Command(e9toolBin, "-backend", e9patchBin, "-M", "jcc", "-o", filepath.Join(dir, "x"), inPath)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err = cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("expected usage error for -backend with -M, got %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "legacy -match") {
		t.Fatalf("usage error does not explain the restriction:\n%s", stderr.String())
	}
}
