// Command e9tool is the high-level front-end to the rewriter, in the
// spirit of the E9Tool companion of E9Patch: patch points are selected
// with a matcher expression and the action is chosen by name.
//
// The primary interface is the spec language (internal/lang,
// DESIGN.md §11), E9Tool-style:
//
//	e9tool -M 'jcc & short' -P empty -o out.bin input.bin
//	e9tool -M 'call & indirect' -P 'call trace(addr)@trace_payload.elf' -o traced.bin input.bin
//	e9tool -spec examples/specs/syscall_trace.e9spec -o traced.bin input.bin
//
// -M takes a match expression (asm=, mnemonic=, operand registers,
// address ranges, and/or/not — see internal/lang); -P a patch spec
// (empty | counter=ADDR | contextcall=ADDR | lowfat | lowfat-trap |
// call FN(args)[@PAYLOAD]); -spec a spec file combining match/exclude/
// patch/payload directives. Payload ELFs for call patches resolve
// relative to the spec file (or the working directory for -P), or
// explicitly via -payload.
//
// The legacy flags remain: -match (internal/match grammar) and
// -action. The two rewrite phases can also be driven separately:
//
//	e9tool -M 'jcc' -dry-run input.bin                        # plan, report, write nothing
//	e9tool -M 'jcc' -emit-plan plan.json input.bin            # plan only, save the decisions
//	e9tool -apply-plan plan.json -o out.bin input.bin         # replay a saved plan
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"e9patch"
	"e9patch/internal/lang"
	"e9patch/internal/lowfat"
	"e9patch/internal/patch"
	"e9patch/internal/trampoline"
)

func main() {
	var (
		exprM     = flag.String("M", "", "spec-language match expression (e.g. 'call & indirect', 'asm=\"mov.*\"')")
		patchP    = flag.String("P", "", "spec-language patch: empty | counter=ADDR | contextcall=ADDR | lowfat | lowfat-trap | 'call FN(args)[@PAYLOAD]'")
		specFile  = flag.String("spec", "", "spec file with match/exclude/patch/payload directives (exclusive with -M/-P/-match/-action)")
		payloadF  = flag.String("payload", "", "payload ELF for call patches (overrides the spec's @reference)")
		expr      = flag.String("match", "", "legacy matcher expression (internal/match grammar)")
		action    = flag.String("action", "empty", "legacy action: empty | counter=ADDR | contextcall=ADDR | lowfat | lowfat-trap")
		out       = flag.String("o", "", "output file (required unless -dry-run or -emit-plan)")
		gran      = flag.Int("granularity", 1, "page grouping granularity (-1 disables)")
		b0        = flag.Bool("b0-fallback", false, "int3 fallback for unpatchable locations")
		skip      = flag.Uint64("skip", 0, "skip first N bytes of .text")
		disasmF   = flag.String("disasm", "", "instruction recovery mode: linear (default) | superset | superset-cet")
		coverage  = flag.String("coverage", "", "\"full\" patches every recovered instruction (no match expression; pairs with -disasm superset modes)")
		dryRun    = flag.Bool("dry-run", false, "plan only: report tactics and footprint, write nothing")
		emitPlan  = flag.String("emit-plan", "", "plan only: write the patch plan JSON to FILE")
		applyPlan = flag.String("apply-plan", "", "skip planning: replay the patch plan JSON from FILE")
		backend   = flag.String("backend", "", "drive the e9patch backend at PATH over JSON-RPC instead of rewriting in-process (legacy -match path only)")

		// Hostile-input hardening: resource limits for rewriting
		// untrusted binaries (0 disables a bound).
		maxInputMB   = flag.Int("max-input-mb", 0, "maximum input size in MiB (0: unlimited)")
		maxTextMB    = flag.Int("max-text-mb", 0, "maximum .text section size in MiB (0: unlimited)")
		maxSites     = flag.Int("max-sites", 0, "maximum patch sites (0: unlimited)")
		maxTrampMB   = flag.Int("max-tramp-mb", 0, "maximum emitted trampoline bytes in MiB (0: unlimited)")
		phaseTimeout = flag.Duration("phase-timeout", 0, "per-phase (disassembly, patching) deadline (0: unlimited)")
	)
	flag.Parse()
	planOnly := *dryRun || *emitPlan != ""
	usageErr := func(msg string) {
		fmt.Fprintln(os.Stderr, "e9tool: "+msg)
		fmt.Fprintln(os.Stderr, "usage: e9tool -M EXPR [-P PATCH] [-dry-run] [-emit-plan PLAN] -o OUT INPUT")
		fmt.Fprintln(os.Stderr, "       e9tool -spec FILE [-payload ELF] -o OUT INPUT")
		fmt.Fprintln(os.Stderr, "       e9tool -apply-plan PLAN -o OUT INPUT")
		flag.Usage()
		os.Exit(2)
	}
	useLang := *specFile != "" || *exprM != "" || *patchP != ""
	fullCov := *coverage == "full"
	switch {
	case flag.NArg() != 1:
		usageErr("exactly one input binary expected")
	case *coverage != "" && *coverage != "full":
		usageErr("-coverage takes only \"full\"")
	case fullCov && (useLang || *expr != ""):
		usageErr("-coverage=full selects every recovered instruction; it is exclusive with -M/-P/-spec/-match")
	case *applyPlan != "":
		if planOnly {
			usageErr("-apply-plan is exclusive with -dry-run/-emit-plan")
		}
		if fullCov {
			usageErr("-apply-plan replays the plan's recorded selection; -coverage is not applicable")
		}
		if *disasmF != "" {
			usageErr("-apply-plan replays the plan's recorded disassembly mode; -disasm is not applicable")
		}
		if *out == "" {
			usageErr("-apply-plan needs -o")
		}
	case *specFile != "" && (*exprM != "" || *patchP != "" || *expr != "" || *action != "empty"):
		usageErr("-spec is exclusive with -M/-P/-match/-action")
	case useLang && (*expr != "" || (*action != "empty" && *patchP != "")):
		usageErr("-M/-P are exclusive with -match/-action")
	case !useLang && *expr == "" && !fullCov:
		usageErr("-M (or a -spec file, legacy -match, or -coverage=full) is required")
	case *out == "" && !planOnly:
		usageErr("-o is required (or use -dry-run/-emit-plan)")
	}
	if _, err := e9patch.ParseDisasmMode(*disasmF); err != nil {
		usageErr(err.Error())
	}

	if *backend != "" {
		// The spec language and the plan phases lower to in-process
		// closures that cannot cross a pipe; the backend split carries
		// exactly what the protocol can express.
		switch {
		case useLang:
			usageErr("-backend supports the legacy -match path only (not -M/-P/-spec)")
		case fullCov:
			usageErr("-backend selects via a -match expression; -coverage=full is not supported over the wire")
		case planOnly || *applyPlan != "":
			usageErr("-backend is exclusive with -dry-run/-emit-plan/-apply-plan")
		case *maxInputMB != 0 || *maxTextMB != 0 || *maxSites != 0 || *maxTrampMB != 0 || *phaseTimeout != 0:
			usageErr("resource limits apply to the backend process, not the frontend; set them on the backend side")
		}
		counter := uint64(0)
		switch {
		case *action == "empty":
		case strings.HasPrefix(*action, "counter="):
			addr, err := strconv.ParseUint((*action)[len("counter="):], 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad counter address: %w", err))
			}
			counter = addr
		default:
			usageErr("-backend supports -action empty or counter=ADDR only")
		}
		if err := runBackend(*backend, flag.Arg(0), backendOptions{
			match:       *expr,
			output:      *out,
			granularity: *gran,
			skipPrefix:  *skip,
			disasm:      *disasmF,
			b0Fallback:  *b0,
			counter:     counter,
		}); err != nil {
			fatal(err)
		}
		return
	}

	input, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *applyPlan != "" {
		data, err := os.ReadFile(*applyPlan)
		if err != nil {
			fatal(err)
		}
		p, err := e9patch.DecodePlan(data)
		if err != nil {
			fatal(err)
		}
		res, err := e9patch.Apply(input, p)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, res.Output, 0o755); err != nil {
			fatal(err)
		}
		report(res)
		return
	}

	cfg := e9patch.Config{
		Granularity: *gran,
		SkipPrefix:  *skip,
		Disasm:      e9patch.DisasmMode(*disasmF),
		Patch:       patch.Options{B0Fallback: *b0},
		Limits: e9patch.Limits{
			MaxInputBytes:      int64(*maxInputMB) << 20,
			MaxTextBytes:       int64(*maxTextMB) << 20,
			MaxPatchSites:      *maxSites,
			MaxTrampolineBytes: int64(*maxTrampMB) << 20,
			PhaseTimeout:       *phaseTimeout,
		},
	}
	if useLang {
		// Spec-language path: parse (file or -M/-P), resolve the
		// payload reference, and lower to pipeline configuration.
		var sp *lang.Spec
		payloadDir := "."
		if *specFile != "" {
			text, err := os.ReadFile(*specFile)
			if err != nil {
				fatal(err)
			}
			if sp, err = lang.ParseSpec(string(text)); err != nil {
				fatal(err)
			}
			payloadDir = filepath.Dir(*specFile)
		} else {
			m := *exprM
			if m == "" {
				usageErr("-P needs a match expression (-M)")
			}
			var err error
			if sp, err = lang.FromParts(m, *patchP); err != nil {
				fatal(err)
			}
		}
		var payload []byte
		ref := *payloadF
		if ref == "" && sp.PayloadRef != "" {
			ref = filepath.Join(payloadDir, sp.PayloadRef)
		}
		if ref != "" {
			var err error
			if payload, err = os.ReadFile(ref); err != nil {
				fatal(err)
			}
		}
		br, err := sp.Build(payload)
		if err != nil {
			fatal(err)
		}
		cfg.Select = br.Select
		cfg.Template = br.Template
		cfg.Inject = br.Inject
		cfg.ReserveVA = append(cfg.ReserveVA, br.ReserveVA...)
	} else {
		if fullCov {
			// Full-coverage rewriting: patch every instruction the
			// recovery frontend produced. With the superset modes this is
			// the "instrument everything plausible" experiment; overlapping
			// candidates that contend for the same bytes simply fail to
			// TacticNone and are reported, never corrupted.
			cfg.Select = e9patch.SelectAll
		} else {
			sel, err := e9patch.SelectMatch(*expr)
			if err != nil {
				fatal(err)
			}
			cfg.Select = sel
		}
		switch {
		case *action == "empty":
			// default template
		case strings.HasPrefix(*action, "counter="):
			addr, err := strconv.ParseUint((*action)[len("counter="):], 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad counter address: %w", err))
			}
			cfg.Template = trampoline.Counter{Addr: addr}
		case strings.HasPrefix(*action, "contextcall="):
			addr, err := strconv.ParseUint((*action)[len("contextcall="):], 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad contextcall address: %w", err))
			}
			cfg.Template = trampoline.ContextCall{Fn: addr}
		case *action == "lowfat":
			cfg.Template = lowfat.CheckTemplate{}
			cfg.ReserveVA = append(cfg.ReserveVA, lowfat.ReserveVA()...)
		case *action == "lowfat-trap":
			cfg.Template = lowfat.CheckTemplate{Trap: true}
			cfg.ReserveVA = append(cfg.ReserveVA, lowfat.ReserveVA()...)
		default:
			fatal(fmt.Errorf("unknown action %q", *action))
		}
	}

	if planOnly {
		p, err := e9patch.Plan(input, cfg)
		if err != nil {
			fatal(err)
		}
		if *emitPlan != "" {
			enc, err := p.Encode()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*emitPlan, enc, 0o644); err != nil {
				fatal(err)
			}
		}
		planReport(p)
		return
	}

	res, err := e9patch.Rewrite(input, cfg)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, res.Output, 0o755); err != nil {
		fatal(err)
	}
	report(res)
}

// report prints the post-rewrite summary.
func report(res *e9patch.Result) {
	s := res.Stats
	if res.Disasm != "" && res.Disasm != "linear" {
		if rec := res.Recovery; rec != nil {
			fmt.Printf("disasm: %s: %d decoded, %d valid, %d kept (%.1f%% pruned)\n",
				res.Disasm, rec.Decoded, rec.Valid, rec.Kept, 100*rec.PruneRatio())
		} else {
			fmt.Printf("disasm: %s\n", res.Disasm)
		}
	}
	fmt.Printf("matched %d of %d instructions; patched %d (%.2f%%); size %.2f%%\n",
		s.Total, res.Insts, s.Patched(), s.SuccPercent(), res.SizePercent())
	fmt.Printf("tactics: B1=%d B2=%d T1=%d T2=%d T3=%d B0=%d failed=%d\n",
		s.ByTactic[patch.TacticB1], s.ByTactic[patch.TacticB2],
		s.ByTactic[patch.TacticT1], s.ByTactic[patch.TacticT2],
		s.ByTactic[patch.TacticT3], s.ByTactic[patch.TacticB0], s.Failed)
}

// planReport prints what a plan would do without materializing it.
func planReport(p *e9patch.PatchPlan) {
	counts := p.TacticCounts()
	patched := 0
	names := make([]string, 0, len(counts))
	for name, n := range counts {
		if name != "none" {
			patched += n
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Printf("plan: %d of %d matched instructions patchable; %d trampolines; %d text bytes modified\n",
		patched, len(p.Sites), p.TrampolineCount(), p.PatchedBytes())
	parts := make([]string, 0, len(names)+1)
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, counts[name]))
	}
	parts = append(parts, fmt.Sprintf("failed=%d", counts["none"]))
	fmt.Printf("tactics: %s\n", strings.Join(parts, " "))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "e9tool: %v\n", err)
	os.Exit(1)
}
