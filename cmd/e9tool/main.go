// Command e9tool is the high-level front-end to the rewriter, in the
// spirit of the E9Tool companion of E9Patch: patch points are selected
// with a matcher expression and the action is chosen by name.
//
// Usage:
//
//	e9tool -match 'jcc & short' -action empty -o out.bin input.bin
//	e9tool -match heapwrite -action lowfat -o hardened.bin input.bin
//	e9tool -match 'branch' -action counter=0x300000000 -o traced.bin input.bin
//
// Matcher grammar (see internal/match): terms like jump, jcc, call,
// ret, memwrite, heapwrite, riprel, short, len>=N, op=0xNN,
// mnemonic=S, addr=0xA combined with &, |, ! and parentheses.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"e9patch"
	"e9patch/internal/lowfat"
	"e9patch/internal/patch"
	"e9patch/internal/trampoline"
)

func main() {
	var (
		expr   = flag.String("match", "", "matcher expression (required)")
		action = flag.String("action", "empty", "empty | counter=ADDR | contextcall=ADDR | lowfat | lowfat-trap")
		out    = flag.String("o", "", "output file (required)")
		gran   = flag.Int("M", 1, "page grouping granularity (-1 disables)")
		b0     = flag.Bool("b0-fallback", false, "int3 fallback for unpatchable locations")
		skip   = flag.Uint64("skip", 0, "skip first N bytes of .text")
	)
	flag.Parse()
	if flag.NArg() != 1 || *out == "" || *expr == "" {
		fmt.Fprintln(os.Stderr, "usage: e9tool -match EXPR [-action ACT] -o OUT INPUT")
		flag.Usage()
		os.Exit(2)
	}

	input, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	sel, err := e9patch.SelectMatch(*expr)
	if err != nil {
		fatal(err)
	}

	cfg := e9patch.Config{
		Select:      sel,
		Granularity: *gran,
		SkipPrefix:  *skip,
		Patch:       patch.Options{B0Fallback: *b0},
	}
	switch {
	case *action == "empty":
		// default template
	case strings.HasPrefix(*action, "counter="):
		addr, err := strconv.ParseUint((*action)[len("counter="):], 0, 64)
		if err != nil {
			fatal(fmt.Errorf("bad counter address: %w", err))
		}
		cfg.Template = trampoline.Counter{Addr: addr}
	case strings.HasPrefix(*action, "contextcall="):
		addr, err := strconv.ParseUint((*action)[len("contextcall="):], 0, 64)
		if err != nil {
			fatal(fmt.Errorf("bad contextcall address: %w", err))
		}
		cfg.Template = trampoline.ContextCall{Fn: addr}
	case *action == "lowfat":
		cfg.Template = lowfat.CheckTemplate{}
		cfg.ReserveVA = append(cfg.ReserveVA, lowfat.ReserveVA()...)
	case *action == "lowfat-trap":
		cfg.Template = lowfat.CheckTemplate{Trap: true}
		cfg.ReserveVA = append(cfg.ReserveVA, lowfat.ReserveVA()...)
	default:
		fatal(fmt.Errorf("unknown action %q", *action))
	}

	res, err := e9patch.Rewrite(input, cfg)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, res.Output, 0o755); err != nil {
		fatal(err)
	}
	s := res.Stats
	fmt.Printf("matched %d of %d instructions; patched %d (%.2f%%); size %.2f%%\n",
		s.Total, res.Insts, s.Patched(), s.SuccPercent(), res.SizePercent())
	fmt.Printf("tactics: B1=%d B2=%d T1=%d T2=%d T3=%d B0=%d failed=%d\n",
		s.ByTactic[patch.TacticB1], s.ByTactic[patch.TacticB2],
		s.ByTactic[patch.TacticT1], s.ByTactic[patch.TacticT2],
		s.ByTactic[patch.TacticT3], s.ByTactic[patch.TacticB0], s.Failed)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "e9tool: %v\n", err)
	os.Exit(1)
}
