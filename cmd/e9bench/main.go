// Command e9bench regenerates the paper's evaluation artefacts: Table 1,
// Figure 4, Figure 5 and the supporting ablations.
//
// Usage:
//
//	e9bench -table1            # patching statistics (Table 1)
//	e9bench -fig4              # Dromaeo browser overheads (Figure 4)
//	e9bench -fig5              # LowFat hardening overheads (Figure 5)
//	e9bench -ablation-grouping # §6.1 file-size with/without grouping
//	e9bench -ablation-granularity # §4 mapping count vs M
//	e9bench -ablation-pie      # §6.1 PIE vs non-PIE coverage
//	e9bench -ablation-b0       # §2.1.1 signal-handler baseline
//	e9bench -motivation        # §1 CFG-recovery accuracy decay
//	e9bench -enginespeed       # interp vs tbc vs ir emulation throughput
//	e9bench -parallelism=8     # rewrite-phase scaling curve, widths 1..8
//	e9bench -plancache         # plan-cache-hit rematerialization speedup
//	e9bench -matchlang         # spec-language matcher cost vs hardcoded selectors
//	e9bench -stream            # zero-copy streaming vs buffered rewrite, 100MB+ binary
//	e9bench -disasm            # per-mode recovery counts, prune ratio, rewrite throughput
//	e9bench -cluster           # peer plan-fetch speedup + plan-delta egress ratio
//	e9bench -all               # everything
//
// -scale shrinks the synthetic binaries relative to the paper's sizes
// (default 0.25); -full is shorthand for -scale 1. -engine selects the
// execution engine by registry name (tbc translation cache by default;
// ir for the IR-lifting engine; interp to fall back to the
// decode-per-step interpreter); every run ends with an
// instructions-per-second line for the session. -json PATH additionally
// writes the session's machine-readable results (engine, workload,
// instructions/sec, speedup) for the BENCH_*.json trajectory
// (`make bench-json`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"e9patch/internal/emu"
	"e9patch/internal/eval"
	"e9patch/internal/workload"
)

// jsonReport is the machine-readable result file written by -json: the
// start of the repo's BENCH_*.json trajectory, so performance can be
// tracked across commits without scraping stdout.
type jsonReport struct {
	GeneratedAt string           `json:"generatedAt"`
	Scale       float64          `json:"scale"`
	Engine      string           `json:"engine"`
	EngineSpeed *engineSpeedJSON `json:"engineSpeed,omitempty"`
	Emulation   *emulationJSON   `json:"emulation,omitempty"`
	Parallel    *parallelJSON    `json:"rewriteScaling,omitempty"`
	PlanCache   *planCacheJSON   `json:"planCache,omitempty"`
	MatchLang   *matchLangJSON   `json:"matchLang,omitempty"`
	Stream      *streamJSON      `json:"stream,omitempty"`
	Disasm      *disasmJSON      `json:"disasmModes,omitempty"`
	Cluster     *clusterJSON     `json:"cluster,omitempty"`
}

// clusterJSON mirrors eval.ClusterBench for the -cluster run.
type clusterJSON struct {
	Profile         string  `json:"profile"`
	Nodes           int     `json:"nodes"`
	Locations       int     `json:"locations"`
	ReplanSec       float64 `json:"replanSeconds"`
	PeerFetchSec    float64 `json:"peerFetchSeconds"`
	FetchSpeedup    float64 `json:"peerFetchSpeedup"`
	Identical       bool    `json:"byteIdentical"`
	EgressMB        int     `json:"egressTargetMB"`
	EgressTextMB    int     `json:"egressTextMB"`
	FullEgressBytes int     `json:"fullEgressBytes"`
	PlanEgressBytes int     `json:"planEgressBytes"`
	EgressRatio     float64 `json:"egressRatio"`
	EgressIdentical bool    `json:"egressByteIdentical"`
}

// disasmJSON mirrors eval.DisasmBench for the -disasm run.
type disasmJSON struct {
	Scale    float64             `json:"scale"`
	Profiles []disasmProfileJSON `json:"profiles"`
}

type disasmProfileJSON struct {
	Profile string           `json:"profile"`
	CET     bool             `json:"cet"`
	DSO     bool             `json:"dso"`
	TextKB  float64          `json:"textKB"`
	Rows    []disasmModeJSON `json:"modes"`
}

type disasmModeJSON struct {
	Mode       string  `json:"mode"`
	Recovered  int     `json:"recovered"`
	Decoded    int     `json:"decoded,omitempty"`
	Valid      int     `json:"valid,omitempty"`
	Anchors    int     `json:"anchors,omitempty"`
	PruneRatio float64 `json:"pruneRatio"`
	PlanSites  int     `json:"planSites"`
	Patched    int     `json:"patched"`
	Seconds    float64 `json:"seconds"`
	MBPerSec   float64 `json:"mbPerSec"`
}

// streamJSON mirrors eval.StreamBench for the -stream run.
type streamJSON struct {
	TargetMB          int     `json:"targetMB"`
	TextMB            int     `json:"textMB"`
	InputBytes        int     `json:"inputBytes"`
	Insts             int     `json:"insts"`
	Locations         int     `json:"locations"`
	Mmapped           bool    `json:"mmapped"`
	BufferedPeakBytes uint64  `json:"bufferedPeakRssBytes"`
	StreamPeakBytes   uint64  `json:"streamPeakRssBytes"`
	BufferedAllocs    uint64  `json:"bufferedAllocs"`
	StreamAllocs      uint64  `json:"streamAllocs"`
	BufferedSec       float64 `json:"bufferedSeconds"`
	StreamSec         float64 `json:"streamSeconds"`
	BudgetBytes       uint64  `json:"budgetBytes"`
	UnderBudget       bool    `json:"underBudget"`
	Identical         bool    `json:"byteIdentical"`
}

// matchLangJSON mirrors eval.MatchLangBench for the -matchlang run.
type matchLangJSON struct {
	Profile string             `json:"profile"`
	Insts   int                `json:"insts"`
	Rows    []matchLangRowJSON `json:"rows"`
}

type matchLangRowJSON struct {
	Name      string  `json:"name"`
	Expr      string  `json:"expr"`
	Matched   int     `json:"matched"`
	HardNs    float64 `json:"hardcodedNsPerInst,omitempty"`
	LangNs    float64 `json:"compiledNsPerInst"`
	Slowdown  float64 `json:"slowdown,omitempty"`
	Identical bool    `json:"identicalSelection"`
}

// planCacheJSON mirrors eval.PlanCacheBench for the -plancache run.
type planCacheJSON struct {
	Profile     string  `json:"profile"`
	App         string  `json:"app"`
	Locations   int     `json:"locations"`
	RewriteSec  float64 `json:"rewriteSeconds"`
	PlanSec     float64 `json:"planSeconds"`
	ApplySec    float64 `json:"applySeconds"`
	Speedup     float64 `json:"applySpeedup"`
	PlanBytes   int     `json:"planBytes"`
	OutputBytes int     `json:"outputBytes"`
	Identical   bool    `json:"byteIdentical"`
}

// parallelJSON mirrors eval.ParallelScaling for the -parallelism run.
type parallelJSON struct {
	Profile   string              `json:"profile"`
	App       string              `json:"app"`
	Insts     int                 `json:"insts"`
	Locations int                 `json:"locations"`
	Cores     int                 `json:"cores"`
	Identical bool                `json:"byteIdentical"`
	Points    []parallelPointJSON `json:"points"`
}

type parallelPointJSON struct {
	Width   int     `json:"width"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup"`
}

// engineSpeedJSON mirrors eval.EngineSpeed for the -enginespeed run.
// "speedup" stays the tbc/interp ratio so the trajectory across
// commits remains comparable; the ir engine adds its own pair.
type engineSpeedJSON struct {
	Workload     string  `json:"workload"`
	Instructions uint64  `json:"instructions"`
	InterpIPS    float64 `json:"interpInstPerSec"`
	TBCIPS       float64 `json:"tbcInstPerSec"`
	IRIPS        float64 `json:"irInstPerSec"`
	Speedup      float64 `json:"speedup"`
	IRSpeedup    float64 `json:"irSpeedup"`
}

// emulationJSON is the session-wide emulation throughput.
type emulationJSON struct {
	Instructions uint64  `json:"instructions"`
	Seconds      float64 `json:"seconds"`
	InstPerSec   float64 `json:"instPerSec"`
}

func main() {
	eval.MaybeStreamChild()
	var (
		table1  = flag.Bool("table1", false, "regenerate Table 1")
		fig4    = flag.Bool("fig4", false, "regenerate Figure 4")
		fig5    = flag.Bool("fig5", false, "regenerate Figure 5")
		abGroup = flag.Bool("ablation-grouping", false, "grouping on/off file-size ablation")
		abGran  = flag.Bool("ablation-granularity", false, "granularity sweep (mappings vs M)")
		abPIE   = flag.Bool("ablation-pie", false, "PIE vs non-PIE coverage")
		abB0    = flag.Bool("ablation-b0", false, "int3/SIGTRAP baseline comparison")
		motiv   = flag.Bool("motivation", false, "CFG-recovery accuracy decay table")
		engSpd  = flag.Bool("enginespeed", false, "interp vs tbc vs ir emulation throughput")
		parMax  = flag.Int("parallelism", 0, "measure rewrite-phase scaling up to this worker count")
		planCch = flag.Bool("plancache", false, "measure plan-cache-hit rematerialization speedup")
		mtchLng = flag.Bool("matchlang", false, "measure spec-language matcher cost vs hardcoded selectors")
		strm    = flag.Bool("stream", false, "measure zero-copy streaming vs buffered rewrite on a browser-class binary")
		disasmB = flag.Bool("disasm", false, "measure recovery counts, prune ratio and throughput per disassembly mode")
		clstr   = flag.Bool("cluster", false, "measure peer plan-fetch speedup and plan-delta egress ratio")
		clstrMB = flag.Int("cluster-mb", 120, "-cluster: egress workload size in MB")
		strmMB  = flag.Int("stream-mb", 120, "-stream: total workload size in MB")
		strmTxt = flag.Int("stream-text-mb", 16, "-stream: text section size in MB")
		all     = flag.Bool("all", false, "run every experiment")
		scale   = flag.Float64("scale", 0.25, "binary size scale vs the paper")
		full    = flag.Bool("full", false, "shorthand for -scale 1")
		iters   = flag.Int("iters", 0, "kernel iterations (0 = default)")
		spec    = flag.Bool("spec-only", false, "Table 1: SPEC rows only")
		engine  = flag.String("engine", "tbc", "execution engine: tbc (translation cache), ir (IR lifting), or interp (fallback)")
		jsonOut = flag.String("json", "", "write machine-readable results to this path")
		verbose = flag.Bool("v", false, "progress output")
	)
	flag.Parse()
	if *full {
		*scale = 1
	}
	if _, err := emu.NewEngineByName(*engine); err != nil {
		fmt.Fprintf(os.Stderr, "e9bench: %v\n", err)
		os.Exit(2)
	}
	workload.Engine = *engine
	opt := eval.Options{Scale: *scale, Iters: *iters}
	progress := func() *os.File {
		if *verbose {
			return os.Stderr
		}
		return nil
	}()
	var prog *os.File = progress

	ran := false
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "e9bench: %v\n", err)
		os.Exit(1)
	}

	if *table1 || *all {
		ran = true
		profiles := workload.AllProfiles()
		if *spec {
			profiles = workload.SPECProfiles
		}
		fmt.Printf("== Table 1: patching statistics (scale %.3g) ==\n", *scale)
		rows, err := eval.Table1(opt, profiles, prog)
		if err != nil {
			fail(err)
		}
		eval.PrintTable1(os.Stdout, rows)
		fmt.Println()
	}
	if *fig4 || *all {
		ran = true
		fmt.Println("== Figure 4: Dromaeo DOM relative overheads (A2 empty instrumentation) ==")
		pts, err := eval.Figure4(opt, prog)
		if err != nil {
			fail(err)
		}
		eval.PrintFigure4(os.Stdout, pts)
		fmt.Println()
		eval.ChartFigure4(os.Stdout, pts)
		fmt.Println()
	}
	if *fig5 || *all {
		ran = true
		fmt.Println("== Figure 5: heap-write hardening (empty vs LowFat) ==")
		rows, err := eval.Figure5(opt, prog)
		if err != nil {
			fail(err)
		}
		eval.PrintFigure5(os.Stdout, rows)
		fmt.Println()
		eval.ChartFigure5(os.Stdout, rows)
		fmt.Println()
	}
	if *abGroup || *all {
		ran = true
		fmt.Println("== Ablation: physical page grouping vs naive 1:1 (avg Size% over SPEC) ==")
		out, err := eval.AblationGrouping(opt, prog)
		if err != nil {
			fail(err)
		}
		for _, g := range out {
			fmt.Printf("%-3s grouped %8.2f%%   naive %8.2f%%   (bloat reduced %.1fx)\n",
				g.App, g.GroupedSizePct, g.NaiveSizePct,
				(g.NaiveSizePct-100)/(g.GroupedSizePct-100))
		}
		fmt.Println()
	}
	if *abGran || *all {
		ran = true
		fmt.Println("== Ablation: grouping granularity M (Chrome profile, A2) ==")
		pts, err := eval.AblationGranularity(opt, prog)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%4s %12s %18s %10s %s\n", "M", "mappings", "mappings(full est)", "phys MB", "under vm.max_map_count")
		for _, p := range pts {
			fmt.Printf("%4d %12d %18d %10.2f %v\n", p.M, p.Mappings, p.MappingsFullScale, p.PhysMB, p.UnderLimit)
		}
		fmt.Println()
	}
	if *abPIE || *all {
		ran = true
		fmt.Println("== Ablation: PIE vs non-PIE coverage (same instruction mix) ==")
		out, err := eval.AblationPIE(opt, prog)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-10s %-3s %12s %12s %12s %12s\n", "binary", "app", "base(native)", "base(PIE)", "succ(native)", "succ(PIE)")
		for _, c := range out {
			fmt.Printf("%-10s %-3s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
				c.Name, c.App, c.NativeBase, c.PIEBase, c.NativeSucc, c.PIESucc)
		}
		fmt.Println()
	}
	if *abB0 || *all {
		ran = true
		fmt.Println("== Ablation: B0 int3/SIGTRAP baseline vs jump tactics (perlbench kernel, A1) ==")
		c, err := eval.AblationB0(opt)
		if err != nil {
			fail(err)
		}
		fmt.Printf("jump tactics: %8.1f%%   int3+signal: %10.1f%%   (%.0fx slower)\n",
			c.JumpPct, c.SignalPct, c.Factor)
		fmt.Println()
	}
	if *motiv || *all {
		ran = true
		fmt.Println("== Motivation (§1): effective accuracy of 99.9%-accurate CFG recovery ==")
		for _, p := range eval.MotivationAccuracy() {
			fmt.Printf("%6d indirect jumps -> %8.4f%%\n", p.Jumps, p.Effective)
		}
		fmt.Println()
	}

	report := jsonReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       *scale,
		Engine:      *engine,
	}

	if *engSpd || *all {
		ran = true
		fmt.Println("== Engine throughput: interp vs tbc vs ir (memstream kernel) ==")
		es, err := eval.MeasureEngines(opt)
		if err != nil {
			fail(err)
		}
		fmt.Printf("interp %10.2f Minst/s\ntbc    %10.2f Minst/s   speedup %.2fx\nir     %10.2f Minst/s   speedup %.2fx  (%d instructions/run, counters identical)\n",
			es.InterpIPS/1e6, es.TBCIPS/1e6, es.Speedup,
			es.IRIPS/1e6, es.IRSpeedup, es.Instructions)
		fmt.Println()
		report.EngineSpeed = &engineSpeedJSON{
			Workload:     "memstream",
			Instructions: es.Instructions,
			InterpIPS:    es.InterpIPS,
			TBCIPS:       es.TBCIPS,
			IRIPS:        es.IRIPS,
			Speedup:      es.Speedup,
			IRSpeedup:    es.IRSpeedup,
		}
	}

	if *parMax > 0 || *all {
		ran = true
		max := *parMax
		if max <= 0 {
			max = 8
		}
		widths := []int{1}
		for w := 2; w < max; w *= 2 {
			widths = append(widths, w)
		}
		if widths[len(widths)-1] != max {
			widths = append(widths, max)
		}
		fmt.Printf("== Rewrite-phase parallel scaling (gcc profile, A2, widths %v) ==\n", widths)
		ps, err := eval.MeasureParallelScaling(opt, widths, prog)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%d insts, %d locations, %d core(s), byte-identical across widths: %v\n",
			ps.Insts, ps.Locations, ps.Cores, ps.Identical)
		for _, pt := range ps.Points {
			fmt.Printf("  width %2d: %8.3fs   speedup %.2fx\n", pt.Width, pt.Seconds, pt.Speedup)
		}
		if !ps.Identical {
			fail(fmt.Errorf("parallel rewrite output diverged from sequential"))
		}
		fmt.Println()
		pj := &parallelJSON{
			Profile:   ps.Profile,
			App:       ps.App,
			Insts:     ps.Insts,
			Locations: ps.Locations,
			Cores:     ps.Cores,
			Identical: ps.Identical,
		}
		for _, pt := range ps.Points {
			pj.Points = append(pj.Points, parallelPointJSON(pt))
		}
		report.Parallel = pj
	}

	if *planCch || *all {
		ran = true
		fmt.Println("== Plan-cache rematerialization (gcc profile, A2) ==")
		pc, err := eval.MeasurePlanCache(opt, prog)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%d locations, byte-identical: %v\n", pc.Locations, pc.Identical)
		fmt.Printf("  rewrite %8.3fs   plan %8.3fs   apply %8.3fs   (cache hit skips %.1fx)\n",
			pc.RewriteSec, pc.PlanSec, pc.ApplySec, pc.Speedup)
		fmt.Printf("  plan %d bytes vs output %d bytes (%.1f%% of the result)\n",
			pc.PlanBytes, pc.OutputBytes, 100*float64(pc.PlanBytes)/float64(pc.OutputBytes))
		if !pc.Identical {
			fail(fmt.Errorf("plan apply output diverged from direct rewrite"))
		}
		fmt.Println()
		report.PlanCache = &planCacheJSON{
			Profile:     pc.Profile,
			App:         pc.App,
			Locations:   pc.Locations,
			RewriteSec:  pc.RewriteSec,
			PlanSec:     pc.PlanSec,
			ApplySec:    pc.ApplySec,
			Speedup:     pc.Speedup,
			PlanBytes:   pc.PlanBytes,
			OutputBytes: pc.OutputBytes,
			Identical:   pc.Identical,
		}
	}

	if *mtchLng || *all {
		ran = true
		fmt.Println("== Match-language matcher cost (gcc profile) ==")
		ml, err := eval.MeasureMatchLang(opt, prog)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%d instructions disassembled from the %s static text\n", ml.Insts, ml.Profile)
		mj := &matchLangJSON{Profile: ml.Profile, Insts: ml.Insts}
		for _, r := range ml.Rows {
			if r.HardNs > 0 {
				fmt.Printf("  %-9s %-34q %7d matched   hardcoded %6.1f ns/inst   compiled %6.1f ns/inst   (%.2fx)\n",
					r.Name, r.Expr, r.Matched, r.HardNs, r.LangNs, r.Slowdown)
			} else {
				fmt.Printf("  %-9s %-34q %7d matched   compiled %6.1f ns/inst\n",
					r.Name, r.Expr, r.Matched, r.LangNs)
			}
			mj.Rows = append(mj.Rows, matchLangRowJSON(r))
		}
		fmt.Println()
		report.MatchLang = mj
	}

	if *strm || *all {
		ran = true
		fmt.Printf("== Zero-copy streaming vs buffered rewrite (%d MB workload, %d MB text, A1) ==\n", *strmMB, *strmTxt)
		sb, err := eval.MeasureStream(*strmMB, *strmTxt, prog)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%d input bytes, %d insts, %d locations, mmap: %v, byte-identical: %v\n",
			sb.InputBytes, sb.Insts, sb.Locations, sb.Mmapped, sb.Identical)
		fmt.Printf("  buffered: peak RSS %7.1f MB  %9d allocs  %7.2fs\n",
			float64(sb.BufferedPeakBytes)/1e6, sb.BufferedAllocs, sb.BufferedSec)
		fmt.Printf("  stream:   peak RSS %7.1f MB  %9d allocs  %7.2fs\n",
			float64(sb.StreamPeakBytes)/1e6, sb.StreamAllocs, sb.StreamSec)
		fmt.Printf("  saved %.1f MB of peak RSS (budget %.1f MB, under budget: %v)\n",
			float64(sb.BufferedPeakBytes-sb.StreamPeakBytes)/1e6, float64(sb.BudgetBytes)/1e6, sb.UnderBudget)
		if !sb.Identical {
			fail(fmt.Errorf("streamed output diverged from buffered rewrite"))
		}
		if !sb.UnderBudget {
			fail(fmt.Errorf("stream peak RSS %d bytes exceeds the %d-byte budget (buffered peak %d minus half the input)",
				sb.StreamPeakBytes, sb.BudgetBytes, sb.BufferedPeakBytes))
		}
		fmt.Println()
		report.Stream = &streamJSON{
			TargetMB:          sb.TargetMB,
			TextMB:            sb.TextMB,
			InputBytes:        sb.InputBytes,
			Insts:             sb.Insts,
			Locations:         sb.Locations,
			Mmapped:           sb.Mmapped,
			BufferedPeakBytes: sb.BufferedPeakBytes,
			StreamPeakBytes:   sb.StreamPeakBytes,
			BufferedAllocs:    sb.BufferedAllocs,
			StreamAllocs:      sb.StreamAllocs,
			BufferedSec:       sb.BufferedSec,
			StreamSec:         sb.StreamSec,
			BudgetBytes:       sb.BudgetBytes,
			UnderBudget:       sb.UnderBudget,
			Identical:         sb.Identical,
		}
	}

	if *disasmB || *all {
		ran = true
		fmt.Println("== Disassembly modes: recovery, pruning and rewrite throughput ==")
		db, err := eval.MeasureDisasm(opt, prog)
		if err != nil {
			fail(err)
		}
		eval.PrintDisasm(os.Stdout, db)
		fmt.Println()
		dj := &disasmJSON{Scale: db.Scale}
		for _, pb := range db.Profiles {
			pj := disasmProfileJSON{
				Profile: pb.Profile,
				CET:     pb.CET,
				DSO:     pb.DSO,
				TextKB:  pb.TextKB,
			}
			for _, r := range pb.Rows {
				pj.Rows = append(pj.Rows, disasmModeJSON(r))
			}
			dj.Profiles = append(dj.Profiles, pj)
		}
		report.Disasm = dj
	}

	if *clstr || *all {
		ran = true
		fmt.Printf("== Distributed e9served: peer plan-fetch and plan-delta egress (%d MB egress workload) ==\n", *clstrMB)
		cb, err := eval.MeasureCluster(opt, *clstrMB, 16, prog)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%d-node cluster, %s profile, %d locations, byte-identical: %v\n",
			cb.Nodes, cb.Profile, cb.Locations, cb.Identical)
		fmt.Printf("  replan %8.3fs   peer plan-fetch %8.3fs   (%.1fx cheaper)\n",
			cb.ReplanSec, cb.PeerFetchSec, cb.FetchSpeedup)
		fmt.Printf("  plan-delta egress %d bytes vs full binary %d bytes (%.2f%%, byte-identical after apply: %v)\n",
			cb.PlanEgressBytes, cb.FullEgressBytes, 100*cb.EgressRatio, cb.EgressIdentical)
		if !cb.Identical || !cb.EgressIdentical {
			fail(fmt.Errorf("cluster outputs diverged from the local rewrite"))
		}
		if cb.FetchSpeedup < 5 {
			fail(fmt.Errorf("peer plan-fetch speedup %.2fx is under the 5x acceptance floor", cb.FetchSpeedup))
		}
		if cb.EgressRatio > 0.10 {
			fail(fmt.Errorf("plan-delta egress is %.1f%% of the full binary, over the 10%% acceptance ceiling", 100*cb.EgressRatio))
		}
		fmt.Println()
		report.Cluster = &clusterJSON{
			Profile:         cb.Profile,
			Nodes:           cb.Nodes,
			Locations:       cb.Locations,
			ReplanSec:       cb.ReplanSec,
			PeerFetchSec:    cb.PeerFetchSec,
			FetchSpeedup:    cb.FetchSpeedup,
			Identical:       cb.Identical,
			EgressMB:        cb.EgressMB,
			EgressTextMB:    cb.EgressTextMB,
			FullEgressBytes: cb.FullEgressBytes,
			PlanEgressBytes: cb.PlanEgressBytes,
			EgressRatio:     cb.EgressRatio,
			EgressIdentical: cb.EgressIdentical,
		}
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}

	// Session throughput: every emulated run above contributes.
	if inst, dur := eval.EmuThroughput(); dur > 0 {
		fmt.Printf("emulation: %d instructions in %.2fs under engine=%s: %.2f Minst/s\n",
			inst, dur.Seconds(), *engine, float64(inst)/dur.Seconds()/1e6)
		report.Emulation = &emulationJSON{
			Instructions: inst,
			Seconds:      dur.Seconds(),
			InstPerSec:   float64(inst) / dur.Seconds(),
		}
	}

	if *jsonOut != "" {
		j, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonOut, append(j, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}
