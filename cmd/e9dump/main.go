// Command e9dump inspects an (original or rewritten) x86-64 ELF
// binary: sections, instruction-recovery statistics under any disasm
// mode (-disasm linear|superset|superset-cet, with -occupancy for the
// superset modes' per-byte coverage summary), patch-point counts, and —
// for rewritten binaries — the appended trampoline blob.
//
// With -spec it instead inspects a spec-language file (internal/lang):
// the typed AST of each match/exclude expression, the patch directive,
// and the compiled selector's operation count and shardability.
package main

import (
	"flag"
	"fmt"
	"os"

	"e9patch/internal/disasm"
	"e9patch/internal/elf64"
	"e9patch/internal/lang"
	"e9patch/internal/loader"
)

func main() {
	var (
		n       = flag.Int("n", 0, "disassemble and print the first N instructions")
		skip    = flag.Uint64("skip", 0, "skip the first N bytes of .text")
		disasmF = flag.String("disasm", "", "instruction recovery mode: linear (default) | superset | superset-cet")
		occup   = flag.Bool("occupancy", false, "print the per-byte occupancy summary (superset modes only)")
		spec    = flag.String("spec", "", "dump the typed AST and shardability of a spec file instead of a binary")
	)
	flag.Parse()
	if *spec != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: e9dump -spec FILE")
			os.Exit(2)
		}
		text, err := os.ReadFile(*spec)
		if err != nil {
			fatal(err)
		}
		sp, err := lang.ParseSpec(string(text))
		if err != nil {
			fatal(err)
		}
		fmt.Print(sp.Dump())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: e9dump [-n count] BINARY")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	f, err := elf64.Parse(data)
	if err != nil {
		fatal(err)
	}

	kind := "EXEC (fixed address)"
	if f.IsDSO() {
		kind = "DYN (shared object, no entry point)"
	} else if f.IsPIE() {
		kind = "DYN (position independent)"
	}
	fmt.Printf("type:    %s\n", kind)
	fmt.Printf("entry:   %#x\n", f.Header.Entry)
	lo, hi := f.LoadBounds()
	fmt.Printf("load:    [%#x, %#x) (%d bytes mapped)\n", lo, hi, hi-lo)
	for _, s := range f.Sections {
		if s.Name == "" {
			continue
		}
		fmt.Printf("section: %-12s addr=%#-12x size=%d\n", s.Name, s.Addr, s.Size)
	}

	text, addr, err := f.Text()
	if err != nil {
		fatal(err)
	}
	if *skip > uint64(len(text)) {
		fatal(fmt.Errorf("skip beyond .text"))
	}
	mode, err := disasm.ParseMode(*disasmF)
	if err != nil {
		fatal(err)
	}
	if *occup && mode == disasm.ModeLinear {
		fatal(fmt.Errorf("-occupancy needs a superset mode (-disasm superset or superset-cet)"))
	}

	var res disasm.Result
	fmt.Printf("\ndisasm mode:       %s\n", mode)
	if mode == disasm.ModeLinear {
		res = disasm.Linear(text[*skip:], addr+*skip)
	} else {
		sup := disasm.Superset(text[*skip:], addr+*skip)
		decoded, valid := sup.Count()
		var kept []bool
		if mode == disasm.ModeSupersetCET {
			var anchors int
			kept, anchors = sup.CETPrune()
			res.Insts = sup.KeptInsts(kept)
			fmt.Printf("superset:          %d decoded, %d valid, %d kept from %d anchors (%.1f%% pruned)\n",
				decoded, valid, len(res.Insts), anchors, pct(decoded-len(res.Insts), decoded))
		} else {
			res.Insts = sup.ValidInsts()
			fmt.Printf("superset:          %d decoded, %d valid (%.1f%% pruned)\n",
				decoded, valid, pct(decoded-valid, decoded))
		}
		res.BadBytes = sup.BadOffsets()
		if *occup {
			// Per-byte occupancy: how many kept instructions cover each
			// text byte. Zero-occupancy bytes are classified data or
			// padding; depth >1 marks overlapping candidates that the
			// patcher's locked-byte discipline arbitrates at patch time.
			occ := sup.Occupancy(kept)
			var zero, one, multi, depth int
			for _, c := range occ {
				switch {
				case c == 0:
					zero++
				case c == 1:
					one++
				default:
					multi++
				}
				if c > depth {
					depth = c
				}
			}
			fmt.Printf("occupancy:         %d bytes unclaimed (%.1f%%), %d singly covered, %d overlapping (max depth %d)\n",
				zero, pct(zero, len(occ)), one, multi, depth)
		}
	}
	jumps := disasm.SelectJumps(res.Insts)
	writes := disasm.SelectHeapWrites(res.Insts)
	fmt.Printf("instructions:      %d (%d undecodable bytes)\n", len(res.Insts), res.BadBytes)
	fmt.Printf("jumps (A1):        %d\n", len(jumps))
	fmt.Printf("heap writes (A2):  %d\n", len(writes))

	var hist [16]int
	for i := range res.Insts {
		hist[res.Insts[i].Len]++
	}
	fmt.Printf("length histogram: ")
	for l := 1; l <= 15; l++ {
		if hist[l] > 0 {
			fmt.Printf(" %d:%d", l, hist[l])
		}
	}
	fmt.Println()

	if blob, ok := elf64.AppendedBlob(data); ok {
		b, err := loader.Decode(blob)
		if err != nil {
			fatal(fmt.Errorf("appended blob: %w", err))
		}
		fmt.Printf("\nrewritten binary: appended blob %d bytes\n", len(blob))
		fmt.Printf("  granularity M:   %d pages (block %d bytes)\n", b.Granularity, b.BlockSize)
		fmt.Printf("  mappings:        %d\n", len(b.Mappings))
		fmt.Printf("  physical blocks: %d\n", len(b.Blocks))
		fmt.Printf("  sigtab entries:  %d (B0 int3 handlers)\n", len(b.SigTab))
	}

	for i := 0; i < *n && i < len(res.Insts); i++ {
		in := &res.Insts[i]
		fmt.Printf("%#10x: %-24x %s\n", in.Addr, in.Bytes, in.String())
	}
}

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "e9dump: %v\n", err)
	os.Exit(1)
}
