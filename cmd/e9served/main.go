// Command e9served serves binary rewrites over HTTP: a concurrent
// front to the e9patch library with a bounded worker pool,
// content-addressed result caching, singleflight coalescing and
// backpressure (see internal/server and DESIGN.md §7).
//
// Usage:
//
//	e9served                         # listen on 127.0.0.1:8233
//	e9served -addr :8233 -workers 8 -queue 128 -cache-mb 512
//
// API:
//
//	POST /v1/rewrite?match=EXPR[&action=ACT&...]   body = ELF bytes
//	    → 200 rewritten binary; X-E9-Stats (JSON), X-E9-Cache headers
//	    → 429 + Retry-After under overload; 504 past the time budget
//	POST /v2/rewrite                                body = JSON-RPC session
//	    line-delimited option* binary (patch|reserve)* emit stream
//	    (internal/rpc, DESIGN.md §12), chunked transfer welcome;
//	    → 200 rewritten binary; X-E9-Stats header; 400 broken streams
//	POST /v1/batch                                  body = NDJSON items
//	    {"id":..,"query":"match=..","binary":"<base64>","want":"binary|plan"}
//	    → 200 NDJSON results streamed in completion order
//	GET  /healthz                                   liveness/drain
//	GET  /metrics                                   Prometheus text
//
// Clustering (-self/-peers) consistent-hashes cache keys across a
// static peer list: the front door routes each rewrite to its key's
// owner, peers fetch PatchPlans from owners over
// GET /internal/v1/plan/{key} instead of re-planning, and a down peer
// degrades to local handling (DESIGN.md §15).
//
// Examples:
//
//	curl -s --data-binary @input.bin \
//	    'localhost:8233/v1/rewrite?match=jcc+%26+short&action=empty' \
//	    -o patched.bin -D -
//
//	{ printf '{"method":"binary","params":{"size":%s}}\n' "$(stat -c%s input.bin)"
//	  cat input.bin; echo
//	  echo '{"method":"patch","params":{"match":"jcc"}}'
//	  echo '{"method":"emit"}'
//	} | curl -s -X POST -H 'Transfer-Encoding: chunked' --data-binary @- \
//	    localhost:8233/v2/rewrite -o patched.bin
//
// SIGINT/SIGTERM starts a graceful drain: /healthz flips to 503, open
// requests get -drain time to finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"e9patch"
	"e9patch/internal/cluster"
	"e9patch/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8233", "listen address")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
		queue     = flag.Int("queue", 64, "bounded queue length (backpressure beyond this)")
		cacheMB   = flag.Int("cache-mb", 256, "result cache budget in MiB")
		planMB    = flag.Int("plan-cache-mb", 64, "plan cache budget in MiB (evicted results rematerialize from cached plans)")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-rewrite time budget (queue wait included)")
		maxBodyMB = flag.Int("max-body-mb", 64, "maximum request body in MiB")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown budget on SIGTERM")

		// Hostile-input hardening: per-rewrite resource limits (0
		// disables a bound). Violations answer 413/422/504 and are
		// counted per reason in e9served_rejected_total.
		maxTextMB    = flag.Int("max-text-mb", 0, "maximum .text section size in MiB (0: unlimited)")
		maxSites     = flag.Int("max-sites", 0, "maximum patch sites per rewrite (0: unlimited)")
		maxTrampMB   = flag.Int("max-tramp-mb", 0, "maximum emitted trampoline bytes in MiB (0: unlimited)")
		phaseTimeout = flag.Duration("phase-timeout", 0, "per-phase (disassembly, patching) deadline (0: unlimited)")

		// Clustering: a static peer list sharding the result/plan caches
		// by consistent hash. Both flags empty = single-node (default).
		self         = flag.String("self", "", "this node's advertised base URL, e.g. http://10.0.0.1:8233 (must appear in -peers; empty: single-node)")
		peersList    = flag.String("peers", "", "comma-separated base URLs of every cluster node, including -self")
		fetchTimeout = flag.Duration("peer-fetch-timeout", 2*time.Second, "peer plan-fetch timeout (a slow peer is a down peer)")
		peerCooldown = flag.Duration("peer-cooldown", time.Second, "how long a failed peer is skipped before being retried")
	)
	flag.Parse()

	var peers []string
	for _, p := range strings.Split(*peersList, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, strings.TrimRight(p, "/"))
		}
	}
	ccfg := cluster.Config{
		Self:         strings.TrimRight(*self, "/"),
		Peers:        peers,
		FetchTimeout: *fetchTimeout,
		Cooldown:     *peerCooldown,
	}
	if err := ccfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "e9served: %v\n", err)
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueLen:       *queue,
		CacheBytes:     int64(*cacheMB) << 20,
		PlanCacheBytes: int64(*planMB) << 20,
		Timeout:        *timeout,
		MaxBodyBytes:   int64(*maxBodyMB) << 20,
		Cluster:        ccfg,
		Limits: e9patch.Limits{
			MaxTextBytes:       int64(*maxTextMB) << 20,
			MaxPatchSites:      *maxSites,
			MaxTrampolineBytes: int64(*maxTrampMB) << 20,
			PhaseTimeout:       *phaseTimeout,
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "e9served: %v\n", err)
		os.Exit(1)
	}
	// The exact line the smoke test (and humans with -addr :0) parse.
	fmt.Printf("e9served listening on %s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		fmt.Println("e9served: draining")
		srv.BeginDrain()
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "e9served: shutdown: %v\n", err)
		}
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "e9served: %v\n", err)
		os.Exit(1)
	}
	<-done
	srv.Close()
	fmt.Println("e9served: bye")
}
