package main

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"e9patch"
	"e9patch/internal/workload"
)

// TestServedSmoke is the CI smoke test: build the real e9served
// binary, start it on an ephemeral port, POST a corpus binary, and
// verify the served output is byte-identical to a direct
// e9patch.Rewrite with the same configuration. SIGTERM must then drain
// cleanly.
func TestServedSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "e9served")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no listen line from e9served: %v", sc.Err())
	}
	line := sc.Text()
	const prefix = "e9served listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected first line %q", line)
	}
	base := "http://" + strings.TrimPrefix(line, prefix)
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	saved := workload.KernelIters
	workload.KernelIters = 1500
	defer func() { workload.KernelIters = saved }()
	prog, err := workload.BuildKernel("branchy", true)
	if err != nil {
		t.Fatal(err)
	}

	resp, err = http.Post(base+"/v1/rewrite?match=jcc+%26+short", "application/octet-stream",
		bytes.NewReader(prog.ELF))
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rewrite status %d: %s", resp.StatusCode, served)
	}

	sel, err := e9patch.SelectMatch("jcc & short")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := e9patch.Rewrite(prog.ELF, e9patch.Config{Select: sel})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, direct.Output) {
		t.Fatalf("served output (%d bytes) differs from direct rewrite (%d bytes)",
			len(served), len(direct.Output))
	}

	// Graceful drain on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("e9served exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("e9served did not exit within 15s of SIGTERM")
	}
}
