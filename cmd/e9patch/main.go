// Command e9patch statically rewrites an x86-64 ELF binary without
// control-flow recovery, inserting trampolines for every selected
// instruction via the B1/B2/T1/T2/T3 tactics.
//
// One-shot usage:
//
//	e9patch -app jumps -o patched.bin input.bin
//
// Applications: jumps (A1), heapwrites (A2), all (every instruction).
//
// Backend usage: with -backend, or with no input argument and stdin
// connected to a pipe, e9patch reads a line-delimited JSON-RPC message
// stream from stdin (option* binary (patch|reserve)* emit — see
// internal/rpc and DESIGN.md §12) and writes responses to stdout. This
// is the E9Patch frontend/backend split: a frontend such as e9tool
// -backend drives the rewrite over the pipe, and the backend performs
// no analysis of its own:
//
//	e9tool -backend e9patch -match 'jcc' -o out.bin input.bin
//	e9patch < session.rpc
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"e9patch"
	"e9patch/internal/patch"
	"e9patch/internal/rpc"
	"e9patch/internal/trampoline"
)

func main() {
	var (
		app     = flag.String("app", "jumps", "patch-point selector: jumps | heapwrites | all")
		out     = flag.String("o", "", "output file (required in one-shot mode)")
		gran    = flag.Int("M", 1, "physical page grouping granularity in pages (-1 disables grouping)")
		noT1    = flag.Bool("no-t1", false, "disable tactic T1 (padded jumps)")
		noT2    = flag.Bool("no-t2", false, "disable tactic T2 (successor eviction)")
		noT3    = flag.Bool("no-t3", false, "disable tactic T3 (neighbour eviction)")
		b0      = flag.Bool("b0-fallback", false, "fall back to int3/SIGTRAP when all tactics fail")
		skip    = flag.Uint64("skip", 0, "skip the first N bytes of .text (data-in-text workaround)")
		counter = flag.Uint64("counter", 0, "instead of empty instrumentation, increment the 8-byte counter at this address")
		backend = flag.Bool("backend", false, "backend mode: read a JSON-RPC message stream from stdin")
	)
	flag.Parse()

	base := e9patch.Config{
		Granularity: *gran,
		SkipPrefix:  *skip,
		Patch: patch.Options{
			DisableT1:  *noT1,
			DisableT2:  *noT2,
			DisableT3:  *noT3,
			B0Fallback: *b0,
		},
	}
	if *counter != 0 {
		base.Template = trampoline.Counter{Addr: *counter}
	}

	// Backend mode: explicit -backend, or no input argument with stdin
	// on a pipe/file (a frontend at the other end). A bare `e9patch` at
	// a terminal prints usage instead of waiting silently on stdin.
	if *backend || (flag.NArg() == 0 && stdinStreamed()) {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "e9patch: -backend takes no input argument (the stream's binary message names the input)")
			os.Exit(2)
		}
		if err := rpc.Serve(context.Background(), os.Stdin, os.Stdout, rpc.Options{
			AllowPath: true,
			Base:      base,
		}); err != nil {
			fatal(err)
		}
		return
	}

	if flag.NArg() != 1 || *out == "" {
		usage()
		os.Exit(2)
	}

	input, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	cfg := base
	switch *app {
	case "jumps":
		cfg.Select = e9patch.SelectJumps
	case "heapwrites":
		cfg.Select = e9patch.SelectHeapWrites
	case "all":
		cfg.Select = e9patch.SelectAll
	default:
		fatal(fmt.Errorf("unknown application %q", *app))
	}

	res, err := e9patch.Rewrite(input, cfg)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, res.Output, 0o755); err != nil {
		fatal(err)
	}

	s := res.Stats
	fmt.Printf("instructions:  %d (%d undecodable bytes skipped)\n", res.Insts, res.BadBytes)
	fmt.Printf("patch points:  %d\n", s.Total)
	fmt.Printf("  B1 (direct jump):        %6d (%.2f%%)\n", s.ByTactic[patch.TacticB1], s.Percent(s.ByTactic[patch.TacticB1]))
	fmt.Printf("  B2 (punned jump):        %6d (%.2f%%)\n", s.ByTactic[patch.TacticB2], s.Percent(s.ByTactic[patch.TacticB2]))
	fmt.Printf("  T1 (padded jump):        %6d (%.2f%%)\n", s.ByTactic[patch.TacticT1], s.Percent(s.ByTactic[patch.TacticT1]))
	fmt.Printf("  T2 (successor eviction): %6d (%.2f%%)\n", s.ByTactic[patch.TacticT2], s.Percent(s.ByTactic[patch.TacticT2]))
	fmt.Printf("  T3 (neighbour eviction): %6d (%.2f%%)\n", s.ByTactic[patch.TacticT3], s.Percent(s.ByTactic[patch.TacticT3]))
	if *b0 {
		fmt.Printf("  B0 (int3 fallback):      %6d (%.2f%%)\n", s.ByTactic[patch.TacticB0], s.Percent(s.ByTactic[patch.TacticB0]))
	}
	fmt.Printf("  failed:                  %6d (%.2f%%)\n", s.Failed, s.Percent(s.Failed))
	fmt.Printf("coverage:      %.2f%%\n", s.SuccPercent())
	fmt.Printf("trampolines:   %d (%d bytes payload)\n", res.Trampolines, res.Group.TrampolineBytes)
	fmt.Printf("phys blocks:   %d merged from %d virtual blocks (%d mappings)\n",
		res.Group.PhysBlocks, res.Group.VirtBlocks, res.Mappings)
	fmt.Printf("file size:     %d -> %d bytes (%.2f%%)\n", res.InputSize, res.OutputSize, res.SizePercent())
}

// stdinStreamed reports whether stdin is a pipe or regular file rather
// than an interactive terminal or the null device — the signal that a
// frontend is feeding a message stream.
func stdinStreamed() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice == 0
}

// usage explains both modes; it is what a bare `e9patch` prints instead
// of exiting silently or blocking on a terminal.
func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  one-shot:  e9patch -app jumps|heapwrites|all -o OUT INPUT
  backend:   e9patch -backend < MESSAGE-STREAM
             (or pipe a JSON-RPC stream to stdin with no INPUT argument)

The backend consumes line-delimited JSON-RPC messages:
  option* binary (patch|reserve)* emit
See DESIGN.md §12 for the message grammar.

Flags:`)
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "e9patch: %v\n", err)
	os.Exit(1)
}
