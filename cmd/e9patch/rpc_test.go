package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"e9patch"
	"e9patch/internal/patch"
	"e9patch/internal/trampoline"
	"e9patch/internal/workload"
)

// buildE9Patch compiles the real e9patch binary once per test binary.
func buildE9Patch(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "e9patch")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func testProg(t *testing.T) []byte {
	t.Helper()
	saved := workload.KernelIters
	workload.KernelIters = 1500
	defer func() { workload.KernelIters = saved }()
	prog, err := workload.BuildKernel("branchy", true)
	if err != nil {
		t.Fatal(err)
	}
	return prog.ELF
}

// TestRPCGolden is the rpccheck gate: each golden transcript under
// testdata/rpc/ is replayed against the built e9patch binary in backend
// mode, and the emitted file must hash-identical to the library-path
// rewrite with the equivalent configuration. This pins the wire
// protocol to the in-process API: a protocol change that shifts any
// output byte fails here.
func TestRPCGolden(t *testing.T) {
	bin := buildE9Patch(t)
	elf := testProg(t)

	// The library-equivalent configuration for every transcript; adding
	// a transcript without its twin here is an error.
	jccOrCall, err := e9patch.SelectMatch("jcc | call")
	if err != nil {
		t.Fatal(err)
	}
	equivalent := map[string]e9patch.Config{
		"a1_jumps.rpc": {Select: e9patch.SelectJumps},
		"a2_heapwrites_b0.rpc": {
			Select:      e9patch.SelectHeapWrites,
			Granularity: 2,
			Patch:       patch.Options{B0Fallback: true},
		},
		"match_union_reserve.rpc": {
			Select:    jccOrCall,
			Template:  trampoline.Counter{Addr: 0x404000},
			ReserveVA: [][2]uint64{{0x700000000000, 0x700000010000}},
		},
	}

	transcripts, err := filepath.Glob(filepath.Join("..", "..", "testdata", "rpc", "*.rpc"))
	if err != nil || len(transcripts) == 0 {
		t.Fatalf("no golden transcripts found: %v", err)
	}

	dir := t.TempDir()
	inPath := filepath.Join(dir, "input.bin")
	if err := os.WriteFile(inPath, elf, 0o755); err != nil {
		t.Fatal(err)
	}

	for _, path := range transcripts {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			cfg, ok := equivalent[name]
			if !ok {
				t.Fatalf("transcript %s has no library-equivalent config in this test", name)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			outPath := filepath.Join(dir, name+".out")
			session := strings.NewReplacer("@INPUT@", inPath, "@OUTPUT@", outPath).Replace(string(raw))

			cmd := exec.Command(bin)
			cmd.Stdin = strings.NewReader(session)
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("backend session failed: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
			}
			for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
				var resp struct {
					Error json.RawMessage `json:"error"`
				}
				if err := json.Unmarshal([]byte(line), &resp); err != nil {
					t.Fatalf("unparseable response line %q: %v", line, err)
				}
				if len(resp.Error) > 0 {
					t.Fatalf("error response in transcript: %s", line)
				}
			}

			got, err := os.ReadFile(outPath)
			if err != nil {
				t.Fatalf("backend wrote no output: %v", err)
			}
			want, err := e9patch.Rewrite(elf, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if sha256.Sum256(got) != sha256.Sum256(want.Output) {
				t.Fatalf("backend output (%d bytes) differs from library rewrite (%d bytes)",
					len(got), len(want.Output))
			}
		})
	}
}

// TestUsageOnTerminalStdin checks the no-silent-exit fix: with no
// arguments and stdin on the null device (a char device, like a
// terminal), e9patch must print usage and exit 2 rather than waiting on
// a stream that will never come.
func TestUsageOnTerminalStdin(t *testing.T) {
	bin := buildE9Patch(t)
	cmd := exec.Command(bin)
	devnull, err := os.Open(os.DevNull)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	cmd.Stdin = devnull
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err = cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("expected exit 2, got %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "usage:") || !strings.Contains(stderr.String(), "backend") {
		t.Fatalf("stderr does not explain both modes:\n%s", stderr.String())
	}
}

// TestBackendReportsStreamErrors checks the hostile-stream contract at
// the process level: a broken session ends with a JSON error object on
// stdout and a non-zero exit, never a hang or a panic.
func TestBackendReportsStreamErrors(t *testing.T) {
	bin := buildE9Patch(t)
	for name, stream := range map[string]string{
		"empty":        "",
		"patch-first":  `{"method":"patch","params":{"app":"jumps"},"id":1}` + "\n",
		"not-json":     "hello\n",
		"no-emit":      `{"method":"option","params":{"granularity":2},"id":1}` + "\n",
		"bad-filename": `{"method":"binary","params":{"filename":"/nonexistent/x"},"id":1}` + "\n",
	} {
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(bin)
			cmd.Stdin = strings.NewReader(stream)
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 1 {
				t.Fatalf("expected exit 1, got %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
			}
			if !strings.Contains(stdout.String(), `"error"`) {
				t.Fatalf("no wire error object on stdout: %s", stdout.String())
			}
		})
	}
}
