package e9patch

import (
	"encoding/binary"
	"errors"
	"testing"

	"e9patch/internal/disasm"
	"e9patch/internal/elf64"
	"e9patch/internal/lang"
	"e9patch/internal/patch"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// buildRecipe lowers a recipe's spec with its payload into a Config
// ready for Rewrite/Plan.
func buildRecipe(t *testing.T, rec workload.Recipe) Config {
	t.Helper()
	sp, err := lang.ParseSpec(rec.Spec)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := rec.BuildPayload()
	if err != nil {
		t.Fatal(err)
	}
	br, err := sp.Build(payload)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Select:    br.Select,
		Template:  br.Template,
		Inject:    br.Inject,
		ReserveVA: append(br.ReserveVA, workload.ReserveVA()...),
	}
	return cfg
}

// patchedAddrs collects the runtime addresses the rewrite actually
// patched (selected locations where some tactic succeeded).
func patchedAddrs(res *Result) map[uint64]bool {
	out := make(map[uint64]bool, len(res.Locations))
	for _, loc := range res.Locations {
		if loc.Tactic != patch.TacticNone {
			out[loc.Addr] = true
		}
	}
	return out
}

// readU64 reads a little-endian u64 from emulated memory.
func readU64(t *testing.T, m interface {
	ReadBytes(addr uint64, n int) ([]byte, bool)
}, addr uint64) uint64 {
	t.Helper()
	raw, ok := m.ReadBytes(addr, 8)
	if !ok {
		t.Fatalf("read %#x: unmapped", addr)
	}
	return binary.LittleEndian.Uint64(raw)
}

// TestSyscallTraceRecipe runs the shipped syscall_trace recipe end to
// end: rewrite the branchy kernel, execute it under the emulator, and
// assert the injected trace() function observably ran — the runtime
// output stream gains one call-site address per instrumented call, and
// the payload's in-memory invocation counter matches.
func TestSyscallTraceRecipe(t *testing.T) {
	rec, ok := workload.RecipeByName("syscall_trace")
	if !ok {
		t.Fatal("syscall_trace recipe missing")
	}
	for _, pie := range []bool{false, true} {
		name := "exec"
		if pie {
			name = "pie"
		}
		t.Run(name, func(t *testing.T) {
			prog, err := workload.BuildKernel("branchy", pie)
			if err != nil {
				t.Fatal(err)
			}
			cfg := buildRecipe(t, rec)
			res, err := Rewrite(prog.ELF, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Total == 0 {
				t.Fatal("no indirect calls selected")
			}
			if res.InjectedBytes == 0 {
				t.Fatal("no payload injected")
			}
			patched := patchedAddrs(res)
			if len(patched) == 0 {
				t.Fatal("no indirect call patched")
			}

			orig := runBinary(t, prog.ELF, nil)
			instr := runBinary(t, res.Output, nil)

			// Every output element is either a traced call-site address
			// or part of the program's own output stream, which must
			// survive unchanged.
			var sites, program []uint64
			for _, v := range instr.Output {
				if patched[v] {
					sites = append(sites, v)
				} else {
					program = append(program, v)
				}
			}
			if len(sites) == 0 {
				t.Fatal("trace() never reported a call site")
			}
			if len(program) != len(orig.Output) {
				t.Fatalf("program output %d values, want %d", len(program), len(orig.Output))
			}
			for i := range program {
				if program[i] != orig.Output[i] {
					t.Fatalf("program output[%d] = %#x, want %#x", i, program[i], orig.Output[i])
				}
			}
			if instr.ExitCode != orig.ExitCode {
				t.Fatalf("exit code %#x != %#x", instr.ExitCode, orig.ExitCode)
			}
			// branchy makes one runtime call per patched site, so full
			// coverage means every patched site reports exactly once.
			if len(sites) != len(patched) {
				t.Errorf("traced %d call sites, want %d (each patched site runs once)", len(sites), len(patched))
			}
			counter := readU64(t, instr.Mem, workload.TracePayloadCounterAddr())
			if counter != uint64(len(sites)) {
				t.Errorf("payload counter = %d, want %d", counter, len(sites))
			}
			// The counter lives in the injected .data page: its presence
			// proves the payload segments were mapped at their link
			// addresses even under PIE load bias.
			if orig.Mem != nil {
				if _, mapped := orig.Mem.ReadBytes(workload.TracePayloadCounterAddr(), 8); mapped {
					t.Error("payload address mapped in the uninstrumented run")
				}
			}
		})
	}
}

// TestBranchCoverageRecipe runs the shipped branch_coverage recipe:
// every executed conditional branch must set its bitmap slot, and the
// program's own behaviour must be untouched.
func TestBranchCoverageRecipe(t *testing.T) {
	rec, ok := workload.RecipeByName("branch_coverage")
	if !ok {
		t.Fatal("branch_coverage recipe missing")
	}
	prog, err := workload.BuildKernel("branchy", false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := buildRecipe(t, rec)
	res, err := Rewrite(prog.ELF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	patched := patchedAddrs(res)
	if len(patched) == 0 {
		t.Fatal("no conditional branch patched")
	}

	orig := runBinary(t, prog.ELF, nil)
	instr := runBinary(t, res.Output, nil)
	if len(instr.Output) != len(orig.Output) {
		t.Fatalf("output length %d != %d", len(instr.Output), len(orig.Output))
	}
	for i := range orig.Output {
		if instr.Output[i] != orig.Output[i] {
			t.Fatalf("output[%d] = %#x != %#x", i, instr.Output[i], orig.Output[i])
		}
	}
	if instr.ExitCode != orig.ExitCode {
		t.Fatalf("exit code %#x != %#x", instr.ExitCode, orig.ExitCode)
	}

	counter := readU64(t, instr.Mem, workload.CoverageCounterAddr())
	if counter == 0 {
		t.Fatal("coverage counter never bumped")
	}
	bitmap, okRead := instr.Mem.ReadBytes(workload.CoverageBitmapAddr(), int(workload.CoverageBitmapSize))
	if !okRead {
		t.Fatal("coverage bitmap unmapped")
	}
	slots := make(map[uint64]bool, len(patched))
	for addr := range patched {
		slots[addr&0xFFFF] = true
	}
	set := 0
	for idx, b := range bitmap {
		if b == 0 {
			continue
		}
		set++
		if !slots[uint64(idx)] {
			t.Errorf("bitmap[%#x] set but no patched branch maps there", idx)
		}
	}
	if set == 0 {
		t.Fatal("no bitmap slot set")
	}
}

// TestCallArgumentMarshalling drives every argument kind through one
// call patch: a probe payload forwards its six arguments (addr, size,
// target, next, asm, 42) to the output stream, and the test checks
// each group of six against the disassembly of the original binary —
// including reading the asm string back out of the injected table.
func TestCallArgumentMarshalling(t *testing.T) {
	savedIters := workload.KernelIters
	workload.KernelIters = 60
	defer func() { workload.KernelIters = savedIters }()

	prog, err := workload.BuildKernel("branchy", false)
	if err != nil {
		t.Fatal(err)
	}

	// probe(a0..a5): forward each argument to RTOutput in order.
	const payloadBase uint64 = 0x9_1000_0000
	a := x86.NewAsm(payloadBase + elf64.TextVaddrOff)
	a.MovRegImm64(x86.R11, workload.RTOutput)
	a.CallReg(x86.R11) // rdi = a0
	for _, src := range []x86.Reg{x86.RSI, x86.RDX, x86.RCX, x86.R8, x86.R9} {
		a.MovRegReg64(x86.RDI, src)
		a.CallReg(x86.R11)
	}
	a.Ret()
	text, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	payload, err := elf64.Build(elf64.BuildSpec{
		Base: payloadBase,
		Text: text,
		Symbols: []elf64.Sym{
			{Name: "probe", Addr: payloadBase + elf64.TextVaddrOff, Size: uint64(len(text))},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	sp, err := lang.FromParts("jcc & short", "call probe(addr, size, target, next, asm, 42)")
	if err != nil {
		t.Fatal(err)
	}
	br, err := sp.Build(payload)
	if err != nil {
		t.Fatal(err)
	}
	if br.FnName != "probe" || br.FnAddr != payloadBase+elf64.TextVaddrOff {
		t.Fatalf("resolved %s@%#x", br.FnName, br.FnAddr)
	}
	res, err := Rewrite(prog.ELF, Config{
		Select:    br.Select,
		Template:  br.Template,
		Inject:    br.Inject,
		ReserveVA: append(br.ReserveVA, workload.ReserveVA()...),
	})
	if err != nil {
		t.Fatal(err)
	}
	patched := patchedAddrs(res)
	if len(patched) == 0 {
		t.Fatal("no short jcc patched")
	}
	// The asm string table is a second injection next to the payload's
	// loadable segments.
	segBytes := 0
	for _, inj := range br.Inject {
		segBytes += len(inj.Data)
	}
	if res.InjectedBytes <= segBytes {
		t.Errorf("injected %d bytes; expected payload segments (%d) plus an asm string table",
			res.InjectedBytes, segBytes)
	}

	// Disassemble the original text to know each site's ground truth.
	f, err := elf64.Parse(prog.ELF)
	if err != nil {
		t.Fatal(err)
	}
	tx, taddr, err := f.Text()
	if err != nil {
		t.Fatal(err)
	}
	byAddr := make(map[uint64]*x86.Inst)
	insts := disasm.Linear(tx, taddr).Insts
	for i := range insts {
		byAddr[insts[i].Addr] = &insts[i]
	}

	orig := runBinary(t, prog.ELF, nil)
	instr := runBinary(t, res.Output, nil)
	if instr.ExitCode != orig.ExitCode {
		t.Fatalf("exit code %#x != %#x", instr.ExitCode, orig.ExitCode)
	}
	probes := len(instr.Output) - len(orig.Output)
	if probes <= 0 || probes%6 != 0 {
		t.Fatalf("probe emitted %d extra values, want a positive multiple of 6", probes)
	}
	for g := 0; g+6 <= probes; g += 6 {
		grp := instr.Output[g : g+6]
		in := byAddr[grp[0]]
		if in == nil || !patched[grp[0]] {
			t.Fatalf("group %d: addr %#x is not a patched instruction", g/6, grp[0])
		}
		if grp[1] != uint64(in.Len) {
			t.Errorf("site %#x: size = %d, want %d", in.Addr, grp[1], in.Len)
		}
		if want := in.Target(); grp[2] != want {
			t.Errorf("site %#x: target = %#x, want %#x", in.Addr, grp[2], want)
		}
		if want := in.Addr + uint64(in.Len); grp[3] != want {
			t.Errorf("site %#x: next = %#x, want %#x", in.Addr, grp[3], want)
		}
		want := in.String()
		raw, _ := instr.Mem.ReadBytes(grp[4], len(want)+1)
		if string(raw[:len(want)]) != want || raw[len(want)] != 0 {
			t.Errorf("site %#x: asm string at %#x = %q, want %q\\0", in.Addr, grp[4], raw, want)
		}
		if grp[5] != 42 {
			t.Errorf("site %#x: static arg = %d, want 42", in.Addr, grp[5])
		}
	}
	// The program's own output rides after the probes' values.
	tail := instr.Output[probes:]
	for i := range orig.Output {
		if tail[i] != orig.Output[i] {
			t.Fatalf("program output[%d] = %#x, want %#x", i, tail[i], orig.Output[i])
		}
	}
}

// TestApplyRejectsHostileInjections treats the plan as untrusted: a
// tampered injection list must fail Apply's revalidation with
// ErrMalformedBinary, never corrupt the output.
func TestApplyRejectsHostileInjections(t *testing.T) {
	rec, _ := workload.RecipeByName("syscall_trace")
	prog, err := workload.BuildKernel("branchy", false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := buildRecipe(t, rec)
	ref, err := Plan(prog.ELF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := ref.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Injections) == 0 {
		t.Fatal("recipe plan has no injections")
	}
	fresh := func() *PatchPlan {
		p, err := DecodePlan(enc)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	tampers := map[string]func(p *PatchPlan){
		"empty-data":    func(p *PatchPlan) { p.Injections[0].Data = nil },
		"address-wrap":  func(p *PatchPlan) { p.Injections[0].Addr = ^uint64(0) - 4 },
		"segment-clash": func(p *PatchPlan) { p.Injections[0].Addr = 0x400000 },
		"self-overlap": func(p *PatchPlan) {
			p.Injections = append(p.Injections, p.Injections[0])
		},
	}
	for name, tamper := range tampers {
		t.Run(name, func(t *testing.T) {
			p := fresh()
			tamper(p)
			_, err := Apply(prog.ELF, p)
			if err == nil {
				t.Fatal("tampered plan applied cleanly")
			}
			if !errors.Is(err, ErrMalformedBinary) {
				t.Fatalf("want ErrMalformedBinary, got %v", err)
			}
		})
	}

	// The untampered plan still applies.
	if _, err := Apply(prog.ELF, fresh()); err != nil {
		t.Fatalf("pristine plan: %v", err)
	}
}
