package e9patch

import (
	"context"
	"errors"
	"strings"
	"testing"

	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// TestRewriteContextBackground pins that RewriteContext with a live
// context is byte-identical to plain Rewrite.
func TestRewriteContextBackground(t *testing.T) {
	prog, err := workload.BuildKernel("branchy", true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Select: SelectJumps, ReserveVA: workload.ReserveVA()}
	plain, err := Rewrite(prog.ELF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := RewriteContext(context.Background(), prog.ELF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain.Output) != string(ctxed.Output) {
		t.Fatal("RewriteContext(Background) diverged from Rewrite")
	}
}

// TestRewriteContextCancelled verifies that a context cancelled during
// the match phase aborts the pipeline before emit: no Result comes
// back, and the error wraps context.Canceled.
func TestRewriteContextCancelled(t *testing.T) {
	prog, err := workload.BuildKernel("branchy", true)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sel := func(insts []x86.Inst) []int {
		cancel() // cancel mid-pipeline, after disasm but before patch
		return SelectJumps(insts)
	}
	res, err := RewriteContext(ctx, prog.ELF, Config{Select: sel})
	if err == nil {
		t.Fatal("expected cancellation error, got success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if res != nil {
		t.Fatal("cancelled rewrite returned a partial Result")
	}
}

// TestRewriteContextPreCancelled verifies the cheap early-out: an
// already-cancelled context never reaches the parser.
func TestRewriteContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sel := func(insts []x86.Inst) []int {
		t.Fatal("selector ran under a pre-cancelled context")
		return nil
	}
	if _, err := RewriteContext(ctx, []byte("not an elf"), Config{Select: sel}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestSelectAddressesPIEWarning covers the file-relative address trap:
// SelectAddresses with un-biased addresses on a PIE binary selects
// nothing, and Result.Warnings says why.
func TestSelectAddressesPIEWarning(t *testing.T) {
	prog, err := workload.BuildKernel("branchy", true)
	if err != nil {
		t.Fatal(err)
	}
	// Find a real patchable location (runtime coordinates).
	probe, err := Rewrite(prog.ELF, Config{Select: SelectJumps})
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.Locations) == 0 {
		t.Fatal("probe rewrite selected nothing")
	}
	runtimeAddr := probe.Locations[0].Addr
	if runtimeAddr < PIEBase {
		t.Fatalf("probe location %#x not in runtime coordinates", runtimeAddr)
	}
	fileAddr := runtimeAddr - PIEBase

	// File-relative address on a PIE binary: nothing selected, warning.
	res, err := Rewrite(prog.ELF, Config{Select: SelectAddresses(fileAddr)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total != 0 {
		t.Fatalf("file-relative address unexpectedly selected %d locations", res.Stats.Total)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "file-relative") {
		t.Fatalf("want file-relative warning, got %q", res.Warnings)
	}

	// Runtime address: selected, no warning.
	res, err = Rewrite(prog.ELF, Config{Select: SelectAddresses(runtimeAddr)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total != 1 {
		t.Fatalf("runtime address selected %d locations, want 1", res.Stats.Total)
	}
	if len(res.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %q", res.Warnings)
	}

	// Non-PIE binary with a genuinely absent address: no warning.
	exe, err := workload.BuildKernel("branchy", false)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Rewrite(exe.ELF, Config{Select: SelectAddresses(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total != 0 || len(res.Warnings) != 0 {
		t.Fatalf("non-PIE: total %d warnings %q", res.Stats.Total, res.Warnings)
	}
}
