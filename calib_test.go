package e9patch

import (
	"testing"

	"e9patch/internal/emu"
	"e9patch/internal/lowfat"
	"e9patch/internal/workload"
)

// TestCalibrationReport is a diagnostic: it prints per-kernel overhead
// ratios for A1, A2 and A2+LowFat under the default cost model.
// Run with: go test -run TestCalibrationReport -v
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report")
	}
	for _, arch := range []string{"branchy", "memstream", "matrix", "pointer", "callheavy"} {
		prog, err := workload.BuildKernel(arch, false)
		if err != nil {
			t.Fatal(err)
		}
		orig := runBinary(t, prog.ELF, nil)

		resA1, err := Rewrite(prog.ELF, Config{Select: SelectJumps, ReserveVA: workload.ReserveVA()})
		if err != nil {
			t.Fatal(err)
		}
		a1 := runBinary(t, resA1.Output, nil)

		resA2, err := Rewrite(prog.ELF, Config{Select: SelectHeapWrites, ReserveVA: workload.ReserveVA()})
		if err != nil {
			t.Fatal(err)
		}
		a2 := runBinary(t, resA2.Output, nil)

		lfCfg := Config{
			Select:    SelectHeapWrites,
			Template:  lowfat.CheckTemplate{},
			ReserveVA: append(workload.ReserveVA(), lowfat.ReserveVA()...),
		}
		resLF, err := Rewrite(prog.ELF, lfCfg)
		if err != nil {
			t.Fatal(err)
		}
		lf := runBinary(t, resLF.Output, func(m *emu.Machine) {
			lowfat.Install(m, workload.RTMalloc, workload.RTFree)
		})

		r := func(c uint64) float64 { return 100 * float64(c) / float64(orig.Counters.Cycles) }
		t.Logf("%-10s orig=%8d cycles | A1 %6.1f%% | A2 %6.1f%% | LowFat %6.1f%%",
			arch, orig.Counters.Cycles, r(a1.Counters.Cycles), r(a2.Counters.Cycles), r(lf.Counters.Cycles))
	}
}
