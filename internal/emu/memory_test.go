package emu

import (
	"bytes"
	"testing"
)

// TestMemoryCrossPageReadWrite exercises ReadBytes/WriteBytes spans
// that straddle page boundaries, the paths the translation cache's
// fetcher and the loader depend on.
func TestMemoryCrossPageReadWrite(t *testing.T) {
	mem := NewMemory()
	// A 3-page span written in one call, starting mid-page.
	base := uint64(5*PageSize - 100)
	data := make([]byte, 2*PageSize+200)
	for i := range data {
		data[i] = byte(i * 7)
	}
	mem.WriteBytes(base, data)

	got, ok := mem.ReadBytes(base, len(data))
	if !ok {
		t.Fatal("ReadBytes reported unmapped bytes inside a written span")
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip corrupted data")
	}

	// Reads that spill past the mapped region zero-fill and clear ok.
	end := base + uint64(len(data))
	if !mem.Mapped(end - 1) {
		t.Fatal("final written byte not mapped")
	}
	got, ok = mem.ReadBytes(end-4, PageSize)
	if ok {
		t.Error("ReadBytes into unmapped tail should report ok=false")
	}
	if !bytes.Equal(got[:4], data[len(data)-4:]) {
		t.Error("mapped prefix of a partially-mapped read corrupted")
	}
	for i, b := range got[4:] {
		if b != 0 {
			t.Fatalf("unmapped byte %d read as %#x, want 0", i, b)
		}
	}
}

// TestMemoryScalarCrossPage covers the scalar read/write paths (used by
// instruction operands) across a page boundary.
func TestMemoryScalarCrossPage(t *testing.T) {
	mem := NewMemory()
	addr := uint64(8*PageSize - 3) // 8-byte value spanning two pages
	mem.Map(addr, 8)
	const v = 0x1122334455667788
	if err := mem.write(addr, v, 8); err != nil {
		t.Fatal(err)
	}
	got, err := mem.read(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("cross-page scalar read = %#x, want %#x", got, v)
	}

	// A scalar read touching an unmapped page faults rather than
	// zero-filling: data accesses are strict, only fetches are lenient.
	if _, err := mem.read(20*PageSize-2, 4); err == nil {
		t.Error("scalar read across unmapped page should fault")
	}
}

// TestWriteBarrier checks the invalidation hook fires for every store
// path with the exact address/size written, and that Map (which only
// creates zero pages) never fires it.
func TestWriteBarrier(t *testing.T) {
	mem := NewMemory()
	type ev struct{ addr, size uint64 }
	var events []ev
	mem.SetWriteBarrier(func(addr, size uint64) {
		events = append(events, ev{addr, size})
	})

	mem.Map(0x1000, 4*PageSize)
	if len(events) != 0 {
		t.Fatalf("Map fired the barrier: %v", events)
	}

	mem.WriteBytes(0x1ffe, []byte{1, 2, 3, 4}) // cross-page bulk store
	mem.WriteBytes(0x3000, nil)                // empty store: no event
	if err := mem.write(0x2ffc, 0xAABBCCDD, 4); err != nil {
		t.Fatal(err)
	}
	want := []ev{{0x1ffe, 4}, {0x2ffc, 4}}
	if len(events) != len(want) {
		t.Fatalf("barrier events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("barrier event %d = %v, want %v", i, events[i], want[i])
		}
	}

	// Removing the barrier stops the callbacks.
	mem.SetWriteBarrier(nil)
	mem.WriteBytes(0x1000, []byte{9})
	if len(events) != len(want) {
		t.Error("barrier fired after removal")
	}
}

// TestBarrierRunsBeforeStore pins the ordering contract: the barrier
// observes memory in its pre-store state, which is what lets a
// translation cache invalidate blocks decoded from the old bytes
// before they change.
func TestBarrierRunsBeforeStore(t *testing.T) {
	mem := NewMemory()
	mem.WriteBytes(0x1000, []byte{0x11})
	var seen byte
	mem.SetWriteBarrier(func(addr, size uint64) {
		b, _ := mem.ReadBytes(0x1000, 1)
		seen = b[0]
	})
	mem.WriteBytes(0x1000, []byte{0x22})
	if seen != 0x11 {
		t.Fatalf("barrier saw %#x, want pre-store value 0x11", seen)
	}
	b, _ := mem.ReadBytes(0x1000, 1)
	if b[0] != 0x22 {
		t.Fatalf("store lost: memory = %#x", b[0])
	}
}
