package emu

import (
	"math/rand"
	"testing"

	"e9patch/internal/x86"
)

const (
	testBase = 0x401000
	stackTop = 0x7ff000
	heapBase = 0x2000000
	rtOutput = 0x9000000
	rtMalloc = 0x9000100
	rtExit   = 0x9000200
)

// runProgram assembles, loads and runs a program to completion.
func runProgram(t *testing.T, build func(a *x86.Asm)) *Machine {
	t.Helper()
	m := newProgram(t, build)
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !m.Halted() {
		t.Fatal("machine did not halt")
	}
	return m
}

func newProgram(t *testing.T, build func(a *x86.Asm)) *Machine {
	t.Helper()
	a := x86.NewAsm(testBase)
	build(a)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	m.Mem.WriteBytes(testBase, code)
	m.SetupStack(stackTop, 0x10000)
	BindOutput(m, rtOutput)
	BindExit(m, rtExit)
	BindMalloc(m, rtMalloc, NewBumpAllocator(heapBase, 0x100000))
	m.RIP = testBase
	return m
}

// callRT emits a runtime call through a scratch register.
func callRT(a *x86.Asm, addr uint64) {
	a.MovRegImm64(x86.R11, addr)
	a.CallReg(x86.R11)
}

func TestLoopSum(t *testing.T) {
	// sum = 0; for i = 0..9 { sum += i*i }; output sum; ret.
	m := runProgram(t, func(a *x86.Asm) {
		a.XorRegReg32(x86.RAX, x86.RAX) // sum
		a.XorRegReg32(x86.RCX, x86.RCX) // i
		top := a.NewLabel()
		a.Bind(top)
		a.MovRegReg64(x86.RDX, x86.RCX)
		a.ImulRegReg64(x86.RDX, x86.RCX)
		a.AddRegReg64(x86.RAX, x86.RDX)
		a.AddRegImm64(x86.RCX, 1)
		a.CmpRegImm64(x86.RCX, 10)
		a.JccShort(x86.CondL, top)
		a.MovRegReg64(x86.RDI, x86.RAX)
		callRT(a, rtOutput)
		a.Ret()
	})
	if len(m.Output) != 1 || m.Output[0] != 285 {
		t.Errorf("output = %v, want [285]", m.Output)
	}
	if m.ExitCode != 285 {
		t.Errorf("exit code = %d", m.ExitCode)
	}
}

func TestMemoryAndSIB(t *testing.T) {
	m := runProgram(t, func(a *x86.Asm) {
		a.MovRegImm64(x86.RBX, heapBase)
		// Store 8 values via SIB addressing, then sum them back.
		for i := 0; i < 8; i++ {
			a.MovRegImm32(x86.RAX, uint32(i*7))
			a.MovRegImm32(x86.RCX, uint32(i))
			a.MovMemReg64(x86.MIdx(x86.RBX, x86.RCX, 8, 0), x86.RAX)
		}
		a.XorRegReg32(x86.RDI, x86.RDI)
		for i := 0; i < 8; i++ {
			a.AddRegMem64(x86.RDI, x86.M(x86.RBX, int32(i*8)))
		}
		callRT(a, rtOutput)
		a.Ret()
	})
	// Pages must be mapped on demand by the stores.
	if m.Output[0] != 7*(0+1+2+3+4+5+6+7) {
		t.Errorf("output = %v", m.Output)
	}
}

func TestCallRet(t *testing.T) {
	m := runProgram(t, func(a *x86.Asm) {
		fn := a.NewLabel()
		done := a.NewLabel()
		a.MovRegImm32(x86.RDI, 20)
		a.Call(fn)
		a.MovRegReg64(x86.RDI, x86.RAX)
		callRT(a, rtOutput)
		a.Jmp(done)
		// fn: return rdi*2+1
		a.Bind(fn)
		a.Lea(x86.RAX, x86.MIdx(x86.RDI, x86.RDI, 1, 1))
		a.Ret()
		a.Bind(done)
		a.Ret()
	})
	if m.Output[0] != 41 {
		t.Errorf("output = %v, want [41]", m.Output)
	}
}

func TestPushPopFlags(t *testing.T) {
	m := runProgram(t, func(a *x86.Asm) {
		a.MovRegImm32(x86.RAX, 5)
		a.CmpRegImm64(x86.RAX, 5) // ZF=1
		a.Pushfq()
		a.AddRegImm64(x86.RAX, 1) // clobbers ZF
		a.Popfq()
		skip := a.NewLabel()
		a.MovRegImm32(x86.RDI, 0)
		a.JccShort(x86.CondNE, skip)
		a.MovRegImm32(x86.RDI, 1) // taken path: ZF restored
		a.Bind(skip)
		callRT(a, rtOutput)
		a.Ret()
	})
	if m.Output[0] != 1 {
		t.Errorf("flags not preserved across pushfq/popfq: %v", m.Output)
	}
}

func TestMallocRuntime(t *testing.T) {
	m := runProgram(t, func(a *x86.Asm) {
		a.MovRegImm32(x86.RDI, 64)
		callRT(a, rtMalloc)
		a.MovMemImm32(x86.M(x86.RAX, 0), 0xBEEF)
		a.MovRegMem32(x86.RDI, x86.M(x86.RAX, 0))
		callRT(a, rtOutput)
		a.Ret()
	})
	if m.Output[0] != 0xBEEF {
		t.Errorf("output = %#x", m.Output)
	}
	if m.Counters.RuntimeCalls != 2 {
		t.Errorf("runtime calls = %d", m.Counters.RuntimeCalls)
	}
}

func TestInt3Dispatch(t *testing.T) {
	// int3 at testBase dispatches through SigTab to a trampoline that
	// performs the displaced work and jumps back.
	a := x86.NewAsm(testBase)
	a.Int3()                      // replaces "mov rdi, 77" (10 bytes... use 5)
	a.Raw(0x90, 0x90, 0x90, 0x90) // filler for displaced 5-byte inst
	resume := a.Addr()
	_ = resume
	callRT(a, rtOutput)
	a.Ret()
	code := a.MustFinish()

	// Trampoline at a far address: mov edi, 77; jmp back.
	tr := x86.NewAsm(0x8000000)
	tr.MovRegImm32(x86.RDI, 77)
	tr.JmpRel32(testBase + 5)
	trCode := tr.MustFinish()

	m := NewMachine()
	m.Mem.WriteBytes(testBase, code)
	m.Mem.WriteBytes(0x8000000, trCode)
	m.SetupStack(stackTop, 0x10000)
	BindOutput(m, rtOutput)
	m.SigTab[testBase] = 0x8000000
	m.RIP = testBase
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(m.Output) != 1 || m.Output[0] != 77 {
		t.Fatalf("output = %v", m.Output)
	}
	if m.Counters.Signals != 1 {
		t.Errorf("signals = %d", m.Counters.Signals)
	}
	if m.Counters.Cycles < m.Cost.Signal {
		t.Error("signal cost not charged")
	}
}

func TestUnexpectedInt3(t *testing.T) {
	m := newProgram(t, func(a *x86.Asm) { a.Int3() })
	if err := m.Run(10); err == nil {
		t.Fatal("expected error for unhandled int3")
	}
}

func TestUd2(t *testing.T) {
	m := newProgram(t, func(a *x86.Asm) { a.Ud2() })
	err := m.Run(10)
	if err == nil {
		t.Fatal("ud2 must fault")
	}
}

func TestReadFault(t *testing.T) {
	m := newProgram(t, func(a *x86.Asm) {
		a.MovRegImm64(x86.RBX, 0xdead0000)
		a.MovRegMem64(x86.RAX, x86.M(x86.RBX, 0))
		a.Ret()
	})
	if err := m.Run(10); err == nil {
		t.Fatal("expected read fault")
	}
}

func TestShiftAndMovzx(t *testing.T) {
	m := runProgram(t, func(a *x86.Asm) {
		a.MovRegImm64(x86.RAX, 0x1234_5678_9ABC_DEF0)
		a.ShrRegImm64(x86.RAX, 32)
		a.ShlRegImm64(x86.RAX, 4)
		a.MovRegImm64(x86.RBX, heapBase)
		a.MovMemReg64(x86.M(x86.RBX, 0), x86.RAX)
		a.MovZXRegMem8(x86.RDI, x86.M(x86.RBX, 0))
		callRT(a, rtOutput)
		a.Ret()
	})
	// 0x12345678 << 4 = 0x123456780; low byte = 0x80.
	if m.Output[0] != 0x80 {
		t.Errorf("output = %#x", m.Output[0])
	}
}

func TestConditionMatrix(t *testing.T) {
	// For random pairs, every signed/unsigned comparison condition
	// must agree with Go's comparisons.
	rng := rand.New(rand.NewSource(3))
	conds := []struct {
		cc   x86.Cond
		want func(a, b int64) bool
	}{
		{x86.CondE, func(a, b int64) bool { return a == b }},
		{x86.CondNE, func(a, b int64) bool { return a != b }},
		{x86.CondL, func(a, b int64) bool { return a < b }},
		{x86.CondGE, func(a, b int64) bool { return a >= b }},
		{x86.CondLE, func(a, b int64) bool { return a <= b }},
		{x86.CondG, func(a, b int64) bool { return a > b }},
		{x86.CondB, func(a, b int64) bool { return uint64(a) < uint64(b) }},
		{x86.CondAE, func(a, b int64) bool { return uint64(a) >= uint64(b) }},
		{x86.CondBE, func(a, b int64) bool { return uint64(a) <= uint64(b) }},
		{x86.CondA, func(a, b int64) bool { return uint64(a) > uint64(b) }},
	}
	for trial := 0; trial < 200; trial++ {
		var av, bv int64
		switch trial % 3 {
		case 0:
			av, bv = int64(rng.Uint64()), int64(rng.Uint64())
		case 1:
			av, bv = int64(rng.Intn(100)-50), int64(rng.Intn(100)-50)
		case 2:
			av = int64(rng.Uint64())
			bv = av
		}
		for _, c := range conds {
			cc := c.cc
			m := runProgram(t, func(a *x86.Asm) {
				a.MovRegImm64(x86.RAX, uint64(av))
				a.MovRegImm64(x86.RBX, uint64(bv))
				a.CmpRegReg64(x86.RAX, x86.RBX)
				yes := a.NewLabel()
				a.JccShort(cc, yes)
				a.MovRegImm32(x86.RDI, 0)
				callRT(a, rtOutput)
				a.Ret()
				a.Bind(yes)
				a.MovRegImm32(x86.RDI, 1)
				callRT(a, rtOutput)
				a.Ret()
			})
			want := uint64(0)
			if c.want(av, bv) {
				want = 1
			}
			if m.Output[0] != want {
				t.Fatalf("cond %v with a=%d b=%d: got %d want %d", cc, av, bv, m.Output[0], want)
			}
		}
	}
}

func TestFarJumpCost(t *testing.T) {
	// A jump across more than FarDistance must charge the far cost.
	m := newProgram(t, func(a *x86.Asm) {
		a.JmpRel32(testBase + 0x4000000)
	})
	m.Mem.WriteBytes(testBase+0x4000000, []byte{0xC3}) // ret -> exit
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	// One for the jump itself, one for the final ret to the (distant)
	// exit sentinel.
	if m.Counters.FarJumps != 2 {
		t.Errorf("far jumps = %d", m.Counters.FarJumps)
	}
}

func TestIndirectJumpTable(t *testing.T) {
	// A switch-style indirect jump through a table in memory, with the
	// target code assembled at a separate address.
	const fnAddr = testBase + 0x2000
	a := x86.NewAsm(testBase)
	a.MovRegImm64(x86.RBX, heapBase)
	a.MovRegImm64(x86.RAX, fnAddr)
	a.MovMemReg64(x86.M(x86.RBX, 8), x86.RAX) // table[1] = fn
	a.MovRegImm32(x86.RCX, 1)                 // selector
	a.JmpMem(x86.MIdx(x86.RBX, x86.RCX, 8, 0))
	main := a.MustFinish()

	f := x86.NewAsm(fnAddr)
	f.MovRegImm32(x86.RDI, 42)
	callRT(f, rtOutput)
	f.Ret()
	fn := f.MustFinish()

	m := NewMachine()
	m.Mem.WriteBytes(testBase, main)
	m.Mem.WriteBytes(fnAddr, fn)
	m.Mem.Map(heapBase, 0x1000)
	m.SetupStack(stackTop, 0x10000)
	BindOutput(m, rtOutput)
	m.RIP = testBase
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(m.Output) != 1 || m.Output[0] != 42 {
		t.Errorf("output = %v", m.Output)
	}
}

func TestGroup5IndirectCall(t *testing.T) {
	m := runProgram(t, func(a *x86.Asm) {
		fn := a.NewLabel()
		a.MovRegImm64(x86.RAX, 0) // placeholder
		// Load fn's absolute address: emit movabs then patch via label
		// is unsupported; call through a register loaded with a
		// PC-computed value instead: use Call(label) for the check and
		// CallReg for the indirect path with a runtime-stored address.
		a.Call(fn)
		a.MovRegReg64(x86.RDI, x86.RAX)
		callRT(a, rtOutput)
		a.Ret()
		a.Bind(fn)
		a.MovRegImm32(x86.RAX, 1234)
		a.Ret()
	})
	if m.Output[0] != 1234 {
		t.Errorf("output = %v", m.Output)
	}
}

func TestStringOfALU(t *testing.T) {
	m := runProgram(t, func(a *x86.Asm) {
		a.MovRegImm64(x86.RAX, 1000)
		a.SubRegImm64(x86.RAX, 1)     // 999
		a.AndRegImm64(x86.RAX, 0xFF0) // 0x3e0
		a.OrRegImm64(x86.RAX, 1)      // 0x3e1
		a.XorRegImm64(x86.RAX, 0xF)   // 0x3ee
		a.NotReg64(x86.RAX)
		a.NegReg64(x86.RAX)
		a.MovRegReg64(x86.RDI, x86.RAX)
		callRT(a, rtOutput)
		a.Ret()
	})
	want := uint64(0x3ee + 1) // -(^x) = x+1
	if m.Output[0] != want {
		t.Errorf("output = %#x, want %#x", m.Output[0], want)
	}
}
