package tbc

import (
	"fmt"

	"e9patch/internal/emu"
	"e9patch/internal/x86"
)

// This file is the block-discovery and invalidation seam shared by the
// translation-cache engines: tbc itself and the IR-lifting engine
// (internal/emu/ir) reuse exactly this code, so "what is a block" and
// "when do cached decodes die" have a single definition (DESIGN.md §6,
// §13).

// DecodeBlock decodes the straight-line run starting at pc: up to
// MaxBlockInsts instructions, ending after the first control transfer
// (jump, conditional jump, call, ret, hlt, int3). A decode failure at
// pc itself is returned, formatted exactly as the interpreter's fetch
// would report it; a failure later in the run just ends the block
// early, so the error — if execution ever falls through to it — is
// raised lazily at the address the interpreter would raise it. end is
// the address one past the final decoded instruction.
func DecodeBlock(m *emu.Machine, pc uint64) (insts []x86.Inst, end uint64, err error) {
	for {
		raw, _ := m.Mem.ReadBytes(pc, 15)
		inst, derr := x86.Decode(raw, pc)
		if derr != nil {
			if len(insts) == 0 {
				return nil, 0, fmt.Errorf("emu: at %#x: %w", pc, derr)
			}
			break
		}
		insts = append(insts, inst)
		pc += uint64(inst.Len)
		if inst.Attrs&TermAttrs != 0 || len(insts) >= MaxBlockInsts {
			break
		}
	}
	return insts, pc, nil
}

// CodeTracker records which pages hold translated code and turns the
// Memory write barrier into a flush signal. Engines register it as the
// barrier (Invalidate), note each translated block's byte range
// (Track), and observe stores into translated code via Flushed — which
// they check mid-block to abort in-flight execution, exactly where the
// interpreter's per-step fetch would observe the new bytes.
type CodeTracker struct {
	pages map[uint64]struct{}

	// Flushed is set by Invalidate (or Flush) when tracked code dies.
	// Engines clear it after dropping chain state / aborting a block.
	Flushed bool

	// Flushes counts whole-cache invalidations across the tracker's
	// lifetime.
	Flushes uint64

	// onFlush, when non-nil, runs at each flush so the owning engine
	// can drop its block cache in the same event.
	onFlush func()
}

// NewCodeTracker returns an empty tracker. fn (may be nil) runs at
// every flush, before Flushed is observable by the engine loop.
func NewCodeTracker(fn func()) *CodeTracker {
	return &CodeTracker{pages: make(map[uint64]struct{}), onFlush: fn}
}

// Track marks [start, end) as translated code.
func (t *CodeTracker) Track(start, end uint64) {
	for p := start / emu.PageSize; p <= (end-1)/emu.PageSize; p++ {
		t.pages[p] = struct{}{}
	}
}

// Invalidate is the Memory write barrier: a store into any tracked
// page flushes everything. Full flush keeps chain pointers trivially
// safe — no stale block survives to be chained into — and invalidation
// is rare, so O(cache) per flush beats per-block bookkeeping on every
// store.
func (t *CodeTracker) Invalidate(addr, size uint64) {
	if len(t.pages) == 0 || size == 0 {
		return
	}
	for p := addr / emu.PageSize; p <= (addr+size-1)/emu.PageSize; p++ {
		if _, ok := t.pages[p]; ok {
			t.Flush()
			return
		}
	}
}

// Flush unconditionally drops all tracked pages, sets Flushed, and
// notifies the owning engine.
func (t *CodeTracker) Flush() {
	clear(t.pages)
	t.Flushed = true
	t.Flushes++
	if t.onFlush != nil {
		t.onFlush()
	}
}
