// Package tbc is a basic-block translation cache for the emulator,
// in the lineage of QEMU-style dynamic translators: straight-line code
// is fetched and decoded once into a cached Block, executed by a tight
// dispatch loop, and blocks are chained across direct branches so hot
// paths skip the cache lookup entirely.
//
// The engine is observationally identical to the decode-per-step
// interpreter (emu.Machine.Step): same Counters and cycle model, same
// Trace callback per instruction, same runtime-call / exit-sentinel /
// SIGTRAP dispatch, and the same errors at the same addresses. The
// cost model is engine-invariant because every counter update happens
// inside Machine.ExecDecoded and Machine.StepSpecial, which both
// engines share; tbc only removes the per-step fetch/decode work.
//
// Self-modifying code is handled with a write barrier on Memory: any
// store landing in a page that holds translated bytes flushes the
// whole cache, and a flush raised by an instruction inside the
// currently-executing block aborts that block so the remaining
// instructions are re-decoded from the new bytes. Rewritten binaries
// patch .text, so invalidation is correctness-critical, not optional.
// See DESIGN.md §6.
package tbc

import (
	"fmt"

	"e9patch/internal/emu"
	"e9patch/internal/x86"
)

// MaxBlockInsts caps the instruction count of one translated block. It
// bounds translation latency for pathological straight-line runs and
// keeps the abort-on-flush granularity small.
const MaxBlockInsts = 64

// TermAttrs marks instructions that may not fall through to the next
// sequential address: they terminate a block. Exported for engines
// built on the DecodeBlock seam.
const TermAttrs = x86.AttrJump | x86.AttrCondJump | x86.AttrCall |
	x86.AttrRet | x86.AttrStop | x86.AttrInt3

// Block is one translated run of straight-line code.
type Block struct {
	start uint64
	end   uint64 // address one past the final instruction
	insts []x86.Inst

	// succAddr are the block's static successor addresses (fallthrough
	// and, for direct branches, the target); succ memoizes their
	// translated blocks so chained transitions skip the cache map.
	succAddr [2]uint64
	succ     [2]*Block
}

// Stats counts translation-cache events, for tests and tooling.
type Stats struct {
	// Translations is the number of blocks decoded.
	Translations uint64
	// Lookups is the number of dispatch-loop block transitions.
	Lookups uint64
	// Chained is the subset of Lookups resolved via a chain pointer.
	Chained uint64
	// Flushes is the number of whole-cache invalidations.
	Flushes uint64
}

// Engine is a translation-cache execution engine. An Engine binds to a
// single Machine's memory via the write barrier; create one per
// machine (workload.NewMachine does).
type Engine struct {
	blocks map[uint64]*Block
	trk    *CodeTracker // shared invalidation seam (also used by emu/ir)
	mem    *emu.Memory  // memory the write barrier is installed on

	// Stats accumulates cache events across Run calls.
	Stats Stats
}

// New returns an empty translation cache.
func New() *Engine {
	e := &Engine{blocks: make(map[uint64]*Block)}
	e.trk = NewCodeTracker(func() {
		clear(e.blocks)
		e.Stats.Flushes++
	})
	return e
}

func init() {
	emu.RegisterEngine("tbc", func() emu.Engine { return New() })
}

// translate decodes the block starting at pc (via the shared
// DecodeBlock seam) and caches it.
func (e *Engine) translate(m *emu.Machine, pc uint64) (*Block, error) {
	insts, end, err := DecodeBlock(m, pc)
	if err != nil {
		return nil, err
	}
	b := &Block{start: pc, end: end, insts: insts}

	// Static successors for chaining: the fallthrough address (taken
	// after a not-taken jcc, a size-capped block, or a call's eventual
	// ret) and a direct branch target when the terminator has one.
	b.succAddr[0] = b.end
	if last := &b.insts[len(b.insts)-1]; last.RelSize != 0 {
		b.succAddr[1] = last.Target()
	}

	e.blocks[b.start] = b
	e.trk.Track(b.start, b.end)
	e.Stats.Translations++
	return b, nil
}

// Run implements emu.Engine: execute until halt or budget exhaustion,
// observationally identical to the interpreter loop.
func (e *Engine) Run(m *emu.Machine, maxInst uint64) error {
	if e.mem != m.Mem {
		// First run (or the machine's memory was swapped): bind the
		// write barrier and start from an empty cache.
		if e.mem != nil {
			e.trk.Flush()
		}
		e.mem = m.Mem
		m.Mem.SetWriteBarrier(e.trk.Invalidate)
	}
	e.trk.Flushed = false

	var prev *Block // block whose terminator brought us here, for chaining
	for !m.Halted() {
		if m.Counters.Instructions >= maxInst {
			return fmt.Errorf("%w (%d at rip=%#x)", emu.ErrMaxInstructions, maxInst, m.RIP)
		}
		if handled, err := m.StepSpecial(); err != nil {
			return err
		} else if handled {
			prev = nil
			continue
		}

		if e.trk.Flushed {
			// A flush raised outside block execution (e.g. a runtime
			// call wrote into translated code): prev points into the
			// dropped generation, so it must not seed chaining.
			e.trk.Flushed = false
			prev = nil
		}

		// Resolve the block at RIP: chain pointer, cache, or translate.
		pc := m.RIP
		e.Stats.Lookups++
		var b *Block
		if prev != nil {
			if prev.succAddr[0] == pc && prev.succ[0] != nil {
				b = prev.succ[0]
				e.Stats.Chained++
			} else if prev.succAddr[1] == pc && prev.succ[1] != nil {
				b = prev.succ[1]
				e.Stats.Chained++
			}
		}
		if b == nil {
			b = e.blocks[pc]
			if b == nil {
				var err error
				if b, err = e.translate(m, pc); err != nil {
					return err
				}
			}
			if prev != nil {
				if prev.succAddr[0] == pc {
					prev.succ[0] = b
				} else if prev.succAddr[1] == pc {
					prev.succ[1] = b
				}
			}
		}
		prev = b

		for i := range b.insts {
			if m.Counters.Instructions >= maxInst {
				return fmt.Errorf("%w (%d at rip=%#x)", emu.ErrMaxInstructions, maxInst, m.RIP)
			}
			inst := &b.insts[i]
			if m.Trace != nil {
				// The interpreter hands the tracer the same fresh
				// decode it then executes; give out a private copy so
				// a mutating tracer cannot poison the cache.
				c := *inst
				c.Bytes = append([]byte(nil), inst.Bytes...)
				inst = &c
			}
			if err := m.ExecDecoded(inst); err != nil {
				return err
			}
			if m.Halted() {
				break
			}
			if e.trk.Flushed {
				// A store landed in translated code. The rest of this
				// block may hold stale bytes: abandon it and re-decode
				// from the post-store RIP, exactly what the
				// interpreter's per-step fetch would observe.
				e.trk.Flushed = false
				prev = nil
				break
			}
		}
	}
	return nil
}
