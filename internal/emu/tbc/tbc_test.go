package tbc_test

import (
	"testing"
	"time"

	"e9patch/internal/emu"
	"e9patch/internal/emu/tbc"
	"e9patch/internal/loader"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// The cross-engine behavioural tests (profile/dromaeo agreement,
// self-modifying code, mutating tracers, budget-error parity, flag
// stress) live in internal/emu/enginetest and run against every
// registered engine. This file keeps what is specific to tbc: its
// cache statistics and its speedup gate.

// runProgram executes an ELF image under the given engine (nil = the
// interpreter) and returns the machine.
func runProgram(t *testing.T, elf []byte, eng emu.Engine) *emu.Machine {
	t.Helper()
	m := workload.NewMachine(nil)
	workload.BindJit(m)
	m.Engine = eng
	entry, err := loader.BuildImage(m, elf, loader.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.RIP = entry
	if err := m.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestChainingStats checks that the cache actually behaves like a
// cache on a hot loop: few translations, many transitions, most of
// them resolved through chain pointers rather than map lookups.
func TestChainingStats(t *testing.T) {
	saved := workload.KernelIters
	workload.KernelIters = 5000
	defer func() { workload.KernelIters = saved }()
	prog, err := workload.BuildKernel("memstream", false)
	if err != nil {
		t.Fatal(err)
	}
	eng := tbc.New()
	runProgram(t, prog.ELF, eng)

	s := eng.Stats
	if s.Translations == 0 || s.Lookups == 0 {
		t.Fatalf("no cache activity: %+v", s)
	}
	if s.Translations > 200 {
		t.Errorf("translated %d blocks for a tiny kernel (cache not reused?)", s.Translations)
	}
	if s.Lookups < 1000 {
		t.Errorf("only %d block transitions; kernel loop should dominate", s.Lookups)
	}
	if s.Chained*2 < s.Lookups {
		t.Errorf("chaining resolved %d of %d transitions; expected a majority", s.Chained, s.Lookups)
	}
	if s.Flushes != 0 {
		t.Errorf("%d spurious flushes on non-self-modifying code", s.Flushes)
	}
}

// TestSMCFlushStats: behavioural parity on self-modifying code is
// checked in enginetest; here we assert the mechanism — stores into
// translated pages must actually flush the cache, not merely get
// lucky with stale-but-equal bytes.
func TestSMCFlushStats(t *testing.T) {
	const base = 0x401000
	a := x86.NewAsm(base)
	a.XorRegReg32(x86.RAX, x86.RAX)
	a.XorRegReg32(x86.RCX, x86.RCX)
	top := a.NewLabel()
	a.Bind(top)
	site := a.Addr()
	a.AddRegImm64(x86.RAX, 1) // imm low byte at site+3, patched below
	a.MovRegImm64(x86.RBX, site+3)
	a.MovMemImm8(x86.M(x86.RBX, 0), 5)
	a.AddRegImm64(x86.RCX, 1)
	a.CmpRegImm64(x86.RCX, 3)
	a.Jcc(x86.CondL, top)
	a.Ret()
	text := a.MustFinish()

	eng := tbc.New()
	m := emu.NewMachine()
	m.Engine = eng
	m.Mem.WriteBytes(base, text)
	m.SetupStack(workload.StackTop, workload.StackSize)
	m.RIP = base
	if err := m.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode != 11 { // 1 + 5 + 5
		t.Errorf("exit = %d, want 11", m.ExitCode)
	}
	if eng.Stats.Flushes == 0 {
		t.Error("tbc never flushed despite stores into translated code")
	}
}

// TestSpeedup is the performance acceptance gate: on the largest
// benchmark workload (the memstream kernel, the highest dynamic
// instruction count per iteration) tbc must retire at least 2x the
// instructions/sec of the interpreter.
func TestSpeedup(t *testing.T) {
	saved := workload.KernelIters
	workload.KernelIters = 150_000
	defer func() { workload.KernelIters = saved }()
	prog, err := workload.BuildKernel("memstream", false)
	if err != nil {
		t.Fatal(err)
	}

	measure := func(mk func() emu.Engine) float64 {
		best := 0.0
		for trial := 0; trial < 2; trial++ {
			m := workload.NewMachine(nil)
			m.Engine = mk()
			entry, err := loader.BuildImage(m, prog.ELF, loader.Options{})
			if err != nil {
				t.Fatal(err)
			}
			m.RIP = entry
			start := time.Now()
			if err := m.Run(2_000_000_000); err != nil {
				t.Fatal(err)
			}
			ips := float64(m.Counters.Instructions) / time.Since(start).Seconds()
			if ips > best {
				best = ips
			}
		}
		return best
	}

	interpIPS := measure(func() emu.Engine { return nil })
	tbcIPS := measure(func() emu.Engine { return tbc.New() })
	ratio := tbcIPS / interpIPS
	t.Logf("interp %.1f Minst/s, tbc %.1f Minst/s, speedup %.2fx",
		interpIPS/1e6, tbcIPS/1e6, ratio)
	if ratio < 2 {
		t.Errorf("tbc speedup %.2fx < 2x (interp %.0f inst/s, tbc %.0f inst/s)",
			ratio, interpIPS, tbcIPS)
	}
}
