package tbc_test

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
	"time"

	"e9patch/internal/emu"
	"e9patch/internal/emu/tbc"
	"e9patch/internal/loader"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// finalState is everything observable about a finished machine.
type finalState struct {
	Regs     [16]uint64
	RIP      uint64
	Flags    uint64
	ExitCode uint64
	Counters emu.Counters
	Output   []uint64
}

func stateOf(m *emu.Machine) finalState {
	return finalState{
		Regs:     m.Regs,
		RIP:      m.RIP,
		Flags:    m.Flags,
		ExitCode: m.ExitCode,
		Counters: m.Counters,
		Output:   m.Output,
	}
}

// runProgram executes an ELF image under the given engine (nil = the
// interpreter) and returns the machine.
func runProgram(t *testing.T, elf []byte, eng emu.Engine) *emu.Machine {
	t.Helper()
	m := workload.NewMachine(nil)
	workload.BindJit(m)
	m.Engine = eng
	entry, err := loader.BuildImage(m, elf, loader.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.RIP = entry
	if err := m.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func diffStates(t *testing.T, name string, interp, cached finalState) {
	t.Helper()
	if !reflect.DeepEqual(interp, cached) {
		t.Errorf("%s: engines diverged:\ninterp: %+v\ntbc:    %+v", name, interp, cached)
	}
}

// TestEnginesAgreeOnAllProfiles is the acceptance gate: for every
// Table 1 profile, the interpreter and the translation cache produce
// byte-identical Counters, ExitCode, registers, flags and output on
// the profile's (density-tuned) kernel. Non-SPEC rows have no Time%
// kernel in the paper; they run the branchy archetype with their own
// tuning so every profile still contributes a distinct workload.
func TestEnginesAgreeOnAllProfiles(t *testing.T) {
	saved := workload.KernelIters
	workload.KernelIters = 2000
	defer func() { workload.KernelIters = saved }()

	for _, p := range workload.AllProfiles() {
		kernel := p.Kernel
		if kernel == "" {
			kernel = "branchy"
		}
		prog, err := workload.BuildKernelTuned(kernel, p.Kind == workload.KindPIE, workload.TuningFor(p))
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		interp := runProgram(t, prog.ELF, nil)
		cached := runProgram(t, prog.ELF, tbc.New())
		diffStates(t, p.Name, stateOf(interp), stateOf(cached))
		if cached.Counters.Instructions == 0 {
			t.Fatalf("%s: kernel retired no instructions", p.Name)
		}
	}
}

// TestEnginesAgreeOnDromaeo covers the runtime-call-heavy Figure 4
// programs (JIT episodes exercise StepSpecial between blocks).
func TestEnginesAgreeOnDromaeo(t *testing.T) {
	saved := workload.KernelIters
	workload.KernelIters = 1500
	defer func() { workload.KernelIters = saved }()

	for _, s := range workload.DromaeoSuites {
		for _, jit := range []int{8, 55} {
			prog, err := workload.BuildDromaeo(s, true, jit)
			if err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			interp := runProgram(t, prog.ELF, nil)
			cached := runProgram(t, prog.ELF, tbc.New())
			diffStates(t, s.Name, stateOf(interp), stateOf(cached))
		}
	}
}

// rawMachine builds a machine with text written at base, no ELF.
func rawMachine(eng emu.Engine, base uint64, text []byte) *emu.Machine {
	m := emu.NewMachine()
	m.Engine = eng
	m.Mem.WriteBytes(base, text)
	m.SetupStack(workload.StackTop, workload.StackSize)
	m.RIP = base
	return m
}

// TestSelfModifyingPatchLoop overwrites an instruction's immediate from
// a later iteration's perspective: iteration 0 executes `add rax, 1`,
// then the loop body patches the immediate byte to 5, so iterations 1
// and 2 must add 5. Both engines have to observe the new bytes; tbc
// must flush the translated page.
func TestSelfModifyingPatchLoop(t *testing.T) {
	const base = 0x401000
	build := func() []byte {
		a := x86.NewAsm(base)
		a.XorRegReg32(x86.RAX, x86.RAX)
		a.XorRegReg32(x86.RCX, x86.RCX)
		top := a.NewLabel()
		a.Bind(top)
		site := a.Addr()
		a.AddRegImm64(x86.RAX, 1) // imm low byte at site+3, patched below
		a.MovRegImm64(x86.RBX, site+3)
		a.MovMemImm8(x86.M(x86.RBX, 0), 5)
		a.AddRegImm64(x86.RCX, 1)
		a.CmpRegImm64(x86.RCX, 3)
		a.Jcc(x86.CondL, top)
		a.Ret()
		return a.MustFinish()
	}
	text := build()

	interp := rawMachine(nil, base, text)
	if err := interp.Run(10_000); err != nil {
		t.Fatal(err)
	}
	eng := tbc.New()
	cached := rawMachine(eng, base, text)
	if err := cached.Run(10_000); err != nil {
		t.Fatal(err)
	}

	if interp.ExitCode != 11 { // 1 + 5 + 5
		t.Errorf("interp exit = %d, want 11", interp.ExitCode)
	}
	diffStates(t, "patch-loop", stateOf(interp), stateOf(cached))
	if eng.Stats.Flushes == 0 {
		t.Error("tbc never flushed despite stores into translated code")
	}
}

// TestSelfModifyingSameBlock stores a hlt opcode over the very next
// instruction in the same straight-line run. The interpreter's per-step
// fetch sees the new byte immediately; tbc must abort the current block
// mid-flight and re-translate, or it would run the stale tail
// (`mov rax, 99`) and exit 99 instead of 7.
func TestSelfModifyingSameBlock(t *testing.T) {
	const base = 0x401000
	a := x86.NewAsm(base)
	a.MovRegImm32(x86.RAX, 7)
	movOff := a.Len()
	a.MovRegImm64(x86.RBX, 0) // imm patched to siteAddr after assembly
	a.MovMemImm8(x86.M(x86.RBX, 0), 0xF4)
	siteAddr := a.Addr()
	a.Nop() // becomes hlt before it executes
	a.MovRegImm32(x86.RAX, 99)
	a.Ret()
	text := a.MustFinish()
	binary.LittleEndian.PutUint64(text[movOff+2:], siteAddr)

	interp := rawMachine(nil, base, text)
	if err := interp.Run(10_000); err != nil {
		t.Fatal(err)
	}
	eng := tbc.New()
	cached := rawMachine(eng, base, text)
	if err := cached.Run(10_000); err != nil {
		t.Fatal(err)
	}

	if interp.ExitCode != 7 {
		t.Errorf("interp exit = %d, want 7", interp.ExitCode)
	}
	diffStates(t, "same-block", stateOf(interp), stateOf(cached))
	if eng.Stats.Flushes == 0 {
		t.Error("tbc never flushed despite overwriting the current block")
	}
}

// TestMutatingTracerParity drives both engines with a tracer that
// corrupts the immediate of the first add-immediate instruction it sees
// at each address. The interpreter re-decodes every step, so the
// corruption applies exactly once per address; tbc must hand the tracer
// (and execute) a private copy, or the mutation would be baked into the
// cache and every later iteration would diverge.
func TestMutatingTracerParity(t *testing.T) {
	saved := workload.KernelIters
	workload.KernelIters = 500
	defer func() { workload.KernelIters = saved }()
	prog, err := workload.BuildKernel("branchy", false)
	if err != nil {
		t.Fatal(err)
	}

	run := func(eng emu.Engine) (*emu.Machine, []uint64) {
		m := workload.NewMachine(nil)
		m.Engine = eng
		entry, err := loader.BuildImage(m, prog.ELF, loader.Options{})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]bool{}
		var addrs []uint64
		m.Trace = func(inst *x86.Inst) {
			addrs = append(addrs, inst.Addr)
			// First sight of an `add r, imm8` at this address: bump the
			// immediate. Affects exactly this one execution.
			if !seen[inst.Addr] && inst.Opcode == 0x83 && (inst.ModRM>>3)&7 == 0 && inst.ImmSize == 1 {
				seen[inst.Addr] = true
				inst.Bytes[inst.ImmOff]++
			}
		}
		m.RIP = entry
		if err := m.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		return m, addrs
	}

	interp, interpAddrs := run(nil)
	cached, cachedAddrs := run(tbc.New())
	diffStates(t, "mutating-tracer", stateOf(interp), stateOf(cached))
	if !reflect.DeepEqual(interpAddrs, cachedAddrs) {
		t.Errorf("trace address streams diverged: %d vs %d entries",
			len(interpAddrs), len(cachedAddrs))
	}
}

// TestBudgetErrorParity: exhausting the instruction budget must produce
// the identical error (message included) and identical machine state
// under both engines, for budgets landing at arbitrary points within
// and between blocks.
func TestBudgetErrorParity(t *testing.T) {
	saved := workload.KernelIters
	workload.KernelIters = 5000
	defer func() { workload.KernelIters = saved }()
	prog, err := workload.BuildKernel("callheavy", false)
	if err != nil {
		t.Fatal(err)
	}

	for _, budget := range []uint64{1, 7, 100, 1001, 4096} {
		run := func(eng emu.Engine) (*emu.Machine, error) {
			m := workload.NewMachine(nil)
			m.Engine = eng
			entry, err := loader.BuildImage(m, prog.ELF, loader.Options{})
			if err != nil {
				t.Fatal(err)
			}
			m.RIP = entry
			return m, m.Run(budget)
		}
		interp, ierr := run(nil)
		cached, cerr := run(tbc.New())
		if ierr == nil || cerr == nil {
			t.Fatalf("budget %d: expected both engines to exhaust (interp=%v tbc=%v)", budget, ierr, cerr)
		}
		if !errors.Is(cerr, emu.ErrMaxInstructions) {
			t.Errorf("budget %d: tbc error %v is not ErrMaxInstructions", budget, cerr)
		}
		if ierr.Error() != cerr.Error() {
			t.Errorf("budget %d: error mismatch:\ninterp: %v\ntbc:    %v", budget, ierr, cerr)
		}
		diffStates(t, "budget", stateOf(interp), stateOf(cached))
	}
}

// TestChainingStats checks that the cache actually behaves like a
// cache on a hot loop: few translations, many transitions, most of
// them resolved through chain pointers rather than map lookups.
func TestChainingStats(t *testing.T) {
	saved := workload.KernelIters
	workload.KernelIters = 5000
	defer func() { workload.KernelIters = saved }()
	prog, err := workload.BuildKernel("memstream", false)
	if err != nil {
		t.Fatal(err)
	}
	eng := tbc.New()
	runProgram(t, prog.ELF, eng)

	s := eng.Stats
	if s.Translations == 0 || s.Lookups == 0 {
		t.Fatalf("no cache activity: %+v", s)
	}
	if s.Translations > 200 {
		t.Errorf("translated %d blocks for a tiny kernel (cache not reused?)", s.Translations)
	}
	if s.Lookups < 1000 {
		t.Errorf("only %d block transitions; kernel loop should dominate", s.Lookups)
	}
	if s.Chained*2 < s.Lookups {
		t.Errorf("chaining resolved %d of %d transitions; expected a majority", s.Chained, s.Lookups)
	}
	if s.Flushes != 0 {
		t.Errorf("%d spurious flushes on non-self-modifying code", s.Flushes)
	}
}

// TestSpeedup is the performance acceptance gate: on the largest
// benchmark workload (the memstream kernel, the highest dynamic
// instruction count per iteration) tbc must retire at least 2x the
// instructions/sec of the interpreter.
func TestSpeedup(t *testing.T) {
	saved := workload.KernelIters
	workload.KernelIters = 150_000
	defer func() { workload.KernelIters = saved }()
	prog, err := workload.BuildKernel("memstream", false)
	if err != nil {
		t.Fatal(err)
	}

	measure := func(mk func() emu.Engine) float64 {
		best := 0.0
		for trial := 0; trial < 2; trial++ {
			m := workload.NewMachine(nil)
			m.Engine = mk()
			entry, err := loader.BuildImage(m, prog.ELF, loader.Options{})
			if err != nil {
				t.Fatal(err)
			}
			m.RIP = entry
			start := time.Now()
			if err := m.Run(2_000_000_000); err != nil {
				t.Fatal(err)
			}
			ips := float64(m.Counters.Instructions) / time.Since(start).Seconds()
			if ips > best {
				best = ips
			}
		}
		return best
	}

	interpIPS := measure(func() emu.Engine { return nil })
	tbcIPS := measure(func() emu.Engine { return tbc.New() })
	ratio := tbcIPS / interpIPS
	t.Logf("interp %.1f Minst/s, tbc %.1f Minst/s, speedup %.2fx",
		interpIPS/1e6, tbcIPS/1e6, ratio)
	if ratio < 2 {
		t.Errorf("tbc speedup %.2fx < 2x (interp %.0f inst/s, tbc %.0f inst/s)",
			ratio, interpIPS, tbcIPS)
	}
}
