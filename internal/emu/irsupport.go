package emu

import "e9patch/internal/x86"

// This file is the decoding/flag seam for engines that precompile
// instructions (internal/emu/ir). The flag helpers delegate to the
// interpreter's own implementations, so a lazily-deferred flag
// computation materialises bit-identically to what the interpreter
// would have produced at the same point — the conformance contract is
// structural, not re-implemented.

// Width returns the operand width in bytes implied by REX.W and the
// 0x66 prefix for a non-8-bit opcode.
func Width(inst *x86.Inst) int { return width(inst) }

// MaskFor returns the value mask for a w-byte operand.
func MaskFor(w int) uint64 { return maskFor(w) }

// ModRMReg returns the ModRM reg-field register (with REX.R).
func ModRMReg(inst *x86.Inst) x86.Reg { return modrmReg(inst) }

// ModRMRM returns the ModRM r/m-field register (mod == 3 only).
func ModRMRM(inst *x86.Inst) x86.Reg { return modrmRM(inst) }

// RMIsReg reports whether the r/m operand is a register.
func RMIsReg(inst *x86.Inst) bool { return rmIsReg(inst) }

// RegRead returns the low w bytes of a register.
func (m *Machine) RegRead(r x86.Reg, w int) uint64 { return m.regRead(r, w) }

// RegWrite stores v into a register with x86-64 merge semantics
// (32-bit writes zero-extend; 8/16-bit writes merge).
func (m *Machine) RegWrite(r x86.Reg, v uint64, w int) { m.regWrite(r, v, w) }

// AddWithFlags computes a+b+cin updating all arithmetic flags,
// returning the masked result.
func (m *Machine) AddWithFlags(a, b, cin uint64, w int) uint64 { return m.addFlags(a, b, cin, w) }

// SubWithFlags computes a-b-cin updating all arithmetic flags,
// returning the masked result.
func (m *Machine) SubWithFlags(a, b, cin uint64, w int) uint64 { return m.subFlags(a, b, cin, w) }

// LogicFlags sets ZF/SF/PF from res and clears CF/OF/AF
// (and/or/xor/test semantics).
func (m *Machine) LogicFlags(res uint64, w int) { m.setLogicFlags(res, w) }

// ResultFlags sets ZF/SF/PF from res, leaving CF/OF/AF untouched.
func (m *Machine) ResultFlags(res uint64, w int) { m.setResultFlags(res, w) }

// SetFlagTo sets or clears one RFLAGS bit.
func (m *Machine) SetFlagTo(bit uint64, on bool) { m.setFlag(bit, on) }

// FlagBitOf returns 1 if the flag is set, else 0.
func (m *Machine) FlagBitOf(bit uint64) uint64 { return m.flagBit(bit) }

// EvalCond evaluates a condition code against the current RFLAGS.
func (m *Machine) EvalCond(cc x86.Cond) bool { return m.cond(cc) }
