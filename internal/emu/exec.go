package emu

import (
	"fmt"
	"math/bits"

	"e9patch/internal/x86"
)

// Step fetches, decodes and executes one instruction (or services a
// runtime-call / exit-sentinel address).
func (m *Machine) Step() error {
	if handled, err := m.StepSpecial(); handled || err != nil {
		return err
	}
	raw, _ := m.Mem.ReadBytes(m.RIP, 15)
	inst, err := x86.Decode(raw, m.RIP)
	if err != nil {
		return fmt.Errorf("emu: at %#x: %w", m.RIP, err)
	}
	return m.ExecDecoded(&inst)
}

// StepSpecial services the two magic classes of RIP values — the exit
// sentinel and runtime-call addresses — without touching code bytes.
// It reports whether RIP was special. Step performs it before every
// fetch; alternative engines (internal/emu/tbc) perform it at block
// boundaries, which is equivalent because special addresses are never
// mapped and so can only be reached by a control transfer.
func (m *Machine) StepSpecial() (bool, error) {
	if m.RIP == m.ExitAddr {
		m.halted = true
		m.ExitCode = m.Regs[x86.RAX]
		return true, nil
	}
	if fn, ok := m.Runtime[m.RIP]; ok {
		// Native runtime call: consume the return address pushed by
		// the calling code, run the binding, return.
		ret, err := m.pop()
		if err != nil {
			return true, err
		}
		m.Counters.RuntimeCalls++
		m.Counters.Cycles += m.Cost.Runtime
		if err := fn(m); err != nil {
			return true, err
		}
		m.RIP = ret
		return true, nil
	}
	return false, nil
}

// ExecDecoded executes one already-decoded instruction: trace callback,
// counters, dispatch and the RIP update, exactly as the fetch-decode
// path of Step. The caller must guarantee inst.Addr == RIP; engines
// that cache decoded instructions (internal/emu/tbc) satisfy this
// because straight-line execution leaves RIP at the next cached Addr.
func (m *Machine) ExecDecoded(inst *x86.Inst) error {
	if m.Trace != nil {
		m.Trace(inst)
	}
	return m.ExecDecodedQuiet(inst)
}

// ExecDecodedQuiet is ExecDecoded without the Trace callback: counters,
// dispatch, error wrapping and the RIP update. Engines that issue the
// Trace call themselves (or have already established it is nil) use it
// as the single-instruction fallback path so the callback never fires
// twice for one retired instruction.
func (m *Machine) ExecDecodedQuiet(inst *x86.Inst) error {
	m.Counters.Instructions++
	m.Counters.Cycles += m.Cost.ALU
	next := inst.Addr + uint64(inst.Len)
	newRIP, err := m.exec(inst, next)
	if err != nil {
		return fmt.Errorf("emu: at %#x (% x): %w", inst.Addr, inst.Bytes, err)
	}
	m.RIP = newRIP
	return nil
}

// width returns the operand width in bytes for a non-8-bit opcode.
func width(inst *x86.Inst) int {
	if inst.Rex&0x08 != 0 {
		return 8
	}
	for i := 0; i < inst.NPrefix; i++ {
		if inst.Bytes[i] == 0x66 {
			return 2
		}
	}
	return 4
}

func maskFor(w int) uint64 {
	if w == 8 {
		return ^uint64(0)
	}
	return (uint64(1) << (8 * uint(w))) - 1
}

// regRead returns the low w bytes of a register.
func (m *Machine) regRead(r x86.Reg, w int) uint64 { return m.Regs[r] & maskFor(w) }

// regWrite stores v into a register with x86-64 merge semantics:
// 32-bit writes zero-extend; 8/16-bit writes merge.
func (m *Machine) regWrite(r x86.Reg, v uint64, w int) {
	switch w {
	case 8:
		m.Regs[r] = v
	case 4:
		m.Regs[r] = v & 0xFFFFFFFF
	default:
		mask := maskFor(w)
		m.Regs[r] = m.Regs[r]&^mask | v&mask
	}
}

// ea computes the effective address of the memory operand.
func (m *Machine) ea(inst *x86.Inst) uint64 {
	if inst.RIPRel {
		return inst.Addr + uint64(inst.Len) + uint64(inst.Disp())
	}
	var a uint64
	if inst.MemBase != x86.NoReg && inst.MemBase != x86.RIP {
		a = m.Regs[inst.MemBase]
	}
	if inst.MemIndex != x86.NoReg {
		a += m.Regs[inst.MemIndex] * uint64(inst.MemScale)
	}
	return a + uint64(inst.Disp())
}

// modrmReg returns the ModRM reg-field register.
func modrmReg(inst *x86.Inst) x86.Reg {
	return x86.Reg((inst.ModRM>>3)&7 | (inst.Rex>>2&1)<<3)
}

// modrmRM returns the ModRM r/m-field register (mod == 3 only).
func modrmRM(inst *x86.Inst) x86.Reg {
	return x86.Reg(inst.ModRM&7 | (inst.Rex&1)<<3)
}

func rmIsReg(inst *x86.Inst) bool { return inst.ModRM>>6 == 3 }

// rmRead reads the r/m operand.
func (m *Machine) rmRead(inst *x86.Inst, w int) (uint64, error) {
	if rmIsReg(inst) {
		return m.regRead(modrmRM(inst), w), nil
	}
	m.Counters.Cycles += m.Cost.Mem
	return m.Mem.read(m.ea(inst), w)
}

// rmWrite writes the r/m operand.
func (m *Machine) rmWrite(inst *x86.Inst, v uint64, w int) error {
	if rmIsReg(inst) {
		m.regWrite(modrmRM(inst), v, w)
		return nil
	}
	m.Counters.Cycles += m.Cost.Mem
	return m.Mem.write(m.ea(inst), v, w)
}

func (m *Machine) push(v uint64) error {
	sp := m.Regs[x86.RSP] - 8
	m.Regs[x86.RSP] = sp
	m.Counters.Cycles += m.Cost.Mem
	return m.Mem.write(sp, v, 8)
}

func (m *Machine) pop() (uint64, error) {
	sp := m.Regs[x86.RSP]
	v, err := m.Mem.read(sp, 8)
	if err != nil {
		return 0, err
	}
	m.Regs[x86.RSP] = sp + 8
	m.Counters.Cycles += m.Cost.Mem
	return v, nil
}

// branch accounts for a taken control transfer and returns the target.
func (m *Machine) branch(from, target uint64) uint64 {
	m.Counters.TakenBranches++
	m.Counters.Cycles += m.Cost.BranchTaken
	dist := target - from
	if int64(dist) < 0 {
		dist = -dist
	}
	if dist > m.Cost.FarDistance {
		m.Counters.FarJumps++
		m.Counters.Cycles += m.Cost.FarJump
	}
	return target
}

// exec executes a decoded instruction; next is the fallthrough RIP.
func (m *Machine) exec(inst *x86.Inst, next uint64) (uint64, error) {
	op := inst.Opcode
	if inst.TwoByte {
		return m.execTwoByte(inst, next)
	}

	switch {
	// Classic ALU block: 0x00-0x3D (skipping invalid slots, which the
	// decoder rejects).
	case op <= 0x3D:
		return next, m.execALUBlock(inst)

	case op >= 0x50 && op <= 0x57: // push r
		r := x86.Reg(op&7 | (inst.Rex&1)<<3)
		return next, m.push(m.Regs[r])

	case op >= 0x58 && op <= 0x5F: // pop r
		r := x86.Reg(op&7 | (inst.Rex&1)<<3)
		v, err := m.pop()
		if err != nil {
			return 0, err
		}
		m.Regs[r] = v
		return next, nil

	case op == 0x63: // movsxd r64, r/m32
		v, err := m.rmRead(inst, 4)
		if err != nil {
			return 0, err
		}
		m.regWrite(modrmReg(inst), uint64(int64(int32(uint32(v)))), 8)
		return next, nil

	case op == 0x68 || op == 0x6A: // push imm
		return next, m.push(uint64(inst.Imm()))

	case op == 0x69 || op == 0x6B: // imul r, r/m, imm
		w := width(inst)
		a, err := m.rmRead(inst, w)
		if err != nil {
			return 0, err
		}
		m.Counters.Cycles += m.Cost.Mul
		res := m.imulFlags(a, uint64(inst.Imm()), w)
		m.regWrite(modrmReg(inst), res, w)
		return next, nil

	case op >= 0x70 && op <= 0x7F: // jcc rel8
		if m.cond(x86.Cond(op & 0xF)) {
			return m.branch(next, inst.Target()), nil
		}
		return next, nil

	case op == 0x80 || op == 0x81 || op == 0x83: // group 1
		w := width(inst)
		if op == 0x80 {
			w = 1
		}
		return next, m.execGroup1(inst, w)

	case op == 0x84 || op == 0x85: // test r/m, r
		w := width(inst)
		if op == 0x84 {
			w = 1
		}
		a, err := m.rmRead(inst, w)
		if err != nil {
			return 0, err
		}
		b := m.regRead(modrmReg(inst), w)
		m.setLogicFlags(a&b, w)
		return next, nil

	case op == 0x86 || op == 0x87: // xchg r/m, r
		w := width(inst)
		if op == 0x86 {
			w = 1
		}
		a, err := m.rmRead(inst, w)
		if err != nil {
			return 0, err
		}
		r := modrmReg(inst)
		b := m.regRead(r, w)
		if err := m.rmWrite(inst, b, w); err != nil {
			return 0, err
		}
		m.regWrite(r, a, w)
		return next, nil

	case op == 0x88 || op == 0x89: // mov r/m, r
		w := width(inst)
		if op == 0x88 {
			w = 1
		}
		return next, m.rmWrite(inst, m.regRead(modrmReg(inst), w), w)

	case op == 0x8A || op == 0x8B: // mov r, r/m
		w := width(inst)
		if op == 0x8A {
			w = 1
		}
		v, err := m.rmRead(inst, w)
		if err != nil {
			return 0, err
		}
		m.regWrite(modrmReg(inst), v, w)
		return next, nil

	case op == 0x8D: // lea
		m.regWrite(modrmReg(inst), m.ea(inst), width(inst))
		return next, nil

	case op == 0x8F: // pop r/m
		v, err := m.pop()
		if err != nil {
			return 0, err
		}
		return next, m.rmWrite(inst, v, 8)

	case op == 0x90: // nop
		return next, nil

	case op >= 0x91 && op <= 0x97: // xchg rax, r
		w := width(inst)
		r := x86.Reg(op&7 | (inst.Rex&1)<<3)
		a := m.regRead(x86.RAX, w)
		m.regWrite(x86.RAX, m.regRead(r, w), w)
		m.regWrite(r, a, w)
		return next, nil

	case op == 0x98: // cdqe / cwde
		if inst.Rex&8 != 0 {
			m.Regs[x86.RAX] = uint64(int64(int32(uint32(m.Regs[x86.RAX]))))
		} else {
			m.regWrite(x86.RAX, uint64(uint32(int32(int16(uint16(m.Regs[x86.RAX]))))), 4)
		}
		return next, nil

	case op == 0x99: // cqo / cdq
		if inst.Rex&8 != 0 {
			m.Regs[x86.RDX] = uint64(int64(m.Regs[x86.RAX]) >> 63)
		} else {
			m.regWrite(x86.RDX, uint64(uint32(int32(uint32(m.Regs[x86.RAX]))>>31)), 4)
		}
		return next, nil

	case op == 0x9C: // pushfq
		return next, m.push(m.Flags)

	case op == 0x9D: // popfq
		v, err := m.pop()
		if err != nil {
			return 0, err
		}
		m.Flags = v | FlagsAlways
		return next, nil

	case op == 0xA8 || op == 0xA9: // test al/eax, imm
		w := width(inst)
		if op == 0xA8 {
			w = 1
		}
		m.setLogicFlags(m.regRead(x86.RAX, w)&uint64(inst.Imm())&maskFor(w), w)
		return next, nil

	case op >= 0xB0 && op <= 0xB7: // mov r8, imm8
		r := x86.Reg(op&7 | (inst.Rex&1)<<3)
		m.regWrite(r, uint64(inst.Imm()), 1)
		return next, nil

	case op >= 0xB8 && op <= 0xBF: // mov r, imm
		w := width(inst)
		r := x86.Reg(op&7 | (inst.Rex&1)<<3)
		if w == 8 {
			// movabs carries a full 64-bit immediate.
			m.Regs[r] = uint64(inst.Imm())
		} else {
			m.regWrite(r, uint64(inst.Imm())&maskFor(w), w)
		}
		return next, nil

	case op == 0xC0 || op == 0xC1 || op == 0xD0 || op == 0xD1 || op == 0xD2 || op == 0xD3:
		return next, m.execShift(inst)

	case op == 0xC2: // ret imm16
		ret, err := m.pop()
		if err != nil {
			return 0, err
		}
		m.Regs[x86.RSP] += uint64(inst.Imm()) & 0xFFFF
		m.Counters.Cycles += m.Cost.CallRet
		return m.branch(next, ret), nil

	case op == 0xC3: // ret
		ret, err := m.pop()
		if err != nil {
			return 0, err
		}
		m.Counters.Cycles += m.Cost.CallRet
		return m.branch(next, ret), nil

	case op == 0xC6 || op == 0xC7: // mov r/m, imm
		w := width(inst)
		if op == 0xC6 {
			w = 1
		}
		return next, m.rmWrite(inst, uint64(inst.Imm())&maskFor(w), w)

	case op == 0xC9: // leave
		m.Regs[x86.RSP] = m.Regs[x86.RBP]
		v, err := m.pop()
		if err != nil {
			return 0, err
		}
		m.Regs[x86.RBP] = v
		return next, nil

	case op == 0xCC: // int3 — B0 signal dispatch
		tramp, ok := m.SigTab[inst.Addr]
		if !ok {
			return 0, fmt.Errorf("unexpected int3 (no SIGTRAP handler)")
		}
		m.Counters.Signals++
		m.Counters.Cycles += m.Cost.Signal
		return tramp, nil

	case op == 0xE8: // call rel32
		if err := m.push(next); err != nil {
			return 0, err
		}
		m.Counters.Cycles += m.Cost.CallRet
		return m.branch(next, inst.Target()), nil

	case op == 0xE9 || op == 0xEB: // jmp
		return m.branch(next, inst.Target()), nil

	case op == 0xF4: // hlt
		m.halted = true
		m.ExitCode = m.Regs[x86.RAX]
		return next, nil

	case op == 0xF5: // cmc
		m.Flags ^= FlagCF
		return next, nil

	case op == 0xF8: // clc
		m.setFlag(FlagCF, false)
		return next, nil

	case op == 0xF9: // stc
		m.setFlag(FlagCF, true)
		return next, nil

	case op == 0xFC: // cld
		m.setFlag(FlagDF, false)
		return next, nil

	case op == 0xFD: // std
		m.setFlag(FlagDF, true)
		return next, nil

	case op == 0xF6 || op == 0xF7: // group 3
		return next, m.execGroup3(inst)

	case op == 0xFE: // group 4: inc/dec r/m8
		v, err := m.rmRead(inst, 1)
		if err != nil {
			return 0, err
		}
		var res uint64
		if (inst.ModRM>>3)&7 == 0 {
			res = m.incFlags(v, 1)
		} else {
			res = m.decFlags(v, 1)
		}
		return next, m.rmWrite(inst, res, 1)

	case op == 0xFF: // group 5
		return m.execGroup5(inst, next)
	}
	return 0, fmt.Errorf("unimplemented opcode %#02x", op)
}

func (m *Machine) execTwoByte(inst *x86.Inst, next uint64) (uint64, error) {
	op := inst.Opcode
	switch {
	case op == 0x0B: // ud2
		return 0, ErrUd2

	case op == 0x1E || op == 0x1F || op == 0x0D || (op >= 0x18 && op <= 0x1D): // hint nops
		return next, nil

	case op >= 0x40 && op <= 0x4F: // cmovcc
		w := width(inst)
		v, err := m.rmRead(inst, w)
		if err != nil {
			return 0, err
		}
		r := modrmReg(inst)
		if m.cond(x86.Cond(op & 0xF)) {
			m.regWrite(r, v, w)
		} else if w == 4 {
			// 32-bit cmov zero-extends even when not taken.
			m.regWrite(r, m.regRead(r, 4), 4)
		}
		return next, nil

	case op >= 0x80 && op <= 0x8F: // jcc rel32
		if m.cond(x86.Cond(op & 0xF)) {
			return m.branch(next, inst.Target()), nil
		}
		return next, nil

	case op >= 0x90 && op <= 0x9F: // setcc
		var v uint64
		if m.cond(x86.Cond(op & 0xF)) {
			v = 1
		}
		return next, m.rmWrite(inst, v, 1)

	case op == 0xAF: // imul r, r/m
		w := width(inst)
		a, err := m.rmRead(inst, w)
		if err != nil {
			return 0, err
		}
		r := modrmReg(inst)
		m.Counters.Cycles += m.Cost.Mul
		res := m.imulFlags(m.regRead(r, w), a, w)
		m.regWrite(r, res, w)
		return next, nil

	case op == 0xB6 || op == 0xB7: // movzx
		sw := 1
		if op == 0xB7 {
			sw = 2
		}
		v, err := m.rmRead(inst, sw)
		if err != nil {
			return 0, err
		}
		m.regWrite(modrmReg(inst), v, width(inst))
		return next, nil

	case op == 0xBE || op == 0xBF: // movsx
		sw := 1
		if op == 0xBF {
			sw = 2
		}
		v, err := m.rmRead(inst, sw)
		if err != nil {
			return 0, err
		}
		shift := uint(64 - 8*sw)
		sx := uint64(int64(v<<shift) >> shift)
		w := width(inst)
		m.regWrite(modrmReg(inst), sx&maskFor(w), w)
		return next, nil
	}
	return 0, fmt.Errorf("unimplemented two-byte opcode 0f %#02x", op)
}

// execALUBlock handles opcodes 0x00-0x3D (add/or/adc/sbb/and/sub/xor/cmp).
func (m *Machine) execALUBlock(inst *x86.Inst) error {
	op := inst.Opcode
	aluOp := (op >> 3) & 7
	form := op & 7
	w := width(inst)
	if form == 0 || form == 2 || form == 4 {
		w = 1
	}

	var a, b uint64
	var err error
	var writeBack func(uint64) error
	switch form {
	case 0, 1: // op r/m, r
		a, err = m.rmRead(inst, w)
		b = m.regRead(modrmReg(inst), w)
		writeBack = func(v uint64) error { return m.rmWrite(inst, v, w) }
	case 2, 3: // op r, r/m
		b, err = m.rmRead(inst, w)
		a = m.regRead(modrmReg(inst), w)
		r := modrmReg(inst)
		writeBack = func(v uint64) error { m.regWrite(r, v, w); return nil }
	case 4, 5: // op al/eax, imm
		a = m.regRead(x86.RAX, w)
		b = uint64(inst.Imm()) & maskFor(w)
		writeBack = func(v uint64) error { m.regWrite(x86.RAX, v, w); return nil }
	}
	if err != nil {
		return err
	}
	res, write := m.aluApply(aluOp, a, b, w)
	if write {
		return writeBack(res)
	}
	return nil
}

// aluApply performs ALU op (0=add 1=or 2=adc 3=sbb 4=and 5=sub 6=xor
// 7=cmp) with flag updates; write reports whether the result is stored.
func (m *Machine) aluApply(op byte, a, b uint64, w int) (uint64, bool) {
	switch op {
	case 0:
		return m.addFlags(a, b, 0, w), true
	case 1:
		res := (a | b) & maskFor(w)
		m.setLogicFlags(res, w)
		return res, true
	case 2:
		return m.addFlags(a, b, m.flagBit(FlagCF), w), true
	case 3:
		return m.subFlags(a, b, m.flagBit(FlagCF), w), true
	case 4:
		res := a & b & maskFor(w)
		m.setLogicFlags(res, w)
		return res, true
	case 5:
		return m.subFlags(a, b, 0, w), true
	case 6:
		res := (a ^ b) & maskFor(w)
		m.setLogicFlags(res, w)
		return res, true
	default: // 7 = cmp
		m.subFlags(a, b, 0, w)
		return 0, false
	}
}

func (m *Machine) execGroup1(inst *x86.Inst, w int) error {
	a, err := m.rmRead(inst, w)
	if err != nil {
		return err
	}
	b := uint64(inst.Imm()) & maskFor(w)
	res, write := m.aluApply((inst.ModRM>>3)&7, a, b, w)
	if write {
		return m.rmWrite(inst, res, w)
	}
	return nil
}

func (m *Machine) execShift(inst *x86.Inst) error {
	op := inst.Opcode
	w := width(inst)
	if op == 0xC0 || op == 0xD0 || op == 0xD2 {
		w = 1
	}
	var count uint64
	switch op {
	case 0xC0, 0xC1:
		count = uint64(inst.Imm())
	case 0xD0, 0xD1:
		count = 1
	case 0xD2, 0xD3:
		count = m.Regs[x86.RCX]
	}
	if w == 8 {
		count &= 63
	} else {
		count &= 31
	}
	v, err := m.rmRead(inst, w)
	if err != nil {
		return err
	}
	if count == 0 {
		return m.rmWrite(inst, v, w)
	}
	bitsW := uint(8 * w)
	var res uint64
	var cf uint64
	switch (inst.ModRM >> 3) & 7 {
	case 4, 6: // shl/sal
		res = v << count
		cf = (v >> (bitsW - uint(count))) & 1
	case 5: // shr
		res = v >> count
		cf = (v >> (uint(count) - 1)) & 1
	case 7: // sar
		shift := uint(64 - bitsW)
		sv := int64(v<<shift) >> shift
		res = uint64(sv >> count)
		cf = uint64(sv>>(count-1)) & 1
	case 0: // rol
		res = bits.RotateLeft64(v<<(64-bitsW), int(count)) >> (64 - bitsW)
		cf = res & 1
	case 1: // ror
		res = bits.RotateLeft64(v<<(64-bitsW), -int(count)) >> (64 - bitsW)
		cf = (res >> (bitsW - 1)) & 1
	default:
		return fmt.Errorf("unimplemented shift /%d", (inst.ModRM>>3)&7)
	}
	res &= maskFor(w)
	m.setResultFlags(res, w)
	m.setFlag(FlagCF, cf != 0)
	m.setFlag(FlagOF, false)
	return m.rmWrite(inst, res, w)
}

func (m *Machine) execGroup3(inst *x86.Inst) error {
	w := width(inst)
	if inst.Opcode == 0xF6 {
		w = 1
	}
	reg := (inst.ModRM >> 3) & 7
	v, err := m.rmRead(inst, w)
	if err != nil {
		return err
	}
	switch reg {
	case 0, 1: // test r/m, imm
		m.setLogicFlags(v&uint64(inst.Imm())&maskFor(w), w)
		return nil
	case 2: // not
		return m.rmWrite(inst, ^v&maskFor(w), w)
	case 3: // neg
		res := m.subFlags(0, v, 0, w)
		m.setFlag(FlagCF, v != 0)
		return m.rmWrite(inst, res, w)
	case 4: // mul
		m.Counters.Cycles += m.Cost.Mul
		hi, lo := bits.Mul64(m.regRead(x86.RAX, w), v)
		if w != 8 {
			full := m.regRead(x86.RAX, w) * v
			lo = full & maskFor(w)
			hi = (full >> (8 * uint(w))) & maskFor(w)
		}
		m.regWrite(x86.RAX, lo, w)
		m.regWrite(x86.RDX, hi, w)
		m.setFlag(FlagCF, hi != 0)
		m.setFlag(FlagOF, hi != 0)
		return nil
	case 5: // imul (one-operand)
		m.Counters.Cycles += m.Cost.Mul
		sw := uint(64 - 8*w)
		sa := int64(m.regRead(x86.RAX, w)<<sw) >> sw
		sb := int64(v<<sw) >> sw
		prod := sa * sb
		m.regWrite(x86.RAX, uint64(prod)&maskFor(w), w)
		m.regWrite(x86.RDX, uint64(prod>>(8*uint(w)))&maskFor(w), w)
		over := prod != int64(int64(uint64(prod)&maskFor(w))<<sw)>>sw
		m.setFlag(FlagCF, over)
		m.setFlag(FlagOF, over)
		return nil
	case 6: // div
		m.Counters.Cycles += m.Cost.Mul
		if v == 0 {
			return fmt.Errorf("divide by zero")
		}
		if w == 8 {
			hi, lo := m.Regs[x86.RDX], m.Regs[x86.RAX]
			if hi >= v {
				return fmt.Errorf("divide overflow")
			}
			q, r := bits.Div64(hi, lo, v)
			m.Regs[x86.RAX], m.Regs[x86.RDX] = q, r
			return nil
		}
		num := m.regRead(x86.RDX, w)<<(8*uint(w)) | m.regRead(x86.RAX, w)
		m.regWrite(x86.RAX, num/v, w)
		m.regWrite(x86.RDX, num%v, w)
		return nil
	case 7: // idiv
		m.Counters.Cycles += m.Cost.Mul
		sw := uint(64 - 8*w)
		sv := int64(v<<sw) >> sw
		if sv == 0 {
			return fmt.Errorf("divide by zero")
		}
		var num int64
		if w == 8 {
			num = int64(m.Regs[x86.RAX]) // approximation: rdx ignored
		} else {
			num = int64((m.regRead(x86.RDX, w)<<(8*uint(w))|m.regRead(x86.RAX, w))<<(64-16*uint(w))) >> (64 - 16*uint(w))
		}
		m.regWrite(x86.RAX, uint64(num/sv)&maskFor(w), w)
		m.regWrite(x86.RDX, uint64(num%sv)&maskFor(w), w)
		return nil
	}
	return fmt.Errorf("unimplemented group-3 /%d", reg)
}

func (m *Machine) execGroup5(inst *x86.Inst, next uint64) (uint64, error) {
	reg := (inst.ModRM >> 3) & 7
	switch reg {
	case 0, 1: // inc/dec r/m
		w := width(inst)
		v, err := m.rmRead(inst, w)
		if err != nil {
			return 0, err
		}
		var res uint64
		if reg == 0 {
			res = m.incFlags(v, w)
		} else {
			res = m.decFlags(v, w)
		}
		return next, m.rmWrite(inst, res, w)
	case 2: // call r/m
		t, err := m.rmRead(inst, 8)
		if err != nil {
			return 0, err
		}
		if err := m.push(next); err != nil {
			return 0, err
		}
		m.Counters.Cycles += m.Cost.CallRet
		return m.branch(next, t), nil
	case 4: // jmp r/m
		t, err := m.rmRead(inst, 8)
		if err != nil {
			return 0, err
		}
		return m.branch(next, t), nil
	case 6: // push r/m
		v, err := m.rmRead(inst, 8)
		if err != nil {
			return 0, err
		}
		return next, m.push(v)
	}
	return 0, fmt.Errorf("unimplemented group-5 /%d", reg)
}
