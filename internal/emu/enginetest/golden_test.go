package enginetest

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"e9patch/internal/emu"
	"e9patch/internal/loader"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

var updateGolden = flag.Bool("update-golden", false,
	"re-record testdata/emu_golden from the interpreter")

// maxGoldenSnapshots caps each trace so golden files stay reviewable;
// execution continues past the cap, only recording stops.
const maxGoldenSnapshots = 400

// goldenProg is one corpus entry: a machine factory plus run budget.
type goldenProg struct {
	name   string
	setup  func(eng emu.Engine) *emu.Machine
	budget uint64
}

// goldenPrograms builds the corpus: every flag-stress program (the
// lazy-flag hazard set), a self-modifying loop (cache invalidation
// mid-trace), and a call-heavy kernel (runtime-call episodes between
// blocks).
func goldenPrograms(t *testing.T) []goldenProg {
	t.Helper()
	const base = 0x401000
	var progs []goldenProg

	stress := flagStressPrograms(base)
	// Iterate in a fixed order so the corpus listing is stable.
	names := make([]string, 0, len(stress))
	for name := range stress {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		text := stress[name]
		progs = append(progs, goldenProg{
			name:   name,
			setup:  func(eng emu.Engine) *emu.Machine { return rawMachine(eng, base, text) },
			budget: 10_000,
		})
	}

	// Self-modifying patch loop (same shape as testSMCPatchLoop).
	a := x86.NewAsm(base)
	a.XorRegReg32(x86.RAX, x86.RAX)
	a.XorRegReg32(x86.RCX, x86.RCX)
	top := a.NewLabel()
	a.Bind(top)
	site := a.Addr()
	a.AddRegImm64(x86.RAX, 1)
	a.MovRegImm64(x86.RBX, site+3)
	a.MovMemImm8(x86.M(x86.RBX, 0), 5)
	a.AddRegImm64(x86.RCX, 1)
	a.CmpRegImm64(x86.RCX, 3)
	a.Jcc(x86.CondL, top)
	a.Ret()
	smc := a.MustFinish()
	progs = append(progs, goldenProg{
		name:   "smc-patch-loop",
		setup:  func(eng emu.Engine) *emu.Machine { return rawMachine(eng, base, smc) },
		budget: 10_000,
	})

	// A call-heavy kernel: covers call/ret blocks and the StepSpecial
	// runtime-call boundary inside a golden trace.
	saved := workload.KernelIters
	workload.KernelIters = 2
	kernel, err := workload.BuildKernel("callheavy", false)
	workload.KernelIters = saved
	if err != nil {
		t.Fatal(err)
	}
	progs = append(progs, goldenProg{
		name: "callheavy-2iter",
		setup: func(eng emu.Engine) *emu.Machine {
			m := workload.NewMachine(nil)
			m.Engine = eng
			entry, err := loader.BuildImage(m, kernel.ELF, loader.Options{})
			if err != nil {
				t.Fatal(err)
			}
			m.RIP = entry
			return m
		},
		budget: 10_000_000,
	})
	return progs
}

// snapshotLine formats one pre-execution architectural snapshot:
// instruction index, address, flags, then all sixteen registers.
func snapshotLine(idx int, addr uint64, m *emu.Machine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %x %x", idx, addr, m.Flags)
	for _, r := range m.Regs {
		fmt.Fprintf(&b, " %x", r)
	}
	return b.String()
}

// recordTrace runs the program under the named engine with a tracer
// capturing a snapshot before every retired instruction.
func recordTrace(t *testing.T, p goldenProg, engine string) []string {
	t.Helper()
	m := p.setup(newEngine(t, engine))
	var lines []string
	m.Trace = func(inst *x86.Inst) {
		if len(lines) >= maxGoldenSnapshots {
			return
		}
		lines = append(lines, snapshotLine(len(lines), inst.Addr, m))
	}
	if err := m.Run(p.budget); err != nil {
		t.Fatalf("%s under %s: %v", p.name, engine, err)
	}
	return lines
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "emu_golden", name+".trace")
}

func loadGolden(t *testing.T, name string) []string {
	t.Helper()
	raw, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("missing golden trace (run with -update-golden to record): %v", err)
	}
	var lines []string
	for _, l := range strings.Split(string(raw), "\n") {
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		lines = append(lines, l)
	}
	return lines
}

// TestEngineGoldenTraces replays the committed per-instruction
// register+flag snapshots against every registered engine. Unlike the
// final-state parity tests, a regression here names the first
// diverging instruction. -update-golden re-records the corpus from the
// interpreter.
func TestEngineGoldenTraces(t *testing.T) {
	for _, p := range goldenPrograms(t) {
		t.Run(p.name, func(t *testing.T) {
			if *updateGolden {
				lines := recordTrace(t, p, "interp")
				var b strings.Builder
				fmt.Fprintf(&b, "# golden architectural trace: %s\n", p.name)
				b.WriteString("# format: idx addr flags rax rcx rdx rbx rsp rbp rsi rdi r8..r15 (hex)\n")
				for _, l := range lines {
					b.WriteString(l)
					b.WriteByte('\n')
				}
				if err := os.MkdirAll(filepath.Dir(goldenPath(p.name)), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(p.name), []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want := loadGolden(t, p.name)
			for _, engine := range emu.EngineNames() {
				got := recordTrace(t, p, engine)
				n := len(got)
				if len(want) < n {
					n = len(want)
				}
				diverged := false
				for i := 0; i < n; i++ {
					if got[i] != want[i] {
						t.Errorf("%s: first divergence at instruction %d:\ngolden: %s\n%s: %s",
							engine, i, want[i], engine, got[i])
						diverged = true
						break
					}
				}
				if !diverged && len(got) != len(want) {
					t.Errorf("%s: trace length %d, golden %d (diverged after common prefix)",
						engine, len(got), len(want))
				}
			}
		})
	}
}
