package enginetest_test

import (
	"testing"

	"e9patch/internal/emu"
	"e9patch/internal/emu/enginetest"
)

// TestEngineConformance runs the shared suite over every registered
// engine (the registry is populated by the workload package's blank
// imports). "interp" runs too: comparing the interpreter against a
// second interpreter run proves the reference itself is deterministic.
func TestEngineConformance(t *testing.T) {
	for _, name := range emu.EngineNames() {
		t.Run(name, func(t *testing.T) { enginetest.Run(t, name) })
	}
}
