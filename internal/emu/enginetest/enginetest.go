// Package enginetest is the cross-engine conformance suite: one set of
// behavioural tests run against every registered execution engine
// (emu.EngineNames), always comparing to the decode-per-step
// interpreter as the reference semantics. An engine is correct iff it
// is observationally identical to the interpreter — same registers,
// flags, RIP, exit code, counters, output, memory image, trace stream
// and errors — on every program here (DESIGN.md §13).
//
// Engine packages keep their engine-specific tests (chaining stats,
// flag-elision stats, speedup gates) next to the engine; everything
// that must hold for *all* engines lives here, so a new engine gets
// the full lattice by registering itself.
package enginetest

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"e9patch/internal/emu"
	"e9patch/internal/loader"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// finalState is everything observable about a finished machine.
type finalState struct {
	Regs     [16]uint64
	RIP      uint64
	Flags    uint64
	ExitCode uint64
	Counters emu.Counters
	Output   []uint64
}

func stateOf(m *emu.Machine) finalState {
	return finalState{
		Regs:     m.Regs,
		RIP:      m.RIP,
		Flags:    m.Flags,
		ExitCode: m.ExitCode,
		Counters: m.Counters,
		Output:   m.Output,
	}
}

func diffStates(t *testing.T, name, engine string, interp, under finalState) {
	t.Helper()
	if !reflect.DeepEqual(interp, under) {
		t.Errorf("%s: %s diverged from interp:\ninterp: %+v\n%s: %+v",
			name, engine, interp, engine, under)
	}
}

// newEngine instantiates a fresh engine under test. A fresh instance
// per run mirrors real use (one engine per machine) and keeps block
// caches from leaking between programs.
func newEngine(t *testing.T, name string) emu.Engine {
	t.Helper()
	eng, err := emu.NewEngineByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// runProgram executes an ELF image under the given engine (nil = the
// interpreter) and returns the machine.
func runProgram(t *testing.T, elf []byte, eng emu.Engine) *emu.Machine {
	t.Helper()
	m := workload.NewMachine(nil)
	workload.BindJit(m)
	m.Engine = eng
	entry, err := loader.BuildImage(m, elf, loader.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.RIP = entry
	if err := m.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

// rawMachine builds a machine with text written at base, no ELF.
func rawMachine(eng emu.Engine, base uint64, text []byte) *emu.Machine {
	m := emu.NewMachine()
	m.Engine = eng
	m.Mem.WriteBytes(base, text)
	m.SetupStack(workload.StackTop, workload.StackSize)
	m.RIP = base
	return m
}

// Run executes the full conformance suite against the named engine.
func Run(t *testing.T, engine string) {
	t.Run("profiles", func(t *testing.T) { testProfiles(t, engine) })
	t.Run("dromaeo", func(t *testing.T) { testDromaeo(t, engine) })
	t.Run("smc-patch-loop", func(t *testing.T) { testSMCPatchLoop(t, engine) })
	t.Run("smc-same-block", func(t *testing.T) { testSMCSameBlock(t, engine) })
	t.Run("mutating-tracer", func(t *testing.T) { testMutatingTracer(t, engine) })
	t.Run("budget-parity", func(t *testing.T) { testBudgetParity(t, engine) })
	t.Run("flag-stress", func(t *testing.T) { testFlagStress(t, engine) })
}

// testProfiles is the acceptance gate: for every Table 1 profile, the
// engine and the interpreter produce byte-identical Counters,
// ExitCode, registers, flags and output on the profile's
// (density-tuned) kernel. Non-SPEC rows have no Time% kernel in the
// paper; they run the branchy archetype with their own tuning so every
// profile still contributes a distinct workload.
func testProfiles(t *testing.T, engine string) {
	saved := workload.KernelIters
	workload.KernelIters = 2000
	defer func() { workload.KernelIters = saved }()

	for _, p := range workload.AllProfiles() {
		kernel := p.Kernel
		if kernel == "" {
			kernel = "branchy"
		}
		prog, err := workload.BuildKernelTuned(kernel, p.Kind == workload.KindPIE, workload.TuningFor(p))
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		interp := runProgram(t, prog.ELF, nil)
		under := runProgram(t, prog.ELF, newEngine(t, engine))
		diffStates(t, p.Name, engine, stateOf(interp), stateOf(under))
		if addr, diff := emu.DiffMemory(interp.Mem, under.Mem); diff {
			t.Errorf("%s: memory diverged at %#x", p.Name, addr)
		}
		if under.Counters.Instructions == 0 {
			t.Fatalf("%s: kernel retired no instructions", p.Name)
		}
	}
}

// testDromaeo covers the runtime-call-heavy Figure 4 programs (JIT
// episodes exercise StepSpecial between blocks).
func testDromaeo(t *testing.T, engine string) {
	saved := workload.KernelIters
	workload.KernelIters = 1500
	defer func() { workload.KernelIters = saved }()

	for _, s := range workload.DromaeoSuites {
		for _, jit := range []int{8, 55} {
			prog, err := workload.BuildDromaeo(s, true, jit)
			if err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			interp := runProgram(t, prog.ELF, nil)
			under := runProgram(t, prog.ELF, newEngine(t, engine))
			diffStates(t, s.Name, engine, stateOf(interp), stateOf(under))
		}
	}
}

// testSMCPatchLoop overwrites an instruction's immediate from a later
// iteration's perspective: iteration 0 executes `add rax, 1`, then the
// loop body patches the immediate byte to 5, so iterations 1 and 2
// must add 5. Every engine has to observe the new bytes; caching
// engines must flush translated code.
func testSMCPatchLoop(t *testing.T, engine string) {
	const base = 0x401000
	a := x86.NewAsm(base)
	a.XorRegReg32(x86.RAX, x86.RAX)
	a.XorRegReg32(x86.RCX, x86.RCX)
	top := a.NewLabel()
	a.Bind(top)
	site := a.Addr()
	a.AddRegImm64(x86.RAX, 1) // imm low byte at site+3, patched below
	a.MovRegImm64(x86.RBX, site+3)
	a.MovMemImm8(x86.M(x86.RBX, 0), 5)
	a.AddRegImm64(x86.RCX, 1)
	a.CmpRegImm64(x86.RCX, 3)
	a.Jcc(x86.CondL, top)
	a.Ret()
	text := a.MustFinish()

	interp := rawMachine(nil, base, text)
	if err := interp.Run(10_000); err != nil {
		t.Fatal(err)
	}
	under := rawMachine(newEngine(t, engine), base, text)
	if err := under.Run(10_000); err != nil {
		t.Fatal(err)
	}

	if interp.ExitCode != 11 { // 1 + 5 + 5
		t.Errorf("interp exit = %d, want 11", interp.ExitCode)
	}
	diffStates(t, "patch-loop", engine, stateOf(interp), stateOf(under))
}

// testSMCSameBlock stores a hlt opcode over the very next instruction
// in the same straight-line run. The interpreter's per-step fetch sees
// the new byte immediately; caching engines must abort the current
// block mid-flight and re-translate, or they would run the stale tail
// (`mov rax, 99`) and exit 99 instead of 7.
func testSMCSameBlock(t *testing.T, engine string) {
	const base = 0x401000
	a := x86.NewAsm(base)
	a.MovRegImm32(x86.RAX, 7)
	movOff := a.Len()
	a.MovRegImm64(x86.RBX, 0) // imm patched to siteAddr after assembly
	a.MovMemImm8(x86.M(x86.RBX, 0), 0xF4)
	siteAddr := a.Addr()
	a.Nop() // becomes hlt before it executes
	a.MovRegImm32(x86.RAX, 99)
	a.Ret()
	text := a.MustFinish()
	binary.LittleEndian.PutUint64(text[movOff+2:], siteAddr)

	interp := rawMachine(nil, base, text)
	if err := interp.Run(10_000); err != nil {
		t.Fatal(err)
	}
	under := rawMachine(newEngine(t, engine), base, text)
	if err := under.Run(10_000); err != nil {
		t.Fatal(err)
	}

	if interp.ExitCode != 7 {
		t.Errorf("interp exit = %d, want 7", interp.ExitCode)
	}
	diffStates(t, "same-block", engine, stateOf(interp), stateOf(under))
}

// testMutatingTracer drives the engine with a tracer that corrupts the
// immediate of the first add-immediate instruction it sees at each
// address. The interpreter re-decodes every step, so the corruption
// applies exactly once per address; caching engines must hand the
// tracer (and execute) a private copy, or the mutation would be baked
// into the cache and every later iteration would diverge.
func testMutatingTracer(t *testing.T, engine string) {
	saved := workload.KernelIters
	workload.KernelIters = 500
	defer func() { workload.KernelIters = saved }()
	prog, err := workload.BuildKernel("branchy", false)
	if err != nil {
		t.Fatal(err)
	}

	run := func(eng emu.Engine) (*emu.Machine, []uint64) {
		m := workload.NewMachine(nil)
		m.Engine = eng
		entry, err := loader.BuildImage(m, prog.ELF, loader.Options{})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]bool{}
		var addrs []uint64
		m.Trace = func(inst *x86.Inst) {
			addrs = append(addrs, inst.Addr)
			// First sight of an `add r, imm8` at this address: bump the
			// immediate. Affects exactly this one execution.
			if !seen[inst.Addr] && inst.Opcode == 0x83 && (inst.ModRM>>3)&7 == 0 && inst.ImmSize == 1 {
				seen[inst.Addr] = true
				inst.Bytes[inst.ImmOff]++
			}
		}
		m.RIP = entry
		if err := m.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		return m, addrs
	}

	interp, interpAddrs := run(nil)
	under, underAddrs := run(newEngine(t, engine))
	diffStates(t, "mutating-tracer", engine, stateOf(interp), stateOf(under))
	if !reflect.DeepEqual(interpAddrs, underAddrs) {
		t.Errorf("trace address streams diverged: %d vs %d entries",
			len(interpAddrs), len(underAddrs))
	}
}

// testBudgetParity: exhausting the instruction budget must produce the
// identical error (message included) and identical machine state under
// every engine, for budgets landing at arbitrary points within and
// between blocks.
func testBudgetParity(t *testing.T, engine string) {
	saved := workload.KernelIters
	workload.KernelIters = 5000
	defer func() { workload.KernelIters = saved }()
	prog, err := workload.BuildKernel("callheavy", false)
	if err != nil {
		t.Fatal(err)
	}

	for _, budget := range []uint64{1, 7, 100, 1001, 4096} {
		run := func(eng emu.Engine) (*emu.Machine, error) {
			m := workload.NewMachine(nil)
			m.Engine = eng
			entry, err := loader.BuildImage(m, prog.ELF, loader.Options{})
			if err != nil {
				t.Fatal(err)
			}
			m.RIP = entry
			return m, m.Run(budget)
		}
		interp, ierr := run(nil)
		under, uerr := run(newEngine(t, engine))
		if ierr == nil || uerr == nil {
			t.Fatalf("budget %d: expected both engines to exhaust (interp=%v %s=%v)",
				budget, ierr, engine, uerr)
		}
		if !errors.Is(uerr, emu.ErrMaxInstructions) {
			t.Errorf("budget %d: %s error %v is not ErrMaxInstructions", budget, engine, uerr)
		}
		if ierr.Error() != uerr.Error() {
			t.Errorf("budget %d: error mismatch:\ninterp: %v\n%s: %v", budget, ierr, engine, uerr)
		}
		diffStates(t, "budget", engine, stateOf(interp), stateOf(under))
	}
}

// flagStressPrograms are tiny raw programs aimed squarely at lazy-flag
// machinery: every one ends with architectural flags (and registers
// derived from flags) that depend on correctly materializing partial
// flag state across adc/sbb/inc/shift/cmc/setcc/pushfq boundaries.
func flagStressPrograms(base uint64) map[string][]byte {
	progs := map[string][]byte{}

	// Carry chains through adc/sbb, including the sbb-self idiom.
	a := x86.NewAsm(base)
	a.MovRegImm64(x86.RAX, ^uint64(0))
	a.XorRegReg32(x86.RBX, x86.RBX)
	a.AddRegImm64(x86.RAX, 1)       // CF=1 ZF=1
	a.AdcRegImm64(x86.RBX, 0)       // rbx = 1: carry consumed
	a.AdcRegReg64(x86.RBX, x86.RBX) // CF=0 now: rbx = 2
	a.MovRegImm64(x86.RCX, 5)
	a.CmpRegImm64(x86.RBX, 3)       // 2 < 3: CF=1
	a.SbbRegReg64(x86.RCX, x86.RCX) // rcx = -1
	a.SbbRegImm64(x86.RAX, -2)      // rax = 0 - (-2) - CF(1) = 1
	a.Ret()
	progs["adc-sbb-chain"] = a.MustFinish()

	// inc preserves CF (the classic partial-flag hazard).
	a = x86.NewAsm(base)
	a.MovRegImm64(x86.RAX, ^uint64(0))
	a.AddRegImm64(x86.RAX, 1)       // CF=1
	a.IncMem32(x86.M(x86.RSP, -16)) // inc must not clobber CF
	a.AdcRegImm64(x86.RBX, 0)       // rbx = 1 iff CF survived
	a.Pushfq()
	a.PopReg(x86.RDX) // architectural flags snapshot
	a.Ret()
	progs["inc-preserves-cf"] = a.MustFinish()

	// Shifts: CF from the last bit out, zero-count leaves flags alone.
	a = x86.NewAsm(base)
	a.MovRegImm64(x86.RAX, 0x8000000000000001)
	a.ShlRegImm64(x86.RAX, 1)   // CF=1 (MSB out)
	a.Setcc(x86.CondB, x86.RBX) // bl = CF
	a.XorRegReg32(x86.RCX, x86.RCX)
	a.ShrRegCL64(x86.RAX)       // count 0: all flags preserved
	a.Setcc(x86.CondB, x86.RDX) // still the shl carry
	a.Pushfq()
	a.PopReg(x86.RSI)
	a.Ret()
	progs["shift-flags"] = a.MustFinish()

	// cmc/clc/stc drive CF without an ALU result backing it.
	a = x86.NewAsm(base)
	a.Clc()
	a.AdcRegImm64(x86.RAX, 1) // rax = 1
	a.Stc()
	a.AdcRegImm64(x86.RAX, 1) // rax = 3
	a.Cmc()                   // CF was 0 → 1
	a.AdcRegImm64(x86.RAX, 0) // rax = 4
	a.Setcc(x86.CondB, x86.RBX)
	a.Pushfq()
	a.PopReg(x86.RDX)
	a.Ret()
	progs["cmc-clc-stc"] = a.MustFinish()

	// setcc over the whole condition lattice after one cmp, into
	// low-byte registers that need (sil) and don't need (bl, r9b) REX.
	a = x86.NewAsm(base)
	a.MovRegImm64(x86.RAX, 5)
	a.CmpRegImm64(x86.RAX, 9) // 5-9: CF=1 SF=1 OF=0 ZF=0
	a.Setcc(x86.CondB, x86.RBX)
	a.Setcc(x86.CondLE, x86.RCX)
	a.Setcc(x86.CondS, x86.RDX)
	a.Setcc(x86.CondO, x86.RSI)
	a.Setcc(x86.CondP, x86.R9)
	a.Setcc(x86.CondNE, x86.R10)
	a.Ret()
	progs["setcc-lattice"] = a.MustFinish()

	// pushfq/popfq round trip with a flipped CF bit in between.
	a = x86.NewAsm(base)
	a.MovRegImm64(x86.RAX, ^uint64(0))
	a.AddRegImm64(x86.RAX, 1) // CF=1 ZF=1 PF=1 AF=1
	a.Pushfq()
	a.PopReg(x86.RBX)
	a.XorRegImm64(x86.RBX, 1) // flip CF in the image
	a.PushReg(x86.RBX)
	a.Popfq()                   // architectural CF now 0
	a.AdcRegImm64(x86.RCX, 0)   // rcx stays 0
	a.Setcc(x86.CondE, x86.RDX) // ZF survived the round trip
	a.Ret()
	progs["pushfq-popfq"] = a.MustFinish()

	// neg's carry (CF = src != 0) and imul's overflow-driven CF/OF.
	a = x86.NewAsm(base)
	a.MovRegImm64(x86.RAX, 3)
	a.NegReg64(x86.RAX)                             // CF=1
	a.AdcRegImm64(x86.RBX, 0)                       // rbx = 1
	a.ImulRegRegImm32(x86.RCX, x86.RAX, 0x40000000) // overflows: CF=OF=1
	a.Setcc(x86.CondO, x86.RDX)
	a.Pushfq()
	a.PopReg(x86.RSI)
	a.Ret()
	progs["neg-imul"] = a.MustFinish()

	return progs
}

// testFlagStress runs the lazy-flag stress programs: partial-flag
// writers immediately followed by flag consumers, so any engine that
// elides or defers flag computation must materialize exactly the
// interpreter's flag image.
func testFlagStress(t *testing.T, engine string) {
	const base = 0x401000
	for name, text := range flagStressPrograms(base) {
		interp := rawMachine(nil, base, text)
		if err := interp.Run(10_000); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		under := rawMachine(newEngine(t, engine), base, text)
		if err := under.Run(10_000); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		diffStates(t, name, engine, stateOf(interp), stateOf(under))
		if addr, diff := emu.DiffMemory(interp.Mem, under.Mem); diff {
			t.Errorf("%s: memory diverged at %#x", name, addr)
		}
	}
}
