package emu

import (
	"fmt"
	"sort"
)

// This file is the memory seam for execution engines that bypass the
// interpreter's per-byte access loops (internal/emu/ir). The exported
// operations preserve the interpreter's observable semantics exactly:
// the same write-barrier firing point (before any byte is modified),
// the same fault errors naming the first unmapped byte, and the same
// page-materialisation behaviour on stores.

// ReadInt reads an n-byte little-endian integer (n <= 8). The common
// single-page case costs one page lookup; fault errors are identical to
// the per-byte path (the first unmapped byte is named).
func (m *Memory) ReadInt(addr uint64, n int) (uint64, error) {
	off := addr % PageSize
	if off+uint64(n) <= PageSize {
		p := m.pages[addr/PageSize]
		if p == nil {
			return 0, fmt.Errorf("emu: read fault at %#x", addr)
		}
		var v uint64
		for i := 0; i < n; i++ {
			v |= uint64(p[off+uint64(i)]) << (8 * uint(i))
		}
		return v, nil
	}
	return m.read(addr, n)
}

// WriteInt stores the low n bytes of v little-endian, firing the write
// barrier first and materialising pages as needed, exactly as the
// interpreter's store path does.
func (m *Memory) WriteInt(addr uint64, v uint64, n int) error {
	return m.write(addr, v, n)
}

// PageSlice returns the backing bytes of the page containing addr, or
// nil when the page is unmapped and create is false. The slice aliases
// emulator memory and stays valid for the lifetime of the Memory
// (pages are never recycled), so engines may cache it as a TLB entry.
// Callers that store through the slice must call FireBarrier first,
// exactly where Memory's own write path fires it.
func (m *Memory) PageSlice(addr uint64, create bool) []byte {
	p := m.pageFor(addr, create)
	if p == nil {
		return nil
	}
	return p[:]
}

// FireBarrier runs the write barrier for a pending store of n bytes at
// addr (a no-op when no barrier is installed). Engines that write
// through PageSlice call this to keep translation-cache invalidation
// semantics identical to the interpreter.
func (m *Memory) FireBarrier(addr uint64, n int) {
	if m.barrier != nil {
		m.barrier(addr, uint64(n))
	}
}

// PageIndices returns the sorted indices of all mapped pages (the page
// at index i covers [i*PageSize, (i+1)*PageSize)).
func (m *Memory) PageIndices() []uint64 {
	idx := make([]uint64, 0, len(m.pages))
	for i := range m.pages {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	return idx
}

// DiffMemory compares two address spaces byte for byte and returns the
// address of the first differing byte. Unmapped pages read as zero, so
// a mapped all-zero page equals an unmapped one: engines that merely
// materialise pages differently do not spuriously diverge. The second
// result is false when the spaces are identical.
func DiffMemory(a, b *Memory) (uint64, bool) {
	seen := make(map[uint64]struct{}, len(a.pages)+len(b.pages))
	idx := make([]uint64, 0, len(a.pages)+len(b.pages))
	for i := range a.pages {
		seen[i] = struct{}{}
		idx = append(idx, i)
	}
	for i := range b.pages {
		if _, ok := seen[i]; !ok {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(x, y int) bool { return idx[x] < idx[y] })
	for _, i := range idx {
		pa, _ := a.ReadBytes(i*PageSize, PageSize)
		pb, _ := b.ReadBytes(i*PageSize, PageSize)
		for off := 0; off < PageSize; off++ {
			if pa[off] != pb[off] {
				return i*PageSize + uint64(off), true
			}
		}
	}
	return 0, false
}
