package emu

import (
	"testing"

	"e9patch/internal/x86"
)

// rawProgram loads raw machine code and runs it to completion.
func rawProgram(t *testing.T, code []byte) *Machine {
	t.Helper()
	m := NewMachine()
	m.Mem.WriteBytes(testBase, code)
	m.SetupStack(stackTop, 0x10000)
	m.Mem.Map(heapBase, 0x2000)
	m.RIP = testBase
	if err := m.Run(10000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestCmovcc(t *testing.T) {
	// cmovl rax, rbx taken and not taken.
	for _, tc := range []struct {
		a, b uint64
		want uint64
	}{
		{5, 10, 99}, // 5 < 10: cmov taken
		{10, 5, 1},  // not taken: rax keeps value
	} {
		a := x86.NewAsm(testBase)
		a.MovRegImm64(x86.RCX, tc.a)
		a.MovRegImm64(x86.RDX, tc.b)
		a.MovRegImm64(x86.RAX, 1)
		a.MovRegImm64(x86.RBX, 99)
		a.CmpRegReg64(x86.RCX, x86.RDX)
		// cmovl rax, rbx = 48 0F 4C C3
		a.Raw(0x48, 0x0F, 0x4C, 0xC3)
		a.Ret()
		m := rawProgram(t, a.MustFinish())
		if m.ExitCode != tc.want {
			t.Errorf("cmovl with %d,%d: rax=%d want %d", tc.a, tc.b, m.ExitCode, tc.want)
		}
	}
}

func TestSetcc(t *testing.T) {
	a := x86.NewAsm(testBase)
	a.MovRegImm64(x86.RCX, 7)
	a.CmpRegImm64(x86.RCX, 7)
	a.XorRegReg32(x86.RAX, x86.RAX)
	a.Raw(0x0F, 0x94, 0xC0) // sete al
	a.Ret()
	m := rawProgram(t, a.MustFinish())
	if m.ExitCode != 1 {
		t.Errorf("sete: rax=%d", m.ExitCode)
	}
}

func TestXchg(t *testing.T) {
	a := x86.NewAsm(testBase)
	a.MovRegImm64(x86.RAX, 11)
	a.MovRegImm64(x86.RBX, 22)
	a.Raw(0x48, 0x87, 0xD8) // xchg rax, rbx
	a.ShlRegImm64(x86.RAX, 8)
	a.AddRegReg64(x86.RAX, x86.RBX)
	a.Ret()
	m := rawProgram(t, a.MustFinish())
	if m.ExitCode != 22<<8|11 {
		t.Errorf("xchg: %#x", m.ExitCode)
	}
}

func TestDivMul(t *testing.T) {
	a := x86.NewAsm(testBase)
	a.MovRegImm64(x86.RAX, 1000)
	a.MovRegImm64(x86.RCX, 7)
	a.XorRegReg32(x86.RDX, x86.RDX)
	a.Raw(0x48, 0xF7, 0xF1) // div rcx -> rax=142 rdx=6
	a.ShlRegImm64(x86.RAX, 8)
	a.AddRegReg64(x86.RAX, x86.RDX)
	a.Ret()
	m := rawProgram(t, a.MustFinish())
	if m.ExitCode != 142<<8|6 {
		t.Errorf("div: %#x", m.ExitCode)
	}

	// mul rcx: rdx:rax = rax * rcx with large operands.
	a2 := x86.NewAsm(testBase)
	a2.MovRegImm64(x86.RAX, 1<<40)
	a2.MovRegImm64(x86.RCX, 1<<30)
	a2.Raw(0x48, 0xF7, 0xE1)         // mul rcx
	a2.MovRegReg64(x86.RAX, x86.RDX) // high half = 1<<(70-64) = 64
	a2.Ret()
	m2 := rawProgram(t, a2.MustFinish())
	if m2.ExitCode != 64 {
		t.Errorf("mul high: %d", m2.ExitCode)
	}
}

func TestCdqeCqo(t *testing.T) {
	a := x86.NewAsm(testBase)
	a.MovRegImm32(x86.RAX, 0xFFFFFFFF) // eax = -1 (32-bit)
	a.Raw(0x48, 0x98)                  // cdqe: rax = sign-extend(eax)
	a.Ret()
	m := rawProgram(t, a.MustFinish())
	if m.ExitCode != ^uint64(0) {
		t.Errorf("cdqe: %#x", m.ExitCode)
	}

	a2 := x86.NewAsm(testBase)
	a2.MovRegImm64(x86.RAX, ^uint64(0)) // -1
	a2.Raw(0x48, 0x99)                  // cqo: rdx = -1
	a2.MovRegReg64(x86.RAX, x86.RDX)
	a2.Ret()
	m2 := rawProgram(t, a2.MustFinish())
	if m2.ExitCode != ^uint64(0) {
		t.Errorf("cqo: %#x", m2.ExitCode)
	}
}

func TestMovsxMovzx16(t *testing.T) {
	a := x86.NewAsm(testBase)
	a.MovRegImm64(x86.RBX, heapBase)
	a.MovMemImm32(x86.M(x86.RBX, 0), 0xFFFF8001)
	a.Raw(0x48, 0x0F, 0xBF, 0x03) // movsx rax, word [rbx] = -32767
	a.NegReg64(x86.RAX)
	a.Ret()
	m := rawProgram(t, a.MustFinish())
	if m.ExitCode != 32767 {
		t.Errorf("movsx16: %d", m.ExitCode)
	}
}

func TestLeave(t *testing.T) {
	a := x86.NewAsm(testBase)
	a.PushReg(x86.RBP)
	a.MovRegReg64(x86.RBP, x86.RSP)
	a.SubRegImm64(x86.RSP, 64) // frame
	a.MovRegImm64(x86.RAX, 5)
	a.Raw(0xC9) // leave
	a.Ret()
	m := rawProgram(t, a.MustFinish())
	if m.ExitCode != 5 {
		t.Errorf("leave: %d", m.ExitCode)
	}
	if m.Regs[x86.RSP] != stackTop-8+8 {
		t.Errorf("rsp after leave/ret: %#x", m.Regs[x86.RSP])
	}
}

func TestShiftVariants(t *testing.T) {
	// sar on a negative number.
	a := x86.NewAsm(testBase)
	a.MovRegImm64(x86.RAX, ^uint64(0)-0xFF) // -256
	a.Raw(0x48, 0xC1, 0xF8, 0x04)           // sar rax, 4 -> -16
	a.NegReg64(x86.RAX)
	a.Ret()
	m := rawProgram(t, a.MustFinish())
	if m.ExitCode != 16 {
		t.Errorf("sar: %d", m.ExitCode)
	}

	// rol/ror round trip.
	a2 := x86.NewAsm(testBase)
	a2.MovRegImm64(x86.RAX, 0x1234_5678_9ABC_DEF0)
	a2.Raw(0x48, 0xC1, 0xC0, 0x10) // rol rax, 16
	a2.Raw(0x48, 0xC1, 0xC8, 0x10) // ror rax, 16
	a2.Ret()
	m2 := rawProgram(t, a2.MustFinish())
	if m2.ExitCode != 0x1234_5678_9ABC_DEF0 {
		t.Errorf("rol/ror: %#x", m2.ExitCode)
	}

	// shr by cl.
	a3 := x86.NewAsm(testBase)
	a3.MovRegImm64(x86.RAX, 1<<20)
	a3.MovRegImm32(x86.RCX, 10)
	a3.ShrRegCL64(x86.RAX)
	a3.Ret()
	m3 := rawProgram(t, a3.MustFinish())
	if m3.ExitCode != 1<<10 {
		t.Errorf("shr cl: %#x", m3.ExitCode)
	}
}

func TestAdcSbb(t *testing.T) {
	// 128-bit add via adc.
	a := x86.NewAsm(testBase)
	a.MovRegImm64(x86.RAX, ^uint64(0)) // lo a
	a.MovRegImm64(x86.RBX, 1)          // lo b
	a.MovRegImm64(x86.RCX, 2)          // hi a
	a.MovRegImm64(x86.RDX, 3)          // hi b
	a.AddRegReg64(x86.RAX, x86.RBX)    // sets CF
	a.Raw(0x48, 0x11, 0xD1)            // adc rcx, rdx -> 2+3+1 = 6
	a.MovRegReg64(x86.RAX, x86.RCX)
	a.Ret()
	m := rawProgram(t, a.MustFinish())
	if m.ExitCode != 6 {
		t.Errorf("adc: %d", m.ExitCode)
	}
}

func TestIncDecPreserveCF(t *testing.T) {
	a := x86.NewAsm(testBase)
	a.MovRegImm64(x86.RAX, ^uint64(0))
	a.AddRegImm64(x86.RAX, 1) // CF=1
	a.MovRegImm64(x86.RBX, 5)
	a.Raw(0x48, 0xFF, 0xC3) // inc rbx (must keep CF)
	a.MovRegImm32(x86.RAX, 0)
	a.Raw(0x48, 0x11, 0xC0) // adc rax, rax -> CF(1)
	a.Ret()
	m := rawProgram(t, a.MustFinish())
	if m.ExitCode != 1 {
		t.Errorf("inc clobbered CF: rax=%d", m.ExitCode)
	}
}

func TestPushPopRM(t *testing.T) {
	a := x86.NewAsm(testBase)
	a.MovRegImm64(x86.RBX, heapBase)
	a.MovMemImm32Sx64(x86.M(x86.RBX, 0), 0x77)
	a.Raw(0xFF, 0x33)       // push qword [rbx]
	a.Raw(0x8F, 0x43, 0x08) // pop qword [rbx+8]
	a.MovRegMem64(x86.RAX, x86.M(x86.RBX, 8))
	a.Ret()
	m := rawProgram(t, a.MustFinish())
	if m.ExitCode != 0x77 {
		t.Errorf("push/pop r/m: %#x", m.ExitCode)
	}
}
