package emu

import (
	"fmt"

	"e9patch/internal/x86"
)

// Runtime-call bindings. Workload programs reach native services
// (output, exit, allocation) by calling well-known virtual addresses;
// the Step loop intercepts those addresses before fetching. This models
// the libc boundary: the paper's programs call malloc/printf, ours call
// these bindings.

// BindOutput makes addr an "emit one value" call: the rdi argument is
// appended to m.Output. Differential tests compare Output streams.
func BindOutput(m *Machine, addr uint64) {
	m.Runtime[addr] = func(m *Machine) error {
		m.Output = append(m.Output, m.Regs[x86.RDI])
		return nil
	}
}

// BindExit makes addr an exit call: rdi becomes the exit code and the
// machine halts.
func BindExit(m *Machine, addr uint64) {
	m.Runtime[addr] = func(m *Machine) error {
		m.ExitCode = m.Regs[x86.RDI]
		m.halted = true
		return nil
	}
}

// BumpAllocator is the plain (non-hardened) heap: a bump allocator
// with 16-byte alignment, the baseline against which the low-fat
// allocator is swapped in (the paper swaps glibc malloc for
// liblowfat.so via LD_PRELOAD).
type BumpAllocator struct {
	Base uint64
	End  uint64
	next uint64
}

// NewBumpAllocator returns an allocator carving [base, base+size).
func NewBumpAllocator(base, size uint64) *BumpAllocator {
	return &BumpAllocator{Base: base, End: base + size, next: base}
}

// Alloc returns a 16-byte-aligned block of the given size.
func (b *BumpAllocator) Alloc(m *Machine, size uint64) (uint64, error) {
	size = (size + 15) &^ 15
	if b.next+size > b.End {
		return 0, fmt.Errorf("emu: heap exhausted (%d bytes requested)", size)
	}
	p := b.next
	b.next += size
	m.Mem.Map(p, size)
	return p, nil
}

// BindMalloc makes addr a malloc(rdi) call backed by the bump
// allocator; free is a no-op (BindNop).
func BindMalloc(m *Machine, addr uint64, heap *BumpAllocator) {
	m.Runtime[addr] = func(m *Machine) error {
		p, err := heap.Alloc(m, m.Regs[x86.RDI])
		if err != nil {
			return err
		}
		m.Regs[x86.RAX] = p
		return nil
	}
}

// BindNop makes addr a no-op runtime call (e.g. free).
func BindNop(m *Machine, addr uint64) {
	m.Runtime[addr] = func(m *Machine) error { return nil }
}
