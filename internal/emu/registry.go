package emu

import (
	"fmt"
	"sort"
)

// EngineFactory constructs a fresh engine instance. A factory may
// return nil: a nil Engine selects the built-in decode-per-step
// interpreter (Machine.Run's fallback loop).
type EngineFactory func() Engine

// engineFactories is the registry of named execution engines. Engine
// packages self-register from init (internal/emu/tbc, internal/emu/ir)
// so that tooling — workload.NewMachine, cmd/e9bench -engine, the
// enginetest conformance suite — can enumerate and instantiate every
// engine without emu importing them (which would cycle).
var engineFactories = map[string]EngineFactory{
	"interp": func() Engine { return nil },
}

// RegisterEngine adds a named engine factory. It is called from engine
// package init functions; duplicate names are a programming error.
func RegisterEngine(name string, f EngineFactory) {
	if _, dup := engineFactories[name]; dup {
		panic(fmt.Sprintf("emu: engine %q registered twice", name))
	}
	if f == nil {
		panic(fmt.Sprintf("emu: engine %q registered with nil factory", name))
	}
	engineFactories[name] = f
}

// NewEngineByName instantiates a registered engine. The returned Engine
// is nil (without error) for "interp": assigning it to Machine.Engine
// selects the interpreter loop.
func NewEngineByName(name string) (Engine, error) {
	f, ok := engineFactories[name]
	if !ok {
		return nil, fmt.Errorf("emu: unknown engine %q (registered: %v)", name, EngineNames())
	}
	return f(), nil
}

// EngineNames returns the sorted names of all registered engines. The
// conformance suite runs over exactly this list.
func EngineNames() []string {
	names := make([]string, 0, len(engineFactories))
	for n := range engineFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
