package emu

import (
	"math/bits"

	"e9patch/internal/x86"
)

// setFlag sets or clears one RFLAGS bit.
func (m *Machine) setFlag(bit uint64, on bool) {
	if on {
		m.Flags |= bit
	} else {
		m.Flags &^= bit
	}
}

// flagBit returns 1 if the flag is set, else 0.
func (m *Machine) flagBit(bit uint64) uint64 {
	if m.Flags&bit != 0 {
		return 1
	}
	return 0
}

// setResultFlags updates ZF, SF and PF from a (masked) result.
func (m *Machine) setResultFlags(res uint64, w int) {
	res &= maskFor(w)
	m.setFlag(FlagZF, res == 0)
	m.setFlag(FlagSF, res>>(8*uint(w)-1)&1 == 1)
	m.setFlag(FlagPF, bits.OnesCount8(uint8(res))%2 == 0)
}

// setLogicFlags is setResultFlags plus CF=OF=0 (and/or/xor/test).
func (m *Machine) setLogicFlags(res uint64, w int) {
	m.setResultFlags(res, w)
	m.setFlag(FlagCF, false)
	m.setFlag(FlagOF, false)
	m.setFlag(FlagAF, false)
}

// addFlags computes a+b+cin with full flag updates, returning the
// masked result.
func (m *Machine) addFlags(a, b, cin uint64, w int) uint64 {
	mask := maskFor(w)
	a &= mask
	b &= mask
	var res uint64
	var carry bool
	if w == 8 {
		var c uint64
		res, c = bits.Add64(a, b, cin)
		carry = c != 0
	} else {
		full := a + b + cin
		res = full & mask
		carry = full > mask
	}
	sign := uint(8*w - 1)
	m.setResultFlags(res, w)
	m.setFlag(FlagCF, carry)
	m.setFlag(FlagOF, ((a^res)&(b^res))>>sign&1 == 1)
	m.setFlag(FlagAF, ((a^b^res)>>4)&1 == 1)
	return res
}

// subFlags computes a-b-cin with full flag updates, returning the
// masked result.
func (m *Machine) subFlags(a, b, cin uint64, w int) uint64 {
	mask := maskFor(w)
	a &= mask
	b &= mask
	var res uint64
	var borrow bool
	if w == 8 {
		var c uint64
		res, c = bits.Sub64(a, b, cin)
		borrow = c != 0
	} else {
		full := a - b - cin
		res = full & mask
		borrow = a < b+cin
	}
	sign := uint(8*w - 1)
	m.setResultFlags(res, w)
	m.setFlag(FlagCF, borrow)
	m.setFlag(FlagOF, ((a^b)&(a^res))>>sign&1 == 1)
	m.setFlag(FlagAF, ((a^b^res)>>4)&1 == 1)
	return res
}

// incFlags is add 1 preserving CF.
func (m *Machine) incFlags(v uint64, w int) uint64 {
	cf := m.Flags & FlagCF
	res := m.addFlags(v, 1, 0, w)
	m.Flags = m.Flags&^FlagCF | cf
	return res
}

// decFlags is sub 1 preserving CF.
func (m *Machine) decFlags(v uint64, w int) uint64 {
	cf := m.Flags & FlagCF
	res := m.subFlags(v, 1, 0, w)
	m.Flags = m.Flags&^FlagCF | cf
	return res
}

// imulFlags computes the signed two-operand product with CF/OF.
func (m *Machine) imulFlags(a, b uint64, w int) uint64 {
	sw := uint(64 - 8*w)
	sa := int64(a<<sw) >> sw
	sb := int64(b<<sw) >> sw
	prod := sa * sb
	res := uint64(prod) & maskFor(w)
	truncated := int64(res<<sw)>>sw != prod
	m.setResultFlags(res, w)
	m.setFlag(FlagCF, truncated)
	m.setFlag(FlagOF, truncated)
	return res
}

// cond evaluates a condition code against RFLAGS.
func (m *Machine) cond(cc x86.Cond) bool {
	var v bool
	switch cc &^ 1 {
	case x86.CondO:
		v = m.Flags&FlagOF != 0
	case x86.CondB:
		v = m.Flags&FlagCF != 0
	case x86.CondE:
		v = m.Flags&FlagZF != 0
	case x86.CondBE:
		v = m.Flags&(FlagCF|FlagZF) != 0
	case x86.CondS:
		v = m.Flags&FlagSF != 0
	case x86.CondP:
		v = m.Flags&FlagPF != 0
	case x86.CondL:
		v = (m.Flags&FlagSF != 0) != (m.Flags&FlagOF != 0)
	case x86.CondLE:
		v = m.Flags&FlagZF != 0 || (m.Flags&FlagSF != 0) != (m.Flags&FlagOF != 0)
	}
	if cc&1 == 1 {
		return !v
	}
	return v
}
