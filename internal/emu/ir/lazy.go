package ir

import (
	"math/bits"

	"e9patch/internal/emu"
	"e9patch/internal/x86"
)

// Lazy EFLAGS. Almost every x86 instruction writes the arithmetic
// flags and almost none of them are ever read: the interpreter pays
// for ZF/SF/CF/OF/PF/AF (parity included) on every ALU instruction,
// but only a branch, setcc, cmov, adc/sbb, pushf or an explicit flag
// twiddle actually consumes them. The IR engine therefore records only
// the *producer* — which operation last defined the flags, with its
// operands and width — and derives individual flag bits on demand at
// the consumer. This is QEMU's cc_op scheme.
//
// The record kinds mirror the interpreter's flag-writing families
// exactly; materialization calls the interpreter's own flag functions
// (emu.AddWithFlags and friends), so a deferred computation lands
// bit-identically to what Machine.Step would have produced at the same
// instruction.

const (
	// kEager: no deferred computation; Machine.Flags is authoritative.
	kEager = iota
	// kAdd: a + b + cin (add/adc); full flag set.
	kAdd
	// kSub: a - b - cin (sub/sbb/cmp/neg); full flag set.
	kSub
	// kLogic: and/or/xor/test; ZF/SF/PF from res, CF=OF=AF=0.
	kLogic
	// kInc: a + 1 with CF preserved from before (aux bit 0).
	kInc
	// kDec: a - 1 with CF preserved from before (aux bit 0).
	kDec
	// kShift: shl/shr/sar/rol/ror with count >= 1; ZF/SF/PF from res,
	// CF in aux bit 0, OF modelled as 0, AF preserved (aux bit 1).
	kShift
	// kImul: two-operand signed multiply; ZF/SF/PF from res, CF=OF in
	// aux bit 0, AF preserved (aux bit 1).
	kImul
)

// flagRec is one deferred flag computation.
type flagRec struct {
	kind uint8
	w    uint8 // operand width in bytes
	aux  uint8 // kInc/kDec: bit0 = preserved CF; kShift: bit0 = CF,
	// bit1 = preserved AF; kImul: bit0 = CF=OF, bit1 = preserved AF
	a, b, cin uint64 // operands (pre-masked); cin is 0 or 1
	res       uint64 // result for kinds that don't recompute it
}

// result returns the masked arithmetic result of the recorded op.
func (f *flagRec) result() uint64 {
	mask := emu.MaskFor(int(f.w))
	switch f.kind {
	case kAdd:
		return (f.a + f.b + f.cin) & mask
	case kSub:
		return (f.a - f.b - f.cin) & mask
	case kInc:
		return (f.a + 1) & mask
	case kDec:
		return (f.a - 1) & mask
	default:
		return f.res
	}
}

// materialize flushes the deferred record into Machine.Flags using the
// interpreter's own flag functions, then marks the flags eager. It is
// idempotent and cheap when already eager.
func (s *state) materialize() {
	f := &s.fl
	if f.kind == kEager {
		return
	}
	m := s.m
	w := int(f.w)
	switch f.kind {
	case kAdd:
		m.AddWithFlags(f.a, f.b, f.cin, w)
	case kSub:
		m.SubWithFlags(f.a, f.b, f.cin, w)
	case kLogic:
		m.LogicFlags(f.res, w)
	case kInc:
		m.AddWithFlags(f.a, 1, 0, w)
		m.SetFlagTo(emu.FlagCF, f.aux&1 != 0)
	case kDec:
		m.SubWithFlags(f.a, 1, 0, w)
		m.SetFlagTo(emu.FlagCF, f.aux&1 != 0)
	case kShift:
		m.ResultFlags(f.res, w)
		m.SetFlagTo(emu.FlagCF, f.aux&1 != 0)
		m.SetFlagTo(emu.FlagOF, false)
		m.SetFlagTo(emu.FlagAF, f.aux&2 != 0)
	case kImul:
		m.ResultFlags(f.res, w)
		m.SetFlagTo(emu.FlagCF, f.aux&1 != 0)
		m.SetFlagTo(emu.FlagOF, f.aux&1 != 0)
		m.SetFlagTo(emu.FlagAF, f.aux&2 != 0)
	}
	f.kind = kEager
}

// lazyCF returns the carry flag (0 or 1) without materializing.
func (s *state) lazyCF() uint64 {
	f := &s.fl
	switch f.kind {
	case kEager:
		return s.m.FlagBitOf(emu.FlagCF)
	case kAdd:
		if f.w == 8 {
			_, c := bits.Add64(f.a, f.b, f.cin)
			return c
		}
		if f.a+f.b+f.cin > emu.MaskFor(int(f.w)) {
			return 1
		}
		return 0
	case kSub:
		if f.w == 8 {
			_, brw := bits.Sub64(f.a, f.b, f.cin)
			return brw
		}
		if f.a < f.b+f.cin {
			return 1
		}
		return 0
	case kLogic:
		return 0
	default: // kInc, kDec, kShift, kImul
		return uint64(f.aux & 1)
	}
}

// lazyAF returns the adjust flag (0 or 1) without materializing.
func (s *state) lazyAF() uint64 {
	f := &s.fl
	switch f.kind {
	case kEager:
		return s.m.FlagBitOf(emu.FlagAF)
	case kAdd, kSub:
		return ((f.a ^ f.b ^ f.result()) >> 4) & 1
	case kInc, kDec:
		return ((f.a ^ 1 ^ f.result()) >> 4) & 1
	case kLogic:
		return 0
	default: // kShift, kImul
		return uint64(f.aux >> 1 & 1)
	}
}

func (s *state) lazyZF() bool {
	f := &s.fl
	if f.kind == kEager {
		return s.m.FlagBitOf(emu.FlagZF) != 0
	}
	return f.result() == 0
}

func (s *state) lazySF() uint64 {
	f := &s.fl
	if f.kind == kEager {
		return s.m.FlagBitOf(emu.FlagSF)
	}
	return f.result() >> (8*uint(f.w) - 1) & 1
}

func (s *state) lazyPF() bool {
	f := &s.fl
	if f.kind == kEager {
		return s.m.FlagBitOf(emu.FlagPF) != 0
	}
	return bits.OnesCount8(uint8(f.result()))%2 == 0
}

func (s *state) lazyOF() uint64 {
	f := &s.fl
	switch f.kind {
	case kEager:
		return s.m.FlagBitOf(emu.FlagOF)
	case kAdd:
		res := f.result()
		return ((f.a ^ res) & (f.b ^ res)) >> (8*uint(f.w) - 1) & 1
	case kSub:
		res := f.result()
		return ((f.a ^ f.b) & (f.a ^ res)) >> (8*uint(f.w) - 1) & 1
	case kInc:
		res := f.result()
		return ((f.a ^ res) & (1 ^ res)) >> (8*uint(f.w) - 1) & 1
	case kDec:
		res := f.result()
		return ((f.a ^ 1) & (f.a ^ res)) >> (8*uint(f.w) - 1) & 1
	case kImul:
		return uint64(f.aux & 1)
	default: // kLogic, kShift
		return 0
	}
}

// lazyCond evaluates a condition code against the deferred record,
// mirroring Machine.cond bit for bit. Only the flags the condition
// actually reads are derived; parity (the expensive one) is computed
// solely for CondP/CondNP.
func (s *state) lazyCond(cc x86.Cond) bool {
	if s.fl.kind == kEager {
		return s.m.EvalCond(cc)
	}
	var v bool
	switch cc &^ 1 {
	case x86.CondO:
		v = s.lazyOF() != 0
	case x86.CondB:
		v = s.lazyCF() != 0
	case x86.CondE:
		v = s.lazyZF()
	case x86.CondBE:
		v = s.lazyCF() != 0 || s.lazyZF()
	case x86.CondS:
		v = s.lazySF() != 0
	case x86.CondP:
		v = s.lazyPF()
	case x86.CondL:
		v = (s.lazySF() != 0) != (s.lazyOF() != 0)
	case x86.CondLE:
		v = s.lazyZF() || (s.lazySF() != 0) != (s.lazyOF() != 0)
	}
	if cc&1 == 1 {
		return !v
	}
	return v
}
