package ir

import (
	"math/bits"

	"e9patch/internal/emu"
	"e9patch/internal/emu/tbc"
	"e9patch/internal/x86"
)

// Block compiler: decode (shared seam) → flag-liveness analysis →
// micro-op emission with constant effective-address folding. Exactly
// one micro-op is emitted per instruction, so micro-op index i
// executes insts[i]; a trailing epilogue op is added when the block
// can fall off its end (size cap or a decode failure ahead).

// Flag-liveness bit positions (one per arithmetic flag), used only by
// the compile-time analysis — distinct from the RFLAGS bit layout.
const (
	fCF = 1 << iota
	fPF
	fAF
	fZF
	fSF
	fOF
)
const fAll = fCF | fPF | fAF | fZF | fSF | fOF

// condFlags returns the liveness mask of flags a condition code reads.
func condFlags(cc x86.Cond) uint8 {
	switch cc &^ 1 {
	case x86.CondO:
		return fOF
	case x86.CondB:
		return fCF
	case x86.CondE:
		return fZF
	case x86.CondBE:
		return fCF | fZF
	case x86.CondS:
		return fSF
	case x86.CondP:
		return fPF
	case x86.CondL:
		return fSF | fOF
	case x86.CondLE:
		return fZF | fSF | fOF
	}
	return fAll
}

// staticShiftZero reports whether a shift with a compile-time count
// (C0/C1 imm, D0/D1 one) has an effective count of zero, in which
// case x86 leaves all flags untouched.
func staticShiftZero(inst *x86.Inst) bool {
	op := inst.Opcode
	if op == 0xD0 || op == 0xD1 {
		return false
	}
	count := uint64(inst.Imm())
	if op == 0xC1 && emu.Width(inst) == 8 {
		count &= 63
	} else {
		count &= 31
	}
	return count == 0
}

// flagEffects describes one instruction for the liveness scan: which
// flags it reads, which it (re)defines, and whether execution can
// leave the block at it other than by running it to completion — a
// possible fault, an SMC flush raised by its own store, a signal
// dispatch, or an interpreter fallback. Flags must be architecturally
// reconstructible at every such exit, so an unsafe instruction makes
// all six flags live for everything before it.
func flagEffects(inst *x86.Inst) (read, written uint8, unsafe bool) {
	op := inst.Opcode
	mem := inst.Attrs&x86.AttrModRM != 0 && !emu.RMIsReg(inst)
	if inst.TwoByte {
		switch {
		case op >= 0x40 && op <= 0x4F: // cmov
			return condFlags(x86.Cond(op & 0xF)), 0, mem
		case op >= 0x80 && op <= 0x8F: // jcc
			return condFlags(x86.Cond(op & 0xF)), 0, false
		case op >= 0x90 && op <= 0x9F: // setcc
			return condFlags(x86.Cond(op & 0xF)), 0, mem
		case op == 0xAF: // imul r, r/m
			return fAF, fAll &^ fAF, mem
		case op == 0xB6 || op == 0xB7 || op == 0xBE || op == 0xBF: // movzx/movsx
			return 0, 0, mem
		case op == 0x1E || op == 0x1F || op == 0x0D || (op >= 0x18 && op <= 0x1D):
			return 0, 0, false // hint nops
		}
		return fAll, 0, true // ud2 and anything unlifted: fallback
	}
	switch {
	case op <= 0x3D: // classic ALU block
		aluOp := (op >> 3) & 7
		var r uint8
		if aluOp == 2 || aluOp == 3 { // adc/sbb read CF
			r = fCF
		}
		return r, fAll, mem
	case op >= 0x50 && op <= 0x57: // push r: store may raise SMC flush
		return 0, 0, true
	case op >= 0x58 && op <= 0x5F: // pop r: load may fault
		return 0, 0, true
	case op == 0x63: // movsxd
		return 0, 0, mem
	case op == 0x68 || op == 0x6A: // push imm
		return 0, 0, true
	case op == 0x69 || op == 0x6B: // imul r, r/m, imm
		return fAF, fAll &^ fAF, mem
	case op >= 0x70 && op <= 0x7F: // jcc rel8
		return condFlags(x86.Cond(op & 0xF)), 0, false
	case op == 0x80 || op == 0x81 || op == 0x83: // group 1
		sub := (inst.ModRM >> 3) & 7
		var r uint8
		if sub == 2 || sub == 3 {
			r = fCF
		}
		return r, fAll, mem
	case op == 0x84 || op == 0x85: // test r/m, r
		return 0, fAll, mem
	case op == 0x86 || op == 0x87: // xchg
		return 0, 0, mem
	case op >= 0x88 && op <= 0x8B: // mov
		return 0, 0, mem
	case op == 0x8D: // lea: address is computed, never accessed
		return 0, 0, false
	case op == 0x8F: // pop r/m
		return 0, 0, true
	case op == 0x90, op >= 0x91 && op <= 0x97, op == 0x98, op == 0x99:
		return 0, 0, false // nop, xchg rax, cdqe, cqo
	case op == 0x9C: // pushfq reads everything and stores
		return fAll, 0, true
	case op == 0x9D: // popfq redefines everything, but pops first
		return 0, fAll, true
	case op == 0xA8 || op == 0xA9: // test rax, imm
		return 0, fAll, false
	case op >= 0xB0 && op <= 0xBF: // mov r, imm
		return 0, 0, false
	case op == 0xC0 || op == 0xC1 || op == 0xD0 || op == 0xD1: // shift, static count
		if staticShiftZero(inst) {
			return 0, 0, mem
		}
		return fAF, fAll &^ fAF, mem
	case op == 0xD2 || op == 0xD3: // shift by cl: count may be 0 at
		// runtime, so prior flags stay potentially observable
		return fAF, 0, mem
	case op == 0xC2 || op == 0xC3: // ret pops
		return 0, 0, true
	case op == 0xC6 || op == 0xC7: // mov r/m, imm
		return 0, 0, mem
	case op == 0xC9: // leave pops
		return 0, 0, true
	case op == 0xCC: // int3: signal dispatch (or error)
		return fAll, 0, true
	case op == 0xE8: // call pushes
		return 0, 0, true
	case op == 0xE9 || op == 0xEB: // jmp
		return 0, 0, false
	case op == 0xF4: // hlt: fallback
		return fAll, 0, true
	case op == 0xF5 || op == 0xF8 || op == 0xF9: // cmc/clc/stc
		return fAll, fCF, false
	case op == 0xFC || op == 0xFD: // cld/std: DF only
		return 0, 0, false
	case op == 0xF6 || op == 0xF7: // group 3
		switch (inst.ModRM >> 3) & 7 {
		case 0, 1: // test r/m, imm
			return 0, fAll, mem
		case 2: // not: no flags
			return 0, 0, mem
		case 3: // neg
			return 0, fAll, mem
		}
		return fAll, 0, true // mul/imul/div/idiv: fallback (div may error)
	case op == 0xFE: // inc/dec r/m8
		return fCF, fAll &^ fCF, mem
	case op == 0xFF: // group 5
		switch (inst.ModRM >> 3) & 7 {
		case 0, 1: // inc/dec
			return fCF, fAll &^ fCF, mem
		case 4: // jmp r/m: a memory target may fault on load
			return 0, 0, mem
		}
		return 0, 0, true // call/push (stores), others fallback
	}
	return fAll, 0, true // unlifted: fallback
}

// comp is the per-block compile context.
type comp struct {
	e     *Engine
	b     *block
	elide []bool // flag computation provably dead for insts[i]

	// Constant-register tracking for EA folding: known is a bitmask
	// over the 16 GPRs; kval holds full 64-bit values.
	known uint16
	kval  [16]uint64
}

// analyzeFlags runs the backward flag-liveness scan. An instruction's
// flag computation is elided only when every flag it defines is
// overwritten before any consumer, block exit, or unsafe instruction
// — and the instruction itself cannot exit the block mid-way (its own
// store could abort the block after the flags were due).
func (c *comp) analyzeFlags() {
	insts := c.b.insts
	c.elide = make([]bool, len(insts))
	live := uint8(fAll) // block end: a successor may read anything
	for i := len(insts) - 1; i >= 0; i-- {
		read, written, unsafe := flagEffects(&insts[i])
		if written != 0 && live&written == 0 && !unsafe {
			c.elide[i] = true
		}
		live = live&^written | read
		if unsafe {
			live = fAll
		}
	}
}

// Constant-register tracking helpers.

func (c *comp) kill(r x86.Reg)         { c.known &^= 1 << r }
func (c *comp) killAll()               { c.known = 0 }
func (c *comp) isKnown(r x86.Reg) bool { return c.known&(1<<r) != 0 }

// set records a register write with x86 merge semantics applied to
// the tracked constant.
func (c *comp) set(r x86.Reg, v uint64, w int) {
	switch {
	case w == 8:
		c.kval[r] = v
		c.known |= 1 << r
	case w == 4:
		c.kval[r] = v & 0xFFFFFFFF
		c.known |= 1 << r
	default: // 8/16-bit writes merge: only known if the rest is known
		if c.isKnown(r) {
			mask := emu.MaskFor(w)
			c.kval[r] = c.kval[r]&^mask | v&mask
		}
	}
}

// eaFor builds the effective-address computation for a memory
// operand, folding constant components resolved at lift time.
func (c *comp) eaFor(inst *x86.Inst) func(*emu.Machine) uint64 {
	if inst.RIPRel {
		k := inst.Addr + uint64(inst.Len) + uint64(inst.Disp())
		c.e.Stats.FoldedEAs++
		return func(*emu.Machine) uint64 { return k }
	}
	base, idx := inst.MemBase, inst.MemIndex
	scale := uint64(inst.MemScale)
	disp := uint64(inst.Disp())
	haveBase := base != x86.NoReg && base != x86.RIP
	haveIdx := idx != x86.NoReg
	baseKnown := !haveBase || c.isKnown(base)
	idxKnown := !haveIdx || c.isKnown(idx)
	switch {
	case baseKnown && idxKnown:
		k := disp
		if haveBase {
			k += c.kval[base]
		}
		if haveIdx {
			k += c.kval[idx] * scale
		}
		if haveBase || haveIdx {
			c.e.Stats.FoldedEAs++
		}
		return func(*emu.Machine) uint64 { return k }
	case haveBase && haveIdx && baseKnown:
		k := c.kval[base] + disp
		return func(m *emu.Machine) uint64 { return k + m.Regs[idx]*scale }
	case haveBase && haveIdx && idxKnown:
		k := c.kval[idx]*scale + disp
		return func(m *emu.Machine) uint64 { return m.Regs[base] + k }
	case haveBase && haveIdx:
		return func(m *emu.Machine) uint64 { return m.Regs[base] + m.Regs[idx]*scale + disp }
	case haveBase:
		return func(m *emu.Machine) uint64 { return m.Regs[base] + disp }
	default:
		return func(m *emu.Machine) uint64 { return m.Regs[idx]*scale + disp }
	}
}

// wreg is Machine.regWrite, local so it inlines into micro-ops.
func wreg(m *emu.Machine, r x86.Reg, v uint64, w int) {
	switch w {
	case 8:
		m.Regs[r] = v
	case 4:
		m.Regs[r] = v & 0xFFFFFFFF
	default:
		mask := emu.MaskFor(w)
		m.Regs[r] = m.Regs[r]&^mask | v&mask
	}
}

// aluExec performs classic ALU op 0-7 (add/or/adc/sbb/and/sub/xor/cmp)
// on pre-masked operands, recording the deferred flag producer unless
// the liveness pass elided it. write reports whether the result is
// stored back.
func aluExec(s *state, op byte, a, b uint64, mask uint64, w uint8, rec bool) (uint64, bool) {
	switch op {
	case 0: // add
		res := (a + b) & mask
		if rec {
			s.fl = flagRec{kind: kAdd, w: w, a: a, b: b}
		}
		return res, true
	case 1: // or
		res := a | b
		if rec {
			s.fl = flagRec{kind: kLogic, w: w, res: res}
		}
		return res, true
	case 2: // adc
		cin := s.lazyCF()
		res := (a + b + cin) & mask
		if rec {
			s.fl = flagRec{kind: kAdd, w: w, a: a, b: b, cin: cin}
		}
		return res, true
	case 3: // sbb
		cin := s.lazyCF()
		res := (a - b - cin) & mask
		if rec {
			s.fl = flagRec{kind: kSub, w: w, a: a, b: b, cin: cin}
		}
		return res, true
	case 4: // and
		res := a & b
		if rec {
			s.fl = flagRec{kind: kLogic, w: w, res: res}
		}
		return res, true
	case 5: // sub
		res := (a - b) & mask
		if rec {
			s.fl = flagRec{kind: kSub, w: w, a: a, b: b}
		}
		return res, true
	case 6: // xor
		res := a ^ b
		if rec {
			s.fl = flagRec{kind: kLogic, w: w, res: res}
		}
		return res, true
	default: // cmp
		if rec {
			s.fl = flagRec{kind: kSub, w: w, a: a, b: b}
		}
		return 0, false
	}
}

// shiftCalc replicates Machine.execShift's result/CF computation for
// count >= 1 on a pre-masked value. ok is false for the rcl/rcr
// groups the interpreter also rejects.
func shiftCalc(sub byte, v, count uint64, w int) (res, cf uint64, ok bool) {
	bitsW := uint(8 * w)
	switch sub {
	case 4, 6: // shl/sal
		res = v << count
		cf = (v >> (bitsW - uint(count))) & 1
	case 5: // shr
		res = v >> count
		cf = (v >> (uint(count) - 1)) & 1
	case 7: // sar
		shift := uint(64 - bitsW)
		sv := int64(v<<shift) >> shift
		res = uint64(sv >> count)
		cf = uint64(sv>>(count-1)) & 1
	case 0: // rol
		res = bits.RotateLeft64(v<<(64-bitsW), int(count)) >> (64 - bitsW)
		cf = res & 1
	case 1: // ror
		res = bits.RotateLeft64(v<<(64-bitsW), -int(count)) >> (64 - bitsW)
		cf = (res >> (bitsW - 1)) & 1
	default:
		return 0, 0, false
	}
	return res & emu.MaskFor(w), cf, true
}

// compile lifts the block at pc into threaded code and caches it.
func (e *Engine) compile(m *emu.Machine, pc uint64) (*block, error) {
	insts, end, err := tbc.DecodeBlock(m, pc)
	if err != nil {
		return nil, err
	}
	b := &block{start: pc, end: end, insts: insts}
	b.succAddr[0] = end
	if last := &insts[len(insts)-1]; last.RelSize != 0 {
		b.succAddr[1] = last.Target()
	}

	c := &comp{e: e, b: b}
	c.analyzeFlags()
	b.ops = make([]uop, 0, len(insts)+1)
	for i := range insts {
		b.ops = append(b.ops, c.emit(i))
	}
	if insts[len(insts)-1].Attrs&tbc.TermAttrs == 0 {
		// The block falls off its end (size cap or decode failure
		// ahead): an epilogue op materializes the fallthrough RIP.
		b.ops = append(b.ops, func(s *state) int {
			s.m.RIP = end
			return done
		})
	}

	e.blocks[pc] = b
	e.trk.Track(pc, end)
	e.Stats.Translations++
	return b, nil
}

// emitFallback produces the interpreter-fallback micro-op: it
// materializes the flags and defers to Machine.ExecDecodedQuiet, so
// rarely-executed or stateful instructions (int3, hlt, ud2, div,
// memory-destination exotics) keep exact interpreter behaviour.
func (c *comp) emitFallback(i int) uop {
	c.killAll()
	inst := &c.b.insts[i]
	next := i + 1
	nextAddr := inst.Addr + uint64(inst.Len)
	return func(s *state) int {
		s.materialize()
		m := s.m
		if err := m.ExecDecodedQuiet(inst); err != nil {
			m.RIP = inst.Addr
			s.err = err
			return done
		}
		if m.Halted() || s.trk.Flushed || m.RIP != nextAddr {
			return done
		}
		return next
	}
}

// emit lifts insts[i] into exactly one micro-op, updating the
// constant-register tracking as a side effect.
func (c *comp) emit(i int) uop {
	inst := &c.b.insts[i]
	op := inst.Opcode
	next := i + 1
	nextAddr := inst.Addr + uint64(inst.Len)
	elide := c.elide[i]
	rec := !elide
	if elide {
		c.e.Stats.ElidedFlags++
	}
	mem := inst.Attrs&x86.AttrModRM != 0 && !emu.RMIsReg(inst)

	if inst.TwoByte {
		return c.emitTwoByte(i, inst, op, next, nextAddr, rec, mem)
	}

	switch {
	case op <= 0x3D: // classic ALU block
		aluOp := (op >> 3) & 7
		form := op & 7
		w := emu.Width(inst)
		if form == 0 || form == 2 || form == 4 {
			w = 1
		}
		mask := emu.MaskFor(w)
		w8 := uint8(w)
		switch form {
		case 0, 1: // op r/m, r
			src := emu.ModRMReg(inst)
			if !mem {
				dst := emu.ModRMRM(inst)
				if aluOp == 6 && src == dst { // xor r, r: constant zero
					c.set(dst, 0, w)
				} else if aluOp != 7 {
					c.kill(dst)
				}
				return func(s *state) int {
					m := s.m
					m.Counters.Instructions++
					m.Counters.Cycles += m.Cost.ALU
					res, write := aluExec(s, aluOp, m.Regs[dst]&mask, m.Regs[src]&mask, mask, w8, rec)
					if write {
						wreg(m, dst, res, w)
					}
					return next
				}
			}
			ea := c.eaFor(inst)
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU + m.Cost.Mem
				addr := ea(m)
				a, err := s.load(addr, w)
				if err != nil {
					return s.fault(inst, err)
				}
				res, write := aluExec(s, aluOp, a, m.Regs[src]&mask, mask, w8, rec)
				if write {
					m.Counters.Cycles += m.Cost.Mem
					s.store(addr, res, w)
					if s.trk.Flushed {
						m.RIP = nextAddr
						return done
					}
				}
				return next
			}
		case 2, 3: // op r, r/m
			dst := emu.ModRMReg(inst)
			if aluOp != 7 {
				if aluOp == 6 && !mem && emu.ModRMRM(inst) == dst {
					c.set(dst, 0, w)
				} else {
					c.kill(dst)
				}
			}
			if !mem {
				src := emu.ModRMRM(inst)
				return func(s *state) int {
					m := s.m
					m.Counters.Instructions++
					m.Counters.Cycles += m.Cost.ALU
					res, write := aluExec(s, aluOp, m.Regs[dst]&mask, m.Regs[src]&mask, mask, w8, rec)
					if write {
						wreg(m, dst, res, w)
					}
					return next
				}
			}
			ea := c.eaFor(inst)
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU + m.Cost.Mem
				b, err := s.load(ea(m), w)
				if err != nil {
					return s.fault(inst, err)
				}
				res, write := aluExec(s, aluOp, m.Regs[dst]&mask, b, mask, w8, rec)
				if write {
					wreg(m, dst, res, w)
				}
				return next
			}
		default: // 4, 5: op al/eax/rax, imm
			b := uint64(inst.Imm()) & mask
			if aluOp != 7 {
				c.kill(x86.RAX)
			}
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU
				res, write := aluExec(s, aluOp, m.Regs[x86.RAX]&mask, b, mask, w8, rec)
				if write {
					wreg(m, x86.RAX, res, w)
				}
				return next
			}
		}

	case op >= 0x50 && op <= 0x57: // push r
		r := x86.Reg(op&7 | (inst.Rex&1)<<3)
		c.kill(x86.RSP)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			s.push(m.Regs[r])
			if s.trk.Flushed {
				m.RIP = nextAddr
				return done
			}
			return next
		}

	case op >= 0x58 && op <= 0x5F: // pop r
		r := x86.Reg(op&7 | (inst.Rex&1)<<3)
		c.kill(x86.RSP)
		c.kill(r)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			v, err := s.pop()
			if err != nil {
				return s.fault(inst, err)
			}
			m.Regs[r] = v
			return next
		}

	case op == 0x63: // movsxd r64, r/m32
		dst := emu.ModRMReg(inst)
		c.kill(dst)
		if !mem {
			src := emu.ModRMRM(inst)
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU
				m.Regs[dst] = uint64(int64(int32(uint32(m.Regs[src]))))
				return next
			}
		}
		ea := c.eaFor(inst)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU + m.Cost.Mem
			v, err := s.load(ea(m), 4)
			if err != nil {
				return s.fault(inst, err)
			}
			m.Regs[dst] = uint64(int64(int32(uint32(v))))
			return next
		}

	case op == 0x68 || op == 0x6A: // push imm
		v := uint64(inst.Imm())
		c.kill(x86.RSP)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			s.push(v)
			if s.trk.Flushed {
				m.RIP = nextAddr
				return done
			}
			return next
		}

	case op == 0x69 || op == 0x6B: // imul r, r/m, imm
		return c.emitImul(i, inst, next, emu.ModRMReg(inst), uint64(inst.Imm()), true, rec, mem)

	case op >= 0x70 && op <= 0x7F: // jcc rel8
		return c.emitJcc(inst, x86.Cond(op&0xF), nextAddr)

	case op == 0x80 || op == 0x81 || op == 0x83: // group 1: alu r/m, imm
		aluOp := (inst.ModRM >> 3) & 7
		w := emu.Width(inst)
		if op == 0x80 {
			w = 1
		}
		mask := emu.MaskFor(w)
		w8 := uint8(w)
		b := uint64(inst.Imm()) & mask
		if !mem {
			dst := emu.ModRMRM(inst)
			if aluOp != 7 {
				c.kill(dst)
			}
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU
				res, write := aluExec(s, aluOp, m.Regs[dst]&mask, b, mask, w8, rec)
				if write {
					wreg(m, dst, res, w)
				}
				return next
			}
		}
		ea := c.eaFor(inst)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU + m.Cost.Mem
			addr := ea(m)
			a, err := s.load(addr, w)
			if err != nil {
				return s.fault(inst, err)
			}
			res, write := aluExec(s, aluOp, a, b, mask, w8, rec)
			if write {
				m.Counters.Cycles += m.Cost.Mem
				s.store(addr, res, w)
				if s.trk.Flushed {
					m.RIP = nextAddr
					return done
				}
			}
			return next
		}

	case op == 0x84 || op == 0x85: // test r/m, r
		w := emu.Width(inst)
		if op == 0x84 {
			w = 1
		}
		mask := emu.MaskFor(w)
		w8 := uint8(w)
		r := emu.ModRMReg(inst)
		if !mem {
			rm := emu.ModRMRM(inst)
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU
				if rec {
					s.fl = flagRec{kind: kLogic, w: w8, res: m.Regs[rm] & m.Regs[r] & mask}
				}
				return next
			}
		}
		ea := c.eaFor(inst)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU + m.Cost.Mem
			a, err := s.load(ea(m), w)
			if err != nil {
				return s.fault(inst, err)
			}
			if rec {
				s.fl = flagRec{kind: kLogic, w: w8, res: a & m.Regs[r] & mask}
			}
			return next
		}

	case (op == 0x86 || op == 0x87) && !mem: // xchg r/m, r (register form)
		w := emu.Width(inst)
		if op == 0x86 {
			w = 1
		}
		mask := emu.MaskFor(w)
		rm, r := emu.ModRMRM(inst), emu.ModRMReg(inst)
		c.kill(rm)
		c.kill(r)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			a := m.Regs[rm] & mask
			b := m.Regs[r] & mask
			wreg(m, rm, b, w)
			wreg(m, r, a, w)
			return next
		}

	case op == 0x88 || op == 0x89: // mov r/m, r
		w := emu.Width(inst)
		if op == 0x88 {
			w = 1
		}
		src := emu.ModRMReg(inst)
		if !mem {
			dst := emu.ModRMRM(inst)
			if c.isKnown(src) {
				c.set(dst, c.kval[src], w)
			} else {
				c.kill(dst)
			}
			mask := emu.MaskFor(w)
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU
				wreg(m, dst, m.Regs[src]&mask, w)
				return next
			}
		}
		ea := c.eaFor(inst)
		mask := emu.MaskFor(w)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU + m.Cost.Mem
			s.store(ea(m), m.Regs[src]&mask, w)
			if s.trk.Flushed {
				m.RIP = nextAddr
				return done
			}
			return next
		}

	case op == 0x8A || op == 0x8B: // mov r, r/m
		w := emu.Width(inst)
		if op == 0x8A {
			w = 1
		}
		dst := emu.ModRMReg(inst)
		if !mem {
			src := emu.ModRMRM(inst)
			if c.isKnown(src) {
				c.set(dst, c.kval[src], w)
			} else {
				c.kill(dst)
			}
			mask := emu.MaskFor(w)
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU
				wreg(m, dst, m.Regs[src]&mask, w)
				return next
			}
		}
		c.kill(dst)
		ea := c.eaFor(inst)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU + m.Cost.Mem
			v, err := s.load(ea(m), w)
			if err != nil {
				return s.fault(inst, err)
			}
			wreg(m, dst, v, w)
			return next
		}

	case op == 0x8D: // lea
		w := emu.Width(inst)
		dst := emu.ModRMReg(inst)
		ea := c.eaFor(inst) // consult known BEFORE killing dst
		if inst.RIPRel {
			c.set(dst, inst.Addr+uint64(inst.Len)+uint64(inst.Disp()), w)
		} else {
			hasBase := inst.MemBase != x86.NoReg && inst.MemBase != x86.RIP
			hasIdx := inst.MemIndex != x86.NoReg
			if (!hasBase || c.isKnown(inst.MemBase)) && (!hasIdx || c.isKnown(inst.MemIndex)) {
				k := uint64(inst.Disp())
				if hasBase {
					k += c.kval[inst.MemBase]
				}
				if hasIdx {
					k += c.kval[inst.MemIndex] * uint64(inst.MemScale)
				}
				c.set(dst, k, w)
			} else {
				c.kill(dst)
			}
		}
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			wreg(m, dst, ea(m), w)
			return next
		}

	case op == 0x8F && !mem: // pop r/m64 (register form)
		rm := emu.ModRMRM(inst)
		c.kill(x86.RSP)
		c.kill(rm)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			v, err := s.pop()
			if err != nil {
				return s.fault(inst, err)
			}
			m.Regs[rm] = v
			return next
		}

	case op == 0x90: // nop
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			return next
		}

	case op >= 0x91 && op <= 0x97: // xchg rax, r
		w := emu.Width(inst)
		mask := emu.MaskFor(w)
		r := x86.Reg(op&7 | (inst.Rex&1)<<3)
		c.kill(x86.RAX)
		c.kill(r)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			a := m.Regs[x86.RAX] & mask
			wreg(m, x86.RAX, m.Regs[r]&mask, w)
			wreg(m, r, a, w)
			return next
		}

	case op == 0x98: // cdqe / cwde
		c.kill(x86.RAX)
		if inst.Rex&8 != 0 {
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU
				m.Regs[x86.RAX] = uint64(int64(int32(uint32(m.Regs[x86.RAX]))))
				return next
			}
		}
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			wreg(m, x86.RAX, uint64(uint32(int32(int16(uint16(m.Regs[x86.RAX]))))), 4)
			return next
		}

	case op == 0x99: // cqo / cdq
		c.kill(x86.RDX)
		if inst.Rex&8 != 0 {
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU
				m.Regs[x86.RDX] = uint64(int64(m.Regs[x86.RAX]) >> 63)
				return next
			}
		}
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			wreg(m, x86.RDX, uint64(uint32(int32(uint32(m.Regs[x86.RAX]))>>31)), 4)
			return next
		}

	case op == 0x9C: // pushfq
		c.kill(x86.RSP)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			s.materialize()
			s.push(m.Flags)
			if s.trk.Flushed {
				m.RIP = nextAddr
				return done
			}
			return next
		}

	case op == 0x9D: // popfq
		c.kill(x86.RSP)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			v, err := s.pop()
			if err != nil {
				return s.fault(inst, err)
			}
			m.Flags = v | emu.FlagsAlways
			s.fl.kind = kEager
			return next
		}

	case op == 0xA8 || op == 0xA9: // test al/eax, imm
		w := emu.Width(inst)
		if op == 0xA8 {
			w = 1
		}
		mask := emu.MaskFor(w)
		w8 := uint8(w)
		b := uint64(inst.Imm()) & mask
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			if rec {
				s.fl = flagRec{kind: kLogic, w: w8, res: m.Regs[x86.RAX] & mask & b}
			}
			return next
		}

	case op >= 0xB0 && op <= 0xB7: // mov r8, imm8
		r := x86.Reg(op&7 | (inst.Rex&1)<<3)
		v := uint64(inst.Imm())
		c.set(r, v, 1)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			wreg(m, r, v, 1)
			return next
		}

	case op >= 0xB8 && op <= 0xBF: // mov r, imm
		w := emu.Width(inst)
		r := x86.Reg(op&7 | (inst.Rex&1)<<3)
		v := uint64(inst.Imm())
		if w != 8 {
			v &= emu.MaskFor(w)
		}
		c.set(r, v, w)
		if w == 8 {
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU
				m.Regs[r] = v
				return next
			}
		}
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			wreg(m, r, v, w)
			return next
		}

	case (op == 0xC0 || op == 0xC1 || op == 0xD0 || op == 0xD1 ||
		op == 0xD2 || op == 0xD3) && !mem: // shift r, count
		sub := (inst.ModRM >> 3) & 7
		if sub == 2 || sub == 3 { // rcl/rcr: interpreter errors too
			return c.emitFallback(i)
		}
		w := emu.Width(inst)
		if op == 0xC0 || op == 0xD0 || op == 0xD2 {
			w = 1
		}
		mask := emu.MaskFor(w)
		w8 := uint8(w)
		cmask := uint64(31)
		if w == 8 {
			cmask = 63
		}
		r := emu.ModRMRM(inst)
		c.kill(r)
		byCL := op == 0xD2 || op == 0xD3
		var count uint64
		switch op {
		case 0xC0, 0xC1:
			count = uint64(inst.Imm()) & cmask
		case 0xD0, 0xD1:
			count = 1
		}
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			n := count
			if byCL {
				n = m.Regs[x86.RCX] & cmask
			}
			v := m.Regs[r] & mask
			if n == 0 { // flags untouched, value rewritten
				wreg(m, r, v, w)
				return next
			}
			res, cf, _ := shiftCalc(sub, v, n, w)
			if rec {
				prevAF := s.lazyAF()
				s.fl = flagRec{kind: kShift, w: w8, res: res, aux: uint8(cf) | uint8(prevAF)<<1}
			}
			wreg(m, r, res, w)
			return next
		}

	case op == 0xC2 || op == 0xC3: // ret [imm16]
		var adj uint64
		if op == 0xC2 {
			adj = uint64(inst.Imm()) & 0xFFFF
		}
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			ret, err := s.pop()
			if err != nil {
				return s.fault(inst, err)
			}
			m.Regs[x86.RSP] += adj
			m.Counters.Cycles += m.Cost.CallRet
			m.RIP = s.branch(nextAddr, ret)
			return done
		}

	case op == 0xC6 || op == 0xC7: // mov r/m, imm
		w := emu.Width(inst)
		if op == 0xC6 {
			w = 1
		}
		v := uint64(inst.Imm()) & emu.MaskFor(w)
		if !mem {
			dst := emu.ModRMRM(inst)
			c.set(dst, v, w)
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU
				wreg(m, dst, v, w)
				return next
			}
		}
		ea := c.eaFor(inst)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU + m.Cost.Mem
			s.store(ea(m), v, w)
			if s.trk.Flushed {
				m.RIP = nextAddr
				return done
			}
			return next
		}

	case op == 0xC9: // leave
		c.kill(x86.RSP)
		c.kill(x86.RBP)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			m.Regs[x86.RSP] = m.Regs[x86.RBP]
			v, err := s.pop()
			if err != nil {
				return s.fault(inst, err)
			}
			m.Regs[x86.RBP] = v
			return next
		}

	case op == 0xE8: // call rel32
		target := inst.Target()
		c.kill(x86.RSP)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			s.push(nextAddr)
			m.Counters.Cycles += m.Cost.CallRet
			m.RIP = s.branch(nextAddr, target)
			return done
		}

	case op == 0xE9 || op == 0xEB: // jmp rel
		target := inst.Target()
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			m.RIP = s.branch(nextAddr, target)
			return done
		}

	case op == 0xF5: // cmc
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			s.materialize()
			m.Flags ^= emu.FlagCF
			return next
		}

	case op == 0xF8 || op == 0xF9: // clc / stc
		on := op == 0xF9
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			s.materialize()
			m.SetFlagTo(emu.FlagCF, on)
			return next
		}

	case op == 0xFC || op == 0xFD: // cld / std (DF is not deferred)
		on := op == 0xFD
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			m.SetFlagTo(emu.FlagDF, on)
			return next
		}

	case op == 0xF6 || op == 0xF7: // group 3
		sub := (inst.ModRM >> 3) & 7
		if sub > 3 { // mul/imul/div/idiv: interpreter fallback
			return c.emitFallback(i)
		}
		w := emu.Width(inst)
		if op == 0xF6 {
			w = 1
		}
		mask := emu.MaskFor(w)
		w8 := uint8(w)
		imm := uint64(inst.Imm()) & mask
		if !mem {
			rm := emu.ModRMRM(inst)
			if sub == 2 || sub == 3 {
				c.kill(rm)
			}
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU
				v := m.Regs[rm] & mask
				switch sub {
				case 0, 1: // test r/m, imm
					if rec {
						s.fl = flagRec{kind: kLogic, w: w8, res: v & imm}
					}
				case 2: // not
					wreg(m, rm, ^v&mask, w)
				default: // 3: neg — exactly sub(0, v) including CF
					if rec {
						s.fl = flagRec{kind: kSub, w: w8, b: v}
					}
					wreg(m, rm, -v&mask, w)
				}
				return next
			}
		}
		ea := c.eaFor(inst)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU + m.Cost.Mem
			addr := ea(m)
			v, err := s.load(addr, w)
			if err != nil {
				return s.fault(inst, err)
			}
			var res uint64
			switch sub {
			case 0, 1:
				if rec {
					s.fl = flagRec{kind: kLogic, w: w8, res: v & imm}
				}
				return next
			case 2:
				res = ^v & mask
			default: // 3: neg
				if rec {
					s.fl = flagRec{kind: kSub, w: w8, b: v}
				}
				res = -v & mask
			}
			m.Counters.Cycles += m.Cost.Mem
			s.store(addr, res, w)
			if s.trk.Flushed {
				m.RIP = nextAddr
				return done
			}
			return next
		}

	case op == 0xFE, op == 0xFF && (inst.ModRM>>3)&7 <= 1: // inc/dec r/m
		w := 1
		if op == 0xFF {
			w = emu.Width(inst)
		}
		decOp := (inst.ModRM>>3)&7 == 1
		return c.emitIncDec(i, inst, next, nextAddr, w, decOp, rec, mem)

	case op == 0xFF: // group 5: call/jmp/push via r/m
		sub := (inst.ModRM >> 3) & 7
		switch sub {
		case 2, 4, 6:
		default:
			return c.emitFallback(i)
		}
		var ea func(*emu.Machine) uint64
		var rm x86.Reg
		if mem {
			ea = c.eaFor(inst)
		} else {
			rm = emu.ModRMRM(inst)
		}
		if sub != 4 {
			c.kill(x86.RSP)
		}
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			var t uint64
			if ea != nil {
				m.Counters.Cycles += m.Cost.Mem
				var err error
				t, err = s.load(ea(m), 8)
				if err != nil {
					return s.fault(inst, err)
				}
			} else {
				t = m.Regs[rm]
			}
			switch sub {
			case 2: // call
				s.push(nextAddr)
				m.Counters.Cycles += m.Cost.CallRet
				m.RIP = s.branch(nextAddr, t)
				return done
			case 4: // jmp
				m.RIP = s.branch(nextAddr, t)
				return done
			default: // 6: push
				s.push(t)
				if s.trk.Flushed {
					m.RIP = nextAddr
					return done
				}
				return next
			}
		}
	}

	return c.emitFallback(i)
}

// emitTwoByte lifts 0F-escaped opcodes.
func (c *comp) emitTwoByte(i int, inst *x86.Inst, op byte, next int, nextAddr uint64, rec, mem bool) uop {
	switch {
	case op == 0x1E || op == 0x1F || op == 0x0D || (op >= 0x18 && op <= 0x1D): // hint nops
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			return next
		}

	case op >= 0x40 && op <= 0x4F: // cmovcc
		w := emu.Width(inst)
		mask := emu.MaskFor(w)
		cc := x86.Cond(op & 0xF)
		r := emu.ModRMReg(inst)
		c.kill(r)
		if !mem {
			rm := emu.ModRMRM(inst)
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU
				v := m.Regs[rm] & mask
				if s.lazyCond(cc) {
					wreg(m, r, v, w)
				} else if w == 4 {
					// 32-bit cmov zero-extends even when not taken.
					m.Regs[r] &= 0xFFFFFFFF
				}
				return next
			}
		}
		ea := c.eaFor(inst)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU + m.Cost.Mem
			v, err := s.load(ea(m), w) // the read happens (and may
			if err != nil {            // fault) regardless of cc
				return s.fault(inst, err)
			}
			if s.lazyCond(cc) {
				wreg(m, r, v, w)
			} else if w == 4 {
				m.Regs[r] &= 0xFFFFFFFF
			}
			return next
		}

	case op >= 0x80 && op <= 0x8F: // jcc rel32
		return c.emitJcc(inst, x86.Cond(op&0xF), nextAddr)

	case op >= 0x90 && op <= 0x9F: // setcc
		cc := x86.Cond(op & 0xF)
		if !mem {
			rm := emu.ModRMRM(inst)
			c.kill(rm)
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU
				var v uint64
				if s.lazyCond(cc) {
					v = 1
				}
				wreg(m, rm, v, 1)
				return next
			}
		}
		ea := c.eaFor(inst)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU + m.Cost.Mem
			var v uint64
			if s.lazyCond(cc) {
				v = 1
			}
			s.store(ea(m), v, 1)
			if s.trk.Flushed {
				m.RIP = nextAddr
				return done
			}
			return next
		}

	case op == 0xAF: // imul r, r/m
		return c.emitImul(i, inst, next, emu.ModRMReg(inst), 0, false, rec, mem)

	case op == 0xB6 || op == 0xB7 || op == 0xBE || op == 0xBF: // movzx/movsx
		sw := 1
		if op == 0xB7 || op == 0xBF {
			sw = 2
		}
		signed := op >= 0xBE
		w := emu.Width(inst)
		mask := emu.MaskFor(w)
		smask := emu.MaskFor(sw)
		shift := uint(64 - 8*sw)
		dst := emu.ModRMReg(inst)
		c.kill(dst)
		ext := func(v uint64) uint64 {
			if signed {
				return uint64(int64(v<<shift)>>shift) & mask
			}
			return v
		}
		if !mem {
			src := emu.ModRMRM(inst)
			return func(s *state) int {
				m := s.m
				m.Counters.Instructions++
				m.Counters.Cycles += m.Cost.ALU
				wreg(m, dst, ext(m.Regs[src]&smask), w)
				return next
			}
		}
		ea := c.eaFor(inst)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU + m.Cost.Mem
			v, err := s.load(ea(m), sw)
			if err != nil {
				return s.fault(inst, err)
			}
			wreg(m, dst, ext(v), w)
			return next
		}
	}

	return c.emitFallback(i) // ud2 and anything unlifted
}

// emitJcc lifts a conditional branch: the condition is answered
// straight from the deferred flag record.
func (c *comp) emitJcc(inst *x86.Inst, cc x86.Cond, nextAddr uint64) uop {
	target := inst.Target()
	return func(s *state) int {
		m := s.m
		m.Counters.Instructions++
		m.Counters.Cycles += m.Cost.ALU
		if s.lazyCond(cc) {
			m.RIP = s.branch(nextAddr, target)
		} else {
			m.RIP = nextAddr
		}
		return done
	}
}

// emitImul lifts the two-operand (and immediate) imul forms.
func (c *comp) emitImul(i int, inst *x86.Inst, next int, dst x86.Reg, imm uint64, hasImm, rec, mem bool) uop {
	w := emu.Width(inst)
	mask := emu.MaskFor(w)
	w8 := uint8(w)
	sw := uint(64 - 8*w)
	c.kill(dst)
	mul := func(s *state, a, b uint64) uint64 {
		sa := int64(a<<sw) >> sw
		sb := int64(b<<sw) >> sw
		prod := sa * sb
		res := uint64(prod) & mask
		if rec {
			over := int64(res<<sw)>>sw != prod
			prevAF := s.lazyAF()
			var aux uint8
			if over {
				aux = 1
			}
			s.fl = flagRec{kind: kImul, w: w8, res: res, aux: aux | uint8(prevAF)<<1}
		}
		return res
	}
	if !mem {
		src := emu.ModRMRM(inst)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU + m.Cost.Mul
			a := m.Regs[src] & mask
			b := imm
			if !hasImm {
				b = a
				a = m.Regs[dst] & mask
			}
			wreg(m, dst, mul(s, a, b), w)
			return next
		}
	}
	ea := c.eaFor(inst)
	return func(s *state) int {
		m := s.m
		m.Counters.Instructions++
		m.Counters.Cycles += m.Cost.ALU + m.Cost.Mem
		v, err := s.load(ea(m), w)
		if err != nil {
			return s.fault(inst, err)
		}
		m.Counters.Cycles += m.Cost.Mul
		a, b := v, imm
		if !hasImm {
			a, b = m.Regs[dst]&mask, v
		}
		wreg(m, dst, mul(s, a, b), w)
		return next
	}
}

// emitIncDec lifts inc/dec in both widths and operand forms; CF is
// preserved via the record's aux bit.
func (c *comp) emitIncDec(i int, inst *x86.Inst, next int, nextAddr uint64, w int, dec, rec, mem bool) uop {
	mask := emu.MaskFor(w)
	w8 := uint8(w)
	kind := uint8(kInc)
	delta := uint64(1)
	if dec {
		kind = kDec
		delta = ^uint64(0) // -1
	}
	if !mem {
		rm := emu.ModRMRM(inst)
		c.kill(rm)
		return func(s *state) int {
			m := s.m
			m.Counters.Instructions++
			m.Counters.Cycles += m.Cost.ALU
			v := m.Regs[rm] & mask
			res := (v + delta) & mask
			if rec {
				s.fl = flagRec{kind: kind, w: w8, a: v, aux: uint8(s.lazyCF())}
			}
			wreg(m, rm, res, w)
			return next
		}
	}
	ea := c.eaFor(inst)
	return func(s *state) int {
		m := s.m
		m.Counters.Instructions++
		m.Counters.Cycles += m.Cost.ALU + m.Cost.Mem
		addr := ea(m)
		v, err := s.load(addr, w)
		if err != nil {
			return s.fault(inst, err)
		}
		res := (v + delta) & mask
		if rec {
			s.fl = flagRec{kind: kind, w: w8, a: v, aux: uint8(s.lazyCF())}
		}
		m.Counters.Cycles += m.Cost.Mem
		s.store(addr, res, w)
		if s.trk.Flushed {
			m.RIP = nextAddr
			return done
		}
		return next
	}
}
