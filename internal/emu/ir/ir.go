// Package ir is an IR-lifting execution engine for the emulator: each
// basic block is lifted once — through the same DecodeBlock seam the
// tbc engine uses — into a linear sequence of micro-ops (Go closures),
// optimized per block, and then dispatched by threaded code with no
// per-instruction decode or switch.
//
// Three block-local optimizations carry the speedup beyond tbc:
//
//   - Lazy EFLAGS (lazy.go): ALU micro-ops record only the operation
//     that last defined the flags; consumers (jcc, setcc, cmov,
//     adc/sbb, pushfq) derive exactly the bits they read, and full
//     materialization happens only at block-exit seams that demand
//     architectural flags (runtime calls, faults, the careful path).
//   - Dead-flag elimination (compile.go): a backward liveness scan over
//     the six arithmetic flags drops even the recording store when a
//     later instruction in the same block overwrites the flags before
//     any possible consumer or early block exit.
//   - Constant effective-address folding (compile.go): registers with
//     block-entry-known constant values (mov r, imm; xor r, r; lea of
//     a constant) fold into memory-operand address computations at
//     compile time; RIP-relative operands always fold.
//
// The engine is observationally identical to the interpreter and tbc:
// same Counters and cycle model, same Trace behaviour (tracing falls
// back to the careful per-instruction path), same runtime-call / exit
// / SIGTRAP dispatch, the same errors at the same addresses with
// machine state positioned identically, and the same self-modifying
// code semantics via the shared CodeTracker write barrier (a store
// into translated code flushes the cache and aborts the in-flight
// block). See DESIGN.md §13.
package ir

import (
	"encoding/binary"
	"fmt"

	"e9patch/internal/emu"
	"e9patch/internal/emu/tbc"
	"e9patch/internal/x86"
)

// uop is one micro-op. It returns the index of the next micro-op in
// the block, or done to leave the block (control transfer, fault,
// halt, or SMC abort). Micro-ops update RIP only when leaving.
type uop func(*state) int

// done is the uop return value that exits the block dispatch loop.
const done = -1

// block is one lifted run of straight-line code.
type block struct {
	start uint64
	end   uint64 // address one past the final instruction
	insts []x86.Inst

	// ops is the threaded code: ops[i] executes insts[i]; a possible
	// extra trailing epilogue op materializes the fallthrough RIP.
	ops []uop

	// succAddr/succ chain blocks across direct control transfers,
	// exactly as in tbc.
	succAddr [2]uint64
	succ     [2]*block
}

// state is the per-engine execution state threaded through micro-ops.
type state struct {
	m   *emu.Machine
	trk *tbc.CodeTracker

	// fl is the deferred flag record (lazy.go).
	fl flagRec

	// err, when set by a micro-op returning done, aborts Run.
	err error

	// One-entry load/store TLBs: last-touched page per direction.
	// Page arrays are never recycled by Memory, so caching the slice
	// is sound; the caches are reset when the engine rebinds memory.
	ldIdx  uint64
	ldPage []byte
	stIdx  uint64
	stPage []byte
}

// Stats counts translation and optimization events, for tests and
// tooling.
type Stats struct {
	// Translations is the number of blocks lifted.
	Translations uint64
	// Lookups is the number of dispatch-loop block transitions.
	Lookups uint64
	// Chained is the subset of Lookups resolved via a chain pointer.
	Chained uint64
	// Flushes is the number of whole-cache invalidations.
	Flushes uint64
	// FastBlocks counts block executions on the threaded-code path.
	FastBlocks uint64
	// CarefulBlocks counts block executions on the per-instruction
	// fallback path (tracer installed or budget nearly exhausted).
	CarefulBlocks uint64
	// ElidedFlags counts flag-producing instructions whose flag
	// computation was removed entirely by block-local liveness.
	ElidedFlags uint64
	// FoldedEAs counts memory operands whose effective address was
	// resolved to a constant at lift time.
	FoldedEAs uint64
}

// Engine is the IR-lifting execution engine. An Engine binds to a
// single Machine's memory via the write barrier; create one per
// machine (workload.NewMachine does).
type Engine struct {
	blocks map[uint64]*block
	trk    *tbc.CodeTracker
	mem    *emu.Memory
	st     state

	// Stats accumulates lift/dispatch events across Run calls.
	Stats Stats
}

// New returns an empty IR engine.
func New() *Engine {
	e := &Engine{blocks: make(map[uint64]*block)}
	e.trk = tbc.NewCodeTracker(func() {
		clear(e.blocks)
		e.Stats.Flushes++
	})
	e.st.trk = e.trk
	return e
}

func init() {
	emu.RegisterEngine("ir", func() emu.Engine { return New() })
}

// Run implements emu.Engine: execute until halt or budget exhaustion,
// observationally identical to the interpreter loop.
func (e *Engine) Run(m *emu.Machine, maxInst uint64) error {
	if e.mem != m.Mem {
		if e.mem != nil {
			e.trk.Flush()
		}
		e.mem = m.Mem
		m.Mem.SetWriteBarrier(e.trk.Invalidate)
		e.st.ldPage, e.st.stPage = nil, nil
	}
	e.trk.Flushed = false

	st := &e.st
	st.m = m
	st.err = nil
	st.fl.kind = kEager // Machine.Flags is authoritative on entry

	var prev *block // block whose terminator brought us here, for chaining
	for !m.Halted() {
		if m.Counters.Instructions >= maxInst {
			st.materialize()
			return fmt.Errorf("%w (%d at rip=%#x)", emu.ErrMaxInstructions, maxInst, m.RIP)
		}
		// Special addresses (exit sentinel, runtime calls) are never
		// mapped, so they are only reachable at block boundaries. The
		// cheap inline probe keeps the flags lazy across ordinary
		// block transitions; StepSpecial runs only when it will act.
		if m.RIP == m.ExitAddr || m.Runtime[m.RIP] != nil {
			st.materialize()
			if handled, err := m.StepSpecial(); err != nil {
				return err
			} else if handled {
				prev = nil
				continue
			}
		}
		if e.trk.Flushed {
			// A flush raised by the previous block (mid-block SMC
			// abort) or outside block execution (a runtime call wrote
			// into translated code): prev points into the dropped
			// generation and must not seed chaining.
			e.trk.Flushed = false
			prev = nil
		}

		pc := m.RIP
		e.Stats.Lookups++
		var b *block
		if prev != nil {
			if prev.succAddr[0] == pc && prev.succ[0] != nil {
				b = prev.succ[0]
				e.Stats.Chained++
			} else if prev.succAddr[1] == pc && prev.succ[1] != nil {
				b = prev.succ[1]
				e.Stats.Chained++
			}
		}
		if b == nil {
			b = e.blocks[pc]
			if b == nil {
				var err error
				if b, err = e.compile(m, pc); err != nil {
					st.materialize()
					return err
				}
			}
			if prev != nil {
				if prev.succAddr[0] == pc {
					prev.succ[0] = b
				} else if prev.succAddr[1] == pc {
					prev.succ[1] = b
				}
			}
		}
		prev = b

		if m.Trace == nil && maxInst-m.Counters.Instructions >= uint64(len(b.insts)) {
			// Fast path: the whole block fits in the remaining budget
			// and nobody observes per-instruction state. Threaded
			// dispatch with lazy flags.
			e.Stats.FastBlocks++
			ops := b.ops
			i := 0
			for i >= 0 {
				i = ops[i](st)
			}
			if st.err != nil {
				st.materialize()
				err := st.err
				st.err = nil
				return err
			}
		} else {
			// Careful path: a tracer is installed or the budget could
			// expire mid-block. Execute per instruction through
			// ExecDecoded, which yields tracer-mutation and budget
			// parity with tbc/interp by construction.
			e.Stats.CarefulBlocks++
			st.materialize()
			if err := e.runCareful(m, b, maxInst); err != nil {
				return err
			}
		}
	}
	st.materialize()
	return nil
}

// runCareful executes b one instruction at a time, mirroring the tbc
// inner loop exactly. On a mid-block SMC flush it returns with
// trk.Flushed still set; the dispatch loop clears it and drops the
// chain seed.
func (e *Engine) runCareful(m *emu.Machine, b *block, maxInst uint64) error {
	for i := range b.insts {
		if m.Counters.Instructions >= maxInst {
			return fmt.Errorf("%w (%d at rip=%#x)", emu.ErrMaxInstructions, maxInst, m.RIP)
		}
		inst := &b.insts[i]
		if m.Trace != nil {
			// Private copy so a mutating tracer cannot poison the
			// cached decode (same contract as tbc).
			c := *inst
			c.Bytes = append([]byte(nil), inst.Bytes...)
			inst = &c
		}
		if err := m.ExecDecoded(inst); err != nil {
			return err
		}
		if m.Halted() || e.trk.Flushed {
			return nil
		}
	}
	return nil
}

// fault records a wrapped execution error with machine state
// positioned exactly as the interpreter leaves it: RIP at the faulting
// instruction.
func (s *state) fault(inst *x86.Inst, err error) int {
	s.m.RIP = inst.Addr
	s.err = fmt.Errorf("emu: at %#x (% x): %w", inst.Addr, inst.Bytes, err)
	return done
}

// load reads n little-endian bytes through the load TLB. The fault
// error names the first unmapped byte, matching Memory.read.
func (s *state) load(addr uint64, n int) (uint64, error) {
	off := addr % emu.PageSize
	if off+uint64(n) <= emu.PageSize {
		idx := addr / emu.PageSize
		pg := s.ldPage
		if pg == nil || idx != s.ldIdx {
			pg = s.m.Mem.PageSlice(addr, false)
			if pg == nil {
				return 0, fmt.Errorf("emu: read fault at %#x", addr)
			}
			s.ldIdx, s.ldPage = idx, pg
		}
		switch n {
		case 8:
			return binary.LittleEndian.Uint64(pg[off:]), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(pg[off:])), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(pg[off:])), nil
		default:
			return uint64(pg[off]), nil
		}
	}
	return s.m.Mem.ReadInt(addr, n)
}

// store writes n little-endian bytes through the store TLB, firing
// the write barrier first (stores never fault: pages are created on
// demand, as in Memory.write).
func (s *state) store(addr uint64, v uint64, n int) {
	off := addr % emu.PageSize
	if off+uint64(n) > emu.PageSize {
		_ = s.m.Mem.WriteInt(addr, v, n) // fires the barrier itself
		return
	}
	s.m.Mem.FireBarrier(addr, n)
	idx := addr / emu.PageSize
	pg := s.stPage
	if pg == nil || idx != s.stIdx {
		pg = s.m.Mem.PageSlice(addr, true)
		s.stIdx, s.stPage = idx, pg
	}
	switch n {
	case 8:
		binary.LittleEndian.PutUint64(pg[off:], v)
	case 4:
		binary.LittleEndian.PutUint32(pg[off:], uint32(v))
	case 2:
		binary.LittleEndian.PutUint16(pg[off:], uint16(v))
	default:
		pg[off] = byte(v)
	}
}

// push mirrors Machine.push: RSP moves first, then the Mem cycle,
// then the store (which cannot fault).
func (s *state) push(v uint64) {
	m := s.m
	sp := m.Regs[x86.RSP] - 8
	m.Regs[x86.RSP] = sp
	m.Counters.Cycles += m.Cost.Mem
	s.store(sp, v, 8)
}

// pop mirrors Machine.pop: the read happens (and may fault) before
// RSP moves and before the Mem cycle is charged.
func (s *state) pop() (uint64, error) {
	m := s.m
	v, err := s.load(m.Regs[x86.RSP], 8)
	if err != nil {
		return 0, err
	}
	m.Regs[x86.RSP] += 8
	m.Counters.Cycles += m.Cost.Mem
	return v, nil
}

// branch mirrors Machine.branch: taken-branch and far-jump accounting,
// returning the target RIP.
func (s *state) branch(from, target uint64) uint64 {
	m := s.m
	m.Counters.TakenBranches++
	m.Counters.Cycles += m.Cost.BranchTaken
	dist := target - from
	if int64(dist) < 0 {
		dist = -dist
	}
	if dist > m.Cost.FarDistance {
		m.Counters.FarJumps++
		m.Counters.Cycles += m.Cost.FarJump
	}
	return target
}
