package ir_test

import (
	"reflect"
	"testing"
	"time"

	"e9patch/internal/emu"
	"e9patch/internal/emu/ir"
	"e9patch/internal/loader"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// The cross-engine conformance lattice lives in internal/emu/enginetest
// and covers ir alongside interp and tbc. This file tests what is
// specific to the IR engine: that its optimizations actually fire
// (flag elision, constant folding, threaded fast path) and that the
// lifting pays off in speed.

func runKernel(t *testing.T, kernel string, eng emu.Engine) *emu.Machine {
	t.Helper()
	prog, err := workload.BuildKernel(kernel, false)
	if err != nil {
		t.Fatal(err)
	}
	m := workload.NewMachine(nil)
	m.Engine = eng
	entry, err := loader.BuildImage(m, prog.ELF, loader.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.RIP = entry
	if err := m.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestKernelsAgreeWithInterp is a quick smoke check across all runnable
// kernels (the full lattice is in enginetest): identical registers,
// flags, counters and output versus the interpreter.
func TestKernelsAgreeWithInterp(t *testing.T) {
	saved := workload.KernelIters
	workload.KernelIters = 3000
	defer func() { workload.KernelIters = saved }()

	for _, kernel := range []string{"memstream", "branchy", "matrix", "pointer", "callheavy"} {
		interp := runKernel(t, kernel, nil)
		lifted := runKernel(t, kernel, ir.New())
		type view struct {
			Regs     [16]uint64
			RIP      uint64
			Flags    uint64
			ExitCode uint64
			Counters emu.Counters
			Output   []uint64
		}
		iv := view{interp.Regs, interp.RIP, interp.Flags, interp.ExitCode, interp.Counters, interp.Output}
		lv := view{lifted.Regs, lifted.RIP, lifted.Flags, lifted.ExitCode, lifted.Counters, lifted.Output}
		if !reflect.DeepEqual(iv, lv) {
			t.Errorf("%s: ir diverged from interp:\ninterp: %+v\nir:     %+v", kernel, iv, lv)
		}
	}
}

// TestOptimizationStats checks the lift-time optimizations fire on a
// hot loop: blocks are lifted once and re-dispatched via chaining, the
// fast path carries essentially all executions, and dead-flag
// elimination removes a nonzero share of flag computations.
func TestOptimizationStats(t *testing.T) {
	saved := workload.KernelIters
	workload.KernelIters = 5000
	defer func() { workload.KernelIters = saved }()

	eng := ir.New()
	runKernel(t, "memstream", eng)
	s := eng.Stats
	if s.Translations == 0 || s.Lookups == 0 {
		t.Fatalf("no lift activity: %+v", s)
	}
	if s.Translations > 200 {
		t.Errorf("lifted %d blocks for a tiny kernel (cache not reused?)", s.Translations)
	}
	if s.Chained*2 < s.Lookups {
		t.Errorf("chaining resolved %d of %d transitions; expected a majority", s.Chained, s.Lookups)
	}
	if s.FastBlocks == 0 {
		t.Error("no block ran on the threaded fast path")
	}
	if s.CarefulBlocks != 0 {
		t.Errorf("%d careful-path executions with no tracer and a huge budget", s.CarefulBlocks)
	}
	if s.ElidedFlags == 0 {
		t.Error("dead-flag elimination removed nothing on the memstream loop")
	}
	if s.Flushes != 0 {
		t.Errorf("%d spurious flushes on non-self-modifying code", s.Flushes)
	}
}

// TestConstantFolding: effective addresses built from registers loaded
// with immediates inside the block fold at lift time, and the lifted
// code still computes the same memory image as the interpreter.
func TestConstantFolding(t *testing.T) {
	const base = 0x401000
	const buf = 0x500000
	build := func() []byte {
		a := x86.NewAsm(base)
		// rbx becomes a known constant; the three stores below all
		// have lift-time-constant addresses. xor zeroes rax (also a
		// known constant), so [rbx+rax*8] folds too.
		a.MovRegImm64(x86.RBX, buf)
		a.XorRegReg32(x86.RAX, x86.RAX)
		a.MovMemImm8(x86.M(x86.RBX, 0), 0x11)
		a.MovMemImm8(x86.M(x86.RBX, 1), 0x22)
		a.MovMemImm8(x86.MIdx(x86.RBX, x86.RAX, 8, 2), 0x33)
		a.Ret()
		return a.MustFinish()
	}
	text := build()

	run := func(eng emu.Engine) *emu.Machine {
		m := emu.NewMachine()
		m.Engine = eng
		m.Mem.WriteBytes(base, text)
		m.Mem.Map(buf, 0x1000)
		m.SetupStack(workload.StackTop, workload.StackSize)
		m.RIP = base
		if err := m.Run(10_000); err != nil {
			t.Fatal(err)
		}
		return m
	}

	interp := run(nil)
	eng := ir.New()
	lifted := run(eng)

	if addr, diff := emu.DiffMemory(interp.Mem, lifted.Mem); diff {
		t.Errorf("memory diverged at %#x", addr)
	}
	if interp.Flags != lifted.Flags || interp.Regs != lifted.Regs {
		t.Errorf("state diverged: flags %#x vs %#x", interp.Flags, lifted.Flags)
	}
	if got, _ := lifted.Mem.ReadInt(buf, 2); got != 0x2211 {
		t.Errorf("stores landed wrong: %#x", got)
	}
	if eng.Stats.FoldedEAs < 3 {
		t.Errorf("folded %d effective addresses, want >= 3", eng.Stats.FoldedEAs)
	}
}

// TestIRSpeedup is the performance gate for the lifting engine: at
// least 4x the interpreter on the memstream kernel. (The BENCH target
// is 10x; the conservative test bound keeps CI robust on loaded
// machines — see BENCH_engines.json for recorded numbers.)
func TestIRSpeedup(t *testing.T) {
	saved := workload.KernelIters
	workload.KernelIters = 150_000
	defer func() { workload.KernelIters = saved }()
	prog, err := workload.BuildKernel("memstream", false)
	if err != nil {
		t.Fatal(err)
	}

	measure := func(mk func() emu.Engine) float64 {
		best := 0.0
		for trial := 0; trial < 2; trial++ {
			m := workload.NewMachine(nil)
			m.Engine = mk()
			entry, err := loader.BuildImage(m, prog.ELF, loader.Options{})
			if err != nil {
				t.Fatal(err)
			}
			m.RIP = entry
			start := time.Now()
			if err := m.Run(2_000_000_000); err != nil {
				t.Fatal(err)
			}
			ips := float64(m.Counters.Instructions) / time.Since(start).Seconds()
			if ips > best {
				best = ips
			}
		}
		return best
	}

	interpIPS := measure(func() emu.Engine { return nil })
	irIPS := measure(func() emu.Engine { return ir.New() })
	ratio := irIPS / interpIPS
	t.Logf("interp %.1f Minst/s, ir %.1f Minst/s, speedup %.2fx",
		interpIPS/1e6, irIPS/1e6, ratio)
	if ratio < 4 {
		t.Errorf("ir speedup %.2fx < 4x (interp %.0f inst/s, ir %.0f inst/s)",
			ratio, interpIPS, irIPS)
	}
}
