// Package emu is an x86-64 user-mode emulator for the instruction
// subset produced by the workload generator and the trampoline
// compiler. It substitutes for the paper's hardware testbed: relative
// runtime overheads (Table 1 Time%, Figures 4 and 5) are measured by
// executing original and patched programs on identical inputs under a
// documented cycle model.
//
// The emulator also models the B0 baseline: executing int3 dispatches
// through a SIGTRAP table at a large fixed cost, reproducing the
// "orders of magnitude" slowdown of signal-based patching (§2.1.1).
package emu

import (
	"errors"
	"fmt"

	"e9patch/internal/x86"
)

// RFLAGS bit positions.
const (
	FlagCF uint64 = 1 << 0
	FlagPF uint64 = 1 << 2
	FlagAF uint64 = 1 << 4
	FlagZF uint64 = 1 << 6
	FlagSF uint64 = 1 << 7
	FlagDF uint64 = 1 << 10
	FlagOF uint64 = 1 << 11

	// FlagsAlways is the always-set reserved bit 1 plus IF. Exported
	// for engines that reconstruct RFLAGS (popfq, flag materialization).
	FlagsAlways uint64 = 1<<1 | 1<<9
)

// CostModel assigns cycle weights to dynamic events. The defaults are
// calibrated so that the *shape* of the paper's overhead results holds;
// see DESIGN.md §2 for the substitution rationale.
type CostModel struct {
	// ALU is the base cost of any instruction.
	ALU uint64
	// Mem is the surcharge for each memory access.
	Mem uint64
	// BranchTaken is the surcharge for a taken near branch.
	BranchTaken uint64
	// FarJump is the surcharge for a taken branch whose target is more
	// than FarDistance away (trampoline hops: icache/BTB pressure).
	FarJump uint64
	// FarDistance is the near/far threshold in bytes.
	FarDistance uint64
	// CallRet is the surcharge for call and ret.
	CallRet uint64
	// Mul is the surcharge for multiplies.
	Mul uint64
	// Signal is the cost of an int3 → SIGTRAP → handler round trip
	// (B0 patching).
	Signal uint64
	// Runtime is the flat cost of a runtime (libc-analogue) call.
	Runtime uint64
}

// DefaultCost returns the calibrated default cost model.
func DefaultCost() CostModel {
	return CostModel{
		ALU:         1,
		Mem:         1,
		BranchTaken: 1,
		FarJump:     5,
		FarDistance: 1 << 12,
		CallRet:     1,
		Mul:         2,
		Signal:      3000,
		Runtime:     40,
	}
}

// PageSize is the emulated page size.
const PageSize = 0x1000

type page [PageSize]byte

// Memory is a sparse paged address space.
type Memory struct {
	pages map[uint64]*page
	// barrier, when non-nil, runs before any byte in [addr, addr+size)
	// is modified. Translation caches hook it to invalidate blocks
	// decoded from pages that are written (self-modifying code).
	barrier func(addr, size uint64)
}

// NewMemory returns an empty address space.
func NewMemory() *Memory { return &Memory{pages: make(map[uint64]*page)} }

func (m *Memory) pageFor(addr uint64, create bool) *page {
	idx := addr / PageSize
	p := m.pages[idx]
	if p == nil && create {
		p = new(page)
		m.pages[idx] = p
	}
	return p
}

// Mapped reports whether the page containing addr exists.
func (m *Memory) Mapped(addr uint64) bool { return m.pageFor(addr, false) != nil }

// Map ensures pages covering [addr, addr+size) exist.
func (m *Memory) Map(addr, size uint64) {
	for a := addr / PageSize; a <= (addr+size-1)/PageSize; a++ {
		if m.pages[a] == nil {
			m.pages[a] = new(page)
		}
	}
}

// SetWriteBarrier installs fn to run before every store (nil removes
// it). At most one barrier is active per Memory; the last caller wins.
func (m *Memory) SetWriteBarrier(fn func(addr, size uint64)) { m.barrier = fn }

// WriteBytes copies b into memory, mapping pages as needed.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	if m.barrier != nil && len(b) > 0 {
		m.barrier(addr, uint64(len(b)))
	}
	for len(b) > 0 {
		p := m.pageFor(addr, true)
		off := addr % PageSize
		n := copy(p[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// ReadBytes reads n bytes; unmapped bytes read as zero and set ok=false.
func (m *Memory) ReadBytes(addr uint64, n int) ([]byte, bool) {
	out := make([]byte, n)
	ok := true
	for i := 0; i < n; {
		p := m.pageFor(addr+uint64(i), false)
		off := (addr + uint64(i)) % PageSize
		span := PageSize - int(off)
		if span > n-i {
			span = n - i
		}
		if p == nil {
			ok = false
		} else {
			copy(out[i:i+span], p[off:])
		}
		i += span
	}
	return out, ok
}

func (m *Memory) read(addr uint64, n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		p := m.pageFor(addr+uint64(i), false)
		if p == nil {
			return 0, fmt.Errorf("emu: read fault at %#x", addr+uint64(i))
		}
		v |= uint64(p[(addr+uint64(i))%PageSize]) << (8 * uint(i))
	}
	return v, nil
}

func (m *Memory) write(addr uint64, v uint64, n int) error {
	if m.barrier != nil {
		m.barrier(addr, uint64(n))
	}
	for i := 0; i < n; i++ {
		p := m.pageFor(addr+uint64(i), true)
		p[(addr+uint64(i))%PageSize] = byte(v >> (8 * uint(i)))
	}
	return nil
}

// RuntimeFn is a native runtime-call implementation. Arguments follow
// the SysV convention (rdi, rsi, rdx, rcx); the result goes to rax.
type RuntimeFn func(m *Machine) error

// Event counters for overhead attribution.
type Counters struct {
	// Instructions is the dynamic instruction count.
	Instructions uint64
	// Cycles is the modelled cycle count.
	Cycles uint64
	// TakenBranches counts taken branches.
	TakenBranches uint64
	// FarJumps counts taken branches beyond FarDistance.
	FarJumps uint64
	// Signals counts int3 dispatches (B0).
	Signals uint64
	// RuntimeCalls counts native runtime calls.
	RuntimeCalls uint64
}

// Engine is a pluggable execution strategy for Run. A nil Engine is
// the decode-per-step interpreter; internal/emu/tbc provides a cached
// basic-block translation engine. Engines must be observationally
// identical to the interpreter: same Counters, Trace callbacks,
// runtime-call, SIGTRAP and error behaviour.
type Engine interface {
	// Run executes until halt or until the machine's dynamic
	// instruction count reaches maxInst, mirroring Machine.Run.
	Run(m *Machine, maxInst uint64) error
}

// Machine is one emulated hart plus its memory and runtime bindings.
type Machine struct {
	Regs  [16]uint64
	RIP   uint64
	Flags uint64
	Mem   *Memory

	// Engine, when non-nil, replaces the interpreter loop in Run.
	Engine Engine

	Cost     CostModel
	Counters Counters

	// Runtime maps magic call-target addresses to native functions.
	Runtime map[uint64]RuntimeFn
	// SigTab maps int3 addresses to trampoline addresses (B0).
	SigTab map[uint64]uint64

	// Output collects values the program emits via the write runtime
	// call; differential tests compare it.
	Output []uint64

	// Trace, when non-nil, is invoked before each instruction executes
	// (debugging and instrumentation-verification hook).
	Trace func(inst *x86.Inst)

	// ExitAddr is the sentinel return address that halts the machine.
	ExitAddr uint64
	// ExitCode is the value of rax at halt.
	ExitCode uint64

	halted bool
}

// Common machine errors.
var (
	// ErrMaxInstructions reports that the step budget was exhausted.
	ErrMaxInstructions = errors.New("emu: instruction budget exhausted")
	// ErrUd2 reports execution of ud2 (used for enforced hardening
	// violations).
	ErrUd2 = errors.New("emu: ud2 executed")
)

// ExitSentinel is the default halting return address.
const ExitSentinel uint64 = 0xE9E9_DEAD_0000

// NewMachine returns a machine with empty memory and default costs.
func NewMachine() *Machine {
	return &Machine{
		Mem:      NewMemory(),
		Cost:     DefaultCost(),
		Flags:    FlagsAlways,
		Runtime:  make(map[uint64]RuntimeFn),
		SigTab:   make(map[uint64]uint64),
		ExitAddr: ExitSentinel,
	}
}

// Halted reports whether the machine has stopped.
func (m *Machine) Halted() bool { return m.halted }

// SetupStack maps a stack and pushes the exit sentinel so that the
// program's final ret halts the machine.
func (m *Machine) SetupStack(top uint64, size uint64) {
	m.Mem.Map(top-size, size)
	sp := top - 8
	_ = m.Mem.write(sp, m.ExitAddr, 8)
	m.Regs[x86.RSP] = sp
}

// Reg returns a register value.
func (m *Machine) Reg(r x86.Reg) uint64 { return m.Regs[r] }

// SetReg sets a register value.
func (m *Machine) SetReg(r x86.Reg, v uint64) { m.Regs[r] = v }

// Run executes until halt or until maxInst instructions have retired.
func (m *Machine) Run(maxInst uint64) error {
	if m.Engine != nil {
		return m.Engine.Run(m, maxInst)
	}
	for !m.halted {
		if m.Counters.Instructions >= maxInst {
			return fmt.Errorf("%w (%d at rip=%#x)", ErrMaxInstructions, maxInst, m.RIP)
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}
