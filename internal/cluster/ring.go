// Package cluster turns a set of independent e9served daemons into a
// consistent-hash cluster (DESIGN.md §15). Membership is static — a
// peer list every node is started with — and coordination is nil by
// design: nodes never gossip, never elect, and never replicate. The
// only shared artifact is the PatchPlan (the serialized decision record
// from the plan/apply split), fetched over a single internal GET when a
// node handles a key it does not own. Plans are kilobytes where results
// are whole binaries and ~20x cheaper to apply than to recompute, which
// is exactly what makes this shape work: losing a peer costs one plan
// fetch or, at worst, one local replan — never correctness.
//
// The package is deliberately server-agnostic: Ring maps cache keys to
// owner URLs, Health tracks peer reachability with a cooldown, and
// Client speaks the one-endpoint internal protocol. The HTTP routing
// policy built on top of them lives in internal/server.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultReplicas is the virtual-node count per peer when Config leaves
// Replicas zero. 64 points per node keeps the maximum ownership skew of
// small (3–10 node) clusters within a few percent while the ring stays
// tiny (a sorted slice scanned by binary search).
const DefaultReplicas = 64

// Ring is an immutable consistent-hash ring over a static peer list.
// Keys map to the first virtual node clockwise from the key's hash;
// adding or removing one peer moves only the keys that peer owned,
// which is the property that lets a fleet restart nodes without
// invalidating every other node's cache shard.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring with replicas virtual nodes per peer
// (replicas <= 0 selects DefaultReplicas). Duplicate and empty peer
// entries are dropped; an all-empty list yields a ring whose Owner
// returns "".
func NewRing(peers []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{}
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		r.nodes = append(r.nodes, p)
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(p, i), node: p})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Ties (astronomically rare with sha256 points) break by name so
		// every node computes the identical ring.
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Nodes returns the distinct peers on the ring, in insertion order.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the peer that owns key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is a circle
	}
	return r.points[i].node
}

// Owners returns up to n distinct peers in ownership order for key:
// the owner first, then the successors a caller may try when the owner
// is down. n larger than the peer count returns every peer.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// pointHash places virtual node i of peer on the ring. The peer name
// and replica index are length-framed so "node1"+replica 11 and
// "node11"+replica 1 cannot collide.
func pointHash(peer string, i int) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(i))
	h := sha256.New()
	binary.Write(h, binary.LittleEndian, uint64(len(peer)))
	h.Write([]byte(peer))
	h.Write(buf[:])
	return binary.LittleEndian.Uint64(h.Sum(nil))
}

// keyHash places a cache key on the ring. Keys are already
// content-address strings (sha256 hex), but hashing again keeps the
// ring independent of the key encoding.
func keyHash(key string) uint64 {
	s := sha256.Sum256([]byte(key))
	return binary.LittleEndian.Uint64(s[:8])
}
