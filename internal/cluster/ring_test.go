package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%064x-%064x", i, i*7+1)
	}
	return out
}

// TestRingDeterministic: every node computes the identical ring, so
// ownership decisions agree fleet-wide regardless of peer-list order.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	b := NewRing([]string{"http://n3", "http://n1", "http://n2"}, 0)
	for _, k := range keys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("ownership disagrees for %s: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingBalance: with virtual nodes, no peer owns a wildly
// disproportionate share of the key space.
func TestRingBalance(t *testing.T) {
	peers := []string{"http://n1", "http://n2", "http://n3"}
	r := NewRing(peers, 0)
	counts := make(map[string]int)
	const n = 3000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	for _, p := range peers {
		got := counts[p]
		// Perfect balance is n/3 = 1000; accept a generous 2x band. The
		// point is "sharded", not "perfect": a node owning everything (or
		// nothing) is the failure this guards against.
		if got < n/6 || got > 2*n/3 {
			t.Fatalf("peer %s owns %d of %d keys: ring is badly skewed (%v)", p, got, n, counts)
		}
	}
}

// TestRingMinimalMovement: removing one peer may only move keys that
// peer owned — survivors keep their shards, so a node death does not
// invalidate the rest of the fleet's caches.
func TestRingMinimalMovement(t *testing.T) {
	full := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	less := NewRing([]string{"http://n1", "http://n2"}, 0)
	moved := 0
	for _, k := range keys(2000) {
		before, after := full.Owner(k), less.Owner(k)
		if before != "http://n3" {
			if before != after {
				t.Fatalf("key %s moved from surviving peer %q to %q", k, before, after)
			}
		} else {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("n3 owned no keys out of 2000: ring is degenerate")
	}
}

// TestRingOwners: the successor list starts at the owner, holds
// distinct peers, and caps at the cluster size.
func TestRingOwners(t *testing.T) {
	r := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	for _, k := range keys(100) {
		owners := r.Owners(k, 5)
		if len(owners) != 3 {
			t.Fatalf("Owners(%s, 5) = %v, want all 3 distinct peers", k, owners)
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners(%s)[0] = %q, Owner = %q", k, owners[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%s) repeats %q: %v", k, o, owners)
			}
			seen[o] = true
		}
	}
}

// TestRingDegenerate: empty and single-node rings behave sanely.
func TestRingDegenerate(t *testing.T) {
	if o := NewRing(nil, 0).Owner("k"); o != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", o)
	}
	one := NewRing([]string{"http://solo", "", "http://solo"}, 0)
	if got := len(one.Nodes()); got != 1 {
		t.Fatalf("dedup failed: %d nodes", got)
	}
	for _, k := range keys(10) {
		if o := one.Owner(k); o != "http://solo" {
			t.Fatalf("single-node ring owner = %q", o)
		}
	}
}

// TestConfigValidate: a Self outside the peer list is a config error,
// not a silent all-remote cluster.
func TestConfigValidate(t *testing.T) {
	bad := Config{Self: "http://me", Peers: []string{"http://a", "http://b"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("self outside peers validated")
	}
	good := Config{Self: "http://a", Peers: []string{"http://a", "http://b"}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("disabled config must validate: %v", err)
	}
}
