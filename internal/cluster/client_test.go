package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestFetchPlanStatuses: 200 returns the payload and marks the peer
// up, 404 is the authoritative ErrNoPlan, other statuses and dead
// sockets are transport failures that trip the health tracker.
func TestFetchPlanStatuses(t *testing.T) {
	var status int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, PlanPath) {
			t.Errorf("fetch hit %s, want prefix %s", r.URL.Path, PlanPath)
		}
		w.WriteHeader(status)
		if status == http.StatusOK {
			w.Write([]byte("plan-bytes"))
		}
	}))
	defer ts.Close()

	h := NewHealth(time.Minute)
	c := NewClient(Config{FetchTimeout: 2 * time.Second}, h, 0)

	status = http.StatusOK
	data, err := c.FetchPlan(context.Background(), ts.URL, "k1")
	if err != nil || string(data) != "plan-bytes" {
		t.Fatalf("200 fetch: %q, %v", data, err)
	}
	if !h.Up(ts.URL) {
		t.Fatal("peer marked down after a 200")
	}

	status = http.StatusNotFound
	if _, err := c.FetchPlan(context.Background(), ts.URL, "k1"); !errors.Is(err, ErrNoPlan) {
		t.Fatalf("404 fetch: %v, want ErrNoPlan", err)
	}
	if !h.Up(ts.URL) {
		t.Fatal("peer marked down after a 404 (a 404 proves liveness)")
	}

	status = http.StatusServiceUnavailable
	if _, err := c.FetchPlan(context.Background(), ts.URL, "k1"); err == nil || errors.Is(err, ErrNoPlan) {
		t.Fatalf("503 fetch: %v, want transport-style failure", err)
	}
	if h.Up(ts.URL) {
		t.Fatal("peer not marked down after a 503")
	}
}

// TestFetchPlanDeadPeer: a connection failure marks the peer down and
// the cooldown gates retries.
func TestFetchPlanDeadPeer(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // nothing listens here any more

	h := NewHealth(50 * time.Millisecond)
	c := NewClient(Config{FetchTimeout: time.Second}, h, 0)
	if _, err := c.FetchPlan(context.Background(), url, "k"); err == nil {
		t.Fatal("fetch from a closed server succeeded")
	}
	if h.Up(url) {
		t.Fatal("dead peer still marked up")
	}
	time.Sleep(80 * time.Millisecond)
	if !h.Up(url) {
		t.Fatal("cooldown never released the peer for a retry probe")
	}
}

// TestFetchPlanOversized: a peer response beyond the cap is rejected
// instead of buffered.
func TestFetchPlanOversized(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 4096))
	}))
	defer ts.Close()
	c := NewClient(Config{}, NewHealth(0), 1024)
	if _, err := c.FetchPlan(context.Background(), ts.URL, "k"); err == nil {
		t.Fatal("oversized plan accepted")
	}
}
