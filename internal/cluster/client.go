package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// PlanPath is the internal endpoint serving encoded PatchPlans by
// cache key. It is rooted under /internal/ so operators can fence it
// from the public surface at the load balancer; the payload is a plan
// (decisions, not code), so leaking one reveals nothing an ordinary
// rewrite response would not.
const PlanPath = "/internal/v1/plan/"

// PlanContentType is the media type of serialized PatchPlans on the
// wire — both the internal peer-fetch payload and the public
// plan-delta response body.
const PlanContentType = "application/x-e9-plan"

// ErrNoPlan reports that the peer answered authoritatively (it is up)
// but does not hold a plan for the key. Callers fall through to a full
// local rewrite without marking the peer down.
var ErrNoPlan = errors.New("cluster: peer holds no plan for key")

// Config describes this node's place in a static cluster.
type Config struct {
	// Self is this node's own advertised base URL; it must appear in
	// Peers verbatim. Empty disables clustering.
	Self string
	// Peers lists every node's advertised base URL, including Self.
	// A list of one (or none) disables clustering.
	Peers []string
	// Replicas is the virtual-node count per peer (0: DefaultReplicas).
	Replicas int
	// FetchTimeout bounds one peer plan fetch or forwarded request
	// probe (0: 2s). Peer fetches sit on the client's latency path, so
	// the bound is short: a slow peer is treated as a down peer.
	FetchTimeout time.Duration
	// Cooldown is how long a peer stays marked down after a transport
	// failure before it is retried (0: 1s).
	Cooldown time.Duration
}

// Enabled reports whether the config names a real multi-node cluster.
func (c Config) Enabled() bool { return c.Self != "" && len(c.Peers) > 1 }

func (c Config) WithDefaults() Config {
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 2 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// Validate rejects configs the ring cannot serve: a Self that is not
// in Peers would silently make every key look remotely owned.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	for _, p := range c.Peers {
		if p == c.Self {
			return nil
		}
	}
	return fmt.Errorf("cluster: self %q is not in the peer list %v", c.Self, c.Peers)
}

// Health tracks peer reachability. A transport-level failure marks the
// peer down for a cooldown; while down, callers skip it (local
// fallback) instead of paying a connect timeout per request. There is
// no active probing: the first request after the cooldown is the probe.
type Health struct {
	mu       sync.Mutex
	cooldown time.Duration
	down     map[string]time.Time // peer -> retry-at
}

// NewHealth returns a tracker with the given cooldown (0: 1s).
func NewHealth(cooldown time.Duration) *Health {
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Health{cooldown: cooldown, down: make(map[string]time.Time)}
}

// MarkDown records a transport failure against peer.
func (h *Health) MarkDown(peer string) {
	h.mu.Lock()
	h.down[peer] = time.Now().Add(h.cooldown)
	h.mu.Unlock()
}

// MarkUp clears a peer's down mark (called after any successful
// response, including 404s — those prove the peer is alive).
func (h *Health) MarkUp(peer string) {
	h.mu.Lock()
	delete(h.down, peer)
	h.mu.Unlock()
}

// Up reports whether peer should be tried now.
func (h *Health) Up(peer string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	until, bad := h.down[peer]
	if !bad {
		return true
	}
	if time.Now().After(until) {
		delete(h.down, peer) // cooldown elapsed: next request probes
		return true
	}
	return false
}

// Client fetches plans from peers and feeds the shared health tracker.
// The zero value is not usable; construct with NewClient.
type Client struct {
	http    *http.Client
	health  *Health
	timeout time.Duration
	maxPlan int64
}

// NewClient builds a peer client. maxPlanBytes caps one fetched plan
// (0: 64 MiB) — a hostile or confused peer must not be able to balloon
// this node's memory through the internal channel.
func NewClient(cfg Config, health *Health, maxPlanBytes int64) *Client {
	cfg = cfg.WithDefaults()
	if maxPlanBytes <= 0 {
		maxPlanBytes = 64 << 20
	}
	return &Client{
		http:    &http.Client{Timeout: cfg.FetchTimeout},
		health:  health,
		timeout: cfg.FetchTimeout,
		maxPlan: maxPlanBytes,
	}
}

// FetchPlan asks peer for the encoded plan of key. It returns the plan
// bytes on 200, ErrNoPlan on 404 (peer alive, plan absent), and a
// transport error otherwise — after marking the peer down so the next
// requests skip it until the cooldown elapses.
func (c *Client) FetchPlan(ctx context.Context, peer, key string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+PlanPath+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.health.MarkDown(peer)
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, c.maxPlan+1))
		if err != nil {
			c.health.MarkDown(peer)
			return nil, err
		}
		if int64(len(data)) > c.maxPlan {
			return nil, fmt.Errorf("cluster: plan from %s exceeds the %d-byte cap", peer, c.maxPlan)
		}
		c.health.MarkUp(peer)
		return data, nil
	case http.StatusNotFound:
		c.health.MarkUp(peer)
		return nil, ErrNoPlan
	default:
		// An unexpected status (a draining 503, a proxy 502) is treated
		// like a transport failure: skip the peer for a cooldown.
		c.health.MarkDown(peer)
		return nil, fmt.Errorf("cluster: peer %s answered %d for plan fetch", peer, resp.StatusCode)
	}
}
