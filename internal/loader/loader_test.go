package loader

import (
	"bytes"
	"testing"

	"e9patch/internal/elf64"
	"e9patch/internal/emu"
	"e9patch/internal/group"
)

func buildGrouped(t *testing.T) *group.Result {
	t.Helper()
	res, err := group.Build([]group.Chunk{
		{Addr: 0x700100, Data: []byte{0xDE, 0xAD}},
		{Addr: 0x702800, Data: []byte{0xBE, 0xEF, 0x01}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	res := buildGrouped(t)
	sig := map[uint64]uint64{0x401000: 0x700100, 0x401005: 0x702800}
	blob := Encode(res, 1, sig, 0x401234)
	b, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if b.Entry != 0x401234 || b.Granularity != 1 {
		t.Errorf("header mismatch: %+v", b)
	}
	if len(b.Mappings) != len(res.Mappings) || len(b.Blocks) != len(res.Blocks) {
		t.Fatalf("structure mismatch")
	}
	for i, mp := range res.Mappings {
		if b.Mappings[i] != mp {
			t.Errorf("mapping %d = %+v, want %+v", i, b.Mappings[i], mp)
		}
	}
	for i := range res.Blocks {
		if !bytes.Equal(b.Blocks[i], res.Blocks[i]) {
			t.Errorf("block %d differs", i)
		}
	}
	if len(b.SigTab) != 2 || b.SigTab[0x401000] != 0x700100 {
		t.Errorf("sigtab = %v", b.SigTab)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil blob accepted")
	}
	if _, err := Decode([]byte{1, 2, 3, 4}); err == nil {
		t.Error("bad magic accepted")
	}
	res := buildGrouped(t)
	blob := Encode(res, 1, nil, 0)
	if _, err := Decode(blob[:len(blob)-5]); err == nil {
		t.Error("truncated blob accepted")
	}
}

func TestBuildImage(t *testing.T) {
	text := bytes.Repeat([]byte{0x90}, 64)
	text[0] = 0xC3
	bin, err := elf64.Build(elf64.BuildSpec{Text: text, Data: []byte("datadata"), BSSSize: 0x100})
	if err != nil {
		t.Fatal(err)
	}
	res := buildGrouped(t)
	sig := map[uint64]uint64{0x401001: 0x700100}
	out := elf64.Append(bin, Encode(res, 1, sig, 0x401000))

	m := emu.NewMachine()
	entry, err := BuildImage(m, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if entry != elf64.DefaultBase+elf64.TextVaddrOff {
		t.Errorf("entry = %#x", entry)
	}
	// Text present.
	b, ok := m.Mem.ReadBytes(entry, 1)
	if !ok || b[0] != 0xC3 {
		t.Error("text not loaded")
	}
	// Trampoline bytes present at their virtual addresses.
	b, _ = m.Mem.ReadBytes(0x700100, 2)
	if b[0] != 0xDE || b[1] != 0xAD {
		t.Errorf("trampoline bytes = % x", b)
	}
	b, _ = m.Mem.ReadBytes(0x702800, 3)
	if b[0] != 0xBE || b[2] != 0x01 {
		t.Errorf("second trampoline bytes = % x", b)
	}
	// SigTab installed with bias applied.
	if m.SigTab[0x401001] != 0x700100 {
		t.Errorf("sigtab = %v", m.SigTab)
	}
	// .bss mapped and zero.
	f, _ := elf64.Parse(out)
	bss, _ := f.SectionByName(".bss")
	b, ok = m.Mem.ReadBytes(bss.Addr, 4)
	if !ok || b[0] != 0 {
		t.Error(".bss not mapped as zeros")
	}
}

func TestBuildImageBias(t *testing.T) {
	text := []byte{0xC3}
	bin, err := elf64.Build(elf64.BuildSpec{PIE: true, Text: text, Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	res := buildGrouped(t)
	out := elf64.Append(bin, Encode(res, 1, nil, elf64.TextVaddrOff))
	m := emu.NewMachine()
	const bias = 0x5555_5555_4000
	entry, err := BuildImage(m, out, Options{Bias: bias})
	if err != nil {
		t.Fatal(err)
	}
	if entry != bias+elf64.TextVaddrOff {
		t.Errorf("entry = %#x", entry)
	}
	if b, _ := m.Mem.ReadBytes(bias+0x700100, 1); b[0] != 0xDE {
		t.Error("biased trampoline missing")
	}
}

func TestMapCountLimit(t *testing.T) {
	// 5 mappings with a limit of 4 must be refused.
	var chunks []group.Chunk
	for i := 0; i < 5; i++ {
		chunks = append(chunks, group.Chunk{Addr: 0x700000 + uint64(i)*0x1000 + uint64(i), Data: []byte{1}})
	}
	res, err := group.Build(chunks, 1)
	if err != nil {
		t.Fatal(err)
	}
	bin, _ := elf64.Build(elf64.BuildSpec{Text: []byte{0xC3}, Data: []byte("x")})
	out := elf64.Append(bin, Encode(res, 1, nil, 0))
	m := emu.NewMachine()
	if _, err := BuildImage(m, out, Options{MaxMapCount: 4}); err == nil {
		t.Fatal("mapping limit not enforced")
	}
	if _, err := BuildImage(m, out, Options{MaxMapCount: 5}); err != nil {
		t.Fatalf("limit 5 should pass: %v", err)
	}
}

func TestUnpatchedBinaryLoads(t *testing.T) {
	bin, _ := elf64.Build(elf64.BuildSpec{Text: []byte{0xC3}, Data: []byte("x")})
	m := emu.NewMachine()
	if _, err := BuildImage(m, bin, Options{}); err != nil {
		t.Fatal(err)
	}
	if len(m.SigTab) != 0 {
		t.Error("phantom sigtab")
	}
}
