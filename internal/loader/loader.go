// Package loader implements the patched binary's load-time machinery.
//
// E9Patch appends trampoline pages to the output file and injects a
// small loader that mmaps them into place before jumping to the real
// entry point (§5.1). In this reproduction the loader is data-driven:
// the appended blob serialises the mmap table, the merged physical
// blocks, and the B0 SIGTRAP dispatch table; BuildImage replays it into
// an emulated address space, enforcing the same vm.max_map_count limit
// a real kernel would.
package loader

import (
	"encoding/binary"
	"errors"
	"fmt"

	"e9patch/internal/elf64"
	"e9patch/internal/emu"
	"e9patch/internal/group"
)

// DefaultMaxMapCount mirrors the Linux vm.max_map_count default (§4).
const DefaultMaxMapCount = 65536

const blobMagic = 0xE9B10B64

// Blob is the parsed appended-data payload.
type Blob struct {
	// Granularity is the grouping granularity M (pages per block).
	Granularity uint32
	// BlockSize is M * page size.
	BlockSize uint64
	// Mappings is the mmap table (block vaddr -> physical block).
	Mappings []group.Mapping
	// Blocks holds the merged physical blocks.
	Blocks [][]byte
	// SigTab maps int3 addresses to trampoline addresses (B0).
	SigTab map[uint64]uint64
	// Entry is the original entry point.
	Entry uint64
}

// Encode serialises a grouping result plus metadata into blob bytes.
func Encode(res *group.Result, granularity int, sigTab map[uint64]uint64, entry uint64) []byte {
	var buf []byte
	le := binary.LittleEndian
	u32 := func(v uint32) { buf = le.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = le.AppendUint64(buf, v) }

	u32(blobMagic)
	u32(uint32(granularity))
	u64(res.Stats.BlockSize)
	u64(entry)
	u32(uint32(len(res.Mappings)))
	for _, mp := range res.Mappings {
		u64(mp.Vaddr)
		u32(uint32(mp.Phys))
	}
	u32(uint32(len(res.Blocks)))
	for _, b := range res.Blocks {
		buf = append(buf, b...)
	}
	u32(uint32(len(sigTab)))
	// Deterministic order.
	keys := make([]uint64, 0, len(sigTab))
	for k := range sigTab {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		u64(k)
		u64(sigTab[k])
	}
	return buf
}

// Decode parses blob bytes.
func Decode(data []byte) (*Blob, error) {
	le := binary.LittleEndian
	pos := 0
	need := func(n int) error {
		if pos+n > len(data) {
			return errors.New("loader: truncated blob")
		}
		return nil
	}
	u32 := func() (uint32, error) {
		if err := need(4); err != nil {
			return 0, err
		}
		v := le.Uint32(data[pos:])
		pos += 4
		return v, nil
	}
	u64 := func() (uint64, error) {
		if err := need(8); err != nil {
			return 0, err
		}
		v := le.Uint64(data[pos:])
		pos += 8
		return v, nil
	}

	magic, err := u32()
	if err != nil || magic != blobMagic {
		return nil, errors.New("loader: bad blob magic")
	}
	b := &Blob{SigTab: make(map[uint64]uint64)}
	if b.Granularity, err = u32(); err != nil {
		return nil, err
	}
	if b.BlockSize, err = u64(); err != nil {
		return nil, err
	}
	if b.Entry, err = u64(); err != nil {
		return nil, err
	}
	nMap, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nMap; i++ {
		v, err := u64()
		if err != nil {
			return nil, err
		}
		p, err := u32()
		if err != nil {
			return nil, err
		}
		b.Mappings = append(b.Mappings, group.Mapping{Vaddr: v, Phys: int(p)})
	}
	nBlocks, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nBlocks; i++ {
		if err := need(int(b.BlockSize)); err != nil {
			return nil, err
		}
		b.Blocks = append(b.Blocks, data[pos:pos+int(b.BlockSize)])
		pos += int(b.BlockSize)
	}
	nSig, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nSig; i++ {
		k, err := u64()
		if err != nil {
			return nil, err
		}
		v, err := u64()
		if err != nil {
			return nil, err
		}
		b.SigTab[k] = v
	}
	for _, mp := range b.Mappings {
		if mp.Phys >= len(b.Blocks) {
			return nil, fmt.Errorf("loader: mapping references block %d of %d", mp.Phys, len(b.Blocks))
		}
	}
	return b, nil
}

// Options controls image construction.
type Options struct {
	// Bias is added to every file virtual address (PIE load base;
	// zero for ET_EXEC).
	Bias uint64
	// MaxMapCount bounds the number of trampoline mappings (0 means
	// DefaultMaxMapCount).
	MaxMapCount int
}

// BuildImage loads a (possibly rewritten) ELF binary plus its appended
// blob into an emulated address space, replaying the mmap table. It
// returns the entry point and installs the B0 dispatch table.
func BuildImage(m *emu.Machine, file []byte, opts Options) (entry uint64, err error) {
	f, err := elf64.Parse(file)
	if err != nil {
		return 0, err
	}
	limit := opts.MaxMapCount
	if limit == 0 {
		limit = DefaultMaxMapCount
	}
	entry = f.Header.Entry + opts.Bias

	// Replay the trampoline mmap table first. Blocks are whole
	// granules: any zero-filled portion that overlaps a loaded segment
	// is shadowed when the segments are copied afterwards (trampolines
	// themselves are never allocated inside segment pages, so the
	// ordering is equivalent to the real loader's page-granular
	// MAP_FIXED calls over non-segment pages only).
	if blob, ok := elf64.AppendedBlob(file); ok {
		b, err := Decode(blob)
		if err != nil {
			return 0, err
		}
		if len(b.Mappings) > limit {
			return 0, fmt.Errorf("loader: %d mappings exceed vm.max_map_count=%d (use a coarser granularity)",
				len(b.Mappings), limit)
		}
		for _, mp := range b.Mappings {
			m.Mem.WriteBytes(mp.Vaddr+opts.Bias, b.Blocks[mp.Phys])
		}
		for addr, tramp := range b.SigTab {
			m.SigTab[addr+opts.Bias] = tramp + opts.Bias
		}
	}

	// Load PT_LOAD segments: file bytes then zero fill to memsz.
	for _, p := range f.Progs {
		if p.Type != elf64.PTLoad {
			continue
		}
		if p.Off+p.Filesz > uint64(len(file)) {
			return 0, fmt.Errorf("loader: segment beyond file end")
		}
		vaddr := p.Vaddr + opts.Bias
		m.Mem.WriteBytes(vaddr, file[p.Off:p.Off+p.Filesz])
		if p.Memsz > p.Filesz {
			m.Mem.Map(vaddr+p.Filesz, p.Memsz-p.Filesz)
		}
	}
	return entry, nil
}
