package eval

import (
	"fmt"
	"io"
	"strings"
)

// Minimal ASCII bar charts so e9bench output reads like the paper's
// figures, not just tables.

// barChart renders labelled horizontal bars scaled to the maximum
// value; baseline marks the 100% point with a '|'.
func barChart(w io.Writer, title string, labels []string, series map[string][]float64, order []string) {
	fmt.Fprintf(w, "%s\n", title)
	maxV := 0.0
	for _, vs := range series {
		for _, v := range vs {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV <= 0 {
		return
	}
	const width = 48
	scale := func(v float64) int {
		n := int(v / maxV * width)
		if n < 1 && v > 0 {
			n = 1
		}
		return n
	}
	baseCol := scale(100)
	for i, lab := range labels {
		for _, name := range order {
			vs := series[name]
			if i >= len(vs) {
				continue
			}
			bar := strings.Repeat("#", scale(vs[i]))
			// Baseline marker at the 100% column.
			if baseCol < len(bar) {
				bar = bar[:baseCol] + "|" + bar[baseCol+1:]
			}
			fmt.Fprintf(w, "  %-18s %-8s %6.1f%% %s\n", lab, name, vs[i], bar)
		}
	}
}

// ChartFigure4 renders the Figure 4 series as bars.
func ChartFigure4(w io.Writer, pts []Fig4Point) {
	labels := make([]string, len(pts))
	chrome := make([]float64, len(pts))
	firefox := make([]float64, len(pts))
	for i, p := range pts {
		labels[i] = p.Suite
		chrome[i] = p.Chrome
		firefox[i] = p.FireFox
	}
	barChart(w, "Figure 4 (bars; '|' marks the 100% baseline):", labels,
		map[string][]float64{"Chrome": chrome, "FireFox": firefox},
		[]string{"Chrome", "FireFox"})
}

// ChartFigure5 renders the Figure 5 series as bars.
func ChartFigure5(w io.Writer, rows []Fig5Row) {
	labels := make([]string, len(rows))
	empty := make([]float64, len(rows))
	lf := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = r.Name
		empty[i] = r.Empty
		lf[i] = r.LowFat
	}
	barChart(w, "Figure 5 (bars; '|' marks the 100% baseline):", labels,
		map[string][]float64{"empty": empty, "lowfat": lf},
		[]string{"empty", "lowfat"})
}
