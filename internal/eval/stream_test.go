package eval

import (
	"os"
	"testing"
)

// TestMain lets the test binary serve as its own stream-measurement
// child when MeasureStream re-execs it.
func TestMain(m *testing.M) {
	MaybeStreamChild()
	os.Exit(m.Run())
}

// TestMeasureStreamSmall runs the streaming measurement on a shrunken
// workload: byte-identity between the buffered and streaming paths is a
// hard invariant at any size, and the streaming path must never peak
// above the buffered one. At this scale the two childrens' peaks may
// coincide (both can peak in the shared disassembly phase), so only the
// full fixed-budget assertion — which runs at 100 MB+ in
// `e9bench -stream`, where the margins are hundreds of MB — demands a
// strict saving.
func TestMeasureStreamSmall(t *testing.T) {
	sb, err := MeasureStream(8, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sb.Identical {
		t.Fatal("streamed output diverged from buffered rewrite")
	}
	if sb.Insts == 0 || sb.Locations == 0 {
		t.Fatalf("degenerate workload: %d insts, %d locations", sb.Insts, sb.Locations)
	}
	if sb.InputBytes < 8<<20 {
		t.Fatalf("workload is %d bytes, want >= %d", sb.InputBytes, 8<<20)
	}
	if sb.StreamPeakBytes > sb.BufferedPeakBytes {
		t.Fatalf("stream peak RSS %d > buffered peak %d", sb.StreamPeakBytes, sb.BufferedPeakBytes)
	}
	if sb.StreamAllocs >= sb.BufferedAllocs {
		t.Fatalf("stream allocs %d >= buffered allocs %d", sb.StreamAllocs, sb.BufferedAllocs)
	}
}
