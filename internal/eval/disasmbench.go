package eval

import (
	"fmt"
	"io"
	"time"

	"e9patch"
	"e9patch/internal/elf64"
	"e9patch/internal/workload"
)

// DisasmModeRow is one (profile, mode) measurement: what the frontend
// recovered, how hard the mode pruned, what the planner did with the
// universe, and how fast the full pipeline ran.
type DisasmModeRow struct {
	Mode string
	// Recovered is the instruction universe handed to the planner.
	// Decoded/Valid break the superset modes down (0 for linear):
	// offsets that decode at all, and survivors of the refinement
	// fixpoint. Anchors counts the superset-cet closure seeds.
	Recovered, Decoded, Valid, Anchors int
	// PruneRatio is the fraction of decoded candidates discarded
	// (0 for linear, where nothing is pruned).
	PruneRatio float64
	// PlanSites and Patched are the jump-selector plan size and the
	// count that patched successfully.
	PlanSites, Patched int
	// Seconds is the best-of-reps full-pipeline time; MBPerSec the
	// resulting input-binary throughput.
	Seconds  float64
	MBPerSec float64
}

// DisasmProfileBench is one profile's sweep over all three modes.
type DisasmProfileBench struct {
	Profile  string
	CET, DSO bool
	TextKB   float64
	Rows     []DisasmModeRow
}

// DisasmBench is the per-mode recovery benchmark recorded in
// BENCH_disasm.json: a paper-era baseline row plus the CET and DSO
// profiles, each rewritten under every disassembly mode.
type DisasmBench struct {
	Scale    float64
	Profiles []DisasmProfileBench
}

// disasmBenchProfiles picks the sweep set: the paper's smallest SPEC
// row as the linear-era baseline, then the modern CET and DSO rows.
var disasmBenchProfiles = []string{"mcf", "nginx-cet", "libz.so", "libcrypto-cet.so"}

// MeasureDisasm rewrites each benchmark profile under all three
// disassembly modes with the jump selector and records recovery
// counts, prune ratios, plan sizes and pipeline throughput.
func MeasureDisasm(opt Options, progress io.Writer) (*DisasmBench, error) {
	opt = opt.withDefaults()
	out := &DisasmBench{Scale: opt.Scale}
	for _, name := range disasmBenchProfiles {
		p, err := workload.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		mix, err := calibratedMix(p)
		if err != nil {
			return nil, err
		}
		prog, err := workload.BuildStaticMix(p, opt.Scale, p.Kind, mix)
		if err != nil {
			return nil, err
		}
		f, err := elf64.Parse(prog.ELF)
		if err != nil {
			return nil, err
		}
		text, _, err := f.Text()
		if err != nil {
			return nil, err
		}
		pb := DisasmProfileBench{
			Profile: p.Name,
			CET:     p.CET,
			DSO:     p.DSO,
			TextKB:  float64(len(text)) / 1024,
		}
		for _, mode := range []e9patch.DisasmMode{
			e9patch.DisasmLinear, e9patch.DisasmSuperset, e9patch.DisasmSupersetCET,
		} {
			if progress != nil {
				fmt.Fprintf(progress, "# disasm: %s mode=%s\n", p.Name, mode)
			}
			cfg := baseConfig(p, A1, opt.Scale)
			cfg.Disasm = mode
			const reps = 2
			best := 0.0
			var res *e9patch.Result
			for i := 0; i < reps; i++ {
				start := time.Now()
				r, err := e9patch.Rewrite(prog.ELF, cfg)
				if err != nil {
					return nil, fmt.Errorf("disasm bench %s/%s: %w", p.Name, mode, err)
				}
				if sec := time.Since(start).Seconds(); best == 0 || sec < best {
					best = sec
				}
				res = r
			}
			row := DisasmModeRow{
				Mode:      string(mode),
				Recovered: res.Insts,
				PlanSites: res.Stats.Total,
				Patched:   res.Stats.Patched(),
				Seconds:   best,
				MBPerSec:  float64(len(prog.ELF)) / 1e6 / best,
			}
			if s := res.Recovery; s != nil {
				row.Decoded = s.Decoded
				row.Valid = s.Valid
				row.Anchors = s.Anchors
				row.PruneRatio = s.PruneRatio()
			}
			pb.Rows = append(pb.Rows, row)
		}
		out.Profiles = append(out.Profiles, pb)
	}
	return out, nil
}

// PrintDisasm renders the mode sweep as a table per profile.
func PrintDisasm(w io.Writer, b *DisasmBench) {
	fmt.Fprintf(w, "Disassembly-mode sweep (jump selector, scale %.2f)\n", b.Scale)
	for _, pb := range b.Profiles {
		tag := ""
		if pb.CET {
			tag += " [cet]"
		}
		if pb.DSO {
			tag += " [dso]"
		}
		fmt.Fprintf(w, "\n%s%s (%.0f KB text)\n", pb.Profile, tag, pb.TextKB)
		fmt.Fprintf(w, "  %-12s %9s %9s %9s %7s %7s %8s %8s %8s %7s\n",
			"mode", "recovered", "decoded", "valid", "anchors", "prune%", "sites", "patched", "sec", "MB/s")
		for _, r := range pb.Rows {
			dash := func(v int) string {
				if v == 0 {
					return "-"
				}
				return fmt.Sprintf("%d", v)
			}
			fmt.Fprintf(w, "  %-12s %9d %9s %9s %7s %6.1f%% %8d %8d %8.3f %7.1f\n",
				r.Mode, r.Recovered, dash(r.Decoded), dash(r.Valid), dash(r.Anchors),
				100*r.PruneRatio, r.PlanSites, r.Patched, r.Seconds, r.MBPerSec)
		}
	}
}
