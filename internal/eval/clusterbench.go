package eval

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"e9patch"
	"e9patch/internal/cluster"
	"e9patch/internal/server"
	"e9patch/internal/workload"
)

// ClusterBench is the distributed-e9served measurement recorded in
// BENCH_cluster.json. It quantifies the two wins clustering claims:
//
//   - Peer plan-fetch: a node handling a key it does not own fetches
//     the owner's PatchPlan (kilobytes) and replays it instead of
//     redoing the tactic search. FetchSpeedup = ReplanSec/PeerFetchSec,
//     both measured as whole HTTP requests against an in-process
//     3-node cluster, so the ratio is conservative (upload time is in
//     both numerator and denominator).
//
//   - Plan-delta responses: Accept: application/x-e9-plan returns the
//     serialized plan for client-side apply; EgressRatio compares that
//     response's wire size (gzip-coded, as negotiated by any real
//     client) against the full rewritten binary on a browser-class
//     (EgressMB) workload with a deliberately branch-dense spec — the
//     worst case for plan size.
//
// Identical gates both: a false value is a correctness bug, not a
// measurement artefact.
type ClusterBench struct {
	Profile string
	Nodes   int

	Locations    int
	ReplanSec    float64
	PeerFetchSec float64
	FetchSpeedup float64
	Identical    bool

	EgressMB        int
	EgressTextMB    int
	FullEgressBytes int
	PlanEgressBytes int
	EgressRatio     float64
	EgressIdentical bool
}

// benchSwap lets an httptest server start (fixing its URL) before the
// node behind it exists — cluster configs need every peer URL up front.
type benchSwap struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *benchSwap) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *benchSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "node not up", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// peerFetchScale sizes the gcc binary the peer-fetch comparison runs
// on (~15 MB of text at 4.0). The two strategies share the HTTP fixed
// costs (upload, hashing, response); the comparison is meaningful only
// when the planning work dominates them, which the default 0.25 eval
// scale (a ~1 MB binary rewritten in tens of milliseconds) does not.
const peerFetchScale = 4.0

// MeasureCluster runs both cluster measurements. egressMB/egressTextMB
// size the plan-delta workload (the acceptance profile is 120/16).
func MeasureCluster(opt Options, egressMB, egressTextMB int, progress io.Writer) (*ClusterBench, error) {
	opt = opt.withDefaults()
	p, err := workload.ProfileByName("gcc")
	if err != nil {
		return nil, err
	}
	prog, err := workload.BuildStatic(p, peerFetchScale)
	if err != nil {
		return nil, err
	}
	out := &ClusterBench{Profile: p.Name, Nodes: 3, EgressMB: egressMB, EgressTextMB: egressTextMB}

	if err := measurePeerFetch(prog.ELF, out, progress); err != nil {
		return nil, err
	}
	if err := measurePlanDeltaEgress(egressMB, egressTextMB, out, progress); err != nil {
		return nil, err
	}
	return out, nil
}

// measurePeerFetch times a cold full rewrite on a key's owner against
// a peer plan-fetch rematerialization of the same key on a non-owner,
// best of 3 fresh keys each, over an in-process 3-node cluster.
func measurePeerFetch(elf []byte, out *ClusterBench, progress io.Writer) error {
	const nodes = 3
	swaps := make([]*benchSwap, nodes)
	https := make([]*httptest.Server, nodes)
	urls := make([]string, nodes)
	for i := range swaps {
		swaps[i] = &benchSwap{}
		https[i] = httptest.NewServer(swaps[i])
		urls[i] = https[i].URL
		defer https[i].Close()
	}
	srvs := make([]*server.Server, nodes)
	byURL := map[string]int{}
	for i := range srvs {
		srvs[i] = server.New(server.Config{
			Workers:  2,
			QueueLen: 16,
			Cluster:  cluster.Config{Self: urls[i], Peers: urls},
		})
		defer srvs[i].Close()
		swaps[i].set(srvs[i].Handler())
		byURL[urls[i]] = i
	}

	post := func(node int, query string) (*http.Response, []byte, float64, error) {
		req, err := http.NewRequest(http.MethodPost,
			urls[node]+"/v1/rewrite?"+query, bytes.NewReader(elf))
		if err != nil {
			return nil, nil, 0, err
		}
		// Mark the request routed so each node handles it itself — the
		// measurement wants the peer-fetch path, not the forwarder.
		req.Header.Set("X-E9-Routed", "1")
		start := time.Now()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, nil, 0, err
		}
		body, err := io.ReadAll(resp.Body)
		sec := time.Since(start).Seconds()
		resp.Body.Close()
		if err != nil {
			return nil, nil, 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, nil, 0, fmt.Errorf("node %d answered %d: %s", node, resp.StatusCode, body)
		}
		return resp, body, sec, nil
	}

	const reps = 3
	out.Identical = true
	for r := 0; r < reps; r++ {
		// A targeted selector (all short-je opcodes: AFL-style edge
		// instrumentation of one branch family) keeps the plan small
		// relative to the planning work — the regime peer plan-fetch is
		// for. A fresh skip value gives each rep a cold key; the owner
		// moves with the hash, so look it up per rep.
		query := fmt.Sprintf("match=op%%3D0x74&action=empty&skip=%d", r)
		keyURL, err := ownerURL(srvs[0], elf, query)
		if err != nil {
			return err
		}
		owner := byURL[keyURL]
		if progress != nil {
			fmt.Fprintf(progress, "# cluster: rep %d replan on node %d\n", r, owner)
		}
		respO, bodyO, replanSec, err := post(owner, query)
		if err != nil {
			return fmt.Errorf("cluster replan: %w", err)
		}
		if st := respO.Header.Get("X-E9-Cache"); st != "miss" {
			return fmt.Errorf("cluster replan rep %d: cache status %q, want miss", r, st)
		}
		other := (owner + 1) % nodes
		if progress != nil {
			fmt.Fprintf(progress, "# cluster: rep %d peer-fetch on node %d\n", r, other)
		}
		respP, bodyP, fetchSec, err := post(other, query)
		if err != nil {
			return fmt.Errorf("cluster peer fetch: %w", err)
		}
		if st := respP.Header.Get("X-E9-Cache"); st != "peer-plan" {
			return fmt.Errorf("cluster peer fetch rep %d: cache status %q, want peer-plan", r, st)
		}
		out.Identical = out.Identical && bytes.Equal(bodyO, bodyP)
		if out.ReplanSec == 0 || replanSec < out.ReplanSec {
			out.ReplanSec = replanSec
		}
		if out.PeerFetchSec == 0 || fetchSec < out.PeerFetchSec {
			out.PeerFetchSec = fetchSec
		}
		if r == 0 {
			var st struct {
				Total int `json:"total"`
			}
			parseStatsHeader(respO.Header.Get("X-E9-Stats"), &st)
			out.Locations = st.Total
		}
	}
	if out.PeerFetchSec > 0 {
		out.FetchSpeedup = out.ReplanSec / out.PeerFetchSec
	}
	return nil
}

// measurePlanDeltaEgress compares the full-binary response size with
// the plan-delta response size on the streaming (browser-class)
// workload, verifying client-side apply reproduces the binary.
func measurePlanDeltaEgress(egressMB, egressTextMB int, out *ClusterBench, progress io.Writer) error {
	if progress != nil {
		fmt.Fprintf(progress, "# cluster: building %d MB egress workload\n", egressMB)
	}
	prog, err := workload.BuildStream(egressMB, egressTextMB)
	if err != nil {
		return err
	}
	srv := server.New(server.Config{
		Workers:      2,
		QueueLen:     16,
		MaxBodyBytes: int64(len(prog.ELF)) + (1 << 20),
		// A browser-class binary's plan outgrows the default 64 MiB plan
		// budget; size both tiers to the workload so the plan banks.
		CacheBytes:     4 * int64(len(prog.ELF)),
		PlanCacheBytes: 4 * int64(len(prog.ELF)),
		Timeout:        10 * time.Minute,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(accept string) ([]byte, error) {
		req, err := http.NewRequest(http.MethodPost,
			ts.URL+"/v1/rewrite?match=jcc+%26+short&action=empty", bytes.NewReader(prog.ELF))
		if err != nil {
			return nil, err
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
			// Explicitly negotiating gzip disables the transport's
			// transparent decompression, so the bytes read below are the
			// wire bytes — what egress means.
			req.Header.Set("Accept-Encoding", "gzip")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("egress rewrite answered %d: %.200s", resp.StatusCode, body)
		}
		return body, nil
	}

	if progress != nil {
		fmt.Fprintf(progress, "# cluster: full-binary response\n")
	}
	full, err := post("")
	if err != nil {
		return err
	}
	if progress != nil {
		fmt.Fprintf(progress, "# cluster: plan-delta response\n")
	}
	planBytes, err := post("application/x-e9-plan")
	if err != nil {
		return err
	}
	out.FullEgressBytes = len(full)
	out.PlanEgressBytes = len(planBytes)
	if len(full) > 0 {
		out.EgressRatio = float64(len(planBytes)) / float64(len(full))
	}

	// The wire bytes are gzip-coded (see servePlan); decompress before
	// decoding, as a real plan-delta client would.
	zr, err := gzip.NewReader(bytes.NewReader(planBytes))
	if err != nil {
		return fmt.Errorf("plan-delta body is not gzip-coded: %w", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return fmt.Errorf("plan-delta gunzip: %w", err)
	}
	if err := zr.Close(); err != nil {
		return fmt.Errorf("plan-delta gunzip: %w", err)
	}
	pl, err := e9patch.DecodePlan(raw)
	if err != nil {
		return fmt.Errorf("plan-delta body does not decode: %w", err)
	}
	applied, err := e9patch.ApplyContext(context.Background(), prog.ELF, pl)
	if err != nil {
		return fmt.Errorf("client-side apply: %w", err)
	}
	out.EgressIdentical = bytes.Equal(applied.Output, full)
	return nil
}

// ownerURL resolves the cluster owner of one request's cache key via
// the server's exported routing probe.
func ownerURL(s *server.Server, body []byte, query string) (string, error) {
	return s.KeyOwner(body, query)
}

// parseStatsHeader best-effort decodes the X-E9-Stats header.
func parseStatsHeader(h string, v any) {
	if h == "" {
		return
	}
	_ = json.Unmarshal([]byte(h), v)
}
