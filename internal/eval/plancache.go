package eval

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"e9patch"
	"e9patch/internal/workload"
)

// PlanCacheBench is the plan-cache-hit rematerialization measurement
// recorded in BENCH_*.json: how much of a full rewrite a cached plan
// skips. Rewrite times the monolithic pipeline, Plan the decision
// phase alone, Apply the decision-free replay — the work a plan-cache
// hit actually performs. Speedup is Rewrite/Apply; Identical reports
// whether Apply reproduced the full rewrite byte-for-byte (a false
// value is a bug, not a measurement artefact). PlanBytes vs OutputBytes
// shows the storage ratio of caching plans instead of results.
type PlanCacheBench struct {
	Profile     string
	App         string
	Locations   int
	RewriteSec  float64
	PlanSec     float64
	ApplySec    float64
	Speedup     float64
	PlanBytes   int
	OutputBytes int
	Identical   bool
}

// MeasurePlanCache times Rewrite, Plan and Apply on a profile's static
// binary (best of N each) and verifies Plan+Apply byte-identity.
func MeasurePlanCache(opt Options, progress io.Writer) (*PlanCacheBench, error) {
	opt = opt.withDefaults()
	p, err := workload.ProfileByName("gcc")
	if err != nil {
		return nil, err
	}
	prog, err := workload.BuildStatic(p, opt.Scale)
	if err != nil {
		return nil, err
	}
	cfg := baseConfig(p, A2, opt.Scale)

	const reps = 3
	bestOf := func(f func() error) (float64, error) {
		best := 0.0
		for i := 0; i < reps; i++ {
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			if sec := time.Since(start).Seconds(); best == 0 || sec < best {
				best = sec
			}
		}
		return best, nil
	}

	out := &PlanCacheBench{Profile: p.Name, App: "A2"}
	if progress != nil {
		fmt.Fprintf(progress, "# plancache: %s rewrite\n", p.Name)
	}
	var ref *e9patch.Result
	out.RewriteSec, err = bestOf(func() error {
		r, err := e9patch.Rewrite(prog.ELF, cfg)
		ref = r
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("plancache rewrite: %w", err)
	}
	if progress != nil {
		fmt.Fprintf(progress, "# plancache: %s plan\n", p.Name)
	}
	var pl *e9patch.PatchPlan
	out.PlanSec, err = bestOf(func() error {
		q, err := e9patch.Plan(prog.ELF, cfg)
		pl = q
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("plancache plan: %w", err)
	}
	if progress != nil {
		fmt.Fprintf(progress, "# plancache: %s apply\n", p.Name)
	}
	var applied *e9patch.Result
	out.ApplySec, err = bestOf(func() error {
		r, err := e9patch.Apply(prog.ELF, pl)
		applied = r
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("plancache apply: %w", err)
	}

	enc, err := pl.Encode()
	if err != nil {
		return nil, err
	}
	out.Locations = ref.Stats.Total
	out.PlanBytes = len(enc)
	out.OutputBytes = len(ref.Output)
	out.Identical = bytes.Equal(ref.Output, applied.Output)
	if out.ApplySec > 0 {
		out.Speedup = out.RewriteSec / out.ApplySec
	}
	return out, nil
}
