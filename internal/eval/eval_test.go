package eval

import (
	"io"
	"math"
	"strings"
	"testing"

	"e9patch/internal/workload"
)

func init() { workload.KernelIters = 1200 }

var fastOpt = Options{Scale: 1.0} // small binaries: full scale is tiny

func smallProfiles(t *testing.T, names ...string) []workload.Profile {
	t.Helper()
	var out []workload.Profile
	for _, n := range names {
		p, err := workload.ProfileByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func TestTable1Small(t *testing.T) {
	rows, err := Table1(fastOpt, smallProfiles(t, "mcf", "lbm", "astar"), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, st := range []AppStats{r.A1, r.A2} {
			if st.Locs == 0 {
				t.Errorf("%s: no locations", r.Profile.Name)
			}
			if st.Succ < st.Base {
				t.Errorf("%s: Succ %.2f < Base %.2f", r.Profile.Name, st.Succ, st.Base)
			}
			sum := st.Base + st.T1 + st.T2 + st.T3
			if math.Abs(sum-st.Succ) > 0.01 {
				t.Errorf("%s: tactic sum %.2f != Succ %.2f", r.Profile.Name, sum, st.Succ)
			}
			if st.SizePct < 100 {
				t.Errorf("%s: output smaller than input (%.1f%%)", r.Profile.Name, st.SizePct)
			}
			if st.TimePct <= 100 {
				t.Errorf("%s: Time%% = %.1f, expected > 100", r.Profile.Name, st.TimePct)
			}
		}
	}
	var sb strings.Builder
	PrintTable1(&sb, rows)
	if !strings.Contains(sb.String(), "mcf") || !strings.Contains(sb.String(), "Total/Avg%") {
		t.Error("table rendering incomplete")
	}
}

func TestTable1NonSPECRowsSkipTime(t *testing.T) {
	rows, err := Table1(fastOpt, smallProfiles(t, "evince"), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].A1.TimePct != 0 {
		t.Error("non-SPEC row measured Time%")
	}
	// evince is PIE: the baseline should dominate.
	if rows[0].A1.Base < 85 {
		t.Errorf("PIE base%% = %.2f", rows[0].A1.Base)
	}
}

func TestSharedObjectGeometry(t *testing.T) {
	// Shared objects cannot use negative offsets; their baseline must
	// be well below a PIE executable of the same mix.
	shared, err := RewriteProfile(mustProfile(t, "libc.so"), A1, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	pie, err := RewriteProfile(mustProfile(t, "vim"), A1, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Stats.BasePercent() >= pie.Stats.BasePercent() {
		t.Errorf("shared base %.2f >= PIE base %.2f", shared.Stats.BasePercent(), pie.Stats.BasePercent())
	}
}

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, err := workload.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFigure4Shape(t *testing.T) {
	pts, err := Figure4(Options{Scale: 1}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(workload.DromaeoSuites) {
		t.Fatalf("%d points", len(pts))
	}
	chromeWins := 0
	var modify, query Fig4Point
	for _, p := range pts {
		if p.Chrome > p.FireFox {
			chromeWins++
		}
		if p.Suite == "Modify" {
			modify = p
		}
		if p.Suite == "Query" {
			query = p
		}
	}
	// Chrome (less JIT dilution) must be the more sensitive browser.
	if chromeWins < len(pts)*3/4 {
		t.Errorf("Chrome more overhead in only %d/%d suites", chromeWins, len(pts))
	}
	// Write-heavy suites hurt more than read-heavy ones.
	if modify.Chrome <= query.Chrome {
		t.Errorf("Modify (%.1f) <= Query (%.1f) for Chrome", modify.Chrome, query.Chrome)
	}
}

func TestFigure5Shape(t *testing.T) {
	rows, err := Figure5(Options{Scale: 1}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var specMean, chromeMean, ffMean *Fig5Row
	for i := range rows {
		r := &rows[i]
		if r.LowFat < r.Empty-1 {
			t.Errorf("%s: LowFat %.1f < empty %.1f", r.Name, r.LowFat, r.Empty)
		}
		switch r.Name {
		case "SPEC Mean":
			specMean = r
		case "Chrome Mean":
			chromeMean = r
		case "FireFox Mean":
			ffMean = r
		}
	}
	if specMean == nil || chromeMean == nil || ffMean == nil {
		t.Fatal("mean rows missing")
	}
	if ffMean.LowFat >= chromeMean.LowFat {
		t.Errorf("FireFox LowFat %.1f >= Chrome %.1f", ffMean.LowFat, chromeMean.LowFat)
	}
}

func TestAblationGroupingShape(t *testing.T) {
	// Run on a subset via a scaled-down option: patch the profile list
	// indirectly by using small scale.
	out, err := AblationGrouping(Options{Scale: 0.02}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range out {
		if g.NaiveSizePct <= g.GroupedSizePct {
			t.Errorf("%s: naive %.1f <= grouped %.1f", g.App, g.NaiveSizePct, g.GroupedSizePct)
		}
		// Grouping must cut bloat by a large factor.
		naiveBloat := g.NaiveSizePct - 100
		groupedBloat := g.GroupedSizePct - 100
		if groupedBloat <= 0 || naiveBloat/groupedBloat < 3 {
			t.Errorf("%s: bloat reduction only %.1fx (naive %.1f%%, grouped %.1f%%)",
				g.App, naiveBloat/groupedBloat, naiveBloat, groupedBloat)
		}
	}
}

func TestAblationGranularityShape(t *testing.T) {
	pts, err := AblationGranularity(Options{Scale: 0.01}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Mappings > pts[i-1].Mappings {
			t.Errorf("M=%d mappings %d > M=%d mappings %d",
				pts[i].M, pts[i].Mappings, pts[i-1].M, pts[i-1].Mappings)
		}
		if pts[i].PhysMB < pts[i-1].PhysMB-0.001 {
			t.Errorf("physical bytes decreased with coarser M")
		}
	}
	if !pts[len(pts)-1].UnderLimit {
		t.Errorf("M=64 extrapolated mappings %d still above limit",
			pts[len(pts)-1].MappingsFullScale)
	}
}

func TestAblationPIEShape(t *testing.T) {
	out, err := AblationPIE(Options{Scale: 0.02}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range out {
		if c.PIEBase <= c.NativeBase {
			t.Errorf("%s/%s: PIE base %.2f <= native %.2f", c.Name, c.App, c.PIEBase, c.NativeBase)
		}
		if c.PIESucc < c.NativeSucc {
			t.Errorf("%s/%s: PIE success %.2f < native %.2f", c.Name, c.App, c.PIESucc, c.NativeSucc)
		}
	}
}

func TestAblationB0Shape(t *testing.T) {
	c, err := AblationB0(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Factor < 5 {
		t.Errorf("signal/jump factor %.1f, want orders of magnitude", c.Factor)
	}
}

func TestMotivationAccuracy(t *testing.T) {
	pts := MotivationAccuracy()
	get := func(n int) float64 {
		for _, p := range pts {
			if p.Jumps == n {
				return p.Effective
			}
		}
		t.Fatalf("missing point %d", n)
		return 0
	}
	if v := get(1000); math.Abs(v-36.77) > 0.1 {
		t.Errorf("0.999^1000 = %.2f%%, want ~36.77%%", v)
	}
	if v := get(10000); v > 0.01 {
		t.Errorf("0.999^10000 = %f%%, want ~0", v)
	}
}
