// Package eval drives the paper's evaluation: it regenerates Table 1,
// Figure 4 and Figure 5, and the supporting ablations (§4 grouping
// granularity, §6.1 file-size/grouping, PIE vs non-PIE, the B0
// baseline, and the §1 control-flow-recovery accuracy motivation).
//
// Every experiment is deterministic. Absolute numbers come from the
// emulator's documented cycle model and the synthetic workload
// geometry (DESIGN.md §2); the comparisons recorded in EXPERIMENTS.md
// are about shape: who wins, by roughly what factor, and where the
// crossovers fall.
package eval

import (
	"fmt"
	"io"
	"math"
	"time"

	"e9patch"
	"e9patch/internal/emu"
	"e9patch/internal/loader"
	"e9patch/internal/lowfat"
	"e9patch/internal/patch"
	"e9patch/internal/va"
	"e9patch/internal/workload"
)

// Options configures an evaluation run.
type Options struct {
	// Scale multiplies the paper's binary sizes for the static
	// profiles (1.0 = full size; the default 0.25 keeps a full Table 1
	// run in the minutes range).
	Scale float64
	// Iters sets the kernel iteration count (0 keeps the default).
	Iters int
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.25
	}
	return o
}

// App selects the instrumentation application.
type App int

// The paper's two instrumentation applications.
const (
	A1 App = iota // all jmp/jcc instructions
	A2            // all heap-write instructions
)

func (a App) String() string {
	if a == A1 {
		return "A1"
	}
	return "A2"
}

func (a App) selector() e9patch.Selector {
	if a == A1 {
		return e9patch.SelectJumps
	}
	return e9patch.SelectHeapWrites
}

// baseConfig assembles the rewrite configuration for a profile.
func baseConfig(p workload.Profile, app App, scale float64) e9patch.Config {
	cfg := e9patch.Config{
		Select:    app.selector(),
		ReserveVA: workload.ReserveVA(),
	}
	if p.Kind == workload.KindShared {
		// The dynamic linker owns the space below a shared object's
		// load address: negative rel32 targets are unusable (§5.1).
		cfg.ReserveVA = append(cfg.ReserveVA, [2]uint64{va.DefaultMin, e9patch.PIEBase})
	}
	if p.DataInText {
		cfg.SkipPrefix = workload.DataPrefixBytes(p, scale)
	}
	return cfg
}

// RewriteProfile builds a profile's static binary (with pilot-calibrated
// encoding fractions) and rewrites it.
func RewriteProfile(p workload.Profile, app App, scale float64, mutate func(*e9patch.Config)) (*e9patch.Result, error) {
	mix, err := calibratedMix(p)
	if err != nil {
		return nil, err
	}
	prog, err := workload.BuildStaticMix(p, scale, p.Kind, mix)
	if err != nil {
		return nil, err
	}
	cfg := baseConfig(p, app, scale)
	if mutate != nil {
		mutate(&cfg)
	}
	return e9patch.Rewrite(prog.ELF, cfg)
}

// runOverhead runs a binary and returns machine state.
func run(bin []byte, prep func(m *emu.Machine)) (*emu.Machine, error) {
	m := workload.NewMachine(nil)
	workload.BindJit(m)
	if prep != nil {
		prep(m)
	}
	f, err := loadInto(m, bin)
	if err != nil {
		return nil, err
	}
	m.RIP = f
	start := time.Now()
	if err := m.Run(2_000_000_000); err != nil {
		return nil, err
	}
	noteEmulation(m.Counters.Instructions, time.Since(start))
	return m, nil
}

func loadInto(m *emu.Machine, bin []byte) (uint64, error) {
	return e9patch.Load(m, bin)
}

// KernelOverhead measures the Time%% ratio (patched cycles / original
// cycles x100) for a profile's kernel under the given instrumentation.
func KernelOverhead(p workload.Profile, app App, tmpl e9patch.Config, lowfatHeap bool) (float64, error) {
	prog, err := workload.BuildKernelTuned(p.Kernel, p.Kind == workload.KindPIE, workload.TuningFor(p))
	if err != nil {
		return 0, err
	}
	cfg := tmpl
	cfg.Select = app.selector()
	cfg.ReserveVA = append(cfg.ReserveVA, workload.ReserveVA()...)
	if lowfatHeap {
		cfg.ReserveVA = append(cfg.ReserveVA, lowfat.ReserveVA()...)
	}
	res, err := e9patch.Rewrite(prog.ELF, cfg)
	if err != nil {
		return 0, err
	}
	var prep func(m *emu.Machine)
	if lowfatHeap {
		prep = func(m *emu.Machine) {
			lowfat.Install(m, workload.RTMalloc, workload.RTFree)
		}
	}
	orig, err := run(prog.ELF, nil)
	if err != nil {
		return 0, err
	}
	patched, err := run(res.Output, prep)
	if err != nil {
		return 0, err
	}
	if lowfatHeap {
		// The hardened run must stay violation-free on correct code.
		if v := lowfat.Violations(patched); v != 0 {
			return 0, fmt.Errorf("eval %s: %d false-positive violations", p.Name, v)
		}
	}
	// Behavioural equivalence is part of every measurement.
	if len(orig.Output) != len(patched.Output) {
		return 0, fmt.Errorf("eval %s: output length diverged", p.Name)
	}
	for i := range orig.Output {
		if orig.Output[i] != patched.Output[i] {
			return 0, fmt.Errorf("eval %s: output diverged at %d", p.Name, i)
		}
	}
	return 100 * float64(patched.Counters.Cycles) / float64(orig.Counters.Cycles), nil
}

// AppStats is one application's half of a Table 1 row.
type AppStats struct {
	Locs                   int
	Base, T1, T2, T3, Succ float64
	TimePct                float64 // 0 when not measured (non-SPEC rows)
	SizePct                float64
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Profile workload.Profile
	A1, A2  AppStats
}

// appStats converts rewrite results into Table 1 columns.
func appStats(res *e9patch.Result) AppStats {
	s := res.Stats
	return AppStats{
		Locs:    s.Total,
		Base:    s.BasePercent(),
		T1:      s.Percent(s.ByTactic[patch.TacticT1]),
		T2:      s.Percent(s.ByTactic[patch.TacticT2]),
		T3:      s.Percent(s.ByTactic[patch.TacticT3]),
		Succ:    s.SuccPercent(),
		SizePct: res.SizePercent(),
	}
}

// Table1 regenerates the patching statistics for the given profiles.
// Time%% is measured only for SPEC rows (as in the paper).
func Table1(opt Options, profiles []workload.Profile, progress io.Writer) ([]Table1Row, error) {
	opt = opt.withDefaults()
	if opt.Iters > 0 {
		workload.KernelIters = opt.Iters
	}
	var rows []Table1Row
	for _, p := range profiles {
		if progress != nil {
			fmt.Fprintf(progress, "# table1: %s\n", p.Name)
		}
		row := Table1Row{Profile: p}
		for _, app := range []App{A1, A2} {
			res, err := RewriteProfile(p, app, opt.Scale, nil)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", p.Name, app, err)
			}
			st := appStats(res)
			if p.IsSPEC() {
				t, err := KernelOverhead(p, app, e9patch.Config{}, false)
				if err != nil {
					return nil, fmt.Errorf("%s/%s time: %w", p.Name, app, err)
				}
				st.TimePct = t
			}
			if app == A1 {
				row.A1 = st
			} else {
				row.A2 = st
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable1 renders rows in the paper's format.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-12s %7s | %8s %6s %5s %5s %5s %6s %7s %7s | %8s %6s %5s %5s %5s %6s %7s %7s\n",
		"Binary", "Size", "A1#Loc", "Base%", "T1%", "T2%", "T3%", "Succ%", "Time%", "Size%",
		"A2#Loc", "Base%", "T1%", "T2%", "T3%", "Succ%", "Time%", "Size%")
	tp := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", v)
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %6.2fM | %8d %6.2f %5.2f %5.2f %5.2f %6.2f %7s %7.2f | %8d %6.2f %5.2f %5.2f %5.2f %6.2f %7s %7.2f\n",
			r.Profile.Name, r.Profile.SizeMB,
			r.A1.Locs, r.A1.Base, r.A1.T1, r.A1.T2, r.A1.T3, r.A1.Succ, tp(r.A1.TimePct), r.A1.SizePct,
			r.A2.Locs, r.A2.Base, r.A2.T1, r.A2.T2, r.A2.T3, r.A2.Succ, tp(r.A2.TimePct), r.A2.SizePct)
	}
	// Aggregate row over what was run.
	var a1loc, a2loc int
	var agg [16]float64
	var nTime1, nTime2 int
	for _, r := range rows {
		a1loc += r.A1.Locs
		a2loc += r.A2.Locs
		agg[0] += r.A1.Base
		agg[1] += r.A1.T1
		agg[2] += r.A1.T2
		agg[3] += r.A1.T3
		agg[4] += r.A1.Succ
		if r.A1.TimePct > 0 {
			agg[5] += r.A1.TimePct
			nTime1++
		}
		agg[6] += r.A1.SizePct
		agg[8] += r.A2.Base
		agg[9] += r.A2.T1
		agg[10] += r.A2.T2
		agg[11] += r.A2.T3
		agg[12] += r.A2.Succ
		if r.A2.TimePct > 0 {
			agg[13] += r.A2.TimePct
			nTime2++
		}
		agg[14] += r.A2.SizePct
	}
	n := float64(len(rows))
	if n == 0 {
		return
	}
	t1, t2 := "-", "-"
	if nTime1 > 0 {
		t1 = fmt.Sprintf("%.2f", agg[5]/float64(nTime1))
	}
	if nTime2 > 0 {
		t2 = fmt.Sprintf("%.2f", agg[13]/float64(nTime2))
	}
	fmt.Fprintf(w, "%-12s %7s | %8d %6.2f %5.2f %5.2f %5.2f %6.2f %7s %7.2f | %8d %6.2f %5.2f %5.2f %5.2f %6.2f %7s %7.2f\n",
		"Total/Avg%", "",
		a1loc, agg[0]/n, agg[1]/n, agg[2]/n, agg[3]/n, agg[4]/n, t1, agg[6]/n,
		a2loc, agg[8]/n, agg[9]/n, agg[10]/n, agg[11]/n, agg[12]/n, t2, agg[14]/n)
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// loaderMaxMapCheck re-exposes the loader's limit for experiment E5.
const MaxMapCount = loader.DefaultMaxMapCount
