package eval

import (
	"fmt"
	"io"
	"math"

	"e9patch"
	"e9patch/internal/emu"
	"e9patch/internal/lowfat"
	"e9patch/internal/patch"
	"e9patch/internal/workload"
)

// Browser JIT fractions for the Figure 4 model: FireFox spends a much
// larger share of DOM-benchmark time in JIT'ed / non-instrumented code
// (§6.2's explanation for its lower sensitivity).
const (
	ChromeJitPct  = 8
	FireFoxJitPct = 55
)

// Fig4Point is one Dromaeo suite measurement.
type Fig4Point struct {
	Suite   string
	Chrome  float64 // relative overhead, x100
	FireFox float64
}

// dromaeoOverhead measures one suite/browser combination.
func dromaeoOverhead(suite workload.DromaeoSuite, jitPct int, tmpl e9patch.Config, lowfatHeap bool) (float64, error) {
	prog, err := workload.BuildDromaeo(suite, true, jitPct)
	if err != nil {
		return 0, err
	}
	cfg := tmpl
	cfg.Select = e9patch.SelectHeapWrites
	cfg.ReserveVA = append(cfg.ReserveVA, workload.ReserveVA()...)
	if lowfatHeap {
		cfg.ReserveVA = append(cfg.ReserveVA, lowfat.ReserveVA()...)
	}
	res, err := e9patch.Rewrite(prog.ELF, cfg)
	if err != nil {
		return 0, err
	}
	var prep func(m *emu.Machine)
	if lowfatHeap {
		prep = func(m *emu.Machine) { lowfat.Install(m, workload.RTMalloc, workload.RTFree) }
	}
	orig, err := run(prog.ELF, nil)
	if err != nil {
		return 0, err
	}
	patched, err := run(res.Output, prep)
	if err != nil {
		return 0, err
	}
	if orig.Output[0] != patched.Output[0] {
		return 0, fmt.Errorf("dromaeo %s: checksum diverged", suite.Name)
	}
	return 100 * float64(patched.Counters.Cycles) / float64(orig.Counters.Cycles), nil
}

// Figure4 regenerates the Dromaeo DOM overhead series for Chrome and
// FireFox with the empty heap-write instrumentation (A2).
func Figure4(opt Options, progress io.Writer) ([]Fig4Point, error) {
	opt = opt.withDefaults()
	if opt.Iters > 0 {
		workload.KernelIters = opt.Iters
	}
	var out []Fig4Point
	for _, s := range workload.DromaeoSuites {
		if progress != nil {
			fmt.Fprintf(progress, "# figure4: %s\n", s.Name)
		}
		c, err := dromaeoOverhead(s, ChromeJitPct, e9patch.Config{}, false)
		if err != nil {
			return nil, err
		}
		f, err := dromaeoOverhead(s, FireFoxJitPct, e9patch.Config{}, false)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig4Point{Suite: s.Name, Chrome: c, FireFox: f})
	}
	return out, nil
}

// PrintFigure4 renders the Figure 4 series including the geometric
// mean.
func PrintFigure4(w io.Writer, pts []Fig4Point) {
	fmt.Fprintf(w, "%-18s %10s %10s\n", "Suite", "Chrome%", "FireFox%")
	var cs, fs []float64
	for _, p := range pts {
		fmt.Fprintf(w, "%-18s %10.1f %10.1f\n", p.Suite, p.Chrome, p.FireFox)
		cs = append(cs, p.Chrome)
		fs = append(fs, p.FireFox)
	}
	fmt.Fprintf(w, "%-18s %10.1f %10.1f\n", "Geom.Mean", GeoMean(cs), GeoMean(fs))
}

// Fig5Row is one Figure 5 bar pair: empty A2 instrumentation vs the
// LowFat redzone check.
type Fig5Row struct {
	Name   string
	Empty  float64
	LowFat float64
}

// Figure5 regenerates the SPEC + browser LowFat hardening overheads.
func Figure5(opt Options, progress io.Writer) ([]Fig5Row, error) {
	opt = opt.withDefaults()
	if opt.Iters > 0 {
		workload.KernelIters = opt.Iters
	}
	var rows []Fig5Row
	var empties, lows []float64
	for _, p := range workload.SPECProfiles {
		if progress != nil {
			fmt.Fprintf(progress, "# figure5: %s\n", p.Name)
		}
		empty, err := KernelOverhead(p, A2, e9patch.Config{}, false)
		if err != nil {
			return nil, err
		}
		lf, err := KernelOverhead(p, A2, e9patch.Config{Template: lowfat.CheckTemplate{}}, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig5Row{Name: p.Name, Empty: empty, LowFat: lf})
		empties = append(empties, empty)
		lows = append(lows, lf)
	}
	rows = append(rows, Fig5Row{Name: "SPEC Mean", Empty: mean(empties), LowFat: mean(lows)})

	// Browser means over the Dromaeo suites.
	for _, b := range []struct {
		name string
		jit  int
	}{{"Chrome Mean", ChromeJitPct}, {"FireFox Mean", FireFoxJitPct}} {
		if progress != nil {
			fmt.Fprintf(progress, "# figure5: %s\n", b.name)
		}
		var es, ls []float64
		for _, s := range workload.DromaeoSuites {
			e, err := dromaeoOverhead(s, b.jit, e9patch.Config{}, false)
			if err != nil {
				return nil, err
			}
			l, err := dromaeoOverhead(s, b.jit, e9patch.Config{Template: lowfat.CheckTemplate{}}, true)
			if err != nil {
				return nil, err
			}
			es = append(es, e)
			ls = append(ls, l)
		}
		rows = append(rows, Fig5Row{Name: b.name, Empty: GeoMean(es), LowFat: GeoMean(ls)})
	}
	return rows, nil
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// PrintFigure5 renders the Figure 5 series.
func PrintFigure5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintf(w, "%-14s %10s %10s\n", "Benchmark", "A2-empty%", "LowFat%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10.1f %10.1f\n", r.Name, r.Empty, r.LowFat)
	}
}

// GroupingAblation is the §6.1 file-size experiment: average Size% over
// the SPEC set with physical page grouping on (M=1) versus off.
type GroupingAblation struct {
	App            App
	GroupedSizePct float64
	NaiveSizePct   float64
}

// AblationGrouping measures both applications over the SPEC profiles.
func AblationGrouping(opt Options, progress io.Writer) ([]GroupingAblation, error) {
	opt = opt.withDefaults()
	var out []GroupingAblation
	for _, app := range []App{A1, A2} {
		var g, n []float64
		for _, p := range workload.SPECProfiles {
			if progress != nil {
				fmt.Fprintf(progress, "# grouping: %s/%s\n", p.Name, app)
			}
			resG, err := RewriteProfile(p, app, opt.Scale, nil)
			if err != nil {
				return nil, err
			}
			resN, err := RewriteProfile(p, app, opt.Scale, func(c *e9patch.Config) { c.Granularity = -1 })
			if err != nil {
				return nil, err
			}
			g = append(g, resG.SizePercent())
			n = append(n, resN.SizePercent())
		}
		out = append(out, GroupingAblation{App: app, GroupedSizePct: mean(g), NaiveSizePct: mean(n)})
	}
	return out, nil
}

// GranularityPoint is one §4 granularity trade-off measurement.
type GranularityPoint struct {
	M        int
	Mappings int
	// MappingsFullScale extrapolates to the paper's full binary size
	// when the experiment ran scaled down.
	MappingsFullScale int
	PhysMB            float64
	UnderLimit        bool
}

// AblationGranularity sweeps M for the Chrome profile under A2.
func AblationGranularity(opt Options, progress io.Writer) ([]GranularityPoint, error) {
	opt = opt.withDefaults()
	p, err := workload.ProfileByName("Chrome")
	if err != nil {
		return nil, err
	}
	var out []GranularityPoint
	for _, m := range []int{1, 2, 4, 8, 16, 32, 64} {
		if progress != nil {
			fmt.Fprintf(progress, "# granularity: M=%d\n", m)
		}
		res, err := RewriteProfile(p, A2, opt.Scale, func(c *e9patch.Config) { c.Granularity = m })
		if err != nil {
			return nil, err
		}
		// Linear extrapolation saturates: trampolines live inside one
		// rel32 span (2^32 bytes) plus the text itself, so the block
		// count can never exceed that span over the block size — the
		// structural fact behind the paper's "M >= 64 always fits"
		// claim (2^32 / (64 * 4096) = 16384 < 65536).
		blockSize := uint64(m) * 4096
		structural := int((uint64(1)<<32 + uint64(p.SizeMB*1e6)) / blockSize)
		full := int(float64(res.Mappings) / opt.Scale)
		if full > structural {
			full = structural
		}
		out = append(out, GranularityPoint{
			M:                 m,
			Mappings:          res.Mappings,
			MappingsFullScale: full,
			PhysMB:            float64(res.Group.PhysBytes()) / 1e6,
			UnderLimit:        full <= MaxMapCount,
		})
	}
	return out, nil
}

// PIEComparison is the §6.1 PIE / .bss coverage experiment: one
// profile rewritten at its native kind and forced-PIE.
type PIEComparison struct {
	Name                string
	App                 App
	NativeBase, PIEBase float64
	NativeSucc, PIESucc float64
}

// AblationPIE compares coverage for representative profiles (including
// the gamess/zeusmp L1 cases, which reach 100% when built as PIE).
func AblationPIE(opt Options, progress io.Writer) ([]PIEComparison, error) {
	opt = opt.withDefaults()
	var out []PIEComparison
	for _, name := range []string{"gcc", "perlbench", "gamess", "zeusmp"} {
		p, err := workload.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		for _, app := range []App{A1, A2} {
			if progress != nil {
				fmt.Fprintf(progress, "# pie: %s/%s\n", name, app)
			}
			native, err := RewriteProfile(p, app, opt.Scale, nil)
			if err != nil {
				return nil, err
			}
			pie := p
			pie.Kind = workload.KindPIE
			pieRes, err := rewriteAs(pie, p, app, opt.Scale)
			if err != nil {
				return nil, err
			}
			out = append(out, PIEComparison{
				Name: name, App: app,
				NativeBase: native.Stats.BasePercent(),
				PIEBase:    pieRes.Stats.BasePercent(),
				NativeSucc: native.Stats.SuccPercent(),
				PIESucc:    pieRes.Stats.SuccPercent(),
			})
		}
	}
	return out, nil
}

// rewriteAs builds a binary with mixP's (calibrated) instruction mix
// but buildP's ELF kind, then rewrites it.
func rewriteAs(buildP, mixP workload.Profile, app App, scale float64) (*e9patch.Result, error) {
	mix, err := calibratedMix(mixP)
	if err != nil {
		return nil, err
	}
	prog, err := workload.BuildStaticMix(mixP, scale, buildP.Kind, mix)
	if err != nil {
		return nil, err
	}
	return e9patch.Rewrite(prog.ELF, baseConfig(buildP, app, scale))
}

// B0Comparison contrasts the jump-based tactics with the int3/SIGTRAP
// baseline (§2.1.1): same kernel, same patch set.
type B0Comparison struct {
	JumpPct   float64 // Time% with B1/B2/T1-T3
	SignalPct float64 // Time% with B0 for every location
	Factor    float64 // SignalPct / JumpPct
}

// AblationB0 measures the branchy kernel under A1.
func AblationB0(opt Options) (B0Comparison, error) {
	opt = opt.withDefaults()
	if opt.Iters > 0 {
		workload.KernelIters = opt.Iters
	}
	p, err := workload.ProfileByName("perlbench")
	if err != nil {
		return B0Comparison{}, err
	}
	jump, err := KernelOverhead(p, A1, e9patch.Config{}, false)
	if err != nil {
		return B0Comparison{}, err
	}
	sig, err := KernelOverhead(p, A1, e9patch.Config{
		Patch: patch.Options{ForceB0: true, B0Fallback: true},
	}, false)
	if err != nil {
		return B0Comparison{}, err
	}
	return B0Comparison{JumpPct: jump, SignalPct: sig, Factor: sig / jump}, nil
}

// AccuracyPoint is the §1 motivation: a 99.9%-accurate indirect-jump
// analysis applied n times.
type AccuracyPoint struct {
	Jumps     int
	Effective float64 // 0.999^n, in percent
}

// MotivationAccuracy computes the §1 decay table (Chrome/FireFox have
// >25000 indirect jumps apiece).
func MotivationAccuracy() []AccuracyPoint {
	var out []AccuracyPoint
	for _, n := range []int{1, 10, 100, 1000, 10000, 25000} {
		out = append(out, AccuracyPoint{
			Jumps:     n,
			Effective: 100 * math.Pow(0.999, float64(n)),
		})
	}
	return out
}
