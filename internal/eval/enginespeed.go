package eval

import (
	"fmt"
	"time"

	"e9patch/internal/emu"
	"e9patch/internal/loader"
	"e9patch/internal/workload"
)

// emulated accumulates retired instructions and emulation wall-clock
// across every run in this process, so e9bench can report the
// session's effective instructions-per-second. Evaluation runs are
// sequential; no locking needed.
var emulated struct {
	inst uint64
	dur  time.Duration
}

func noteEmulation(inst uint64, d time.Duration) {
	emulated.inst += inst
	emulated.dur += d
}

// EmuThroughput returns the total instructions retired under the
// emulator and the wall-clock time spent emulating, process-wide.
func EmuThroughput() (uint64, time.Duration) {
	return emulated.inst, emulated.dur
}

// EngineSpeed compares raw emulation throughput of the three execution
// engines on the same workload. The counters are asserted identical
// across all engines before the numbers are reported, so the speedups
// are pure implementation wins, never a semantic difference.
type EngineSpeed struct {
	// Instructions retired per run (identical for every engine).
	Instructions uint64
	// InterpIPS / TBCIPS / IRIPS are wall-clock instructions per second
	// for the decode-per-step interpreter, the tbc translation cache,
	// and the IR-lifting engine.
	InterpIPS float64
	TBCIPS    float64
	IRIPS     float64
	// Speedup is TBCIPS / InterpIPS; IRSpeedup is IRIPS / InterpIPS.
	Speedup   float64
	IRSpeedup float64
}

// MeasureEngines runs the largest benchmark kernel (memstream: the
// highest dynamic instruction count per iteration) under every
// registered engine and reports wall-clock throughput. Each engine
// gets trials runs; the best run counts.
func MeasureEngines(opt Options) (EngineSpeed, error) {
	opt = opt.withDefaults()
	iters := opt.Iters
	if iters == 0 {
		iters = 150_000
	}
	saved := workload.KernelIters
	workload.KernelIters = iters
	defer func() { workload.KernelIters = saved }()

	prog, err := workload.BuildKernel("memstream", false)
	if err != nil {
		return EngineSpeed{}, err
	}

	const trials = 3
	measure := func(name string) (float64, emu.Counters, error) {
		best := 0.0
		var counters emu.Counters
		for t := 0; t < trials; t++ {
			m := workload.NewMachine(nil)
			eng, err := emu.NewEngineByName(name)
			if err != nil {
				return 0, counters, err
			}
			m.Engine = eng
			entry, err := loader.BuildImage(m, prog.ELF, loader.Options{})
			if err != nil {
				return 0, counters, err
			}
			m.RIP = entry
			start := time.Now()
			if err := m.Run(2_000_000_000); err != nil {
				return 0, counters, err
			}
			dur := time.Since(start)
			noteEmulation(m.Counters.Instructions, dur)
			ips := float64(m.Counters.Instructions) / dur.Seconds()
			if ips > best {
				best = ips
			}
			counters = m.Counters
		}
		return best, counters, nil
	}

	interpIPS, ic, err := measure("interp")
	if err != nil {
		return EngineSpeed{}, err
	}
	tbcIPS, tc, err := measure("tbc")
	if err != nil {
		return EngineSpeed{}, err
	}
	irIPS, rc, err := measure("ir")
	if err != nil {
		return EngineSpeed{}, err
	}
	if ic != tc || ic != rc {
		return EngineSpeed{}, fmt.Errorf("eval: engines diverged on the speed workload:\ninterp %+v\ntbc    %+v\nir     %+v", ic, tc, rc)
	}
	return EngineSpeed{
		Instructions: ic.Instructions,
		InterpIPS:    interpIPS,
		TBCIPS:       tbcIPS,
		IRIPS:        irIPS,
		Speedup:      tbcIPS / interpIPS,
		IRSpeedup:    irIPS / interpIPS,
	}, nil
}
