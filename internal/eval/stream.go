package eval

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"e9patch/internal/workload"
)

// StreamBench is the zero-copy streaming measurement recorded in
// BENCH_stream.json: rewrite a browser-class (100 MB+) binary twice —
// once through the buffered one-shot path (ReadFile + Rewrite, which
// also holds a private input copy), once through the streaming path
// (mmap-backed input + Stream + single-allocation output) — and compare
// peak RSS and allocation counts. Identical certifies the two paths
// produced byte-for-byte the same output while doing so.
//
// Methodology (DESIGN.md §12): each path runs in its own child process
// (re-exec with E9_STREAM_CHILD set) and "peak RSS" is the kernel's
// ru_maxrss for that child — no sampling, no GC-pacing noise, and no
// allocator history shared between the paths. The mmap'd input is
// file-backed and still counted by ru_maxrss when touched, so the
// streaming path gets no accounting discount for it; the saving it
// shows is real heap it never allocated.
type StreamBench struct {
	TargetMB   int
	TextMB     int
	InputBytes int
	Insts      int
	Locations  int
	Mmapped    bool

	// Peak RSS (ru_maxrss) of each path's child process, in bytes.
	BufferedPeakBytes uint64
	StreamPeakBytes   uint64
	// Mallocs delta across each path's rewrite.
	BufferedAllocs uint64
	StreamAllocs   uint64
	// TotalAlloc delta across each path's rewrite.
	BufferedHeapBytes uint64
	StreamHeapBytes   uint64

	BufferedSec float64
	StreamSec   float64

	// BudgetBytes is the asserted fixed ceiling for the streaming path:
	// the buffered peak minus half the input size. UnderBudget means the
	// streaming path saved at least that much — the input copies it
	// never made.
	BudgetBytes uint64
	UnderBudget bool
	Identical   bool
}

// MeasureStream builds the targetMB browser-class workload on disk and
// rewrites it through both input paths (each in its own measurement
// child), verifying byte-identity and the streaming path's memory
// bound. The running executable must have called MaybeStreamChild at
// startup.
func MeasureStream(targetMB, textMB int, progress io.Writer) (*StreamBench, error) {
	if progress != nil {
		fmt.Fprintf(progress, "# stream: building %d MB workload (%d MB text)\n", targetMB, textMB)
	}
	prog, err := workload.BuildStream(targetMB, textMB)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "e9stream")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "stream.bin")
	if err := os.WriteFile(path, prog.ELF, 0o644); err != nil {
		return nil, err
	}
	out := &StreamBench{TargetMB: targetMB, TextMB: textMB, InputBytes: len(prog.ELF)}
	prog = nil // keep the parent light; the children do the real work

	if progress != nil {
		fmt.Fprintf(progress, "# stream: buffered child\n")
	}
	buffered, bufferedRSS, err := runStreamPath("buffered", path, textMB)
	if err != nil {
		return nil, err
	}
	if progress != nil {
		fmt.Fprintf(progress, "# stream: mmap+stream child\n")
	}
	streamed, streamRSS, err := runStreamPath("stream", path, textMB)
	if err != nil {
		return nil, err
	}

	out.Insts = buffered.Insts
	out.Locations = buffered.Locations
	out.Mmapped = streamed.Mmapped
	out.BufferedPeakBytes = bufferedRSS
	out.StreamPeakBytes = streamRSS
	out.BufferedAllocs = buffered.Allocs
	out.StreamAllocs = streamed.Allocs
	out.BufferedHeapBytes = buffered.HeapBytes
	out.StreamHeapBytes = streamed.HeapBytes
	out.BufferedSec = buffered.Seconds
	out.StreamSec = streamed.Seconds
	out.Identical = buffered.SHA256 == streamed.SHA256 &&
		buffered.OutputSize == streamed.OutputSize && buffered.OutputSize > 0

	half := uint64(out.InputBytes) / 2
	if out.BufferedPeakBytes > half {
		out.BudgetBytes = out.BufferedPeakBytes - half
	}
	out.UnderBudget = out.BudgetBytes > 0 && out.StreamPeakBytes <= out.BudgetBytes
	return out, nil
}
