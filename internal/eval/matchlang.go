package eval

import (
	"fmt"
	"io"
	"time"

	"e9patch"
	"e9patch/internal/disasm"
	"e9patch/internal/elf64"
	"e9patch/internal/lang"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// MatchLangRow is one expression's cost in the match-language
// benchmark. HardNs is the per-instruction cost of the hardcoded Go
// selector the expression replaces (0 when there is no hardcoded
// counterpart); LangNs is the compiled spec-language program's cost.
// Slowdown is LangNs/HardNs, the abstraction tax of expressing the
// same selection in the language. Identical reports whether the two
// selectors chose exactly the same instruction indices — a false
// value is a bug, not a measurement artefact.
type MatchLangRow struct {
	Name      string
	Expr      string
	Matched   int
	HardNs    float64
	LangNs    float64
	Slowdown  float64
	Identical bool
}

// MatchLangBench is the compiled-matcher measurement recorded in
// BENCH_match.json: what the spec language costs per instruction
// relative to the hardcoded selectors it subsumes, over a realistic
// static-binary instruction stream.
type MatchLangBench struct {
	Profile string
	Insts   int
	Rows    []MatchLangRow
}

// matchLangCases pairs each benchmarked expression with the hardcoded
// selector it must reproduce (nil for language-only expressions that
// have no hand-written counterpart).
var matchLangCases = []struct {
	name, expr string
	hard       func([]x86.Inst) []int
}{
	{"A1", "jump | jcc", e9patch.SelectJumps},
	{"A1-sugar", "branch", e9patch.SelectJumps},
	{"A2", "heapwrite", e9patch.SelectHeapWrites},
	{"mixed", `jcc & short | memwrite & base!=rsp`, nil},
}

// MeasureMatchLang disassembles a profile's static binary once, checks
// each compiled expression selects exactly the same indices as its
// hardcoded counterpart, and times both (best of N) over the full
// instruction stream.
func MeasureMatchLang(opt Options, progress io.Writer) (*MatchLangBench, error) {
	opt = opt.withDefaults()
	p, err := workload.ProfileByName("gcc")
	if err != nil {
		return nil, err
	}
	prog, err := workload.BuildStatic(p, opt.Scale)
	if err != nil {
		return nil, err
	}
	f, err := elf64.Parse(prog.ELF)
	if err != nil {
		return nil, err
	}
	text, textAddr, err := f.Text()
	if err != nil {
		return nil, err
	}
	insts := disasm.Linear(text, textAddr).Insts
	if len(insts) == 0 {
		return nil, fmt.Errorf("matchlang: %s disassembled to zero instructions", p.Name)
	}

	const reps = 3
	bestNs := func(sel func([]x86.Inst) []int) float64 {
		best := 0.0
		for i := 0; i < reps; i++ {
			start := time.Now()
			sel(insts)
			if sec := time.Since(start).Seconds(); best == 0 || sec < best {
				best = sec
			}
		}
		return best * 1e9 / float64(len(insts))
	}

	out := &MatchLangBench{Profile: p.Name, Insts: len(insts)}
	for _, c := range matchLangCases {
		if progress != nil {
			fmt.Fprintf(progress, "# matchlang: %s %q\n", c.name, c.expr)
		}
		prg, err := lang.CompileExpr(c.expr)
		if err != nil {
			return nil, fmt.Errorf("matchlang %s: %w", c.name, err)
		}
		sel := prg.Selector()
		row := MatchLangRow{Name: c.name, Expr: c.expr, Identical: true}
		langIdx := sel(insts)
		row.Matched = len(langIdx)
		if c.hard != nil {
			hardIdx := c.hard(insts)
			if len(hardIdx) != len(langIdx) {
				row.Identical = false
			} else {
				for i := range hardIdx {
					if hardIdx[i] != langIdx[i] {
						row.Identical = false
						break
					}
				}
			}
			if !row.Identical {
				return nil, fmt.Errorf("matchlang %s: compiled %q selects %d instructions, hardcoded selector %d — selections diverge",
					c.name, c.expr, len(langIdx), len(hardIdx))
			}
			row.HardNs = bestNs(c.hard)
		}
		row.LangNs = bestNs(sel)
		if row.HardNs > 0 {
			row.Slowdown = row.LangNs / row.HardNs
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
