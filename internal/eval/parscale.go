package eval

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"time"

	"e9patch"
	"e9patch/internal/workload"
)

// ParallelPoint is one width on the rewrite-phase scaling curve.
type ParallelPoint struct {
	// Width is the Config.Parallelism value measured.
	Width int
	// Seconds is the best-of-N wall time of one full rewrite.
	Seconds float64
	// Speedup is Seconds(width=1) / Seconds(width).
	Speedup float64
}

// ParallelScaling is the rewrite-phase scaling result recorded in
// BENCH_*.json. Identical reports whether every width reproduced the
// width-1 output byte-for-byte — the pipeline's core guarantee, so a
// false value is a bug, not a measurement artefact. Cores records
// runtime.NumCPU(): on a single-core container the curve is honest
// (flat or slightly negative) and the byte-identity check is the
// meaningful part of the run.
type ParallelScaling struct {
	Profile   string
	App       string
	Insts     int
	Locations int
	Cores     int
	Identical bool
	Points    []ParallelPoint
}

// MeasureParallelScaling rewrites a profile's static binary at each
// width and times the full pipeline (disassembly, matching, patching,
// grouping). Widths must start with 1, which provides both the
// baseline time and the reference bytes.
func MeasureParallelScaling(opt Options, widths []int, progress io.Writer) (*ParallelScaling, error) {
	opt = opt.withDefaults()
	if len(widths) == 0 || widths[0] != 1 {
		return nil, fmt.Errorf("parscale: widths must start with 1, got %v", widths)
	}
	p, err := workload.ProfileByName("gcc")
	if err != nil {
		return nil, err
	}
	prog, err := workload.BuildStatic(p, opt.Scale)
	if err != nil {
		return nil, err
	}
	out := &ParallelScaling{
		Profile:   p.Name,
		App:       "A2",
		Cores:     runtime.NumCPU(),
		Identical: true,
	}
	const reps = 3
	var ref []byte
	for _, w := range widths {
		if progress != nil {
			fmt.Fprintf(progress, "# parscale: %s width=%d\n", p.Name, w)
		}
		cfg := baseConfig(p, A2, opt.Scale)
		cfg.Parallelism = w
		best := 0.0
		var res *e9patch.Result
		for i := 0; i < reps; i++ {
			start := time.Now()
			r, err := e9patch.Rewrite(prog.ELF, cfg)
			if err != nil {
				return nil, fmt.Errorf("parscale width %d: %w", w, err)
			}
			if sec := time.Since(start).Seconds(); best == 0 || sec < best {
				best = sec
			}
			res = r
		}
		if w == 1 {
			ref = res.Output
			out.Insts = res.Insts
			out.Locations = res.Stats.Total
		} else if !bytes.Equal(ref, res.Output) {
			out.Identical = false
		}
		pt := ParallelPoint{Width: w, Seconds: best}
		if len(out.Points) > 0 {
			pt.Speedup = out.Points[0].Seconds / best
		} else {
			pt.Speedup = 1
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}
