package eval

import (
	"sync"

	"e9patch"
	"e9patch/internal/patch"
	"e9patch/internal/workload"
)

// Pilot calibration. The workload generator's encoding fractions
// (short-jump share, small-store share) are first derived analytically
// from a row's published Base%, assuming a nominal pun-success
// probability. Real pun success depends on the actual byte
// distribution of the generated code, so a small pilot binary is
// rewritten with only the baseline tactics, the empirical pun-success
// probability is extracted, and the fractions are re-solved against
// the published target. One step converges well because Base% is
// monotone and nearly affine in the fraction.
//
// This calibrates the *input geometry* against numbers the paper
// reports about its inputs; every output column (tactic breakdown,
// Succ%, Size%, Time%) is still measured from our pipeline.

// pilotTextBytes is the pilot binary's approximate text size.
const pilotTextBytes = 150_000

var (
	mixCacheMu sync.Mutex
	mixCache   = map[string]workload.Mix{}
)

// calibratedMix returns the calibrated encoding fractions for p.
func calibratedMix(p workload.Profile) (workload.Mix, error) {
	mixCacheMu.Lock()
	m, ok := mixCache[p.Name]
	mixCacheMu.Unlock()
	if ok {
		return m, nil
	}

	m0 := workload.MixFor(p)
	pScale := pilotTextBytes / (p.SizeMB * 1e6)
	if pScale > 8 {
		pScale = 8
	}

	prog, err := workload.BuildStaticMix(p, pScale, p.Kind, m0)
	if err != nil {
		return workload.Mix{}, err
	}
	baseOnly := func(app App) (float64, error) {
		cfg := baseConfig(p, app, pScale)
		cfg.Patch = patch.Options{DisableT1: true, DisableT2: true, DisableT3: true}
		res, err := e9patch.Rewrite(prog.ELF, cfg)
		if err != nil {
			return 0, err
		}
		return res.Stats.BasePercent(), nil
	}
	measA1, err := baseOnly(A1)
	if err != nil {
		return workload.Mix{}, err
	}
	measA2, err := baseOnly(A2)
	if err != nil {
		return workload.Mix{}, err
	}

	m = workload.Mix{
		ShortJcc:   resolveFraction(float64(m0.ShortJcc), measA1, p.BaseA1),
		SmallStore: resolveFraction(float64(m0.SmallStore), measA2, p.BaseA2),
	}
	mixCacheMu.Lock()
	mixCache[p.Name] = m
	mixCacheMu.Unlock()
	return m, nil
}

// resolveFraction solves Base = (100 - s) + s*P for the new s given a
// target Base, using the pun-success probability P observed with the
// pilot fraction s0.
func resolveFraction(s0, measured, target float64) int {
	if s0 < 1 {
		s0 = 1
	}
	// measured = (100 - s0) + s0*P  =>  P = (measured - 100 + s0) / s0.
	p := (measured - 100 + s0) / s0
	if p < 0.02 {
		p = 0.02
	}
	if p > 0.99 {
		p = 0.99
	}
	s := (100 - target) / (1 - p)
	if s < 2 {
		s = 2
	}
	if s > 97 {
		s = 97
	}
	return int(s + 0.5)
}
