package eval

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"syscall"
	"time"

	"e9patch"
	"e9patch/internal/elf64"
	"e9patch/internal/workload"
)

// streamChildEnv carries the child-mode request: peak RSS is a
// per-process kernel counter, so each rewrite path must run in its own
// process to be measured without the other path's allocator history.
const streamChildEnv = "E9_STREAM_CHILD"

// streamChildSpec is the JSON request in the environment variable.
type streamChildSpec struct {
	Mode   string `json:"mode"` // "buffered" or "stream"
	Path   string `json:"path"`
	TextMB int    `json:"textMB"`
}

// streamChildReport is the child's JSON reply on stdout. Peak RSS is
// not in here — the parent reads it from the kernel via getrusage.
type streamChildReport struct {
	SHA256     string  `json:"sha256"`
	OutputSize int     `json:"outputSize"`
	Insts      int     `json:"insts"`
	Locations  int     `json:"locations"`
	Mmapped    bool    `json:"mmapped"`
	Allocs     uint64  `json:"allocs"`    // Mallocs delta across the rewrite
	HeapBytes  uint64  `json:"heapBytes"` // TotalAlloc delta across the rewrite
	Seconds    float64 `json:"seconds"`
}

// streamCfg is the rewrite configuration both paths and both processes
// share for the streaming workload.
func streamCfg(textMB int) e9patch.Config {
	return e9patch.Config{
		Select:     e9patch.SelectJumps,
		SkipPrefix: workload.StreamSkipPrefix(textMB),
		ReserveVA:  workload.ReserveVA(),
	}
}

// MaybeStreamChild turns the current process into a stream-measurement
// child when E9_STREAM_CHILD is set: it runs one rewrite path over the
// named file, prints a JSON report and exits. Every binary that calls
// MeasureStream must call this first thing (cmd/e9bench's main does,
// and this package's TestMain does) so MeasureStream can re-exec the
// running executable as its measurement child.
func MaybeStreamChild() {
	v := os.Getenv(streamChildEnv)
	if v == "" {
		return
	}
	var spec streamChildSpec
	if err := json.Unmarshal([]byte(v), &spec); err != nil {
		fmt.Fprintf(os.Stderr, "stream child: bad spec: %v\n", err)
		os.Exit(1)
	}
	rep, err := runStreamChild(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stream child: %v\n", err)
		os.Exit(1)
	}
	json.NewEncoder(os.Stdout).Encode(rep)
	os.Exit(0)
}

func runStreamChild(spec streamChildSpec) (*streamChildReport, error) {
	cfg := streamCfg(spec.TextMB)
	rep := &streamChildReport{}

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	var res *e9patch.Result
	switch spec.Mode {
	case "buffered":
		data, err := os.ReadFile(spec.Path)
		if err != nil {
			return nil, err
		}
		if res, err = e9patch.Rewrite(data, cfg); err != nil {
			return nil, err
		}
	case "stream":
		in, err := elf64.OpenInput(spec.Path)
		if err != nil {
			return nil, err
		}
		defer in.Close()
		rep.Mmapped = in.Mapped
		st, err := e9patch.NewStream(context.Background(), in.Data, cfg)
		if err != nil {
			return nil, err
		}
		if res, err = st.Finish(context.Background()); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown mode %q", spec.Mode)
	}

	rep.Seconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	rep.Allocs = ms1.Mallocs - ms0.Mallocs
	rep.HeapBytes = ms1.TotalAlloc - ms0.TotalAlloc
	sum := sha256.Sum256(res.Output)
	rep.SHA256 = hex.EncodeToString(sum[:])
	rep.OutputSize = len(res.Output)
	rep.Insts = res.Insts
	rep.Locations = res.Stats.Total
	return rep, nil
}

// runStreamPath re-execs the current executable as a measurement child
// and returns its report plus the kernel's peak-RSS reading for the
// whole child process.
func runStreamPath(mode, path string, textMB int) (*streamChildReport, uint64, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, 0, err
	}
	spec, err := json.Marshal(streamChildSpec{Mode: mode, Path: path, TextMB: textMB})
	if err != nil {
		return nil, 0, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), streamChildEnv+"="+string(spec))
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, 0, fmt.Errorf("%s child: %w", mode, err)
	}
	var rep streamChildReport
	if err := json.Unmarshal(out, &rep); err != nil {
		return nil, 0, fmt.Errorf("%s child: bad report %q: %v", mode, out, err)
	}
	ru, ok := cmd.ProcessState.SysUsage().(*syscall.Rusage)
	if !ok {
		return nil, 0, fmt.Errorf("%s child: peak RSS unavailable on this platform", mode)
	}
	// Linux reports ru_maxrss in kilobytes.
	return &rep, uint64(ru.Maxrss) * 1024, nil
}
