package x86

import (
	"fmt"
	"strings"
)

// Mnemonic returns a best-effort mnemonic for a decoded instruction.
// The formatter covers the encodings the rest of this project emits or
// commonly encounters; anything else prints as ".byte"-style raw data.
// Disassembly text is purely diagnostic — the rewriter itself never
// consumes it (it needs only locations, sizes and raw bytes).
func (i *Inst) Mnemonic() string {
	op := i.Opcode
	if i.TwoByte {
		switch {
		case op >= 0x80 && op <= 0x8F:
			return "j" + Cond(op&0xF).String()
		case op >= 0x90 && op <= 0x9F:
			return "set" + Cond(op&0xF).String()
		case op >= 0x40 && op <= 0x4F:
			return "cmov" + Cond(op&0xF).String()
		}
		switch op {
		case 0x05:
			return "syscall"
		case 0x0B:
			return "ud2"
		case 0x1E, 0x1F, 0x0D:
			return "nop"
		case 0xAF:
			return "imul"
		case 0xB6, 0xB7:
			return "movzx"
		case 0xBE, 0xBF:
			return "movsx"
		case 0xB0, 0xB1:
			return "cmpxchg"
		case 0xC0, 0xC1:
			return "xadd"
		case 0xA2:
			return "cpuid"
		case 0x31:
			return "rdtsc"
		}
		return fmt.Sprintf("(0f %02x)", op)
	}

	aluNames := [8]string{"add", "or", "adc", "sbb", "and", "sub", "xor", "cmp"}
	switch {
	case op <= 0x3D && (op&7) <= 5:
		return aluNames[(op>>3)&7]
	case op >= 0x50 && op <= 0x57:
		return "push"
	case op >= 0x58 && op <= 0x5F:
		return "pop"
	case op >= 0x70 && op <= 0x7F:
		return "j" + Cond(op&0xF).String()
	case op >= 0x91 && op <= 0x97:
		return "xchg"
	case op >= 0xB0 && op <= 0xBF:
		return "mov"
	}
	switch op {
	case 0x63:
		return "movsxd"
	case 0x68, 0x6A:
		return "push"
	case 0x69, 0x6B:
		return "imul"
	case 0x80, 0x81, 0x83:
		return aluNames[(i.ModRM>>3)&7]
	case 0x84, 0x85:
		return "test"
	case 0x86, 0x87:
		return "xchg"
	case 0x88, 0x89, 0x8A, 0x8B:
		return "mov"
	case 0x8D:
		return "lea"
	case 0x8F:
		return "pop"
	case 0x90:
		return "nop"
	case 0x98:
		if i.Rex&8 != 0 {
			return "cdqe"
		}
		return "cwde"
	case 0x99:
		if i.Rex&8 != 0 {
			return "cqo"
		}
		return "cdq"
	case 0x9C:
		return "pushfq"
	case 0x9D:
		return "popfq"
	case 0xA8, 0xA9:
		return "test"
	case 0xC0, 0xC1, 0xD0, 0xD1, 0xD2, 0xD3:
		return [8]string{"rol", "ror", "rcl", "rcr", "shl", "shr", "sal", "sar"}[(i.ModRM>>3)&7]
	case 0xC2, 0xC3:
		return "ret"
	case 0xC6, 0xC7:
		return "mov"
	case 0xC9:
		return "leave"
	case 0xCC:
		return "int3"
	case 0xCD:
		return "int"
	case 0xE8:
		return "call"
	case 0xE9, 0xEB:
		return "jmp"
	case 0xF4:
		return "hlt"
	case 0xF6, 0xF7:
		return [8]string{"test", "test", "not", "neg", "mul", "imul", "div", "idiv"}[(i.ModRM>>3)&7]
	case 0xFE:
		return [8]string{"inc", "dec", "?", "?", "?", "?", "?", "?"}[(i.ModRM>>3)&7]
	case 0xFF:
		return [8]string{"inc", "dec", "call", "lcall", "jmp", "ljmp", "push", "?"}[(i.ModRM>>3)&7]
	}
	return fmt.Sprintf("(%02x)", op)
}

// opWidth returns the operand width in bytes for register naming.
func (i *Inst) opWidth() int {
	op := i.Opcode
	if !i.TwoByte {
		switch {
		case op <= 0x3D && (op&7)%2 == 0 && op&7 <= 4:
			return 1
		case op == 0x80, op == 0x84, op == 0x86, op == 0x88, op == 0x8A,
			op == 0xA8, op == 0xC0, op == 0xC6, op == 0xD0, op == 0xD2,
			op == 0xF6, op == 0xFE:
			return 1
		case op >= 0xB0 && op <= 0xB7:
			return 1
		case op >= 0x50 && op <= 0x5F, op == 0x68, op == 0x6A, op == 0x8F:
			return 8
		case op == 0xFF:
			// Indirect call/jmp and push operate on 64-bit operands.
			if f := (i.ModRM >> 3) & 7; f == 2 || f == 4 || f == 6 {
				return 8
			}
		}
	}
	if i.Rex&0x08 != 0 {
		return 8
	}
	for n := 0; n < i.NPrefix; n++ {
		if i.Bytes[n] == 0x66 {
			return 2
		}
	}
	return 4
}

var reg8Names = [...]string{"al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
	"r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b"}
var reg16Names = [...]string{"ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
	"r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w"}
var reg32Names = [...]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
	"r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d"}

// regName formats a register at a given width.
func regName(r Reg, w int) string {
	if r >= RIP {
		return "%" + r.String()
	}
	switch w {
	case 1:
		return "%" + reg8Names[r]
	case 2:
		return "%" + reg16Names[r]
	case 4:
		return "%" + reg32Names[r]
	}
	return "%" + r.String()
}

// memString formats the instruction's memory operand AT&T-style.
func (i *Inst) memString() string {
	var sb strings.Builder
	if d := i.Disp(); d != 0 || !i.HasMem() {
		fmt.Fprintf(&sb, "%#x", d)
	}
	if i.RIPRel {
		sb.WriteString("(%rip)")
		return sb.String()
	}
	if i.MemBase == NoReg && i.MemIndex == NoReg {
		return sb.String() // absolute
	}
	sb.WriteByte('(')
	if i.MemBase != NoReg {
		sb.WriteString(regName(i.MemBase, 8))
	}
	if i.MemIndex != NoReg {
		fmt.Fprintf(&sb, ",%s,%d", regName(i.MemIndex, 8), i.MemScale)
	}
	sb.WriteByte(')')
	return sb.String()
}

// String renders the instruction AT&T-style: mnemonic, then operands
// (best effort; see Mnemonic).
func (i *Inst) String() string {
	mn := i.Mnemonic()
	w := i.opWidth()
	var ops []string

	rm := func() string {
		if i.Attrs&AttrModRM == 0 {
			return ""
		}
		if i.ModRM>>6 == 3 {
			return regName(Reg(i.ModRM&7|(i.Rex&1)<<3), w)
		}
		return i.memString()
	}
	reg := func() string {
		return regName(Reg((i.ModRM>>3)&7|(i.Rex>>2&1)<<3), w)
	}

	op := i.Opcode
	switch {
	case i.RelSize != 0:
		ops = append(ops, fmt.Sprintf("%#x", i.Target()))
	case i.TwoByte && (op == 0xB6 || op == 0xB7 || op == 0xBE || op == 0xBF):
		sw := 1
		if op == 0xB7 || op == 0xBF {
			sw = 2
		}
		src := i.memString()
		if i.ModRM>>6 == 3 {
			src = regName(Reg(i.ModRM&7|(i.Rex&1)<<3), sw)
		}
		ops = append(ops, src, reg())
	case i.TwoByte && i.Attrs&AttrModRM != 0:
		ops = append(ops, rm(), reg())
	case op <= 0x3D:
		switch op & 7 {
		case 0, 1: // op r/m, r
			ops = append(ops, reg(), rm())
		case 2, 3: // op r, r/m
			ops = append(ops, rm(), reg())
		case 4, 5: // op a, imm
			ops = append(ops, fmt.Sprintf("$%#x", i.Imm()), regName(RAX, w))
		}
	case op >= 0x50 && op <= 0x5F:
		ops = append(ops, regName(Reg(op&7|(i.Rex&1)<<3), 8))
	case op == 0x68 || op == 0x6A || op == 0xCD:
		ops = append(ops, fmt.Sprintf("$%#x", i.Imm()))
	case op == 0x80 || op == 0x81 || op == 0x83 || op == 0xC6 || op == 0xC7:
		ops = append(ops, fmt.Sprintf("$%#x", i.Imm()), rm())
	case op == 0x84 || op == 0x85 || op == 0x88 || op == 0x89:
		ops = append(ops, reg(), rm())
	case op == 0x86 || op == 0x87:
		ops = append(ops, reg(), rm())
	case op == 0x8A || op == 0x8B || op == 0x8D || op == 0x63:
		ops = append(ops, rm(), reg())
	case op == 0x8F || op == 0xFE:
		ops = append(ops, rm())
	case op >= 0x91 && op <= 0x97:
		ops = append(ops, regName(Reg(op&7|(i.Rex&1)<<3), w), regName(RAX, w))
	case op >= 0xB0 && op <= 0xBF:
		ops = append(ops, fmt.Sprintf("$%#x", i.Imm()), regName(Reg(op&7|(i.Rex&1)<<3), w))
	case op == 0x69 || op == 0x6B:
		ops = append(ops, fmt.Sprintf("$%#x", i.Imm()), rm(), reg())
	case op == 0xA8 || op == 0xA9:
		ops = append(ops, fmt.Sprintf("$%#x", i.Imm()), regName(RAX, w))
	case op == 0xC0 || op == 0xC1:
		ops = append(ops, fmt.Sprintf("$%d", i.Imm()), rm())
	case op == 0xD0 || op == 0xD1:
		ops = append(ops, "$1", rm())
	case op == 0xD2 || op == 0xD3:
		ops = append(ops, "%cl", rm())
	case op == 0xC2:
		ops = append(ops, fmt.Sprintf("$%#x", i.Imm()))
	case op == 0xF6 || op == 0xF7:
		if (i.ModRM>>3)&7 <= 1 {
			ops = append(ops, fmt.Sprintf("$%#x", i.Imm()))
		}
		ops = append(ops, rm())
	case op == 0xFF:
		r := rm()
		if f := (i.ModRM >> 3) & 7; f == 2 || f == 4 {
			r = "*" + r
		}
		ops = append(ops, r)
	}

	out := make([]string, 0, len(ops))
	for _, o := range ops {
		if o != "" {
			out = append(out, o)
		}
	}
	if len(out) == 0 {
		return mn
	}
	return mn + " " + strings.Join(out, ",")
}

// OpWidth returns the operand width in bytes (1, 2, 4 or 8) the
// formatter derives from the encoding — the width the matcher
// language's `width` attribute exposes.
func (i *Inst) OpWidth() int { return i.opWidth() }
