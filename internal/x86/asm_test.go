package x86

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestAsmKnownEncodings(t *testing.T) {
	cases := []struct {
		name string
		emit func(a *Asm)
		want []byte
	}{
		{"mov (rbx),rax", func(a *Asm) { a.MovMemReg64(M(RBX, 0), RAX) }, []byte{0x48, 0x89, 0x03}},
		{"add rax,32", func(a *Asm) { a.AddRegImm64(RAX, 32) }, []byte{0x48, 0x83, 0xC0, 0x20}},
		{"xor rcx,rax", func(a *Asm) { a.XorRegReg64(RCX, RAX) }, []byte{0x48, 0x31, 0xC1}},
		{"cmpl -4(rbx),77", func(a *Asm) { a.CmpMemImm8(M(RBX, -4), 77) }, []byte{0x83, 0x7B, 0xFC, 0x4D}},
		{"testb 0x18(rbx),2", func(a *Asm) { a.TestMemImm8(M(RBX, 0x18), 2) }, []byte{0xF6, 0x43, 0x18, 0x02}},
		{"mov ebp,ebx", func(a *Asm) { a.MovRegReg32(RBP, RBX) }, []byte{0x89, 0xDD}},
		{"push rax", func(a *Asm) { a.PushReg(RAX) }, []byte{0x50}},
		{"pop rax", func(a *Asm) { a.PopReg(RAX) }, []byte{0x58}},
		{"push r12", func(a *Asm) { a.PushReg(R12) }, []byte{0x41, 0x54}},
		{"ret", func(a *Asm) { a.Ret() }, []byte{0xC3}},
		{"movb 0x398(rax),1", func(a *Asm) { a.MovMemImm8(M(RAX, 0x398), 1) },
			[]byte{0xC6, 0x80, 0x98, 0x03, 0x00, 0x00, 0x01}},
		{"store (rsp)", func(a *Asm) { a.MovMemReg64(M(RSP, 0), RAX) }, []byte{0x48, 0x89, 0x04, 0x24}},
		{"store (rbp)", func(a *Asm) { a.MovMemReg64(M(RBP, 0), RAX) }, []byte{0x48, 0x89, 0x45, 0x00}},
		{"store (r13)", func(a *Asm) { a.MovMemReg64(M(R13, 0), RAX) }, []byte{0x49, 0x89, 0x45, 0x00}},
		{"store (r12)", func(a *Asm) { a.MovMemReg64(M(R12, 0), RAX) }, []byte{0x49, 0x89, 0x04, 0x24}},
		{"lea rax,(rbx,rcx,4)", func(a *Asm) { a.Lea(RAX, MIdx(RBX, RCX, 4, 0)) },
			[]byte{0x48, 0x8D, 0x04, 0x8B}},
		{"xor eax,eax", func(a *Asm) { a.XorRegReg32(RAX, RAX) }, []byte{0x31, 0xC0}},
		{"adc rcx,rax", func(a *Asm) { a.AdcRegReg64(RCX, RAX) }, []byte{0x48, 0x11, 0xC1}},
		{"sbb rcx,rax", func(a *Asm) { a.SbbRegReg64(RCX, RAX) }, []byte{0x48, 0x19, 0xC1}},
		{"adc rax,1", func(a *Asm) { a.AdcRegImm64(RAX, 1) }, []byte{0x48, 0x83, 0xD0, 0x01}},
		{"sbb rax,1", func(a *Asm) { a.SbbRegImm64(RAX, 1) }, []byte{0x48, 0x83, 0xD8, 0x01}},
		{"sete al", func(a *Asm) { a.Setcc(CondE, RAX) }, []byte{0x0F, 0x94, 0xC0}},
		{"setb sil", func(a *Asm) { a.Setcc(CondB, RSI) }, []byte{0x40, 0x0F, 0x92, 0xC6}},
		{"setg r9b", func(a *Asm) { a.Setcc(CondG, R9) }, []byte{0x41, 0x0F, 0x9F, 0xC1}},
		{"cmc", func(a *Asm) { a.Cmc() }, []byte{0xF5}},
		{"clc", func(a *Asm) { a.Clc() }, []byte{0xF8}},
		{"stc", func(a *Asm) { a.Stc() }, []byte{0xF9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAsm(0x400000)
			tc.emit(a)
			got, err := a.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, tc.want) {
				t.Errorf("got % x, want % x", got, tc.want)
			}
		})
	}
}

func TestAsmBranches(t *testing.T) {
	a := NewAsm(0x400000)
	top := a.NewLabel()
	out := a.NewLabel()
	a.Bind(top)
	a.AddRegImm64(RAX, 1)  // 4 bytes
	a.CmpRegImm64(RAX, 10) // 4 bytes
	a.JccShort(CondL, top) // 2 bytes, rel8 = -10
	a.Jcc(CondE, out)      // 6 bytes forward
	a.Jmp(top)             // 5 bytes backward
	a.Bind(out)
	a.Ret()
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Verify each branch by decoding.
	insts := decodeAllTest(t, code, 0x400000)
	var targets []uint64
	for _, in := range insts {
		if in.RelSize != 0 {
			targets = append(targets, in.Target())
		}
	}
	want := []uint64{0x400000, 0x400000 + 21, 0x400000}
	if len(targets) != len(want) {
		t.Fatalf("got %d branches, want %d", len(targets), len(want))
	}
	for i := range want {
		if targets[i] != want[i] {
			t.Errorf("branch %d target %#x, want %#x", i, targets[i], want[i])
		}
	}
}

func TestAsmUnboundLabel(t *testing.T) {
	a := NewAsm(0)
	l := a.NewLabel()
	a.Jmp(l)
	if _, err := a.Finish(); err == nil {
		t.Fatal("expected error for unbound label")
	}
}

func TestAsmRel8Overflow(t *testing.T) {
	a := NewAsm(0)
	l := a.NewLabel()
	a.JmpShort(l)
	for i := 0; i < 200; i++ {
		a.Nop()
	}
	a.Bind(l)
	if _, err := a.Finish(); err == nil {
		t.Fatal("expected rel8 range error")
	}
}

func decodeAllTest(t *testing.T, code []byte, addr uint64) []Inst {
	t.Helper()
	var out []Inst
	for off := 0; off < len(code); {
		in, err := Decode(code[off:], addr+uint64(off))
		if err != nil {
			t.Fatalf("decode at +%#x (% x...): %v", off, code[off:min(off+8, len(code))], err)
		}
		out = append(out, in)
		off += in.Len
	}
	return out
}

// TestAsmDecodeRoundTrip property-tests that everything the assembler
// can emit is decoded back with the same length and operand shape.
func TestAsmDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	regs := []Reg{RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI, R8, R9, R10, R11, R12, R13, R14, R15}
	anyReg := func() Reg { return regs[rng.Intn(len(regs))] }
	anyMem := func() Mem {
		m := M(anyReg(), int32(rng.Intn(512)-256))
		if rng.Intn(3) == 0 {
			idx := anyReg()
			for idx == RSP {
				idx = anyReg()
			}
			m.Index = idx
			m.Scale = []uint8{1, 2, 4, 8}[rng.Intn(4)]
		}
		return m
	}
	emitters := []func(a *Asm){
		func(a *Asm) { a.MovRegReg64(anyReg(), anyReg()) },
		func(a *Asm) { a.MovRegImm64(anyReg(), rng.Uint64()) },
		func(a *Asm) { a.MovRegImm32(anyReg(), rng.Uint32()) },
		func(a *Asm) { a.MovMemReg64(anyMem(), anyReg()) },
		func(a *Asm) { a.MovMemReg32(anyMem(), anyReg()) },
		func(a *Asm) { a.MovMemReg8(anyMem(), anyReg()) },
		func(a *Asm) { a.MovRegMem64(anyReg(), anyMem()) },
		func(a *Asm) { a.MovRegMem32(anyReg(), anyMem()) },
		func(a *Asm) { a.MovZXRegMem8(anyReg(), anyMem()) },
		func(a *Asm) { a.MovMemImm32(anyMem(), rng.Uint32()) },
		func(a *Asm) { a.MovMemImm8(anyMem(), uint8(rng.Intn(256))) },
		func(a *Asm) { a.Lea(anyReg(), anyMem()) },
		func(a *Asm) { a.AddRegReg64(anyReg(), anyReg()) },
		func(a *Asm) { a.SubRegReg64(anyReg(), anyReg()) },
		func(a *Asm) { a.AndRegReg64(anyReg(), anyReg()) },
		func(a *Asm) { a.OrRegReg64(anyReg(), anyReg()) },
		func(a *Asm) { a.XorRegReg64(anyReg(), anyReg()) },
		func(a *Asm) { a.CmpRegReg64(anyReg(), anyReg()) },
		func(a *Asm) { a.TestRegReg64(anyReg(), anyReg()) },
		func(a *Asm) { a.AddRegImm64(anyReg(), int32(rng.Intn(1<<16)-1<<15)) },
		func(a *Asm) { a.SubRegImm64(anyReg(), int32(rng.Intn(1<<16)-1<<15)) },
		func(a *Asm) { a.CmpRegImm64(anyReg(), int32(rng.Intn(1<<16)-1<<15)) },
		func(a *Asm) { a.AndRegImm64(anyReg(), int32(rng.Intn(1<<16)-1<<15)) },
		func(a *Asm) { a.AdcRegReg64(anyReg(), anyReg()) },
		func(a *Asm) { a.SbbRegReg64(anyReg(), anyReg()) },
		func(a *Asm) { a.AdcRegImm64(anyReg(), int32(rng.Intn(1<<16)-1<<15)) },
		func(a *Asm) { a.SbbRegImm64(anyReg(), int32(rng.Intn(1<<16)-1<<15)) },
		func(a *Asm) { a.Setcc(Cond(rng.Intn(16)), anyReg()) },
		func(a *Asm) { a.Cmc() },
		func(a *Asm) { a.Clc() },
		func(a *Asm) { a.Stc() },
		func(a *Asm) { a.AddMemReg64(anyMem(), anyReg()) },
		func(a *Asm) { a.AddMemReg32(anyMem(), anyReg()) },
		func(a *Asm) { a.AddRegMem64(anyReg(), anyMem()) },
		func(a *Asm) { a.CmpMemImm8(anyMem(), int8(rng.Intn(256)-128)) },
		func(a *Asm) { a.TestMemImm8(anyMem(), uint8(rng.Intn(256))) },
		func(a *Asm) { a.IncMem32(anyMem()) },
		func(a *Asm) { a.ImulRegReg64(anyReg(), anyReg()) },
		func(a *Asm) { a.ImulRegRegImm32(anyReg(), anyReg(), int32(rng.Int31())) },
		func(a *Asm) { a.ShlRegImm64(anyReg(), uint8(rng.Intn(64))) },
		func(a *Asm) { a.ShrRegImm64(anyReg(), uint8(rng.Intn(64))) },
		func(a *Asm) { a.NegReg64(anyReg()) },
		func(a *Asm) { a.NotReg64(anyReg()) },
		func(a *Asm) { a.PushReg(anyReg()) },
		func(a *Asm) { a.PopReg(anyReg()) },
		func(a *Asm) { a.PushImm32(rng.Int31()) },
		func(a *Asm) { a.Pushfq() },
		func(a *Asm) { a.Popfq() },
		func(a *Asm) { a.CallReg(anyReg()) },
		func(a *Asm) { a.Nop() },
		func(a *Asm) { a.Int3() },
		func(a *Asm) { a.Ud2() },
		func(a *Asm) { a.MovMemImm32Sx64(anyMem(), rng.Int31()) },
	}
	for trial := 0; trial < 2000; trial++ {
		a := NewAsm(0x400000)
		emitters[rng.Intn(len(emitters))](a)
		code, err := a.Finish()
		if err != nil {
			t.Fatalf("trial %d: assemble: %v", trial, err)
		}
		inst, err := Decode(code, 0x400000)
		if err != nil {
			t.Fatalf("trial %d: decode % x: %v", trial, code, err)
		}
		if inst.Len != len(code) {
			t.Fatalf("trial %d: decode len %d != emitted %d (% x)", trial, inst.Len, len(code), code)
		}
	}
}

// TestAsmDecodeSequences packs many random instructions back to back
// and checks that linear decoding recovers the exact boundaries.
func TestAsmDecodeSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a := NewAsm(0x400000)
		var wantLens []int
		prev := 0
		for i := 0; i < 100; i++ {
			switch rng.Intn(6) {
			case 0:
				a.MovMemReg64(M(RBX, int32(rng.Intn(64))), RAX)
			case 1:
				a.AddRegImm64(RCX, int32(rng.Intn(100)))
			case 2:
				a.PushReg(RDI)
			case 3:
				a.MovRegImm32(RDX, rng.Uint32())
			case 4:
				a.Lea(RSI, MIdx(RAX, RCX, 8, 16))
			case 5:
				a.TestRegReg64(RAX, RAX)
			}
			wantLens = append(wantLens, a.Len()-prev)
			prev = a.Len()
		}
		code := a.MustFinish()
		insts := decodeAllTest(t, code, 0x400000)
		if len(insts) != len(wantLens) {
			t.Fatalf("trial %d: decoded %d instructions, want %d", trial, len(insts), len(wantLens))
		}
		for i, in := range insts {
			if in.Len != wantLens[i] {
				t.Fatalf("trial %d: inst %d len %d, want %d", trial, i, in.Len, wantLens[i])
			}
		}
	}
}
