package x86

import "fmt"

// ErrRelocRange reports that a relocated displacement no longer fits in
// 32 bits.
var ErrRelocRange = fmt.Errorf("x86: relocated displacement out of rel32 range")

// RelocateSimple re-encodes a non-branch instruction so that it can be
// executed at newAddr with unchanged semantics. RIP-relative
// displacements are adjusted; all other instructions are byte-copied.
// Direct branches must be handled by the caller (the trampoline
// compiler emits explicit branch sequences for them).
func RelocateSimple(i *Inst, newAddr uint64) ([]byte, error) {
	out := make([]byte, i.Len)
	copy(out, i.Bytes)
	if !i.RIPRel {
		return out, nil
	}
	// target = oldAddr + len + disp = newAddr + len + newDisp.
	newDisp := i.Disp() + int64(i.Addr) - int64(newAddr)
	if newDisp < -1<<31 || newDisp > 1<<31-1 {
		return nil, fmt.Errorf("%w: %#x -> %#x disp %d", ErrRelocRange, i.Addr, newAddr, newDisp)
	}
	put32(out[i.DispOff:], uint32(int32(newDisp)))
	return out, nil
}

// RelocateBranch re-encodes a direct branch (jmp rel8/rel32, jcc
// rel8/rel32, call rel32) so that it reaches its original absolute
// target from newAddr. rel8 encodings are widened to their rel32 forms
// (jmp EB → E9, jcc 7x → 0F 8x), so the result is valid anywhere
// within ±2GiB of the target. loopcc/jrcxz (E0–E3) have no rel32 form
// and are rejected; indirect branches carry no displacement and must
// go through RelocateSimple.
func RelocateBranch(i *Inst, newAddr uint64) ([]byte, error) {
	if !i.IsDirectBranch() {
		return nil, fmt.Errorf("x86: RelocateBranch on non-direct-branch % x", i.Bytes)
	}
	if !i.TwoByte && i.Opcode >= 0xE0 && i.Opcode <= 0xE3 {
		return nil, fmt.Errorf("x86: %#02x (loopcc/jrcxz) has no rel32 form", i.Opcode)
	}
	var out []byte
	switch {
	case i.IsJmp():
		out = []byte{0xE9, 0, 0, 0, 0}
	case i.IsCall():
		out = []byte{0xE8, 0, 0, 0, 0}
	default: // jcc: the condition nibble is shared by 7x and 0F 8x.
		out = []byte{0x0F, 0x80 | i.Opcode&0x0F, 0, 0, 0, 0}
	}
	rel := int64(i.Target()) - int64(newAddr) - int64(len(out))
	if rel < -1<<31 || rel > 1<<31-1 {
		return nil, fmt.Errorf("%w: branch at %#x -> target %#x rel %d", ErrRelocRange, newAddr, i.Target(), rel)
	}
	put32(out[len(out)-4:], uint32(int32(rel)))
	return out, nil
}
