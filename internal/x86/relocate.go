package x86

import "fmt"

// ErrRelocRange reports that a relocated displacement no longer fits in
// 32 bits.
var ErrRelocRange = fmt.Errorf("x86: relocated displacement out of rel32 range")

// RelocateSimple re-encodes a non-branch instruction so that it can be
// executed at newAddr with unchanged semantics. RIP-relative
// displacements are adjusted; all other instructions are byte-copied.
// Direct branches must be handled by the caller (the trampoline
// compiler emits explicit branch sequences for them).
func RelocateSimple(i *Inst, newAddr uint64) ([]byte, error) {
	out := make([]byte, i.Len)
	copy(out, i.Bytes)
	if !i.RIPRel {
		return out, nil
	}
	// target = oldAddr + len + disp = newAddr + len + newDisp.
	newDisp := i.Disp() + int64(i.Addr) - int64(newAddr)
	if newDisp < -1<<31 || newDisp > 1<<31-1 {
		return nil, fmt.Errorf("%w: %#x -> %#x disp %d", ErrRelocRange, i.Addr, newAddr, newDisp)
	}
	put32(out[i.DispOff:], uint32(int32(newDisp)))
	return out, nil
}
