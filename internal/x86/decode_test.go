package x86

import (
	"bytes"
	"testing"
)

// decodeOne decodes and fails the test on error.
func decodeOne(t *testing.T, code []byte) Inst {
	t.Helper()
	inst, err := Decode(code, 0x400000)
	if err != nil {
		t.Fatalf("Decode(% x): %v", code, err)
	}
	return inst
}

func TestDecodeLengths(t *testing.T) {
	cases := []struct {
		name string
		code []byte
		len  int
	}{
		{"mov rax,(rbx)", []byte{0x48, 0x89, 0x03}, 3},
		{"add $32,rax", []byte{0x48, 0x83, 0xC0, 0x20}, 4},
		{"xor rcx,rax", []byte{0x48, 0x31, 0xC1}, 3},
		{"cmpl $77,-4(rbx)", []byte{0x83, 0x7B, 0xFC, 0x4D}, 4},
		{"testb $2,0x18(rbx)", []byte{0xF6, 0x43, 0x18, 0x02}, 4},
		{"ret", []byte{0xC3}, 1},
		{"push rax", []byte{0x50}, 1},
		{"push r12", []byte{0x41, 0x54}, 2},
		{"pop rbp", []byte{0x5D}, 1},
		{"nop", []byte{0x90}, 1},
		{"int3", []byte{0xCC}, 1},
		{"jmp rel32", []byte{0xE9, 0x00, 0x01, 0x02, 0x03}, 5},
		{"jmp rel8", []byte{0xEB, 0x10}, 2},
		{"je rel8", []byte{0x74, 0x27}, 2},
		{"jne rel32", []byte{0x0F, 0x85, 0x01, 0x02, 0x03, 0x04}, 6},
		{"call rel32", []byte{0xE8, 0xAA, 0xBB, 0xCC, 0x00}, 5},
		{"lea rax,8(rsp)", []byte{0x48, 0x8D, 0x44, 0x24, 0x08}, 5},
		{"mov ebx,ebp", []byte{0x89, 0xDD}, 2},
		{"movb $1,0x398(rax)", []byte{0xC6, 0x80, 0x98, 0x03, 0x00, 0x00, 0x01}, 7},
		{"callq *0x2a2a6f(rip)", []byte{0xFF, 0x15, 0x6F, 0x2A, 0x2A, 0x00}, 6},
		{"mov 0xa0(r14),rsi", []byte{0x49, 0x8B, 0xB6, 0xA0, 0x00, 0x00, 0x00}, 7},
		{"movabs rax,imm64", []byte{0x48, 0xB8, 1, 2, 3, 4, 5, 6, 7, 8}, 10},
		{"mov eax,imm32", []byte{0xB8, 1, 2, 3, 4}, 5},
		{"mov ax,imm16 (66)", []byte{0x66, 0xB8, 1, 2}, 4},
		{"test rax,rax", []byte{0x48, 0x85, 0xC0}, 3},
		{"test rax,imm32", []byte{0x48, 0xF7, 0xC0, 1, 2, 3, 4}, 7},
		{"neg rax", []byte{0x48, 0xF7, 0xD8}, 3},
		{"imul rbx,rcx", []byte{0x48, 0x0F, 0xAF, 0xD9}, 4},
		{"movzx eax,byte(rdi)", []byte{0x0F, 0xB6, 0x07}, 3},
		{"endbr64", []byte{0xF3, 0x0F, 0x1E, 0xFA}, 4},
		{"rep movsb", []byte{0xF3, 0xA4}, 2},
		{"mov fs:0x28 load", []byte{0x64, 0x48, 0x8B, 0x04, 0x25, 0x28, 0, 0, 0}, 9},
		{"pushfq", []byte{0x9C}, 1},
		{"leave", []byte{0xC9}, 1},
		{"shl rax,4", []byte{0x48, 0xC1, 0xE0, 0x04}, 4},
		{"jmp *rax", []byte{0xFF, 0xE0}, 2},
		{"jmp *(rax,rbx,8)", []byte{0xFF, 0x24, 0xD8}, 3},
		{"push imm8", []byte{0x6A, 0x05}, 2},
		{"push imm32", []byte{0x68, 1, 2, 3, 4}, 5},
		{"enter", []byte{0xC8, 0x10, 0x00, 0x01}, 4},
		{"lock add (rbx),eax", []byte{0xF0, 0x01, 0x03}, 3},
		{"cmpxchg (rdi),rsi", []byte{0x48, 0x0F, 0xB1, 0x37}, 4},
		{"movaps store", []byte{0x0F, 0x29, 0x07}, 3},
		{"absolute store", []byte{0x89, 0x04, 0x25, 0x10, 0x20, 0x30, 0x00}, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Pad with trailing bytes so truncation cannot mask a
			// length over-estimate.
			padded := append(append([]byte{}, tc.code...), 0x90, 0x90, 0x90, 0x90)
			inst := decodeOne(t, padded)
			if inst.Len != tc.len {
				t.Errorf("len = %d, want %d", inst.Len, tc.len)
			}
		})
	}
}

func TestDecodeBranchInfo(t *testing.T) {
	// jmpq with rel32 = 0x8348XXXX example from the paper.
	code := []byte{0xE9, 0x11, 0x22, 0x48, 0x83}
	inst := decodeOne(t, code)
	if !inst.IsJmp() {
		t.Fatal("jmp not classified as jump")
	}
	relBits := uint32(0x83482211)
	wantRel := int64(int32(relBits))
	if inst.Rel() != wantRel {
		t.Errorf("Rel() = %#x, want %#x", inst.Rel(), wantRel)
	}
	if got := inst.Target(); got != 0x400000+5+uint64(wantRel) {
		t.Errorf("Target() = %#x", got)
	}

	short := decodeOne(t, []byte{0xEB, 0x70})
	if short.Target() != 0x400000+2+0x70 {
		t.Errorf("short jmp target = %#x", short.Target())
	}
	neg := decodeOne(t, []byte{0x74, 0xF0})
	if neg.Target() != 0x400000+2-16 {
		t.Errorf("negative jcc target = %#x", neg.Target())
	}
	if !neg.IsJcc() {
		t.Error("jcc not classified")
	}
}

func TestDecodeMemOperands(t *testing.T) {
	cases := []struct {
		name  string
		code  []byte
		base  Reg
		index Reg
		write bool
	}{
		{"mov (rbx),rax store", []byte{0x48, 0x89, 0x03}, RBX, NoReg, true},
		{"mov rax,(rbx) load", []byte{0x48, 0x8B, 0x03}, RBX, NoReg, false},
		{"mov (rsp),rax store", []byte{0x48, 0x89, 0x04, 0x24}, RSP, NoReg, true},
		{"mov (r13),eax store", []byte{0x41, 0x89, 0x45, 0x00}, R13, NoReg, true},
		{"store sib", []byte{0x89, 0x04, 0x9F}, RDI, RBX, true},
		{"store rip-rel", []byte{0x89, 0x05, 1, 2, 3, 4}, RIP, NoReg, true},
		{"cmp no write", []byte{0x39, 0x03}, RBX, NoReg, false},
		{"test no write", []byte{0x85, 0x03}, RBX, NoReg, false},
		{"add (rbx),eax rmw", []byte{0x01, 0x03}, RBX, NoReg, true},
		{"inc dword (rdi)", []byte{0xFF, 0x07}, RDI, NoReg, true},
		{"push (rdi) no write", []byte{0xFF, 0x37}, RDI, NoReg, false},
		{"notq (rdi) write", []byte{0x48, 0xF7, 0x17}, RDI, NoReg, true},
		{"mul (rdi) read", []byte{0x48, 0xF7, 0x27}, RDI, NoReg, false},
		{"setcc (rsi)", []byte{0x0F, 0x94, 0x06}, RSI, NoReg, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst := decodeOne(t, tc.code)
			if inst.MemBase != tc.base {
				t.Errorf("MemBase = %v, want %v", inst.MemBase, tc.base)
			}
			if inst.MemIndex != tc.index {
				t.Errorf("MemIndex = %v, want %v", inst.MemIndex, tc.index)
			}
			if inst.WritesMem() != tc.write {
				t.Errorf("WritesMem = %v, want %v", inst.WritesMem(), tc.write)
			}
		})
	}
}

func TestIsHeapWrite(t *testing.T) {
	cases := []struct {
		name string
		code []byte
		want bool
	}{
		{"store via rbx", []byte{0x48, 0x89, 0x03}, true},
		{"store via rsp", []byte{0x48, 0x89, 0x04, 0x24}, false},
		{"store rip-rel", []byte{0x89, 0x05, 1, 2, 3, 4}, false},
		{"store via rbp", []byte{0x48, 0x89, 0x45, 0x08}, true},
		{"load via rbx", []byte{0x48, 0x8B, 0x03}, false},
		{"reg-to-reg mov", []byte{0x48, 0x89, 0xD8}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst := decodeOne(t, tc.code)
			if inst.IsHeapWrite() != tc.want {
				t.Errorf("IsHeapWrite = %v, want %v", inst.IsHeapWrite(), tc.want)
			}
		})
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{0x48}, 0); err == nil {
		t.Error("lone REX prefix should be truncated")
	}
	if _, err := Decode([]byte{0xE9, 0x01, 0x02}, 0); err == nil {
		t.Error("truncated rel32 should fail")
	}
	if _, err := Decode([]byte{0x06}, 0); err == nil {
		t.Error("invalid 64-bit opcode should fail")
	}
	if _, err := Decode([]byte{0xC4, 0x00, 0x00}, 0); err == nil {
		t.Error("VEX should be rejected")
	}
	if _, err := Decode(bytes.Repeat([]byte{0x66}, 20), 0); err == nil {
		t.Error("over-long prefix run should fail")
	}
	if _, err := Decode([]byte{0x48, 0x89}, 0); err == nil {
		t.Error("missing modrm should fail")
	}
}

func TestRelocateSimple(t *testing.T) {
	// mov 0x100(%rip),%eax at 0x400000 -> absolute target 0x400106.
	code := []byte{0x8B, 0x05, 0x00, 0x01, 0x00, 0x00}
	inst := decodeOne(t, code)
	out, err := RelocateSimple(&inst, 0x500000)
	if err != nil {
		t.Fatal(err)
	}
	reloc, err := Decode(out, 0x500000)
	if err != nil {
		t.Fatal(err)
	}
	origTarget := inst.Addr + uint64(inst.Len) + uint64(inst.Disp())
	newTarget := reloc.Addr + uint64(reloc.Len) + uint64(reloc.Disp())
	if origTarget != newTarget {
		t.Errorf("rip target moved: %#x -> %#x", origTarget, newTarget)
	}

	// Non-rip instructions are copied verbatim.
	plain := decodeOne(t, []byte{0x48, 0x89, 0x03})
	out2, err := RelocateSimple(&plain, 0x99999999)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out2, plain.Bytes) {
		t.Error("non-rip instruction was modified")
	}

	// Out-of-range relocation must fail.
	if _, err := RelocateSimple(&inst, 0x40000000000); err == nil {
		t.Error("expected range error")
	}
}
