package x86

import (
	"errors"
	"fmt"
)

// Decoding errors.
var (
	// ErrTruncated reports that the byte stream ended inside an
	// instruction.
	ErrTruncated = errors.New("x86: truncated instruction")
	// ErrInvalid reports an opcode that is invalid in 64-bit mode or
	// outside the supported subset.
	ErrInvalid = errors.New("x86: invalid opcode")
)

const maxInstLen = 15

// Decode decodes the instruction starting at code[0], assumed to be
// loaded at virtual address addr. The returned Inst aliases code.
func Decode(code []byte, addr uint64) (Inst, error) {
	inst := Inst{
		Addr:     addr,
		MemBase:  NoReg,
		MemIndex: NoReg,
	}
	pos := 0

	// Legacy and REX prefixes. REX is only effective when it is the
	// final prefix; compilers always emit it last, and for length
	// decoding earlier REX bytes are harmless.
	opSize := false
	for {
		if pos >= len(code) {
			return inst, ErrTruncated
		}
		if pos >= maxInstLen {
			return inst, fmt.Errorf("%w: prefix run too long", ErrInvalid)
		}
		b := code[pos]
		k := prefixKind(b)
		if k == prefNone {
			break
		}
		if k == prefRex {
			inst.Rex = b
		} else {
			inst.Rex = 0 // REX must immediately precede the opcode
		}
		if k == prefOpSize {
			opSize = true
		}
		pos++
	}
	inst.NPrefix = pos

	// Opcode.
	op := code[pos]
	pos++
	var attrs Attr
	if op == 0x0F {
		if pos >= len(code) {
			return inst, ErrTruncated
		}
		inst.TwoByte = true
		op = code[pos]
		pos++
		attrs = twoByte[op]
	} else {
		attrs = oneByte[op]
	}
	inst.Opcode = op
	if attrs&AttrInvalid != 0 {
		return inst, fmt.Errorf("%w: %#02x (two-byte=%v)", ErrInvalid, op, inst.TwoByte)
	}

	// ModRM, SIB and displacement.
	if attrs&AttrModRM != 0 {
		if pos >= len(code) {
			return inst, ErrTruncated
		}
		modrm := code[pos]
		pos++
		inst.ModRM = modrm
		mod := modrm >> 6
		rm := modrm & 7

		dispSize := 0
		if mod == 3 {
			// Register operand: no memory access.
		} else {
			switch mod {
			case 1:
				dispSize = 1
			case 2:
				dispSize = 4
			}
			if rm == 4 {
				// SIB byte.
				if pos >= len(code) {
					return inst, ErrTruncated
				}
				sib := code[pos]
				pos++
				base := sib & 7
				index := (sib >> 3) & 7
				scaledIndex := Reg(index) | Reg(rexBit(inst.Rex, 1))<<3
				if scaledIndex != RSP { // index=100b means "no index"
					inst.MemIndex = scaledIndex
					inst.MemScale = 1 << (sib >> 6)
				}
				if base == 5 && mod == 0 {
					dispSize = 4 // disp32, no base
				} else {
					inst.MemBase = Reg(base) | Reg(rexBit(inst.Rex, 0))<<3
				}
			} else if rm == 5 && mod == 0 {
				// RIP-relative in 64-bit mode.
				dispSize = 4
				inst.RIPRel = true
				inst.MemBase = RIP
			} else {
				inst.MemBase = Reg(rm) | Reg(rexBit(inst.Rex, 0))<<3
			}
		}
		if dispSize > 0 {
			if pos+dispSize > len(code) {
				return inst, ErrTruncated
			}
			inst.DispOff = pos
			inst.DispSize = dispSize
			pos += dispSize
		}

		attrs = refineGroups(op, inst.TwoByte, modrm, attrs)
		// Register-form instructions never write memory.
		if mod == 3 {
			attrs &^= AttrMemDst
		}
	}

	// Immediates.
	immSize := 0
	if attrs&AttrImm8 != 0 {
		immSize += 1
	}
	if attrs&AttrImm16 != 0 {
		immSize += 2
	}
	if attrs&AttrImmZ != 0 {
		if opSize {
			immSize += 2
		} else {
			immSize += 4
		}
	}
	if attrs&AttrImmV != 0 {
		switch {
		case inst.Rex&0x08 != 0:
			immSize += 8
		case opSize:
			immSize += 2
		default:
			immSize += 4
		}
	}
	if attrs&AttrMoffs != 0 {
		immSize += 8
	}
	if immSize > 0 {
		if pos+immSize > len(code) {
			return inst, ErrTruncated
		}
		inst.ImmOff = pos
		inst.ImmSize = immSize
		pos += immSize
	}

	// Branch displacement (always the final field).
	switch {
	case attrs&AttrRel8 != 0:
		if pos >= len(code) {
			return inst, ErrTruncated
		}
		inst.RelOff = pos
		inst.RelSize = 1
		pos++
	case attrs&AttrRel32 != 0:
		if pos+4 > len(code) {
			return inst, ErrTruncated
		}
		inst.RelOff = pos
		inst.RelSize = 4
		pos += 4
	}

	if pos > maxInstLen {
		return inst, fmt.Errorf("%w: length %d exceeds 15", ErrInvalid, pos)
	}
	inst.Len = pos
	inst.Bytes = code[:pos]
	inst.Attrs = attrs
	return inst, nil
}

// rexBit extracts REX bit n (0=B, 1=X, 2=R, 3=W) as 0 or 1.
func rexBit(rex byte, n uint) byte {
	return (rex >> n) & 1
}

// refineGroups adjusts attributes for opcodes whose semantics depend on
// the ModRM reg field (the x86 "group" encodings).
func refineGroups(op byte, twoByteOp bool, modrm byte, attrs Attr) Attr {
	reg := (modrm >> 3) & 7
	if twoByteOp {
		return attrs
	}
	switch op {
	case 0xF6, 0xF7: // group 3
		attrs &^= AttrGroup3
		if reg <= 1 { // test r/m,imm
			if op == 0xF6 {
				attrs |= AttrImm8
			} else {
				attrs |= AttrImmZ
			}
			attrs &^= AttrMemDst
		} else if reg >= 4 { // mul/imul/div/idiv read only
			attrs &^= AttrMemDst
		}
		// reg 2 (not) and 3 (neg) keep AttrMemDst.
	case 0xFF: // group 5
		switch reg {
		case 0, 1: // inc/dec r/m
			attrs |= AttrMemDst
		case 2: // call r/m (indirect)
			attrs |= AttrCall
		case 3: // far call
			attrs |= AttrCall
		case 4, 5: // jmp r/m (indirect)
			attrs |= AttrJump | AttrStop
		case 6: // push r/m
		}
	}
	return attrs
}
