package x86

// Opcode attribute tables for 64-bit mode. The tables cover the
// complete one-byte map and the portion of the two-byte (0x0F) map
// emitted by mainstream compilers; unknown two-byte opcodes decode as
// AttrInvalid so that linear disassembly can skip them explicitly
// rather than mis-sizing silently.

// prefix kinds recognised before the opcode.
const (
	prefNone = iota
	prefLegacy
	prefRex
	prefOpSize  // 0x66
	prefAdSize  // 0x67
	prefSeg     // segment overrides
	prefLockRep // 0xF0, 0xF2, 0xF3
)

// prefixKind classifies a byte as an instruction prefix (64-bit mode).
func prefixKind(b byte) int {
	switch b {
	case 0x66:
		return prefOpSize
	case 0x67:
		return prefAdSize
	case 0x2E, 0x36, 0x3E, 0x26, 0x64, 0x65:
		return prefSeg
	case 0xF0, 0xF2, 0xF3:
		return prefLockRep
	}
	if b >= 0x40 && b <= 0x4F {
		return prefRex
	}
	return prefNone
}

// oneByte is the one-byte opcode attribute map.
var oneByte = [256]Attr{}

// twoByte is the 0x0F-escaped opcode attribute map.
var twoByte = [256]Attr{}

func setRange(tab *[256]Attr, lo, hi int, a Attr) {
	for i := lo; i <= hi; i++ {
		tab[i] = a
	}
}

func init() {
	initOneByte()
	initTwoByte()
}

func initOneByte() {
	t := &oneByte

	// 0x00-0x3F: the classic ALU block. Each group of 8:
	//   +0 op r/m8,r8   +1 op r/m,r    (memory destination)
	//   +2 op r8,r/m8   +3 op r,r/m    (register destination)
	//   +4 op al,imm8   +5 op eax,immz
	//   +6/+7: invalid in 64-bit mode (or prefixes at 0x26/0x2E/…).
	for _, base := range []int{0x00, 0x08, 0x10, 0x18, 0x20, 0x28, 0x30, 0x38} {
		memDst := Attr(AttrModRM | AttrMemDst)
		if base == 0x38 { // cmp writes nothing
			memDst = AttrModRM
		}
		t[base+0] = memDst
		t[base+1] = memDst
		t[base+2] = AttrModRM
		t[base+3] = AttrModRM
		t[base+4] = AttrImm8
		t[base+5] = AttrImmZ
		t[base+6] = AttrInvalid
		t[base+7] = AttrInvalid
	}
	// Prefix bytes inside the block are classified by prefixKind and
	// never reach the opcode table, but mark them invalid-as-opcode.
	for _, p := range []int{0x26, 0x2E, 0x36, 0x3E} {
		t[p] = AttrInvalid
	}

	// 0x40-0x4F are REX prefixes (consumed before the opcode).
	setRange(t, 0x40, 0x4F, AttrInvalid)

	// push/pop r64.
	setRange(t, 0x50, 0x5F, 0)

	setRange(t, 0x60, 0x62, AttrInvalid)
	t[0x63] = AttrModRM // movsxd
	t[0x64] = AttrInvalid
	t[0x65] = AttrInvalid
	t[0x66] = AttrInvalid // prefix
	t[0x67] = AttrInvalid // prefix
	t[0x68] = AttrImmZ    // push immz
	t[0x69] = AttrModRM | AttrImmZ
	t[0x6A] = AttrImm8 // push imm8
	t[0x6B] = AttrModRM | AttrImm8
	setRange(t, 0x6C, 0x6F, 0) // ins/outs

	// jcc rel8.
	setRange(t, 0x70, 0x7F, AttrRel8|AttrCondJump)

	t[0x80] = AttrModRM | AttrImm8 | AttrMemDst // grp1 r/m8,imm8
	t[0x81] = AttrModRM | AttrImmZ | AttrMemDst
	t[0x82] = AttrInvalid
	t[0x83] = AttrModRM | AttrImm8 | AttrMemDst
	t[0x84] = AttrModRM // test
	t[0x85] = AttrModRM
	t[0x86] = AttrModRM | AttrMemDst // xchg
	t[0x87] = AttrModRM | AttrMemDst
	t[0x88] = AttrModRM | AttrMemDst // mov r/m8,r8
	t[0x89] = AttrModRM | AttrMemDst // mov r/m,r
	t[0x8A] = AttrModRM
	t[0x8B] = AttrModRM
	t[0x8C] = AttrModRM | AttrMemDst // mov r/m,sreg
	t[0x8D] = AttrModRM              // lea
	t[0x8E] = AttrModRM              // mov sreg,r/m
	t[0x8F] = AttrModRM | AttrMemDst // pop r/m

	setRange(t, 0x90, 0x97, 0) // nop / xchg rax,r
	setRange(t, 0x98, 0x9F, 0) // cwde, cdq, pushf, popf, sahf, lahf
	t[0x9A] = AttrInvalid      // far call, invalid in 64-bit

	setRange(t, 0xA0, 0xA3, AttrMoffs)
	t[0xA2] |= AttrMemDst // mov moffs8,al
	t[0xA3] |= AttrMemDst // mov moffs,ax/eax/rax
	setRange(t, 0xA4, 0xA7, 0)
	t[0xA8] = AttrImm8
	t[0xA9] = AttrImmZ
	setRange(t, 0xAA, 0xAF, 0) // stos/lods/scas

	setRange(t, 0xB0, 0xB7, AttrImm8) // mov r8,imm8
	setRange(t, 0xB8, 0xBF, AttrImmV) // mov r,immv (movabs with REX.W)

	t[0xC0] = AttrModRM | AttrImm8 | AttrMemDst // grp2 r/m8,imm8
	t[0xC1] = AttrModRM | AttrImm8 | AttrMemDst
	t[0xC2] = AttrImm16 | AttrRet | AttrStop
	t[0xC3] = AttrRet | AttrStop
	t[0xC4] = AttrInvalid                       // VEX
	t[0xC5] = AttrInvalid                       // VEX
	t[0xC6] = AttrModRM | AttrImm8 | AttrMemDst // mov r/m8,imm8
	t[0xC7] = AttrModRM | AttrImmZ | AttrMemDst // mov r/m,immz
	t[0xC8] = AttrImm16 | AttrImm8              // enter imm16,imm8
	t[0xC9] = 0                                 // leave
	t[0xCA] = AttrImm16 | AttrRet | AttrStop
	t[0xCB] = AttrRet | AttrStop
	t[0xCC] = AttrInt3
	t[0xCD] = AttrImm8 // int imm8
	t[0xCE] = AttrInvalid
	t[0xCF] = AttrRet | AttrStop // iret

	t[0xD0] = AttrModRM | AttrMemDst // grp2 r/m8,1
	t[0xD1] = AttrModRM | AttrMemDst
	t[0xD2] = AttrModRM | AttrMemDst // grp2 r/m8,cl
	t[0xD3] = AttrModRM | AttrMemDst
	t[0xD4] = AttrInvalid
	t[0xD5] = AttrInvalid
	t[0xD6] = AttrInvalid
	t[0xD7] = 0                        // xlat
	setRange(t, 0xD8, 0xDF, AttrModRM) // x87

	setRange(t, 0xE0, 0xE3, AttrRel8|AttrCondJump) // loopcc / jrcxz
	t[0xE4] = AttrImm8                             // in
	t[0xE5] = AttrImm8
	t[0xE6] = AttrImm8 // out
	t[0xE7] = AttrImm8
	t[0xE8] = AttrRel32 | AttrCall
	t[0xE9] = AttrRel32 | AttrJump | AttrStop
	t[0xEA] = AttrInvalid // far jmp
	t[0xEB] = AttrRel8 | AttrJump | AttrStop
	setRange(t, 0xEC, 0xEF, 0) // in/out dx

	t[0xF0] = AttrInvalid                         // lock prefix
	t[0xF1] = 0                                   // int1
	t[0xF2] = AttrInvalid                         // prefix
	t[0xF3] = AttrInvalid                         // prefix
	t[0xF4] = AttrStop                            // hlt
	t[0xF5] = 0                                   // cmc
	t[0xF6] = AttrModRM | AttrGroup3 | AttrMemDst // grp3: not/neg write
	t[0xF7] = AttrModRM | AttrGroup3 | AttrMemDst
	setRange(t, 0xF8, 0xFD, 0)       // clc..std
	t[0xFE] = AttrModRM | AttrMemDst // grp4 inc/dec r/m8
	t[0xFF] = AttrModRM              // grp5 (refined by modrm.reg)
}

func initTwoByte() {
	t := &twoByte
	setRange(t, 0x00, 0xFF, AttrInvalid)

	t[0x05] = AttrStop // syscall
	t[0x0B] = AttrStop // ud2
	t[0x0D] = AttrModRM
	setRange(t, 0x10, 0x17, AttrModRM) // SSE mov low/high
	t[0x11] |= AttrMemDst              // movups/movsd store form
	t[0x13] |= AttrMemDst
	t[0x17] |= AttrMemDst
	setRange(t, 0x18, 0x1F, AttrModRM) // prefetch / hint nop
	setRange(t, 0x28, 0x2F, AttrModRM) // movaps, cvt, ucomis
	t[0x29] |= AttrMemDst              // movaps store
	t[0x2B] |= AttrMemDst              // movntps
	t[0x31] = 0                        // rdtsc
	t[0x38] = AttrInvalid              // three-byte escape (unsupported)
	t[0x3A] = AttrInvalid
	setRange(t, 0x40, 0x4F, AttrModRM)              // cmovcc
	setRange(t, 0x50, 0x5F, AttrModRM)              // SSE arith
	setRange(t, 0x60, 0x6F, AttrModRM)              // punpck, movd/movdqa load
	t[0x70] = AttrModRM | AttrImm8                  // pshufd
	setRange(t, 0x71, 0x73, AttrModRM|AttrImm8)     // pshift groups
	setRange(t, 0x74, 0x76, AttrModRM)              // pcmpeq
	t[0x77] = 0                                     // emms
	setRange(t, 0x7E, 0x7F, AttrModRM|AttrMemDst)   // movd/movdqa store form
	setRange(t, 0x80, 0x8F, AttrRel32|AttrCondJump) // jcc rel32
	setRange(t, 0x90, 0x9F, AttrModRM|AttrMemDst)   // setcc
	t[0xA0] = 0                                     // push fs
	t[0xA1] = 0
	t[0xA2] = 0 // cpuid
	t[0xA3] = AttrModRM
	t[0xA4] = AttrModRM | AttrImm8 | AttrMemDst // shld
	t[0xA5] = AttrModRM | AttrMemDst
	t[0xA8] = 0
	t[0xA9] = 0
	t[0xAB] = AttrModRM | AttrMemDst            // bts
	t[0xAC] = AttrModRM | AttrImm8 | AttrMemDst // shrd
	t[0xAD] = AttrModRM | AttrMemDst
	t[0xAE] = AttrModRM              // fences / fxsave group
	t[0xAF] = AttrModRM              // imul
	t[0xB0] = AttrModRM | AttrMemDst // cmpxchg
	t[0xB1] = AttrModRM | AttrMemDst
	t[0xB3] = AttrModRM | AttrMemDst // btr
	t[0xB6] = AttrModRM              // movzx
	t[0xB7] = AttrModRM
	t[0xB8] = AttrModRM                         // popcnt (F3)
	t[0xBA] = AttrModRM | AttrImm8 | AttrMemDst // bt group
	t[0xBB] = AttrModRM | AttrMemDst            // btc
	t[0xBC] = AttrModRM                         // bsf
	t[0xBD] = AttrModRM                         // bsr
	t[0xBE] = AttrModRM                         // movsx
	t[0xBF] = AttrModRM
	t[0xC0] = AttrModRM | AttrMemDst // xadd
	t[0xC1] = AttrModRM | AttrMemDst
	t[0xC2] = AttrModRM | AttrImm8   // cmpps
	t[0xC3] = AttrModRM | AttrMemDst // movnti
	t[0xC4] = AttrModRM | AttrImm8   // pinsrw
	t[0xC5] = AttrModRM | AttrImm8   // pextrw
	t[0xC6] = AttrModRM | AttrImm8   // shufps
	t[0xC7] = AttrModRM | AttrMemDst // cmpxchg8b/16b
	setRange(t, 0xC8, 0xCF, 0)       // bswap
	setRange(t, 0xD0, 0xEF, AttrModRM)
	t[0xD6] |= AttrMemDst // movq store
	t[0xE7] |= AttrMemDst // movntq
	setRange(t, 0xF0, 0xFE, AttrModRM)
	t[0xFF] = AttrInvalid
}
