package x86

import (
	"strings"
	"testing"
)

func fmtOf(t *testing.T, code []byte, addr uint64) string {
	t.Helper()
	in, err := Decode(code, addr)
	if err != nil {
		t.Fatalf("decode % x: %v", code, err)
	}
	return in.String()
}

func TestFormatKnown(t *testing.T) {
	cases := []struct {
		code []byte
		addr uint64
		want string
	}{
		{[]byte{0x48, 0x89, 0x03}, 0, "mov %rax,(%rbx)"},
		{[]byte{0x48, 0x83, 0xC0, 0x20}, 0, "add $0x20,%rax"},
		{[]byte{0x48, 0x31, 0xC1}, 0, "xor %rax,%rcx"},
		{[]byte{0x83, 0x7B, 0xFC, 0x4D}, 0, "cmp $0x4d,-0x4(%rbx)"},
		{[]byte{0xF6, 0x43, 0x18, 0x02}, 0, "test $0x2,0x18(%rbx)"},
		{[]byte{0xC3}, 0, "ret"},
		{[]byte{0x50}, 0, "push %rax"},
		{[]byte{0x41, 0x54}, 0, "push %r12"},
		{[]byte{0xE9, 0x00, 0x00, 0x00, 0x00}, 0x400000, "jmp 0x400005"},
		{[]byte{0xEB, 0x70}, 0x422a61, "jmp 0x422ad3"},
		{[]byte{0x74, 0x27}, 0x422ad5, "je 0x422afe"},
		{[]byte{0xE8, 0xFB, 0xFF, 0xFF, 0xFF}, 0x400000, "call 0x400000"},
		{[]byte{0x89, 0xDD}, 0, "mov %ebx,%ebp"},
		{[]byte{0xC6, 0x80, 0x98, 0x03, 0x00, 0x00, 0x01}, 0, "mov $0x1,0x398(%rax)"},
		{[]byte{0xFF, 0xE0}, 0, "jmp *%rax"},
		{[]byte{0xFF, 0xD0}, 0, "call *%rax"},
		{[]byte{0x48, 0x8D, 0x04, 0x8B}, 0, "lea (%rbx,%rcx,4),%rax"},
		{[]byte{0x0F, 0x84, 0x00, 0x00, 0x00, 0x00}, 0x1000, "je 0x1006"},
		{[]byte{0x48, 0xC1, 0xE0, 0x04}, 0, "shl $4,%rax"},
		{[]byte{0x9C}, 0, "pushfq"},
		{[]byte{0xCC}, 0, "int3"},
		{[]byte{0x90}, 0, "nop"},
		{[]byte{0x0F, 0xB6, 0x07}, 0, "movzx (%rdi),%eax"},
		{[]byte{0x48, 0xF7, 0xD8}, 0, "neg %rax"},
		{[]byte{0x48, 0xB8, 0xEF, 0xBE, 0, 0, 0, 0, 0, 0}, 0, "mov $0xbeef,%rax"},
		{[]byte{0x31, 0xC0}, 0, "xor %eax,%eax"},
	}
	for _, tc := range cases {
		if got := fmtOf(t, tc.code, tc.addr); got != tc.want {
			t.Errorf("% x: got %q, want %q", tc.code, got, tc.want)
		}
	}
}

// TestFormatNeverPanics runs the formatter over everything the
// round-trip generator can produce plus raw byte soup.
func TestFormatNeverPanics(t *testing.T) {
	// Byte soup: every one-byte opcode with plausible tails.
	for b := 0; b < 256; b++ {
		code := []byte{byte(b), 0x05, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80}
		in, err := Decode(code, 0x400000)
		if err != nil {
			continue
		}
		s := in.String()
		if s == "" {
			t.Errorf("opcode %#02x formatted empty", b)
		}
	}
	// Two-byte map.
	for b := 0; b < 256; b++ {
		code := []byte{0x0F, byte(b), 0x05, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60}
		in, err := Decode(code, 0x400000)
		if err != nil {
			continue
		}
		_ = in.String()
	}
}

func TestFormatWidths(t *testing.T) {
	// 8-bit, 32-bit and 64-bit views of the same register.
	if got := fmtOf(t, []byte{0x88, 0x03}, 0); !strings.Contains(got, "%al") {
		t.Errorf("8-bit store: %q", got)
	}
	if got := fmtOf(t, []byte{0x89, 0x03}, 0); !strings.Contains(got, "%eax") {
		t.Errorf("32-bit store: %q", got)
	}
	if got := fmtOf(t, []byte{0x48, 0x89, 0x03}, 0); !strings.Contains(got, "%rax") {
		t.Errorf("64-bit store: %q", got)
	}
}
