package x86

import (
	"bytes"
	"errors"
	"testing"
)

// decodeAt decodes one instruction at the given address or fails.
func decodeAt(t *testing.T, code []byte, addr uint64) Inst {
	t.Helper()
	i, err := Decode(code, addr)
	if err != nil {
		t.Fatalf("decode % x: %v", code, err)
	}
	if i.Len != len(code) {
		t.Fatalf("decode % x: len %d, want %d", code, i.Len, len(code))
	}
	return i
}

func TestRelocateSimpleNonRIP(t *testing.T) {
	// mov [rbx], rax — no RIP-relative operand: byte copy at any delta.
	i := decodeAt(t, []byte{0x48, 0x89, 0x03}, 0x1000)
	out, err := RelocateSimple(&i, 0x9_0000_0000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, i.Bytes) {
		t.Fatalf("non-RIP relocation changed bytes: % x", out)
	}
}

func TestRelocateSimpleRIPRelative(t *testing.T) {
	// mov rax, [rip+0x100] at 0x40_0000: target 0x40_0107.
	src := []byte{0x48, 0x8B, 0x05, 0x00, 0x01, 0x00, 0x00}
	const oldAddr = 0x40_0000
	i := decodeAt(t, src, oldAddr)
	target := i.Addr + uint64(i.Len) + uint64(i.Disp())

	for _, tc := range []struct {
		name    string
		newAddr uint64
	}{
		{"negative delta (moved down)", oldAddr - 0x3_0000},
		{"positive delta (moved up)", oldAddr + 0x7FF_0000},
	} {
		out, err := RelocateSimple(&i, tc.newAddr)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		ri := decodeAt(t, out, tc.newAddr)
		if !ri.RIPRel {
			t.Fatalf("%s: relocation lost RIP-relative addressing", tc.name)
		}
		got := ri.Addr + uint64(ri.Len) + uint64(ri.Disp())
		if got != target {
			t.Fatalf("%s: target %#x, want %#x", tc.name, got, target)
		}
		// Only the displacement may change.
		if !bytes.Equal(out[:i.DispOff], src[:i.DispOff]) {
			t.Fatalf("%s: prefix/opcode bytes changed: % x", tc.name, out)
		}
	}
}

func TestRelocateSimpleOutOfRange(t *testing.T) {
	src := []byte{0x48, 0x8B, 0x05, 0x00, 0x01, 0x00, 0x00}
	i := decodeAt(t, src, 0x40_0000)
	// Moving up by 4GiB pushes the displacement far below INT32_MIN.
	if _, err := RelocateSimple(&i, 0x1_0040_0000); !errors.Is(err, ErrRelocRange) {
		t.Fatalf("want ErrRelocRange, got %v", err)
	}
}

func TestRelocateBranchWidening(t *testing.T) {
	const oldAddr = 0x1000
	for _, tc := range []struct {
		name   string
		code   []byte
		opcode byte // expected widened opcode (second byte for jcc)
	}{
		{"jmp rel8 -> jmp rel32", []byte{0xEB, 0x10}, 0xE9},
		{"je rel8 -> je rel32", []byte{0x74, 0x27}, 0x84},
		{"jne rel8 -> jne rel32", []byte{0x75, 0xF0}, 0x85},
		{"jmp rel32 stays rel32", []byte{0xE9, 0x00, 0x10, 0x00, 0x00}, 0xE9},
		{"jl rel32 stays rel32", []byte{0x0F, 0x8C, 0x00, 0x10, 0x00, 0x00}, 0x8C},
		{"call rel32", []byte{0xE8, 0x44, 0x33, 0x22, 0x00}, 0xE8},
	} {
		i := decodeAt(t, tc.code, oldAddr)
		target := i.Target()
		for _, newAddr := range []uint64{oldAddr + 0x40_0000, oldAddr + 0x10 /* overlapping */, 0x10 /* below */} {
			out, err := RelocateBranch(&i, newAddr)
			if err != nil {
				t.Fatalf("%s @%#x: %v", tc.name, newAddr, err)
			}
			ri := decodeAt(t, out, newAddr)
			if ri.RelSize != 4 {
				t.Fatalf("%s @%#x: RelSize %d, want 4", tc.name, newAddr, ri.RelSize)
			}
			if ri.Opcode != tc.opcode {
				t.Fatalf("%s @%#x: opcode %#02x, want %#02x", tc.name, newAddr, ri.Opcode, tc.opcode)
			}
			if ri.Target() != target {
				t.Fatalf("%s @%#x: target %#x, want %#x", tc.name, newAddr, ri.Target(), target)
			}
		}
	}
}

func TestRelocateBranchOutOfRange(t *testing.T) {
	i := decodeAt(t, []byte{0xEB, 0x10}, 0x1000)
	if _, err := RelocateBranch(&i, 0x2_0000_0000); !errors.Is(err, ErrRelocRange) {
		t.Fatalf("want ErrRelocRange, got %v", err)
	}
}

func TestRelocateBranchRejectsLoopAndIndirect(t *testing.T) {
	// loop rel8 cannot be widened: no rel32 form exists.
	loop := decodeAt(t, []byte{0xE2, 0xFB}, 0x1000)
	if _, err := RelocateBranch(&loop, 0x2000); err == nil {
		t.Fatal("loop rel8: expected error, got success")
	}
	// jmp [rax] (FF /4) is not a direct branch.
	ind := decodeAt(t, []byte{0xFF, 0x20}, 0x1000)
	if _, err := RelocateBranch(&ind, 0x2000); err == nil {
		t.Fatal("indirect jmp: expected error, got success")
	}
}
