package x86

import "fmt"

// Mem describes a memory operand: [Base + Index*Scale + Disp] or
// RIP-relative [rip + Disp].
type Mem struct {
	Base   Reg
	Index  Reg
	Scale  uint8 // 1, 2, 4 or 8
	Disp   int32
	RIPRel bool
}

// M returns a base-register memory operand with displacement.
func M(base Reg, disp int32) Mem { return Mem{Base: base, Index: NoReg, Disp: disp} }

// MIdx returns a base+index*scale+disp memory operand.
func MIdx(base, index Reg, scale uint8, disp int32) Mem {
	return Mem{Base: base, Index: index, Scale: scale, Disp: disp}
}

// MRIP returns a RIP-relative memory operand.
func MRIP(disp int32) Mem { return Mem{Base: NoReg, Index: NoReg, Disp: disp, RIPRel: true} }

// MAbs returns an absolute 32-bit-addressed memory operand.
func MAbs(addr int32) Mem { return Mem{Base: NoReg, Index: NoReg, Disp: addr} }

// Cond is an x86 condition code (the tttn field).
type Cond uint8

// Condition codes.
const (
	CondO  Cond = 0x0
	CondNO Cond = 0x1
	CondB  Cond = 0x2
	CondAE Cond = 0x3
	CondE  Cond = 0x4
	CondNE Cond = 0x5
	CondBE Cond = 0x6
	CondA  Cond = 0x7
	CondS  Cond = 0x8
	CondNS Cond = 0x9
	CondP  Cond = 0xA
	CondNP Cond = 0xB
	CondL  Cond = 0xC
	CondGE Cond = 0xD
	CondLE Cond = 0xE
	CondG  Cond = 0xF
)

var condNames = [...]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

func (c Cond) String() string { return condNames[c&0xF] }

// Invert returns the negated condition.
func (c Cond) Invert() Cond { return c ^ 1 }

// Label marks a position in assembled code for branch targets.
type Label struct {
	addr   uint64
	bound  bool
	fixups []fixup
}

type fixup struct {
	pos  int // offset of the rel field in the buffer
	size int // 1 or 4
	next uint64
}

// Asm assembles x86-64 machine code at a fixed base address.
type Asm struct {
	base   uint64
	buf    []byte
	labels []*Label
	err    error
}

// NewAsm returns an assembler whose first emitted byte lands at base.
func NewAsm(base uint64) *Asm { return &Asm{base: base} }

// Base returns the assembler's base address.
func (a *Asm) Base() uint64 { return a.base }

// Addr returns the address of the next emitted byte.
func (a *Asm) Addr() uint64 { return a.base + uint64(len(a.buf)) }

// Len returns the number of bytes emitted so far.
func (a *Asm) Len() int { return len(a.buf) }

// Err returns the first assembly error, if any.
func (a *Asm) Err() error { return a.err }

// Finish resolves all label fixups and returns the machine code.
func (a *Asm) Finish() ([]byte, error) {
	for _, l := range a.labels {
		if !l.bound {
			a.fail("unbound label with %d fixups", len(l.fixups))
			break
		}
	}
	if a.err != nil {
		return nil, a.err
	}
	return a.buf, nil
}

// MustFinish is Finish for programmatic code generation where an
// assembly error is a bug.
func (a *Asm) MustFinish() []byte {
	b, err := a.Finish()
	if err != nil {
		panic(err)
	}
	return b
}

func (a *Asm) fail(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("x86 asm: "+format, args...)
	}
}

// NewLabel creates an unbound label.
func (a *Asm) NewLabel() *Label {
	l := &Label{}
	a.labels = append(a.labels, l)
	return l
}

// Bind binds the label to the current position.
func (a *Asm) Bind(l *Label) {
	if l.bound {
		a.fail("label bound twice")
		return
	}
	l.bound = true
	l.addr = a.Addr()
	for _, f := range l.fixups {
		a.patchRel(f, l.addr)
	}
	l.fixups = nil
}

func (a *Asm) patchRel(f fixup, target uint64) {
	rel := int64(target) - int64(f.next)
	switch f.size {
	case 1:
		if rel < -128 || rel > 127 {
			a.fail("rel8 out of range: %d", rel)
			return
		}
		a.buf[f.pos] = byte(int8(rel))
	case 4:
		if rel < -1<<31 || rel > 1<<31-1 {
			a.fail("rel32 out of range: %d", rel)
			return
		}
		put32(a.buf[f.pos:], uint32(int32(rel)))
	}
}

func (a *Asm) emitRel(l *Label, size int) {
	pos := len(a.buf)
	for i := 0; i < size; i++ {
		a.buf = append(a.buf, 0)
	}
	f := fixup{pos: pos, size: size, next: a.Addr()}
	if l.bound {
		a.patchRel(f, l.addr)
	} else {
		l.fixups = append(l.fixups, f)
	}
}

// Raw emits literal bytes.
func (a *Asm) Raw(bs ...byte) { a.buf = append(a.buf, bs...) }

// Imm32 emits a little-endian 32-bit immediate.
func (a *Asm) Imm32(v int32) {
	a.buf = append(a.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// Imm64 emits a little-endian 64-bit immediate.
func (a *Asm) Imm64(v uint64) {
	for i := 0; i < 8; i++ {
		a.buf = append(a.buf, byte(v>>(8*uint(i))))
	}
}

// rex emits a REX prefix if needed (or always when w is set).
func (a *Asm) rex(w bool, reg, index, base Reg) {
	var b byte = 0x40
	if w {
		b |= 0x08
	}
	if reg != NoReg && reg.isExt() {
		b |= 0x04
	}
	if index != NoReg && index.isExt() {
		b |= 0x02
	}
	if base != NoReg && base.isExt() {
		b |= 0x01
	}
	if b != 0x40 || w {
		a.buf = append(a.buf, b)
	}
}

// modRMReg emits a ModRM byte with a register r/m operand.
func (a *Asm) modRMReg(reg byte, rm Reg) {
	a.buf = append(a.buf, 0xC0|reg<<3|rm.lowBits())
}

// modRMMem emits ModRM (+SIB, +disp) for a memory operand.
func (a *Asm) modRMMem(reg byte, m Mem) {
	if m.RIPRel {
		a.buf = append(a.buf, 0x00|reg<<3|0x05)
		a.Imm32(m.Disp)
		return
	}
	if m.Base == NoReg && m.Index == NoReg {
		// Absolute disp32 via SIB with no base/index.
		a.buf = append(a.buf, 0x00|reg<<3|0x04, 0x25)
		a.Imm32(m.Disp)
		return
	}
	scaleBits := byte(0)
	switch m.Scale {
	case 0, 1:
		scaleBits = 0
	case 2:
		scaleBits = 1
	case 4:
		scaleBits = 2
	case 8:
		scaleBits = 3
	default:
		a.fail("bad scale %d", m.Scale)
		return
	}
	if m.Index == RSP {
		a.fail("rsp cannot be an index register")
		return
	}

	needSIB := m.Index != NoReg || m.Base == RSP || m.Base == R12 || m.Base == NoReg

	// Choose mod / displacement size.
	mod := byte(0)
	dispSize := 0
	switch {
	case m.Disp == 0 && m.Base != RBP && m.Base != R13 && m.Base != NoReg:
		mod, dispSize = 0, 0
	case m.Disp >= -128 && m.Disp <= 127 && m.Base != NoReg:
		mod, dispSize = 1, 1
	default:
		mod, dispSize = 2, 4
	}

	if needSIB {
		index := byte(4) // none
		if m.Index != NoReg {
			index = m.Index.lowBits()
		}
		base := byte(5)
		if m.Base != NoReg {
			base = m.Base.lowBits()
		} else {
			// No base: must use mod=00 + disp32.
			mod, dispSize = 0, 4
		}
		a.buf = append(a.buf, mod<<6|reg<<3|0x04, scaleBits<<6|index<<3|base)
	} else {
		a.buf = append(a.buf, mod<<6|reg<<3|m.Base.lowBits())
	}

	switch dispSize {
	case 1:
		a.buf = append(a.buf, byte(int8(m.Disp)))
	case 4:
		a.Imm32(m.Disp)
	}
}

// --- moves ---

// MovRegReg64 emits mov dst, src (64-bit).
func (a *Asm) MovRegReg64(dst, src Reg) {
	a.rex(true, src, NoReg, dst)
	a.Raw(0x89)
	a.modRMReg(src.lowBits(), dst)
}

// MovRegReg32 emits mov dst32, src32 (zero-extending).
func (a *Asm) MovRegReg32(dst, src Reg) {
	a.rex(false, src, NoReg, dst)
	a.Raw(0x89)
	a.modRMReg(src.lowBits(), dst)
}

// MovRegImm64 emits movabs dst, imm (10 bytes).
func (a *Asm) MovRegImm64(dst Reg, imm uint64) {
	a.rex(true, NoReg, NoReg, dst)
	a.Raw(0xB8 | dst.lowBits())
	a.Imm64(imm)
}

// MovRegImm32 emits mov dst32, imm32 (zero-extends into dst64).
func (a *Asm) MovRegImm32(dst Reg, imm uint32) {
	a.rex(false, NoReg, NoReg, dst)
	a.Raw(0xB8 | dst.lowBits())
	a.Imm32(int32(imm))
}

// MovMemReg64 emits mov [m], src (64-bit store).
func (a *Asm) MovMemReg64(m Mem, src Reg) {
	a.rex(true, src, m.Index, m.Base)
	a.Raw(0x89)
	a.modRMMem(src.lowBits(), m)
}

// MovMemReg32 emits mov [m], src32.
func (a *Asm) MovMemReg32(m Mem, src Reg) {
	a.rex(false, src, m.Index, m.Base)
	a.Raw(0x89)
	a.modRMMem(src.lowBits(), m)
}

// MovMemReg8 emits mov [m], src8 (low byte of src).
func (a *Asm) MovMemReg8(m Mem, src Reg) {
	// SPL/BPL/SIL/DIL need a REX prefix; we only use AL/CL/DL/BL or
	// extended registers, which encode naturally.
	a.rex(false, src, m.Index, m.Base)
	a.Raw(0x88)
	a.modRMMem(src.lowBits(), m)
}

// MovRegMem64 emits mov dst, [m] (64-bit load).
func (a *Asm) MovRegMem64(dst Reg, m Mem) {
	a.rex(true, dst, m.Index, m.Base)
	a.Raw(0x8B)
	a.modRMMem(dst.lowBits(), m)
}

// MovRegMem32 emits mov dst32, [m].
func (a *Asm) MovRegMem32(dst Reg, m Mem) {
	a.rex(false, dst, m.Index, m.Base)
	a.Raw(0x8B)
	a.modRMMem(dst.lowBits(), m)
}

// MovZXRegMem8 emits movzx dst32, byte [m].
func (a *Asm) MovZXRegMem8(dst Reg, m Mem) {
	a.rex(false, dst, m.Index, m.Base)
	a.Raw(0x0F, 0xB6)
	a.modRMMem(dst.lowBits(), m)
}

// MovMemImm32 emits mov dword [m], imm32.
func (a *Asm) MovMemImm32(m Mem, imm uint32) {
	a.rex(false, NoReg, m.Index, m.Base)
	a.Raw(0xC7)
	a.modRMMem(0, m)
	a.Imm32(int32(imm))
}

// MovMemImm32Sx64 emits mov qword [m], imm32 (sign-extended).
func (a *Asm) MovMemImm32Sx64(m Mem, imm int32) {
	a.rex(true, NoReg, m.Index, m.Base)
	a.Raw(0xC7)
	a.modRMMem(0, m)
	a.Imm32(imm)
}

// MovMemImm8 emits mov byte [m], imm8.
func (a *Asm) MovMemImm8(m Mem, imm uint8) {
	a.rex(false, NoReg, m.Index, m.Base)
	a.Raw(0xC6)
	a.modRMMem(0, m)
	a.Raw(imm)
}

// Lea emits lea dst, [m] (64-bit).
func (a *Asm) Lea(dst Reg, m Mem) {
	a.rex(true, dst, m.Index, m.Base)
	a.Raw(0x8D)
	a.modRMMem(dst.lowBits(), m)
}

// --- ALU ---

// aluRegReg64 emits op dst, src using the /r memory-destination form.
func (a *Asm) aluRegReg64(opcode byte, dst, src Reg) {
	a.rex(true, src, NoReg, dst)
	a.Raw(opcode)
	a.modRMReg(src.lowBits(), dst)
}

// AddRegReg64 emits add dst, src.
func (a *Asm) AddRegReg64(dst, src Reg) { a.aluRegReg64(0x01, dst, src) }

// SubRegReg64 emits sub dst, src.
func (a *Asm) SubRegReg64(dst, src Reg) { a.aluRegReg64(0x29, dst, src) }

// AdcRegReg64 emits adc dst, src.
func (a *Asm) AdcRegReg64(dst, src Reg) { a.aluRegReg64(0x11, dst, src) }

// SbbRegReg64 emits sbb dst, src.
func (a *Asm) SbbRegReg64(dst, src Reg) { a.aluRegReg64(0x19, dst, src) }

// AndRegReg64 emits and dst, src.
func (a *Asm) AndRegReg64(dst, src Reg) { a.aluRegReg64(0x21, dst, src) }

// OrRegReg64 emits or dst, src.
func (a *Asm) OrRegReg64(dst, src Reg) { a.aluRegReg64(0x09, dst, src) }

// XorRegReg64 emits xor dst, src.
func (a *Asm) XorRegReg64(dst, src Reg) { a.aluRegReg64(0x31, dst, src) }

// CmpRegReg64 emits cmp dst, src.
func (a *Asm) CmpRegReg64(dst, src Reg) { a.aluRegReg64(0x39, dst, src) }

// TestRegReg64 emits test dst, src.
func (a *Asm) TestRegReg64(dst, src Reg) { a.aluRegReg64(0x85, dst, src) }

// XorRegReg32 emits xor dst32, src32 (the idiomatic zeroing form).
func (a *Asm) XorRegReg32(dst, src Reg) {
	a.rex(false, src, NoReg, dst)
	a.Raw(0x31)
	a.modRMReg(src.lowBits(), dst)
}

// aluRegImm64 emits op dst, imm using group-1 with the short imm8 form
// when possible.
func (a *Asm) aluRegImm64(regField byte, dst Reg, imm int32) {
	a.rex(true, NoReg, NoReg, dst)
	if imm >= -128 && imm <= 127 {
		a.Raw(0x83)
		a.modRMReg(regField, dst)
		a.Raw(byte(int8(imm)))
		return
	}
	a.Raw(0x81)
	a.modRMReg(regField, dst)
	a.Imm32(imm)
}

// AddRegImm64 emits add dst, imm.
func (a *Asm) AddRegImm64(dst Reg, imm int32) { a.aluRegImm64(0, dst, imm) }

// OrRegImm64 emits or dst, imm.
func (a *Asm) OrRegImm64(dst Reg, imm int32) { a.aluRegImm64(1, dst, imm) }

// AdcRegImm64 emits adc dst, imm.
func (a *Asm) AdcRegImm64(dst Reg, imm int32) { a.aluRegImm64(2, dst, imm) }

// SbbRegImm64 emits sbb dst, imm.
func (a *Asm) SbbRegImm64(dst Reg, imm int32) { a.aluRegImm64(3, dst, imm) }

// AndRegImm64 emits and dst, imm.
func (a *Asm) AndRegImm64(dst Reg, imm int32) { a.aluRegImm64(4, dst, imm) }

// SubRegImm64 emits sub dst, imm.
func (a *Asm) SubRegImm64(dst Reg, imm int32) { a.aluRegImm64(5, dst, imm) }

// XorRegImm64 emits xor dst, imm.
func (a *Asm) XorRegImm64(dst Reg, imm int32) { a.aluRegImm64(6, dst, imm) }

// CmpRegImm64 emits cmp dst, imm.
func (a *Asm) CmpRegImm64(dst Reg, imm int32) { a.aluRegImm64(7, dst, imm) }

// AddMemReg64 emits add [m], src (read-modify-write store).
func (a *Asm) AddMemReg64(m Mem, src Reg) {
	a.rex(true, src, m.Index, m.Base)
	a.Raw(0x01)
	a.modRMMem(src.lowBits(), m)
}

// AddMemReg32 emits add [m], src32.
func (a *Asm) AddMemReg32(m Mem, src Reg) {
	a.rex(false, src, m.Index, m.Base)
	a.Raw(0x01)
	a.modRMMem(src.lowBits(), m)
}

// AddRegMem64 emits add dst, [m].
func (a *Asm) AddRegMem64(dst Reg, m Mem) {
	a.rex(true, dst, m.Index, m.Base)
	a.Raw(0x03)
	a.modRMMem(dst.lowBits(), m)
}

// CmpMemImm8 emits cmp dword [m], imm8 (sign-extended), the shape of
// the paper's cmpl $77,-4(%rbx) example.
func (a *Asm) CmpMemImm8(m Mem, imm int8) {
	a.rex(false, NoReg, m.Index, m.Base)
	a.Raw(0x83)
	a.modRMMem(7, m)
	a.Raw(byte(imm))
}

// AddMemImm8x64 emits add qword [m], imm8 (sign-extended RMW).
func (a *Asm) AddMemImm8x64(m Mem, imm int8) {
	a.rex(true, NoReg, m.Index, m.Base)
	a.Raw(0x83)
	a.modRMMem(0, m)
	a.Raw(byte(imm))
}

// ShrRegCL64 emits shr dst, cl.
func (a *Asm) ShrRegCL64(dst Reg) {
	a.rex(true, NoReg, NoReg, dst)
	a.Raw(0xD3)
	a.modRMReg(5, dst)
}

// IncMem32 emits inc dword [m].
func (a *Asm) IncMem32(m Mem) {
	a.rex(false, NoReg, m.Index, m.Base)
	a.Raw(0xFF)
	a.modRMMem(0, m)
}

// ImulRegReg64 emits imul dst, src.
func (a *Asm) ImulRegReg64(dst, src Reg) {
	a.rex(true, dst, NoReg, src)
	a.Raw(0x0F, 0xAF)
	a.modRMReg(dst.lowBits(), src)
}

// ImulRegRegImm32 emits imul dst, src, imm32.
func (a *Asm) ImulRegRegImm32(dst, src Reg, imm int32) {
	a.rex(true, dst, NoReg, src)
	a.Raw(0x69)
	a.modRMReg(dst.lowBits(), src)
	a.Imm32(imm)
}

// ShlRegImm64 emits shl dst, imm.
func (a *Asm) ShlRegImm64(dst Reg, imm uint8) {
	a.rex(true, NoReg, NoReg, dst)
	a.Raw(0xC1)
	a.modRMReg(4, dst)
	a.Raw(imm)
}

// ShrRegImm64 emits shr dst, imm.
func (a *Asm) ShrRegImm64(dst Reg, imm uint8) {
	a.rex(true, NoReg, NoReg, dst)
	a.Raw(0xC1)
	a.modRMReg(5, dst)
	a.Raw(imm)
}

// NegReg64 emits neg dst.
func (a *Asm) NegReg64(dst Reg) {
	a.rex(true, NoReg, NoReg, dst)
	a.Raw(0xF7)
	a.modRMReg(3, dst)
}

// NotReg64 emits not dst.
func (a *Asm) NotReg64(dst Reg) {
	a.rex(true, NoReg, NoReg, dst)
	a.Raw(0xF7)
	a.modRMReg(2, dst)
}

// Setcc emits setcc dst8. For rsp..rdi a bare REX prefix is emitted so
// the encoding selects spl..dil rather than the legacy high-byte
// registers.
func (a *Asm) Setcc(cc Cond, dst Reg) {
	if dst >= RSP && dst <= RDI {
		a.Raw(0x40)
	} else {
		a.rex(false, NoReg, NoReg, dst)
	}
	a.Raw(0x0F, 0x90|byte(cc))
	a.modRMReg(0, dst)
}

// Cmc emits cmc (complement carry flag).
func (a *Asm) Cmc() { a.Raw(0xF5) }

// Clc emits clc (clear carry flag).
func (a *Asm) Clc() { a.Raw(0xF8) }

// Stc emits stc (set carry flag).
func (a *Asm) Stc() { a.Raw(0xF9) }

// TestMemImm8 emits test byte [m], imm8 — the victim instruction shape
// from the paper's Figure 2 (testb $0x2,0x18(%rbx)).
func (a *Asm) TestMemImm8(m Mem, imm uint8) {
	a.rex(false, NoReg, m.Index, m.Base)
	a.Raw(0xF6)
	a.modRMMem(0, m)
	a.Raw(imm)
}

// --- stack ---

// PushReg emits push src.
func (a *Asm) PushReg(src Reg) {
	a.rex(false, NoReg, NoReg, src)
	a.Raw(0x50 | src.lowBits())
}

// PopReg emits pop dst.
func (a *Asm) PopReg(dst Reg) {
	a.rex(false, NoReg, NoReg, dst)
	a.Raw(0x58 | dst.lowBits())
}

// PushImm32 emits push imm32 (sign-extended to 64 bits).
func (a *Asm) PushImm32(imm int32) {
	a.Raw(0x68)
	a.Imm32(imm)
}

// Pushfq emits pushfq.
func (a *Asm) Pushfq() { a.Raw(0x9C) }

// Popfq emits popfq.
func (a *Asm) Popfq() { a.Raw(0x9D) }

// --- control flow ---

// JmpRel32 emits jmp rel32 to an absolute target.
func (a *Asm) JmpRel32(target uint64) {
	a.Raw(0xE9)
	next := a.Addr() + 4
	a.Imm32(int32(int64(target) - int64(next)))
}

// Jmp emits jmp rel32 to a label.
func (a *Asm) Jmp(l *Label) {
	a.Raw(0xE9)
	a.emitRel(l, 4)
}

// JmpShort emits jmp rel8 to a label (caller guarantees range).
func (a *Asm) JmpShort(l *Label) {
	a.Raw(0xEB)
	a.emitRel(l, 1)
}

// Jcc emits a 6-byte jcc rel32 to a label.
func (a *Asm) Jcc(cc Cond, l *Label) {
	a.Raw(0x0F, 0x80|byte(cc))
	a.emitRel(l, 4)
}

// JccShort emits a 2-byte jcc rel8 to a label.
func (a *Asm) JccShort(cc Cond, l *Label) {
	a.Raw(0x70 | byte(cc))
	a.emitRel(l, 1)
}

// JccRel32 emits jcc rel32 to an absolute target.
func (a *Asm) JccRel32(cc Cond, target uint64) {
	a.Raw(0x0F, 0x80|byte(cc))
	next := a.Addr() + 4
	a.Imm32(int32(int64(target) - int64(next)))
}

// CallRel32 emits call rel32 to an absolute target.
func (a *Asm) CallRel32(target uint64) {
	a.Raw(0xE8)
	next := a.Addr() + 4
	a.Imm32(int32(int64(target) - int64(next)))
}

// Call emits call rel32 to a label.
func (a *Asm) Call(l *Label) {
	a.Raw(0xE8)
	a.emitRel(l, 4)
}

// CallReg emits call *src.
func (a *Asm) CallReg(src Reg) {
	a.rex(false, NoReg, NoReg, src)
	a.Raw(0xFF)
	a.modRMReg(2, src)
}

// JmpReg emits jmp *src.
func (a *Asm) JmpReg(src Reg) {
	a.rex(false, NoReg, NoReg, src)
	a.Raw(0xFF)
	a.modRMReg(4, src)
}

// JmpMem emits jmp *[m] (e.g. a jump-table dispatch).
func (a *Asm) JmpMem(m Mem) {
	a.rex(false, NoReg, m.Index, m.Base)
	a.Raw(0xFF)
	a.modRMMem(4, m)
}

// Ret emits ret.
func (a *Asm) Ret() { a.Raw(0xC3) }

// Int3 emits the one-byte breakpoint.
func (a *Asm) Int3() { a.Raw(0xCC) }

// Nop emits a one-byte nop.
func (a *Asm) Nop() { a.Raw(0x90) }

// Endbr64 emits the CET indirect-branch landing pad (F3 0F 1E FA). On
// non-CET hardware it executes as a hint nop, so it is safe to emit
// unconditionally; the superset-cet disassembly mode uses it as a
// known-good code anchor.
func (a *Asm) Endbr64() { a.Raw(0xF3, 0x0F, 0x1E, 0xFA) }

// Ud2 emits ud2.
func (a *Asm) Ud2() { a.Raw(0x0F, 0x0B) }
