// Package x86 implements an x86-64 machine-code model: a length
// disassembler sufficient for linear disassembly of compiler-generated
// code, an assembler for the instruction subset used by trampolines and
// the synthetic workload generator, and instruction classification
// (branches, calls, memory writes) used to select patch points.
//
// The decoder is deliberately a *length and shape* decoder in the style
// the paper requires: E9Patch itself never needs full semantics, only
// instruction boundaries, byte values, branch displacements and
// RIP-relative displacement locations.
package x86

import "fmt"

// Reg identifies an x86-64 general-purpose register, or RIP/NoReg.
type Reg uint8

// General purpose registers in encoding order (the low 3 bits are the
// ModRM register field; bit 3 is the REX extension bit).
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	// RIP is a pseudo register for RIP-relative addressing.
	RIP
	// NoReg marks an absent register operand.
	NoReg
)

var regNames = [...]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
	"rip", "<none>",
}

// String returns the conventional AT&T-style name without the % sigil.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// lowBits returns the 3-bit ModRM field encoding of the register.
func (r Reg) lowBits() byte { return byte(r) & 7 }

// isExt reports whether the register needs a REX extension bit.
func (r Reg) isExt() bool { return r >= R8 && r <= R15 }

// Attr is a bit set of decoded instruction attributes.
type Attr uint32

// Instruction attribute flags. Shape flags describe the encoding;
// semantic flags drive patch-point selection and trampoline
// construction.
const (
	// AttrModRM: the opcode is followed by a ModRM byte.
	AttrModRM Attr = 1 << iota
	// AttrImm8: one immediate byte.
	AttrImm8
	// AttrImm16: two immediate bytes.
	AttrImm16
	// AttrImmZ: 4 immediate bytes (2 with the 0x66 prefix).
	AttrImmZ
	// AttrImmV: operand-sized immediate — 8 bytes with REX.W,
	// 2 with 0x66, otherwise 4 (the movabs family).
	AttrImmV
	// AttrRel8: one-byte branch displacement.
	AttrRel8
	// AttrRel32: four-byte branch displacement.
	AttrRel32
	// AttrMoffs: address-sized absolute moffs operand (8 bytes in
	// 64-bit mode, 4 with the 0x67 prefix).
	AttrMoffs
	// AttrGroup3: 0xF6/0xF7 — immediate present only for /0 and /1.
	AttrGroup3
	// AttrInvalid: the byte is not a valid instruction in 64-bit mode.
	AttrInvalid
	// AttrJump: unconditional jump (direct or indirect).
	AttrJump
	// AttrCondJump: conditional jump.
	AttrCondJump
	// AttrCall: call (direct or indirect).
	AttrCall
	// AttrRet: near or far return.
	AttrRet
	// AttrMemDst: the ModRM r/m operand is (or may be) written when it
	// addresses memory.
	AttrMemDst
	// AttrStop: control flow does not fall through (jmp/ret/ud2/hlt…).
	AttrStop
	// AttrInt3: the 0xCC breakpoint instruction.
	AttrInt3
)

// Inst describes one decoded instruction.
type Inst struct {
	// Addr is the virtual address of the first byte.
	Addr uint64
	// Len is the total encoded length in bytes.
	Len int
	// Bytes aliases the decoded machine code (length Len).
	Bytes []byte

	// Opcode is the primary opcode byte (the byte after 0x0F for
	// two-byte opcodes). TwoByte reports the 0x0F escape.
	Opcode  byte
	TwoByte bool

	// Attrs are the decoded attribute flags.
	Attrs Attr

	// ModRM is the ModRM byte when AttrModRM is set.
	ModRM byte

	// Rex is the REX prefix byte (0 when absent).
	Rex byte

	// NPrefix counts legacy-prefix and REX bytes before the opcode.
	NPrefix int

	// RelOff/RelSize locate a branch displacement inside Bytes
	// (RelSize is 0, 1 or 4).
	RelOff  int
	RelSize int

	// ImmOff/ImmSize locate the immediate operand inside Bytes
	// (ImmSize is 0 when there is no immediate).
	ImmOff  int
	ImmSize int

	// DispOff/DispSize locate the ModRM displacement inside Bytes.
	// RIPRel reports RIP-relative addressing (DispSize == 4).
	DispOff  int
	DispSize int
	RIPRel   bool

	// MemBase/MemIndex are the memory-operand registers (NoReg when
	// the operand is not memory or the component is absent).
	MemBase  Reg
	MemIndex Reg
	// MemScale is the SIB scale factor (1, 2, 4, 8) when MemIndex is
	// present.
	MemScale uint8
}

// MemOperand reconstructs the instruction's memory operand, if any.
func (i *Inst) MemOperand() (Mem, bool) {
	if !i.HasMem() {
		return Mem{}, false
	}
	if i.RIPRel {
		return MRIP(int32(i.Disp())), true
	}
	m := Mem{Base: i.MemBase, Index: i.MemIndex, Scale: i.MemScale, Disp: int32(i.Disp())}
	return m, true
}

// Rel returns the sign-extended branch displacement.
func (i *Inst) Rel() int64 {
	switch i.RelSize {
	case 1:
		return int64(int8(i.Bytes[i.RelOff]))
	case 4:
		return int64(int32(le32(i.Bytes[i.RelOff:])))
	}
	return 0
}

// Target returns the branch target for direct branches. It is only
// meaningful when RelSize != 0.
func (i *Inst) Target() uint64 {
	return i.Addr + uint64(i.Len) + uint64(i.Rel())
}

// Imm returns the immediate operand sign-extended to 64 bits.
func (i *Inst) Imm() int64 {
	var v uint64
	for n := 0; n < i.ImmSize; n++ {
		v |= uint64(i.Bytes[i.ImmOff+n]) << (8 * uint(n))
	}
	shift := uint(64 - 8*i.ImmSize)
	if i.ImmSize == 0 || i.ImmSize == 8 {
		return int64(v)
	}
	return int64(v<<shift) >> shift
}

// Disp returns the sign-extended ModRM displacement.
func (i *Inst) Disp() int64 {
	switch i.DispSize {
	case 1:
		return int64(int8(i.Bytes[i.DispOff]))
	case 4:
		return int64(int32(le32(i.Bytes[i.DispOff:])))
	}
	return 0
}

// HasMem reports whether the instruction has a memory operand.
func (i *Inst) HasMem() bool { return i.MemBase != NoReg || i.MemIndex != NoReg || i.RIPRel }

// IsJmp reports an unconditional direct or indirect jump.
func (i *Inst) IsJmp() bool { return i.Attrs&AttrJump != 0 }

// IsJcc reports a conditional jump.
func (i *Inst) IsJcc() bool { return i.Attrs&AttrCondJump != 0 }

// IsCall reports a call.
func (i *Inst) IsCall() bool { return i.Attrs&AttrCall != 0 }

// IsRet reports a return.
func (i *Inst) IsRet() bool { return i.Attrs&AttrRet != 0 }

// IsDirectBranch reports a branch with an encoded displacement.
func (i *Inst) IsDirectBranch() bool {
	return i.RelSize != 0 && i.Attrs&(AttrJump|AttrCondJump|AttrCall) != 0
}

// IsEndbr64 reports the CET indirect-branch landing pad
// (F3 0F 1E FA). CET-enabled compilers place it at every indirect
// branch target, which makes it a reliable anchor for classifying
// reachable code without control-flow recovery.
func (i *Inst) IsEndbr64() bool {
	return i.Len == 4 &&
		i.Bytes[0] == 0xF3 && i.Bytes[1] == 0x0F &&
		i.Bytes[2] == 0x1E && i.Bytes[3] == 0xFA
}

// WritesMem reports whether the instruction may write through its
// memory operand.
func (i *Inst) WritesMem() bool {
	return i.Attrs&AttrMemDst != 0 && i.HasMem()
}

// IsHeapWrite implements the paper's application A2 selector: the
// instruction writes memory through a pointer that is neither
// %rsp-based (stack) nor %rip-relative (globals).
func (i *Inst) IsHeapWrite() bool {
	if !i.WritesMem() || i.RIPRel {
		return false
	}
	if i.MemBase == RSP {
		return false
	}
	return true
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func put32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
