// Package va manages the virtual address space of a binary being
// rewritten. It tracks occupied intervals (segments, trampolines,
// reserved zones) and allocates trampoline memory subject to the
// contiguous target windows that instruction punning induces.
//
// Every punned jump constrains its rel32 so that the fixed bytes form
// the most-significant suffix of the little-endian value; the set of
// reachable targets is therefore always one contiguous interval
// [lo, hi]. Allocation reduces to first-fit search for a free gap of
// the requested size inside such an interval.
//
// The interval set is a treap (randomized balanced BST) keyed by
// interval start, with touching intervals merged eagerly so that
// densely packed trampoline runs collapse into single nodes.
package va

import (
	"fmt"
	"math/bits"
)

// Interval is a half-open address range [Lo, Hi).
type Interval struct {
	Lo, Hi uint64
}

// Size returns the interval length in bytes.
func (iv Interval) Size() uint64 { return iv.Hi - iv.Lo }

// Contains reports whether addr lies inside the interval.
func (iv Interval) Contains(addr uint64) bool { return addr >= iv.Lo && addr < iv.Hi }

// Overlaps reports whether two intervals intersect.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo < other.Hi && other.Lo < iv.Hi
}

func (iv Interval) String() string { return fmt.Sprintf("[%#x,%#x)", iv.Lo, iv.Hi) }

type node struct {
	iv          Interval
	prio        uint64
	left, right *node
}

// Space is an occupied-interval set over a bounded address range.
type Space struct {
	root *node
	// Min and Max bound allocatable addresses: allocations and
	// reservations must satisfy Min <= lo && hi <= Max.
	min, max uint64
	rng      uint64
	count    int
	occupied uint64
}

// DefaultMin is the lowest allocatable address (mirrors Linux
// mmap_min_addr: the NULL page region is never usable).
const DefaultMin = 0x10000

// DefaultMax is the highest allocatable address + 1 (the canonical
// 47-bit user address space).
const DefaultMax = 1 << 47

// New returns an empty Space allowing addresses in [min, max).
func New(min, max uint64) *Space {
	if min >= max {
		panic("va: min >= max")
	}
	return &Space{min: min, max: max, rng: 0x9E3779B97F4A7C15}
}

// NewDefault returns a Space over the standard user address range.
func NewDefault() *Space { return New(DefaultMin, DefaultMax) }

// Min returns the lowest allocatable address.
func (s *Space) Min() uint64 { return s.min }

// Max returns one past the highest allocatable address.
func (s *Space) Max() uint64 { return s.max }

// Count returns the number of stored (merged) intervals.
func (s *Space) Count() int { return s.count }

// OccupiedBytes returns the total size of all occupied intervals.
func (s *Space) OccupiedBytes() uint64 { return s.occupied }

func (s *Space) nextPrio() uint64 {
	// xorshift64*; determinism matters for reproducible benchmarks.
	x := s.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.rng = x
	return x * 0x2545F4914F6CDD1D
}

// Reserve marks [lo, hi) as occupied. It fails if the range is empty,
// escapes the space bounds, or overlaps an existing reservation.
func (s *Space) Reserve(lo, hi uint64) error {
	if lo >= hi {
		return fmt.Errorf("va: empty reservation [%#x,%#x)", lo, hi)
	}
	if lo < s.min || hi > s.max {
		return fmt.Errorf("va: reservation [%#x,%#x) outside bounds [%#x,%#x)", lo, hi, s.min, s.max)
	}
	if ov, ok := s.overlap(Interval{lo, hi}); ok {
		return fmt.Errorf("va: reservation [%#x,%#x) overlaps %v", lo, hi, ov)
	}
	s.insertMerged(Interval{lo, hi})
	return nil
}

// overlap returns an occupied interval overlapping iv, if any.
func (s *Space) overlap(iv Interval) (Interval, bool) {
	n := s.root
	for n != nil {
		if n.iv.Overlaps(iv) {
			return n.iv, true
		}
		if iv.Lo < n.iv.Lo {
			n = n.left
		} else {
			n = n.right
		}
	}
	return Interval{}, false
}

// Occupied reports whether any byte of [lo, hi) is occupied.
func (s *Space) Occupied(lo, hi uint64) bool {
	_, ok := s.overlap(Interval{lo, hi})
	return ok
}

// insertMerged inserts iv, merging with touching or adjacent intervals.
func (s *Space) insertMerged(iv Interval) {
	// Absorb any neighbours that touch [iv.Lo-1, iv.Hi+1).
	for {
		pred, ok := s.floor(iv.Lo)
		if ok && pred.Hi >= iv.Lo {
			s.remove(pred)
			if pred.Lo < iv.Lo {
				iv.Lo = pred.Lo
			}
			if pred.Hi > iv.Hi {
				iv.Hi = pred.Hi
			}
			continue
		}
		succ, ok := s.ceiling(iv.Lo)
		if ok && succ.Lo <= iv.Hi {
			s.remove(succ)
			if succ.Hi > iv.Hi {
				iv.Hi = succ.Hi
			}
			continue
		}
		break
	}
	s.root = s.insertNode(s.root, &node{iv: iv, prio: s.nextPrio()})
	s.count++
	s.occupied += iv.Size()
}

func (s *Space) insertNode(n, ins *node) *node {
	if n == nil {
		return ins
	}
	if ins.prio > n.prio {
		l, r := split(n, ins.iv.Lo)
		ins.left, ins.right = l, r
		return ins
	}
	if ins.iv.Lo < n.iv.Lo {
		n.left = s.insertNode(n.left, ins)
	} else {
		n.right = s.insertNode(n.right, ins)
	}
	return n
}

// split partitions the treap into (<key, >=key) by interval start.
func split(n *node, key uint64) (l, r *node) {
	if n == nil {
		return nil, nil
	}
	if n.iv.Lo < key {
		n.right, r = split(n.right, key)
		return n, r
	}
	l, n.left = split(n.left, key)
	return l, n
}

func merge(l, r *node) *node {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		l.right = merge(l.right, r)
		return l
	default:
		r.left = merge(l, r.left)
		return r
	}
}

// remove deletes the interval whose Lo equals iv.Lo.
func (s *Space) remove(iv Interval) {
	var rec func(n *node) *node
	removed := false
	rec = func(n *node) *node {
		if n == nil {
			return nil
		}
		switch {
		case iv.Lo < n.iv.Lo:
			n.left = rec(n.left)
		case iv.Lo > n.iv.Lo:
			n.right = rec(n.right)
		default:
			removed = true
			s.occupied -= n.iv.Size()
			return merge(n.left, n.right)
		}
		return n
	}
	s.root = rec(s.root)
	if removed {
		s.count--
	}
}

// floor returns the occupied interval with the greatest Lo <= addr.
func (s *Space) floor(addr uint64) (Interval, bool) {
	var best *node
	n := s.root
	for n != nil {
		if n.iv.Lo <= addr {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best == nil {
		return Interval{}, false
	}
	return best.iv, true
}

// ceiling returns the occupied interval with the smallest Lo >= addr.
func (s *Space) ceiling(addr uint64) (Interval, bool) {
	var best *node
	n := s.root
	for n != nil {
		if n.iv.Lo >= addr {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		return Interval{}, false
	}
	return best.iv, true
}

// Floor returns the occupied interval with the greatest start <= addr.
func (s *Space) Floor(addr uint64) (Interval, bool) { return s.floor(addr) }

// Ceiling returns the occupied interval with the smallest start >= addr.
func (s *Space) Ceiling(addr uint64) (Interval, bool) { return s.ceiling(addr) }

// Alloc finds and reserves a free range of the given size whose first
// byte lies in the window [lo, hi] (inclusive), using first-fit. It
// returns the chosen address, or ok=false if the window contains no
// suitable gap.
func (s *Space) Alloc(size uint64, lo, hi uint64) (uint64, bool) {
	addr, ok := s.FindFree(size, lo, hi)
	if !ok {
		return 0, false
	}
	s.insertMerged(Interval{addr, addr + size})
	return addr, true
}

// FindFree is Alloc without the reservation.
func (s *Space) FindFree(size uint64, lo, hi uint64) (uint64, bool) {
	if size == 0 || lo > hi {
		return 0, false
	}
	if lo < s.min {
		lo = s.min
	}
	// The whole allocation must fit below s.max.
	if hi > s.max-size {
		if s.max < size {
			return 0, false
		}
		hi = s.max - size
	}
	if lo > hi {
		return 0, false
	}

	cursor := lo
	// Back up to the interval covering the cursor, if any.
	if pred, ok := s.floor(cursor); ok && pred.Hi > cursor {
		cursor = pred.Hi
	}
	for cursor <= hi {
		next, ok := s.ceiling(cursor)
		// ceiling is keyed on Lo and cursor is never inside an
		// interval here, so next.Lo >= cursor.
		gapEnd := s.max
		if ok {
			gapEnd = next.Lo
		}
		if gapEnd >= cursor+size {
			return cursor, true
		}
		if !ok {
			return 0, false
		}
		cursor = next.Hi
	}
	return 0, false
}

// Gaps returns up to max free gaps of at least size bytes whose start
// lies within [lo, hi]. It is used by tactics that probe several
// candidate placements (guided successor eviction).
func (s *Space) Gaps(size uint64, lo, hi uint64, max int) []uint64 {
	var out []uint64
	if size == 0 || lo > hi || max <= 0 {
		return nil
	}
	if lo < s.min {
		lo = s.min
	}
	if hi > s.max-size {
		if s.max < size {
			return nil
		}
		hi = s.max - size
	}
	cursor := lo
	if pred, ok := s.floor(cursor); ok && pred.Hi > cursor {
		cursor = pred.Hi
	}
	for cursor <= hi && len(out) < max {
		next, ok := s.ceiling(cursor)
		gapEnd := s.max
		if ok {
			gapEnd = next.Lo
		}
		if gapEnd >= cursor+size {
			out = append(out, cursor)
		}
		if !ok {
			break
		}
		if next.Hi <= cursor {
			break
		}
		cursor = next.Hi
	}
	return out
}

// Release frees the previously reserved range [lo, hi). The range must
// be fully occupied (it may be an interior slice of a merged interval,
// which is split around it). Tactics use this to back out partially
// committed allocations.
func (s *Space) Release(lo, hi uint64) error {
	if lo >= hi {
		return fmt.Errorf("va: empty release [%#x,%#x)", lo, hi)
	}
	iv, ok := s.floor(lo)
	if !ok || iv.Hi < hi || iv.Lo > lo {
		return fmt.Errorf("va: release [%#x,%#x) not fully reserved", lo, hi)
	}
	s.remove(iv)
	if iv.Lo < lo {
		s.root = s.insertNode(s.root, &node{iv: Interval{iv.Lo, lo}, prio: s.nextPrio()})
		s.count++
		s.occupied += lo - iv.Lo
	}
	if hi < iv.Hi {
		s.root = s.insertNode(s.root, &node{iv: Interval{hi, iv.Hi}, prio: s.nextPrio()})
		s.count++
		s.occupied += iv.Hi - hi
	}
	return nil
}

// Clone returns an independent copy of the space: same bounds, same
// occupied intervals, no shared structure. Treap shape and priorities
// may differ, but every query (FindFree, Gaps, Floor, Ceiling,
// Occupied) depends only on the interval set, so a clone answers all
// queries identically to the original — the property the parallel
// patcher's speculative regions rely on.
func (s *Space) Clone() *Space {
	c := New(s.min, s.max)
	for _, iv := range s.Intervals() {
		c.insertMerged(iv)
	}
	return c
}

// Intervals returns all occupied intervals in ascending order.
func (s *Space) Intervals() []Interval {
	out := make([]Interval, 0, s.count)
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, n.iv)
		walk(n.right)
	}
	walk(s.root)
	return out
}

// Depth returns the height of the underlying treap (diagnostics).
func (s *Space) Depth() int {
	var depth func(n *node) int
	depth = func(n *node) int {
		if n == nil {
			return 0
		}
		return 1 + maxInt(depth(n.left), depth(n.right))
	}
	return depth(s.root)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PageCount returns the number of distinct pages of the given size
// (must be a power of two) touched by occupied intervals.
func (s *Space) PageCount(pageSize uint64) uint64 {
	if pageSize == 0 || pageSize&(pageSize-1) != 0 {
		panic("va: page size must be a power of two")
	}
	shift := uint(bits.TrailingZeros64(pageSize))
	var total uint64
	for _, iv := range s.Intervals() {
		first := iv.Lo >> shift
		last := (iv.Hi - 1) >> shift
		total += last - first + 1
	}
	return total
}
