package va

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestReserveBasic(t *testing.T) {
	s := NewDefault()
	if err := s.Reserve(0x400000, 0x500000); err != nil {
		t.Fatal(err)
	}
	if err := s.Reserve(0x480000, 0x490000); err == nil {
		t.Fatal("overlapping reservation accepted")
	}
	if err := s.Reserve(0x4fffff, 0x500001); err == nil {
		t.Fatal("boundary-overlapping reservation accepted")
	}
	if err := s.Reserve(0x500000, 0x500010); err != nil {
		t.Fatalf("touching reservation rejected: %v", err)
	}
	if s.Count() != 1 {
		t.Errorf("touching intervals not merged: count=%d", s.Count())
	}
	if err := s.Reserve(0x300000, 0x300000); err == nil {
		t.Fatal("empty reservation accepted")
	}
	if err := s.Reserve(0x1000, 0x2000); err == nil {
		t.Fatal("below-min reservation accepted")
	}
}

func TestAllocFirstFit(t *testing.T) {
	s := NewDefault()
	mustReserve(t, s, 0x400000, 0x401000)

	addr, ok := s.Alloc(0x100, 0x400000, 0x500000)
	if !ok {
		t.Fatal("alloc failed")
	}
	if addr != 0x401000 {
		t.Errorf("first fit = %#x, want %#x", addr, 0x401000)
	}
	// Second allocation packs immediately after.
	addr2, ok := s.Alloc(0x100, 0x400000, 0x500000)
	if !ok || addr2 != 0x401100 {
		t.Errorf("second fit = %#x ok=%v, want %#x", addr2, ok, 0x401100)
	}
	// Window entirely inside a reservation fails.
	if _, ok := s.Alloc(0x10, 0x400100, 0x400200); ok {
		t.Error("alloc inside reservation succeeded")
	}
	// Window whose every start is occupied but gap begins past hi fails.
	if _, ok := s.Alloc(0x10, 0x400f00, 0x400fff); ok {
		t.Error("alloc with no in-window start succeeded")
	}
}

func TestAllocWindowEdges(t *testing.T) {
	s := NewDefault()
	// Allocation start may equal hi exactly.
	addr, ok := s.Alloc(0x40, 0x700000, 0x700000)
	if !ok || addr != 0x700000 {
		t.Fatalf("exact-window alloc = %#x ok=%v", addr, ok)
	}
	// Allocation must fit below Max.
	if _, ok := s.Alloc(0x20, s.Max()-0x10, s.Max()); ok {
		t.Error("allocation beyond Max succeeded")
	}
	// Allocation window below Min is clamped.
	addr, ok = s.Alloc(0x10, 0, DefaultMin)
	if !ok || addr != DefaultMin {
		t.Errorf("min-clamped alloc = %#x ok=%v", addr, ok)
	}
}

func TestAllocSkipsHoles(t *testing.T) {
	s := NewDefault()
	// Occupy 0x500000-0x500100 and 0x500180-0x500200, leaving a
	// 0x80-byte hole.
	mustReserve(t, s, 0x500000, 0x500100)
	mustReserve(t, s, 0x500180, 0x500200)
	addr, ok := s.Alloc(0x100, 0x500000, 0x600000)
	if !ok || addr != 0x500200 {
		t.Errorf("alloc = %#x, want hole skipped to %#x", addr, 0x500200)
	}
	// A smaller request lands in the hole.
	addr, ok = s.Alloc(0x80, 0x500000, 0x600000)
	if !ok || addr != 0x500100 {
		t.Errorf("alloc = %#x, want %#x", addr, 0x500100)
	}
}

func TestGaps(t *testing.T) {
	s := NewDefault()
	mustReserve(t, s, 0x500100, 0x500200)
	mustReserve(t, s, 0x500300, 0x500400)
	gaps := s.Gaps(0x40, 0x500000, 0x500500, 10)
	want := []uint64{0x500000, 0x500200, 0x500400}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %#x, want %#x", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Errorf("gap %d = %#x, want %#x", i, gaps[i], want[i])
		}
	}
	if got := s.Gaps(0x40, 0x500000, 0x500500, 2); len(got) != 2 {
		t.Errorf("max not honoured: %d gaps", len(got))
	}
}

func TestRelease(t *testing.T) {
	s := NewDefault()
	mustReserve(t, s, 0x500000, 0x501000)
	// Interior release splits the interval.
	if err := s.Release(0x500400, 0x500800); err != nil {
		t.Fatal(err)
	}
	if s.Occupied(0x500400, 0x500800) {
		t.Error("released range still occupied")
	}
	if !s.Occupied(0x500000, 0x500400) || !s.Occupied(0x500800, 0x501000) {
		t.Error("split remnants lost")
	}
	if s.OccupiedBytes() != 0x1000-0x400 {
		t.Errorf("occupied bytes = %#x", s.OccupiedBytes())
	}
	// Releasing a free range fails.
	if err := s.Release(0x500400, 0x500800); err == nil {
		t.Error("double release accepted")
	}
	// Release spanning a hole fails.
	if err := s.Release(0x500000, 0x501000); err == nil {
		t.Error("release across hole accepted")
	}
	// Full release of an exact interval.
	if err := s.Release(0x500000, 0x500400); err != nil {
		t.Fatal(err)
	}
	// The freed space is allocatable again.
	addr, ok := s.Alloc(0x400, 0x500000, 0x500000)
	if !ok || addr != 0x500000 {
		t.Errorf("realloc = %#x ok=%v", addr, ok)
	}
}

func TestPageCount(t *testing.T) {
	s := NewDefault()
	mustReserve(t, s, 0x400000, 0x400001) // 1 page
	mustReserve(t, s, 0x401fff, 0x403001) // 3 pages (crosses two boundaries)
	if got := s.PageCount(0x1000); got != 4 {
		t.Errorf("PageCount = %d, want 4", got)
	}
}

func mustReserve(t *testing.T, s *Space, lo, hi uint64) {
	t.Helper()
	if err := s.Reserve(lo, hi); err != nil {
		t.Fatal(err)
	}
}

// TestSpaceInvariants property-tests the interval set against a naive
// model: random reserves and allocs, then full cross-checks.
func TestSpaceInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(0x10000, 0x10000000)
		type op struct{ lo, hi uint64 }
		var model []op

		overlapsModel := func(lo, hi uint64) bool {
			for _, m := range model {
				if lo < m.hi && m.lo < hi {
					return true
				}
			}
			return false
		}

		for i := 0; i < 200; i++ {
			if rng.Intn(2) == 0 {
				lo := 0x10000 + uint64(rng.Intn(0x100000))
				hi := lo + uint64(rng.Intn(0x1000)+1)
				err := s.Reserve(lo, hi)
				if overlapsModel(lo, hi) {
					if err == nil {
						t.Logf("seed %d: overlap accepted [%#x,%#x)", seed, lo, hi)
						return false
					}
				} else if err != nil {
					t.Logf("seed %d: valid reserve rejected: %v", seed, err)
					return false
				} else {
					model = append(model, op{lo, hi})
				}
			} else {
				size := uint64(rng.Intn(0x800) + 1)
				lo := 0x10000 + uint64(rng.Intn(0x100000))
				hi := lo + uint64(rng.Intn(0x10000))
				addr, ok := s.Alloc(size, lo, hi)
				if ok {
					if addr < lo || addr > hi {
						t.Logf("seed %d: alloc %#x outside window [%#x,%#x]", seed, addr, lo, hi)
						return false
					}
					if overlapsModel(addr, addr+size) {
						t.Logf("seed %d: alloc %#x overlaps model", seed, addr)
						return false
					}
					model = append(model, op{addr, addr + size})
				}
			}
		}

		// The treap's merged intervals must exactly cover the model.
		ivs := s.Intervals()
		for i := 1; i < len(ivs); i++ {
			if ivs[i-1].Hi >= ivs[i].Lo {
				t.Logf("seed %d: unmerged or out-of-order intervals %v %v", seed, ivs[i-1], ivs[i])
				return false
			}
		}
		var want uint64
		for _, m := range model {
			want += m.hi - m.lo
		}
		if s.OccupiedBytes() != want {
			t.Logf("seed %d: occupied=%d want %d", seed, s.OccupiedBytes(), want)
			return false
		}
		// Every model byte is occupied.
		sort.Slice(model, func(i, j int) bool { return model[i].lo < model[j].lo })
		for _, m := range model {
			if !s.Occupied(m.lo, m.hi) {
				t.Logf("seed %d: model range [%#x,%#x) not occupied", seed, m.lo, m.hi)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTreapBalance guards against degenerate treap behaviour on
// sequential (merge-friendly) and strided (non-merging) insertions.
func TestTreapBalance(t *testing.T) {
	s := NewDefault()
	for i := 0; i < 50000; i++ {
		lo := 0x10000000 + uint64(i)*0x2000 // strided: never merges
		if err := s.Reserve(lo, lo+0x100); err != nil {
			t.Fatal(err)
		}
	}
	if s.Count() != 50000 {
		t.Fatalf("count = %d", s.Count())
	}
	if d := s.Depth(); d > 80 {
		t.Errorf("treap depth %d too large for 50k nodes", d)
	}
	// Sequential allocations merge to one node.
	s2 := NewDefault()
	for i := 0; i < 10000; i++ {
		if _, ok := s2.Alloc(0x20, 0x10000000, 0x7fffffff); !ok {
			t.Fatal("alloc failed")
		}
	}
	if s2.Count() != 1 {
		t.Errorf("sequential allocs not merged: count=%d", s2.Count())
	}
}

func BenchmarkAllocScattered(b *testing.B) {
	s := NewDefault()
	rng := rand.New(rand.NewSource(42))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lo := 0x10000000 + uint64(rng.Intn(1<<30))
		if _, ok := s.Alloc(64, lo, lo+0xffff); !ok {
			b.Fatal("alloc failed")
		}
	}
}
