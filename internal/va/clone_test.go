package va

import (
	"math/rand"
	"testing"
)

func TestCloneIndependentAndQueryEquivalent(t *testing.T) {
	s := NewDefault()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		lo := 0x10000000 + uint64(rng.Intn(1<<28))
		s.Alloc(uint64(rng.Intn(256)+1), lo, lo+0xFFFF)
	}
	c := s.Clone()

	si, ci := s.Intervals(), c.Intervals()
	if len(si) != len(ci) {
		t.Fatalf("interval count %d != %d", len(ci), len(si))
	}
	for i := range si {
		if si[i] != ci[i] {
			t.Fatalf("interval %d: %v != %v", i, ci[i], si[i])
		}
	}
	if s.OccupiedBytes() != c.OccupiedBytes() {
		t.Fatal("occupied bytes differ")
	}

	// Identical query answers on identical interval sets.
	for i := 0; i < 200; i++ {
		lo := 0x10000000 + uint64(rng.Intn(1<<28))
		size := uint64(rng.Intn(512) + 1)
		a1, ok1 := s.FindFree(size, lo, lo+1<<20)
		a2, ok2 := c.FindFree(size, lo, lo+1<<20)
		if a1 != a2 || ok1 != ok2 {
			t.Fatalf("FindFree(%d, %#x) diverged: %#x/%v vs %#x/%v", size, lo, a1, ok1, a2, ok2)
		}
	}

	// Mutating the clone must not affect the original.
	before := s.Count()
	if err := c.Reserve(0x7000_0000_0000, 0x7000_0000_1000); err != nil {
		t.Fatal(err)
	}
	if s.Count() != before || s.Occupied(0x7000_0000_0000, 0x7000_0000_1000) {
		t.Fatal("clone mutation leaked into original")
	}
}
