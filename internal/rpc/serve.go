package rpc

import (
	"context"
	"io"

	"e9patch/internal/e9err"
)

// Serve drives one complete session over a byte stream: messages are
// read from r, responses (for id-carrying requests) and at most one
// final error object are written to w. It returns nil exactly when the
// stream reached a clean emit; a stream that ends early, breaks the
// grammar, or trips a resource cap returns the classified error after
// reporting it on the wire — the backend contract is that hostile
// input ends the session, never the process.
func Serve(ctx context.Context, r io.Reader, w io.Writer, opts Options) error {
	d := NewDecoder(r, opts.MaxMessageBytes)
	s := NewSession(opts)
	defer s.Close()
	for {
		msg, err := d.Next()
		if err == io.EOF {
			if !s.Done() {
				err = e9err.Malformed("rpc", "rpc: stream ended before emit")
				WriteError(w, nil, err)
				return err
			}
			return nil
		}
		if err != nil {
			WriteError(w, nil, err)
			return err
		}
		res, err := s.Handle(ctx, msg, d)
		if err != nil {
			WriteError(w, msg, err)
			return err
		}
		if msg.wantsReply() {
			if err := WriteResult(w, msg, res); err != nil {
				return err
			}
		}
	}
}
