package rpc

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"e9patch"
	"e9patch/internal/e9err"
	"e9patch/internal/workload"
)

// testBin builds a small real binary for protocol sessions.
func testBin(t testing.TB) []byte {
	t.Helper()
	prog, err := workload.BuildKernel("branchy", false)
	if err != nil {
		t.Fatal(err)
	}
	return prog.ELF
}

// serveString runs one session over a literal stream and returns the
// response transcript and the session error.
func serveString(t testing.TB, stream string, opts Options) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := Serve(context.Background(), strings.NewReader(stream), &out, opts)
	return out.String(), err
}

// TestSessionEndToEnd drives the full grammar with an inline base64
// binary and checks the emitted bytes equal the library's single-shot
// Rewrite — the protocol is a transport, not a different rewriter.
func TestSessionEndToEnd(t *testing.T) {
	bin := testBin(t)
	want, err := e9patch.Rewrite(bin, e9patch.Config{Select: e9patch.SelectJumps})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	outPath := filepath.Join(dir, "out.bin")
	stream := fmt.Sprintf(`{"jsonrpc":"2.0","method":"binary","params":{"data":%q},"id":1}
{"jsonrpc":"2.0","method":"patch","params":{"app":"jumps"},"id":2}
{"jsonrpc":"2.0","method":"emit","params":{"output":%q},"id":3}
`, base64.StdEncoding.EncodeToString(bin), outPath)

	transcript, err := serveString(t, stream, Options{AllowPath: true})
	if err != nil {
		t.Fatalf("serve: %v\ntranscript: %s", err, transcript)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Output, got) {
		t.Fatal("protocol session output differs from single-shot Rewrite")
	}
	// Every id-carrying request got a response line.
	if n := strings.Count(transcript, "\n"); n != 3 {
		t.Fatalf("want 3 response lines, got %d: %s", n, transcript)
	}
	if strings.Contains(transcript, "\"error\"") {
		t.Fatalf("unexpected error in transcript: %s", transcript)
	}
}

// TestSessionFramedBinary covers the raw size-framed payload path (the
// chunked-HTTP framing) and hex-string numbers in patch addresses.
func TestSessionFramedBinary(t *testing.T) {
	bin := testBin(t)
	want, err := e9patch.Rewrite(bin, e9patch.Config{Select: e9patch.SelectJumps})
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for _, loc := range want.Locations {
		addrs = append(addrs, fmt.Sprintf("\"%#x\"", loc.Addr))
	}

	var stream bytes.Buffer
	fmt.Fprintf(&stream, `{"method":"binary","params":{"size":%d}}`+"\n", len(bin))
	stream.Write(bin)
	stream.WriteByte('\n')
	fmt.Fprintf(&stream, `{"method":"patch","params":{"addrs":[%s]},"id":1}`+"\n", strings.Join(addrs, ","))
	fmt.Fprintf(&stream, `{"method":"emit","id":2}`+"\n")

	var out bytes.Buffer
	s := NewSession(Options{})
	defer s.Close()
	d := NewDecoder(&stream, 0)
	ctx := context.Background()
	for {
		msg, err := d.Next()
		if err != nil {
			break
		}
		if _, err := s.Handle(ctx, msg, d); err != nil {
			t.Fatalf("%s: %v", msg.Method, err)
		}
	}
	if !s.Done() {
		t.Fatal("session did not reach emit")
	}
	if !bytes.Equal(want.Output, s.Result().Output) {
		t.Fatal("framed session output differs from single-shot Rewrite")
	}
	_ = out
}

// TestSessionAbuse sweeps the hostile streams: truncation, grammar
// violations, oversized messages, bad numbers. Every case must yield a
// classified e9err error of the right class — and never a panic.
func TestSessionAbuse(t *testing.T) {
	bin := testBin(t)
	b64 := base64.StdEncoding.EncodeToString(bin)
	binMsg := fmt.Sprintf(`{"method":"binary","params":{"data":%q}}`, b64)

	cases := []struct {
		name   string
		stream string
		opts   Options
		class  error
	}{
		{"patch-before-binary", `{"method":"patch","params":{"app":"jumps"}}`, Options{}, e9err.ErrMalformed},
		{"emit-before-binary", `{"method":"emit"}`, Options{}, e9err.ErrMalformed},
		{"double-binary", binMsg + "\n" + binMsg, Options{}, e9err.ErrMalformed},
		{"double-emit", binMsg + "\n" + `{"method":"emit"}` + "\n" + `{"method":"emit"}`, Options{}, e9err.ErrMalformed},
		{"option-after-binary", binMsg + "\n" + `{"method":"option","params":{"forceB0":true}}`, Options{}, e9err.ErrMalformed},
		{"truncated-stream", binMsg + "\n" + `{"method":"patch","params":{"app":"jumps"}}`, Options{}, e9err.ErrMalformed},
		{"empty-stream", "", Options{}, e9err.ErrMalformed},
		{"bad-json", `{"method":`, Options{}, e9err.ErrMalformed},
		{"trailing-garbage", `{"method":"emit"} {"x":1}`, Options{}, e9err.ErrMalformed},
		{"no-method", `{"id":1}`, Options{}, e9err.ErrMalformed},
		{"bad-version", `{"jsonrpc":"1.0","method":"emit"}`, Options{}, e9err.ErrUnsupported},
		{"unknown-method", `{"method":"trampoline"}`, Options{}, e9err.ErrUnsupported},
		{"unknown-option", `{"method":"option","params":{"granlarity":2}}`, Options{}, e9err.ErrMalformed},
		{"path-denied", `{"method":"binary","params":{"filename":"/etc/hostname"}}`, Options{}, e9err.ErrUnsupported},
		{"output-path-denied", binMsg + "\n" + `{"method":"emit","params":{"output":"/tmp/x"}}`, Options{}, e9err.ErrUnsupported},
		{"binary-no-source", `{"method":"binary","params":{}}`, Options{}, e9err.ErrMalformed},
		{"binary-two-sources", fmt.Sprintf(`{"method":"binary","params":{"data":%q,"size":4}}`, b64), Options{}, e9err.ErrMalformed},
		{"patch-no-source", binMsg + "\n" + `{"method":"patch","params":{}}`, Options{}, e9err.ErrMalformed},
		{"patch-two-sources", binMsg + "\n" + `{"method":"patch","params":{"app":"jumps","match":"jcc"}}`, Options{}, e9err.ErrMalformed},
		{"unknown-app", binMsg + "\n" + `{"method":"patch","params":{"app":"everything"}}`, Options{}, e9err.ErrUnsupported},
		{"bad-match-expr", binMsg + "\n" + `{"method":"patch","params":{"match":"jcc &&& x"}}`, Options{}, e9err.ErrBadSpec},
		{"bad-emit-format", binMsg + "\n" + `{"method":"emit","params":{"format":"elf128"}}`, Options{}, e9err.ErrUnsupported},
		{"bad-number", binMsg + "\n" + `{"method":"patch","params":{"addrs":["0xZZ"]}}`, Options{}, e9err.ErrMalformed},
		{"negative-size", `{"method":"binary","params":{"size":-1}}`, Options{}, e9err.ErrMalformed},
		{"empty-reserve", `{"method":"reserve","params":{"ranges":[{"lo":"0x2000","hi":"0x1000"}]}}`, Options{}, e9err.ErrMalformed},
		{"oversized-message", `{"method":"option","params":{"` + strings.Repeat("a", 300) + `":1}}`,
			Options{MaxMessageBytes: 128}, e9err.ErrResourceLimit},
		{"framed-too-large", `{"method":"binary","params":{"size":"0x100000000"}}`,
			Options{MaxBinaryBytes: 1 << 20}, e9err.ErrResourceLimit},
		{"inline-too-large", binMsg, Options{MaxBinaryBytes: 16}, e9err.ErrResourceLimit},
		{"framed-truncated", `{"method":"binary","params":{"size":1024}}` + "\nshort", Options{}, e9err.ErrMalformed},
		{"not-an-elf", `{"method":"binary","params":{"data":"aGVsbG8="}}`, Options{}, e9err.ErrMalformed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			transcript, err := serveString(t, tc.stream, tc.opts)
			if err == nil {
				t.Fatalf("want %v, got success\ntranscript: %s", tc.class, transcript)
			}
			if !errors.Is(err, tc.class) {
				t.Fatalf("want class %v, got %v", tc.class, err)
			}
			var e *e9err.Error
			if !errors.As(err, &e) {
				t.Fatalf("error is not classified: %v", err)
			}
			// The failure must also be reported on the wire, as the last
			// line, with the matching JSON-RPC code.
			lines := strings.Split(strings.TrimSpace(transcript), "\n")
			last := lines[len(lines)-1]
			var resp struct {
				Error *Error `json:"error"`
			}
			if jerr := json.Unmarshal([]byte(last), &resp); jerr != nil || resp.Error == nil {
				t.Fatalf("no error response on the wire: %q", last)
			}
			if resp.Error.Code != CodeFor(err) {
				t.Fatalf("wire code %d, CodeFor says %d", resp.Error.Code, CodeFor(err))
			}
		})
	}
}

// TestSessionOptions checks option plumbing end to end: forceB0 must
// change every patched site's tactic to B0.
func TestSessionOptions(t *testing.T) {
	bin := testBin(t)
	stream := fmt.Sprintf(`{"method":"option","params":{"forceB0":true,"granularity":2}}
{"method":"binary","params":{"data":%q}}
{"method":"patch","params":{"app":"jumps"},"id":1}
{"method":"emit","id":2}
`, base64.StdEncoding.EncodeToString(bin))
	var out bytes.Buffer
	s := NewSession(Options{})
	defer s.Close()
	d := NewDecoder(strings.NewReader(stream), 0)
	ctx := context.Background()
	for {
		msg, err := d.Next()
		if err != nil {
			break
		}
		if _, err := s.Handle(ctx, msg, d); err != nil {
			t.Fatalf("%s: %v", msg.Method, err)
		}
	}
	res := s.Result()
	if res == nil {
		t.Fatal("no result after emit")
	}
	if res.Stats.Patched() == 0 {
		t.Fatal("nothing patched")
	}
	for _, loc := range res.Locations {
		if loc.Tactic.String() != "B0" {
			t.Fatalf("forceB0 ignored: %#x patched via %s", loc.Addr, loc.Tactic)
		}
	}
	_ = out
}

// TestUint64Forms checks the number extension round trip.
func TestUint64Forms(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want uint64
		ok   bool
	}{
		{`4245300`, 4245300, true},
		{`"0x40c734"`, 0x40c734, true},
		{`"0X40C734"`, 0x40c734, true},
		{`"0xffffffffffffffff"`, ^uint64(0), true},
		{`-1`, 0, false},
		{`1.5`, 0, false},
		{`"0x"`, 0, false},
		{`"zzz"`, 0, false},
		{`true`, 0, false},
		// The string form is strictly 0x-prefixed hex. The any-base
		// parser used before this was tightened silently accepted all of
		// these — most dangerously "0755", which decoded to 493, not 755:
		// an address aimed at the wrong location with no diagnostic.
		{`"18446744073709551615"`, 0, false}, // decimal string
		{`"0755"`, 0, false},                 // octal spelling
		{`"0b101"`, 0, false},                // binary spelling
		{`""`, 0, false},                     // empty
		{`"0x1_000"`, 0, false},              // digit-group underscores
		{`"0x10000000000000000"`, 0, false},  // 17 nibbles: > 64 bits
		{`"0x0000000000000000f"`, 0, false},  // >16 nibbles even when the value fits
		{`" 0x10"`, 0, false},                // leading junk
	} {
		var u Uint64
		err := json.Unmarshal([]byte(tc.in), &u)
		if tc.ok != (err == nil) {
			t.Errorf("%s: ok=%v, err=%v", tc.in, tc.ok, err)
			continue
		}
		if tc.ok && uint64(u) != tc.want {
			t.Errorf("%s: got %#x, want %#x", tc.in, uint64(u), tc.want)
		}
		// Rejected strings must carry the malformed classification so
		// they answer -32000 on the wire, not the internal-error code.
		if !tc.ok && strings.HasPrefix(tc.in, `"`) {
			if !errors.Is(err, e9err.ErrMalformed) || CodeFor(err) != CodeMalformed {
				t.Errorf("%s: err %v maps to code %d, want %d (malformed)", tc.in, err, CodeFor(err), CodeMalformed)
			}
		}
	}
	// Round trip through MarshalJSON keeps large values exact.
	big := Uint64(0xdead_beef_cafe_f00d)
	enc, err := json.Marshal(big)
	if err != nil {
		t.Fatal(err)
	}
	var back Uint64
	if err := json.Unmarshal(enc, &back); err != nil || back != big {
		t.Fatalf("round trip %s -> %#x (err %v)", enc, uint64(back), err)
	}
}
