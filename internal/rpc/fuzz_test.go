package rpc

import (
	"bytes"
	"context"
	"encoding/base64"
	"fmt"
	"io"
	"strings"
	"testing"

	"e9patch"
)

// FuzzRPCSession throws arbitrary byte streams at a full protocol
// session under tight resource caps. The invariant is the backend
// contract: any stream either completes or returns a classified error —
// never a panic, never an unbounded allocation, and file paths stay
// rejected. Seeds cover the golden grammar (inline, framed, options,
// reserves) plus each abuse shape so the mutator starts near the
// interesting surface.
func FuzzRPCSession(f *testing.F) {
	bin := testBin(f)
	b64 := base64.StdEncoding.EncodeToString(bin)

	f.Add([]byte(fmt.Sprintf(`{"jsonrpc":"2.0","method":"binary","params":{"data":%q},"id":1}
{"jsonrpc":"2.0","method":"patch","params":{"app":"jumps"},"id":2}
{"jsonrpc":"2.0","method":"emit","id":3}
`, b64)))
	var framed bytes.Buffer
	fmt.Fprintf(&framed, `{"method":"option","params":{"forceB0":true}}`+"\n")
	fmt.Fprintf(&framed, `{"method":"reserve","params":{"ranges":[{"lo":"0x700000000000","hi":"0x700000001000"}]}}`+"\n")
	fmt.Fprintf(&framed, `{"method":"binary","params":{"size":%d}}`+"\n", len(bin))
	framed.Write(bin)
	framed.WriteByte('\n')
	fmt.Fprintf(&framed, `{"method":"patch","params":{"addrs":["0x401005",4198406]},"id":1}`+"\n")
	fmt.Fprintf(&framed, `{"method":"emit","id":2}`+"\n")
	f.Add(framed.Bytes())
	f.Add([]byte(`{"method":"patch","params":{"app":"jumps"}}`))
	f.Add([]byte(`{"method":"emit"}` + "\n" + `{"method":"emit"}`))
	f.Add([]byte(`{"method":"binary","params":{"size":999999}}` + "\nxx"))
	f.Add([]byte(`{"method":"binary","params":{"filename":"/etc/passwd"}}`))
	f.Add([]byte(`{"method":"option","params":{"granularity":-1}}`))
	f.Add([]byte("\n\n\n{\"method\":"))
	// Number-string shapes the strict hex parser must classify as
	// malformed: 0x-less decimal/octal, empty, and >16-nibble strings.
	f.Add([]byte(`{"method":"option","params":{"skipPrefix":"123"}}`))
	f.Add([]byte(`{"method":"option","params":{"skipPrefix":"0755"}}`))
	f.Add([]byte(`{"method":"option","params":{"skipPrefix":""}}`))
	f.Add([]byte(`{"method":"option","params":{"skipPrefix":"0x10000000000000000"}}`))
	f.Add([]byte(`{"method":"option","params":{"counter":"0x1_000"}}`))
	f.Add([]byte(`{"method":"reserve","params":{"ranges":[["0x0000000000000000f","0x700000010000"]]}}`))

	opts := Options{
		MaxMessageBytes: 1 << 16,
		MaxBinaryBytes:  1 << 20,
	}
	opts.Base.Limits.MaxInputBytes = 1 << 20
	opts.Base.Limits.MaxPatchSites = 1 << 12

	f.Fuzz(func(t *testing.T, stream []byte) {
		err := Serve(context.Background(), bytes.NewReader(stream), io.Discard, opts)
		if err == nil {
			return
		}
		// Whatever the stream was, the failure must be classified and
		// must carry a non-internal JSON-RPC code unless it really was a
		// contained panic (which the recovery boundary marks).
		code := CodeFor(err)
		if code == CodeInternal {
			if !strings.Contains(err.Error(), "recovered panic") {
				t.Fatalf("unclassified failure: %v", err)
			}
			t.Fatalf("panic escaped into the error path: %v", err)
		}
	})
}

// TestFuzzSeedsPass replays the seed corpus directly so `go test`
// exercises the fuzz invariant without -fuzz.
func TestFuzzSeedsPass(t *testing.T) {
	bin := testBin(t)
	stream := fmt.Sprintf(`{"method":"binary","params":{"data":%q}}
{"method":"patch","params":{"app":"heapwrites"}}
{"method":"emit","id":9}
`, base64.StdEncoding.EncodeToString(bin))
	transcript, err := serveString(t, stream, Options{})
	if err != nil {
		t.Fatalf("%v\n%s", err, transcript)
	}
	want, err := e9patch.Rewrite(bin, e9patch.Config{Select: e9patch.SelectHeapWrites})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(transcript, fmt.Sprintf(`"outputSize":%d`, want.OutputSize)) {
		t.Fatalf("emit response does not report the expected output size %d: %s", want.OutputSize, transcript)
	}
}
