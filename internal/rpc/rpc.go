// Package rpc implements the rewriter's E9Patch-style JSON-RPC driving
// protocol: a line-delimited stream of messages that opens a binary,
// accumulates patch selections and options incrementally, and emits
// the rewritten output. The protocol is how frontends in any language
// drive the backend — cmd/e9patch reads it from stdin, and e9served's
// /v2/rewrite endpoint reads the same stream from a chunked request
// body — while the backend itself does minimal parsing and no analysis,
// exactly the E9Patch frontend/backend split.
//
// A session is the message sequence
//
//	option*  binary  (patch | reserve)*  emit
//
// over a single binary. Messages are JSON-RPC 2.0 objects, one per
// line; requests carrying an "id" receive a response line, id-less
// notifications do not. As in E9Patch, numbers may be written either
// as JSON numbers or as 0x-prefixed hexadecimal strings:
// "address": 4245300 and "address": "0x40c734" are equivalent, and the
// string form represents the full 64-bit range losslessly.
//
// The decoder enforces hostile-input caps (message length, binary
// payload size) before any parsing, and every failure is a classified
// e9err error — malformed streams and out-of-order messages can end a
// session but never panic the process.
package rpc

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"e9patch/internal/e9err"
)

// DefaultMaxMessageBytes caps one protocol line when Options leaves
// MaxMessageBytes zero. Patch messages batch at most a few thousand
// addresses in practice; 4 MiB leaves two orders of magnitude of slack.
const DefaultMaxMessageBytes = 4 << 20

// Uint64 is a uint64 that accepts the protocol's number extension:
// either a JSON number or a 0x-prefixed hexadecimal string, so
// "0x40c734" and 4245300 decode identically and values above 2^53
// survive frontends that route numbers through floats.
//
// The string form is strictly "0x" (or "0X") followed by 1..16 hex
// digits. Earlier revisions routed strings through Go's any-base
// literal parser, which silently accepted decimal ("123"), octal
// ("0755" = 493) and binary ("0b101") spellings — an address written
// octal-style by a confused frontend decoded to the wrong location
// with no diagnostic. Those shapes, along with empty strings,
// digit-group underscores and >16-nibble strings, are now classified
// malformed errors (-32000 on the wire).
type Uint64 uint64

// UnmarshalJSON implements json.Unmarshaler.
func (u *Uint64) UnmarshalJSON(b []byte) error {
	s := string(b)
	if strings.HasPrefix(s, "\"") {
		var str string
		if err := json.Unmarshal(b, &str); err != nil {
			return e9err.Malformed("rpc", "rpc: bad number string: %v", err)
		}
		digits, ok := strings.CutPrefix(str, "0x")
		if !ok {
			digits, ok = strings.CutPrefix(str, "0X")
		}
		if !ok || digits == "" {
			return e9err.Malformed("rpc",
				"rpc: bad number string %q (want 0x-prefixed hex)", str)
		}
		if len(digits) > 16 {
			return e9err.Malformed("rpc",
				"rpc: number string %q exceeds 64 bits (%d hex digits)", str, len(digits))
		}
		v, err := strconv.ParseUint(digits, 16, 64)
		if err != nil {
			return e9err.Malformed("rpc",
				"rpc: bad number string %q (want 0x-prefixed hex)", str)
		}
		*u = Uint64(v)
		return nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return e9err.Malformed("rpc", "rpc: bad number %s", s)
	}
	*u = Uint64(v)
	return nil
}

// MarshalJSON renders values that exceed 2^53 as hex strings so
// float-based JSON readers cannot corrupt them, and plain numbers
// otherwise.
func (u Uint64) MarshalJSON() ([]byte, error) {
	if u > 1<<53 {
		return json.Marshal(fmt.Sprintf("%#x", uint64(u)))
	}
	return json.Marshal(uint64(u))
}

// Message is one protocol message: a JSON-RPC 2.0 request or
// notification.
type Message struct {
	JSONRPC string          `json:"jsonrpc,omitempty"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params,omitempty"`
	ID      json.RawMessage `json:"id,omitempty"`
}

// wantsReply reports whether the message is a request (carries a
// non-null id) rather than a notification.
func (m *Message) wantsReply() bool {
	id := strings.TrimSpace(string(m.ID))
	return id != "" && id != "null"
}

// Error is the JSON-RPC error object carried by failure responses.
type Error struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// JSON-RPC 2.0 error codes, plus implementation-defined codes (the
// -320xx range) mapping the e9err taxonomy onto the wire.
const (
	CodeParse          = -32700
	CodeInvalidRequest = -32600
	CodeMethodNotFound = -32601
	CodeInvalidParams  = -32602
	CodeMalformed      = -32000
	CodeUnsupported    = -32001
	CodeResourceLimit  = -32002
	CodeInternal       = -32003
	CodeBadSpec        = -32004
)

// reasonUnknownMethod tags unknown-method errors so CodeFor can map
// them to the standard -32601 instead of the generic unsupported code.
const reasonUnknownMethod = "unknown-method"

// CodeFor maps a classified error onto its JSON-RPC error code.
func CodeFor(err error) int {
	var e *e9err.Error
	if errors.As(err, &e) && e.Reason == reasonUnknownMethod {
		return CodeMethodNotFound
	}
	switch {
	case errors.Is(err, e9err.ErrResourceLimit):
		return CodeResourceLimit
	case errors.Is(err, e9err.ErrUnsupported):
		return CodeUnsupported
	case errors.Is(err, e9err.ErrBadSpec):
		return CodeBadSpec
	case errors.Is(err, e9err.ErrMalformed):
		return CodeMalformed
	default:
		return CodeInternal
	}
}

// response is one reply line.
type response struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Result  any             `json:"result,omitempty"`
	Error   *Error          `json:"error,omitempty"`
}

// Decoder reads the line-delimited message stream, enforcing the
// message-size cap before any JSON parsing, and hands out the raw
// binary payload that follows a size-framed binary message.
type Decoder struct {
	r   *bufio.Reader
	max int
}

// NewDecoder wraps r; maxMessage <= 0 selects DefaultMaxMessageBytes.
func NewDecoder(r io.Reader, maxMessage int) *Decoder {
	if maxMessage <= 0 {
		maxMessage = DefaultMaxMessageBytes
	}
	return &Decoder{r: bufio.NewReaderSize(r, 64<<10), max: maxMessage}
}

// readLine accumulates one line up to the cap. It returns io.EOF only
// with no bytes read; a final line without a trailing newline is
// returned intact.
func (d *Decoder) readLine() ([]byte, error) {
	var line []byte
	for {
		chunk, err := d.r.ReadSlice('\n')
		if len(line)+len(chunk) > d.max {
			return nil, e9err.Limit("rpc", e9err.ReasonMessageTooLarge,
				"rpc: message exceeds the %d-byte cap", d.max)
		}
		line = append(line, chunk...)
		switch err {
		case nil:
			return line, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(line) == 0 {
				return nil, io.EOF
			}
			return line, nil
		default:
			return nil, e9err.Wrap(e9err.ErrMalformed, "rpc", err)
		}
	}
}

// Next returns the next message, skipping blank lines. It returns
// io.EOF at a clean end of stream; any other failure is classified.
func (d *Decoder) Next() (*Message, error) {
	for {
		line, err := d.readLine()
		if err != nil {
			return nil, err
		}
		trimmed := strings.TrimSpace(string(line))
		if trimmed == "" {
			continue
		}
		var m Message
		dec := json.NewDecoder(strings.NewReader(trimmed))
		if err := dec.Decode(&m); err != nil {
			return nil, e9err.Malformed("rpc", "rpc: bad message: %v", err)
		}
		if dec.More() {
			return nil, e9err.Malformed("rpc", "rpc: trailing content after message object")
		}
		if m.JSONRPC != "" && m.JSONRPC != "2.0" {
			return nil, e9err.Unsupported("rpc", "rpc: unsupported jsonrpc version %q", m.JSONRPC)
		}
		if m.Method == "" {
			return nil, e9err.Malformed("rpc", "rpc: message without method")
		}
		return &m, nil
	}
}

// ReadBinary consumes exactly n raw bytes — the payload following a
// size-framed binary message — plus the single newline that terminates
// the frame. A stream ending inside the payload is a malformed one.
func (d *Decoder) ReadBinary(n int64) ([]byte, error) {
	buf := make([]byte, n)
	if got, err := io.ReadFull(d.r, buf); err != nil {
		return nil, e9err.Malformed("rpc", "rpc: binary payload truncated at %d of %d bytes", got, n)
	}
	// The frame's trailing newline keeps the next message on its own
	// line; accept a bare EOF too so `binary` can be the last frame of
	// a probe stream.
	if b, err := d.r.ReadByte(); err == nil && b != '\n' {
		return nil, e9err.Malformed("rpc", "rpc: binary payload not newline-terminated (got %#x)", b)
	}
	return buf, nil
}

// WriteResult writes a success response for msg to w.
func WriteResult(w io.Writer, msg *Message, result any) error {
	return json.NewEncoder(w).Encode(response{JSONRPC: "2.0", ID: msg.ID, Result: result})
}

// WriteError writes an error response to w. A nil msg (decode failure
// before any message existed) gets a null id.
func WriteError(w io.Writer, msg *Message, err error) error {
	id := json.RawMessage("null")
	if msg != nil && len(msg.ID) > 0 {
		id = msg.ID
	}
	return json.NewEncoder(w).Encode(response{
		JSONRPC: "2.0",
		ID:      id,
		Error:   &Error{Code: CodeFor(err), Message: err.Error()},
	})
}
