package rpc

import (
	"context"
	"encoding/base64"
	"fmt"
	"strings"
	"testing"
)

// TestSessionDisasmOption wires the disasm option through a full
// protocol session and checks the result reports the mode; a bad mode
// fails the option message itself.
func TestSessionDisasmOption(t *testing.T) {
	bin := testBin(t)
	stream := fmt.Sprintf(`{"method":"option","params":{"disasm":"superset-cet"}}
{"method":"binary","params":{"data":%q}}
{"method":"patch","params":{"app":"jumps"},"id":1}
{"method":"emit","id":2}
`, base64.StdEncoding.EncodeToString(bin))
	s := NewSession(Options{})
	defer s.Close()
	d := NewDecoder(strings.NewReader(stream), 0)
	ctx := context.Background()
	for {
		msg, err := d.Next()
		if err != nil {
			break
		}
		if _, err := s.Handle(ctx, msg, d); err != nil {
			t.Fatalf("%s: %v", msg.Method, err)
		}
	}
	res := s.Result()
	if res == nil {
		t.Fatal("no result after emit")
	}
	if res.Disasm != "superset-cet" {
		t.Fatalf("Result.Disasm = %q", res.Disasm)
	}
	if res.Recovery == nil || res.Recovery.Kept == 0 {
		t.Fatalf("no recovery stats: %+v", res.Recovery)
	}

	// An unknown mode is rejected at the option message.
	s2 := NewSession(Options{})
	defer s2.Close()
	d2 := NewDecoder(strings.NewReader(`{"method":"option","params":{"disasm":"bogus"},"id":1}`+"\n"), 0)
	msg, err := d2.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Handle(ctx, msg, d2); err == nil {
		t.Fatal("bogus disasm mode accepted")
	}
}
