package rpc

import (
	"context"
	"encoding/json"
	"os"
	"strings"

	"e9patch"
	"e9patch/internal/e9err"
	"e9patch/internal/elf64"
	"e9patch/internal/trampoline"
)

// Options configures a protocol session.
type Options struct {
	// AllowPath permits messages that name filesystem paths (binary
	// {"filename"} and emit {"output"}). The CLI backend sets it; the
	// network server must not.
	AllowPath bool
	// MaxMessageBytes caps one protocol line (0: DefaultMaxMessageBytes).
	MaxMessageBytes int
	// MaxBinaryBytes caps an inline or size-framed binary payload
	// (0: only the pipeline's own Limits.MaxInputBytes applies).
	MaxBinaryBytes int64
	// Base is the rewrite configuration the session starts from; option
	// messages refine it before the binary opens. Its Select field is
	// ignored — selections arrive as patch messages.
	Base e9patch.Config
}

// state is the session position in the option* binary (patch|reserve)*
// emit grammar.
type state int

const (
	stateStart state = iota // before binary
	stateOpen               // binary received, accepting patch/reserve
	stateDone               // emit completed
)

// Session is the protocol state machine. It owns at most one input
// binary (possibly an mmap view) and one incremental rewrite stream,
// and is driven one message at a time by Serve or by the HTTP layer.
// A Session is not safe for concurrent use.
type Session struct {
	opts   Options
	cfg    e9patch.Config
	state  state
	input  *elf64.Input // owned mmap/file input, when opened by path
	stream *e9patch.Stream
	res    *e9patch.Result
}

// NewSession starts a session in the initial state.
func NewSession(opts Options) *Session {
	cfg := opts.Base
	cfg.Select = nil
	return &Session{opts: opts, cfg: cfg}
}

// Done reports whether the session has emitted.
func (s *Session) Done() bool { return s.state == stateDone }

// Result returns the rewrite outcome after a successful emit.
func (s *Session) Result() *e9patch.Result { return s.res }

// Close releases the session's input mapping, if any. Safe to call at
// any point and more than once.
func (s *Session) Close() error {
	in := s.input
	s.input = nil
	if in != nil {
		return in.Close()
	}
	return nil
}

// decodeParams strictly parses msg.Params into dst: unknown fields are
// a protocol error, catching misspelled options instead of silently
// ignoring them. A message without params decodes as all-defaults.
func decodeParams(msg *Message, dst any) error {
	if len(msg.Params) == 0 {
		return nil
	}
	dec := json.NewDecoder(strings.NewReader(string(msg.Params)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return e9err.Malformed("rpc", "rpc: %s params: %v", msg.Method, err)
	}
	return nil
}

// Handle processes one message and returns the result object for its
// response. d supplies the raw payload for size-framed binary messages
// and may be nil when the transport cannot carry one. All failures are
// classified e9err errors; a panic in the layers below is contained
// here and surfaces as ErrInternal.
func (s *Session) Handle(ctx context.Context, msg *Message, d *Decoder) (_ any, err error) {
	defer e9err.Recover("rpc", &err)
	if s.state == stateDone {
		return nil, e9err.Malformed("rpc", "rpc: %q after emit: session is finished", msg.Method)
	}
	switch msg.Method {
	case "option":
		return s.handleOption(msg)
	case "binary":
		return s.handleBinary(ctx, msg, d)
	case "reserve":
		return s.handleReserve(msg)
	case "patch":
		return s.handlePatch(msg)
	case "emit":
		return s.handleEmit(ctx, msg)
	default:
		uerr := e9err.Unsupported("rpc", "rpc: unknown method %q", msg.Method)
		uerr.Reason = reasonUnknownMethod
		return nil, uerr
	}
}

type optionParams struct {
	Granularity *int    `json:"granularity"`
	SkipPrefix  *Uint64 `json:"skipPrefix"`
	Disasm      *string `json:"disasm"`
	Parallelism *int    `json:"parallelism"`
	DisableT1   *bool   `json:"disableT1"`
	DisableT2   *bool   `json:"disableT2"`
	DisableT3   *bool   `json:"disableT3"`
	B0Fallback  *bool   `json:"b0Fallback"`
	ForceB0     *bool   `json:"forceB0"`
	Counter     *Uint64 `json:"counter"`
}

// handleOption refines the rewrite configuration. Options shape the
// open phase (disassembly width, skip prefix) as well as the decision
// phase, so the grammar requires them before the binary message.
func (s *Session) handleOption(msg *Message) (any, error) {
	if s.state != stateStart {
		return nil, e9err.Malformed("rpc", "rpc: option after binary: options must precede the binary message")
	}
	var p optionParams
	if err := decodeParams(msg, &p); err != nil {
		return nil, err
	}
	if p.Granularity != nil {
		s.cfg.Granularity = *p.Granularity
	}
	if p.SkipPrefix != nil {
		s.cfg.SkipPrefix = uint64(*p.SkipPrefix)
	}
	if p.Disasm != nil {
		mode, err := e9patch.ParseDisasmMode(*p.Disasm)
		if err != nil {
			return nil, e9err.Malformed("rpc", "rpc: %v", err)
		}
		s.cfg.Disasm = mode
	}
	if p.Parallelism != nil {
		s.cfg.Parallelism = *p.Parallelism
	}
	if p.DisableT1 != nil {
		s.cfg.Patch.DisableT1 = *p.DisableT1
	}
	if p.DisableT2 != nil {
		s.cfg.Patch.DisableT2 = *p.DisableT2
	}
	if p.DisableT3 != nil {
		s.cfg.Patch.DisableT3 = *p.DisableT3
	}
	if p.B0Fallback != nil {
		s.cfg.Patch.B0Fallback = *p.B0Fallback
	}
	if p.ForceB0 != nil {
		s.cfg.Patch.ForceB0 = *p.ForceB0
	}
	if p.Counter != nil {
		s.cfg.Template = trampoline.Counter{Addr: uint64(*p.Counter)}
	}
	return map[string]any{"ok": true}, nil
}

type binaryParams struct {
	Filename string  `json:"filename"`
	Data     []byte  `json:"data"`
	Size     *Uint64 `json:"size"`
}

// handleBinary opens the input binary — by path (mmap-backed, CLI
// only), inline as base64, or as a size-framed raw payload following
// the message line — and starts the incremental rewrite stream:
// parsing and disassembly happen now, selections stream in afterwards.
func (s *Session) handleBinary(ctx context.Context, msg *Message, d *Decoder) (any, error) {
	if s.state != stateStart {
		return nil, e9err.Malformed("rpc", "rpc: duplicate binary message")
	}
	var p binaryParams
	if err := decodeParams(msg, &p); err != nil {
		return nil, err
	}
	sources := 0
	for _, have := range []bool{p.Filename != "", p.Data != nil, p.Size != nil} {
		if have {
			sources++
		}
	}
	if sources != 1 {
		return nil, e9err.Malformed("rpc", "rpc: binary needs exactly one of filename, data, size")
	}

	var data []byte
	switch {
	case p.Filename != "":
		if !s.opts.AllowPath {
			return nil, e9err.Unsupported("rpc", "rpc: filesystem paths are not allowed on this transport")
		}
		in, err := elf64.OpenInput(p.Filename)
		if err != nil {
			return nil, err
		}
		s.input = in
		data = in.Data
	case p.Data != nil:
		if s.opts.MaxBinaryBytes > 0 && int64(len(p.Data)) > s.opts.MaxBinaryBytes {
			return nil, e9err.Limit("rpc", e9err.ReasonInputTooLarge,
				"rpc: inline binary is %d bytes, limit is %d", len(p.Data), s.opts.MaxBinaryBytes)
		}
		data = p.Data
	default:
		n := int64(*p.Size)
		if s.opts.MaxBinaryBytes > 0 && n > s.opts.MaxBinaryBytes {
			return nil, e9err.Limit("rpc", e9err.ReasonInputTooLarge,
				"rpc: framed binary is %d bytes, limit is %d", n, s.opts.MaxBinaryBytes)
		}
		if d == nil {
			return nil, e9err.Unsupported("rpc", "rpc: size-framed binary payloads are not supported on this transport")
		}
		var err error
		if data, err = d.ReadBinary(n); err != nil {
			return nil, err
		}
	}

	stream, err := e9patch.NewStream(ctx, data, s.cfg)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.stream = stream
	s.state = stateOpen
	return map[string]any{
		"size":     len(data),
		"insts":    stream.Insts(),
		"badBytes": stream.BadBytes(),
	}, nil
}

type reserveParams struct {
	Ranges []struct {
		Lo Uint64 `json:"lo"`
		Hi Uint64 `json:"hi"`
	} `json:"ranges"`
}

// handleReserve marks [lo, hi) virtual-address ranges off limits for
// trampoline placement; valid before or after the binary opens.
func (s *Session) handleReserve(msg *Message) (any, error) {
	var p reserveParams
	if err := decodeParams(msg, &p); err != nil {
		return nil, err
	}
	for _, r := range p.Ranges {
		if r.Hi <= r.Lo {
			return nil, e9err.Malformed("rpc", "rpc: empty reserve range [%#x,%#x)", uint64(r.Lo), uint64(r.Hi))
		}
		if s.state == stateOpen {
			if err := s.stream.Reserve(uint64(r.Lo), uint64(r.Hi)); err != nil {
				return nil, err
			}
		} else {
			s.cfg.ReserveVA = append(s.cfg.ReserveVA, [2]uint64{uint64(r.Lo), uint64(r.Hi)})
		}
	}
	return map[string]any{"ranges": len(p.Ranges)}, nil
}

type patchParams struct {
	Addrs []Uint64 `json:"addrs"`
	Match string   `json:"match"`
	App   string   `json:"app"`
}

// handlePatch merges one batch of patch locations into the stream:
// explicit runtime addresses, an E9Tool matcher expression, or a named
// paper application. Sites accumulate as a union across messages; the
// per-site resource limit is enforced incrementally, so a hostile
// stream fails at the message that crosses it.
func (s *Session) handlePatch(msg *Message) (any, error) {
	if s.state != stateOpen {
		return nil, e9err.Malformed("rpc", "rpc: patch before binary")
	}
	var p patchParams
	if err := decodeParams(msg, &p); err != nil {
		return nil, err
	}
	sources := 0
	for _, have := range []bool{len(p.Addrs) > 0, p.Match != "", p.App != ""} {
		if have {
			sources++
		}
	}
	if sources != 1 {
		return nil, e9err.Malformed("rpc", "rpc: patch needs exactly one of addrs, match, app")
	}

	var added int
	var err error
	switch {
	case len(p.Addrs) > 0:
		addrs := make([]uint64, len(p.Addrs))
		for i, a := range p.Addrs {
			addrs[i] = uint64(a)
		}
		added, err = s.stream.SelectAddrs(addrs...)
	case p.Match != "":
		sel, cerr := e9patch.SelectMatch(p.Match)
		if cerr != nil {
			return nil, e9err.Wrap(e9err.ErrBadSpec, "rpc", cerr)
		}
		added, err = s.stream.Select(sel)
	default:
		var sel e9patch.Selector
		switch p.App {
		case "jumps":
			sel = e9patch.SelectJumps
		case "heapwrites":
			sel = e9patch.SelectHeapWrites
		case "all":
			sel = e9patch.SelectAll
		default:
			return nil, e9err.Unsupported("rpc", "rpc: unknown app %q (want jumps, heapwrites or all)", p.App)
		}
		added, err = s.stream.Select(sel)
	}
	if err != nil {
		return nil, err
	}
	return map[string]any{"matched": added, "selected": s.stream.Selected()}, nil
}

type emitParams struct {
	Output string `json:"output"`
	Format string `json:"format"`
}

// handleEmit runs the decision and emit phases over the accumulated
// selection. With an output path (CLI only) the binary is written to
// disk; either way the Result stays available for the transport layer
// (the HTTP server streams Result().Output as the response body).
func (s *Session) handleEmit(ctx context.Context, msg *Message) (any, error) {
	if s.state != stateOpen {
		return nil, e9err.Malformed("rpc", "rpc: emit before binary")
	}
	var p emitParams
	if err := decodeParams(msg, &p); err != nil {
		return nil, err
	}
	if p.Format != "" && p.Format != "binary" {
		return nil, e9err.Unsupported("rpc", "rpc: unknown emit format %q", p.Format)
	}
	if p.Output != "" && !s.opts.AllowPath {
		return nil, e9err.Unsupported("rpc", "rpc: filesystem paths are not allowed on this transport")
	}
	res, err := s.stream.Finish(ctx)
	if err != nil {
		return nil, err
	}
	s.res = res
	s.state = stateDone
	if p.Output != "" {
		if err := os.WriteFile(p.Output, res.Output, 0o755); err != nil {
			return nil, e9err.Wrap(e9err.ErrInternal, "rpc", err)
		}
	}
	return map[string]any{
		"outputSize":  res.OutputSize,
		"trampolines": res.Trampolines,
		"patched":     res.Stats.Patched(),
		"failed":      res.Stats.Failed,
		"mappings":    res.Mappings,
		"warnings":    res.Warnings,
	}, nil
}
