package group

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFigure3Example(t *testing.T) {
	// Five trampolines over three virtual pages, non-overlapping
	// relative to page base → one merged physical page (Figure 3).
	chunks := []Chunk{
		{Addr: 0x10000 + 0x100, Data: []byte("t1t1")},
		{Addr: 0x10000 + 0x800, Data: []byte("t2t2")},
		{Addr: 0x11000 + 0x400, Data: []byte("t3t3")},
		{Addr: 0x12000 + 0x000, Data: []byte("t4")},
		{Addr: 0x12000 + 0xC00, Data: []byte("t5t5t5")},
	}
	res, err := Build(chunks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.VirtBlocks != 3 {
		t.Errorf("virt blocks = %d", res.Stats.VirtBlocks)
	}
	if res.Stats.PhysBlocks != 1 {
		t.Errorf("phys blocks = %d, want 1 (two-thirds saved)", res.Stats.PhysBlocks)
	}
	if res.Stats.Mappings != 3 {
		t.Errorf("mappings = %d", res.Stats.Mappings)
	}
	// Reconstruct each virtual page and verify every chunk is intact.
	verifyChunks(t, res, chunks)
}

func TestConflictingOffsetsSplit(t *testing.T) {
	// Two pages with trampolines at the same offset cannot merge.
	chunks := []Chunk{
		{Addr: 0x10000 + 0x100, Data: []byte("aaaa")},
		{Addr: 0x11000 + 0x100, Data: []byte("bbbb")},
	}
	res, err := Build(chunks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PhysBlocks != 2 {
		t.Errorf("phys blocks = %d, want 2", res.Stats.PhysBlocks)
	}
	verifyChunks(t, res, chunks)
}

func TestBlockSpanningChunk(t *testing.T) {
	// A trampoline crossing a page boundary becomes two
	// mini-trampolines in two blocks.
	data := bytes.Repeat([]byte{0xAB}, 64)
	chunks := []Chunk{{Addr: 0x10000 + 0xFE0, Data: data}}
	res, err := Build(chunks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.VirtBlocks != 2 {
		t.Errorf("virt blocks = %d, want 2", res.Stats.VirtBlocks)
	}
	verifyChunks(t, res, chunks)
}

func TestGranularityReducesMappings(t *testing.T) {
	// Trampolines spread one per page over 256 pages: M=1 gives 256
	// mappings; M=16 gives 16; physical bytes grow accordingly.
	var chunks []Chunk
	for i := 0; i < 256; i++ {
		// Distinct offsets so everything could merge at M=1.
		chunks = append(chunks, Chunk{
			Addr: 0x100000 + uint64(i)*PageSize + uint64(i*13),
			Data: []byte{1, 2, 3},
		})
	}
	res1, err := Build(chunks, 1)
	if err != nil {
		t.Fatal(err)
	}
	res16, err := Build(chunks, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.Mappings != 256 {
		t.Errorf("M=1 mappings = %d", res1.Stats.Mappings)
	}
	if res16.Stats.Mappings != 16 {
		t.Errorf("M=16 mappings = %d", res16.Stats.Mappings)
	}
	if res1.Stats.PhysBlocks != 1 {
		t.Errorf("M=1 phys blocks = %d, want full merge", res1.Stats.PhysBlocks)
	}
	verifyChunks(t, res1, chunks)
	verifyChunks(t, res16, chunks)
}

func TestOverlapRejected(t *testing.T) {
	chunks := []Chunk{
		{Addr: 0x10000, Data: []byte{1, 2, 3, 4}},
		{Addr: 0x10002, Data: []byte{9}},
	}
	if _, err := Build(chunks, 1); err == nil {
		t.Fatal("overlapping chunks accepted")
	}
}

func TestBadGranularity(t *testing.T) {
	if _, err := Build(nil, 0); err == nil {
		t.Fatal("granularity 0 accepted")
	}
}

// verifyChunks reconstructs the virtual address space from the grouped
// result and checks all chunk bytes are present at their addresses.
func verifyChunks(t *testing.T, res *Result, chunks []Chunk) {
	t.Helper()
	mem := make(map[uint64]byte)
	for _, mp := range res.Mappings {
		blk := res.Blocks[mp.Phys]
		for i, b := range blk {
			mem[mp.Vaddr+uint64(i)] = b
		}
	}
	for _, c := range chunks {
		for i, b := range c.Data {
			if mem[c.Addr+uint64(i)] != b {
				t.Fatalf("byte at %#x = %#x, want %#x", c.Addr+uint64(i), mem[c.Addr+uint64(i)], b)
			}
		}
	}
}

// TestGroupingProperty: random disjoint chunks at any granularity must
// reconstruct exactly, and grouped blocks never exceed naive blocks.
func TestGroupingProperty(t *testing.T) {
	f := func(seed int64, granExp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		gran := 1 << (granExp % 7) // 1..64
		var chunks []Chunk
		next := uint64(0x200000)
		for i := 0; i < 100; i++ {
			next += uint64(rng.Intn(0x3000) + 1)
			n := rng.Intn(48) + 1
			data := make([]byte, n)
			rng.Read(data)
			chunks = append(chunks, Chunk{Addr: next, Data: data})
			next += uint64(n)
		}
		res, err := Build(chunks, gran)
		if err != nil {
			t.Logf("seed %d gran %d: %v", seed, gran, err)
			return false
		}
		if res.Stats.PhysBlocks > res.Stats.VirtBlocks {
			return false
		}
		if res.Stats.Mappings != res.Stats.VirtBlocks {
			return false
		}
		verifyChunks(t, res, chunks)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
