// Package group implements physical page grouping (§4): trampolines
// are scattered across sparse virtual pages because punning constrains
// their addresses; merging physical blocks whose trampolines occupy
// disjoint block offsets — and mapping each merged block at many
// virtual addresses — recovers the wasted physical memory and file
// size.
//
// The virtual address space is divided into blocks of M consecutive
// pages (the granularity knob): M=1 is the most aggressive merge; large
// M trades physical memory for fewer mappings (the Linux
// vm.max_map_count limit).
package group

import (
	"fmt"
	"sort"
)

// PageSize is the virtual page size.
const PageSize = 0x1000

// Chunk is a run of bytes to be materialised at a virtual address
// (one trampoline, or a piece of one that crosses a block boundary).
type Chunk struct {
	Addr uint64
	Data []byte
}

// Mapping maps one merged physical block into the virtual address
// space (one simulated mmap call).
type Mapping struct {
	// Vaddr is the block-aligned virtual address.
	Vaddr uint64
	// Phys indexes Result.Blocks.
	Phys int
}

// Stats summarises the optimisation's effect.
type Stats struct {
	// TrampolineBytes is the payload size.
	TrampolineBytes uint64
	// VirtBlocks is the number of occupied virtual blocks — also the
	// number of mappings, and the number of physical blocks a naïve
	// one-to-one scheme would emit.
	VirtBlocks int
	// PhysBlocks is the number of merged physical blocks emitted.
	PhysBlocks int
	// BlockSize is M * PageSize.
	BlockSize uint64
	// Mappings equals VirtBlocks (one mmap per occupied block).
	Mappings int
}

// PhysBytes returns the grouped physical payload size.
func (s Stats) PhysBytes() uint64 { return uint64(s.PhysBlocks) * s.BlockSize }

// NaiveBytes returns the physical payload size without grouping.
func (s Stats) NaiveBytes() uint64 { return uint64(s.VirtBlocks) * s.BlockSize }

// Result is the grouped physical image.
type Result struct {
	// Blocks holds the merged physical blocks, each BlockSize bytes.
	Blocks [][]byte
	// Mappings lists the virtual placements of each block.
	Mappings []Mapping
	Stats    Stats
}

// maxProbe bounds the number of candidate groups the greedy partitioner
// examines per block; the paper notes a simple greedy algorithm gives
// reasonable results for reasonable performance.
const maxProbe = 128

// piece is one chunk fragment that landed in a virtual block: an
// offset plus a view into the caller's chunk data. Blocks stay sparse —
// a browser-class rewrite occupies hundreds of thousands of virtual
// blocks, and materializing a full blockSize image per virtual block
// (rather than only per merged physical block, below) used to dominate
// the emit phase's memory.
type piece struct {
	off  uint64
	data []byte
}

type vblock struct {
	vaddr  uint64 // block-aligned
	bitmap []uint64
	pieces []piece
}

// Build groups the chunks with the given granularity (pages per
// block). Chunks must be non-overlapping in virtual space.
func Build(chunks []Chunk, granularity int) (*Result, error) {
	if granularity < 1 {
		return nil, fmt.Errorf("group: granularity %d < 1", granularity)
	}
	blockSize := uint64(granularity) * PageSize

	// Slice chunks into per-block pieces; images are deferred to the
	// merged physical blocks.
	blocks := make(map[uint64]*vblock)
	var payload uint64
	for _, c := range chunks {
		payload += uint64(len(c.Data))
		addr := c.Addr
		data := c.Data
		for len(data) > 0 {
			blockAddr := addr / blockSize * blockSize
			off := addr - blockAddr
			n := blockSize - off
			if n > uint64(len(data)) {
				n = uint64(len(data))
			}
			b := blocks[blockAddr]
			if b == nil {
				b = &vblock{
					vaddr:  blockAddr,
					bitmap: make([]uint64, (blockSize+63)/64),
				}
				blocks[blockAddr] = b
			}
			for i := uint64(0); i < n; i++ {
				w := (off + i) / 64
				bit := (off + i) % 64
				if b.bitmap[w]&(1<<bit) != 0 {
					return nil, fmt.Errorf("group: overlapping chunks at %#x", addr+i)
				}
				b.bitmap[w] |= 1 << bit
			}
			b.pieces = append(b.pieces, piece{off: off, data: data[:n]})
			data = data[n:]
			addr += n
		}
	}

	// Deterministic order: by virtual address.
	ordered := make([]*vblock, 0, len(blocks))
	for _, b := range blocks {
		ordered = append(ordered, b)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].vaddr < ordered[j].vaddr })

	// Greedy partitioning: place each block into the first compatible
	// group (bounded probing). Only groups — the merged physical blocks —
	// carry a materialized image; virtual blocks write their pieces into
	// it on placement.
	type grp struct {
		bitmap  []uint64
		data    []byte
		members []uint64 // vaddrs
	}
	place := func(g *grp, b *vblock) {
		for _, p := range b.pieces {
			copy(g.data[p.off:], p.data)
		}
		for i, w := range b.bitmap {
			g.bitmap[i] |= w
		}
		g.members = append(g.members, b.vaddr)
	}
	// Probe the most recently opened groups: older groups fill up, so
	// scanning from the front would degenerate into one group per
	// block once the probe budget's worth of groups saturates.
	var groups []*grp
	for _, b := range ordered {
		placed := false
		lo := len(groups) - maxProbe
		if lo < 0 {
			lo = 0
		}
		for gi := len(groups) - 1; gi >= lo; gi-- {
			g := groups[gi]
			conflict := false
			for i, w := range b.bitmap {
				if w&g.bitmap[i] != 0 {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			place(g, b)
			placed = true
			break
		}
		if !placed {
			g := &grp{
				bitmap:  make([]uint64, len(b.bitmap)),
				data:    make([]byte, blockSize),
				members: make([]uint64, 0, 1),
			}
			place(g, b)
			groups = append(groups, g)
		}
	}

	res := &Result{
		Stats: Stats{
			TrampolineBytes: payload,
			VirtBlocks:      len(ordered),
			PhysBlocks:      len(groups),
			BlockSize:       blockSize,
			Mappings:        len(ordered),
		},
	}
	for gi, g := range groups {
		res.Blocks = append(res.Blocks, g.data)
		for _, v := range g.members {
			res.Mappings = append(res.Mappings, Mapping{Vaddr: v, Phys: gi})
		}
	}
	sort.Slice(res.Mappings, func(i, j int) bool { return res.Mappings[i].Vaddr < res.Mappings[j].Vaddr })
	return res, nil
}
