// Package trampoline compiles trampoline templates into concrete
// machine code. A trampoline implements a patch or instrumentation for
// one displaced instruction: it runs the instrumentation payload,
// executes (or emulates) the displaced instruction, and returns control
// flow to the instruction's original successor.
//
// Templates are sized before placement (the allocator needs the size to
// find a slot inside a punned target window) and then emitted at the
// chosen address; both steps are deterministic.
package trampoline

import (
	"fmt"

	"e9patch/internal/x86"
)

// Template produces trampoline code for a displaced instruction.
//
// Size must equal the length of the code Emit produces for the same
// instruction, independent of the placement address.
type Template interface {
	// Size returns the trampoline size in bytes for inst.
	Size(inst *x86.Inst) (int, error)
	// Emit assembles the trampoline for inst at address at.
	Emit(inst *x86.Inst, at uint64) ([]byte, error)
}

// Empty is the paper's "empty" instrumentation: the trampoline merely
// executes/emulates the displaced instruction and jumps back. It is
// also the evictee-trampoline shape used by tactics T2 and T3.
type Empty struct{}

// Size implements Template.
func (Empty) Size(inst *x86.Inst) (int, error) { return sizeOf(Empty{}, inst) }

// Emit implements Template.
func (Empty) Emit(inst *x86.Inst, at uint64) ([]byte, error) {
	a := x86.NewAsm(at)
	if err := emitDisplaced(a, inst); err != nil {
		return nil, err
	}
	return a.Finish()
}

// Counter increments a 64-bit in-memory counter before executing the
// displaced instruction (the shape of basic-block/branch counting
// instrumentation).
type Counter struct {
	// Addr is the virtual address of the 8-byte counter.
	Addr uint64
	// Scratch is the register saved to hold the counter address
	// (defaults to RAX; must not appear in the displaced operand).
	Scratch x86.Reg
}

// Size implements Template.
func (c Counter) Size(inst *x86.Inst) (int, error) { return sizeOf(c, inst) }

// Emit implements Template.
func (c Counter) Emit(inst *x86.Inst, at uint64) ([]byte, error) {
	s := c.Scratch
	if s == x86.NoReg || s == 0 {
		regs, ok := pickScratch(inst, 1)
		if !ok {
			return nil, fmt.Errorf("trampoline: no scratch register free for % x", inst.Bytes)
		}
		s = regs[0]
	}
	a := x86.NewAsm(at)
	a.PushReg(s)
	a.Pushfq()
	a.MovRegImm64(s, c.Addr)
	a.AddMemImm8x64(x86.M(s, 0), 1)
	a.Popfq()
	a.PopReg(s)
	if err := emitDisplaced(a, inst); err != nil {
		return nil, err
	}
	return a.Finish()
}

// ContextCall is the general instrumentation shape: the trampoline
// saves the full general-purpose register context and flags, calls an
// instrumentation function with the patched instruction's address in
// rdi (SysV convention), restores everything, executes the displaced
// instruction, and returns. This is how higher-level tooling layers
// arbitrary analyses over the rewriter.
type ContextCall struct {
	// Fn is the absolute address of the instrumentation routine
	// (typically an emulator runtime binding).
	Fn uint64
}

// contextRegs are the saved registers, in push order (rsp excluded:
// the stack itself carries the context).
var contextRegs = []x86.Reg{
	x86.RAX, x86.RCX, x86.RDX, x86.RBX, x86.RBP, x86.RSI, x86.RDI,
	x86.R8, x86.R9, x86.R10, x86.R11, x86.R12, x86.R13, x86.R14, x86.R15,
}

// Size implements Template.
func (c ContextCall) Size(inst *x86.Inst) (int, error) { return sizeOf(c, inst) }

// Emit implements Template.
func (c ContextCall) Emit(inst *x86.Inst, at uint64) ([]byte, error) {
	a := x86.NewAsm(at)
	for _, r := range contextRegs {
		a.PushReg(r)
	}
	a.Pushfq()
	a.MovRegImm64(x86.RDI, inst.Addr)
	a.MovRegImm64(x86.RAX, c.Fn)
	a.CallReg(x86.RAX)
	a.Popfq()
	for i := len(contextRegs) - 1; i >= 0; i-- {
		a.PopReg(contextRegs[i])
	}
	if err := emitDisplaced(a, inst); err != nil {
		return nil, err
	}
	return a.Finish()
}

// Raw emits fixed code followed by a jump to an explicit continuation
// address. It implements arbitrary binary patches (Example 3.1): the
// displaced instruction is *not* automatically re-executed; the Code
// callback decides what the patch does.
type Raw struct {
	// Code assembles the patch body. The displaced instruction and
	// the resume address (its original successor) are provided.
	Code func(a *x86.Asm, inst *x86.Inst, resume uint64) error
}

// Size implements Template.
func (r Raw) Size(inst *x86.Inst) (int, error) { return sizeOf(r, inst) }

// Emit implements Template.
func (r Raw) Emit(inst *x86.Inst, at uint64) ([]byte, error) {
	a := x86.NewAsm(at)
	if err := r.Code(a, inst, inst.Addr+uint64(inst.Len)); err != nil {
		return nil, err
	}
	return a.Finish()
}

// sizeOf measures a template by emitting at the displaced instruction's
// own address (always within relocation range).
func sizeOf(t Template, inst *x86.Inst) (int, error) {
	b, err := t.Emit(inst, inst.Addr)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// pickScratch returns n distinct general-purpose registers that do not
// appear in inst's memory operand (so a lea of the operand computed in
// them is safe before the displaced instruction reads its own
// registers — the scratch registers are restored first). ok is false
// when the pool cannot supply n registers; templates turn that into an
// emit error so the tactic simply fails for that location instead of
// crashing the rewrite.
func pickScratch(inst *x86.Inst, n int) ([]x86.Reg, bool) {
	pool := []x86.Reg{x86.RAX, x86.RCX, x86.RDX, x86.RSI, x86.RDI, x86.R8, x86.R9, x86.R10, x86.R11}
	out := make([]x86.Reg, 0, n)
	for _, r := range pool {
		if r == inst.MemBase || r == inst.MemIndex {
			continue
		}
		out = append(out, r)
		if len(out) == n {
			return out, true
		}
	}
	return nil, false
}

// emitDisplaced appends code that performs the displaced instruction's
// exact semantics at the trampoline location and continues at the
// instruction's original successor. Non-branch instructions are
// relocated and followed by a return jump; branches are emulated with
// explicit jump sequences (§2.1.2 of the paper).
func emitDisplaced(a *x86.Asm, inst *x86.Inst) error {
	resume := inst.Addr + uint64(inst.Len)
	switch {
	case inst.IsJmp() && inst.RelSize != 0:
		// Direct jmp: re-target, no fall-through.
		a.JmpRel32(inst.Target())
		return a.Err()

	case inst.IsJcc() && inst.RelSize != 0:
		if !inst.TwoByte && (inst.Opcode&0xF0) == 0xE0 {
			return fmt.Errorf("trampoline: cannot emulate %#02x (loop/jrcxz)", inst.Opcode)
		}
		cc := x86.Cond(inst.Opcode & 0x0F)
		a.JccRel32(cc, inst.Target())
		a.JmpRel32(resume)
		return a.Err()

	case inst.IsCall() && inst.RelSize != 0:
		// Direct call: push the *original* return address so the
		// callee returns into unpatched code, then jump.
		emitPush64(a, resume)
		a.JmpRel32(inst.Target())
		return a.Err()

	case inst.IsCall(): // indirect call (FF /2)
		emitPush64(a, resume)
		return emitIndirectAsJmp(a, inst)

	case inst.IsJmp(): // indirect jmp (FF /4)
		b, err := x86.RelocateSimple(inst, a.Addr())
		if err != nil {
			return err
		}
		a.Raw(b...)
		return a.Err()

	case inst.IsRet() || inst.Attrs&x86.AttrStop != 0:
		// ret/ud2/hlt behave identically wherever they execute.
		a.Raw(inst.Bytes...)
		return a.Err()

	case inst.Attrs&x86.AttrInt3 != 0:
		a.Int3()
		return a.Err()

	default:
		b, err := x86.RelocateSimple(inst, a.Addr())
		if err != nil {
			return err
		}
		a.Raw(b...)
		a.JmpRel32(resume)
		return a.Err()
	}
}

// emitPush64 pushes a full 64-bit constant without clobbering any
// register: push imm32 (sign-extends) then patch the high dword.
func emitPush64(a *x86.Asm, v uint64) {
	lo := int32(uint32(v))
	hi := uint32(v >> 32)
	a.PushImm32(lo)
	// If sign extension already produced the right high half, the
	// store is unnecessary.
	var ext uint32
	if lo < 0 {
		ext = 0xFFFFFFFF
	}
	if ext != hi {
		a.MovMemImm32(x86.M(x86.RSP, 4), hi)
	}
}

// emitIndirectAsJmp rewrites an indirect call (FF /2) into the
// corresponding indirect jmp (FF /4) at the current position,
// relocating a RIP-relative operand if present.
func emitIndirectAsJmp(a *x86.Asm, inst *x86.Inst) error {
	b, err := x86.RelocateSimple(inst, a.Addr())
	if err != nil {
		return err
	}
	// Locate the ModRM byte: prefixes, opcode, then ModRM.
	mi := inst.NPrefix + 1
	if inst.TwoByte {
		mi++
	}
	if mi >= len(b) || b[inst.NPrefix] != 0xFF {
		return fmt.Errorf("trampoline: unexpected indirect call encoding % x", inst.Bytes)
	}
	modrm := b[mi]
	if (modrm>>3)&7 != 2 {
		return fmt.Errorf("trampoline: not an FF /2 call: % x", inst.Bytes)
	}
	b[mi] = modrm&^(7<<3) | 4<<3 // /2 -> /4
	a.Raw(b...)

	// RIP-relative operands were relocated against the *call*'s
	// placement; the jmp occupies the same bytes at the same spot, so
	// no further adjustment is needed (identical length).
	return a.Err()
}

// EmitPush64 exposes the 64-bit push idiom for other packages (the
// emulator tests exercise it directly).
func EmitPush64(a *x86.Asm, v uint64) { emitPush64(a, v) }
