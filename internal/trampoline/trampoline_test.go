package trampoline

import (
	"testing"

	"e9patch/internal/x86"
)

func decodeAt(t *testing.T, code []byte, addr uint64) x86.Inst {
	t.Helper()
	in, err := x86.Decode(code, addr)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func decodeSeq(t *testing.T, code []byte, addr uint64) []x86.Inst {
	t.Helper()
	var out []x86.Inst
	for off := 0; off < len(code); {
		in := decodeAt(t, code[off:], addr+uint64(off))
		out = append(out, in)
		off += in.Len
	}
	return out
}

func TestEmptySimpleInstruction(t *testing.T) {
	// mov %rax,(%rbx) at 0x400000 displaced to 0x700000.
	a := x86.NewAsm(0x400000)
	a.MovMemReg64(x86.M(x86.RBX, 0), x86.RAX)
	inst := decodeAt(t, a.MustFinish(), 0x400000)

	size, err := Empty{}.Size(&inst)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Empty{}.Emit(&inst, 0x700000)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != size {
		t.Fatalf("size %d != emitted %d", size, len(code))
	}
	seq := decodeSeq(t, code, 0x700000)
	if len(seq) != 2 {
		t.Fatalf("want displaced+jmp, got %d instructions", len(seq))
	}
	if string(seq[0].Bytes) != string(inst.Bytes) {
		t.Error("displaced instruction bytes changed")
	}
	if !seq[1].IsJmp() || seq[1].Target() != inst.Addr+uint64(inst.Len) {
		t.Errorf("return jump target %#x", seq[1].Target())
	}
}

func TestEmptyJcc(t *testing.T) {
	// je +0x27 (short) displaced.
	inst := decodeAt(t, []byte{0x74, 0x27}, 0x422ad5)
	code, err := Empty{}.Emit(&inst, 0x744513d0)
	if err != nil {
		t.Fatal(err)
	}
	seq := decodeSeq(t, code, 0x744513d0)
	if len(seq) != 2 || !seq[0].IsJcc() || !seq[1].IsJmp() {
		t.Fatalf("want jcc+jmp, got %d instructions", len(seq))
	}
	if seq[0].Target() != inst.Target() {
		t.Errorf("jcc target %#x, want %#x", seq[0].Target(), inst.Target())
	}
	if seq[1].Target() != inst.Addr+2 {
		t.Errorf("fallthrough %#x, want %#x", seq[1].Target(), inst.Addr+2)
	}
	// The emulated condition must match.
	if x86.Cond(seq[0].Opcode&0xF) != x86.CondE {
		t.Error("condition changed")
	}
}

func TestEmptyDirectJmp(t *testing.T) {
	inst := decodeAt(t, []byte{0xEB, 0x10}, 0x400000)
	code, err := Empty{}.Emit(&inst, 0x500000)
	if err != nil {
		t.Fatal(err)
	}
	seq := decodeSeq(t, code, 0x500000)
	if len(seq) != 1 || !seq[0].IsJmp() {
		t.Fatal("want single jmp")
	}
	if seq[0].Target() != inst.Target() {
		t.Errorf("target %#x, want %#x", seq[0].Target(), inst.Target())
	}
}

func TestEmptyDirectCall(t *testing.T) {
	a := x86.NewAsm(0x400100)
	a.CallRel32(0x400500)
	inst := decodeAt(t, a.MustFinish(), 0x400100)
	code, err := Empty{}.Emit(&inst, 0x600000)
	if err != nil {
		t.Fatal(err)
	}
	seq := decodeSeq(t, code, 0x600000)
	// push imm32; jmp (return address 0x400105 has no high bits).
	if len(seq) != 2 {
		t.Fatalf("got %d instructions", len(seq))
	}
	if seq[0].Opcode != 0x68 {
		t.Errorf("first inst opcode %#x, want push imm32", seq[0].Opcode)
	}
	if !seq[1].IsJmp() || seq[1].Target() != 0x400500 {
		t.Errorf("jmp target %#x", seq[1].Target())
	}
}

func TestEmptyHighAddressCall(t *testing.T) {
	// PIE-style high return address needs the extra high-dword store.
	a := x86.NewAsm(0x5555_5555_4100)
	a.CallRel32(0x5555_5555_9000)
	inst := decodeAt(t, a.MustFinish(), 0x5555_5555_4100)
	code, err := Empty{}.Emit(&inst, 0x5555_4444_0000)
	if err != nil {
		t.Fatal(err)
	}
	seq := decodeSeq(t, code, 0x5555_4444_0000)
	if len(seq) != 3 {
		t.Fatalf("got %d instructions, want push+store+jmp", len(seq))
	}
	if seq[1].Opcode != 0xC7 || seq[1].MemBase != x86.RSP {
		t.Error("missing high-dword store to (rsp+4)")
	}
}

func TestEmptyIndirectCall(t *testing.T) {
	inst := decodeAt(t, []byte{0xFF, 0xD0}, 0x400000) // call *%rax
	code, err := Empty{}.Emit(&inst, 0x500000)
	if err != nil {
		t.Fatal(err)
	}
	seq := decodeSeq(t, code, 0x500000)
	last := seq[len(seq)-1]
	if !last.IsJmp() || last.RelSize != 0 {
		t.Error("indirect call not rewritten to indirect jmp")
	}
}

func TestEmptyIndirectCallRIPRel(t *testing.T) {
	inst := decodeAt(t, []byte{0xFF, 0x15, 0x6F, 0x2A, 0x2A, 0x00}, 0x422a5b)
	code, err := Empty{}.Emit(&inst, 0x500000)
	if err != nil {
		t.Fatal(err)
	}
	seq := decodeSeq(t, code, 0x500000)
	last := seq[len(seq)-1]
	if !last.IsJmp() || !last.RIPRel {
		t.Fatal("want rip-relative indirect jmp")
	}
	origTarget := inst.Addr + uint64(inst.Len) + uint64(inst.Disp())
	newTarget := last.Addr + uint64(last.Len) + uint64(last.Disp())
	if origTarget != newTarget {
		t.Errorf("pointer slot moved: %#x -> %#x", origTarget, newTarget)
	}
}

func TestEmptyRet(t *testing.T) {
	inst := decodeAt(t, []byte{0xC3}, 0x400000)
	code, err := Empty{}.Emit(&inst, 0x500000)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 1 || code[0] != 0xC3 {
		t.Errorf("ret trampoline = % x", code)
	}
}

func TestEmptyRIPRelStore(t *testing.T) {
	// mov %eax,0x100(%rip)
	inst := decodeAt(t, []byte{0x89, 0x05, 0x00, 0x01, 0x00, 0x00}, 0x400000)
	code, err := Empty{}.Emit(&inst, 0x500000)
	if err != nil {
		t.Fatal(err)
	}
	seq := decodeSeq(t, code, 0x500000)
	if seq[0].Disp() == inst.Disp() {
		t.Error("rip displacement not relocated")
	}
	origTarget := inst.Addr + uint64(inst.Len) + uint64(inst.Disp())
	newTarget := seq[0].Addr + uint64(seq[0].Len) + uint64(seq[0].Disp())
	if origTarget != newTarget {
		t.Error("rip target changed")
	}
}

func TestCounterTemplate(t *testing.T) {
	a := x86.NewAsm(0x400000)
	a.MovMemReg64(x86.M(x86.RBX, 8), x86.RAX)
	inst := decodeAt(t, a.MustFinish(), 0x400000)

	c := Counter{Addr: 0x601000}
	size, err := c.Size(&inst)
	if err != nil {
		t.Fatal(err)
	}
	code, err := c.Emit(&inst, 0x700000)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != size {
		t.Fatalf("size mismatch %d != %d", size, len(code))
	}
	seq := decodeSeq(t, code, 0x700000)
	// push, pushfq, movabs, addq, popfq, pop, displaced, jmp = 8.
	if len(seq) != 8 {
		t.Fatalf("got %d instructions", len(seq))
	}
	if string(seq[6].Bytes) != string(inst.Bytes) {
		t.Error("displaced bytes changed")
	}
}

func TestRawTemplate(t *testing.T) {
	inst := decodeAt(t, []byte{0x89, 0xDD}, 0x422a61) // mov %ebx,%ebp
	r := Raw{Code: func(a *x86.Asm, in *x86.Inst, resume uint64) error {
		a.Raw(in.Bytes...)                     // original instruction
		a.MovMemImm8(x86.M(x86.RBX, 0x398), 1) // the CVE patch body
		a.JmpRel32(0x422a63)                   // back to the jmpq
		return a.Err()
	}}
	code, err := r.Emit(&inst, 0x49699eda)
	if err != nil {
		t.Fatal(err)
	}
	seq := decodeSeq(t, code, 0x49699eda)
	if len(seq) != 3 || !seq[2].IsJmp() || seq[2].Target() != 0x422a63 {
		t.Fatalf("raw trampoline shape wrong: %d instructions", len(seq))
	}
}

func TestPickScratchAvoidsOperands(t *testing.T) {
	a := x86.NewAsm(0)
	a.MovMemReg64(x86.MIdx(x86.RAX, x86.RCX, 8, 0), x86.RDX)
	inst := decodeAt(t, a.MustFinish(), 0)
	regs, ok := pickScratch(&inst, 3)
	if !ok {
		t.Fatal("pickScratch failed on a two-register operand")
	}
	for _, r := range regs {
		if r == x86.RAX || r == x86.RCX {
			t.Errorf("scratch %v collides with operand", r)
		}
	}
}
