package trampoline

import (
	"fmt"

	"e9patch/internal/x86"
)

// Call is the spec language's `call fn(args)@payload` patch kind: the
// trampoline calls a function inside a user-supplied payload ELF that
// the rewriter injects into the binary's address space, marshalling
// typed per-instruction arguments.
//
// ABI (DESIGN.md §11.3):
//
//   - Every caller-visible general-purpose register and the flags are
//     saved before the call and restored after it; the patch function
//     may clobber anything the SysV ABI lets a callee clobber (and
//     more — the trampoline does not trust it).
//   - Arguments are passed in the SysV integer registers rdi, rsi,
//     rdx, rcx, r8, r9 (at most 6).
//   - A valid return address is on the stack; the function returns
//     with `ret`. Its return value is ignored.
//   - The stack pointer is NOT 16-byte aligned at entry. Payload code
//     must not rely on SSE spills or other alignment assumptions
//     (E9Tool has the same caveat; build payloads accordingly).
//
// The displaced instruction executes after the context is restored,
// so the patch function observes the program state *before* the
// instruction — matching E9Tool's default "before" instrumentation
// position.
type Call struct {
	// Fn is the absolute address of the patch function inside the
	// injected payload.
	Fn uint64
	// Args are marshalled into argument registers in order.
	Args []Arg

	// asmTab maps instruction addresses to the address of their
	// NUL-terminated assembly string inside the injected string table.
	// Built by Prepare; required exactly when Args uses ArgAsm.
	asmTab map[uint64]uint64
}

// ArgKind enumerates the argument sources a call patch can marshal.
type ArgKind int

const (
	// ArgStatic passes a 64-bit constant from the spec.
	ArgStatic ArgKind = iota
	// ArgAddr passes the patched instruction's address.
	ArgAddr
	// ArgSize passes the instruction's encoded length in bytes.
	ArgSize
	// ArgTarget passes a direct branch's target (0 when indirect).
	ArgTarget
	// ArgImm passes the sign-extended immediate operand's bit image.
	ArgImm
	// ArgNext passes the address of the next instruction.
	ArgNext
	// ArgAsm passes a pointer to the instruction's NUL-terminated
	// AT&T-syntax rendering in an injected string table.
	ArgAsm
)

func (k ArgKind) String() string {
	switch k {
	case ArgStatic:
		return "static"
	case ArgAddr:
		return "addr"
	case ArgSize:
		return "size"
	case ArgTarget:
		return "target"
	case ArgImm:
		return "imm"
	case ArgNext:
		return "next"
	case ArgAsm:
		return "asm"
	}
	return fmt.Sprintf("argkind(%d)", int(k))
}

// Arg is one marshalled call argument.
type Arg struct {
	Kind ArgKind
	// Value is the constant for ArgStatic.
	Value uint64
}

// String renders the argument in spec syntax.
func (a Arg) String() string {
	if a.Kind == ArgStatic {
		return fmt.Sprintf("%#x", a.Value)
	}
	return a.Kind.String()
}

// ArgRegs are the SysV integer argument registers, in order. Its
// length bounds the arguments a call patch can marshal.
var ArgRegs = []x86.Reg{x86.RDI, x86.RSI, x86.RDX, x86.RCX, x86.R8, x86.R9}

// Preparer is implemented by templates that need a whole-selection
// pass before sizing: the pipeline calls Prepare once, after matching
// and before trampoline construction, with every selected instruction
// and an allocator that injects extra data into the output binary's
// address space (returning its load address).
type Preparer interface {
	Prepare(insts []x86.Inst, selected []int, alloc func(data []byte) (uint64, error)) error
}

// Prepare implements Preparer: when any argument is ArgAsm it builds
// a deduplicated NUL-terminated string table of the selected
// instructions' renderings, injects it, and records each site's
// string address. Without ArgAsm arguments it is a no-op.
func (c *Call) Prepare(insts []x86.Inst, selected []int, alloc func(data []byte) (uint64, error)) error {
	needAsm := false
	for _, a := range c.Args {
		if a.Kind == ArgAsm {
			needAsm = true
			break
		}
	}
	if !needAsm {
		return nil
	}
	var blob []byte
	strOff := make(map[string]uint64)
	tab := make(map[uint64]uint64, len(selected))
	for _, idx := range selected {
		if idx < 0 || idx >= len(insts) {
			return fmt.Errorf("trampoline: call prepare: selected index %d out of range", idx)
		}
		in := &insts[idx]
		s := in.String()
		off, ok := strOff[s]
		if !ok {
			off = uint64(len(blob))
			blob = append(blob, s...)
			blob = append(blob, 0)
			strOff[s] = off
		}
		tab[in.Addr] = off
	}
	if len(blob) == 0 {
		// Nothing selected; still allocate one byte so every ArgAsm
		// lookup failure below is a real bug, not an empty-table alias.
		blob = []byte{0}
	}
	base, err := alloc(blob)
	if err != nil {
		return err
	}
	for addr := range tab {
		tab[addr] += base
	}
	c.asmTab = tab
	return nil
}

// argValue resolves one argument for one instruction.
func (c *Call) argValue(inst *x86.Inst, a Arg) (uint64, error) {
	switch a.Kind {
	case ArgStatic:
		return a.Value, nil
	case ArgAddr:
		return inst.Addr, nil
	case ArgSize:
		return uint64(inst.Len), nil
	case ArgTarget:
		if inst.RelSize == 0 {
			return 0, nil
		}
		return inst.Target(), nil
	case ArgImm:
		return uint64(inst.Imm()), nil
	case ArgNext:
		return inst.Addr + uint64(inst.Len), nil
	case ArgAsm:
		addr, ok := c.asmTab[inst.Addr]
		if !ok {
			return 0, fmt.Errorf("trampoline: call: no asm string prepared for %#x (Prepare not run?)", inst.Addr)
		}
		return addr, nil
	}
	return 0, fmt.Errorf("trampoline: call: unknown argument kind %d", int(a.Kind))
}

// Size implements Template. Argument marshalling uses fixed-width
// movabs encodings, so the size is placement-independent.
func (c *Call) Size(inst *x86.Inst) (int, error) { return sizeOf(c, inst) }

// Emit implements Template.
func (c *Call) Emit(inst *x86.Inst, at uint64) ([]byte, error) {
	if len(c.Args) > len(ArgRegs) {
		return nil, fmt.Errorf("trampoline: call: %d arguments (at most %d)", len(c.Args), len(ArgRegs))
	}
	a := x86.NewAsm(at)
	for _, r := range contextRegs {
		a.PushReg(r)
	}
	a.Pushfq()
	for i, arg := range c.Args {
		v, err := c.argValue(inst, arg)
		if err != nil {
			return nil, err
		}
		a.MovRegImm64(ArgRegs[i], v)
	}
	a.MovRegImm64(x86.RAX, c.Fn)
	a.CallReg(x86.RAX)
	a.Popfq()
	for i := len(contextRegs) - 1; i >= 0; i-- {
		a.PopReg(contextRegs[i])
	}
	if err := emitDisplaced(a, inst); err != nil {
		return nil, err
	}
	return a.Finish()
}
