// Package lowfat implements the low-fat-pointer heap hardening used by
// the paper's §6.3 application: bounds information is encoded in the
// pointer's bit representation by allocating each size class from its
// own aligned region, so base(p) is computable from p alone, and a
// 16-byte redzone at each object's start turns spatial memory errors
// into detectable events via the check p − base(p) >= 16.
//
// Substitution note (DESIGN.md §2): size classes are restricted to
// powers of two so base(p) is a mask rather than a magic-number
// division, and the allocator replaces glibc malloc through the
// emulator's runtime binding (the paper uses LD_PRELOAD of
// liblowfat.so, modified to insert redzones).
package lowfat

import (
	"fmt"

	"e9patch/internal/emu"
	"e9patch/internal/trampoline"
	"e9patch/internal/x86"
)

// Layout constants.
const (
	// RegionShift: each region spans 2^32 bytes; the region index is
	// p >> RegionShift.
	RegionShift = 32
	// FirstRegion is the region index of size class 0.
	FirstRegion = 16
	// NumClasses is the number of size classes (16 B .. 512 KB).
	NumClasses = 16
	// MinSize is the smallest object size class.
	MinSize = 16
	// Redzone is the per-object redzone in bytes.
	Redzone = 16

	// TableAddr is the virtual address of the mask table (one uint64
	// per class: classSize-1). It lives in the low 2 GB so the check
	// can use 32-bit absolute addressing — one fewer scratch register
	// and no movabs per check.
	TableAddr uint64 = 0x0900_0000
	// ViolationAddr is the virtual address of the violation counter.
	ViolationAddr uint64 = 0x0900_0100
)

// ClassSize returns the object size of class c.
func ClassSize(c int) uint64 { return MinSize << uint(c) }

// RegionBase returns the base address of class c's region.
func RegionBase(c int) uint64 { return uint64(FirstRegion+c) << RegionShift }

// ClassFor returns the smallest class whose objects fit size+Redzone.
func ClassFor(size uint64) (int, error) {
	need := size + Redzone
	for c := 0; c < NumClasses; c++ {
		if ClassSize(c) >= need {
			return c, nil
		}
	}
	return 0, fmt.Errorf("lowfat: size %d exceeds the largest class", size)
}

// Base returns base(p): the start of the object containing p, or p
// itself when p is not a low-fat pointer.
func Base(p uint64) uint64 {
	idx := p >> RegionShift
	if idx < FirstRegion || idx >= FirstRegion+NumClasses {
		return p
	}
	return p &^ (ClassSize(int(idx-FirstRegion)) - 1)
}

// IsLowFat reports whether p lies in a low-fat region.
func IsLowFat(p uint64) bool {
	idx := p >> RegionShift
	return idx >= FirstRegion && idx < FirstRegion+NumClasses
}

// Allocator is the low-fat heap: bump allocation per size-class
// region, objects aligned to their class size, payload after the
// redzone.
type Allocator struct {
	next [NumClasses]uint64
	// Allocs counts allocations per class (diagnostics).
	Allocs [NumClasses]uint64
}

// Alloc returns the payload pointer for a new object of the given
// size; the first Redzone bytes of the object slot are the redzone.
func (al *Allocator) Alloc(m *emu.Machine, size uint64) (uint64, error) {
	c, err := ClassFor(size)
	if err != nil {
		return 0, err
	}
	cs := ClassSize(c)
	if (al.next[c]+1)*cs > 1<<RegionShift {
		return 0, fmt.Errorf("lowfat: region for class %d exhausted", c)
	}
	base := RegionBase(c) + al.next[c]*cs
	al.next[c]++
	al.Allocs[c]++
	m.Mem.Map(base, cs)
	return base + Redzone, nil
}

// Install writes the mask table and violation counter into the
// machine's memory and binds the allocator at the given malloc
// address. It is the liblowfat.so LD_PRELOAD analogue.
func Install(m *emu.Machine, mallocAddr, freeAddr uint64) *Allocator {
	table := make([]byte, NumClasses*8)
	for c := 0; c < NumClasses; c++ {
		mask := ClassSize(c) - 1
		for b := 0; b < 8; b++ {
			table[c*8+b] = byte(mask >> (8 * uint(b)))
		}
	}
	m.Mem.WriteBytes(TableAddr, table)
	m.Mem.Map(ViolationAddr, 8)

	al := &Allocator{}
	m.Runtime[mallocAddr] = func(m *emu.Machine) error {
		p, err := al.Alloc(m, m.Regs[x86.RDI])
		if err != nil {
			return err
		}
		m.Regs[x86.RAX] = p
		return nil
	}
	if freeAddr != 0 {
		m.Runtime[freeAddr] = func(m *emu.Machine) error { return nil }
	}
	return al
}

// Violations reads the violation counter from the machine.
func Violations(m *emu.Machine) uint64 {
	b, ok := m.Mem.ReadBytes(ViolationAddr, 8)
	if !ok {
		return 0
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// CheckTemplate is the trampoline template for hardened heap writes:
// it computes the written-to pointer with lea, applies the redzone
// check p − base(p) >= Redzone for low-fat pointers, and either counts
// or traps on violation before executing the displaced store (§6.3).
type CheckTemplate struct {
	// Trap selects ud2 on violation instead of counting.
	Trap bool
}

var _ trampoline.Template = CheckTemplate{}

// Size implements trampoline.Template.
func (c CheckTemplate) Size(inst *x86.Inst) (int, error) {
	b, err := c.Emit(inst, inst.Addr)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// Emit implements trampoline.Template.
func (c CheckTemplate) Emit(inst *x86.Inst, at uint64) ([]byte, error) {
	mem, ok := inst.MemOperand()
	if !ok {
		return nil, fmt.Errorf("lowfat: instruction at %#x has no memory operand", inst.Addr)
	}
	s, ok := scratch3(inst)
	if !ok {
		return nil, fmt.Errorf("lowfat: no scratch registers free for % x", inst.Bytes)
	}
	a := x86.NewAsm(at)
	a.PushReg(s[0])
	a.PushReg(s[1])
	a.Pushfq()

	a.Lea(s[0], mem) // p
	a.MovRegReg64(s[1], s[0])
	a.ShrRegImm64(s[1], RegionShift) // region index
	okLbl := a.NewLabel()
	a.CmpRegImm64(s[1], FirstRegion)
	a.JccShort(x86.CondB, okLbl)
	a.CmpRegImm64(s[1], FirstRegion+NumClasses)
	a.JccShort(x86.CondAE, okLbl)
	// mask = table[idx - FirstRegion] via 32-bit absolute addressing.
	a.MovRegMem64(s[1], x86.Mem{
		Base: x86.NoReg, Index: s[1], Scale: 8,
		Disp: int32(TableAddr) - FirstRegion*8,
	})
	a.AndRegReg64(s[0], s[1]) // p - base(p)
	a.CmpRegImm64(s[0], Redzone)
	a.JccShort(x86.CondAE, okLbl)
	// Violation.
	if c.Trap {
		a.Ud2()
	} else {
		a.AddMemImm8x64(x86.MAbs(int32(ViolationAddr)), 1)
	}
	a.Bind(okLbl)

	a.Popfq()
	a.PopReg(s[1])
	a.PopReg(s[0])
	if err := appendDisplaced(a, inst); err != nil {
		return nil, err
	}
	return a.Finish()
}

// appendDisplaced reuses the Empty template's displaced-instruction
// logic by emitting it as a continuation at the current position.
func appendDisplaced(a *x86.Asm, inst *x86.Inst) error {
	tail, err := trampoline.Empty{}.Emit(inst, a.Addr())
	if err != nil {
		return err
	}
	a.Raw(tail...)
	return a.Err()
}

// scratch3 picks three registers not used by the memory operand; ok is
// false when the pool cannot supply three, which the template turns
// into an emit error (the tactic fails for that one location).
func scratch3(inst *x86.Inst) ([3]x86.Reg, bool) {
	pool := []x86.Reg{x86.RAX, x86.RCX, x86.RDX, x86.RSI, x86.RDI, x86.R8, x86.R9, x86.R10, x86.R11}
	var out [3]x86.Reg
	n := 0
	for _, r := range pool {
		if r == inst.MemBase || r == inst.MemIndex {
			continue
		}
		out[n] = r
		n++
		if n == 3 {
			return out, true
		}
	}
	return out, false
}

// ReserveVA returns the extra ranges a hardened rewrite must keep free.
func ReserveVA() [][2]uint64 {
	return [][2]uint64{{TableAddr &^ 0xFFF, (ViolationAddr + 0x1000) &^ 0xFFF}}
}
