package lowfat

import (
	"testing"
	"testing/quick"

	"e9patch/internal/emu"
	"e9patch/internal/x86"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		size uint64
		want int
	}{
		{1, 1},  // 1+16 -> 32
		{16, 1}, // 32
		{17, 2}, // 64
		{48, 2}, // 64
		{49, 3}, // 128
		{1000, 6},
		{1 << 18, 15},
	}
	for _, tc := range cases {
		c, err := ClassFor(tc.size)
		if err != nil {
			t.Fatalf("size %d: %v", tc.size, err)
		}
		if c != tc.want {
			t.Errorf("ClassFor(%d) = %d (size %d), want %d", tc.size, c, ClassSize(c), tc.want)
		}
	}
	if _, err := ClassFor(1 << 20); err == nil {
		t.Error("oversized allocation accepted")
	}
}

func TestAllocatorGeometry(t *testing.T) {
	m := emu.NewMachine()
	al := Install(m, 0x2_0000_0100, 0x2_0000_0200)
	p1, err := al.Alloc(m, 100) // class 3 (128)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := al.Alloc(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !IsLowFat(p1) || !IsLowFat(p2) {
		t.Fatal("allocations not in low-fat regions")
	}
	if p1-Base(p1) != Redzone || p2-Base(p2) != Redzone {
		t.Errorf("payload not immediately after redzone: %#x %#x", p1-Base(p1), p2-Base(p2))
	}
	if Base(p2)-Base(p1) != ClassSize(3) {
		t.Errorf("objects not class-size apart: %#x", Base(p2)-Base(p1))
	}
	// The redzone predicate holds for every payload byte and fails
	// for every redzone byte.
	for off := uint64(0); off < ClassSize(3); off++ {
		p := Base(p1) + off
		inRedzone := p-Base(p) < Redzone
		if inRedzone != (off < Redzone) {
			t.Fatalf("redzone predicate wrong at offset %d", off)
		}
	}
}

func TestBaseProperty(t *testing.T) {
	f := func(classRaw uint8, slotRaw uint16, offRaw uint16) bool {
		c := int(classRaw) % NumClasses
		cs := ClassSize(c)
		slot := uint64(slotRaw) % (1 << 10)
		off := uint64(offRaw) % cs
		p := RegionBase(c) + slot*cs + off
		return Base(p) == RegionBase(c)+slot*cs && IsLowFat(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Non-low-fat pointers are their own base.
	for _, p := range []uint64{0x400000, 0x7FFF_FFEF_0000, 0x2_0000_0000} {
		if Base(p) != p || IsLowFat(p) {
			t.Errorf("pointer %#x misclassified", p)
		}
	}
}

// runCheck executes the CheckTemplate trampoline for a store through
// RBX pointing at p, returning violations and machine error.
func runCheck(t *testing.T, p uint64, trap bool) (uint64, error) {
	t.Helper()
	// The displaced instruction: mov [rbx], rax.
	a := x86.NewAsm(0x401000)
	a.MovMemReg64(x86.M(x86.RBX, 0), x86.RAX)
	instCode := a.MustFinish()
	inst, err := x86.Decode(instCode, 0x401000)
	if err != nil {
		t.Fatal(err)
	}

	tmpl := CheckTemplate{Trap: trap}
	code, err := tmpl.Emit(&inst, 0xA100000)
	if err != nil {
		t.Fatal(err)
	}
	size, err := tmpl.Size(&inst)
	if err != nil || size != len(code) {
		t.Fatalf("size mismatch: %d vs %d (%v)", size, len(code), err)
	}

	m := emu.NewMachine()
	Install(m, 0x2_0000_0100, 0)
	m.Mem.WriteBytes(0xA100000, code)
	// Landing pad after the displaced instruction: halt.
	m.Mem.WriteBytes(0x401003, []byte{0xF4})
	m.Mem.Map(p&^0xFFF, 0x2000)
	m.SetupStack(0x7ff000, 0x4000)
	m.SetReg(x86.RBX, p)
	m.SetReg(x86.RAX, 0xDEAD)
	m.RIP = 0xA100000
	runErr := m.Run(1000)
	return Violations(m), runErr
}

func TestCheckTemplatePassesLegitWrites(t *testing.T) {
	m := emu.NewMachine()
	al := &Allocator{}
	p, err := al.Alloc(m, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []uint64{p, p + 8, p + 63} {
		v, err := runCheck(t, q, false)
		if err != nil {
			t.Fatalf("write to %#x: %v", q, err)
		}
		if v != 0 {
			t.Errorf("false positive at %#x", q)
		}
	}
}

func TestCheckTemplateCatchesRedzone(t *testing.T) {
	m := emu.NewMachine()
	al := &Allocator{}
	p, err := al.Alloc(m, 64)
	if err != nil {
		t.Fatal(err)
	}
	base := Base(p)
	for _, q := range []uint64{base, base + 8, base + Redzone - 1} {
		v, err := runCheck(t, q, false)
		if err != nil {
			t.Fatalf("write to %#x: %v", q, err)
		}
		if v != 1 {
			t.Errorf("redzone write at %#x not detected (violations=%d)", q, v)
		}
	}
	// Overflow into the *next* object's redzone is also caught.
	q := base + ClassSize(3)
	if v, err := runCheck(t, q, false); err != nil || v != 1 {
		t.Errorf("overflow write at %#x: violations=%d err=%v", q, v, err)
	}
}

func TestCheckTemplateIgnoresForeignPointers(t *testing.T) {
	for _, q := range []uint64{0x500000, 0x7FF0_0000_0000} {
		v, err := runCheck(t, q, false)
		if err != nil {
			t.Fatalf("write to %#x: %v", q, err)
		}
		if v != 0 {
			t.Errorf("non-low-fat pointer %#x flagged", q)
		}
	}
}

func TestCheckTemplateTrap(t *testing.T) {
	m := emu.NewMachine()
	al := &Allocator{}
	p, _ := al.Alloc(m, 64)
	_, err := runCheck(t, Base(p), true)
	if err == nil {
		t.Fatal("trap mode did not fault on redzone write")
	}
}

func TestCheckScratchAvoidsOperands(t *testing.T) {
	a := x86.NewAsm(0)
	a.MovMemReg64(x86.MIdx(x86.RAX, x86.RCX, 8, 0), x86.RDX)
	code := a.MustFinish()
	inst, _ := x86.Decode(code, 0)
	s, ok := scratch3(&inst)
	if !ok {
		t.Fatal("scratch3 failed on a two-register operand")
	}
	for _, r := range s {
		if r == x86.RAX || r == x86.RCX {
			t.Errorf("scratch %v collides with operand", r)
		}
	}
}
