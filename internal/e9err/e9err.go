// Package e9err defines the rewriter's structured error taxonomy.
//
// Every error the pipeline can return on hostile or degenerate input
// belongs to exactly one of four classes, each a sentinel matchable
// with errors.Is:
//
//   - ErrMalformed: the input (binary, plan, spec) is structurally
//     broken — truncated headers, overflowing offsets, inconsistent
//     geometry. The client sent garbage; retrying is pointless.
//   - ErrUnsupported: the input is well-formed but outside the
//     rewriter's scope (wrong machine, wrong class, an ELF variant we
//     do not model). Also not retryable.
//   - ErrResourceLimit: the input exceeded a configured Limits bound
//     (size, patch sites, trampoline budget, phase deadline). The same
//     input may succeed under a larger budget.
//   - ErrInternal: an invariant broke — typically a panic contained by
//     a recovery boundary. These are our bugs, never the client's, and
//     carry the recovery site's stack for the operator.
//   - ErrBadSpec: a match/patch specification (the internal/lang
//     language) failed to parse or typecheck. The error carries the
//     line/column of the offending token so recipe authors can fix the
//     spec; e9served maps it to HTTP 422.
//
// The concrete *Error type adds phase, offset and machine-readable
// reason context on top of the class. The package is a leaf (standard
// library only) so every layer — elf64 parsing, the patch core, the
// public API, the server — shares one taxonomy without import cycles.
package e9err

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
)

// The four error classes. See the package comment for their contract.
var (
	ErrMalformed     = errors.New("malformed input")
	ErrUnsupported   = errors.New("unsupported input")
	ErrResourceLimit = errors.New("resource limit exceeded")
	ErrInternal      = errors.New("internal error")
	ErrBadSpec       = errors.New("bad spec")
)

// Machine-readable rejection reasons carried by ErrResourceLimit
// errors; e9served uses them as metric labels and to pick the HTTP
// status (413 for input size, 504 for deadlines, 422 otherwise).
const (
	ReasonInputTooLarge    = "input-too-large"
	ReasonTextTooLarge     = "text-too-large"
	ReasonTooManySites     = "too-many-sites"
	ReasonTrampolineBudget = "trampoline-budget"
	ReasonPhaseDeadline    = "phase-deadline"

	// ReasonMessageTooLarge labels oversized protocol messages rejected
	// by the JSON-RPC decoder (internal/rpc) before any parsing.
	ReasonMessageTooLarge = "message-too-large"

	// ReasonBadSpec labels ErrBadSpec rejections in metrics. The error's
	// Reason string appends the source position ("bad-spec:LINE:COL") so
	// position info survives even contexts that only keep the reason.
	ReasonBadSpec = "bad-spec"
)

// Error is a classified pipeline error. Class is always one of the
// four sentinels; errors.Is(err, ErrMalformed) etc. match through it,
// and errors.As(err, &e) recovers the context fields.
type Error struct {
	// Class is the taxonomy sentinel this error belongs to.
	Class error
	// Phase names the pipeline phase that failed ("parse", "disasm",
	// "match", "patch", "plan", "apply", "emit", "server").
	Phase string
	// Offset is the file offset or virtual address the failure was
	// detected at, when one is known (0 otherwise).
	Offset uint64
	// Reason is the machine-readable rejection reason for resource
	// limits (one of the Reason* constants; empty otherwise).
	Reason string
	// Msg is the human-readable description.
	Msg string
	// Err is the wrapped cause, when the failure originated in a lower
	// layer.
	Err error
	// Stack is the goroutine stack captured at a recovery boundary;
	// non-nil exactly when this error contains a recovered panic.
	Stack []byte
}

// Error implements the error interface.
func (e *Error) Error() string {
	var b strings.Builder
	if e.Phase != "" {
		b.WriteString(e.Phase)
		b.WriteString(": ")
	}
	b.WriteString(e.Class.Error())
	if e.Msg != "" {
		b.WriteString(": ")
		b.WriteString(e.Msg)
	}
	if e.Offset != 0 {
		fmt.Fprintf(&b, " (at %#x)", e.Offset)
	}
	if e.Err != nil {
		b.WriteString(": ")
		b.WriteString(e.Err.Error())
	}
	return b.String()
}

// Is makes errors.Is(err, ErrMalformed) and friends work: an *Error
// matches its class sentinel (and nothing else directly; wrapped
// causes are reached through Unwrap as usual).
func (e *Error) Is(target error) bool { return target == e.Class }

// Unwrap exposes the cause chain.
func (e *Error) Unwrap() error { return e.Err }

// Recovered reports whether this error contains a panic caught at a
// recovery boundary.
func (e *Error) Recovered() bool { return len(e.Stack) > 0 }

// Malformed builds an ErrMalformed error for phase.
func Malformed(phase, format string, args ...any) *Error {
	return &Error{Class: ErrMalformed, Phase: phase, Msg: fmt.Sprintf(format, args...)}
}

// MalformedAt is Malformed with a file offset or address.
func MalformedAt(phase string, offset uint64, format string, args ...any) *Error {
	return &Error{Class: ErrMalformed, Phase: phase, Offset: offset, Msg: fmt.Sprintf(format, args...)}
}

// Unsupported builds an ErrUnsupported error for phase.
func Unsupported(phase, format string, args ...any) *Error {
	return &Error{Class: ErrUnsupported, Phase: phase, Msg: fmt.Sprintf(format, args...)}
}

// Limit builds an ErrResourceLimit error with a machine-readable
// reason (one of the Reason* constants).
func Limit(phase, reason, format string, args ...any) *Error {
	return &Error{Class: ErrResourceLimit, Phase: phase, Reason: reason, Msg: fmt.Sprintf(format, args...)}
}

// Internal builds an ErrInternal error for phase.
func Internal(phase, format string, args ...any) *Error {
	return &Error{Class: ErrInternal, Phase: phase, Msg: fmt.Sprintf(format, args...)}
}

// BadSpec builds an ErrBadSpec error for a spec-language failure at the
// given 1-based source position. The position is carried twice: in the
// machine-readable Reason ("bad-spec:LINE:COL") and in the message
// ("line L:C: ..."), so both HTTP bodies and metric labels locate the
// offending token.
func BadSpec(phase string, line, col int, format string, args ...any) *Error {
	return &Error{
		Class:  ErrBadSpec,
		Phase:  phase,
		Reason: fmt.Sprintf("%s:%d:%d", ReasonBadSpec, line, col),
		Msg:    fmt.Sprintf("line %d:%d: %s", line, col, fmt.Sprintf(format, args...)),
	}
}

// Wrap classifies an existing error, preserving it as the cause. A nil
// cause returns nil; a cause that is already an *Error is returned
// unchanged (first classification wins — it was made closest to the
// failure).
func Wrap(class error, phase string, err error) error {
	if err == nil {
		return nil
	}
	var already *Error
	if errors.As(err, &already) {
		return err
	}
	return &Error{Class: class, Phase: phase, Err: err}
}

// FromPanic converts a recovered panic value into an ErrInternal
// carrying the current stack. A panic value that is itself a
// classified *Error keeps its class (a deliberate typed failure thrown
// across frames) but still records the stack.
func FromPanic(phase string, v any) *Error {
	stack := debug.Stack()
	if e, ok := v.(*Error); ok {
		cp := *e
		cp.Stack = stack
		return &cp
	}
	e := &Error{Class: ErrInternal, Phase: phase, Msg: fmt.Sprintf("recovered panic: %v", v), Stack: stack}
	if err, ok := v.(error); ok {
		e.Err = err
		e.Msg = "recovered panic"
	}
	return e
}

// Recover is the defense-in-depth boundary helper:
//
//	func F() (err error) {
//	        defer e9err.Recover("plan", &err)
//	        ...
//	}
//
// A panic reaching the deferred call is converted into an ErrInternal
// (stack included) written to *errp; normal returns are untouched.
func Recover(phase string, errp *error) {
	if v := recover(); v != nil {
		*errp = FromPanic(phase, v)
	}
}
