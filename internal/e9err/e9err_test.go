package e9err

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestClassMatching(t *testing.T) {
	cases := []struct {
		err   error
		class error
	}{
		{Malformed("parse", "bad magic"), ErrMalformed},
		{MalformedAt("parse", 0x40, "phdr overrun"), ErrMalformed},
		{Unsupported("parse", "machine %d", 40), ErrUnsupported},
		{Limit("patch", ReasonTooManySites, "1e9 sites"), ErrResourceLimit},
		{Internal("apply", "invariant broke"), ErrInternal},
	}
	all := []error{ErrMalformed, ErrUnsupported, ErrResourceLimit, ErrInternal}
	for _, c := range cases {
		for _, class := range all {
			got := errors.Is(c.err, class)
			want := class == c.class
			if got != want {
				t.Errorf("errors.Is(%v, %v) = %v, want %v", c.err, class, got, want)
			}
		}
	}
}

func TestWrapPreservesCauseAndClass(t *testing.T) {
	cause := errors.New("elf64: bad thing")
	err := Wrap(ErrMalformed, "parse", cause)
	if !errors.Is(err, ErrMalformed) {
		t.Fatal("wrapped error lost its class")
	}
	if !errors.Is(err, cause) {
		t.Fatal("wrapped error lost its cause")
	}
	// Wrapping an already-classified error keeps the first class.
	err2 := Wrap(ErrInternal, "plan", fmt.Errorf("outer: %w", err))
	if !errors.Is(err2, ErrMalformed) || errors.Is(err2, ErrInternal) {
		t.Fatal("re-wrap overrode the original classification")
	}
	if Wrap(ErrMalformed, "parse", nil) != nil {
		t.Fatal("Wrap(nil) should be nil")
	}
}

func TestErrorAsRecoversContext(t *testing.T) {
	base := Limit("patch", ReasonTrampolineBudget, "over budget")
	wrapped := fmt.Errorf("e9patch: %w", base)
	var e *Error
	if !errors.As(wrapped, &e) {
		t.Fatal("errors.As failed")
	}
	if e.Phase != "patch" || e.Reason != ReasonTrampolineBudget {
		t.Fatalf("lost context: %+v", e)
	}
}

func TestRecoverConvertsPanic(t *testing.T) {
	f := func() (err error) {
		defer Recover("plan", &err)
		panic("window computation out of sync")
	}
	err := f()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("recovered panic not ErrInternal: %v", err)
	}
	var e *Error
	if !errors.As(err, &e) || !e.Recovered() || len(e.Stack) == 0 {
		t.Fatalf("recovered panic lost its stack: %+v", e)
	}
	if !strings.Contains(err.Error(), "window computation") {
		t.Fatalf("panic message lost: %v", err)
	}
}

func TestFromPanicKeepsTypedErrors(t *testing.T) {
	typed := Malformed("parse", "thrown across frames")
	e := FromPanic("plan", typed)
	if !errors.Is(e, ErrMalformed) {
		t.Fatal("typed panic value lost its class")
	}
	if !e.Recovered() {
		t.Fatal("typed panic value lost the stack")
	}
	// Panicking with a plain error keeps it as the cause.
	cause := errors.New("index out of range")
	e = FromPanic("apply", cause)
	if !errors.Is(e, ErrInternal) || !errors.Is(e, cause) {
		t.Fatalf("plain error panic misclassified: %v", e)
	}
}

func TestErrorStringShape(t *testing.T) {
	err := MalformedAt("parse", 0x40, "program headers overrun file")
	s := err.Error()
	for _, want := range []string{"parse", "malformed input", "program headers", "0x40"} {
		if !strings.Contains(s, want) {
			t.Errorf("Error() = %q, missing %q", s, want)
		}
	}
}
