// Package work provides the bounded parallelism primitive shared by
// the rewrite pipeline's sharded phases (disassembly, matching, region
// patching) and, in e9served, by all concurrent requests.
//
// The design goal is composability without oversubscription: a Pool
// holds a fixed number of worker leases, and ForEach runs a parallel
// loop using the calling goroutine plus however many extra leases it
// can grab. Under load (every lease taken by other requests) a loop
// degrades gracefully to sequential execution on its own goroutine —
// it never blocks waiting for a lease, so sharing one Pool between
// request-level and shard-level parallelism cannot deadlock.
package work

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size set of worker leases. The zero value is not
// usable; a nil *Pool is valid everywhere and means "no global bound"
// (each loop may spawn up to its own width). Pools are cheap: no
// goroutines are parked, only a semaphore is held.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a Pool with n leases; n <= 0 defaults to
// GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Size returns the lease count.
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	return cap(p.sem)
}

// tryAcquire leases one worker slot without blocking.
func (p *Pool) tryAcquire() bool {
	select {
	case p.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (p *Pool) release() { <-p.sem }

// ForEach runs fn(0) … fn(n-1), each exactly once, using the calling
// goroutine plus up to width-1 helper goroutines. Helpers are leased
// from pool when it is non-nil; if no lease is available the loop
// simply runs with fewer helpers (worst case: sequentially on the
// caller). Indices are handed out dynamically, so uneven task costs
// balance across workers. ForEach returns after every call has
// completed; a panic in any invocation is re-raised on the caller.
//
// fn must be safe for concurrent invocation when width > 1. The order
// of invocations is unspecified — callers needing deterministic
// output must make fn(i) depend only on i (write into slot i of a
// result slice), never on completion order.
func ForEach(pool *Pool, width, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		panicked atomic.Pointer[panicValue]
	)
	worker := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	guarded := func() {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &panicValue{v: r})
			}
		}()
		worker()
	}

	var wg sync.WaitGroup
	for h := 0; h < width-1; h++ {
		if pool != nil && !pool.tryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if pool != nil {
				defer pool.release()
			}
			guarded()
		}()
	}
	guarded()
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(pv.v)
	}
}

// panicValue boxes a recovered panic for cross-goroutine re-raise.
type panicValue struct{ v any }
