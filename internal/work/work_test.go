package work

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, width := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 7, 64, 1000} {
			var hits sync.Map
			var count atomic.Int64
			ForEach(nil, width, n, func(i int) {
				if _, dup := hits.LoadOrStore(i, true); dup {
					t.Errorf("width=%d n=%d: index %d ran twice", width, n, i)
				}
				count.Add(1)
			})
			if got := int(count.Load()); got != n {
				t.Fatalf("width=%d n=%d: %d calls", width, n, got)
			}
		}
	}
}

func TestForEachWithPool(t *testing.T) {
	p := NewPool(4)
	if p.Size() != 4 {
		t.Fatalf("Size = %d", p.Size())
	}
	var count atomic.Int64
	ForEach(p, 16, 200, func(i int) { count.Add(1) })
	if count.Load() != 200 {
		t.Fatalf("%d calls", count.Load())
	}
}

func TestForEachSaturatedPoolDegradesToCaller(t *testing.T) {
	// Drain every lease: ForEach must still complete on the calling
	// goroutine alone instead of blocking.
	p := NewPool(2)
	p.sem <- struct{}{}
	p.sem <- struct{}{}
	var count atomic.Int64
	ForEach(p, 8, 50, func(i int) { count.Add(1) })
	if count.Load() != 50 {
		t.Fatalf("%d calls", count.Load())
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(NewPool(4), 4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
	t.Fatal("ForEach returned after panic")
}

func TestNilPoolSize(t *testing.T) {
	var p *Pool
	if p.Size() != 0 {
		t.Fatal("nil pool size")
	}
}

func TestNewPoolDefault(t *testing.T) {
	if NewPool(0).Size() < 1 {
		t.Fatal("default pool empty")
	}
}
