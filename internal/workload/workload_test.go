package workload

import (
	"bytes"
	"testing"

	"e9patch/internal/disasm"
	"e9patch/internal/elf64"
	"e9patch/internal/emu"
	"e9patch/internal/loader"
)

func init() { KernelIters = 2000 }

func TestBuildStaticDecodesCleanly(t *testing.T) {
	for _, name := range []string{"bzip2", "mcf", "lbm", "libquantum"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := BuildStatic(p, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		f, err := elf64.Parse(prog.ELF)
		if err != nil {
			t.Fatal(err)
		}
		text, addr, err := f.Text()
		if err != nil {
			t.Fatal(err)
		}
		res := disasm.Linear(text, addr)
		if res.BadBytes > len(text)/1000 {
			t.Errorf("%s: %d bad bytes in %d", name, res.BadBytes, len(text))
		}
		// Densities should be in the ballpark the profile implies.
		jumps := disasm.SelectJumps(res.Insts)
		writes := disasm.SelectHeapWrites(res.Insts)
		if len(jumps) == 0 || len(writes) == 0 {
			t.Errorf("%s: degenerate mix: %d jumps, %d writes", name, len(jumps), len(writes))
		}
	}
}

func TestBuildStaticDeterministic(t *testing.T) {
	p, _ := ProfileByName("mcf")
	a, err := BuildStatic(p, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildStatic(p, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.ELF, b.ELF) {
		t.Fatal("profile generation is not deterministic")
	}
}

func TestBuildStaticKinds(t *testing.T) {
	for _, tc := range []struct {
		name string
		pie  bool
	}{{"gcc", false}, {"vim", true}, {"libc.so", true}} {
		p, err := ProfileByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := BuildStatic(p, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		f, _ := elf64.Parse(prog.ELF)
		if f.IsPIE() != tc.pie {
			t.Errorf("%s: IsPIE = %v", tc.name, f.IsPIE())
		}
	}
}

func TestBigBSSProfile(t *testing.T) {
	p, _ := ProfileByName("zeusmp")
	prog, err := BuildStatic(p, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := elf64.Parse(prog.ELF)
	bss, ok := f.SectionByName(".bss")
	if !ok || bss.Size < 1000*1000*1000 {
		t.Errorf("zeusmp .bss = %d, want >= 1 GB", bss.Size)
	}
	// The file itself must not contain the .bss bytes.
	if len(prog.ELF) > 2*int(p.SizeMB*0.2*1e6)+1<<16 {
		t.Errorf("file size %d suggests .bss was materialised", len(prog.ELF))
	}
}

func TestChromeDataPrefix(t *testing.T) {
	p, _ := ProfileByName("Chrome")
	skip := DataPrefixBytes(p, 0.001)
	if skip == 0 {
		t.Fatal("Chrome profile must have a data prefix")
	}
}

// runKernel builds, loads and runs one kernel, returning the machine.
func runKernel(t *testing.T, arch string) *emu.Machine {
	t.Helper()
	prog, err := BuildKernel(arch, false)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(nil)
	entry, err := loader.BuildImage(m, prog.ELF, loader.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.RIP = entry
	if err := m.Run(200_000_000); err != nil {
		t.Fatalf("%s: %v", arch, err)
	}
	return m
}

func TestKernelsRun(t *testing.T) {
	for _, arch := range []string{"branchy", "memstream", "matrix", "pointer", "callheavy"} {
		m := runKernel(t, arch)
		if len(m.Output) != 1 {
			t.Errorf("%s: output = %v", arch, m.Output)
		}
		if m.Counters.Instructions < 1000 {
			t.Errorf("%s: only %d instructions", arch, m.Counters.Instructions)
		}
	}
}

func TestKernelDeterministic(t *testing.T) {
	a := runKernel(t, "branchy")
	b := runKernel(t, "branchy")
	if a.Output[0] != b.Output[0] || a.Counters.Cycles != b.Counters.Cycles {
		t.Fatal("kernel execution is not deterministic")
	}
}

func TestDromaeoSuitesRun(t *testing.T) {
	for _, s := range DromaeoSuites {
		prog, err := BuildDromaeo(s, true, 10)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMachine(nil)
		BindJit(m)
		entry, err := loader.BuildImage(m, prog.ELF, loader.Options{Bias: 0x5555_5555_4000})
		if err != nil {
			t.Fatal(err)
		}
		m.RIP = entry
		if err := m.Run(100_000_000); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(m.Output) != 1 {
			t.Errorf("%s: output = %v", s.Name, m.Output)
		}
	}
}

func TestWriteDensityOrdering(t *testing.T) {
	// Modify (85% writes) must execute more heap writes than Query
	// (6%): proxy via Mem cycles at equal iterations is noisy, so use
	// instruction counts of the write path via outputs differing —
	// instead compare store counts through the A2 instrumentation in
	// the pipeline tests; here just check both run and differ.
	q, _ := BuildDromaeo(DromaeoSuite{Name: "q", WritePct: 6}, false, 0)
	mo, _ := BuildDromaeo(DromaeoSuite{Name: "m", WritePct: 85}, false, 0)
	if bytes.Equal(q.ELF, mo.ELF) {
		t.Fatal("suites with different write density built identical binaries")
	}
}
