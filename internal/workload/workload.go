// Package workload builds the synthetic binaries that stand in for the
// paper's evaluation targets (SPEC2006, Ubuntu system binaries, Google
// Chrome, FireFox/libxul). See DESIGN.md §2: the rewriter consumes only
// machine-code bytes and instruction boundaries, so coverage, size and
// overhead results emerge from the same algorithms the paper runs, on
// inputs with matched geometry (size, PIE-ness, .bss, instruction mix).
//
// Two kinds of programs are produced:
//
//   - static profiles (BuildStatic): large, deterministic, compiler-like
//     instruction streams for the Table 1 patching statistics;
//   - runnable kernels (BuildKernel, BuildDromaeo): executable programs
//     for the Time% / Figure 4 / Figure 5 measurements, run under the
//     emulator before and after rewriting.
package workload

import (
	"fmt"

	"e9patch/internal/elf64"
	"e9patch/internal/emu"
	_ "e9patch/internal/emu/ir"  // register the "ir" engine
	_ "e9patch/internal/emu/tbc" // register the "tbc" engine
	"e9patch/internal/x86"
)

// Well-known runtime-call addresses (the libc boundary). They sit far
// outside every pun window, and are additionally reserved during
// rewriting.
const (
	RTOutput uint64 = 0x2_0000_0000
	RTMalloc uint64 = 0x2_0000_0100
	RTFree   uint64 = 0x2_0000_0200
	RTExit   uint64 = 0x2_0000_0300

	// HeapBase/HeapSize locate the emulated heap.
	HeapBase uint64 = 0x4_0000_0000
	HeapSize uint64 = 0x1000_0000

	// StackTop is the initial stack pointer region.
	StackTop  uint64 = 0x7FFF_FFF0_0000
	StackSize uint64 = 0x40_0000
)

// ReserveVA returns the address ranges a rewrite of workload binaries
// must keep free of trampolines.
func ReserveVA() [][2]uint64 {
	return [][2]uint64{
		{RTOutput &^ 0xFFF, (RTExit + 0x1000) &^ 0xFFF},
		{HeapBase, HeapBase + HeapSize},
		{StackTop - StackSize, StackTop},
	}
}

// Program is a built synthetic binary plus its runtime contract.
type Program struct {
	// Name identifies the profile or kernel.
	Name string
	// ELF is the binary image.
	ELF []byte
	// PIE records position independence.
	PIE bool
}

// buildELF wraps the assembler output into an ELF binary.
func buildELF(name string, pie bool, text []byte, data []byte, bss uint64) (*Program, error) {
	return buildELFShared(name, pie, false, text, data, bss)
}

// buildELFShared is buildELF with the .so switch: shared builds an
// ET_DYN image with a zero entry point — a plain shared library rather
// than a PIE executable.
func buildELFShared(name string, pie, shared bool, text []byte, data []byte, bss uint64) (*Program, error) {
	raw, err := elf64.Build(elf64.BuildSpec{
		PIE:      pie,
		Shared:   shared,
		Text:     text,
		EntryOff: 0,
		Data:     data,
		BSSSize:  bss,
	})
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", name, err)
	}
	return &Program{Name: name, ELF: raw, PIE: pie || shared}, nil
}

// MallocBinding selects the allocator bound at RTMalloc.
type MallocBinding func(m *emu.Machine)

// BindStandard binds the plain bump allocator (the glibc analogue).
func BindStandard(m *emu.Machine) {
	emu.BindMalloc(m, RTMalloc, emu.NewBumpAllocator(HeapBase, HeapSize))
	emu.BindNop(m, RTFree)
}

// Engine selects the execution engine NewMachine installs, by registry
// name (emu.EngineNames): "tbc" (decode-once translation cache, the
// default), "ir" (IR-lifting engine with lazy flags), or "interp" (the
// decode-per-step interpreter). All engines are observationally
// identical — they only differ in speed — so every measurement is
// engine-invariant; cmd/e9bench's -engine flag sets this.
var Engine = "tbc"

// NewMachine prepares a machine with the standard runtime bindings and
// stack. The caller loads a binary and sets RIP.
func NewMachine(bind MallocBinding) *emu.Machine {
	m := emu.NewMachine()
	eng, err := emu.NewEngineByName(Engine)
	if err != nil {
		panic(err) // Engine is set programmatically; a bad name is a bug
	}
	m.Engine = eng
	emu.BindOutput(m, RTOutput)
	emu.BindExit(m, RTExit)
	if bind == nil {
		bind = BindStandard
	}
	bind(m)
	m.SetupStack(StackTop, StackSize)
	return m
}

// rng is a small deterministic PRNG (splitmix64) so profiles are
// reproducible across runs and platforms.
type rng struct{ s uint64 }

func newRNG(seed string) *rng {
	// FNV-1a over the seed string.
	h := uint64(14695981039346656037)
	for i := 0; i < len(seed); i++ {
		h ^= uint64(seed[i])
		h *= 1099511628211
	}
	return &rng{s: h}
}

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// pick returns an index according to integer weights.
func (r *rng) pick(weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	v := r.intn(total)
	for i, w := range weights {
		if v < w {
			return i
		}
		v -= w
	}
	return len(weights) - 1
}

// callRT emits a runtime call through r11 (position independent and
// reachable from any address).
func callRT(a *x86.Asm, addr uint64) {
	a.MovRegImm64(x86.R11, addr)
	a.CallReg(x86.R11)
}
