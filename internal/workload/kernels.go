package workload

import (
	"fmt"

	"e9patch/internal/x86"
)

// Runnable kernels. Each SPEC row maps to an archetype whose dynamic
// mix (branch density, heap-write density, call density) matches the
// row's character; Time% is measured by running the kernel before and
// after rewriting on identical inputs (DESIGN.md §2).

// KernelIters scales all kernel iteration counts (tests shrink it).
var KernelIters = 20000

// KernelTuning adds per-benchmark dynamic-density variation to an
// archetype: extra conditional branches and heap stores per loop
// iteration, derived from the row's published static densities.
type KernelTuning struct {
	ExtraBranches int
	ExtraStores   int
}

// TuningFor derives kernel tuning from a profile's instruction mix.
func TuningFor(p Profile) KernelTuning {
	m := deriveMix(&p)
	return KernelTuning{
		ExtraBranches: clampI(m.jumpW/35, 0, 6),
		ExtraStores:   clampI(m.storeW/60, 0, 4),
	}
}

// tuning in effect while emitting (plumbed via the emit helpers).
var curTuning KernelTuning

// emitExtras emits the tuning's additional per-iteration work: bit-test
// branches on the checksum and strided heap stores. Clobbers r10/r11.
func emitExtras(a *x86.Asm) {
	for i := 0; i < curTuning.ExtraBranches; i++ {
		skip := a.NewLabel()
		a.MovRegReg64(x86.R10, x86.R13)
		a.ShrRegImm64(x86.R10, uint8(3+2*i))
		a.AndRegImm64(x86.R10, 1)
		a.CmpRegImm64(x86.R10, 0)
		a.JccShort(x86.CondE, skip)
		a.AddRegImm64(x86.R13, int32(i)+3)
		a.Bind(skip)
	}
	for i := 0; i < curTuning.ExtraStores; i++ {
		a.MovRegReg64(x86.R10, x86.R13)
		a.AndRegImm64(x86.R10, 0xFF8)
		a.MovMemReg64(x86.MIdx(x86.R14, x86.R10, 1, int32(8*i)), x86.R13)
	}
}

// BuildKernel builds the runnable program for an archetype.
func BuildKernel(arch string, pie bool) (*Program, error) {
	return BuildKernelTuned(arch, pie, KernelTuning{})
}

// BuildKernelTuned builds an archetype with per-row density tuning.
func BuildKernelTuned(arch string, pie bool, tune KernelTuning) (*Program, error) {
	base := elfTextAddr(KindExec)
	if pie {
		base = elfTextAddr(KindPIE)
	}
	curTuning = tune
	defer func() { curTuning = KernelTuning{} }()
	a := x86.NewAsm(base)
	switch arch {
	case "branchy":
		emitBranchy(a, KernelIters)
	case "memstream":
		emitMemstream(a, KernelIters*2)
	case "matrix":
		emitMatrix(a, KernelIters/40)
	case "pointer":
		emitPointer(a, KernelIters)
	case "callheavy":
		emitCallHeavy(a, KernelIters)
	default:
		return nil, fmt.Errorf("workload: unknown kernel %q", arch)
	}
	text, err := a.Finish()
	if err != nil {
		return nil, fmt.Errorf("workload kernel %s: %w", arch, err)
	}
	return buildELF("kernel-"+arch, pie, text, make([]byte, 1024), 0x4000)
}

// lcgStep emits one step of a 64-bit LCG in reg, clobbering r10.
func lcgStep(a *x86.Asm, reg x86.Reg) {
	a.MovRegImm64(x86.R10, 6364136223846793005)
	a.ImulRegReg64(reg, x86.R10)
	a.MovRegImm64(x86.R10, 1442695040888963407)
	a.AddRegReg64(reg, x86.R10)
}

// prologue allocates the kernel's working buffer into r12, a separate
// scratch buffer for the tuning extras into r14, and zeroes the
// checksum register r13.
func prologue(a *x86.Asm, bufSize uint32) {
	a.MovRegImm32(x86.RDI, bufSize)
	callRT(a, RTMalloc)
	a.MovRegReg64(x86.R12, x86.RAX)
	a.MovRegImm32(x86.RDI, 0x2000)
	callRT(a, RTMalloc)
	a.MovRegReg64(x86.R14, x86.RAX)
	a.XorRegReg32(x86.R13, x86.R13)
}

// epilogue outputs the checksum in r13 and returns (halting via the
// stack sentinel).
func epilogue(a *x86.Asm) {
	a.MovRegReg64(x86.RDI, x86.R13)
	callRT(a, RTOutput)
	a.MovRegReg64(x86.RAX, x86.R13)
	a.Ret()
}

// emitBranchy models perlbench/gcc/gobmk/sjeng: unpredictable
// data-dependent branches with occasional heap writes.
func emitBranchy(a *x86.Asm, iters int) {
	prologue(a, 1<<16)
	a.MovRegImm64(x86.RSI, 0x1234_5678_9ABC_DEF1) // lcg state
	a.XorRegReg32(x86.RCX, x86.RCX)               // i
	top := a.NewLabel()
	a.Bind(top)
	lcgStep(a, x86.RSI)
	a.MovRegReg64(x86.RAX, x86.RSI)
	a.ShrRegImm64(x86.RAX, 33)

	odd := a.NewLabel()
	join := a.NewLabel()
	a.TestRegReg64(x86.RAX, x86.RAX) // parity via low bit comparison
	a.MovRegReg64(x86.RDX, x86.RAX)
	a.AndRegImm64(x86.RDX, 1)
	a.CmpRegImm64(x86.RDX, 0)
	a.Jcc(x86.CondNE, odd)
	a.AddRegReg64(x86.R13, x86.RAX)
	a.Jmp(join)
	a.Bind(odd)
	a.SubRegReg64(x86.R13, x86.RAX)
	// Heap write at a pseudo-random slot.
	a.MovRegReg64(x86.RDX, x86.RAX)
	a.AndRegImm64(x86.RDX, 0x1FF8)
	a.MovMemReg64(x86.MIdx(x86.R12, x86.RDX, 1, 0), x86.R13)
	a.Bind(join)

	// Second-level branch on a different bit.
	deep := a.NewLabel()
	a.MovRegReg64(x86.RDX, x86.RAX)
	a.AndRegImm64(x86.RDX, 6)
	a.CmpRegImm64(x86.RDX, 4)
	a.JccShort(x86.CondNE, deep)
	a.AddRegImm64(x86.R13, 7)
	a.Bind(deep)

	emitExtras(a)
	a.AddRegImm64(x86.RCX, 1)
	a.CmpRegImm64(x86.RCX, int32(iters))
	a.Jcc(x86.CondL, top)
	epilogue(a)
}

// emitMemstream models bzip2/hmmer/h264ref/lbm: streaming stores with
// periodic reloads.
func emitMemstream(a *x86.Asm, iters int) {
	prologue(a, 1<<18)
	a.XorRegReg32(x86.RCX, x86.RCX) // i
	a.MovRegImm64(x86.RAX, 0x9E3779B97F4A7C15)
	top := a.NewLabel()
	a.Bind(top)
	a.MovRegReg64(x86.RDX, x86.RCX)
	a.AndRegImm64(x86.RDX, 0x3FFF8)
	a.MovMemReg64(x86.MIdx(x86.R12, x86.RDX, 1, 0), x86.RAX) // stream store
	a.AddRegMem64(x86.R13, x86.MIdx(x86.R12, x86.RDX, 1, 0)) // reload+sum
	a.MovMemReg32(x86.MIdx(x86.R12, x86.RDX, 1, 4), x86.RCX) // second store
	a.AddRegReg64(x86.RAX, x86.R13)
	emitExtras(a)
	a.AddRegImm64(x86.RCX, 8)
	a.CmpRegImm64(x86.RCX, int32(iters*8))
	a.Jcc(x86.CondL, top)
	epilogue(a)
}

// emitMatrix models the Fortran rows: nested loops, dense stores, few
// branches.
func emitMatrix(a *x86.Asm, rows int) {
	const cols = 64
	prologue(a, 1<<18)
	a.XorRegReg32(x86.RSI, x86.RSI) // row
	rowTop := a.NewLabel()
	a.Bind(rowTop)
	a.XorRegReg32(x86.RCX, x86.RCX) // col
	a.MovRegReg64(x86.RAX, x86.RSI)
	colTop := a.NewLabel()
	a.Bind(colTop)
	// a[row*cols+col] = rax; checksum += rax; unrolled x2.
	a.MovRegReg64(x86.RDX, x86.RSI)
	a.ShlRegImm64(x86.RDX, 9) // row*cols*8
	a.AddRegReg64(x86.RDX, x86.RCX)
	a.AndRegImm64(x86.RDX, 0x3FFF8)
	a.MovMemReg64(x86.MIdx(x86.R12, x86.RDX, 1, 0), x86.RAX)
	a.ImulRegRegImm32(x86.RAX, x86.RAX, 33)
	a.AddRegImm64(x86.RAX, 17)
	a.AddRegReg64(x86.R13, x86.RAX)
	a.MovMemReg32(x86.MIdx(x86.R12, x86.RDX, 1, 8), x86.RAX)
	emitExtras(a)
	a.AddRegImm64(x86.RCX, 16)
	a.CmpRegImm64(x86.RCX, cols*8)
	a.Jcc(x86.CondL, colTop)
	a.AddRegImm64(x86.RSI, 1)
	a.CmpRegImm64(x86.RSI, int32(rows))
	a.Jcc(x86.CondL, rowTop)
	epilogue(a)
}

// emitPointer models mcf/omnetpp/astar: pointer chasing over a linked
// structure built in the heap.
func emitPointer(a *x86.Asm, iters int) {
	const nodes = 1024
	prologue(a, nodes*16+64)
	// Build a strided cyclic list: node i -> node (i*7+1) % nodes.
	a.XorRegReg32(x86.RCX, x86.RCX)
	build := a.NewLabel()
	a.Bind(build)
	a.ImulRegRegImm32(x86.RDX, x86.RCX, 7)
	a.AddRegImm64(x86.RDX, 1)
	a.AndRegImm64(x86.RDX, nodes-1)
	a.ShlRegImm64(x86.RDX, 4)
	a.Lea(x86.RAX, x86.MIdx(x86.R12, x86.RDX, 1, 0)) // &node[next]
	a.MovRegReg64(x86.RDX, x86.RCX)
	a.ShlRegImm64(x86.RDX, 4)
	a.MovMemReg64(x86.MIdx(x86.R12, x86.RDX, 1, 0), x86.RAX) // node[i].next
	a.MovMemReg64(x86.MIdx(x86.R12, x86.RDX, 1, 8), x86.RCX) // node[i].val
	a.AddRegImm64(x86.RCX, 1)
	a.CmpRegImm64(x86.RCX, nodes)
	a.Jcc(x86.CondL, build)

	// Chase and mutate.
	a.MovRegReg64(x86.RBX, x86.R12) // cursor
	a.XorRegReg32(x86.RCX, x86.RCX)
	chase := a.NewLabel()
	a.Bind(chase)
	a.MovRegMem64(x86.RAX, x86.M(x86.RBX, 8)) // val
	a.AddRegReg64(x86.R13, x86.RAX)
	a.AddRegImm64(x86.RAX, 3)
	a.MovMemReg64(x86.M(x86.RBX, 8), x86.RAX) // heap write
	a.MovRegMem64(x86.RBX, x86.M(x86.RBX, 0)) // next
	skip := a.NewLabel()
	a.TestRegReg64(x86.RAX, x86.RAX)
	a.JccShort(x86.CondS, skip)
	a.AddRegImm64(x86.R13, 1)
	a.Bind(skip)
	emitExtras(a)
	a.AddRegImm64(x86.RCX, 1)
	a.CmpRegImm64(x86.RCX, int32(iters))
	a.Jcc(x86.CondL, chase)
	epilogue(a)
}

// emitCallHeavy models dealII/povray/xalancbmk: many small virtual
// calls, each doing a little work including a store.
func emitCallHeavy(a *x86.Asm, iters int) {
	prologue(a, 1<<14)
	over := a.NewLabel()
	a.Jmp(over)

	// fn1(rdi=index): buffer[index] += index; returns index*3.
	fn1 := a.NewLabel()
	a.Bind(fn1)
	a.MovRegReg64(x86.RDX, x86.RDI)
	a.AndRegImm64(x86.RDX, 0xFF8)
	a.AddMemReg64(x86.MIdx(x86.R12, x86.RDX, 1, 0), x86.RDI)
	a.Lea(x86.RAX, x86.MIdx(x86.RDI, x86.RDI, 2, 0))
	a.Ret()

	// fn2(rdi): tail work with a byte store.
	fn2 := a.NewLabel()
	a.Bind(fn2)
	a.MovRegReg64(x86.RDX, x86.RDI)
	a.AndRegImm64(x86.RDX, 0xFFF)
	a.MovMemReg8(x86.MIdx(x86.R12, x86.RDX, 1, 0), x86.RAX)
	a.MovRegReg64(x86.RAX, x86.RDI)
	a.NotReg64(x86.RAX)
	a.Ret()

	a.Bind(over)
	a.XorRegReg32(x86.RCX, x86.RCX)
	top := a.NewLabel()
	a.Bind(top)
	a.MovRegReg64(x86.RDI, x86.RCX)
	a.Call(fn1)
	a.AddRegReg64(x86.R13, x86.RAX)
	a.MovRegReg64(x86.RDI, x86.RAX)
	a.Call(fn2)
	a.XorRegReg64(x86.R13, x86.RAX)
	emitExtras(a)
	a.AddRegImm64(x86.RCX, 1)
	a.CmpRegImm64(x86.RCX, int32(iters))
	a.Jcc(x86.CondL, top)
	epilogue(a)
}
