package workload

import (
	"bytes"
	"testing"

	"e9patch/internal/disasm"
	"e9patch/internal/elf64"
)

// TestModernProfiles covers the CET and DSO rows: the CET text carries
// endbr64 landing pads at function prologues, the DSO rows build plain
// ET_DYN shared objects with no entry point, and everything still
// decodes cleanly.
func TestModernProfiles(t *testing.T) {
	if len(ModernProfiles) == 0 {
		t.Fatal("no modern profiles registered")
	}
	sawCET, sawDSO := false, false
	for _, p := range ModernProfiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := BuildStatic(p, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			f, err := elf64.Parse(prog.ELF)
			if err != nil {
				t.Fatal(err)
			}
			text, addr, err := f.Text()
			if err != nil {
				t.Fatal(err)
			}
			res := disasm.Linear(text, addr)
			if res.BadBytes > len(text)/1000 {
				t.Errorf("%d bad bytes in %d", res.BadBytes, len(text))
			}

			pads := bytes.Count(text, []byte{0xF3, 0x0F, 0x1E, 0xFA})
			if p.CET {
				sawCET = true
				if pads == 0 {
					t.Error("CET profile has no endbr64 pads")
				}
				// The superset-cet frontend finds the anchors.
				_, stats, ok := disasm.RecoverCancel(disasm.ModeSupersetCET, text, addr, 2, nil, nil)
				if !ok || stats == nil {
					t.Fatal("superset-cet recovery failed")
				}
				if stats.Anchors < pads {
					t.Errorf("anchors %d < %d pads", stats.Anchors, pads)
				}
				if stats.Kept == 0 || stats.Kept > stats.Valid {
					t.Errorf("degenerate stats: %+v", stats)
				}
			} else if pads != 0 {
				t.Errorf("non-CET profile emitted %d endbr64 pads", pads)
			}

			if p.DSO {
				sawDSO = true
				if !f.IsDSO() {
					t.Error("DSO profile did not build an entry-less ET_DYN")
				}
				if !prog.PIE {
					t.Error("DSO program not marked position independent")
				}
			} else if f.IsDSO() {
				t.Error("non-DSO profile built a DSO")
			}
		})
	}
	if !sawCET || !sawDSO {
		t.Errorf("profile coverage: CET=%v DSO=%v", sawCET, sawDSO)
	}

	// The modern rows ride along in the full profile sweep.
	all := AllProfiles()
	found := 0
	for _, p := range all {
		for _, m := range ModernProfiles {
			if p.Name == m.Name {
				found++
			}
		}
	}
	if found != len(ModernProfiles) {
		t.Errorf("AllProfiles carries %d of %d modern rows", found, len(ModernProfiles))
	}
}

// TestPaperSharedRowsUnchanged pins the deliberate compatibility
// choice: the paper-era KindShared rows (libc.so, …) keep building as
// PIE-shaped executables so Table-1 numbers are unperturbed; only
// DSO-flagged rows switch to entry-0 shared objects.
func TestPaperSharedRowsUnchanged(t *testing.T) {
	for _, p := range SystemProfiles {
		if p.Kind != KindShared || p.DSO {
			continue
		}
		prog, err := BuildStatic(p, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		f, err := elf64.Parse(prog.ELF)
		if err != nil {
			t.Fatal(err)
		}
		if f.IsDSO() {
			t.Fatalf("%s: paper-era shared row became an entry-less DSO", p.Name)
		}
		return // one row suffices
	}
	t.Skip("no paper-era KindShared row")
}
