package workload

import (
	"fmt"

	"e9patch/internal/x86"
)

// Kind classifies a binary the way Table 1 does: fixed-address
// executables, position-independent executables, and shared objects
// (whose negative rel32 range the dynamic linker occupies, §5.1).
type Kind int

// Binary kinds.
const (
	KindExec Kind = iota
	KindPIE
	KindShared
)

// Profile describes one Table 1 row: its observable geometry (size,
// kind, .bss) and the paper-reported patch-location densities and
// baseline rates the instruction mix is derived from. Deriving the mix
// from the row's published #Loc and Base%% is the calibration step; the
// measured T1/T2/T3/Succ/Size columns then come entirely out of our
// pipeline.
type Profile struct {
	Name   string
	SizeMB float64
	Kind   Kind
	// BSSMB is the static .bss allocation (gamess/zeusmp: limitation L1).
	BSSMB float64
	// LocsA1/LocsA2 are the paper's patch-location counts.
	LocsA1, LocsA2 int
	// BaseA1/BaseA2 are the paper's baseline (B1+B2) percentages.
	BaseA1, BaseA2 float64
	// DataInText marks Chrome-style mixed code/data sections.
	DataInText bool
	// Fortran marks SPECfp-style numeric code (denser stores).
	Fortran bool
	// CET marks a binary built with control-flow enforcement: every
	// function prologue carries an endbr64 landing pad, the anchors the
	// superset-cet frontend prunes from.
	CET bool
	// DSO marks a plain shared library (ET_DYN with a zero entry
	// point) rather than a PIE executable. Only meaningful for
	// KindShared rows; the paper-era KindShared rows model .so address
	// geometry but still build as PIE-shaped ELFs for compatibility.
	DSO bool
	// Kernel names the runnable kernel archetype for Time% rows.
	Kernel string
}

// IsSPEC reports whether the row is part of the SPEC2006 set (the rows
// with Time% measurements).
func (p *Profile) IsSPEC() bool { return p.Kernel != "" }

// SPECProfiles are the 28 SPEC2006 rows of Table 1 (481.wrf excluded,
// as in the paper).
var SPECProfiles = []Profile{
	{Name: "perlbench", SizeMB: 1.25, LocsA1: 36821, BaseA1: 86.88, LocsA2: 7522, BaseA2: 71.16, Kernel: "branchy"},
	{Name: "bzip2", SizeMB: 0.07, LocsA1: 1484, BaseA1: 79.85, LocsA2: 1044, BaseA2: 68.39, Kernel: "memstream"},
	{Name: "gcc", SizeMB: 3.77, LocsA1: 97901, BaseA1: 85.66, LocsA2: 14328, BaseA2: 70.60, Kernel: "branchy"},
	{Name: "bwaves", SizeMB: 0.08, Fortran: true, LocsA1: 314, BaseA1: 71.34, LocsA2: 1168, BaseA2: 92.55, Kernel: "matrix"},
	{Name: "gamess", SizeMB: 12.22, Fortran: true, BSSMB: 1400, LocsA1: 125620, BaseA1: 59.91, LocsA2: 279592, BaseA2: 87.58, Kernel: "matrix"},
	{Name: "mcf", SizeMB: 0.02, LocsA1: 295, BaseA1: 68.47, LocsA2: 220, BaseA2: 75.91, Kernel: "pointer"},
	{Name: "milc", SizeMB: 0.14, LocsA1: 1940, BaseA1: 80.62, LocsA2: 699, BaseA2: 84.84, Kernel: "matrix"},
	{Name: "zeusmp", SizeMB: 0.52, Fortran: true, BSSMB: 1100, LocsA1: 3191, BaseA1: 53.74, LocsA2: 6106, BaseA2: 82.61, Kernel: "matrix"},
	{Name: "gromacs", SizeMB: 1.20, Fortran: true, LocsA1: 12058, BaseA1: 80.19, LocsA2: 16940, BaseA2: 93.87, Kernel: "matrix"},
	{Name: "cactusADM", SizeMB: 0.91, Fortran: true, LocsA1: 12847, BaseA1: 78.94, LocsA2: 5420, BaseA2: 86.85, Kernel: "matrix"},
	{Name: "leslie3d", SizeMB: 0.18, Fortran: true, LocsA1: 2584, BaseA1: 44.43, LocsA2: 2761, BaseA2: 91.34, Kernel: "matrix"},
	{Name: "namd", SizeMB: 0.33, LocsA1: 4879, BaseA1: 73.42, LocsA2: 2498, BaseA2: 71.46, Kernel: "matrix"},
	{Name: "gobmk", SizeMB: 4.03, LocsA1: 17912, BaseA1: 75.88, LocsA2: 2777, BaseA2: 79.33, Kernel: "branchy"},
	{Name: "dealII", SizeMB: 4.20, LocsA1: 61317, BaseA1: 71.31, LocsA2: 25590, BaseA2: 80.47, Kernel: "callheavy"},
	{Name: "soplex", SizeMB: 0.49, LocsA1: 10125, BaseA1: 79.72, LocsA2: 4188, BaseA2: 83.05, Kernel: "matrix"},
	{Name: "povray", SizeMB: 1.19, LocsA1: 20520, BaseA1: 86.92, LocsA2: 9377, BaseA2: 84.50, Kernel: "callheavy"},
	{Name: "calculix", SizeMB: 2.17, Fortran: true, LocsA1: 30343, BaseA1: 70.48, LocsA2: 32197, BaseA2: 85.62, Kernel: "matrix"},
	{Name: "hmmer", SizeMB: 0.33, LocsA1: 6748, BaseA1: 77.71, LocsA2: 3061, BaseA2: 75.11, Kernel: "memstream"},
	{Name: "sjeng", SizeMB: 0.16, LocsA1: 3473, BaseA1: 83.01, LocsA2: 683, BaseA2: 84.77, Kernel: "branchy"},
	{Name: "GemsFDTD", SizeMB: 0.58, Fortran: true, LocsA1: 9120, BaseA1: 41.62, LocsA2: 10345, BaseA2: 93.23, Kernel: "matrix"},
	{Name: "libquantum", SizeMB: 0.05, LocsA1: 732, BaseA1: 75.55, LocsA2: 186, BaseA2: 76.34, Kernel: "memstream"},
	{Name: "h264ref", SizeMB: 0.58, LocsA1: 9920, BaseA1: 80.30, LocsA2: 4981, BaseA2: 81.87, Kernel: "memstream"},
	{Name: "tonto", SizeMB: 6.21, Fortran: true, LocsA1: 48247, BaseA1: 52.65, LocsA2: 164788, BaseA2: 90.05, Kernel: "matrix"},
	{Name: "lbm", SizeMB: 0.02, LocsA1: 106, BaseA1: 67.92, LocsA2: 111, BaseA2: 93.69, Kernel: "memstream"},
	{Name: "omnetpp", SizeMB: 0.79, LocsA1: 9568, BaseA1: 78.08, LocsA2: 5020, BaseA2: 74.12, Kernel: "pointer"},
	{Name: "astar", SizeMB: 0.05, LocsA1: 769, BaseA1: 78.54, LocsA2: 491, BaseA2: 72.91, Kernel: "pointer"},
	{Name: "sphinx3", SizeMB: 0.21, LocsA1: 3500, BaseA1: 79.20, LocsA2: 1159, BaseA2: 73.94, Kernel: "matrix"},
	{Name: "xalancbmk", SizeMB: 5.99, LocsA1: 81285, BaseA1: 75.66, LocsA2: 32761, BaseA2: 79.51, Kernel: "callheavy"},
}

// SystemProfiles are the Ubuntu system binary and library rows.
var SystemProfiles = []Profile{
	{Name: "inkscape", SizeMB: 15.44, Kind: KindPIE, LocsA1: 195731, BaseA1: 97.83, LocsA2: 105431, BaseA2: 99.96},
	{Name: "gimp", SizeMB: 5.75, LocsA1: 71321, BaseA1: 71.75, LocsA2: 15730, BaseA2: 84.83},
	{Name: "vim", SizeMB: 2.44, Kind: KindPIE, LocsA1: 72221, BaseA1: 99.18, LocsA2: 13279, BaseA2: 99.92},
	{Name: "git", SizeMB: 1.87, LocsA1: 44441, BaseA1: 80.06, LocsA2: 9072, BaseA2: 68.06},
	{Name: "pdflatex", SizeMB: 0.91, LocsA1: 22105, BaseA1: 82.05, LocsA2: 6060, BaseA2: 70.61},
	{Name: "xterm", SizeMB: 0.54, LocsA1: 11593, BaseA1: 79.12, LocsA2: 2681, BaseA2: 89.11},
	{Name: "evince", SizeMB: 0.42, Kind: KindPIE, LocsA1: 3636, BaseA1: 99.59, LocsA2: 716, BaseA2: 99.86},
	{Name: "make", SizeMB: 0.21, LocsA1: 4807, BaseA1: 79.34, LocsA2: 1383, BaseA2: 74.98},
	{Name: "libc.so", SizeMB: 1.87, Kind: KindShared, LocsA1: 52393, BaseA1: 81.19, LocsA2: 24686, BaseA2: 74.32},
	{Name: "libc++.so", SizeMB: 1.57, Kind: KindShared, LocsA1: 20593, BaseA1: 75.14, LocsA2: 15442, BaseA2: 67.56},
}

// BrowserProfiles are the scalability rows (>100MB binaries).
var BrowserProfiles = []Profile{
	{Name: "Chrome", SizeMB: 152.51, Kind: KindPIE, DataInText: true, LocsA1: 3800565, BaseA1: 93.20, LocsA2: 2624800, BaseA2: 99.38},
	{Name: "FireFox", SizeMB: 0.52, Kind: KindPIE, LocsA1: 13971, BaseA1: 98.02, LocsA2: 7355, BaseA2: 99.90},
	{Name: "libxul.so", SizeMB: 115.03, Kind: KindShared, LocsA1: 1463369, BaseA1: 68.55, LocsA2: 666109, BaseA2: 75.72},
}

// ModernProfiles are current-toolchain rows beyond the paper's corpus:
// CET-enabled binaries (every function prologue starts with an endbr64
// landing pad) and plain shared libraries with no entry point. They
// exercise the superset-cet recovery frontend and first-class .so
// inputs alongside the Table 1 reproduction.
var ModernProfiles = []Profile{
	{Name: "nginx-cet", SizeMB: 1.30, Kind: KindPIE, CET: true, LocsA1: 28400, BaseA1: 97.90, LocsA2: 9100, BaseA2: 99.60},
	{Name: "libcrypto-cet.so", SizeMB: 2.10, Kind: KindShared, CET: true, DSO: true, LocsA1: 30700, BaseA1: 74.80, LocsA2: 21400, BaseA2: 70.10},
	{Name: "libz.so", SizeMB: 0.12, Kind: KindShared, DSO: true, LocsA1: 2300, BaseA1: 76.20, LocsA2: 1100, BaseA2: 69.40},
}

// AllProfiles returns every Table 1 row in paper order, followed by the
// modern CET/DSO rows.
func AllProfiles() []Profile {
	var out []Profile
	out = append(out, SPECProfiles...)
	out = append(out, SystemProfiles...)
	out = append(out, BrowserProfiles...)
	out = append(out, ModernProfiles...)
	return out
}

// ProfileByName finds a profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range AllProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// mix is the derived instruction-mix parameters.
type mix struct {
	// jumpW/storeW are per-instruction probabilities (x1000) of
	// emitting an A1 jump or an A2 heap store.
	jumpW, storeW int
	// shortJcc is the fraction (x100) of jumps emitted in punnable
	// short form; smallStore likewise for stores shorter than 5 bytes.
	shortJcc, smallStore int
}

// aveInstLen is the approximate mean instruction length the generator
// produces; used to convert per-MB location counts into probabilities.
const aveInstLen = 4.3

// deriveMix converts a profile's published densities into generator
// weights. pBase is the probability a punned (non-B1) jump finds a
// valid window, which depends on the binary kind's address geometry.
func deriveMix(p *Profile) mix {
	instPerMB := 1e6 / aveInstLen
	var m mix
	if p.SizeMB > 0 {
		m.jumpW = clampI(int(1000*float64(p.LocsA1)/p.SizeMB/instPerMB), 2, 400)
		m.storeW = clampI(int(1000*float64(p.LocsA2)/p.SizeMB/instPerMB), 2, 400)
	}
	pBase := 0.45 // non-PIE / shared: negative rel32 unusable
	if p.Kind == KindPIE {
		pBase = 0.95
	}
	m.shortJcc = clampI(int((100-p.BaseA1)/(100*(1-pBase))*100), 3, 96)
	m.smallStore = clampI(int((100-p.BaseA2)/(100*(1-pBase))*100), 3, 97)
	return m
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Mix exposes the generator's tunable encoding fractions: the share of
// jumps emitted in short (punnable) form and the share of stores
// shorter than five bytes. eval's pilot calibration adjusts these so
// the measured Base% matches the paper's geometry.
type Mix struct {
	ShortJcc   int // percent
	SmallStore int // percent
}

// MixFor returns the analytically derived mix for a profile.
func MixFor(p Profile) Mix {
	m := deriveMix(&p)
	return Mix{ShortJcc: m.shortJcc, SmallStore: m.smallStore}
}

// BuildStatic generates the static binary for a profile at the given
// scale (1.0 = the paper's full size). The output is deterministic in
// (profile name, scale).
func BuildStatic(p Profile, scale float64) (*Program, error) {
	return BuildStaticAs(p, scale, p.Kind)
}

// BuildStaticAs builds a profile's binary with its native instruction
// mix but the given ELF kind — the §6.1 "recompiled in PIE mode"
// experiment (gamess/zeusmp reach 100% coverage as PIE).
func BuildStaticAs(p Profile, scale float64, kind Kind) (*Program, error) {
	return BuildStaticMix(p, scale, kind, MixFor(p))
}

// BuildStaticMix builds with explicit encoding fractions.
func BuildStaticMix(p Profile, scale float64, kind Kind, mo Mix) (*Program, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("workload: scale %v <= 0", scale)
	}
	textSize := int(p.SizeMB * scale * 1e6)
	if textSize < 4096 {
		textSize = 4096
	}
	text, err := generateText(p, textSize, kind, mo)
	if err != nil {
		return nil, err
	}
	prog, err := buildELFShared(p.Name, kind != KindExec, p.DSO && kind != KindExec, text, make([]byte, 2048), uint64(p.BSSMB*1e6))
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// generateText emits textSize bytes of the profile's instruction mix
// (including any data-in-text prefix) without wrapping them in an ELF.
func generateText(p Profile, textSize int, kind Kind, mo Mix) ([]byte, error) {
	m := deriveMix(&p)
	m.shortJcc = clampI(mo.ShortJcc, 1, 99)
	m.smallStore = clampI(mo.SmallStore, 1, 99)
	r := newRNG(p.Name)

	base := elfTextAddr(kind)
	a := x86.NewAsm(base)

	// Chrome-style data-in-text prefix (~2.5% of the section), skipped
	// by the frontend via SkipPrefix.
	if p.DataInText {
		prefix := textSize / 40
		for i := 0; i < prefix; i++ {
			a.Raw(byte(r.next()))
		}
	}

	g := &codegen{a: a, r: r, m: m, fortran: p.Fortran, cet: p.CET}
	g.funcStarts = append(g.funcStarts, a.Addr())
	if g.cet {
		a.Endbr64()
	}
	for a.Len() < textSize {
		g.emitOne()
	}
	text, err := a.Finish()
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", p.Name, err)
	}
	return text, nil
}

// DataPrefixBytes reports the SkipPrefix value for a profile (nonzero
// only for Chrome-style mixed sections).
func DataPrefixBytes(p Profile, scale float64) uint64 {
	if !p.DataInText {
		return 0
	}
	textSize := int(p.SizeMB * scale * 1e6)
	if textSize < 4096 {
		textSize = 4096
	}
	return uint64(textSize / 40)
}

func elfTextAddr(k Kind) uint64 {
	if k == KindExec {
		return 0x400000 + 0x1000
	}
	return 0x1000
}

// codegen emits a compiler-like instruction stream.
type codegen struct {
	a       *x86.Asm
	r       *rng
	m       mix
	fortran bool
	// cet emits an endbr64 landing pad at every function start, the
	// way -fcf-protection compilers do.
	cet bool

	// funcStarts and recent track branch-target material.
	funcStarts []uint64
	recent     []uint64
}

var gpRegs = []x86.Reg{
	x86.RAX, x86.RCX, x86.RDX, x86.RBX, x86.RSI, x86.RDI,
	x86.R8, x86.R9, x86.R10, x86.R11, x86.R12, x86.R13, x86.R14, x86.R15,
}

func (g *codegen) reg() x86.Reg { return gpRegs[g.r.intn(len(gpRegs))] }

// memOp builds a heap-pointer memory operand (never rsp/rip).
func (g *codegen) memOp() x86.Mem {
	base := g.reg()
	for base == x86.RSP {
		base = g.reg()
	}
	disp := int32(0)
	switch g.r.intn(4) {
	case 1, 2:
		disp = int32(g.r.intn(256) - 128) // disp8
	case 3:
		disp = int32(g.r.intn(1 << 12)) // disp32
	}
	m := x86.M(base, disp)
	if g.r.intn(5) == 0 {
		idx := g.reg()
		for idx == x86.RSP {
			idx = g.reg()
		}
		m.Index = idx
		m.Scale = []uint8{1, 2, 4, 8}[g.r.intn(4)]
	}
	return m
}

// backTarget picks a recent instruction address within short-jump
// range, or 0 if none exists.
func (g *codegen) backTarget(maxDist int) uint64 {
	here := g.a.Addr()
	for i := len(g.recent) - 1; i >= 0; i-- {
		d := here - g.recent[i]
		if d <= uint64(maxDist) && d > 0 {
			// Prefer a random one among those in range.
			lo := i
			for lo > 0 && here-g.recent[lo-1] <= uint64(maxDist) {
				lo--
			}
			return g.recent[lo+g.r.intn(i-lo+1)]
		}
		if d > uint64(maxDist) {
			break
		}
	}
	return 0
}

func (g *codegen) anyFunc() uint64 {
	return g.funcStarts[g.r.intn(len(g.funcStarts))]
}

// emitOne emits one instruction (or small idiom) according to the mix.
func (g *codegen) emitOne() {
	a, r := g.a, g.r
	g.recent = append(g.recent, a.Addr())
	if len(g.recent) > 64 {
		g.recent = g.recent[1:]
	}

	// A1 jumps.
	if r.intn(1000) < g.m.jumpW {
		g.emitJump()
		return
	}
	// A2 heap stores.
	if r.intn(1000) < g.m.storeW {
		g.emitHeapStore()
		return
	}

	// Filler mix (not patch locations for A1/A2).
	switch r.pick([]int{22, 14, 10, 8, 8, 6, 5, 4, 4, 3, 3, 2, 2}) {
	case 0: // reg-reg ALU
		ops := []func(d, s x86.Reg){a.AddRegReg64, a.SubRegReg64, a.AndRegReg64, a.OrRegReg64, a.XorRegReg64, a.CmpRegReg64, a.TestRegReg64, a.MovRegReg64}
		ops[r.intn(len(ops))](g.reg(), g.reg())
	case 1: // reg-imm ALU
		ops := []func(d x86.Reg, i int32){a.AddRegImm64, a.SubRegImm64, a.CmpRegImm64, a.AndRegImm64}
		imm := int32(r.intn(256) - 64)
		if r.intn(4) == 0 {
			imm = int32(r.next())
		}
		ops[r.intn(len(ops))](g.reg(), imm)
	case 2: // load
		a.MovRegMem64(g.reg(), g.memOp())
	case 3: // 32-bit load
		a.MovRegMem32(g.reg(), g.memOp())
	case 4: // stack traffic (excluded from A2)
		if r.intn(2) == 0 {
			a.MovMemReg64(x86.M(x86.RSP, int32(8*r.intn(16))), g.reg())
		} else {
			a.MovRegMem64(g.reg(), x86.M(x86.RSP, int32(8*r.intn(16))))
		}
	case 5: // lea
		a.Lea(g.reg(), g.memOp())
	case 6: // push/pop pair material
		if r.intn(2) == 0 {
			a.PushReg(g.reg())
		} else {
			a.PopReg(g.reg())
		}
	case 7: // mov imm
		if r.intn(3) == 0 {
			a.MovRegImm64(g.reg(), r.next())
		} else {
			a.MovRegImm32(g.reg(), uint32(r.next()))
		}
	case 8: // movzx / shifts
		if r.intn(2) == 0 {
			a.MovZXRegMem8(g.reg(), g.memOp())
		} else {
			a.ShlRegImm64(g.reg(), uint8(r.intn(32)))
		}
	case 9: // call (A1 excludes calls; byte diversity + function starts)
		a.CallRel32(g.anyFunc())
	case 10: // imul
		a.ImulRegReg64(g.reg(), g.reg())
	case 11: // rip-relative load (globals)
		a.MovRegMem64(g.reg(), x86.MRIP(int32(r.intn(1<<16))))
	case 12: // function boundary: ret + new function prologue
		a.Ret()
		if r.intn(4) != 0 {
			a.Nop()
		}
		g.funcStarts = append(g.funcStarts, a.Addr())
		if len(g.funcStarts) > 4096 {
			g.funcStarts = g.funcStarts[1:]
		}
		if g.cet {
			a.Endbr64()
		}
		a.PushReg(x86.RBP)
		a.MovRegReg64(x86.RBP, x86.RSP)
	}
}

// emitJump emits an A1 patch-location jump.
func (g *codegen) emitJump() {
	a, r := g.a, g.r
	cc := x86.Cond(r.intn(16))
	short := r.intn(100) < g.m.shortJcc
	switch {
	case short:
		// Short jcc (2 bytes) or short jmp backward.
		t := g.backTarget(120)
		if t == 0 {
			t = a.Addr() // self-loop shape; never executed
		}
		if r.intn(8) == 0 {
			a.Raw(0xEB)
			a.Raw(byte(int8(int64(t) - int64(a.Addr()) - 1)))
		} else {
			a.Raw(0x70 | byte(cc))
			a.Raw(byte(int8(int64(t) - int64(a.Addr()) - 1)))
		}
	case r.intn(10) == 0:
		// Indirect jump (jump table dispatch).
		if r.intn(2) == 0 {
			a.JmpReg(g.reg())
		} else {
			idx := g.reg()
			for idx == x86.RSP {
				idx = g.reg()
			}
			a.JmpMem(x86.MIdx(g.reg(), idx, 8, 0))
		}
		if g.cet {
			// CET compilers place an endbr64 landing pad at every
			// indirect-branch target — the join point right after a
			// jump-table dispatch is one.
			a.Endbr64()
		}
	case r.intn(5) == 0:
		a.JmpRel32(g.anyFunc())
	default:
		a.JccRel32(cc, g.anyFunc())
	}
}

// emitHeapStore emits an A2 patch-location store.
func (g *codegen) emitHeapStore() {
	a, r := g.a, g.r
	small := r.intn(100) < g.m.smallStore
	m := g.memOp()
	if small {
		// 2-4 byte stores: 32-bit mov without/with disp8.
		if m.Disp > 127 || m.Disp < -128 {
			m.Disp = int32(r.intn(200) - 100)
		}
		switch r.intn(3) {
		case 0:
			a.MovMemReg32(m, g.reg())
		case 1:
			a.MovMemReg64(m, g.reg())
		case 2:
			a.MovMemReg8(m, []x86.Reg{x86.RAX, x86.RCX, x86.RDX, x86.RBX}[r.intn(4)])
		}
		return
	}
	// >= 5 byte stores: imm stores, disp32 forms, RMW.
	switch r.intn(4) {
	case 0:
		a.MovMemImm32(m, uint32(r.next()))
	case 1:
		if m.Disp >= -128 && m.Disp <= 127 {
			m.Disp = int32(1<<10 + r.intn(1<<12))
		}
		a.MovMemReg64(m, g.reg())
	case 2:
		a.MovMemImm32Sx64(m, int32(r.next()))
	case 3:
		if m.Disp >= -128 && m.Disp <= 127 {
			m.Disp = int32(1<<10 + r.intn(1<<12))
		}
		a.AddMemReg64(m, g.reg())
	}
}
