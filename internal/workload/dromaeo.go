package workload

import (
	"fmt"

	"e9patch/internal/emu"
	"e9patch/internal/x86"
)

// Dromaeo DOM benchmark analogue (Figure 4). Each suite is a DOM-like
// operation mix over an array of fixed-size "nodes" with a
// characteristic heap-write density and call depth; the .Proto/.jQuery
// variants add indirection layers (extra calls and loads per
// operation), as the framework wrappers do.
//
// The browser distinction is modelled by jitFrac: the fraction of
// iterations spent in JIT-compiled (runtime-generated, hence
// un-instrumented) code, which the paper suggests explains FireFox's
// lower sensitivity (§6.2).

// RTJit is the runtime address standing in for JIT'ed code execution.
const RTJit uint64 = 0x2_0000_0400

// JitCycles is the modelled cost of one JIT'ed-code episode.
const JitCycles = 120

// BindJit installs the JIT-episode runtime call.
func BindJit(m *emu.Machine) {
	m.Runtime[RTJit] = func(m *emu.Machine) error {
		m.Counters.Cycles += JitCycles
		return nil
	}
}

// DromaeoSuite parametrises one Figure 4 series point.
type DromaeoSuite struct {
	Name string
	// WritePct is the per-operation probability (x100) of mutating a
	// node field (an A2 patch site firing).
	WritePct int
	// CallDepth is the wrapper indirection depth (0 = raw DOM API).
	CallDepth int
}

// DromaeoSuites lists Figure 4's x-axis in paper order.
var DromaeoSuites = []DromaeoSuite{
	{Name: "Attrib", WritePct: 50, CallDepth: 0},
	{Name: "Attrib.Proto", WritePct: 50, CallDepth: 1},
	{Name: "Attrib.jQuery", WritePct: 50, CallDepth: 2},
	{Name: "Modify", WritePct: 85, CallDepth: 0},
	{Name: "Modify.Proto", WritePct: 85, CallDepth: 1},
	{Name: "Modify.jQuery", WritePct: 85, CallDepth: 2},
	{Name: "Query", WritePct: 6, CallDepth: 0},
	{Name: "Style.Proto", WritePct: 70, CallDepth: 1},
	{Name: "Style.jQuery", WritePct: 70, CallDepth: 2},
	{Name: "Events.Proto", WritePct: 40, CallDepth: 1},
	{Name: "Events.jQuery", WritePct: 40, CallDepth: 2},
	{Name: "Traverse", WritePct: 12, CallDepth: 0},
	{Name: "Traverse.Proto", WritePct: 12, CallDepth: 1},
	{Name: "Traverse.jQuery", WritePct: 12, CallDepth: 2},
}

// BuildDromaeo builds the runnable program for one suite. jitPct is
// the percentage of iterations spent in JIT'ed (un-instrumented) code:
// higher for the FireFox model than for Chrome.
func BuildDromaeo(suite DromaeoSuite, pie bool, jitPct int) (*Program, error) {
	if suite.WritePct < 0 || suite.WritePct > 100 || jitPct < 0 || jitPct > 100 {
		return nil, fmt.Errorf("workload: bad dromaeo parameters")
	}
	base := elfTextAddr(KindExec)
	if pie {
		base = elfTextAddr(KindPIE)
	}
	a := x86.NewAsm(base)

	const nodeSize = 64
	const nodeMask = 0x3FC0 // 256 nodes
	iters := KernelIters

	prologue(a, 1<<16)
	over := a.NewLabel()
	a.Jmp(over)

	// domOp(rdi=node addr, rsi=op selector): the "raw DOM API".
	domOp := a.NewLabel()
	a.Bind(domOp)
	write := a.NewLabel()
	done := a.NewLabel()
	a.MovRegReg64(x86.RDX, x86.RSI)
	a.AndRegImm64(x86.RDX, 127)
	a.CmpRegImm64(x86.RDX, int32(128*suite.WritePct/100))
	a.JccShort(x86.CondL, write)
	// Read path: getAttribute-style loads.
	a.MovRegMem64(x86.RAX, x86.M(x86.RDI, 0))
	a.AddRegMem64(x86.RAX, x86.M(x86.RDI, 8))
	a.JmpShort(done)
	a.Bind(write)
	// Write path: setAttribute/style mutation (A2 patch sites).
	a.MovMemReg64(x86.M(x86.RDI, 16), x86.RSI)
	a.MovMemReg32(x86.M(x86.RDI, 24), x86.RSI)
	a.MovRegMem64(x86.RAX, x86.M(x86.RDI, 16))
	a.Bind(done)
	a.Ret()

	// Wrapper layers (Prototype/jQuery models): shuffle arguments,
	// touch a descriptor, call down one level.
	lower := domOp
	for d := 0; d < suite.CallDepth; d++ {
		w := a.NewLabel()
		a.Bind(w)
		a.MovRegMem64(x86.RAX, x86.M(x86.RDI, 32)) // descriptor load
		a.AddRegReg64(x86.RSI, x86.RAX)
		a.Call(lower)
		a.AddRegImm64(x86.RAX, 1)
		a.Ret()
		lower = w
	}

	a.Bind(over)
	// Loop state in callee-untouched registers: rbx = lcg state,
	// r15 = iteration counter.
	a.MovRegImm64(x86.RBX, 0xDEAD_BEEF_1357_9BDF)
	a.XorRegReg32(x86.R15, x86.R15)
	top := a.NewLabel()
	a.Bind(top)
	lcgStep(a, x86.RBX)

	// JIT'ed-code episode for a slice of iterations (un-instrumented
	// native execution standing in for runtime-generated code).
	noJit := a.NewLabel()
	skipOp := a.NewLabel()
	a.MovRegReg64(x86.RDX, x86.RBX)
	a.ShrRegImm64(x86.RDX, 13)
	a.AndRegImm64(x86.RDX, 127)
	a.CmpRegImm64(x86.RDX, int32(128*jitPct/100))
	a.Jcc(x86.CondGE, noJit)
	callRT(a, RTJit)
	a.Jmp(skipOp)
	a.Bind(noJit)

	// Run a burst of suite operations on different nodes through the
	// wrapper layers (a DOM benchmark iteration touches many nodes).
	for _, shift := range []uint8{20, 31, 42} {
		a.MovRegReg64(x86.RDX, x86.RBX)
		a.ShrRegImm64(x86.RDX, shift)
		a.AndRegImm64(x86.RDX, nodeMask)
		a.Lea(x86.RDI, x86.MIdx(x86.R12, x86.RDX, 1, 0))
		a.MovRegReg64(x86.RSI, x86.RBX)
		a.ShrRegImm64(x86.RSI, uint8(shift/2))
		a.Call(lower)
		a.AddRegReg64(x86.R13, x86.RAX)
	}
	a.Bind(skipOp)

	a.AddRegImm64(x86.R15, 1)
	a.CmpRegImm64(x86.R15, int32(iters))
	a.Jcc(x86.CondL, top)
	epilogue(a)

	text, err := a.Finish()
	if err != nil {
		return nil, fmt.Errorf("workload dromaeo %s: %w", suite.Name, err)
	}
	return buildELF("dromaeo-"+suite.Name, pie, text, make([]byte, 1024), 0x4000)
}
