// Shipped spec-language recipes: the data files under examples/specs/
// paired with builders for the payload ELFs they call into. Each
// recipe is a complete E9Tool-style use case — match expression, call
// patch, payload — that doubles as an e9served workload and a bench
// profile. The spec text here is the canonical copy; the files under
// examples/specs/ must match it byte for byte (a test asserts this).
package workload

import (
	"fmt"

	"e9patch/internal/elf64"
	"e9patch/internal/x86"
)

// PayloadBase is the link base of the shipped payload ELFs. It sits
// far above the workload kernels' segments (both non-PIE at 0x400000
// and PIE at PIEBase≈0x5555_5555_4000) and below the emulated stack,
// and is reserved from trampoline placement automatically because
// payload segments are injected there.
const PayloadBase uint64 = 0x9_0000_0000

// payloadTextAddr/payloadDataAddr pin the layout elf64.Build produces
// for a one-page .text: text at base+0x1000, data on the next page.
const (
	payloadTextAddr = PayloadBase + elf64.TextVaddrOff
	payloadDataAddr = PayloadBase + 2*elf64.PageSize
)

// TracePayloadCounterAddr is the 8-byte invocation counter the trace
// payload bumps in its .data page (tests read it back).
func TracePayloadCounterAddr() uint64 { return payloadDataAddr }

// BuildTracePayload builds the syscall-trace payload: one global
// function
//
//	trace(addr) — forward the patched call site's address to the
//	RTOutput runtime binding, then bump the invocation counter.
//
// The payload respects the call-trampoline ABI (DESIGN.md §11.3): it
// clobbers only r11/rdi-class registers the trampoline restores, uses
// no SSE and makes no stack-alignment assumptions.
func BuildTracePayload() ([]byte, error) {
	a := x86.NewAsm(payloadTextAddr)
	a.MovRegImm64(x86.R11, RTOutput)
	a.CallReg(x86.R11)
	a.MovRegImm64(x86.R11, payloadDataAddr)
	a.AddMemImm8x64(x86.M(x86.R11, 0), 1)
	a.Ret()
	text, err := a.Finish()
	if err != nil {
		return nil, fmt.Errorf("workload trace payload: %w", err)
	}
	return buildPayload("trace", text, 8, 0)
}

// CoverageBitmapSize is the coverage payload's site bitmap size: one
// byte per low-16-bit address slot.
const CoverageBitmapSize uint64 = 1 << 16

// CoverageBitmapAddr is the bitmap's address (in .bss, after the
// 8-byte hit counter in .data).
func CoverageBitmapAddr() uint64 { return payloadDataAddr + elf64.PageSize }

// CoverageCounterAddr is the coverage payload's 8-byte hit counter.
func CoverageCounterAddr() uint64 { return payloadDataAddr }

// BuildCoveragePayload builds the branch-coverage payload: one global
// function
//
//	cover(addr) — set bitmap[addr & 0xffff] and bump the hit counter.
//
// The bitmap lives in .bss; rewriting the target binary with this
// payload turns every executed conditional branch into a set byte.
func BuildCoveragePayload() ([]byte, error) {
	a := x86.NewAsm(payloadTextAddr)
	a.MovRegImm64(x86.R10, CoverageBitmapAddr())
	a.MovRegReg64(x86.R11, x86.RDI)
	a.AndRegImm64(x86.R11, 0xFFFF)
	a.MovMemImm8(x86.MIdx(x86.R10, x86.R11, 1, 0), 1)
	a.MovRegImm64(x86.R11, CoverageCounterAddr())
	a.AddMemImm8x64(x86.M(x86.R11, 0), 1)
	a.Ret()
	text, err := a.Finish()
	if err != nil {
		return nil, fmt.Errorf("workload coverage payload: %w", err)
	}
	return buildPayload("cover", text, 8, CoverageBitmapSize)
}

// buildPayload wraps payload text into a fixed-address ELF exporting
// one global function symbol spanning the whole text.
func buildPayload(fn string, text []byte, dataLen int, bssSize uint64) ([]byte, error) {
	if len(text) >= elf64.PageSize {
		return nil, fmt.Errorf("workload payload %s: text %d bytes overruns its page", fn, len(text))
	}
	return elf64.Build(elf64.BuildSpec{
		Base:    PayloadBase,
		Text:    text,
		Data:    make([]byte, dataLen),
		BSSSize: bssSize,
		Symbols: []elf64.Sym{{Name: fn, Addr: payloadTextAddr, Size: uint64(len(text))}},
	})
}

// Recipe pairs a shipped spec file with its payload builder.
type Recipe struct {
	// Name identifies the recipe ("syscall_trace", "branch_coverage").
	Name string
	// File is the repo-relative spec file path.
	File string
	// Spec is the canonical spec-file text (identical to File).
	Spec string
	// BuildPayload builds the payload ELF the spec's call patch needs.
	BuildPayload func() ([]byte, error)
}

// Canonical spec texts for the shipped recipes. The examples/specs/
// files carry the same bytes.
const (
	SyscallTraceSpec = `# Syscall/runtime-call tracing (shipped recipe).
#
# Every indirect call in the target is instrumented with a
# context-saving call trampoline that invokes trace(addr) in the
# injected payload; trace() forwards the call-site address to the
# RTOutput runtime binding and bumps an invocation counter in its
# .data page. In the synthetic workloads the indirect calls are
# exactly the runtime-call (libc/syscall) boundary, so the recorded
# stream is the program's runtime-call trace.
#
# Build the payload next to this file first:
#   go run ./examples/specs/gen
match call & indirect
patch call trace(addr) @trace_payload.elf
`

	BranchCoverageSpec = `# Branch coverage (shipped recipe).
#
# Every conditional jump is instrumented with cover(addr), which sets
# bitmap[addr & 0xffff] in the payload's .bss and bumps a hit counter
# — the classic fuzzing coverage map, expressed as a spec file.
#
# Build the payload next to this file first:
#   go run ./examples/specs/gen
match jcc
exclude addr=0x0..0x1000
patch call cover(addr) @coverage_payload.elf
`
)

// Recipes returns the shipped recipes.
func Recipes() []Recipe {
	return []Recipe{
		{
			Name:         "syscall_trace",
			File:         "examples/specs/syscall_trace.e9spec",
			Spec:         SyscallTraceSpec,
			BuildPayload: BuildTracePayload,
		},
		{
			Name:         "branch_coverage",
			File:         "examples/specs/branch_coverage.e9spec",
			Spec:         BranchCoverageSpec,
			BuildPayload: BuildCoveragePayload,
		},
	}
}

// RecipeByName returns the named recipe.
func RecipeByName(name string) (Recipe, bool) {
	for _, r := range Recipes() {
		if r.Name == name {
			return r, true
		}
	}
	return Recipe{}, false
}
