package workload

import (
	"encoding/binary"
	"fmt"
)

// BuildStream builds the browser-class streaming workload: a bounded
// Chrome-mix text section (textMB of real instructions, with the
// profile's data-in-text prefix) followed by a data segment that pushes
// the file past targetMB. This mirrors the shape of a real 100 MB+
// browser image, where .text is a modest fraction and the bulk is
// read-only data the rewriter must carry through unchanged — exactly
// the case where mmap-backed zero-copy input and single-allocation
// output pay off. Deterministic in (targetMB, textMB).
func BuildStream(targetMB, textMB int) (*Program, error) {
	if targetMB <= 0 || textMB <= 0 || textMB*2 > targetMB {
		return nil, fmt.Errorf("workload: bad stream geometry target=%dMB text=%dMB", targetMB, textMB)
	}
	p, err := ProfileByName("Chrome")
	if err != nil {
		return nil, err
	}
	text, err := generateText(p, textMB<<20, p.Kind, MixFor(p))
	if err != nil {
		return nil, err
	}

	// Fill the remainder with deterministic pseudo-random data, eight
	// bytes per PRNG step so 100 MB fills in milliseconds.
	dataSize := targetMB<<20 - len(text)
	data := make([]byte, dataSize)
	r := newRNG("stream-data")
	for i := 0; i+8 <= len(data); i += 8 {
		binary.LittleEndian.PutUint64(data[i:], r.next())
	}

	prog, err := buildELF("stream", p.Kind != KindExec, text, data, 0)
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// StreamSkipPrefix reports the SkipPrefix value matching BuildStream's
// data-in-text prefix.
func StreamSkipPrefix(textMB int) uint64 { return uint64(textMB<<20) / 40 }
