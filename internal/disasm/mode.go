package disasm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"e9patch/internal/work"
	"e9patch/internal/x86"
)

// Mode selects the instruction-recovery policy the rewriter runs its
// frontend with. The paper's premise — patching needs no control-flow
// facts — makes the recovery strategy a swappable policy rather than a
// baked-in assumption: every mode produces the same artefact (a set of
// candidate instructions with locations and sizes) and the pipeline
// downstream is mode-agnostic.
type Mode string

// The recovery modes.
const (
	// ModeLinear is the classic linear sweep: decode from the section
	// start, skip undecodable bytes one at a time. Byte-identical to
	// the pre-mode rewriter at every parallelism width.
	ModeLinear Mode = "linear"
	// ModeSuperset decodes at every byte offset and keeps everything
	// that survives the closure refinement — a superset of the real
	// disassembly by construction, for binaries whose instruction
	// boundaries are unknown.
	ModeSuperset Mode = "superset"
	// ModeSupersetCET prunes the refined superset to the forward
	// closure of endbr64 anchors (plus the section start): on
	// CET-enabled binaries this classifies reachable code soundly and
	// precisely without control-flow recovery.
	ModeSupersetCET Mode = "superset-cet"
)

// Modes lists the recovery modes in documentation order.
func Modes() []Mode { return []Mode{ModeLinear, ModeSuperset, ModeSupersetCET} }

// ParseMode validates a mode name. The empty string selects ModeLinear
// so zero-valued configurations keep today's behavior.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", ModeLinear:
		return ModeLinear, nil
	case ModeSuperset:
		return ModeSuperset, nil
	case ModeSupersetCET:
		return ModeSupersetCET, nil
	}
	return "", fmt.Errorf("disasm: unknown mode %q (want linear, superset or superset-cet)", s)
}

// SupersetStats reports what a superset-family recovery saw and kept;
// nil for ModeLinear.
type SupersetStats struct {
	// Decoded is the number of offsets that decode to an instruction;
	// Valid how many survive the closure refinement; Kept how many the
	// mode finally recovers (== Valid for ModeSuperset).
	Decoded, Valid, Kept int
	// Anchors is the number of closure seeds (endbr64 pads plus the
	// section start) for ModeSupersetCET; 0 otherwise.
	Anchors int
}

// PruneRatio is the fraction of decoded candidates the mode discarded.
func (s *SupersetStats) PruneRatio() float64 {
	if s == nil || s.Decoded == 0 {
		return 0
	}
	return 1 - float64(s.Kept)/float64(s.Decoded)
}

// Recover runs the mode's recovery over code loaded at addr.
func Recover(mode Mode, code []byte, addr uint64) (Result, *SupersetStats) {
	res, stats, _ := RecoverCancel(mode, code, addr, 1, nil, nil)
	return res, stats
}

// RecoverCancel is Recover with sharding and cooperative cancellation,
// the pipeline's single entry point for instruction recovery. For
// ModeLinear it is exactly disasm.ParallelCancel — byte-identical to
// the sequential sweep at every width. For the superset modes the
// Result carries the pruned survivor set in address order, and
// BadBytes counts offsets where nothing decodes at all. ok=false
// reports a cancelled sweep whose partial result must be discarded.
func RecoverCancel(mode Mode, code []byte, addr uint64, width int, pool *work.Pool, cancel <-chan struct{}) (Result, *SupersetStats, bool) {
	switch mode {
	case "", ModeLinear:
		res, ok := ParallelCancel(code, addr, width, pool, cancel)
		return res, nil, ok
	case ModeSuperset, ModeSupersetCET:
		sup, ok := SupersetCancel(code, addr, width, pool, cancel)
		if !ok {
			return Result{}, nil, false
		}
		stats := &SupersetStats{}
		stats.Decoded, stats.Valid = sup.Count()
		var insts []x86.Inst
		if mode == ModeSupersetCET {
			kept, anchors := sup.CETPrune()
			stats.Anchors = anchors
			insts = sup.KeptInsts(kept)
		} else {
			insts = sup.ValidInsts()
		}
		stats.Kept = len(insts)
		return Result{Insts: insts, BadBytes: sup.BadOffsets()}, stats, true
	}
	// Modes are validated at the configuration boundary (ParseMode);
	// reaching here with an unknown mode is a programming error the
	// recovery boundaries upstream contain.
	panic(fmt.Sprintf("disasm: unvalidated mode %q", mode))
}

// UniverseDigest fingerprints the recovered instruction universe: the
// mode, every (address, length) pair in order, and the undecodable
// count. A plan records it so Apply can prove it is replaying
// decisions against the same instruction set the planner saw — a plan
// made under one mode applied under another fails the digest check
// instead of silently patching different bytes.
func UniverseDigest(mode Mode, res Result) string {
	h := sha256.New()
	h.Write([]byte(mode))
	var buf [12]byte
	for i := range res.Insts {
		binary.LittleEndian.PutUint64(buf[0:], res.Insts[i].Addr)
		binary.LittleEndian.PutUint32(buf[8:], uint32(res.Insts[i].Len))
		h.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[0:], uint64(res.BadBytes))
	h.Write(buf[:8])
	return hex.EncodeToString(h.Sum(nil))
}
