package disasm

import (
	"sort"
	"sync/atomic"

	"e9patch/internal/work"
	"e9patch/internal/x86"
)

// Sharded linear disassembly. A linear sweep is memoryless: the scan
// state is exactly the current offset, so the sweep starting at offset
// e always visits the same positions regardless of how it got to e.
// Each shard sweeps its own byte range and records every cursor
// position it visited; the sequential stitch then walks shard by
// shard, entering each one at the previous shard's exit cursor. If the
// entry cursor is a position the shard visited, the shard's suffix
// from that position is spliced in verbatim; otherwise the stitch
// decodes single instructions until it re-synchronises (instruction
// boundaries self-synchronise within a few instructions on x86). The
// result is provably byte-identical to Linear for every shard count,
// which is why shard geometry is free to follow the worker count.

// minShardBytes keeps shards large enough that seam-repair work is
// negligible against the sweep itself.
const minShardBytes = 16 << 10

// shardScan is one shard's sweep output.
type shardScan struct {
	insts   []x86.Inst
	visited []int // every cursor position in [lo, hi), ascending
	bad     []int // undecodable positions, ascending
	end     int   // exit cursor (first position >= hi)
}

// Parallel is Linear distributed over a worker pool. width <= 1, a nil
// pool with width 1, or a small input all fall back to the sequential
// sweep. The output is byte-identical to Linear(code, addr) for every
// width and pool state.
func Parallel(code []byte, addr uint64, width int, pool *work.Pool) Result {
	res, _ := ParallelCancel(code, addr, width, pool, nil)
	return res
}

// ParallelCancel is Parallel with cooperative cancellation (the
// per-phase deadline hook): once cancel is closed the shard sweeps and
// the stitch stop early and report ok=false with a partial result the
// caller must discard. A nil cancel never stops early, and the result
// is then byte-identical to Linear for every width.
func ParallelCancel(code []byte, addr uint64, width int, pool *work.Pool, cancel <-chan struct{}) (Result, bool) {
	nsh := len(code) / minShardBytes
	if nsh > width {
		// A few shards per worker smooths uneven decode costs without
		// shrinking shards below the floor.
		if most := width * 4; nsh > most {
			nsh = most
		}
	}
	if width <= 1 || nsh <= 1 {
		return LinearCancel(code, addr, cancel)
	}

	shardLo := func(i int) int { return i * len(code) / nsh }
	shards := make([]shardScan, nsh)
	var aborted int32
	work.ForEach(pool, width, nsh, func(i int) {
		lo, hi := shardLo(i), shardLo(i+1)
		sh := &shards[i]
		steps := 0
		for off := lo; off < hi; {
			if cancel != nil && steps&(cancelStride-1) == 0 {
				select {
				case <-cancel:
					atomic.StoreInt32(&aborted, 1)
					return
				default:
				}
			}
			steps++
			sh.visited = append(sh.visited, off)
			inst, err := x86.Decode(code[off:], addr+uint64(off))
			if err != nil || inst.Len <= 0 {
				sh.bad = append(sh.bad, off)
				off++
				continue
			}
			sh.insts = append(sh.insts, inst)
			off += inst.Len
		}
		sh.end = lastOff(lo, hi, sh)
	})
	if atomic.LoadInt32(&aborted) != 0 {
		return Result{}, false
	}

	// Stitch: cursor is always the offset the sequential sweep would
	// be at after emitting everything appended so far. The shard counts
	// bound the stitched total (seam repair re-decodes positions the
	// shards already visited, it never adds new ones), so one exact-fit
	// allocation replaces append regrowth over a browser-class array.
	var res Result
	total := 0
	for i := range shards {
		total += len(shards[i].insts)
	}
	res.Insts = make([]x86.Inst, 0, total)
	cursor := 0
	for i := 0; i < nsh; i++ {
		sh := &shards[i]
		hi := shardLo(i + 1)
		for cursor < hi {
			if k := sort.SearchInts(sh.visited, cursor); k < len(sh.visited) && sh.visited[k] == cursor {
				// Synchronised: splice the shard's suffix from cursor.
				ki := sort.Search(len(sh.insts), func(j int) bool {
					return sh.insts[j].Addr >= addr+uint64(cursor)
				})
				res.Insts = append(res.Insts, sh.insts[ki:]...)
				res.BadBytes += len(sh.bad) - sort.SearchInts(sh.bad, cursor)
				cursor = sh.end
				break
			}
			// Seam mis-sync: single-step until a visited position.
			inst, err := x86.Decode(code[cursor:], addr+uint64(cursor))
			if err != nil || inst.Len <= 0 {
				res.BadBytes++
				cursor++
				continue
			}
			res.Insts = append(res.Insts, inst)
			cursor += inst.Len
		}
	}
	return res, true
}

// lastOff recomputes the shard's exit cursor from its final recorded
// position (the worker loop ends with off >= hi, which is not stored
// in visited).
func lastOff(lo, hi int, sh *shardScan) int {
	if len(sh.visited) == 0 {
		return lo // empty shard range
	}
	last := sh.visited[len(sh.visited)-1]
	if len(sh.bad) > 0 && sh.bad[len(sh.bad)-1] == last {
		return last + 1
	}
	return last + sh.insts[len(sh.insts)-1].Len
}
