// Package disasm is the "basic wrapper frontend" from the paper: it
// applies linear disassembly to a code section and selects patch
// locations for the evaluation applications (A1: jump instructions,
// A2: heap-write instructions).
//
// E9Patch proper consumes only instruction locations and sizes; this
// package produces exactly that, and nothing control-flow related.
package disasm

import (
	"e9patch/internal/x86"
)

// Result is the outcome of linear disassembly.
type Result struct {
	// Insts are the decoded instructions in address order.
	Insts []x86.Inst
	// BadBytes counts bytes that did not decode (embedded data,
	// unsupported encodings); each is skipped individually, exactly
	// like a linear sweep over a .text section containing data.
	BadBytes int
}

// Linear decodes code (loaded at addr) from the start, instruction by
// instruction, skipping undecodable bytes one at a time.
func Linear(code []byte, addr uint64) Result {
	res, _ := LinearCancel(code, addr, nil)
	return res
}

// cancelStride is how many decode steps pass between cancellation
// polls; a power of two so the check is a mask.
const cancelStride = 1 << 12

// LinearCancel is Linear with cooperative cancellation: once cancel is
// closed the sweep stops within a few thousand instructions and
// reports ok=false with a partial (possibly empty) result the caller
// must discard. A nil cancel never stops early. Decoder stalls (a
// decoded instruction of non-positive length) are treated as
// undecodable bytes so a hostile input can never pin the sweep in
// place.
//
// The sweep runs twice: a counting pass sizes the result exactly, then
// a fill pass decodes into the single allocation. Growing a
// browser-class instruction array by append instead costs several
// times the final size in regrowth copies — the x86.Inst element is
// large enough that those transients dominated the whole rewrite's
// allocation profile — while the second decode pass is pure cache-hot
// CPU. The count is taken from the input itself, so a hostile section
// (all padding, all data) can never bait an oversized allocation the
// way a capacity heuristic could.
func LinearCancel(code []byte, addr uint64, cancel <-chan struct{}) (res Result, ok bool) {
	steps := 0
	n := 0
	for off := 0; off < len(code); {
		if cancel != nil && steps&(cancelStride-1) == 0 {
			select {
			case <-cancel:
				return res, false
			default:
			}
		}
		steps++
		inst, err := x86.Decode(code[off:], addr+uint64(off))
		if err != nil || inst.Len <= 0 {
			res.BadBytes++
			off++
			continue
		}
		n++
		off += inst.Len
	}
	if n == 0 {
		return res, true
	}
	res.Insts = make([]x86.Inst, 0, n)
	for off := 0; off < len(code); {
		if cancel != nil && steps&(cancelStride-1) == 0 {
			select {
			case <-cancel:
				return res, false
			default:
			}
		}
		steps++
		inst, err := x86.Decode(code[off:], addr+uint64(off))
		if err != nil || inst.Len <= 0 {
			off++
			continue
		}
		res.Insts = append(res.Insts, inst)
		off += inst.Len
	}
	return res, true
}

// SelectJumps returns the indices of all jmp/jcc instructions: the
// paper's application A1 (a control-flow-free analogue of basic-block
// counting).
func SelectJumps(insts []x86.Inst) []int {
	var out []int
	for i := range insts {
		in := &insts[i]
		if in.IsJmp() || in.IsJcc() {
			out = append(out, i)
		}
	}
	return out
}

// SelectHeapWrites returns the indices of all instructions that may
// write through a heap pointer (memory-destination operands excluding
// %rsp-based and %rip-relative): the paper's application A2.
func SelectHeapWrites(insts []x86.Inst) []int {
	var out []int
	for i := range insts {
		if insts[i].IsHeapWrite() {
			out = append(out, i)
		}
	}
	return out
}

// SelectAll returns every instruction index (the stress case for the
// paper's limitation L3).
func SelectAll(insts []x86.Inst) []int {
	out := make([]int, len(insts))
	for i := range out {
		out[i] = i
	}
	return out
}
