package disasm

import (
	"math/rand"
	"testing"

	"e9patch/internal/work"
	"e9patch/internal/x86"
)

// genCode builds a byte stream mixing real instructions with junk so
// that shard seams land both on instruction boundaries and inside
// embedded data.
func genCode(rng *rand.Rand, n int) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		switch rng.Intn(8) {
		case 0: // raw junk run (forces bad bytes and mis-synced seams)
			run := rng.Intn(24) + 1
			for i := 0; i < run; i++ {
				out = append(out, byte(rng.Intn(256)))
			}
		default:
			a := x86.NewAsm(0)
			switch rng.Intn(6) {
			case 0:
				a.AddRegImm64(x86.RAX, int32(rng.Intn(1<<20)))
			case 1:
				a.MovMemReg64(x86.M(x86.RBX, int32(rng.Intn(128))), x86.RCX)
			case 2:
				a.PushReg(x86.RDX)
			case 3:
				a.XorRegReg64(x86.RSI, x86.RDI)
			case 4:
				a.Nop()
			case 5:
				a.MovRegImm64(x86.R8, rng.Uint64())
			}
			out = append(out, a.MustFinish()...)
		}
	}
	return out[:n]
}

func sameResult(t *testing.T, want, got Result, ctx string) {
	t.Helper()
	if got.BadBytes != want.BadBytes {
		t.Fatalf("%s: BadBytes %d != %d", ctx, got.BadBytes, want.BadBytes)
	}
	if len(got.Insts) != len(want.Insts) {
		t.Fatalf("%s: %d insts != %d", ctx, len(got.Insts), len(want.Insts))
	}
	for i := range want.Insts {
		if got.Insts[i].Addr != want.Insts[i].Addr || got.Insts[i].Len != want.Insts[i].Len {
			t.Fatalf("%s: inst %d = %#x/%d, want %#x/%d",
				ctx, i, got.Insts[i].Addr, got.Insts[i].Len, want.Insts[i].Addr, want.Insts[i].Len)
		}
	}
}

func TestParallelMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const addr = 0x401000
	for _, size := range []int{0, 100, minShardBytes - 1, 2 * minShardBytes, 5*minShardBytes + 333} {
		code := genCode(rng, size)
		want := Linear(code, addr)
		for _, width := range []int{1, 2, 3, 8} {
			got := Parallel(code, addr, width, nil)
			sameResult(t, want, got, "")
		}
		// And under a shared, partially saturated pool.
		got := Parallel(code, addr, 8, work.NewPool(2))
		sameResult(t, want, got, "pooled")
	}
}

func TestParallelAllJunk(t *testing.T) {
	// Every byte undecodable: BadBytes must equal len for any width.
	code := make([]byte, 3*minShardBytes)
	for i := range code {
		code[i] = 0x06 // invalid in 64-bit mode
	}
	want := Linear(code, 0x1000)
	if want.BadBytes != len(code) {
		t.Fatalf("baseline BadBytes = %d", want.BadBytes)
	}
	sameResult(t, want, Parallel(code, 0x1000, 4, nil), "junk")
}

func TestParallelSeamStraddle(t *testing.T) {
	// Long instructions (10-byte movabs) ensure instructions straddle
	// every shard seam; the stitch must repair each one.
	a := x86.NewAsm(0x400000)
	for i := 0; i < 4*minShardBytes/10; i++ {
		a.MovRegImm64(x86.RAX, uint64(i)*0x0101010101)
	}
	code := a.MustFinish()
	want := Linear(code, 0x400000)
	for _, width := range []int{2, 4, 16} {
		sameResult(t, want, Parallel(code, 0x400000, width, nil), "straddle")
	}
}

func FuzzLinearParallel(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint8(seed+2))
	}
	f.Fuzz(func(t *testing.T, seed int64, width uint8) {
		rng := rand.New(rand.NewSource(seed))
		code := genCode(rng, 2*minShardBytes+rng.Intn(minShardBytes))
		w := int(width%16) + 1
		want := Linear(code, 0x401000)
		got := Parallel(code, 0x401000, w, nil)
		sameResult(t, want, got, "fuzz")
	})
}
