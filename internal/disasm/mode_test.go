package disasm

import (
	"testing"

	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"", ModeLinear, true},
		{"linear", ModeLinear, true},
		{"superset", ModeSuperset, true},
		{"superset-cet", ModeSupersetCET, true},
		{"SUPERSET", "", false},
		{"recursive", "", false},
		{"linear ", "", false},
	} {
		got, err := ParseMode(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseMode(%q) err = %v, want ok=%t", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseMode(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if len(Modes()) != 3 {
		t.Errorf("Modes() = %v", Modes())
	}
}

// TestRecoverLinearIdentity pins the tentpole's compatibility bar: the
// mode dispatcher in linear mode (and with the zero-value mode) is
// byte-identical to the plain linear sweep at every width.
func TestRecoverLinearIdentity(t *testing.T) {
	p, err := workload.ProfileByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.BuildStatic(p, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	code, addr := textOf(t, prog.ELF)
	want := Linear(code, addr)
	for _, mode := range []Mode{"", ModeLinear} {
		for _, width := range []int{1, 2, 3, 8} {
			got, stats, ok := RecoverCancel(mode, code, addr, width, nil, nil)
			if !ok {
				t.Fatalf("mode %q width %d: cancelled without cancel", mode, width)
			}
			if stats != nil {
				t.Errorf("mode %q width %d: non-nil superset stats", mode, width)
			}
			if got.BadBytes != want.BadBytes || len(got.Insts) != len(want.Insts) {
				t.Fatalf("mode %q width %d: %d insts %d bad, want %d insts %d bad",
					mode, width, len(got.Insts), got.BadBytes, len(want.Insts), want.BadBytes)
			}
			for i := range got.Insts {
				if got.Insts[i].Addr != want.Insts[i].Addr || got.Insts[i].Len != want.Insts[i].Len {
					t.Fatalf("mode %q width %d: inst %d = %#x/%d, want %#x/%d",
						mode, width, i, got.Insts[i].Addr, got.Insts[i].Len, want.Insts[i].Addr, want.Insts[i].Len)
				}
			}
		}
	}
}

// TestRecoverSupersetStats checks the dispatcher's bookkeeping for the
// superset family: kept == len(Insts), kept <= valid <= decoded, and
// CET keeps a subset of plain superset.
func TestRecoverSupersetStats(t *testing.T) {
	a := x86.NewAsm(0x401000)
	for f := 0; f < 3; f++ {
		a.Endbr64()
		a.PushReg(x86.RBP)
		a.MovRegReg64(x86.RBP, x86.RSP)
		a.AddRegImm64(x86.RAX, 7)
		a.PopReg(x86.RBP)
		a.Ret()
		a.Nop() // inter-function padding: unreachable from any anchor
	}
	code := a.MustFinish()

	resS, statsS, _ := RecoverCancel(ModeSuperset, code, 0x401000, 1, nil, nil)
	resC, statsC, _ := RecoverCancel(ModeSupersetCET, code, 0x401000, 1, nil, nil)
	for _, c := range []struct {
		name  string
		res   Result
		stats *SupersetStats
	}{{"superset", resS, statsS}, {"superset-cet", resC, statsC}} {
		if c.stats == nil {
			t.Fatalf("%s: nil stats", c.name)
		}
		if c.stats.Kept != len(c.res.Insts) {
			t.Errorf("%s: Kept %d != %d insts", c.name, c.stats.Kept, len(c.res.Insts))
		}
		if c.stats.Kept > c.stats.Valid || c.stats.Valid > c.stats.Decoded {
			t.Errorf("%s: kept/valid/decoded not monotone: %+v", c.name, c.stats)
		}
	}
	if statsC.Anchors < 3 {
		t.Errorf("CET anchors = %d, want >= 3 (one per endbr64)", statsC.Anchors)
	}
	if statsS.Anchors != 0 {
		t.Errorf("plain superset reported anchors: %d", statsS.Anchors)
	}
	if statsC.Kept >= statsS.Kept {
		t.Errorf("CET pruning kept everything: %d vs %d (padding should be pruned)", statsC.Kept, statsS.Kept)
	}
	if statsC.PruneRatio() <= statsS.PruneRatio() {
		t.Errorf("prune ratios not ordered: cet %.3f vs superset %.3f", statsC.PruneRatio(), statsS.PruneRatio())
	}
	if r := (*SupersetStats)(nil).PruneRatio(); r != 0 {
		t.Errorf("nil stats PruneRatio = %v", r)
	}
}

// TestUniverseDigestModeBinding checks the property Apply relies on to
// reject cross-mode plan replay: the digest covers the mode name and
// the full (addr, len) universe, so the same binary under different
// modes — or a tampered mode string on the same instruction set —
// never collides.
func TestUniverseDigestModeBinding(t *testing.T) {
	a := x86.NewAsm(0x401000)
	a.Endbr64()
	a.AddRegImm64(x86.RAX, 1)
	a.Ret()
	code := a.MustFinish()

	digests := map[string]Mode{}
	for _, mode := range Modes() {
		res, _, _ := RecoverCancel(mode, code, 0x401000, 1, nil, nil)
		d := UniverseDigest(mode, res)
		if prev, dup := digests[d]; dup {
			t.Fatalf("digest collision between modes %q and %q", prev, mode)
		}
		digests[d] = mode
	}

	// Same instruction universe, different claimed mode: distinct — a
	// plan whose mode string is tampered fails verification even if the
	// universes coincide.
	res, _, _ := RecoverCancel(ModeLinear, code, 0x401000, 1, nil, nil)
	if UniverseDigest(ModeLinear, res) == UniverseDigest(ModeSuperset, res) {
		t.Fatal("digest ignores the mode")
	}
	// Universe perturbation: distinct.
	res2 := res
	res2.BadBytes++
	if UniverseDigest(ModeLinear, res) == UniverseDigest(ModeLinear, res2) {
		t.Fatal("digest ignores BadBytes")
	}
	if len(res.Insts) > 0 {
		res3 := Result{Insts: res.Insts[1:], BadBytes: res.BadBytes}
		if UniverseDigest(ModeLinear, res) == UniverseDigest(ModeLinear, res3) {
			t.Fatal("digest ignores the instruction set")
		}
	}
}

// TestSupersetContainsLinearAllProfiles is the mode differential the
// issue asks for: on every workload profile the superset-refined
// instruction set contains every linear instruction, at matching
// lengths.
func TestSupersetContainsLinearAllProfiles(t *testing.T) {
	for _, p := range workload.AllProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			// Scale every profile to roughly the same text size so the
			// sweep stays cheap on the multi-MB entries.
			scale := 0.06 / p.SizeMB
			if scale > 1 {
				scale = 1
			}
			prog, err := workload.BuildStatic(p, scale)
			if err != nil {
				t.Fatal(err)
			}
			code, addr := textOf(t, prog.ELF)
			// The differential holds over genuine code: profiles with an
			// embedded data prefix (Chrome) are compared past it, exactly
			// where the rewriter's SkipPrefix starts — linear "decodes"
			// of data bytes are junk the refinement rightly prunes.
			skip := workload.DataPrefixBytes(p, scale)
			code, addr = code[skip:], addr+skip
			lin := Linear(code, addr)
			sup, _, _ := RecoverCancel(ModeSuperset, code, addr, 4, nil, nil)
			lenAt := make(map[uint64]int, len(sup.Insts))
			for i := range sup.Insts {
				lenAt[sup.Insts[i].Addr] = sup.Insts[i].Len
			}
			for i := range lin.Insts {
				l, ok := lenAt[lin.Insts[i].Addr]
				if !ok {
					t.Fatalf("linear inst at %#x missing from superset", lin.Insts[i].Addr)
				}
				if l != lin.Insts[i].Len {
					t.Fatalf("length mismatch at %#x: superset %d, linear %d", lin.Insts[i].Addr, l, lin.Insts[i].Len)
				}
			}
			if len(sup.Insts) < len(lin.Insts) {
				t.Fatalf("superset smaller than linear: %d < %d", len(sup.Insts), len(lin.Insts))
			}
		})
	}
}
