package disasm

import (
	"e9patch/internal/x86"
)

// CET-anchored superset pruning (after arXiv:2506.09426): on binaries
// compiled with control-flow enforcement, every indirect branch target
// starts with an endbr64 landing pad. Those pads are unforgeable code
// anchors — a compiler never emits the F3 0F 1E FA byte string inside
// another instruction's immediate by accident often enough to matter,
// and a misaligned decode that happens to produce one is pruned by the
// refinement first. Starting from the anchors (plus the section entry,
// which is a known-good boundary by construction), the genuine
// instruction stream is exactly the forward closure under fall-through
// and direct-branch edges: no control-flow *recovery* is needed, only
// the local successor relation the superset sweep already knows.

// CETPrune computes the anchor-reachable subset of the refined
// superset. The returned mask is over r.Insts: kept[i] reports that
// Insts[i] is (a) valid under the closure refinement and (b) reachable
// from an endbr64 anchor or the section start by following fall-through
// and direct branch/call targets through valid instructions. anchors is
// the number of seed instructions used.
//
// The kept set is a subset of the refined valid set by construction;
// bytes it never covers (alignment padding, inter-function junk, data)
// are classified unreachable and excluded from patching.
func (r *SupersetResult) CETPrune() (kept []bool, anchors int) {
	n := len(r.Insts)
	kept = make([]bool, n)
	if n == 0 {
		return kept, 0
	}

	// Seeds: every valid endbr64, plus the instruction at the lowest
	// decodable offset (the section start — ELF entry or the first
	// byte of .text, a genuine boundary in either case).
	var queue []int
	seed := func(i int) {
		if i >= 0 && r.Valid[i] && !kept[i] {
			kept[i] = true
			queue = append(queue, i)
			anchors++
		}
	}
	for i := range r.Insts {
		if r.Insts[i].IsEndbr64() {
			seed(i)
		}
	}
	if len(r.ByOffset) > 0 {
		seed(r.ByOffset[0])
	}

	// Forward closure over fall-through and direct-branch successors,
	// traversing valid instructions only: a chain that runs through a
	// refinement-invalid decode is junk even if an anchor points at it.
	lo, hi := r.addr, r.addr+uint64(len(r.ByOffset))
	visit := func(a uint64) int {
		if a < lo || a >= hi {
			return -1
		}
		return r.ByOffset[a-lo]
	}
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		in := &r.Insts[i]
		var succ [2]int
		ns := 0
		if in.Attrs&x86.AttrStop == 0 {
			succ[ns] = visit(in.Addr + uint64(in.Len))
			ns++
		}
		if in.IsDirectBranch() {
			succ[ns] = visit(in.Target())
			ns++
		}
		for k := 0; k < ns; k++ {
			j := succ[k]
			if j >= 0 && r.Valid[j] && !kept[j] {
				kept[j] = true
				queue = append(queue, j)
			}
		}
	}
	return kept, anchors
}

// KeptInsts returns the instructions selected by a mask (CETPrune's
// kept set), in address order.
func (r *SupersetResult) KeptInsts(kept []bool) []x86.Inst {
	var out []x86.Inst
	for i := range r.Insts {
		if kept[i] {
			out = append(out, r.Insts[i])
		}
	}
	return out
}
