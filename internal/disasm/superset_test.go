package disasm

import (
	"testing"

	"e9patch/internal/elf64"
	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

func textOf(t *testing.T, bin []byte) ([]byte, uint64) {
	t.Helper()
	f, err := elf64.Parse(bin)
	if err != nil {
		t.Fatal(err)
	}
	code, addr, err := f.Text()
	if err != nil {
		t.Fatal(err)
	}
	return code, addr
}

func TestSupersetContainsLinear(t *testing.T) {
	// Every instruction linear disassembly finds must survive the
	// superset refinement (superset property).
	a := x86.NewAsm(0x401000)
	top := a.NewLabel()
	a.Bind(top)
	a.MovMemReg64(x86.M(x86.RBX, 0), x86.RAX)
	a.AddRegImm64(x86.RAX, 32)
	a.XorRegReg64(x86.RCX, x86.RAX)
	a.CmpMemImm8(x86.M(x86.RBX, -4), 77)
	a.JccShort(x86.CondL, top)
	a.Ret()
	code := a.MustFinish()

	lin := Linear(code, 0x401000)
	sup := Superset(code, 0x401000)

	validAt := map[uint64]bool{}
	for i := range sup.Insts {
		if sup.Valid[i] {
			validAt[sup.Insts[i].Addr] = true
		}
	}
	for _, in := range lin.Insts {
		if !validAt[in.Addr] {
			t.Errorf("linear instruction at %#x pruned by superset refinement", in.Addr)
		}
	}
	decoded, valid := sup.Count()
	if decoded < len(lin.Insts) || valid < len(lin.Insts) {
		t.Errorf("superset smaller than linear: %d/%d vs %d", decoded, valid, len(lin.Insts))
	}
}

func TestSupersetPrunesJunk(t *testing.T) {
	// A stream with embedded data: superset decodes mid-data offsets
	// but the refinement prunes sequences that run into invalid bytes.
	code := []byte{
		0x90,             // 0: nop
		0x48, 0x89, 0x03, // 1: mov [rbx], rax
		0xEB, 0x05, // 4: jmp +5 (over the data)
		0x06, 0x06, 0x06, 0x06, 0x06, // 6..10: invalid bytes (data)
		0xC3, // 11: ret
	}
	sup := Superset(code, 0x401000)
	decoded, valid := sup.Count()
	if decoded == 0 {
		t.Fatal("nothing decoded")
	}
	if valid >= decoded {
		t.Errorf("refinement pruned nothing (%d/%d)", valid, decoded)
	}
	// The real instructions survive.
	for _, off := range []int{0, 1, 4, 11} {
		idx := sup.ByOffset[off]
		if idx == -1 || !sup.Valid[idx] {
			t.Errorf("true instruction at offset %d did not survive", off)
		}
	}
	// Data offsets must be undecodable.
	if idx := sup.ByOffset[6]; idx != -1 {
		t.Errorf("data offset decoded (idx %d)", idx)
	}
	// An instruction that falls through into the data (e.g. a decode
	// starting at offset 3, consuming the jmp bytes differently) must
	// be pruned when it reaches an invalid decode.
	prunedSomething := false
	for i, v := range sup.Valid {
		if !v {
			prunedSomething = true
			_ = i
		}
	}
	if !prunedSomething {
		t.Error("no misaligned decode was pruned")
	}
}

func TestSupersetOnGeneratedProfile(t *testing.T) {
	// The superset of a realistic code section is a strict superset of
	// the linear decode, and the refinement keeps it finite.
	p, err := workload.ProfileByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.BuildStatic(p, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Extract .text via the linear path used elsewhere.
	code, addr := textOf(t, prog.ELF)
	lin := Linear(code, addr)
	sup := Superset(code, addr)
	decoded, valid := sup.Count()
	if valid <= len(lin.Insts) {
		t.Errorf("superset (%d valid of %d decoded) not larger than linear (%d)",
			valid, decoded, len(lin.Insts))
	}
	validAt := map[uint64]bool{}
	for i := range sup.Insts {
		if sup.Valid[i] {
			validAt[sup.Insts[i].Addr] = true
		}
	}
	missed := 0
	for _, in := range lin.Insts {
		if !validAt[in.Addr] {
			missed++
		}
	}
	if missed > 0 {
		t.Errorf("%d linear instructions pruned", missed)
	}
}
