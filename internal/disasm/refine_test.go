package disasm

import (
	"testing"

	"e9patch/internal/x86"
)

// TestRefineTruncatedTail is the regression for the span-end rule: a
// final instruction cut off by the section end must not poison the
// genuine chain leading up to it — superset refinement treats the
// truncated offsets exactly like Linear's skip behavior.
func TestRefineTruncatedTail(t *testing.T) {
	a := x86.NewAsm(0x401000)
	a.AddRegImm64(x86.RAX, 5)
	a.XorRegReg64(x86.RCX, x86.RAX)
	a.Nop()
	full := a.MustFinish()
	// Append the first two bytes of "mov [rbx], rax" (48 89 03): both
	// tail offsets decode as truncated, not invalid.
	code := append(full, 0x48, 0x89)

	lin := Linear(code, 0x401000)
	sup := Superset(code, 0x401000)

	if !sup.TruncatedAt(len(full)) || !sup.TruncatedAt(len(full)+1) {
		t.Fatal("tail offsets not marked truncated")
	}
	if sup.ByOffset[len(full)] != -1 {
		t.Fatal("truncated tail decoded")
	}
	// Every linear instruction survives — in particular the final nop,
	// whose only fall-through successor is the truncated tail.
	validAt := map[uint64]bool{}
	for i := range sup.Insts {
		if sup.Valid[i] {
			validAt[sup.Insts[i].Addr] = true
		}
	}
	for _, in := range lin.Insts {
		if !validAt[in.Addr] {
			t.Errorf("linear instruction at %#x invalidated by the truncated tail", in.Addr)
		}
	}
	// Linear counts the tail bytes as bad; superset's BadOffsets agrees
	// on the undecodable tail.
	if lin.BadBytes != 2 {
		t.Fatalf("linear BadBytes = %d, want the 2 truncated tail bytes", lin.BadBytes)
	}
	if sup.BadOffsets() < 2 {
		t.Fatalf("superset BadOffsets = %d", sup.BadOffsets())
	}
}

// TestRefineHardInvalidStillPoisons is the control for the truncation
// rule: a chain that must reach a mid-section *invalid* byte is still
// pruned — only span-end truncation is forgiven.
func TestRefineHardInvalidStillPoisons(t *testing.T) {
	code := []byte{
		0x90,       // 0: nop — falls through into the invalid byte
		0x06,       // 1: invalid in 64-bit mode
		0x90, 0xC3, // 2: nop; ret
	}
	sup := Superset(code, 0x401000)
	if sup.ByOffset[1] != -1 || sup.TruncatedAt(1) {
		t.Fatal("0x06 should be a hard invalid, not truncated")
	}
	idx := sup.ByOffset[0]
	if idx == -1 || sup.Valid[idx] {
		// The nop at 0 must be pruned: its fall-through is invalid.
		if idx != -1 && sup.Valid[idx] {
			t.Fatal("nop falling into a hard-invalid byte survived refinement")
		}
	}
}

// TestValidInstsOverlap covers overlapping and boundary-crossing
// decodes: instructions starting inside another's immediate survive
// when their own chains are clean, ValidInsts returns them all in
// address order, and Occupancy reports the overlap depth.
func TestValidInstsOverlap(t *testing.T) {
	code := []byte{
		0xB8, 0x90, 0x90, 0x90, 0x90, // 0: mov eax, 0x90909090
		0xC3, // 5: ret
	}
	sup := Superset(code, 0x401000)
	insts := sup.ValidInsts()
	// The misaligned decodes at offsets 1..4 are all nops falling
	// through to the ret — every offset survives.
	wantOffsets := []int{0, 1, 2, 3, 4, 5}
	if len(insts) != len(wantOffsets) {
		t.Fatalf("ValidInsts returned %d instructions, want %d", len(insts), len(wantOffsets))
	}
	for i, off := range wantOffsets {
		if got := int(insts[i].Addr - 0x401000); got != off {
			t.Fatalf("ValidInsts[%d] at offset %d, want %d", i, got, off)
		}
	}
	for i := 1; i < len(insts); i++ {
		if insts[i].Addr <= insts[i-1].Addr {
			t.Fatal("ValidInsts not strictly address ordered")
		}
	}
	// The mov covers bytes 0..4; the nop at 1 overlaps it, crossing
	// nothing; occupancy over the immediate bytes is 2 (mov + nop).
	occ := sup.Occupancy(nil)
	if occ[0] != 1 {
		t.Errorf("occ[0] = %d, want 1 (only the mov)", occ[0])
	}
	for b := 1; b <= 4; b++ {
		if occ[b] != 2 {
			t.Errorf("occ[%d] = %d, want 2 (mov immediate + misaligned nop)", b, occ[b])
		}
	}
	if occ[5] != 1 {
		t.Errorf("occ[5] = %d, want 1 (ret)", occ[5])
	}
}

// TestValidInstsCrossBoundary: a decode starting inside one real
// instruction and extending across its end into the next one.
func TestValidInstsCrossBoundary(t *testing.T) {
	code := []byte{
		0xB8, 0x01, 0x48, 0x89, 0x03, // 0: mov eax, 0x3894801
		0xC3, // 5: ret
	}
	// Offset 2 decodes 48 89 03 = mov [rbx], rax (3 bytes), crossing
	// the mov's boundary at 5 exactly onto the ret.
	sup := Superset(code, 0x401000)
	idx := sup.ByOffset[2]
	if idx == -1 {
		t.Fatal("cross-boundary decode at offset 2 missing")
	}
	if sup.Insts[idx].Len != 3 {
		t.Fatalf("decode at offset 2 has length %d, want 3", sup.Insts[idx].Len)
	}
	if !sup.Valid[idx] {
		t.Fatal("cross-boundary decode chaining onto the ret was pruned")
	}
	if i0 := sup.ByOffset[0]; i0 == -1 || !sup.Valid[i0] {
		t.Fatal("the genuine mov was pruned")
	}
}

// FuzzSupersetPrune checks structural invariants on arbitrary byte
// streams: sharding determinism, kept ⊆ valid ⊆ decoded, address
// ordering, occupancy consistency, and the linear dispatcher identity.
// (Superset ⊇ linear holds on clean code, not arbitrary bytes — a
// genuine instruction that falls through into data is rightly pruned —
// so the fuzz asserts only the unconditional properties.)
func FuzzSupersetPrune(f *testing.F) {
	f.Add([]byte{0x90, 0xC3})
	f.Add([]byte{0xB8, 0x90, 0x90, 0x90, 0x90, 0xC3})
	f.Add([]byte{0x48, 0x89, 0x03, 0xEB, 0x05, 0x06, 0x06, 0x06, 0x06, 0x06, 0xC3})
	f.Add([]byte{0xF3, 0x0F, 0x1E, 0xFA, 0x55, 0xC3, 0x90, 0xF3, 0x0F, 0x1E, 0xFA, 0xC3})
	f.Add([]byte{0x48, 0x89})
	f.Fuzz(func(t *testing.T, code []byte) {
		if len(code) > 4096 {
			code = code[:4096]
		}
		const addr = 0x401000
		sup, ok := SupersetCancel(code, addr, 1, nil, nil)
		if !ok {
			t.Fatal("cancelled without cancel")
		}
		// Sharding determinism: a wide sweep is bit-identical.
		wide, ok := SupersetCancel(code, addr, 8, nil, nil)
		if !ok {
			t.Fatal("wide sweep cancelled")
		}
		if len(wide.Insts) != len(sup.Insts) {
			t.Fatalf("width changed decode count: %d vs %d", len(wide.Insts), len(sup.Insts))
		}
		for i := range sup.Insts {
			if sup.Insts[i].Addr != wide.Insts[i].Addr || sup.Insts[i].Len != wide.Insts[i].Len ||
				sup.Valid[i] != wide.Valid[i] {
				t.Fatalf("width changed decode %d", i)
			}
		}

		decoded, valid := sup.Count()
		if valid > decoded || decoded != len(sup.Insts) {
			t.Fatalf("counts inconsistent: %d valid of %d decoded", valid, decoded)
		}
		kept, _ := sup.CETPrune()
		nKept := 0
		for i, k := range kept {
			if k {
				nKept++
				if !sup.Valid[i] {
					t.Fatal("kept ⊄ valid")
				}
			}
		}
		if insts := sup.KeptInsts(kept); len(insts) != nKept {
			t.Fatalf("KeptInsts %d != mask %d", len(insts), nKept)
		}
		vi := sup.ValidInsts()
		if len(vi) != valid {
			t.Fatalf("ValidInsts %d != valid %d", len(vi), valid)
		}
		for i := 1; i < len(vi); i++ {
			if vi[i].Addr <= vi[i-1].Addr {
				t.Fatal("ValidInsts out of order")
			}
		}
		// Occupancy never exceeds the per-byte decode count and is zero
		// exactly where nothing kept covers.
		occ := sup.Occupancy(kept)
		if len(occ) != len(code) {
			t.Fatalf("occupancy length %d != code %d", len(occ), len(code))
		}
		total := 0
		for _, c := range occ {
			if c < 0 {
				t.Fatal("negative occupancy")
			}
			total += c
		}
		wantTotal := 0
		for i := range sup.Insts {
			if !kept[i] {
				continue
			}
			n := sup.Insts[i].Len
			if end := int(sup.Insts[i].Addr-addr) + n; end > len(code) {
				n -= end - len(code)
			}
			wantTotal += n
		}
		if total != wantTotal {
			t.Fatalf("occupancy mass %d != kept instruction bytes %d", total, wantTotal)
		}

		// The dispatcher in linear mode is the linear sweep.
		lres, stats, ok := RecoverCancel(ModeLinear, code, addr, 4, nil, nil)
		if !ok || stats != nil {
			t.Fatal("linear dispatch misbehaved")
		}
		lin := Linear(code, addr)
		if len(lres.Insts) != len(lin.Insts) || lres.BadBytes != lin.BadBytes {
			t.Fatal("linear dispatch != Linear")
		}
		// Digests are deterministic.
		cres, _, _ := RecoverCancel(ModeSupersetCET, code, addr, 1, nil, nil)
		cres2, _, _ := RecoverCancel(ModeSupersetCET, code, addr, 8, nil, nil)
		if UniverseDigest(ModeSupersetCET, cres) != UniverseDigest(ModeSupersetCET, cres2) {
			t.Fatal("digest not width-deterministic")
		}
	})
}
