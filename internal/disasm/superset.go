package disasm

import (
	"errors"
	"sync/atomic"

	"e9patch/internal/work"
	"e9patch/internal/x86"
)

// Superset disassembly (Bauman et al., NDSS'18 — cited by the paper as
// an alternative frontend): decode at *every* byte offset and keep all
// valid instructions. Because E9Patch's patching is local and needs no
// control-flow facts, a superset frontend lets it patch binaries whose
// real instruction boundaries are unknown — the patcher simply receives
// more candidate locations, and the caller filters.
//
// This implementation also computes the classic refinement: an
// instruction "survives" if following fall-through and direct-branch
// successors never reaches an invalid decode inside the section. That
// prunes most of the byte-misaligned junk while keeping every true
// instruction (a superset of the real disassembly by construction).

// SupersetResult is the outcome of superset disassembly.
type SupersetResult struct {
	// Insts holds one entry per section offset that decodes; index by
	// offset via ByOffset.
	Insts []x86.Inst
	// ByOffset maps section offsets to indices into Insts (-1: the
	// offset does not decode).
	ByOffset []int
	// Valid[i] reports whether Insts[i] survives the closure
	// refinement (never reaches an invalid decode).
	Valid []bool

	// truncated marks offsets whose decode failed only because the
	// section ended mid-instruction (x86.ErrTruncated, not ErrInvalid).
	// The refinement treats such successors as unknown-but-acceptable —
	// the same way Linear simply skips the trailing bytes — so a
	// truncated final instruction never poisons the genuine chain
	// leading up to it.
	truncated []bool
	// addr is the section load address the sweep ran at.
	addr uint64
}

// Superset decodes at every offset of code (loaded at addr).
func Superset(code []byte, addr uint64) *SupersetResult {
	res, _ := SupersetCancel(code, addr, 1, nil, nil)
	return res
}

// SupersetCancel is Superset with a sharded decode sweep and
// cooperative cancellation. Decoding at every offset is memoryless —
// each offset is independent — so shards simply split the offset range
// and the merge is a deterministic concatenation: the result is
// identical for every width and pool state. Once cancel is closed the
// sweep stops within a few thousand offsets and reports ok=false with
// a partial result the caller must discard. The refinement fixpoint
// runs sequentially after the merge.
func SupersetCancel(code []byte, addr uint64, width int, pool *work.Pool, cancel <-chan struct{}) (*SupersetResult, bool) {
	res := &SupersetResult{
		ByOffset:  make([]int, len(code)),
		truncated: make([]bool, len(code)),
		addr:      addr,
	}
	for off := range code {
		res.ByOffset[off] = -1
	}

	nsh := len(code) / minShardBytes
	if nsh > width {
		if most := width * 4; nsh > most {
			nsh = most
		}
	}
	if width <= 1 || nsh <= 1 {
		nsh = 1
	}
	shardLo := func(i int) int { return i * len(code) / nsh }
	shards := make([][]x86.Inst, nsh)
	var aborted int32
	work.ForEach(pool, width, nsh, func(i int) {
		lo, hi := shardLo(i), shardLo(i+1)
		var insts []x86.Inst
		steps := 0
		for off := lo; off < hi; off++ {
			if cancel != nil && steps&(cancelStride-1) == 0 {
				select {
				case <-cancel:
					atomic.StoreInt32(&aborted, 1)
					return
				default:
				}
			}
			steps++
			inst, err := x86.Decode(code[off:], addr+uint64(off))
			if err != nil {
				// Disjoint offset ranges: no write races on truncated.
				res.truncated[off] = errors.Is(err, x86.ErrTruncated)
				continue
			}
			insts = append(insts, inst)
		}
		shards[i] = insts
	})
	if atomic.LoadInt32(&aborted) != 0 {
		return nil, false
	}

	total := 0
	for _, sh := range shards {
		total += len(sh)
	}
	res.Insts = make([]x86.Inst, 0, total)
	for _, sh := range shards {
		for j := range sh {
			res.ByOffset[sh[j].Addr-addr] = len(res.Insts)
			res.Insts = append(res.Insts, sh[j])
		}
	}
	res.refine(code, addr)
	return res, true
}

// refine computes the valid set: an instruction is invalid if its
// fall-through (or a direct branch target inside the section) lands on
// an offset that does not decode and is inside the section. Offsets
// that fail to decode only because the section ends mid-instruction
// are treated like falling off the section end — unknown but
// acceptable, matching Linear's skip behavior for a truncated tail.
// The computation is a reverse fixpoint over the successor graph.
func (r *SupersetResult) refine(code []byte, addr uint64) {
	n := len(r.Insts)
	r.Valid = make([]bool, n)
	// state: 0 = unknown, 1 = valid, 2 = invalid.
	state := make([]uint8, n)

	inSection := func(a uint64) bool {
		return a >= addr && a < addr+uint64(len(code))
	}
	// succs returns the instruction's decodable successor offsets
	// within the section, and whether any successor is a hard invalid.
	succs := func(i int) (out []int, bad bool) {
		in := &r.Insts[i]
		// Fall-through (unless the instruction never falls through).
		if in.Attrs&x86.AttrStop == 0 {
			ft := in.Addr + uint64(in.Len)
			if inSection(ft) {
				out = append(out, int(ft-addr))
			}
			// Falling off the end of the section is treated as
			// unknown-but-acceptable (the section may continue into
			// another).
		}
		// Direct branch target.
		if in.RelSize != 0 {
			t := in.Target()
			if inSection(t) {
				out = append(out, int(t-addr))
			} else if in.Attrs&(x86.AttrJump|x86.AttrCondJump) != 0 {
				// Branch to outside the section: acceptable
				// (PLT/other sections) — not evidence of invalidity.
				_ = t
			}
		}
		kept := out[:0]
		for _, o := range out {
			if r.ByOffset[o] == -1 {
				if r.truncated[o] {
					// Span-end truncation: no instruction to chain to,
					// but no evidence of invalidity either.
					continue
				}
				return nil, true
			}
			kept = append(kept, o)
		}
		return kept, false
	}

	// Iterate to fixpoint: mark invalid anything that must reach an
	// invalid decode.
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			if state[i] == 2 {
				continue
			}
			ss, bad := succs(i)
			if bad {
				if state[i] != 2 {
					state[i] = 2
					changed = true
				}
				continue
			}
			for _, o := range ss {
				if state[r.ByOffset[o]] == 2 {
					state[i] = 2
					changed = true
					break
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		r.Valid[i] = state[i] != 2
	}
}

// TruncatedAt reports whether the decode at the given section offset
// failed only because the section ended mid-instruction.
func (r *SupersetResult) TruncatedAt(off int) bool {
	return off >= 0 && off < len(r.truncated) && r.truncated[off]
}

// ValidInsts returns the surviving instructions in address order.
func (r *SupersetResult) ValidInsts() []x86.Inst {
	var out []x86.Inst
	for i := range r.Insts {
		if r.Valid[i] {
			out = append(out, r.Insts[i])
		}
	}
	return out
}

// Count returns (decoded, surviving) instruction counts.
func (r *SupersetResult) Count() (decoded, valid int) {
	decoded = len(r.Insts)
	for _, v := range r.Valid {
		if v {
			valid++
		}
	}
	return
}

// BadOffsets counts section offsets where no instruction decodes at
// all (the superset analogue of Linear's BadBytes).
func (r *SupersetResult) BadOffsets() int {
	n := 0
	for _, idx := range r.ByOffset {
		if idx == -1 {
			n++
		}
	}
	return n
}

// Occupancy returns, for every section byte, how many of the kept
// instructions cover it. kept selects the instruction subset (nil: the
// refinement's valid set) — e9dump uses this to make prune decisions
// inspectable: bytes at occupancy 0 are classified data/padding, >1
// means overlapping candidate instructions survived.
func (r *SupersetResult) Occupancy(kept []bool) []int {
	if kept == nil {
		kept = r.Valid
	}
	occ := make([]int, len(r.ByOffset))
	for i := range r.Insts {
		if !kept[i] {
			continue
		}
		in := &r.Insts[i]
		off := int(in.Addr - r.addr)
		for b := 0; b < in.Len && off+b < len(occ); b++ {
			occ[off+b]++
		}
	}
	return occ
}
