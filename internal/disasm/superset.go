package disasm

import (
	"e9patch/internal/x86"
)

// Superset disassembly (Bauman et al., NDSS'18 — cited by the paper as
// an alternative frontend): decode at *every* byte offset and keep all
// valid instructions. Because E9Patch's patching is local and needs no
// control-flow facts, a superset frontend lets it patch binaries whose
// real instruction boundaries are unknown — the patcher simply receives
// more candidate locations, and the caller filters.
//
// This implementation also computes the classic refinement: an
// instruction "survives" if following fall-through and direct-branch
// successors never reaches an invalid decode inside the section. That
// prunes most of the byte-misaligned junk while keeping every true
// instruction (a superset of the real disassembly by construction).

// SupersetResult is the outcome of superset disassembly.
type SupersetResult struct {
	// Insts holds one entry per section offset that decodes; index by
	// offset via ByOffset.
	Insts []x86.Inst
	// ByOffset maps section offsets to indices into Insts (-1: the
	// offset does not decode).
	ByOffset []int
	// Valid[i] reports whether Insts[i] survives the closure
	// refinement (never reaches an invalid decode).
	Valid []bool
}

// Superset decodes at every offset of code (loaded at addr).
func Superset(code []byte, addr uint64) *SupersetResult {
	res := &SupersetResult{
		ByOffset: make([]int, len(code)),
	}
	for off := range code {
		res.ByOffset[off] = -1
	}
	for off := 0; off < len(code); off++ {
		inst, err := x86.Decode(code[off:], addr+uint64(off))
		if err != nil {
			continue
		}
		res.ByOffset[off] = len(res.Insts)
		res.Insts = append(res.Insts, inst)
	}
	res.refine(code, addr)
	return res
}

// refine computes the valid set: an instruction is invalid if its
// fall-through (or a direct branch target inside the section) lands on
// an offset that does not decode and is inside the section. The
// computation is a reverse fixpoint over the successor graph.
func (r *SupersetResult) refine(code []byte, addr uint64) {
	n := len(r.Insts)
	r.Valid = make([]bool, n)
	// state: 0 = unknown, 1 = valid, 2 = invalid.
	state := make([]uint8, n)

	inSection := func(a uint64) bool {
		return a >= addr && a < addr+uint64(len(code))
	}
	// succs returns the instruction's successor offsets within the
	// section, and whether any successor is a hard invalid.
	succs := func(i int) (out []int, bad bool) {
		in := &r.Insts[i]
		// Fall-through (unless the instruction never falls through).
		if in.Attrs&x86.AttrStop == 0 {
			ft := in.Addr + uint64(in.Len)
			if inSection(ft) {
				out = append(out, int(ft-addr))
			}
			// Falling off the end of the section is treated as
			// unknown-but-acceptable (the section may continue into
			// another).
		}
		// Direct branch target.
		if in.RelSize != 0 {
			t := in.Target()
			if inSection(t) {
				out = append(out, int(t-addr))
			} else if in.Attrs&(x86.AttrJump|x86.AttrCondJump) != 0 {
				// Branch to outside the section: acceptable
				// (PLT/other sections) — not evidence of invalidity.
				_ = t
			}
		}
		for _, o := range out {
			if r.ByOffset[o] == -1 {
				return out, true
			}
		}
		return out, false
	}

	// Iterate to fixpoint: mark invalid anything that must reach an
	// invalid decode.
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			if state[i] == 2 {
				continue
			}
			ss, bad := succs(i)
			if bad {
				if state[i] != 2 {
					state[i] = 2
					changed = true
				}
				continue
			}
			for _, o := range ss {
				if state[r.ByOffset[o]] == 2 {
					state[i] = 2
					changed = true
					break
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		r.Valid[i] = state[i] != 2
	}
}

// ValidInsts returns the surviving instructions in address order.
func (r *SupersetResult) ValidInsts() []x86.Inst {
	var out []x86.Inst
	for i := range r.Insts {
		if r.Valid[i] {
			out = append(out, r.Insts[i])
		}
	}
	return out
}

// Count returns (decoded, surviving) instruction counts.
func (r *SupersetResult) Count() (decoded, valid int) {
	decoded = len(r.Insts)
	for _, v := range r.Valid {
		if v {
			valid++
		}
	}
	return
}
