package disasm

import (
	"bytes"
	"testing"

	"e9patch/internal/workload"
	"e9patch/internal/x86"
)

// TestCETPruneClosure builds two endbr64-anchored functions separated
// by nop padding and a stretch of data-like junk: the closure must keep
// both function bodies (including a short backward loop) and prune the
// padding and everything decoded out of the junk.
func TestCETPruneClosure(t *testing.T) {
	a := x86.NewAsm(0x401000)
	// f0: anchored, with an internal direct branch.
	a.Endbr64()
	a.PushReg(x86.RBP)
	top := a.NewLabel()
	a.Bind(top)
	a.AddRegImm64(x86.RAX, 1)
	a.CmpRegImm64(x86.RAX, 10)
	a.JccShort(x86.CondL, top)
	a.PopReg(x86.RBP)
	a.Ret()
	// Inter-function padding: decodes fine, reachable from nothing.
	padOff := a.Len()
	a.Nop()
	a.Nop()
	// f1: anchored.
	f1Off := a.Len()
	a.Endbr64()
	a.XorRegReg64(x86.RCX, x86.RCX)
	a.Ret()
	code := a.MustFinish()

	sup := Superset(code, 0x401000)
	kept, anchors := sup.CETPrune()
	if anchors < 2 {
		t.Fatalf("anchors = %d, want >= 2", anchors)
	}
	// kept ⊆ valid by construction.
	for i := range kept {
		if kept[i] && !sup.Valid[i] {
			t.Fatalf("kept[%d] but not valid", i)
		}
	}
	keptAt := func(off int) bool {
		idx := sup.ByOffset[off]
		return idx != -1 && kept[idx]
	}
	// Both function bodies survive: walk the linear decode and check
	// every genuine instruction is kept (all are anchor-reachable here).
	lin := Linear(code, 0x401000)
	for _, in := range lin.Insts {
		off := int(in.Addr - 0x401000)
		if off == padOff || off == padOff+1 {
			continue // the padding is the pruning target
		}
		if !keptAt(off) {
			t.Errorf("genuine instruction at offset %d pruned", off)
		}
	}
	if keptAt(padOff) || keptAt(padOff+1) {
		t.Error("unreachable padding survived CET pruning")
	}
	if !keptAt(f1Off) {
		t.Error("anchored second function pruned")
	}

	// KeptInsts is in address order and matches the mask cardinality.
	insts := sup.KeptInsts(kept)
	n := 0
	for _, k := range kept {
		if k {
			n++
		}
	}
	if len(insts) != n {
		t.Fatalf("KeptInsts returned %d, mask has %d", len(insts), n)
	}
	for i := 1; i < len(insts); i++ {
		if insts[i].Addr <= insts[i-1].Addr {
			t.Fatal("KeptInsts not in address order")
		}
	}
}

// TestCETPruneSectionStartSeed checks the section entry counts as an
// anchor even without any endbr64, so non-CET code keeps its
// fall-through spine rather than collapsing to nothing.
func TestCETPruneSectionStartSeed(t *testing.T) {
	a := x86.NewAsm(0x401000)
	a.AddRegImm64(x86.RAX, 1)
	a.AddRegImm64(x86.RAX, 2)
	a.Ret()
	code := a.MustFinish()
	sup := Superset(code, 0x401000)
	kept, anchors := sup.CETPrune()
	if anchors != 1 {
		t.Fatalf("anchors = %d, want exactly the section start", anchors)
	}
	insts := sup.KeptInsts(kept)
	if len(insts) != 3 {
		t.Fatalf("kept %d insts, want the 3-instruction spine", len(insts))
	}
}

// TestCETPruneOnCETProfile runs the real generator: a CET workload
// profile recovers one anchor per generated function and the kept set
// stays within the refined valid set.
func TestCETPruneOnCETProfile(t *testing.T) {
	var cet *workload.Profile
	for i := range workload.ModernProfiles {
		if workload.ModernProfiles[i].CET && !workload.ModernProfiles[i].DSO {
			cet = &workload.ModernProfiles[i]
			break
		}
	}
	if cet == nil {
		t.Fatal("no CET profile registered")
	}
	prog, err := workload.BuildStatic(*cet, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	code, addr := textOf(t, prog.ELF)
	// The generator emits one endbr64 per function prologue.
	pads := bytes.Count(code, []byte{0xF3, 0x0F, 0x1E, 0xFA})
	if pads == 0 {
		t.Fatal("CET profile has no endbr64 landing pads")
	}
	sup := Superset(code, addr)
	kept, anchors := sup.CETPrune()
	if anchors < pads {
		t.Errorf("anchors %d < %d endbr64 pads", anchors, pads)
	}
	nKept := 0
	for i, k := range kept {
		if !k {
			continue
		}
		nKept++
		if !sup.Valid[i] {
			t.Fatal("kept instruction not valid")
		}
	}
	// The closure recovers the bulk of the linear stream. It is not
	// 100%: inter-function nop padding and code the generator emits
	// after an unconditional jmp (dead, targeted by nothing) are
	// correctly classified unreachable.
	lin := Linear(code, addr)
	reached := 0
	for _, in := range lin.Insts {
		if idx := sup.ByOffset[in.Addr-addr]; idx != -1 && kept[idx] {
			reached++
		}
	}
	if frac := float64(reached) / float64(len(lin.Insts)); frac < 0.6 {
		t.Errorf("CET closure reaches only %.1f%% of the linear stream", 100*frac)
	}
	if reached == len(lin.Insts) {
		t.Error("closure reached everything: the padding should have been pruned")
	}
	_ = nKept
}
