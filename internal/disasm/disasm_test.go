package disasm

import (
	"testing"

	"e9patch/internal/x86"
)

func TestLinear(t *testing.T) {
	a := x86.NewAsm(0x400000)
	a.MovMemReg64(x86.M(x86.RBX, 0), x86.RAX) // heap write
	a.AddRegImm64(x86.RAX, 32)
	l := a.NewLabel()
	a.Bind(l)
	a.JccShort(x86.CondE, l)                  // jcc
	a.Jmp(l)                                  // jmp
	a.MovMemReg64(x86.M(x86.RSP, 8), x86.RAX) // stack write: not A2
	a.Ret()
	code := a.MustFinish()

	res := Linear(code, 0x400000)
	if res.BadBytes != 0 {
		t.Fatalf("bad bytes: %d", res.BadBytes)
	}
	if len(res.Insts) != 6 {
		t.Fatalf("got %d instructions", len(res.Insts))
	}
	if got := SelectJumps(res.Insts); len(got) != 2 {
		t.Errorf("jumps = %v", got)
	}
	hw := SelectHeapWrites(res.Insts)
	if len(hw) != 1 || hw[0] != 0 {
		t.Errorf("heap writes = %v", hw)
	}
	if got := SelectAll(res.Insts); len(got) != 6 {
		t.Errorf("all = %v", got)
	}
}

func TestLinearSkipsData(t *testing.T) {
	// Interleave valid code with invalid bytes (0x06 is invalid in
	// 64-bit mode).
	code := []byte{0x90, 0x06, 0x06, 0x90, 0xC3}
	res := Linear(code, 0x1000)
	if res.BadBytes != 2 {
		t.Errorf("bad bytes = %d, want 2", res.BadBytes)
	}
	if len(res.Insts) != 3 {
		t.Errorf("insts = %d, want 3", len(res.Insts))
	}
}

func TestLinearAddresses(t *testing.T) {
	a := x86.NewAsm(0x400000)
	a.PushReg(x86.RBP)
	a.MovRegReg64(x86.RBP, x86.RSP)
	a.PopReg(x86.RBP)
	a.Ret()
	res := Linear(a.MustFinish(), 0x400000)
	want := []uint64{0x400000, 0x400001, 0x400004, 0x400005}
	for i, in := range res.Insts {
		if in.Addr != want[i] {
			t.Errorf("inst %d addr %#x, want %#x", i, in.Addr, want[i])
		}
	}
}
