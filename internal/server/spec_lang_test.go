package server

import (
	"bytes"
	"encoding/base64"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"e9patch"
	"e9patch/internal/lang"
	"e9patch/internal/workload"
)

// postSpec POSTs bin to the rewrite endpoint with extra query values
// and headers, returning the response and body.
func postSpec(t *testing.T, ts *httptest.Server, bin []byte, query url.Values, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/rewrite?"+query.Encode(), bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestSpecParamEndToEnd drives the spec-language request path: the
// served output must be byte-identical to a direct library rewrite of
// the same spec, and the spec must key the cache separately from an
// equivalent legacy match expression.
func TestSpecParamEndToEnd(t *testing.T) {
	srv := New(Config{Workers: 2, QueueLen: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	bin := kernelELF(t)

	const specText = "match jcc & short\nexclude addr=0x0..0x1000\n"
	sp, err := lang.ParseSpec(specText)
	if err != nil {
		t.Fatal(err)
	}
	br, err := sp.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e9patch.Rewrite(bin, e9patch.Config{Select: br.Select, Template: br.Template})
	if err != nil {
		t.Fatal(err)
	}

	q := url.Values{"spec": {specText}}
	resp, out := postSpec(t, ts, bin, q, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if !bytes.Equal(out, want.Output) {
		t.Fatal("served output differs from direct library rewrite")
	}
	if got := resp.Header.Get("X-E9-Cache"); got != "miss" {
		t.Errorf("first request cache status %q", got)
	}

	// Repeat: same spec text must hit the cache.
	resp, _ = postSpec(t, ts, bin, q, nil)
	if got := resp.Header.Get("X-E9-Cache"); got != "hit" {
		t.Errorf("repeat cache status %q, want hit", got)
	}

	// A legacy request computing the same selection still keys
	// separately (spec hash folds into the cache key).
	resp, _ = postSpec(t, ts, bin, url.Values{"match": {"jcc & short"}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy request status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-E9-Cache"); got != "miss" {
		t.Errorf("legacy request cache status %q, want miss", got)
	}
	if n := metricValue(t, srv.Handler(), "e9served_rewrites_total"); n != 2 {
		t.Errorf("rewrites_total = %g, want 2", n)
	}
}

// TestSpecHeaderWithPayload exercises the base64 header transport and
// the call-patch payload: the shipped syscall_trace recipe rewrites a
// kernel through the service, byte-identically to the library.
func TestSpecHeaderWithPayload(t *testing.T) {
	srv := New(Config{Workers: 2, QueueLen: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	bin := kernelELF(t)

	rec, ok := workload.RecipeByName("syscall_trace")
	if !ok {
		t.Fatal("recipe missing")
	}
	payload, err := rec.BuildPayload()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := lang.ParseSpec(rec.Spec)
	if err != nil {
		t.Fatal(err)
	}
	br, err := sp.Build(payload)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e9patch.Rewrite(bin, e9patch.Config{
		Select: br.Select, Template: br.Template, Inject: br.Inject,
	})
	if err != nil {
		t.Fatal(err)
	}

	hdr := map[string]string{
		"X-E9-Spec":    base64.StdEncoding.EncodeToString([]byte(rec.Spec)),
		"X-E9-Payload": base64.StdEncoding.EncodeToString(payload),
	}
	resp, out := postSpec(t, ts, bin, nil, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if !bytes.Equal(out, want.Output) {
		t.Fatal("served output differs from direct library rewrite")
	}
}

// TestBadSpecMaps422 checks the ErrBadSpec contract: semantically
// invalid spec programs return 422 with the line:column in the body
// and count one bad-spec rejection (under the bare class label).
func TestBadSpecMaps422(t *testing.T) {
	srv := New(Config{Workers: 1, QueueLen: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	bin := kernelELF(t)

	resp, body := postSpec(t, ts, bin, url.Values{"spec": {"match bogus\n"}}, nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "line 1:7") {
		t.Errorf("body %q missing position line 1:7", body)
	}
	if !strings.Contains(string(body), "unknown term") {
		t.Errorf("body %q missing diagnosis", body)
	}
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rr.Body.String(), `e9served_rejected_total{reason="bad-spec"} 1`) {
		t.Errorf("metrics missing bad-spec rejection:\n%s", rr.Body.String())
	}

	// A call patch without payload bytes is a 400-class request
	// problem, not a spec-syntax 422.
	resp, _ = postSpec(t, ts, bin, url.Values{"spec": {"match jcc\npatch call f(addr) @x\n"}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("payload-less call patch: status %d, want 400", resp.StatusCode)
	}
}

// TestSpecExclusiveWithMatch checks the parameter exclusivity rules.
func TestSpecExclusiveWithMatch(t *testing.T) {
	srv := New(Config{Workers: 1, QueueLen: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	bin := kernelELF(t)

	resp, body := postSpec(t, ts, bin,
		url.Values{"spec": {"match jcc\n"}, "match": {"jcc"}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, body)
	}
	resp, _ = postSpec(t, ts, bin,
		url.Values{"spec": {"match jcc\n"}, "action": {"lowfat"}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("spec+action: status %d, want 400", resp.StatusCode)
	}
	// Bad base64 in the header transport.
	resp, _ = postSpec(t, ts, bin, nil, map[string]string{"X-E9-Spec": "!!!"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad base64: status %d, want 400", resp.StatusCode)
	}
}

// TestSpecCanonicalKeys pins the cache-key behaviour: distinct spec
// texts and distinct payloads yield distinct canonical forms, while a
// byte-identical request canonicalises identically.
func TestSpecCanonicalKeys(t *testing.T) {
	mk := func(text string, payload []byte) *Spec {
		s := &Spec{SpecText: text, Payload: payload, Granularity: 1}
		return s
	}
	a := mk("match jcc\n", nil)
	b := mk("match jcc & short\n", nil)
	c := mk("match jcc\n", []byte{1})
	if a.Canonical() == b.Canonical() {
		t.Error("different spec texts share a canonical form")
	}
	if a.Canonical() == c.Canonical() {
		t.Error("different payloads share a canonical form")
	}
	if a.Canonical() != mk("match jcc\n", nil).Canonical() {
		t.Error("identical requests canonicalise differently")
	}
	legacy := &Spec{Match: "jcc", Action: "empty", Granularity: 1}
	if strings.Contains(legacy.Canonical(), "|spec=") {
		t.Error("legacy requests must not carry a spec hash")
	}
}
