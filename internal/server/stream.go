package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"e9patch"
	"e9patch/internal/rpc"
)

// handleRewriteV2 serves the streaming protocol endpoint: the request
// body is a line-delimited JSON-RPC session (option* binary
// (patch|reserve)* emit — internal/rpc, DESIGN.md §12), typically sent
// with chunked transfer encoding so the client can stream patch
// batches while the binary is already open server-side. The response
// body is the rewritten binary; per-message replies are not written
// (the stats land in X-E9-Stats, like v1).
//
// Unlike v1, a v2 session is stateful and cannot be cached or
// coalesced, so it runs on the handler goroutine; per-session memory
// stays bounded by MaxBodyBytes (one copy of the framed binary, no
// input copies in the pipeline, single-allocation output) and shard
// helpers still draw from the server-wide worker budget.
func (s *Server) handleRewriteV2(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.AddInflight(1)
	code := "200"
	defer func() {
		s.metrics.AddInflight(-1)
		s.metrics.IncRequest(code)
		s.metrics.Observe(time.Since(start).Seconds())
	}()
	fail := func(status int, msg string) {
		code = fmt.Sprint(status)
		http.Error(w, msg, status)
	}

	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}

	// One cap bounds the whole stream — messages and framed payload
	// alike — so a session can never hold more than one body's worth of
	// client bytes. Filesystem paths stay off this transport entirely.
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	opts := rpc.Options{
		MaxBinaryBytes: s.cfg.MaxBodyBytes,
		Base: e9patch.Config{
			Parallelism: s.cfg.Workers,
			Pool:        s.shards,
			Limits:      s.cfg.Limits,
		},
	}
	d := rpc.NewDecoder(body, 0)
	sess := rpc.NewSession(opts)
	defer sess.Close()

	mapErr := func(err error) {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			fail(http.StatusRequestEntityTooLarge,
				fmt.Sprintf("stream exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		var ee *e9patch.Error
		if errors.As(err, &ee) && ee.Phase == "rpc" && !errors.Is(err, e9patch.ErrResourceLimit) {
			// Protocol-level breakage — bad JSON, out-of-order messages,
			// unknown methods — is a malformed request, not a semantic
			// rejection of the binary.
			fail(http.StatusBadRequest, err.Error())
			return
		}
		s.failClassified(err, fail, func() { code = "499" })
	}

	for !sess.Done() {
		msg, err := d.Next()
		if err == io.EOF {
			fail(http.StatusBadRequest, "stream ended before emit")
			return
		}
		if err != nil {
			mapErr(err)
			return
		}
		if _, err := sess.Handle(ctx, msg, d); err != nil {
			mapErr(err)
			return
		}
	}

	s.metrics.IncStream()
	s.metrics.IncRewrite()
	s.serve(w, entryFromResult(sess.Result()), "stream")
}
