package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// latencyBuckets are the histogram upper bounds in seconds.
var latencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Metrics is a hand-rolled metrics registry exposed in Prometheus text
// format (the module has no dependencies, so no client library). All
// mutators are safe for concurrent use.
type Metrics struct {
	mu        sync.Mutex
	requests  map[string]uint64 // by HTTP status code
	rewrites  uint64            // underlying RewriteContext invocations
	hits      uint64            // result-cache hits
	misses    uint64            // result-cache misses
	planHits  uint64            // plan-cache hits (result rematerialized)
	planMiss  uint64            // plan-cache misses
	streams   uint64            // completed v2 streaming sessions
	coalesced uint64            // requests that shared another request's flight
	queueFull uint64            // submissions rejected by backpressure
	panics    uint64            // panics contained by a recovery boundary
	rejected  map[string]uint64 // resource-limit rejections by reason
	inflight  int64             // requests currently being handled

	peerPlanHits uint64            // results rematerialized from a peer-fetched plan
	peerPlanMiss uint64            // peer plan fetches that found no plan (or no peer)
	forwarded    uint64            // requests routed to their key's owner node
	fwdFallback  uint64            // forwards that failed over to local handling
	planDelta    uint64            // plan-delta (application/x-e9-plan) responses
	batches      uint64            // completed /v1/batch jobs
	batchItems   map[string]uint64 // batch items by outcome ("ok"/"error")

	buckets []uint64 // len(latencyBuckets)+1, last slot is +Inf
	latSum  float64
	latN    uint64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:   make(map[string]uint64),
		rejected:   make(map[string]uint64),
		batchItems: make(map[string]uint64),
		buckets:    make([]uint64, len(latencyBuckets)+1),
	}
}

// IncRequest counts one finished request by status code.
func (m *Metrics) IncRequest(code string) {
	m.mu.Lock()
	m.requests[code]++
	m.mu.Unlock()
}

// IncRewrite counts one underlying rewrite execution.
func (m *Metrics) IncRewrite() { m.inc(&m.rewrites) }

// IncHit / IncMiss / IncCoalesced / IncQueueFull count cache and
// coalescing outcomes.
func (m *Metrics) IncHit()  { m.inc(&m.hits) }
func (m *Metrics) IncMiss() { m.inc(&m.misses) }

// IncPlanHit / IncPlanMiss count plan-tier outcomes (consulted only
// after a result-cache miss).
func (m *Metrics) IncPlanHit()   { m.inc(&m.planHits) }
func (m *Metrics) IncPlanMiss()  { m.inc(&m.planMiss) }
func (m *Metrics) IncCoalesced() { m.inc(&m.coalesced) }

// IncStream counts one v2 streaming session that reached a clean emit.
func (m *Metrics) IncStream()    { m.inc(&m.streams) }
func (m *Metrics) IncQueueFull() { m.inc(&m.queueFull) }

// IncPanicRecovered counts one panic contained by a recovery boundary
// (worker-pool job or library pipeline) instead of killing the process.
func (m *Metrics) IncPanicRecovered() { m.inc(&m.panics) }

// IncPeerPlanHit / IncPeerPlanMiss count peer plan-fetch outcomes: a
// hit is a result rematerialized from a plan the key's owner shipped
// over, a miss means the owner held no plan (or was unreachable) and a
// full local rewrite followed.
func (m *Metrics) IncPeerPlanHit()  { m.inc(&m.peerPlanHits) }
func (m *Metrics) IncPeerPlanMiss() { m.inc(&m.peerPlanMiss) }

// IncForwarded / IncForwardFallback count front-door routing: requests
// proxied to their key's owner, and forwards that failed over to local
// handling because the owner was down.
func (m *Metrics) IncForwarded()       { m.inc(&m.forwarded) }
func (m *Metrics) IncForwardFallback() { m.inc(&m.fwdFallback) }

// IncPlanDelta counts plan-delta responses (the client applies
// locally; egress drops from binary-size to plan-size).
func (m *Metrics) IncPlanDelta() { m.inc(&m.planDelta) }

// IncBatch counts one completed /v1/batch job; IncBatchItem counts
// each item within one by outcome.
func (m *Metrics) IncBatch() { m.inc(&m.batches) }
func (m *Metrics) IncBatchItem(outcome string) {
	m.mu.Lock()
	m.batchItems[outcome]++
	m.mu.Unlock()
}

// IncRejected counts one request rejected by a resource limit, by
// machine-readable reason (the e9err.Reason* constants).
func (m *Metrics) IncRejected(reason string) {
	m.mu.Lock()
	m.rejected[reason]++
	m.mu.Unlock()
}

func (m *Metrics) inc(p *uint64) {
	m.mu.Lock()
	*p++
	m.mu.Unlock()
}

// AddInflight adjusts the in-flight request gauge.
func (m *Metrics) AddInflight(d int64) {
	m.mu.Lock()
	m.inflight += d
	m.mu.Unlock()
}

// Observe records one request latency in seconds.
func (m *Metrics) Observe(seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := 0
	for i < len(latencyBuckets) && seconds > latencyBuckets[i] {
		i++
	}
	m.buckets[i]++
	m.latSum += seconds
	m.latN++
}

// Gauges carries point-in-time values owned by other components,
// sampled at scrape time.
type Gauges struct {
	QueueDepth         int
	CacheEntries       int
	CacheBytes         int64
	CacheEvictions     uint64
	PlanCacheEntries   int
	PlanCacheBytes     int64
	PlanCacheEvictions uint64
	Workers            int
}

// WriteText renders the registry in Prometheus text exposition format.
func (m *Metrics) WriteText(w io.Writer, g Gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP e9served_requests_total Finished HTTP requests by status code.\n")
	fmt.Fprintf(w, "# TYPE e9served_requests_total counter\n")
	codes := make([]string, 0, len(m.requests))
	for c := range m.requests {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "e9served_requests_total{code=%q} %d\n", c, m.requests[c])
	}

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("e9served_rewrites_total", "Underlying rewrite pipeline executions.", m.rewrites)
	counter("e9served_cache_hits_total", "Result-cache hits.", m.hits)
	counter("e9served_cache_misses_total", "Result-cache misses.", m.misses)
	counter("e9served_cache_evictions_total", "Result-cache evictions.", g.CacheEvictions)
	counter("e9served_plan_cache_hits_total", "Plan-cache hits (result rematerialized from a cached plan).", m.planHits)
	counter("e9served_plan_cache_misses_total", "Plan-cache misses.", m.planMiss)
	counter("e9served_plan_cache_evictions_total", "Plan-cache evictions.", g.PlanCacheEvictions)
	counter("e9served_coalesced_total", "Requests coalesced onto another request's rewrite.", m.coalesced)
	counter("e9served_streams_total", "v2 streaming sessions completed.", m.streams)
	counter("e9served_queue_full_total", "Requests rejected because the work queue was full.", m.queueFull)
	counter("e9served_panic_recovered_total", "Panics contained by a recovery boundary.", m.panics)
	counter("e9served_peer_plan_hits_total", "Results rematerialized from a peer-fetched plan.", m.peerPlanHits)
	counter("e9served_peer_plan_misses_total", "Peer plan fetches that found no usable plan.", m.peerPlanMiss)
	counter("e9served_forwarded_total", "Requests routed to their key's owner node.", m.forwarded)
	counter("e9served_forward_fallback_total", "Forwards failed over to local handling (owner down).", m.fwdFallback)
	counter("e9served_plan_delta_total", "Plan-delta responses served (client applies locally).", m.planDelta)
	counter("e9served_batches_total", "Completed /v1/batch jobs.", m.batches)

	fmt.Fprintf(w, "# HELP e9served_batch_items_total Batch items by outcome.\n")
	fmt.Fprintf(w, "# TYPE e9served_batch_items_total counter\n")
	outcomes := make([]string, 0, len(m.batchItems))
	for o := range m.batchItems {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	for _, o := range outcomes {
		fmt.Fprintf(w, "e9served_batch_items_total{outcome=%q} %d\n", o, m.batchItems[o])
	}

	fmt.Fprintf(w, "# HELP e9served_rejected_total Requests rejected by a resource limit, by reason.\n")
	fmt.Fprintf(w, "# TYPE e9served_rejected_total counter\n")
	reasons := make([]string, 0, len(m.rejected))
	for reason := range m.rejected {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		fmt.Fprintf(w, "e9served_rejected_total{reason=%q} %d\n", reason, m.rejected[reason])
	}

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("e9served_inflight", "Requests currently being handled.", m.inflight)
	gauge("e9served_queue_depth", "Jobs queued but not yet started.", int64(g.QueueDepth))
	gauge("e9served_workers", "Worker pool size.", int64(g.Workers))
	gauge("e9served_cache_entries", "Result-cache entry count.", int64(g.CacheEntries))
	gauge("e9served_cache_bytes", "Result-cache bytes in use.", g.CacheBytes)
	gauge("e9served_plan_cache_entries", "Plan-cache entry count.", int64(g.PlanCacheEntries))
	gauge("e9served_plan_cache_bytes", "Plan-cache bytes in use.", g.PlanCacheBytes)

	fmt.Fprintf(w, "# HELP e9served_request_duration_seconds Request latency.\n")
	fmt.Fprintf(w, "# TYPE e9served_request_duration_seconds histogram\n")
	cum := uint64(0)
	for i, ub := range latencyBuckets {
		cum += m.buckets[i]
		fmt.Fprintf(w, "e9served_request_duration_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += m.buckets[len(latencyBuckets)]
	fmt.Fprintf(w, "e9served_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "e9served_request_duration_seconds_sum %g\n", m.latSum)
	fmt.Fprintf(w, "e9served_request_duration_seconds_count %d\n", m.latN)
}

// trimFloat formats a bucket bound the way Prometheus clients do
// (no trailing zeros).
func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
