package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"e9patch"
	"e9patch/internal/x86"
)

// postBin POSTs bin to url and returns the status code and body.
func postBin(t *testing.T, url string, bin []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestWorkerSurvivesPanickingRewrite kills a job with a deliberate
// panic and verifies the containment contract: the request answers 500
// with a generic body (no panic detail leaked), panic_recovered_total
// increments, and the same worker then serves the next request.
func TestWorkerSurvivesPanickingRewrite(t *testing.T) {
	srv := New(Config{Workers: 1, QueueLen: 8, Logf: t.Logf})
	defer srv.Close()
	var calls atomic.Int32
	srv.rewrite = func(ctx context.Context, bin []byte, spec *Spec) (*e9patch.Result, error) {
		if calls.Add(1) == 1 {
			panic("deliberate test panic: " + spec.Match)
		}
		return &e9patch.Result{Output: []byte("patched")}, nil
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/rewrite?match=jcc"

	status, body := postBin(t, url, []byte("bin"))
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking job: status %d, want 500 (body %q)", status, body)
	}
	if strings.Contains(body, "deliberate test panic") {
		t.Fatalf("500 body leaks internal detail: %q", body)
	}
	if got := metricValue(t, srv.Handler(), "e9served_panic_recovered_total"); got != 1 {
		t.Fatalf("panic_recovered_total = %g, want 1", got)
	}

	status, body = postBin(t, url, []byte("bin"))
	if status != http.StatusOK || body != "patched" {
		t.Fatalf("request after panic: status %d body %q, want 200 %q", status, body, "patched")
	}
}

// TestPanickingSelectorContained drives the real pipeline with a
// selector that panics: the library's recovery boundary converts it to
// a classified internal error, the server maps it to a generic 500,
// and the service keeps serving rewrites afterwards.
func TestPanickingSelectorContained(t *testing.T) {
	srv := New(Config{Workers: 1, QueueLen: 8, Logf: t.Logf})
	defer srv.Close()
	var calls atomic.Int32
	srv.rewrite = func(ctx context.Context, bin []byte, spec *Spec) (*e9patch.Result, error) {
		sel := e9patch.SelectJumps
		if calls.Add(1) == 1 {
			sel = func(insts []x86.Inst) []int { panic("selector boom") }
		}
		return e9patch.RewriteContext(ctx, bin, e9patch.Config{Select: sel})
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/rewrite?match=jcc"
	bin := kernelELF(t)

	status, body := postBin(t, url, bin)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking selector: status %d, want 500 (body %q)", status, body)
	}
	if strings.Contains(body, "selector boom") {
		t.Fatalf("500 body leaks internal detail: %q", body)
	}
	if got := metricValue(t, srv.Handler(), "e9served_panic_recovered_total"); got != 1 {
		t.Fatalf("panic_recovered_total = %g, want 1", got)
	}

	if status, body := postBin(t, url, bin); status != http.StatusOK {
		t.Fatalf("request after contained panic: status %d (body %q), want 200", status, body)
	}
}

// TestLimitRejections maps resource-limit violations to their HTTP
// statuses and per-reason rejection metrics.
func TestLimitRejections(t *testing.T) {
	bin := kernelELF(t)

	srv := New(Config{Workers: 1, QueueLen: 8, Logf: t.Logf,
		Limits: e9patch.Limits{MaxTextBytes: 16}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	status, body := postBin(t, ts.URL+"/v1/rewrite?match=jcc", bin)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("text over limit: status %d (body %q), want 413", status, body)
	}
	if got := metricValue(t, srv.Handler(), `e9served_rejected_total{reason="text-too-large"}`); got != 1 {
		t.Fatalf("rejected_total{text-too-large} = %g, want 1", got)
	}

	srv2 := New(Config{Workers: 1, QueueLen: 8, Logf: t.Logf,
		Limits: e9patch.Limits{MaxPatchSites: 1}})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	status, body = postBin(t, ts2.URL+"/v1/rewrite?match=jcc", bin)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("sites over limit: status %d (body %q), want 422", status, body)
	}
	if got := metricValue(t, srv2.Handler(), `e9served_rejected_total{reason="too-many-sites"}`); got != 1 {
		t.Fatalf("rejected_total{too-many-sites} = %g, want 1", got)
	}
}

// TestGranularityClamped rejects the client-controlled block-size
// parameter outside its sane range before any allocation happens.
func TestGranularityClamped(t *testing.T) {
	srv := New(Config{Workers: 1, QueueLen: 8, Logf: t.Logf})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, g := range []string{"0", "-2", "1000000"} {
		status, body := postBin(t, ts.URL+"/v1/rewrite?match=jcc&granularity="+g, []byte("x"))
		if status != http.StatusBadRequest {
			t.Errorf("granularity=%s: status %d (body %q), want 400", g, status, body)
		}
	}
	status, _ := postBin(t, ts.URL+"/v1/rewrite?match=jcc&granularity=-1", kernelELF(t))
	if status != http.StatusOK {
		t.Errorf("granularity=-1 (grouping disabled): status %d, want 200", status)
	}
}

// TestRetryAfterFromQueueDepth checks the backpressure estimate: queue
// depth times the rolling mean rewrite duration spread over the
// workers, clamped to [1, 30] seconds.
func TestRetryAfterFromQueueDepth(t *testing.T) {
	srv := New(Config{Workers: 2, QueueLen: 8, Logf: t.Logf})
	defer srv.Close()

	if got := srv.retryAfter(); got != "1" {
		t.Fatalf("no samples yet: Retry-After %q, want \"1\"", got)
	}
	srv.observeRewrite(4 * time.Second)      // first sample seeds the mean
	if got := srv.retryAfter(); got != "2" { // ceil(4*1/2)
		t.Fatalf("mean 4s, empty queue, 2 workers: Retry-After %q, want \"2\"", got)
	}
	srv.observeRewrite(4 * time.Second) // EWMA of equal samples is stable
	if got := srv.retryAfter(); got != "2" {
		t.Fatalf("stable mean: Retry-After %q, want \"2\"", got)
	}
	srv.durMu.Lock()
	srv.meanRewriteSec = 1000 // pathological backlog clamps at the cap
	srv.durMu.Unlock()
	if got := srv.retryAfter(); got != "30" {
		t.Fatalf("huge mean: Retry-After %q, want \"30\"", got)
	}
}
