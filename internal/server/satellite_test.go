package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"e9patch"
	"e9patch/internal/cluster"
)

// TestRetryAfterClampRace (hardening sweep): the Retry-After estimate
// must stay inside [1, 30] seconds no matter what the EWMA has been
// fed, under concurrent observe/estimate traffic. Run with -race: the
// mean is shared mutable state on the 429 path.
func TestRetryAfterClampRace(t *testing.T) {
	srv := New(Config{Workers: 4, QueueLen: 4})
	defer srv.Close()

	if got := srv.retryAfter(); got != "1" {
		t.Fatalf("retryAfter before any rewrite = %q, want the 1s floor", got)
	}

	// Hostile samples: negative and zero (clock steps), sub-microsecond,
	// and absurdly large. The filter must drop the first kind and the
	// clamp must contain the rest.
	samples := []time.Duration{
		-time.Second, 0, time.Nanosecond, time.Millisecond,
		1000 * time.Hour, 3 * time.Second, -time.Hour,
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				srv.observeRewrite(samples[(seed+i)%len(samples)])
			}
		}(g)
	}
	var violations atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := strconv.Atoi(srv.retryAfter())
				if err != nil || v < 1 || v > 30 {
					violations.Add(1)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatal("retryAfter left the [1,30] clamp under concurrent observations")
	}

	// Defense-in-depth path: a Server built without New (Workers 0, as
	// some embedders and tests do) must floor the divisor, not divide by
	// zero into a garbage header.
	bare := &Server{cfg: Config{Workers: 0}, pool: newPool(1, 1)}
	bare.observeRewrite(2 * time.Second)
	if v, err := strconv.Atoi(bare.retryAfter()); err != nil || v < 1 || v > 30 {
		t.Fatalf("retryAfter with zero workers = %q, want clamped integer", bare.retryAfter())
	}
	bare.observeRewrite(1000 * time.Hour) // saturate the mean
	if got := bare.retryAfter(); got != "30" {
		t.Fatalf("retryAfter with saturated mean = %q, want the 30s ceiling", got)
	}
}

// TestCrossEndpointCacheIsolation (hardening sweep): the cache-key
// audit for /v2. Verified here: (1) /v1 folds the disasm mode into the
// key, so two requests differing only in recovery mode never share an
// entry; (2) /v1 folds the payload hash for spec-program requests;
// (3) /v2 sessions — which run the same binaries through different
// options — never write into (or read from) the /v1 result cache, so a
// v2 session cannot poison a v1 key. /v2 holds no cache at all, which
// is the audit's conclusion: there is no key to get wrong.
func TestCrossEndpointCacheIsolation(t *testing.T) {
	srv := New(Config{Workers: 2, QueueLen: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	elf := kernelELF(t)

	post := func(path string, hdr map[string]string, body []byte) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", path, resp.StatusCode, out)
		}
		return resp, out
	}
	rewrites := func() float64 { return metricValue(t, srv.Handler(), "e9served_rewrites_total") }

	// (1) disasm folds into the /v1 key.
	resp1, out1 := post("/v1/rewrite?match=jcc+%26+short&action=empty", nil, elf)
	if resp1.Header.Get("X-E9-Cache") != "miss" {
		t.Fatalf("first v1: cache %q, want miss", resp1.Header.Get("X-E9-Cache"))
	}
	resp2, _ := post("/v1/rewrite?match=jcc+%26+short&action=empty&disasm=superset", nil, elf)
	if resp2.Header.Get("X-E9-Cache") != "miss" {
		t.Fatal("v1 with a different disasm mode reused the linear-mode entry: disasm is not folded into the key")
	}
	if rewrites() != 2 {
		t.Fatalf("rewrites_total = %g after two distinct-mode requests, want 2", rewrites())
	}

	// (2) the payload folds into the key for spec-program requests.
	spec := base64.StdEncoding.EncodeToString([]byte("match jcc\npatch empty\n"))
	payloadA := base64.StdEncoding.EncodeToString(bytes.Repeat([]byte{0x90}, 64))
	payloadB := base64.StdEncoding.EncodeToString(bytes.Repeat([]byte{0xCC}, 64))
	rA, _ := post("/v1/rewrite", map[string]string{"X-E9-Spec": spec, "X-E9-Payload": payloadA}, elf)
	if rA.Header.Get("X-E9-Cache") != "miss" {
		t.Fatalf("payload A: cache %q, want miss", rA.Header.Get("X-E9-Cache"))
	}
	rB, _ := post("/v1/rewrite", map[string]string{"X-E9-Spec": spec, "X-E9-Payload": payloadB}, elf)
	if rB.Header.Get("X-E9-Cache") != "miss" {
		t.Fatal("v1 with a different payload reused the first payload's entry: payload is not folded into the key")
	}

	// (3) a /v2 session over the same binary with yet another
	// configuration must not touch the /v1 cache in either direction.
	before := rewrites()
	session := v2Session(elf,
		[]string{`{"method":"option","params":{"disasm":"superset","granularity":2}}`},
		[]string{`{"method":"patch","params":{"match":"jcc"}}`})
	post("/v2/rewrite", map[string]string{"Content-Type": "application/x-ndjson"}, session)
	if rewrites() != before+1 {
		t.Fatalf("v2 session changed rewrites_total by %g, want exactly 1 (no cache read)", rewrites()-before)
	}

	// The original v1 entry is still intact: a repeat is a hit with the
	// original bytes, and no new rewrite runs.
	after := rewrites()
	resp4, out4 := post("/v1/rewrite?match=jcc+%26+short&action=empty", nil, elf)
	if resp4.Header.Get("X-E9-Cache") != "hit" {
		t.Fatalf("v1 repeat after v2 session: cache %q, want hit", resp4.Header.Get("X-E9-Cache"))
	}
	if !bytes.Equal(out4, out1) {
		t.Fatal("v1 cache entry was altered by the v2 session: cross-endpoint poisoning")
	}
	if rewrites() != after {
		t.Fatal("v1 repeat triggered a rewrite despite the cached entry")
	}
}

// TestLastWaiterCancelDuringPeerFetch (hardening sweep) interleaves the
// two cancellation machines: request B leads a singleflight rewrite for
// key K and disconnects mid-rewrite (the refcount must cancel the job),
// while request A for the same K is parked inside a peer plan-fetch to
// K's owner. A's fetch failing must fall through to a *fresh* flight —
// not the cancelled one — and complete normally.
func TestLastWaiterCancelDuringPeerFetch(t *testing.T) {
	elf := kernelELF(t)

	// A stub owner whose plan endpoint answers the first probe 404
	// (alive, no plan) and parks every later fetch until released.
	var fetches atomic.Int64
	releaseFetch := make(chan struct{})
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fetches.Add(1) > 1 {
			select {
			case <-releaseFetch:
			case <-r.Context().Done():
			}
		}
		http.Error(w, "no plan for key", http.StatusNotFound)
	}))
	defer stub.Close()

	swap := &swapHandler{}
	self := httptest.NewServer(swap)
	defer self.Close()

	srv := New(Config{
		Workers:  2,
		QueueLen: 8,
		Cluster: cluster.Config{
			Self:         self.URL,
			Peers:        []string{self.URL, stub.URL},
			FetchTimeout: 30 * time.Second, // the test releases fetches itself
			Cooldown:     time.Millisecond,
		},
	})
	defer srv.Close()
	swap.set(srv.Handler())

	// Gate the first rewrite so B's flight is provably mid-rewrite when
	// its client disconnects; later rewrites run for real.
	real := srv.rewrite
	var calls atomic.Int64
	firstEntered := make(chan struct{})
	firstCancelled := make(chan error, 1)
	srv.rewrite = func(ctx context.Context, binary []byte, spec *Spec) (*e9patch.Result, error) {
		if calls.Add(1) == 1 {
			close(firstEntered)
			<-ctx.Done() // must fire when the last waiter leaves
			firstCancelled <- ctx.Err()
			return nil, ctx.Err()
		}
		return real(ctx, binary, spec)
	}

	// Pick a query whose key the stub owns, so peer fetches really fire
	// (skip only perturbs the key, not this corpus binary's matches).
	query := ""
	for i := 0; i < 256; i++ {
		q := fmt.Sprintf("match=jcc+%%26+short&action=empty&skip=%d", i)
		spec, err := batchSpec(q)
		if err != nil {
			t.Fatal(err)
		}
		if srv.ring.Owner(cacheKey(elf, spec)) == stub.URL {
			query = q
			break
		}
	}
	if query == "" {
		t.Fatal("no skip value in 0..255 hashes to the stub peer") // p ~ 2^-256
	}

	doPost := func(ctx context.Context) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			self.URL+"/v1/rewrite?"+query, bytes.NewReader(elf))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(routedHeader, "1") // force local handling
		return http.DefaultClient.Do(req)
	}

	// Request B: sails past the 404 probe into the gated flight.
	bCtx, bCancel := context.WithCancel(context.Background())
	bDone := make(chan error, 1)
	go func() {
		resp, err := doPost(bCtx)
		if err == nil {
			resp.Body.Close()
		}
		bDone <- err
	}()
	<-firstEntered

	// Request A: parks in the peer plan-fetch for the same key.
	aDone := make(chan struct {
		resp *http.Response
		body []byte
		err  error
	}, 1)
	go func() {
		resp, err := doPost(context.Background())
		var body []byte
		if err == nil {
			body, _ = io.ReadAll(resp.Body)
			resp.Body.Close()
		}
		aDone <- struct {
			resp *http.Response
			body []byte
			err  error
		}{resp, body, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for fetches.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fetches.Load() < 2 {
		t.Fatal("request A never reached the peer plan-fetch")
	}

	// B disconnects: it is the flight's only waiter (A is still inside
	// the fetch), so the refcount must cancel the rewrite context.
	bCancel()
	if err := <-bDone; err == nil {
		t.Fatal("request B completed despite its context being cancelled")
	}
	select {
	case err := <-firstCancelled:
		if err == nil {
			t.Fatal("flight context reported nil error after cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("last-waiter disconnect did not cancel the in-flight rewrite")
	}

	// Release A's fetch: it comes back 404, falls through to a fresh
	// flight (the cancelled one must be off the map) and succeeds.
	close(releaseFetch)
	a := <-aDone
	if a.err != nil {
		t.Fatalf("request A: %v", a.err)
	}
	if a.resp.StatusCode != http.StatusOK {
		t.Fatalf("request A: %d %s (joined the cancelled flight?)", a.resp.StatusCode, a.body)
	}
	if got := a.resp.Header.Get("X-E9-Cache"); got != "miss" {
		t.Fatalf("request A cache status %q, want miss (fresh flight)", got)
	}
	if calls.Load() != 2 {
		t.Fatalf("rewrite entered %d times, want 2 (cancelled + fresh)", calls.Load())
	}
}
