package server

import (
	"context"
	"sync"
	"time"
)

// flightGroup collapses concurrent identical requests: the first
// request for a key (the leader) launches the rewrite, every later
// request arriving before it finishes (a follower) waits on the same
// result. The job runs under its own context — detached from any one
// request, bounded by the per-request timeout — and is cancelled once
// every waiter has given up, so a rewrite whose entire audience has
// disconnected stops burning a worker instead of completing into the
// void.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done    chan struct{}
	entry   *cacheEntry
	err     error
	waiters int
	cancel  context.CancelFunc
}

func newFlightGroup() *flightGroup { return &flightGroup{m: make(map[string]*flight)} }

// do coalesces work for key. launch is invoked exactly once per flight
// (by the leader); it must either return an error (the flight fails
// immediately) or arrange for finish to be called exactly once with
// the outcome. The second return reports whether this caller shared
// another request's flight rather than leading its own.
func (g *flightGroup) do(ctx context.Context, key string, timeout time.Duration,
	launch func(jobCtx context.Context, finish func(*cacheEntry, error)) error) (*cacheEntry, bool, error) {

	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		f.waiters++
		g.mu.Unlock()
		return g.wait(ctx, key, f, true)
	}

	f := &flight{done: make(chan struct{}), waiters: 1}
	jobCtx := context.WithoutCancel(ctx)
	var cancels []context.CancelFunc
	if timeout > 0 {
		var tc context.CancelFunc
		jobCtx, tc = context.WithTimeout(jobCtx, timeout)
		cancels = append(cancels, tc)
	}
	var cc context.CancelFunc
	jobCtx, cc = context.WithCancel(jobCtx)
	cancels = append(cancels, cc)
	f.cancel = func() {
		for _, c := range cancels {
			c()
		}
	}
	g.m[key] = f
	g.mu.Unlock()

	finish := func(e *cacheEntry, err error) {
		g.mu.Lock()
		if g.m[key] == f {
			delete(g.m, key)
		}
		f.entry, f.err = e, err
		close(f.done)
		g.mu.Unlock()
		f.cancel() // release the timeout timer
	}
	if err := launch(jobCtx, finish); err != nil {
		finish(nil, err)
	}
	return g.wait(ctx, key, f, false)
}

// wait blocks until the flight finishes or the caller's own context
// gives up. The last waiter to leave cancels the job and detaches the
// flight from the map so new arrivals start a fresh one.
func (g *flightGroup) wait(ctx context.Context, key string, f *flight, shared bool) (*cacheEntry, bool, error) {
	select {
	case <-f.done:
		return f.entry, shared, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		orphaned := f.waiters == 0
		if orphaned && g.m[key] == f {
			delete(g.m, key)
		}
		g.mu.Unlock()
		if orphaned {
			f.cancel()
		}
		return nil, shared, ctx.Err()
	}
}
