// Package server implements e9served, a concurrent rewrite service
// over the e9patch library: POST an ELF binary with a matcher
// expression and tactic switches, get the rewritten binary back.
//
// The service is shaped for sustained batch traffic rather than
// one-shot CLI use (the deployability bar of the broad rewriter
// evaluations — see DESIGN.md §7):
//
//   - a bounded worker pool over a bounded queue: overload returns
//     429 + Retry-After instead of unbounded goroutines (backpressure);
//   - a content-addressed result cache keyed by sha256(binary) +
//     canonicalised config, with byte-budgeted LRU eviction;
//   - singleflight coalescing: N concurrent identical requests trigger
//     exactly one rewrite;
//   - per-request timeouts and real cancellation, threaded through the
//     rewrite pipeline via e9patch.RewriteContext;
//   - hand-rolled Prometheus text metrics (the module stays
//     dependency-free).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"e9patch"
	"e9patch/internal/cluster"
	"e9patch/internal/e9err"
	"e9patch/internal/patch"
)

// Config sizes the service.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueLen bounds the job queue (default 64); submissions beyond
	// it are rejected with 429.
	QueueLen int
	// CacheBytes is the result-cache byte budget (default 256 MiB).
	CacheBytes int64
	// PlanCacheBytes is the plan-cache byte budget (default 64 MiB).
	// Plans are kilobyte-scale, so this tier remembers far more history
	// than the result cache; a repeat request whose result was evicted
	// is rematerialized from its plan instead of replanned.
	PlanCacheBytes int64
	// Timeout bounds one rewrite job, queue wait included (default
	// 60s; 0 keeps the default, negative disables).
	Timeout time.Duration
	// MaxBodyBytes bounds the request body (default 64 MiB).
	MaxBodyBytes int64
	// Limits bounds each rewrite's resource consumption (text size,
	// patch sites, trampoline bytes, per-phase deadlines); violations
	// map to 413/422/504 with per-reason rejection metrics. The zero
	// value disables the per-rewrite bounds (MaxBodyBytes still caps
	// the upload).
	Limits e9patch.Limits
	// Cluster names this node's place in a static consistent-hash
	// cluster (DESIGN.md §15). The zero value runs single-node. When
	// enabled, requests for keys owned by a peer are forwarded to it
	// (falling back to local handling when the peer is down), misses on
	// non-owned keys try a peer plan-fetch before replanning, and
	// GET /internal/v1/plan/{key} serves this node's plan shard.
	Cluster cluster.Config
	// MaxBatchBytes bounds one /v1/batch request body (default 4x
	// MaxBodyBytes); MaxBatchItems bounds the items in it (default 256).
	MaxBatchBytes int64
	MaxBatchItems int
	// BatchTenantConcurrency caps how many batch items one tenant (the
	// X-E9-Tenant header) may have in flight on this node at once
	// (default: half the workers, min 1) — one tenant's fleet-wide
	// batch cannot starve the others.
	BatchTenantConcurrency int
	// Logf, when non-nil, receives internal-failure details that are
	// deliberately kept out of 500 response bodies (default: the
	// standard library logger).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 64
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.PlanCacheBytes <= 0 {
		c.PlanCacheBytes = 64 << 20
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 4 * c.MaxBodyBytes
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.BatchTenantConcurrency <= 0 {
		c.BatchTenantConcurrency = max(1, c.Workers/2)
	}
	c.Cluster = c.Cluster.WithDefaults()
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// RewriteFunc executes one rewrite; tests substitute it to gate and
// count executions.
type RewriteFunc func(ctx context.Context, binary []byte, spec *Spec) (*e9patch.Result, error)

// Server is the rewrite service. Create with New, mount Handler, and
// Close after the HTTP server has drained.
type Server struct {
	cfg      Config
	pool     *pool
	cache    *lruCache[*cacheEntry]
	plans    *lruCache[*planEntry]
	flights  *flightGroup
	metrics  *Metrics
	rewrite  RewriteFunc
	mux      *http.ServeMux
	draining atomic.Bool

	// durMu guards meanRewriteSec, an exponentially weighted rolling
	// mean of rewrite wall time used to derive Retry-After under
	// backpressure (0 until the first completed rewrite).
	durMu          sync.Mutex
	meanRewriteSec float64

	// shards bounds intra-rewrite shard helpers across ALL concurrent
	// rewrites: request-level workers and per-request parallel phases
	// draw from one budget of cfg.Workers goroutines, so a busy queue
	// degrades each rewrite toward sequential instead of
	// oversubscribing the machine.
	shards *e9patch.Pool

	// Cluster state (nil/unused when Config.Cluster is zero): the
	// consistent-hash ring mapping cache keys to owner nodes, the peer
	// plan-fetch client, the shared peer-health tracker, and the
	// HTTP client used to forward whole requests to their owners.
	ring   *cluster.Ring
	peers  *cluster.Client
	health *cluster.Health
	fwd    *http.Client

	// tenants rate-limits /v1/batch fan-out per tenant.
	tenants *tenantLimiter
}

// New builds a Server with cfg (zero values take defaults). An invalid
// cluster config (a Self outside the peer list) panics: it is a
// deployment error that would silently shard every key remotely.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if err := cfg.Cluster.Validate(); err != nil {
		panic(err)
	}
	s := &Server{
		cfg:     cfg,
		pool:    newPool(cfg.Workers, cfg.QueueLen),
		cache:   newLRUCache[*cacheEntry](cfg.CacheBytes),
		plans:   newLRUCache[*planEntry](cfg.PlanCacheBytes),
		flights: newFlightGroup(),
		metrics: NewMetrics(),
		shards:  e9patch.NewPool(cfg.Workers),
		tenants: newTenantLimiter(cfg.BatchTenantConcurrency),
	}
	if cfg.Cluster.Enabled() {
		s.ring = cluster.NewRing(cfg.Cluster.Peers, cfg.Cluster.Replicas)
		s.health = cluster.NewHealth(cfg.Cluster.Cooldown)
		s.peers = cluster.NewClient(cfg.Cluster, s.health, cfg.PlanCacheBytes)
		s.fwd = &http.Client{}
	}
	// Last-resort containment: a panic that escapes a job closure (i.e.
	// server code outside the per-job recovery below) must not take the
	// worker down. Coalesced waiters of such a job time out rather than
	// hang forever; the per-job boundary exists so this path stays cold.
	s.pool.onPanic = func(v any) {
		s.metrics.IncPanicRecovered()
		s.cfg.Logf("e9served: recovered worker panic: %v", v)
	}
	s.rewrite = func(ctx context.Context, binary []byte, spec *Spec) (*e9patch.Result, error) {
		rcfg, err := spec.Config()
		if err != nil {
			return nil, err
		}
		if rcfg.Parallelism <= 0 || rcfg.Parallelism > s.cfg.Workers {
			rcfg.Parallelism = s.cfg.Workers
		}
		rcfg.Pool = s.shards
		rcfg.Limits = s.cfg.Limits
		// Plan, bank the plan in the second cache tier, then apply. The
		// plan costs kilobytes where the result costs the whole output
		// binary, so it survives long after the result entry is evicted
		// and turns a future repeat into a decision-free rematerialize.
		p, err := e9patch.PlanContext(ctx, binary, rcfg)
		if err != nil {
			return nil, err
		}
		if enc, err := p.Encode(); err == nil {
			s.plans.put(cacheKey(binary, spec), &planEntry{data: enc})
		}
		// The plan was produced by this very call against these very
		// bytes, so the trusted apply path (no universe re-derivation)
		// is exact, not a shortcut.
		return e9patch.ApplyTrustedContext(ctx, binary, p)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/rewrite", s.handleRewrite)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v2/rewrite", s.handleRewriteV2)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET "+cluster.PlanPath+"{key}", s.handlePlanFetch)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the registry (e.g. for embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// BeginDrain flips /healthz to 503 so load balancers stop routing new
// work while in-flight requests complete.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close waits for queued and running jobs to finish. Call only after
// the HTTP server has stopped accepting requests.
func (s *Server) Close() { s.pool.close() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	entries, bytes, evictions := s.cache.stats()
	pEntries, pBytes, pEvictions := s.plans.stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteText(w, Gauges{
		QueueDepth:         s.pool.depth(),
		CacheEntries:       entries,
		CacheBytes:         bytes,
		CacheEvictions:     evictions,
		PlanCacheEntries:   pEntries,
		PlanCacheBytes:     pBytes,
		PlanCacheEvictions: pEvictions,
		Workers:            s.cfg.Workers,
	})
}

// rewriteStats is the JSON served in the X-E9-Stats response header.
type rewriteStats struct {
	Total       int      `json:"total"`
	Patched     int      `json:"patched"`
	Failed      int      `json:"failed"`
	B1          int      `json:"B1"`
	B2          int      `json:"B2"`
	T1          int      `json:"T1"`
	T2          int      `json:"T2"`
	T3          int      `json:"T3"`
	B0          int      `json:"B0"`
	Insts       int      `json:"insts"`
	Trampolines int      `json:"trampolines"`
	Mappings    int      `json:"mappings"`
	InputSize   int      `json:"inputSize"`
	OutputSize  int      `json:"outputSize"`
	Warnings    []string `json:"warnings,omitempty"`
}

// rematerialize replays a cached plan onto the request body, yielding
// the same entry a full rewrite would have produced.
func (s *Server) rematerialize(ctx context.Context, body []byte, pe *planEntry) (*cacheEntry, error) {
	p, err := e9patch.DecodePlan(pe.data)
	if err != nil {
		return nil, err
	}
	return s.applyPlan(ctx, body, p)
}

// applyPlan replays an already-decoded plan onto body via the trusted
// apply path. Every plan reaching here is either self-produced (banked
// by s.rewrite) or peer-produced and decode-validated; both are
// input-bound, which ApplyTrusted verifies, so skipping the
// disassembly-universe re-derivation costs no safety and most of the
// rematerialization time on large binaries.
func (s *Server) applyPlan(ctx context.Context, body []byte, p *e9patch.PatchPlan) (*cacheEntry, error) {
	res, err := e9patch.ApplyTrustedContext(ctx, body, p)
	if err != nil {
		return nil, err
	}
	return entryFromResult(res), nil
}

// entryFromResult freezes a rewrite result into a cache entry.
func entryFromResult(res *e9patch.Result) *cacheEntry {
	st := rewriteStats{
		Total:       res.Stats.Total,
		Patched:     res.Stats.Patched(),
		Failed:      res.Stats.Failed,
		B1:          res.Stats.ByTactic[patch.TacticB1],
		B2:          res.Stats.ByTactic[patch.TacticB2],
		T1:          res.Stats.ByTactic[patch.TacticT1],
		T2:          res.Stats.ByTactic[patch.TacticT2],
		T3:          res.Stats.ByTactic[patch.TacticT3],
		B0:          res.Stats.ByTactic[patch.TacticB0],
		Insts:       res.Insts,
		Trampolines: res.Trampolines,
		Mappings:    res.Mappings,
		InputSize:   res.InputSize,
		OutputSize:  res.OutputSize,
		Warnings:    res.Warnings,
	}
	j, err := json.Marshal(st)
	if err != nil { // struct of ints and strings: cannot fail
		j = []byte("{}")
	}
	return &cacheEntry{out: res.Output, statsJSON: j}
}

func (s *Server) handleRewrite(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.AddInflight(1)
	code := "200"
	defer func() {
		s.metrics.AddInflight(-1)
		s.metrics.IncRequest(code)
		s.metrics.Observe(time.Since(start).Seconds())
	}()
	fail := func(status int, msg string) {
		code = fmt.Sprint(status)
		http.Error(w, msg, status)
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			fail(http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		code = "499" // client went away mid-upload
		return
	}
	if len(body) == 0 {
		fail(http.StatusBadRequest, "empty body: POST the ELF binary to rewrite")
		return
	}
	spec, err := parseSpec(r)
	if err != nil {
		// A spec-language program that fails to parse or typecheck is
		// semantically invalid rather than a malformed request: 422,
		// with the 1-based line:column in the body. The metric label is
		// the bare class constant — the position-bearing reason would
		// explode cardinality.
		if errors.Is(err, e9patch.ErrBadSpec) {
			s.metrics.IncRejected(e9err.ReasonBadSpec)
			fail(http.StatusUnprocessableEntity, err.Error())
			return
		}
		fail(http.StatusBadRequest, err.Error())
		return
	}

	key := cacheKey(body, spec)
	wantPlan := acceptsPlan(r)

	// Local result hit: serve straight away, owned key or not — a hot
	// local entry beats a network hop. (Plan-delta requests want the
	// plan bytes, which live in the other tier; fall through for those.)
	if !wantPlan {
		if e, ok := s.cache.get(key); ok {
			s.metrics.IncHit()
			s.serve(w, e, "hit")
			return
		}
	}

	// Front-door routing: a key owned by a peer is the peer's to serve,
	// so cache shards stay disjoint across the fleet. Falls through to
	// local handling when the owner is down (availability beats shard
	// discipline) or when this request was already routed once.
	if handled, upstream := s.tryForward(w, r, body, key); handled {
		code = upstream
		return
	}

	if wantPlan {
		s.handlePlanDelta(w, r, body, spec, key, fail, func() { code = "499" })
		return
	}
	s.metrics.IncMiss()

	// Second tier: a banked plan rematerializes the result without any
	// tactic search. Apply is pure replay — a small fraction of a full
	// rewrite — so it runs on the handler goroutine rather than queueing
	// behind planning-heavy jobs in the worker pool.
	if pe, ok := s.plans.get(key); ok {
		if e, err := s.rematerialize(r.Context(), body, pe); err == nil {
			s.metrics.IncPlanHit()
			s.cache.put(key, e)
			s.serve(w, e, "plan")
			return
		}
		// A plan that no longer applies (corrupt or stale) is treated as
		// a miss; the full pipeline below replaces it.
	}
	s.metrics.IncPlanMiss()

	// Third tier, cluster only: this node is handling a key it does not
	// own (routed here, or the owner was down when the front door looked).
	// The owner may still hold the plan — one small GET plus a
	// decision-free Apply beats redoing the whole tactic search.
	if e, ok := s.peerRematerialize(r.Context(), key, body); ok {
		s.serve(w, e, "peer-plan")
		return
	}

	entry, shared, err := s.rewriteFlight(r.Context(), key, body, spec)
	if shared {
		s.metrics.IncCoalesced()
	}
	switch {
	case err == nil:
		status := "miss"
		if shared {
			status = "coalesced"
		}
		s.serve(w, entry, status)
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", s.retryAfter())
		fail(http.StatusTooManyRequests, "work queue full; retry later")
	default:
		s.failClassified(err, fail, func() { code = "499" })
	}
}

// rewriteFlight runs the full rewrite for key through singleflight
// coalescing and the bounded worker pool: the backpressured slow path
// shared by /v1/rewrite's binary and plan-delta flows.
func (s *Server) rewriteFlight(ctx context.Context, key string, body []byte, spec *Spec) (*cacheEntry, bool, error) {
	return s.flights.do(ctx, key, s.cfg.Timeout,
		func(jobCtx context.Context, finish func(*cacheEntry, error)) error {
			submitErr := s.pool.trySubmit(func() {
				if err := jobCtx.Err(); err != nil {
					finish(nil, err) // every waiter left while queued
					return
				}
				s.metrics.IncRewrite()
				jobStart := time.Now()
				res, err := s.runRewrite(jobCtx, body, spec)
				s.observeRewrite(time.Since(jobStart))
				if err != nil {
					finish(nil, err)
					return
				}
				e := entryFromResult(res)
				s.cache.put(key, e)
				finish(e, nil)
			})
			if submitErr != nil {
				s.metrics.IncQueueFull()
			}
			return submitErr
		})
}

// handlePlanDelta serves the plan-delta flow of /v1/rewrite (Accept:
// application/x-e9-plan): the client gets the serialized PatchPlan and
// applies it locally, so the response is ~plan-size instead of
// ~binary-size. Tiering mirrors the binary flow — local plan cache,
// then the key's owner, then a full (pool-bounded, coalesced) rewrite
// whose planning phase banks the plan this response serves.
func (s *Server) handlePlanDelta(w http.ResponseWriter, r *http.Request, body []byte, spec *Spec,
	key string, fail func(int, string), gone func()) {

	if pe, ok := s.plans.get(key); ok {
		s.metrics.IncPlanHit()
		s.servePlan(w, r, pe.data, "plan")
		return
	}
	s.metrics.IncPlanMiss()
	if data, _, ok := s.peerPlan(r.Context(), key); ok {
		s.metrics.IncPeerPlanHit()
		s.plans.put(key, &planEntry{data: data})
		s.servePlan(w, r, data, "peer-plan")
		return
	}
	_, shared, err := s.rewriteFlight(r.Context(), key, body, spec)
	if shared {
		s.metrics.IncCoalesced()
	}
	switch {
	case err == nil:
		pe, ok := s.plans.get(key)
		if !ok {
			// The rewrite succeeded but no plan was banked (encode failure
			// — effectively unreachable — or a test stub rewrite path).
			fail(http.StatusInternalServerError, "plan unavailable for this rewrite")
			return
		}
		status := "miss"
		if shared {
			status = "coalesced"
		}
		s.servePlan(w, r, pe.data, status)
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", s.retryAfter())
		fail(http.StatusTooManyRequests, "work queue full; retry later")
	default:
		s.failClassified(err, fail, gone)
	}
}

// failClassified maps a classified pipeline failure onto an HTTP status;
// shared by the v1 and v2 rewrite handlers. gone fires instead of a
// response when our own client abandoned the request.
func (s *Server) failClassified(err error, fail func(int, string), gone func()) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fail(http.StatusGatewayTimeout,
			fmt.Sprintf("rewrite exceeded the %s budget", s.cfg.Timeout))
	case errors.Is(err, context.Canceled):
		gone() // client went away; nothing to write
	case errors.Is(err, e9patch.ErrResourceLimit):
		reason := "unknown"
		var ee *e9patch.Error
		if errors.As(err, &ee) && ee.Reason != "" {
			reason = ee.Reason
		}
		s.metrics.IncRejected(reason)
		switch reason {
		case e9err.ReasonInputTooLarge, e9err.ReasonTextTooLarge, e9err.ReasonMessageTooLarge:
			fail(http.StatusRequestEntityTooLarge, err.Error())
		case e9err.ReasonPhaseDeadline:
			fail(http.StatusGatewayTimeout, err.Error())
		default:
			fail(http.StatusUnprocessableEntity, err.Error())
		}
	case errors.Is(err, e9patch.ErrInternal):
		// Our bug, not the client's: keep the stack and detail in the
		// log, out of the response body.
		s.cfg.Logf("e9served: internal rewrite failure: %v", err)
		fail(http.StatusInternalServerError, "internal error")
	default:
		// Everything else the pipeline classifies as the client's input:
		// malformed or unsupported binaries, plans, specs and protocol
		// streams.
		fail(http.StatusUnprocessableEntity, err.Error())
	}
}

// runRewrite executes the configured rewrite function behind the
// per-job recovery boundary: a panic in the rewrite path (including
// test-injected RewriteFuncs that bypass the library's own boundaries)
// becomes an ErrInternal result that is routed to finish like any other
// failure, so coalesced waiters are released instead of timing out.
// Panics already contained by the library surface here as classified
// errors with a recorded stack; both shapes count toward
// panic_recovered_total.
func (s *Server) runRewrite(ctx context.Context, body []byte, spec *Spec) (res *e9patch.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = e9err.FromPanic("server", v)
		}
		var ee *e9patch.Error
		if errors.As(err, &ee) && ee.Recovered() {
			s.metrics.IncPanicRecovered()
			s.cfg.Logf("e9served: panic contained during rewrite: %v\n%s", ee, ee.Stack)
		}
	}()
	return s.rewrite(ctx, body, spec)
}

// observeRewrite feeds one rewrite's wall time into the rolling mean
// behind Retry-After (EWMA, 20% weight on the newest sample).
// Non-positive and non-finite samples are dropped: a clock step or a
// poisoned duration must never corrupt the mean into something the
// retryAfter clamp cannot contain.
func (s *Server) observeRewrite(d time.Duration) {
	sec := d.Seconds()
	if !(sec > 0) || math.IsInf(sec, 0) { // also rejects NaN
		return
	}
	s.durMu.Lock()
	if s.meanRewriteSec == 0 {
		s.meanRewriteSec = sec
	} else {
		s.meanRewriteSec = 0.8*s.meanRewriteSec + 0.2*sec
	}
	s.durMu.Unlock()
}

// retryAfter estimates when the queue will have room again: the current
// backlog plus the rejected job itself, spread across the workers, each
// slot costing the rolling mean rewrite duration. Clamped to [1, 30]
// seconds — long enough to matter, short enough that clients retry
// while the estimate is still meaningful. Before the first completed
// rewrite there is no estimate and the floor is used.
//
// Audit (hardening sweep): under New(), withDefaults guarantees
// Workers >= 1, the EWMA is read under durMu, and IEEE division means
// even workers==0 would yield +Inf — caught by the upper clamp, never
// a panic. The explicit floor on workers below is defense in depth for
// a Server constructed without New (as some tests do), and the clamp
// is written so that any non-finite estimate lands on a bound rather
// than flowing through int(NaN).
func (s *Server) retryAfter() string {
	s.durMu.Lock()
	mean := s.meanRewriteSec
	s.durMu.Unlock()
	if !(mean > 0) {
		return "1" // no completed rewrite yet: the floor
	}
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	est := math.Ceil(mean * float64(s.pool.depth()+1) / float64(workers))
	switch {
	case est > 30:
		est = 30
	case !(est >= 1): // <1, or a non-finite estimate
		est = 1
	}
	return strconv.Itoa(int(est))
}

// serve writes a completed rewrite: stats and cache status in headers,
// the rewritten binary as the body.
func (s *Server) serve(w http.ResponseWriter, e *cacheEntry, cacheStatus string) {
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", fmt.Sprint(len(e.out)))
	h.Set("X-E9-Stats", string(e.statsJSON))
	h.Set("X-E9-Cache", cacheStatus)
	w.WriteHeader(http.StatusOK)
	w.Write(e.out)
}
