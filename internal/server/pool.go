package server

import (
	"errors"
	"sync"
)

// errQueueFull is returned by trySubmit when the bounded queue cannot
// accept another job; the HTTP layer maps it to 429 + Retry-After.
var errQueueFull = errors.New("server: work queue full")

// pool is a fixed-size worker pool over a bounded job queue. The queue
// bound is the service's backpressure mechanism: when rewrites arrive
// faster than the workers drain them, submission fails immediately
// instead of stacking goroutines until the process dies.
type pool struct {
	jobs chan func()
	wg   sync.WaitGroup

	// onPanic, when non-nil, observes panic values recovered from jobs.
	// The recovery itself is unconditional: a panicking job must never
	// take its worker goroutine (and with it the whole process) down.
	onPanic func(v any)

	mu     sync.RWMutex
	closed bool
}

// newPool starts workers goroutines over a queue of queueLen slots.
func newPool(workers, queueLen int) *pool {
	p := &pool{jobs: make(chan func(), queueLen)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				p.run(job)
			}
		}()
	}
	return p
}

// run executes one job behind a recovery boundary, so the worker
// survives jobs that panic and keeps draining the queue.
func (p *pool) run(job func()) {
	defer func() {
		if v := recover(); v != nil && p.onPanic != nil {
			p.onPanic(v)
		}
	}()
	job()
}

// trySubmit enqueues fn without blocking. It returns errQueueFull when
// the queue is at capacity and errPoolClosed-like failure (also
// errQueueFull) after close; fn is then never run.
func (p *pool) trySubmit(fn func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return errQueueFull
	}
	select {
	case p.jobs <- fn:
		return nil
	default:
		return errQueueFull
	}
}

// depth reports the number of queued-but-unstarted jobs.
func (p *pool) depth() int { return len(p.jobs) }

// close stops accepting jobs and waits for queued and running jobs to
// finish.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
