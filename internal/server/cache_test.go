package server

import (
	"fmt"
	"math/rand"
	"testing"
)

func pe(n int) *planEntry { return &planEntry{data: make([]byte, n)} }

// TestCacheDegenerateBudget: a zero or negative budget disables the
// cache instead of corrupting its accounting.
func TestCacheDegenerateBudget(t *testing.T) {
	for _, budget := range []int64{0, -1} {
		c := newLRUCache[*planEntry](budget)
		c.put("k", pe(10))
		c.put("z", pe(0)) // zero-sized entry must not slip past a zero budget
		if _, ok := c.get("k"); ok {
			t.Fatalf("budget %d: entry was cached", budget)
		}
		if entries, bytes, evictions := c.stats(); entries != 0 || bytes != 0 || evictions != 0 {
			t.Fatalf("budget %d: stats %d/%d/%d, want all zero", budget, entries, bytes, evictions)
		}
	}
}

// TestCacheRefreshToLarger: refreshing a key with a bigger entry must
// charge the difference, not double-count, and still evict correctly.
func TestCacheRefreshToLarger(t *testing.T) {
	c := newLRUCache[*planEntry](100)
	c.put("a", pe(10))
	c.put("b", pe(20))
	c.put("a", pe(60)) // refresh: 10 -> 60, total 80
	if _, bytes, _ := c.stats(); bytes != 80 {
		t.Fatalf("after refresh: used %d, want 80", bytes)
	}
	c.put("c", pe(30)) // 110 > 100: evicts LRU ("b")
	entries, bytes, evictions := c.stats()
	if entries != 2 || bytes != 90 || evictions != 1 {
		t.Fatalf("after eviction: %d entries / %d bytes / %d evictions, want 2/90/1", entries, bytes, evictions)
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("refreshed entry a was evicted")
	}
}

// TestCacheEvictionCounter: the counter tracks each displaced entry.
func TestCacheEvictionCounter(t *testing.T) {
	c := newLRUCache[*planEntry](10)
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		c.put(k, pe(5))
	}
	entries, bytes, evictions := c.stats()
	if entries != 2 || bytes != 10 || evictions != 3 {
		t.Fatalf("stats %d/%d/%d, want 2 entries / 10 bytes / 3 evictions", entries, bytes, evictions)
	}
}

// TestCacheRandomizedInvariants hammers put/get with random keys and
// sizes and checks the accounting invariants after every operation:
// used never negative, never over budget, and always equal to the sum
// of the resident entries' sizes.
func TestCacheRandomizedInvariants(t *testing.T) {
	const budget = 1 << 12
	rng := rand.New(rand.NewSource(1))
	c := newLRUCache[*planEntry](budget)
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(32))
		if rng.Intn(3) == 0 {
			c.get(key)
		} else {
			c.put(key, pe(rng.Intn(600)))
		}

		c.mu.Lock()
		var sum int64
		n := 0
		for el := c.ll.Front(); el != nil; el = el.Next() {
			sum += el.Value.(*lruItem[*planEntry]).val.size()
			n++
		}
		used, entries := c.used, len(c.items)
		c.mu.Unlock()

		if used < 0 {
			t.Fatalf("op %d: used went negative: %d", i, used)
		}
		if used > budget {
			t.Fatalf("op %d: used %d exceeds budget %d", i, used, budget)
		}
		if used != sum || entries != n {
			t.Fatalf("op %d: accounting drift: used=%d sum=%d entries=%d list=%d", i, used, sum, entries, n)
		}
	}
}
