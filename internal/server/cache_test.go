package server

import (
	"fmt"
	"math/rand"
	"testing"
)

func pe(n int) *planEntry { return &planEntry{data: make([]byte, n)} }

// TestCacheDegenerateBudget: a zero or negative budget disables the
// cache instead of corrupting its accounting.
func TestCacheDegenerateBudget(t *testing.T) {
	for _, budget := range []int64{0, -1} {
		c := newLRUCache[*planEntry](budget)
		c.put("k", pe(10))
		c.put("z", pe(0)) // zero-sized entry must not slip past a zero budget
		if _, ok := c.get("k"); ok {
			t.Fatalf("budget %d: entry was cached", budget)
		}
		if entries, bytes, evictions := c.stats(); entries != 0 || bytes != 0 || evictions != 0 {
			t.Fatalf("budget %d: stats %d/%d/%d, want all zero", budget, entries, bytes, evictions)
		}
	}
}

// TestCacheRefreshToLarger: refreshing a key with a bigger entry must
// charge the difference, not double-count, and still evict correctly.
func TestCacheRefreshToLarger(t *testing.T) {
	c := newLRUCache[*planEntry](100)
	c.put("a", pe(10))
	c.put("b", pe(20))
	c.put("a", pe(60)) // refresh: 10 -> 60, total 80
	if _, bytes, _ := c.stats(); bytes != 80 {
		t.Fatalf("after refresh: used %d, want 80", bytes)
	}
	c.put("c", pe(30)) // 110 > 100: evicts LRU ("b")
	entries, bytes, evictions := c.stats()
	if entries != 2 || bytes != 90 || evictions != 1 {
		t.Fatalf("after eviction: %d entries / %d bytes / %d evictions, want 2/90/1", entries, bytes, evictions)
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("refreshed entry a was evicted")
	}
}

// TestCacheRefreshToSmaller: the shrink direction of a same-key
// overwrite. Audit (hardening sweep): put charges the size difference
// (`used += new - old`), which is negative on shrink — the accounting
// was already correct, these tests pin it against regression.
func TestCacheRefreshToSmaller(t *testing.T) {
	c := newLRUCache[*planEntry](100)
	c.put("a", pe(60))
	c.put("b", pe(20))
	c.put("a", pe(10)) // refresh: 60 -> 10, total 30
	entries, bytes, evictions := c.stats()
	if entries != 2 || bytes != 30 || evictions != 0 {
		t.Fatalf("after shrink refresh: %d entries / %d bytes / %d evictions, want 2/30/0", entries, bytes, evictions)
	}
	// The freed headroom must be real: 70 more bytes fit with no eviction.
	c.put("c", pe(70))
	if entries, bytes, evictions = c.stats(); entries != 3 || bytes != 100 || evictions != 0 {
		t.Fatalf("after refill: %d entries / %d bytes / %d evictions, want 3/100/0", entries, bytes, evictions)
	}
}

// TestCacheOversizedOverwrite: overwriting a resident key with an
// entry larger than the whole budget must reject the new entry and
// leave the old one — resident and correctly accounted — rather than
// dropping it or going negative. (With content-addressed keys the two
// payloads are identical in production; this guards the invariant, not
// a live collision.)
func TestCacheOversizedOverwrite(t *testing.T) {
	c := newLRUCache[*planEntry](100)
	c.put("a", pe(40))
	c.put("a", pe(101)) // over budget: rejected before any accounting
	entries, bytes, evictions := c.stats()
	if entries != 1 || bytes != 40 || evictions != 0 {
		t.Fatalf("after oversized overwrite: %d entries / %d bytes / %d evictions, want 1/40/0", entries, bytes, evictions)
	}
	if e, ok := c.get("a"); !ok || e.size() != 40 {
		t.Fatal("original entry lost after an oversized overwrite attempt")
	}
}

// TestCacheEvictionCounter: the counter tracks each displaced entry.
func TestCacheEvictionCounter(t *testing.T) {
	c := newLRUCache[*planEntry](10)
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		c.put(k, pe(5))
	}
	entries, bytes, evictions := c.stats()
	if entries != 2 || bytes != 10 || evictions != 3 {
		t.Fatalf("stats %d/%d/%d, want 2 entries / 10 bytes / 3 evictions", entries, bytes, evictions)
	}
}

// TestCacheRandomizedInvariants hammers put/get with random keys and
// sizes and checks the accounting invariants after every operation:
// used never negative, never over budget, and always equal to the sum
// of the resident entries' sizes.
func TestCacheRandomizedInvariants(t *testing.T) {
	const budget = 1 << 12
	rng := rand.New(rand.NewSource(1))
	c := newLRUCache[*planEntry](budget)
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(32))
		if rng.Intn(3) == 0 {
			c.get(key)
		} else {
			c.put(key, pe(rng.Intn(600)))
		}

		c.mu.Lock()
		var sum int64
		n := 0
		for el := c.ll.Front(); el != nil; el = el.Next() {
			sum += el.Value.(*lruItem[*planEntry]).val.size()
			n++
		}
		used, entries := c.used, len(c.items)
		c.mu.Unlock()

		if used < 0 {
			t.Fatalf("op %d: used went negative: %d", i, used)
		}
		if used > budget {
			t.Fatalf("op %d: used %d exceeds budget %d", i, used, budget)
		}
		if used != sum || entries != n {
			t.Fatalf("op %d: accounting drift: used=%d sum=%d entries=%d list=%d", i, used, sum, entries, n)
		}
	}
}
