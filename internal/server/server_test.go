package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"e9patch"
	"e9patch/internal/workload"
)

func init() { workload.KernelIters = 1500 }

// kernelELF builds a small corpus binary for requests.
func kernelELF(t *testing.T) []byte {
	t.Helper()
	prog, err := workload.BuildKernel("branchy", true)
	if err != nil {
		t.Fatal(err)
	}
	return prog.ELF
}

// metricValue scrapes one unlabelled (or fully-labelled) metric from
// the /metrics endpoint.
func metricValue(t *testing.T, h http.Handler, name string) float64 {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	for _, line := range strings.Split(rr.Body.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	return 0
}

// waitMetric polls until the metric reaches want or the deadline hits.
func waitMetric(t *testing.T, h http.Handler, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if metricValue(t, h, name) == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("metric %s never reached %g (last %g)", name, want, metricValue(t, h, name))
}

// TestRewriteEndToEnd verifies the plain service path: the served
// output is byte-identical to a direct library rewrite, stats arrive
// in the header, and a repeated request is a cache hit that triggers
// no second rewrite.
func TestRewriteEndToEnd(t *testing.T) {
	srv := New(Config{Workers: 2, QueueLen: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bin := kernelELF(t)
	url := ts.URL + "/v1/rewrite?match=jcc+%26+short&action=empty"

	post := func() (*http.Response, []byte) {
		resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(bin))
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	resp, out := post()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if resp.Header.Get("X-E9-Cache") != "miss" {
		t.Fatalf("first request cache status %q, want miss", resp.Header.Get("X-E9-Cache"))
	}

	sel, err := e9patch.SelectMatch("jcc & short")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := e9patch.Rewrite(bin, e9patch.Config{Select: sel})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, direct.Output) {
		t.Fatal("served output differs from direct e9patch.Rewrite")
	}

	var st rewriteStats
	if err := json.Unmarshal([]byte(resp.Header.Get("X-E9-Stats")), &st); err != nil {
		t.Fatalf("stats header: %v", err)
	}
	if st.Total != direct.Stats.Total || st.Patched != direct.Stats.Patched() {
		t.Fatalf("stats header %+v does not match direct result %+v", st, direct.Stats)
	}

	resp2, out2 := post()
	if resp2.Header.Get("X-E9-Cache") != "hit" {
		t.Fatalf("second request cache status %q, want hit", resp2.Header.Get("X-E9-Cache"))
	}
	if !bytes.Equal(out2, out) {
		t.Fatal("cache hit returned different bytes")
	}
	if got := metricValue(t, srv.Handler(), "e9served_rewrites_total"); got != 1 {
		t.Fatalf("rewrites_total = %g after a hit, want 1", got)
	}
}

// TestSingleflightCollapse is the load test from the acceptance
// criteria: 64 concurrent identical requests complete successfully
// with exactly one underlying rewrite, verified via /metrics.
func TestSingleflightCollapse(t *testing.T) {
	srv := New(Config{Workers: 4, QueueLen: 64})
	real := srv.rewrite
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	srv.rewrite = func(ctx context.Context, bin []byte, spec *Spec) (*e9patch.Result, error) {
		started <- struct{}{}
		<-release
		return real(ctx, bin, spec)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ts.Client().Transport.(*http.Transport).MaxConnsPerHost = 0

	bin := kernelELF(t)
	url := ts.URL + "/v1/rewrite?match=jcc"

	const n = 64
	type reply struct {
		status int
		cache  string
		body   []byte
	}
	replies := make(chan reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(url, "application/octet-stream", bytes.NewReader(bin))
			if err != nil {
				t.Errorf("post: %v", err)
				replies <- reply{}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			replies <- reply{resp.StatusCode, resp.Header.Get("X-E9-Cache"), body}
		}()
	}

	// Hold the one real rewrite until every request is in flight, so
	// all 64 demonstrably overlap.
	waitMetric(t, srv.Handler(), "e9served_inflight", n)
	if got := len(started); got != 1 {
		t.Fatalf("%d rewrites started while gated, want 1", got)
	}
	close(release)
	wg.Wait()
	close(replies)

	var first []byte
	for rp := range replies {
		if rp.status != http.StatusOK {
			t.Fatalf("status %d: %s", rp.status, rp.body)
		}
		if first == nil {
			first = rp.body
		} else if !bytes.Equal(first, rp.body) {
			t.Fatal("concurrent requests returned different outputs")
		}
	}

	h := srv.Handler()
	if got := metricValue(t, h, "e9served_rewrites_total"); got != 1 {
		t.Fatalf("rewrites_total = %g, want exactly 1", got)
	}
	if got := metricValue(t, h, "e9served_coalesced_total"); got != n-1 {
		t.Fatalf("coalesced_total = %g, want %d", got, n-1)
	}
	if got := metricValue(t, h, "e9served_cache_misses_total"); got != n {
		t.Fatalf("cache_misses_total = %g, want %d", got, n)
	}
	waitMetric(t, h, "e9served_inflight", 0)
}

// TestQueueOverflow verifies backpressure: with one busy worker and a
// one-slot queue, a third distinct request is rejected with 429 and a
// Retry-After header instead of queueing without bound.
func TestQueueOverflow(t *testing.T) {
	srv := New(Config{Workers: 1, QueueLen: 1})
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	srv.rewrite = func(ctx context.Context, bin []byte, spec *Spec) (*e9patch.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &e9patch.Result{Output: append([]byte("out:"), bin...)}, nil
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string, ch chan<- *http.Response) {
		resp, err := http.Post(ts.URL+"/v1/rewrite?match=jcc", "application/octet-stream",
			strings.NewReader(body))
		if err != nil {
			t.Errorf("post %q: %v", body, err)
			ch <- nil
			return
		}
		ch <- resp
	}

	// R1 occupies the only worker...
	r1 := make(chan *http.Response, 1)
	go post("binary-one", r1)
	<-started
	// ...R2 occupies the only queue slot...
	r2 := make(chan *http.Response, 1)
	go post("binary-two", r2)
	waitMetric(t, srv.Handler(), "e9served_queue_depth", 1)

	// ...and R3 must be shed.
	r3 := make(chan *http.Response, 1)
	post("binary-three", r3)
	resp3 := <-r3
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if got := metricValue(t, srv.Handler(), "e9served_queue_full_total"); got != 1 {
		t.Fatalf("queue_full_total = %g, want 1", got)
	}

	close(release)
	for _, ch := range []chan *http.Response{r1, r2} {
		resp := <-ch
		if resp == nil {
			t.Fatal("request failed")
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestClientCancelAbortsJob verifies the cancellation plumbing: when
// the only waiting client disconnects, the job context is cancelled
// and the in-flight rewrite aborts (the pipeline-level abort-before-
// emit behaviour is pinned by TestRewriteContextCancelled in the root
// package).
func TestClientCancelAbortsJob(t *testing.T) {
	srv := New(Config{Workers: 1, QueueLen: 4})
	started := make(chan struct{})
	jobErr := make(chan error, 1)
	srv.rewrite = func(ctx context.Context, bin []byte, spec *Spec) (*e9patch.Result, error) {
		close(started)
		<-ctx.Done() // simulate a long rewrite interrupted mid-pipeline
		jobErr <- ctx.Err()
		return nil, ctx.Err()
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/rewrite?match=jcc",
		strings.NewReader("some-binary"))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("unexpected success: %d", resp.StatusCode)
		}
		errc <- err
	}()

	<-started
	cancel()
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client error %v, want context canceled", err)
	}
	select {
	case err := <-jobErr:
		if err != context.Canceled {
			t.Fatalf("job context error %v, want Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("job context was never cancelled after the last waiter left")
	}
	waitMetric(t, srv.Handler(), "e9served_inflight", 0)
}

// TestRequestTimeout verifies the per-request budget maps to 504.
func TestRequestTimeout(t *testing.T) {
	srv := New(Config{Workers: 1, QueueLen: 4, Timeout: 30 * time.Millisecond})
	srv.rewrite = func(ctx context.Context, bin []byte, spec *Spec) (*e9patch.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/rewrite?match=jcc", "application/octet-stream",
		strings.NewReader("some-binary"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

// TestBadRequests covers the 400 surface.
func TestBadRequests(t *testing.T) {
	srv := New(Config{Workers: 1, QueueLen: 1})
	defer srv.Close()
	h := srv.Handler()

	for _, tc := range []struct {
		name, target, body string
	}{
		{"missing match", "/v1/rewrite", "x"},
		{"bad matcher", "/v1/rewrite?match=no-such-term%3D", "x"},
		{"bad action", "/v1/rewrite?match=jcc&action=bogus", "x"},
		{"bad bool", "/v1/rewrite?match=jcc&disable-t1=maybe", "x"},
		{"bad reserve", "/v1/rewrite?match=jcc&reserve=12", "x"},
		{"empty body", "/v1/rewrite?match=jcc", ""},
	} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("POST", tc.target, strings.NewReader(tc.body)))
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, rr.Code)
		}
	}

	// Not an ELF at all: the rewrite itself fails → 422.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/rewrite?match=jcc", strings.NewReader("not an elf")))
	if rr.Code != http.StatusUnprocessableEntity {
		t.Errorf("non-ELF body: status %d, want 422", rr.Code)
	}
}

// TestHealthzDrain verifies the drain flip for load balancers.
func TestHealthzDrain(t *testing.T) {
	srv := New(Config{Workers: 1, QueueLen: 1})
	defer srv.Close()
	h := srv.Handler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz %d, want 200", rr.Code)
	}
	srv.BeginDrain()
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz %d, want 503", rr.Code)
	}
}

// TestSpecCanonical pins the cache-key canonicalisation: equivalent
// requests share a key, different effective configs do not.
func TestSpecCanonical(t *testing.T) {
	spec := func(target string, hdr map[string]string) *Spec {
		req := httptest.NewRequest("POST", target, nil)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		s, err := parseSpec(req)
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		return s
	}

	// Defaults spelled out == defaults omitted.
	a := spec("/v1/rewrite?match=jcc", nil)
	b := spec("/v1/rewrite?match=jcc&action=empty&granularity=1&skip=0&disable-t1=false&b0-fallback=0", nil)
	if a.Canonical() != b.Canonical() {
		t.Fatalf("equivalent specs canonicalise differently:\n%s\n%s", a.Canonical(), b.Canonical())
	}

	// Headers override query values.
	c := spec("/v1/rewrite?match=jcc&action=empty", map[string]string{"X-E9-Action": "lowfat"})
	if c.Action != "lowfat" {
		t.Fatalf("header override failed: action %q", c.Action)
	}
	if c.Canonical() == a.Canonical() {
		t.Fatal("different actions share a canonical key")
	}

	// Reserve ranges are parsed, sorted and keyed.
	d := spec("/v1/rewrite?match=jcc&reserve=0x3000-0x4000,0x1000-0x2000", nil)
	if len(d.Reserve) != 2 || d.Reserve[0] != [2]uint64{0x1000, 0x2000} {
		t.Fatalf("reserve parse/sort: %+v", d.Reserve)
	}
	e := spec("/v1/rewrite?match=jcc&reserve=0x1000-0x2000&reserve=0x3000-0x4000", nil)
	if d.Canonical() != e.Canonical() {
		t.Fatal("reserve ordering changed the canonical key")
	}

	// Tactic toggles are keyed.
	f := spec("/v1/rewrite?match=jcc&disable-t2=true", nil)
	if f.Canonical() == a.Canonical() {
		t.Fatal("disable-t2 did not change the canonical key")
	}

	// Config materialises.
	cfg, err := f.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Patch.DisableT2 || cfg.Select == nil {
		t.Fatal("spec.Config dropped fields")
	}
}

// TestCacheEviction exercises the byte-budgeted LRU.
func TestCacheEviction(t *testing.T) {
	c := newLRUCache[*cacheEntry](100)
	mk := func(n int) *cacheEntry {
		return &cacheEntry{out: bytes.Repeat([]byte("x"), n)}
	}
	c.put("a", mk(40))
	c.put("b", mk(40))
	if _, ok := c.get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", mk(40)) // 120 > 100: evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c should be present")
	}
	entries, used, evictions := c.stats()
	if entries != 2 || used != 80 || evictions != 1 {
		t.Fatalf("stats entries=%d used=%d evictions=%d, want 2/80/1", entries, used, evictions)
	}

	// Oversized entries are not cached at all.
	c.put("huge", mk(200))
	if _, ok := c.get("huge"); ok {
		t.Fatal("entry larger than the budget was cached")
	}

	// Refreshing an existing key adjusts the byte charge.
	c.put("a", mk(60))
	_, used, _ = c.stats()
	if used != 100 {
		t.Fatalf("used = %d after refresh, want 100", used)
	}
}

// TestParallelismSharesCacheEntry verifies the parallelism request
// parameter: it never changes the output bytes, so it is excluded from
// the cache key — requests differing only in parallelism coalesce onto
// one cached entry — and invalid values are rejected up front.
func TestParallelismSharesCacheEntry(t *testing.T) {
	srv := New(Config{Workers: 4, QueueLen: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bin := kernelELF(t)
	post := func(par string) (*http.Response, []byte) {
		url := ts.URL + "/v1/rewrite?match=branch&parallelism=" + par
		resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(bin))
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	resp1, out1 := post("1")
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("parallelism=1 status %d: %s", resp1.StatusCode, out1)
	}
	resp8, out8 := post("8")
	if resp8.StatusCode != http.StatusOK {
		t.Fatalf("parallelism=8 status %d: %s", resp8.StatusCode, out8)
	}
	if resp8.Header.Get("X-E9-Cache") != "hit" {
		t.Fatalf("parallelism=8 cache status %q, want hit (parallelism must not key the cache)",
			resp8.Header.Get("X-E9-Cache"))
	}
	if !bytes.Equal(out1, out8) {
		t.Fatal("output bytes differ across parallelism values")
	}
	if got := metricValue(t, srv.Handler(), "e9served_rewrites_total"); got != 1 {
		t.Fatalf("rewrites_total = %g, want 1", got)
	}

	resp0, body := post("0")
	if resp0.StatusCode != http.StatusBadRequest {
		t.Fatalf("parallelism=0 status %d (%s), want 400", resp0.StatusCode, body)
	}
}

// TestPlanCacheRematerialize pins the second cache tier: with a result
// cache too small to hold anything, a repeat request must be answered
// by rematerializing the banked plan — identical body, no second
// rewrite execution, and the hit recorded in /metrics.
func TestPlanCacheRematerialize(t *testing.T) {
	// CacheBytes: 1 → every result entry is oversized and never cached,
	// so repeat requests can only be served from the plan tier.
	srv := New(Config{Workers: 2, QueueLen: 8, CacheBytes: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bin := kernelELF(t)
	url := ts.URL + "/v1/rewrite?match=jcc&action=empty"
	post := func() (*http.Response, []byte) {
		resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(bin))
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	resp1, out1 := post()
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, out1)
	}
	if got := resp1.Header.Get("X-E9-Cache"); got != "miss" {
		t.Fatalf("first request cache status %q, want miss", got)
	}

	resp2, out2 := post()
	if got := resp2.Header.Get("X-E9-Cache"); got != "plan" {
		t.Fatalf("second request cache status %q, want plan", got)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatal("rematerialized body differs from the original rewrite")
	}
	if resp2.Header.Get("X-E9-Stats") != resp1.Header.Get("X-E9-Stats") {
		t.Fatalf("stats header changed across rematerialization:\n%s\n%s",
			resp1.Header.Get("X-E9-Stats"), resp2.Header.Get("X-E9-Stats"))
	}

	h := srv.Handler()
	if got := metricValue(t, h, "e9served_rewrites_total"); got != 1 {
		t.Fatalf("rewrites_total = %g, want 1 (rematerialize must not replan)", got)
	}
	if got := metricValue(t, h, "e9served_plan_cache_hits_total"); got != 1 {
		t.Fatalf("plan_cache_hits_total = %g, want 1", got)
	}
	if got := metricValue(t, h, "e9served_plan_cache_entries"); got != 1 {
		t.Fatalf("plan_cache_entries = %g, want 1", got)
	}
	if got := metricValue(t, h, "e9served_plan_cache_bytes"); got <= 0 {
		t.Fatalf("plan_cache_bytes = %g, want > 0", got)
	}
}
