package server

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"e9patch"
	"e9patch/internal/cluster"
)

// routedHeader marks a request that has already been forwarded once by
// a peer's front-door router. A node receiving it always handles the
// request itself — even if its ring disagrees about ownership (peer
// lists can drift for a moment during a rolling restart) — so a
// misconfigured cluster degrades to one extra hop, never a loop.
const routedHeader = "X-E9-Routed"

// clustered reports whether this node is part of a multi-node cluster.
func (s *Server) clustered() bool { return s.ring != nil }

// owner returns the peer that owns key and whether that is this node.
// Single-node servers own everything.
func (s *Server) owner(key string) (string, bool) {
	if !s.clustered() {
		return "", true
	}
	o := s.ring.Owner(key)
	return o, o == s.cfg.Cluster.Self
}

// handlePlanFetch serves GET /internal/v1/plan/{key}: the encoded
// PatchPlan from the local plan cache, or 404 when this node holds
// none. It deliberately never computes a plan on demand — the endpoint
// sits on peers' latency paths, and a miss here is answered by the
// caller's own (pool-bounded) rewrite, not by unbounded work on ours.
func (s *Server) handlePlanFetch(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validCacheKey(key) {
		http.Error(w, "malformed cache key", http.StatusBadRequest)
		return
	}
	pe, ok := s.plans.get(key)
	if !ok {
		http.Error(w, "no plan for key", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", cluster.PlanContentType)
	w.Header().Set("Content-Length", fmt.Sprint(len(pe.data)))
	w.Write(pe.data)
}

// validCacheKey checks the canonical key shape (sha256hex "-"
// sha256hex) so the internal endpoint cannot be probed with arbitrary
// strings.
func validCacheKey(key string) bool {
	a, b, ok := strings.Cut(key, "-")
	if !ok || len(a) != 64 || len(b) != 64 {
		return false
	}
	for _, part := range []string{a, b} {
		for i := 0; i < len(part); i++ {
			c := part[i]
			if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
				return false
			}
		}
	}
	return true
}

// KeyOwner reports which cluster node owns the cache key of a
// /v1/rewrite request with the given body and raw query string — the
// routing probe used by benchmarks and operational tooling. On a
// single-node server it returns the empty string (every key is local).
func (s *Server) KeyOwner(body []byte, query string) (string, error) {
	spec, err := batchSpec(query)
	if err != nil {
		return "", err
	}
	owner, _ := s.owner(cacheKey(body, spec))
	return owner, nil
}

// tryForward routes a request for a key owned by another node to that
// node, relaying its response verbatim. It returns (handled, status)
// when the response was relayed; handled false means the caller must
// serve the request locally — either this node owns the key, the
// request was already routed once, or the owner is down (the local
// fallback that keeps a dead peer from taking its key range's
// availability with it).
//
// The owner's response is buffered before anything is written to our
// client, so an owner dying mid-response still falls back to a clean
// local rewrite instead of a truncated body.
func (s *Server) tryForward(w http.ResponseWriter, r *http.Request, body []byte, key string) (bool, string) {
	if !s.clustered() || r.Header.Get(routedHeader) != "" {
		return false, ""
	}
	owner, local := s.owner(key)
	if local || !s.health.Up(owner) {
		return false, ""
	}

	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		// The owner runs the full rewrite; give the hop the rewrite budget
		// plus slack rather than the short peer-fetch timeout.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout+5*s.cfg.Cluster.FetchTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		owner+r.URL.Path+"?"+r.URL.RawQuery, bytes.NewReader(body))
	if err != nil {
		return false, ""
	}
	req.Header = r.Header.Clone()
	req.Header.Set(routedHeader, "1")
	req.ContentLength = int64(len(body))

	resp, err := s.fwd.Do(req)
	if err != nil {
		s.health.MarkDown(owner)
		s.metrics.IncForwardFallback()
		return false, ""
	}
	defer resp.Body.Close()
	relayed, err := io.ReadAll(resp.Body)
	if err != nil {
		s.health.MarkDown(owner)
		s.metrics.IncForwardFallback()
		return false, ""
	}
	s.health.MarkUp(owner)
	s.metrics.IncForwarded()

	h := w.Header()
	for _, name := range []string{"Content-Type", "X-E9-Stats", "X-E9-Cache", "X-E9-Disasm", "Retry-After"} {
		if v := resp.Header.Get(name); v != "" {
			h.Set(name, v)
		}
	}
	h.Set("X-E9-Node", owner)
	h.Set("Content-Length", fmt.Sprint(len(relayed)))
	w.WriteHeader(resp.StatusCode)
	w.Write(relayed)
	return true, fmt.Sprint(resp.StatusCode)
}

// peerRematerialize asks the key's owner for its PatchPlan and replays
// it onto body, yielding the same entry a full local rewrite would
// have produced at a fraction of the cost (Apply is decision-free).
// False means no usable plan was available — not the owner, owner
// down, no plan banked, or the plan failed to apply — and the caller
// proceeds to a full rewrite. Hit/miss outcomes are counted; a node
// that owns its key locally counts neither (there is no peer to ask).
func (s *Server) peerRematerialize(ctx context.Context, key string, body []byte) (*cacheEntry, bool) {
	data, p, ok := s.peerPlan(ctx, key)
	if !ok {
		return nil, false
	}
	e, err := s.applyPlan(ctx, body, p)
	if err != nil {
		// The owner's plan does not fit this body (tampered upload or a
		// peer running different code). Count the miss; the full pipeline
		// replaces the bad plan with a fresh one.
		s.metrics.IncPeerPlanMiss()
		return nil, false
	}
	s.metrics.IncPeerPlanHit()
	s.plans.put(key, &planEntry{data: data})
	s.cache.put(key, e)
	return e, true
}

// peerPlan fetches the encoded plan for key from its owner, when that
// is a reachable peer other than this node, returning both the wire
// bytes (for re-banking) and the decoded, validated plan (so callers
// never pay a second decode of a multi-megabyte plan).
func (s *Server) peerPlan(ctx context.Context, key string) ([]byte, *e9patch.PatchPlan, bool) {
	if !s.clustered() {
		return nil, nil, false
	}
	owner, local := s.owner(key)
	if local {
		return nil, nil, false
	}
	if !s.health.Up(owner) {
		s.metrics.IncPeerPlanMiss()
		return nil, nil, false
	}
	data, err := s.peers.FetchPlan(ctx, owner, key)
	if err != nil {
		s.metrics.IncPeerPlanMiss()
		return nil, nil, false
	}
	p, err := e9patch.DecodePlan(data)
	if err != nil {
		s.metrics.IncPeerPlanMiss()
		return nil, nil, false
	}
	return data, p, true
}

// acceptsPlan reports whether the client asked for a plan-delta
// response (Accept: application/x-e9-plan): the serialized PatchPlan
// instead of the rewritten binary, applied client-side, cutting egress
// from ~binary-size to ~plan-size.
func acceptsPlan(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mt) == cluster.PlanContentType {
			return true
		}
	}
	return false
}

// servePlan writes a plan-delta response body. When the client accepts
// gzip the plan is compressed on the wire: the encoding is hex-in-JSON
// with highly repetitive trampoline code, so deflate routinely cuts a
// dense plan to ~10% — the difference between plan-delta egress beating
// the full binary and losing to it on branch-dense inputs.
func (s *Server) servePlan(w http.ResponseWriter, r *http.Request, data []byte, cacheStatus string) {
	s.metrics.IncPlanDelta()
	h := w.Header()
	h.Set("Content-Type", cluster.PlanContentType)
	h.Set("X-E9-Cache", cacheStatus)
	if acceptsGzip(r) {
		h.Set("Content-Encoding", "gzip")
		w.WriteHeader(http.StatusOK)
		zw := gzip.NewWriter(w)
		zw.Write(data)
		zw.Close()
		return
	}
	h.Set("Content-Length", fmt.Sprint(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// acceptsGzip reports whether the request allows a gzip-coded response.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(enc) == "gzip" {
			return true
		}
	}
	return false
}
