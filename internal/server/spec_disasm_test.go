package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	"e9patch"
)

// TestSpecDisasm covers the disasm request parameter: parsing,
// header override, canonical-key folding and config materialisation.
func TestSpecDisasm(t *testing.T) {
	spec := func(target string, hdr map[string]string) (*Spec, error) {
		req := httptest.NewRequest("POST", target, nil)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		return parseSpec(req)
	}

	// Default is linear; an explicit "linear" is the same request.
	a, err := spec("/v1/rewrite?match=jcc", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec("/v1/rewrite?match=jcc&disasm=linear", nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Canonical() != b.Canonical() {
		t.Fatal("explicit linear mode changed the cache key")
	}
	if a.Disasm != e9patch.DisasmLinear {
		t.Fatalf("default mode = %q", a.Disasm)
	}

	// A superset request is a distinct cache key: the recovered
	// instruction universe differs, so the outputs may too.
	c, err := spec("/v1/rewrite?match=jcc&disasm=superset", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Canonical() == a.Canonical() {
		t.Fatal("superset mode shares the linear cache key")
	}
	if !strings.Contains(c.Canonical(), "disasm=superset") {
		t.Fatalf("canonical key does not fold the mode: %s", c.Canonical())
	}

	// Header wins over the query value.
	d, err := spec("/v1/rewrite?match=jcc&disasm=superset", map[string]string{"X-E9-Disasm": "superset-cet"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Disasm != e9patch.DisasmSupersetCET {
		t.Fatalf("header override failed: %q", d.Disasm)
	}

	// Unknown modes are a client error at parse time.
	if _, err := spec("/v1/rewrite?match=jcc&disasm=recursive", nil); err == nil {
		t.Fatal("unknown mode accepted")
	}

	// The mode reaches the rewrite configuration.
	cfg, err := d.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Disasm != e9patch.DisasmSupersetCET {
		t.Fatalf("cfg.Disasm = %q", cfg.Disasm)
	}
}
