package server

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"e9patch"
	"e9patch/internal/cluster"
)

// swapHandler lets an httptest server start (fixing its URL) before the
// e9served node behind it exists — cluster configs need every peer URL
// up front.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "node not up", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testCluster is an in-process multi-node e9served cluster.
type testCluster struct {
	nodes []*Server
	https []*httptest.Server
	urls  []string
}

// newTestCluster starts n nodes sharing one static peer list. mutate,
// when non-nil, adjusts each node's config before construction.
func newTestCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	swaps := make([]*swapHandler, n)
	for i := 0; i < n; i++ {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		tc.https = append(tc.https, ts)
		tc.urls = append(tc.urls, ts.URL)
	}
	for i := 0; i < n; i++ {
		cfg := Config{
			Workers:  2,
			QueueLen: 16,
			Cluster: cluster.Config{
				Self:         tc.urls[i],
				Peers:        tc.urls,
				FetchTimeout: 2 * time.Second,
				Cooldown:     50 * time.Millisecond,
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv := New(cfg)
		tc.nodes = append(tc.nodes, srv)
		swaps[i].set(srv.Handler())
	}
	t.Cleanup(func() {
		for _, ts := range tc.https {
			ts.Close()
		}
		for _, srv := range tc.nodes {
			srv.Close()
		}
	})
	return tc
}

// ownerOf returns the index of the node owning the request's cache key.
func (tc *testCluster) ownerOf(t *testing.T, bin []byte, query string) int {
	t.Helper()
	spec, err := batchSpec(query)
	if err != nil {
		t.Fatal(err)
	}
	owner := tc.nodes[0].ring.Owner(cacheKey(bin, spec))
	for i, u := range tc.urls {
		if u == owner {
			return i
		}
	}
	t.Fatalf("owner %q is not a cluster node", owner)
	return -1
}

// post sends a /v1/rewrite to node i, optionally marking it as already
// routed (so the node must handle it locally instead of forwarding).
func (tc *testCluster) post(t *testing.T, i int, query string, bin []byte, routed bool, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost,
		tc.urls[i]+"/v1/rewrite?"+query, bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	if routed {
		req.Header.Set(routedHeader, "1")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

const clusterQuery = "match=jcc+%26+short&action=empty"

// TestClusterPeerPlanFetch is the core distributed property: a node
// handling a key it does not own fetches the owner's PatchPlan and
// rematerializes locally, producing bytes identical to the owner's full
// rewrite — one rewrite fleet-wide, kilobytes on the wire.
func TestClusterPeerPlanFetch(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	bin := kernelELF(t)
	owner := tc.ownerOf(t, bin, clusterQuery)

	resp, ownerOut := tc.post(t, owner, clusterQuery, bin, true, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner rewrite: %d %s", resp.StatusCode, ownerOut)
	}
	if got := resp.Header.Get("X-E9-Cache"); got != "miss" {
		t.Fatalf("owner cache status %q, want miss", got)
	}

	other := (owner + 1) % 3
	resp2, peerOut := tc.post(t, other, clusterQuery, bin, true, nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("peer rewrite: %d %s", resp2.StatusCode, peerOut)
	}
	if got := resp2.Header.Get("X-E9-Cache"); got != "peer-plan" {
		t.Fatalf("peer cache status %q, want peer-plan", got)
	}
	if !bytes.Equal(peerOut, ownerOut) {
		t.Fatal("peer plan-fetch output differs from the owner's rewrite")
	}
	if got := metricValue(t, tc.nodes[other].Handler(), "e9served_peer_plan_hits_total"); got != 1 {
		t.Fatalf("peer_plan_hits_total on fetching node = %g, want 1", got)
	}
	// One rewrite fleet-wide: the fetching node applied, never planned.
	if got := metricValue(t, tc.nodes[other].Handler(), "e9served_rewrites_total"); got != 0 {
		t.Fatalf("rewrites_total on fetching node = %g, want 0", got)
	}
}

// TestClusterForwarding verifies the front-door router: a request
// landing on a non-owner is proxied to the owner, whose response (and
// cache shard) serves it; the relay is marked with X-E9-Node.
func TestClusterForwarding(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	bin := kernelELF(t)
	owner := tc.ownerOf(t, bin, clusterQuery)
	other := (owner + 1) % 3

	resp, out := tc.post(t, other, clusterQuery, bin, false, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded rewrite: %d %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-E9-Node"); got != tc.urls[owner] {
		t.Fatalf("X-E9-Node %q, want owner %q", got, tc.urls[owner])
	}
	if got := metricValue(t, tc.nodes[other].Handler(), "e9served_forwarded_total"); got != 1 {
		t.Fatalf("forwarded_total on front door = %g, want 1", got)
	}
	if got := metricValue(t, tc.nodes[owner].Handler(), "e9served_rewrites_total"); got != 1 {
		t.Fatalf("rewrites_total on owner = %g, want 1", got)
	}
	if got := metricValue(t, tc.nodes[other].Handler(), "e9served_rewrites_total"); got != 0 {
		t.Fatalf("rewrites_total on front door = %g, want 0", got)
	}

	// The shard discipline holds: a repeat through the front door is the
	// owner's cache hit.
	resp2, _ := tc.post(t, other, clusterQuery, bin, false, nil)
	if got := resp2.Header.Get("X-E9-Cache"); got != "hit" {
		t.Fatalf("repeat cache status %q, want hit (owner shard)", got)
	}
}

// TestClusterOwnerDownFallback kills a key's owner and checks the
// other nodes keep serving that key locally — availability beats shard
// discipline — and that the forward-fallback metric records it.
func TestClusterOwnerDownFallback(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	bin := kernelELF(t)
	owner := tc.ownerOf(t, bin, clusterQuery)
	other := (owner + 1) % 3

	tc.https[owner].Close()

	resp, out := tc.post(t, other, clusterQuery, bin, false, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rewrite with owner down: %d %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-E9-Cache"); got != "miss" {
		t.Fatalf("cache status %q, want miss (local rewrite fallback)", got)
	}
	if got := metricValue(t, tc.nodes[other].Handler(), "e9served_forward_fallback_total"); got != 1 {
		t.Fatalf("forward_fallback_total = %g, want 1", got)
	}

	// While the owner's cooldown holds, the next request skips the dead
	// peer entirely (no second fallback increment) and hits locally.
	resp2, _ := tc.post(t, other, clusterQuery, bin, false, nil)
	if got := resp2.Header.Get("X-E9-Cache"); got != "hit" {
		t.Fatalf("repeat cache status %q, want local hit", got)
	}
}

// TestPlanFetchEndpoint exercises GET /internal/v1/plan/{key} directly:
// key validation, the 404 contract (never compute on demand), and the
// 200 payload being a decodable plan.
func TestPlanFetchEndpoint(t *testing.T) {
	srv := New(Config{Workers: 2, QueueLen: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(key string) *http.Response {
		resp, err := http.Get(ts.URL + cluster.PlanPath + key)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := get("not-a-key"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key: %d, want 400", resp.StatusCode)
	}
	absent := strings.Repeat("0", 64) + "-" + strings.Repeat("a", 64)
	if resp := get(absent); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent key: %d, want 404 (must not compute on demand)", resp.StatusCode)
	}

	bin := kernelELF(t)
	resp, err := http.Post(ts.URL+"/v1/rewrite?"+clusterQuery, "application/octet-stream", bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	spec, err := batchSpec(clusterQuery)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := http.Get(ts.URL + cluster.PlanPath + cacheKey(bin, spec))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(pr.Body)
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("banked key: %d, want 200", pr.StatusCode)
	}
	if ct := pr.Header.Get("Content-Type"); ct != cluster.PlanContentType {
		t.Fatalf("content type %q, want %q", ct, cluster.PlanContentType)
	}
	if _, err := e9patch.DecodePlan(data); err != nil {
		t.Fatalf("served plan does not decode: %v", err)
	}
}

// TestPlanDeltaResponse verifies the egress-saving response mode: with
// Accept: application/x-e9-plan the server ships the serialized plan,
// the client applies it locally, and the result is byte-identical to a
// full-binary response — at a fraction of the response size.
func TestPlanDeltaResponse(t *testing.T) {
	srv := New(Config{Workers: 2, QueueLen: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bin := kernelELF(t)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/rewrite?"+clusterQuery, bytes.NewReader(bin))
	req.Header.Set("Accept", cluster.PlanContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	planBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan-delta: %d %s", resp.StatusCode, planBytes)
	}
	if ct := resp.Header.Get("Content-Type"); ct != cluster.PlanContentType {
		t.Fatalf("content type %q, want %q", ct, cluster.PlanContentType)
	}

	p, err := e9patch.DecodePlan(planBytes)
	if err != nil {
		t.Fatalf("plan-delta body does not decode: %v", err)
	}
	applied, err := e9patch.ApplyContext(context.Background(), bin, p)
	if err != nil {
		t.Fatalf("client-side apply: %v", err)
	}

	full, err := http.Post(ts.URL+"/v1/rewrite?"+clusterQuery, "application/octet-stream", bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	fullOut, _ := io.ReadAll(full.Body)
	full.Body.Close()
	if !bytes.Equal(applied.Output, fullOut) {
		t.Fatal("client-side apply of the plan-delta differs from the served binary")
	}
	if len(planBytes) >= len(fullOut) {
		t.Fatalf("plan-delta is not smaller than the binary response (%d >= %d)", len(planBytes), len(fullOut))
	}
}

// TestPlanDeltaGzip pins the wire compression of plan-delta responses:
// a client that negotiates gzip gets a Content-Encoding: gzip body
// that is smaller than the identity encoding and gunzips to the same
// plan.
func TestPlanDeltaGzip(t *testing.T) {
	srv := New(Config{Workers: 2, QueueLen: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bin := kernelELF(t)
	fetch := func(gz bool) (*http.Response, []byte) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/rewrite?"+clusterQuery, bytes.NewReader(bin))
		req.Header.Set("Accept", cluster.PlanContentType)
		if gz {
			// Setting Accept-Encoding by hand disables the transport's
			// transparent decompression: the body read here is wire bytes.
			req.Header.Set("Accept-Encoding", "gzip")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan-delta (gzip=%v): %d %s", gz, resp.StatusCode, body)
		}
		return resp, body
	}

	plainResp, plain := fetch(false)
	if enc := plainResp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("identity response carries Content-Encoding %q", enc)
	}
	zResp, wire := fetch(true)
	if enc := zResp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("gzip-negotiated response carries Content-Encoding %q", enc)
	}
	if len(wire) >= len(plain) {
		t.Fatalf("gzip wire body is not smaller (%d >= %d)", len(wire), len(plain))
	}
	zr, err := gzip.NewReader(bytes.NewReader(wire))
	if err != nil {
		t.Fatalf("wire body is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, plain) {
		t.Fatal("gzip body does not decompress to the identity body")
	}
	if _, err := e9patch.DecodePlan(raw); err != nil {
		t.Fatalf("decompressed plan does not decode: %v", err)
	}
}

// batchLine posts one /v1/batch request and decodes the NDJSON results.
func batchLines(t *testing.T, url string, items []batchItem, tenant string) (*http.Response, []batchResult) {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, it := range items {
		if err := enc.Encode(it); err != nil {
			t.Fatal(err)
		}
	}
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/batch", &buf)
	if tenant != "" {
		req.Header.Set("X-E9-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var results []batchResult
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var res batchResult
		if err := dec.Decode(&res); err != nil {
			t.Fatalf("result line %d: %v", len(results), err)
		}
		results = append(results, res)
	}
	return resp, results
}

// TestBatchEndToEnd runs a mixed batch on one node: two distinct valid
// rewrites plus one hostile binary. Each valid item must match the
// equivalent /v1/rewrite output; the hostile item must fail alone, as a
// classified per-item status, without sinking the batch.
func TestBatchEndToEnd(t *testing.T) {
	srv := New(Config{Workers: 2, QueueLen: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bin := kernelELF(t)
	items := []batchItem{
		{ID: "a", Query: clusterQuery, Binary: bin},
		{ID: "b", Query: "match=call&action=empty", Binary: bin},
		{ID: "bad", Query: clusterQuery, Binary: []byte("not an ELF at all")},
	}
	resp, results := batchLines(t, ts.URL, items, "")
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}
	if len(results) != len(items) {
		t.Fatalf("got %d result lines, want %d", len(results), len(items))
	}

	byID := map[string]batchResult{}
	for _, r := range results {
		byID[r.ID] = r
	}
	for _, id := range []string{"a", "b"} {
		r, ok := byID[id]
		if !ok {
			t.Fatalf("no result line for item %q", id)
		}
		if r.Status != http.StatusOK {
			t.Fatalf("item %q: status %d (%s)", id, r.Status, r.Error)
		}
		if len(r.Output) == 0 {
			t.Fatalf("item %q: empty output", id)
		}
	}
	if !bytes.Equal(byID["a"].Output, directRewrite(t, bin, "jcc & short")) {
		t.Fatal("batch item output differs from a direct rewrite")
	}
	bad := byID["bad"]
	if bad.Status < 400 || bad.Status >= 500 {
		t.Fatalf("hostile item: status %d, want a 4xx", bad.Status)
	}
	if bad.Error == "" {
		t.Fatal("hostile item: no error message")
	}

	if got := metricValue(t, srv.Handler(), "e9served_batches_total"); got != 1 {
		t.Fatalf("batches_total = %g, want 1", got)
	}
}

func directRewrite(t *testing.T, bin []byte, match string) []byte {
	t.Helper()
	sel, err := e9patch.SelectMatch(match)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e9patch.Rewrite(bin, e9patch.Config{Select: sel})
	if err != nil {
		t.Fatal(err)
	}
	return res.Output
}

// TestBatchWantPlan checks the plan-delta artifact inside a batch: a
// want=plan item returns the encoded plan, and applying it client-side
// reproduces the binary a want=binary item returns.
func TestBatchWantPlan(t *testing.T) {
	srv := New(Config{Workers: 2, QueueLen: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bin := kernelELF(t)
	_, results := batchLines(t, ts.URL, []batchItem{
		{ID: "bin", Query: clusterQuery, Binary: bin},
		{ID: "plan", Query: clusterQuery, Binary: bin, Want: "plan"},
	}, "")
	byID := map[string]batchResult{}
	for _, r := range results {
		byID[r.ID] = r
	}
	pr := byID["plan"]
	if pr.Status != http.StatusOK {
		t.Fatalf("plan item: status %d (%s)", pr.Status, pr.Error)
	}
	if len(pr.Plan) == 0 || len(pr.Output) != 0 {
		t.Fatalf("plan item: want plan-only payload, got %d plan / %d output bytes", len(pr.Plan), len(pr.Output))
	}
	p, err := e9patch.DecodePlan(pr.Plan)
	if err != nil {
		t.Fatalf("batch plan does not decode: %v", err)
	}
	applied, err := e9patch.ApplyContext(context.Background(), bin, p)
	if err != nil {
		t.Fatalf("client-side apply: %v", err)
	}
	if !bytes.Equal(applied.Output, byID["bin"].Output) {
		t.Fatal("applied batch plan differs from the batch binary result")
	}
}

// TestBatchValidation covers the request-shape rejections: item count
// and body caps, unknown artifacts, empty batches, bad specs.
func TestBatchValidation(t *testing.T) {
	srv := New(Config{Workers: 1, QueueLen: 4, MaxBatchItems: 2, MaxBodyBytes: 1 << 20})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	item := `{"id":"x","query":"match=jcc","binary":"AAAA"}`

	if resp := post(""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %d, want 400", resp.StatusCode)
	}
	if resp := post(strings.Repeat(item+"\n", 3)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("too many items: %d, want 413", resp.StatusCode)
	}
	if resp := post(`{"id":"x","query":"match=jcc","binary":"AAAA","want":"carrier-pigeon"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown want: %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"id":"x","query":"match=%GG","binary":"AAAA"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unparsable query: %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"id":"x","query":"spec=on+nonsense+)(+do+what","binary":"AAAA"}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad spec program: %d, want 422", resp.StatusCode)
	}
	if resp := post(`{"id":"x","query":"match=jcc"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing binary: %d, want 400", resp.StatusCode)
	}
}

// TestBatchTenantQuota pins the per-tenant fan-out bound: with a
// 1-slot quota, a tenant's items run strictly one at a time even when
// the pool has room, while a second tenant proceeds in parallel.
func TestBatchTenantQuota(t *testing.T) {
	srv := New(Config{Workers: 4, QueueLen: 16, BatchTenantConcurrency: 1})
	var (
		mu      sync.Mutex
		cur     = map[string]int{}
		peak    = map[string]int{}
		release = make(chan struct{})
	)
	srv.rewrite = func(ctx context.Context, binary []byte, spec *Spec) (*e9patch.Result, error) {
		tenant := string(binary[:1]) // first byte names the tenant in this stub
		mu.Lock()
		cur[tenant]++
		if cur[tenant] > peak[tenant] {
			peak[tenant] = cur[tenant]
		}
		mu.Unlock()
		<-release
		mu.Lock()
		cur[tenant]--
		mu.Unlock()
		return &e9patch.Result{Output: []byte("out")}, nil
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	items := func(tenant string) []batchItem {
		out := make([]batchItem, 3)
		for i := range out {
			out[i] = batchItem{
				ID:     fmt.Sprintf("%s%d", tenant, i),
				Query:  "match=jcc",
				Binary: []byte(fmt.Sprintf("%s-binary-%d", tenant, i)),
			}
		}
		return out
	}
	var wg sync.WaitGroup
	results := make([][]batchResult, 2)
	for i, tenant := range []string{"a", "b"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, results[i] = batchLines(t, ts.URL, items(tenant), tenant)
		}()
	}
	// Let both tenants reach their steady state, then drain.
	time.Sleep(300 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, tenant := range []string{"a", "b"} {
		for _, r := range results[i] {
			if r.Status != http.StatusOK {
				t.Fatalf("tenant %s item %s: status %d (%s)", tenant, r.ID, r.Status, r.Error)
			}
		}
		if peak[tenant] > 1 {
			t.Fatalf("tenant %s peak concurrency %d, want <= 1", tenant, peak[tenant])
		}
	}
	// Both tenants were in flight at once: the quota is per tenant, not
	// global (peak 1 each with 3 items only drains in time if so).
	if peak["a"] == 0 || peak["b"] == 0 {
		t.Fatal("expected both tenants to run")
	}
}

// clusterHostileCorpus loads the checked-in hostile ELF corpus (shared
// with the top-level fuzz targets).
func clusterHostileCorpus(t *testing.T) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "hostile", "*.bin"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("hostile corpus missing: %v (%d files)", err, len(paths))
	}
	corpus := make(map[string][]byte, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		corpus[filepath.Base(p)] = data
	}
	return corpus
}

// TestClusterChaosBatch is the clustercheck gate: a 3-node cluster runs
// a batch mixing valid binaries with the whole hostile corpus, one node
// is killed while the batch is in flight, and every item must still
// come back with a non-5xx status — hostile items as classified 4xx,
// valid items as 200s byte-identical to direct rewrites.
func TestClusterChaosBatch(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	bin := kernelELF(t)

	// Warm the cluster so plans exist on their owners: peer plan-fetches
	// during the batch then actually exercise the fetch path, and the
	// killed node takes real shard state down with it.
	for i := range tc.nodes {
		resp, out := tc.post(t, i, clusterQuery, bin, false, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup via node %d: %d %s", i, resp.StatusCode, out)
		}
	}

	var items []batchItem
	valid := map[string]bool{}
	for i := 0; i < 6; i++ {
		// Distinct specs shard the keys across different owners.
		id := fmt.Sprintf("valid-%d", i)
		items = append(items, batchItem{
			ID:     id,
			Query:  fmt.Sprintf("match=jcc+%%26+short&action=empty&M=%d", i+1),
			Binary: bin,
		})
		valid[id] = true
	}
	for name, data := range clusterHostileCorpus(t) {
		items = append(items, batchItem{ID: "hostile-" + name, Query: clusterQuery, Binary: data})
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, it := range items {
		enc.Encode(it)
	}
	req, _ := http.NewRequest(http.MethodPost, tc.urls[0]+"/v1/batch", &buf)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}

	// Kill a node the moment the first result streams back: the rest of
	// the batch runs against a degraded cluster.
	dec := json.NewDecoder(resp.Body)
	var results []batchResult
	killed := false
	for dec.More() {
		var r batchResult
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("result line %d: %v", len(results), err)
		}
		results = append(results, r)
		if !killed {
			tc.https[2].Close()
			killed = true
		}
	}
	if !killed {
		t.Fatal("batch produced no results before the kill point")
	}
	if len(results) != len(items) {
		t.Fatalf("got %d results, want %d (batch must complete despite the node kill)", len(results), len(items))
	}
	// The containment property: nothing — not the node kill, not any
	// hostile binary — may surface as a 5xx. Hostile items land as
	// classified 4xx or (for the tolerated variants) succeed; the exact
	// split is the top-level hostile suite's concern, not this test's.
	for _, r := range results {
		if r.Status >= 500 {
			t.Errorf("item %s: status %d — a node kill must never surface as a 5xx (%s)", r.ID, r.Status, r.Error)
		}
		if valid[r.ID] && r.Status != http.StatusOK {
			t.Errorf("valid item %s: status %d (%s)", r.ID, r.Status, r.Error)
		}
	}
}

// TestClusterKeyValidation double-checks validCacheKey against shapes
// an attacker could aim at the internal endpoint.
func TestClusterKeyValidation(t *testing.T) {
	good := strings.Repeat("ab12", 16) + "-" + strings.Repeat("cd34", 16)
	cases := map[string]bool{
		good:                     true,
		strings.ToUpper(good):    false, // keys are lowercase hex
		strings.Repeat("0", 64):  false, // no separator
		"..%2f..%2fetc%2fpasswd": false,
		strings.Repeat("0", 64) + "-" + strings.Repeat("g", 64): false,
		"": false,
	}
	for key, want := range cases {
		if got := validCacheKey(key); got != want {
			t.Errorf("validCacheKey(%q) = %v, want %v", key, got, want)
		}
	}
	if _, err := url.Parse(cluster.PlanPath + good); err != nil {
		t.Fatalf("canonical key does not round-trip a URL: %v", err)
	}
}
