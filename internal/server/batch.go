package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"e9patch"
	"e9patch/internal/e9err"
	"e9patch/internal/work"
)

// batchItem is one line of a /v1/batch request body (NDJSON): a binary
// plus the same parameters /v1/rewrite takes, carried as a URL query
// string so the two endpoints cannot drift apart on spec semantics or
// cache-key folding.
type batchItem struct {
	// ID labels the item in the streamed results; it is the client's
	// correlation handle and is echoed verbatim.
	ID string `json:"id"`
	// Query is the /v1/rewrite parameter string, e.g.
	// "match=jcc+%26+short&action=empty&disasm=superset".
	Query string `json:"query"`
	// Binary is the input ELF, base64 (standard encoding).
	Binary []byte `json:"binary"`
	// Want selects the response artifact: "binary" (default) or "plan"
	// (plan-delta: the serialized PatchPlan, applied client-side).
	Want string `json:"want"`
}

// batchResult is one line of the streamed NDJSON response body.
// Results stream in completion order, not submission order — ID is the
// join key. Status carries the same HTTP code the equivalent
// /v1/rewrite call would have answered.
type batchResult struct {
	ID     string          `json:"id"`
	Status int             `json:"status"`
	Cache  string          `json:"cache,omitempty"`
	Stats  json.RawMessage `json:"stats,omitempty"`
	Output []byte          `json:"output,omitempty"`
	Plan   []byte          `json:"plan,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// handleBatch serves POST /v1/batch: one job rewriting N binaries in a
// single request — the fleet-shaped workload (a distro rebuild, a
// Chrome-sized package set) that would otherwise cost N round trips
// and N queue slots. Items fan out through the server-wide worker
// budget (internal/work leases, so a batch degrades toward sequential
// under load instead of oversubscribing), each tenant's in-flight
// items are capped by BatchTenantConcurrency, and results stream back
// as NDJSON the moment each item finishes.
//
// Per-item failures are per-item result lines, never a failed batch: a
// hostile binary in position 3 must not cost the other N-1 rewrites.
// Cluster note: items are never forwarded whole — a non-owned item
// tries a peer plan-fetch first, so only kilobytes cross the wire, and
// a dead owner degrades to a local rewrite (the chaos gate in
// clustercheck asserts a mid-batch node kill completes with zero 5xx).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.AddInflight(1)
	code := "200"
	defer func() {
		s.metrics.AddInflight(-1)
		s.metrics.IncRequest(code)
		s.metrics.Observe(time.Since(start).Seconds())
	}()
	fail := func(status int, msg string) {
		code = fmt.Sprint(status)
		http.Error(w, msg, status)
	}

	tenant := r.Header.Get("X-E9-Tenant")

	// Parse and validate every item before doing any work: a malformed
	// batch is a 4xx, not a half-executed job.
	type parsed struct {
		item batchItem
		spec *Spec
		key  string
	}
	var items []parsed
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes))
	for {
		var it batchItem
		if err := dec.Decode(&it); err == io.EOF {
			break
		} else if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				fail(http.StatusRequestEntityTooLarge,
					fmt.Sprintf("batch exceeds %d bytes", s.cfg.MaxBatchBytes))
				return
			}
			fail(http.StatusBadRequest, fmt.Sprintf("batch item %d: %v", len(items), err))
			return
		}
		if len(items) >= s.cfg.MaxBatchItems {
			fail(http.StatusRequestEntityTooLarge,
				fmt.Sprintf("batch exceeds %d items", s.cfg.MaxBatchItems))
			return
		}
		if len(it.Binary) == 0 {
			fail(http.StatusBadRequest, fmt.Sprintf("batch item %q: empty binary", it.ID))
			return
		}
		if int64(len(it.Binary)) > s.cfg.MaxBodyBytes {
			fail(http.StatusRequestEntityTooLarge,
				fmt.Sprintf("batch item %q: binary exceeds %d bytes", it.ID, s.cfg.MaxBodyBytes))
			return
		}
		switch it.Want {
		case "", "binary", "plan":
		default:
			fail(http.StatusBadRequest, fmt.Sprintf("batch item %q: want must be binary or plan, got %q", it.ID, it.Want))
			return
		}
		spec, err := batchSpec(it.Query)
		if err != nil {
			// Spec-language programs keep their 422 classification; any
			// other parameter problem is a malformed item.
			if errors.Is(err, e9patch.ErrBadSpec) {
				s.metrics.IncRejected(e9err.ReasonBadSpec)
				fail(http.StatusUnprocessableEntity, fmt.Sprintf("batch item %q: %v", it.ID, err))
				return
			}
			fail(http.StatusBadRequest, fmt.Sprintf("batch item %q: %v", it.ID, err))
			return
		}
		items = append(items, parsed{item: it, spec: spec, key: cacheKey(it.Binary, spec)})
	}
	if len(items) == 0 {
		fail(http.StatusBadRequest, "empty batch: POST NDJSON items {id, query, binary}")
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var outMu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(res batchResult) {
		outMu.Lock()
		defer outMu.Unlock()
		enc.Encode(res)
		if flusher != nil {
			flusher.Flush()
		}
	}

	ctx := r.Context()
	width := min(s.cfg.Workers, len(items))
	work.ForEach(s.shards, width, len(items), func(i int) {
		it := items[i]
		res := s.runBatchItem(ctx, tenant, it.item, it.spec, it.key)
		outcome := "ok"
		if res.Status != http.StatusOK {
			outcome = "error"
		}
		s.metrics.IncBatchItem(outcome)
		emit(res)
	})
	s.metrics.IncBatch()
}

// batchSpec parses an item's query string through the same parser as
// /v1/rewrite, so parameter semantics — including the disasm and
// payload cache-key folding — cannot diverge between the endpoints.
func batchSpec(query string) (*Spec, error) {
	u, err := url.Parse("/v1/rewrite?" + query)
	if err != nil {
		return nil, err
	}
	return parseSpec(&http.Request{URL: u, Header: http.Header{}})
}

// runBatchItem resolves one batch item under the tenant quota and maps
// the outcome onto a result line carrying /v1/rewrite's status codes.
func (s *Server) runBatchItem(ctx context.Context, tenant string, it batchItem, spec *Spec, key string) batchResult {
	out := batchResult{ID: it.ID}
	if err := s.tenants.acquire(ctx, tenant); err != nil {
		out.Status = 499
		out.Error = "batch abandoned before the item ran"
		return out
	}
	defer s.tenants.release(tenant)

	if it.Want == "plan" {
		data, status, err := s.resolvePlan(ctx, key, it.Binary, spec)
		if err != nil {
			return batchFailure(out, err)
		}
		out.Status = http.StatusOK
		out.Cache = status
		out.Plan = data
		return out
	}

	e, status, err := s.resolveEntry(ctx, key, it.Binary, spec)
	if err != nil {
		return batchFailure(out, err)
	}
	out.Status = http.StatusOK
	out.Cache = status
	out.Stats = json.RawMessage(e.statsJSON)
	out.Output = e.out
	return out
}

// batchFailure maps a classified pipeline failure onto an item result,
// mirroring failClassified's status mapping for the HTTP endpoints.
func batchFailure(out batchResult, err error) batchResult {
	status := http.StatusUnprocessableEntity
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499
	case errors.Is(err, e9patch.ErrResourceLimit):
		var ee *e9patch.Error
		if errors.As(err, &ee) {
			switch ee.Reason {
			case e9err.ReasonInputTooLarge, e9err.ReasonTextTooLarge, e9err.ReasonMessageTooLarge:
				status = http.StatusRequestEntityTooLarge
			case e9err.ReasonPhaseDeadline:
				status = http.StatusGatewayTimeout
			}
		}
	case errors.Is(err, e9patch.ErrInternal):
		status = http.StatusInternalServerError
	}
	out.Status = status
	out.Error = err.Error()
	return out
}

// resolveEntry obtains the rewrite result for one key through the full
// tier ladder — result cache, local plan cache, peer plan-fetch,
// singleflight full rewrite — running the rewrite inline on the
// calling goroutine (batch items already hold a bounded fan-out slot;
// queueing them through the pool again could deadlock a full queue
// against its own items).
func (s *Server) resolveEntry(ctx context.Context, key string, body []byte, spec *Spec) (*cacheEntry, string, error) {
	if e, ok := s.cache.get(key); ok {
		s.metrics.IncHit()
		return e, "hit", nil
	}
	s.metrics.IncMiss()
	if pe, ok := s.plans.get(key); ok {
		if e, err := s.rematerialize(ctx, body, pe); err == nil {
			s.metrics.IncPlanHit()
			s.cache.put(key, e)
			return e, "plan", nil
		}
	}
	s.metrics.IncPlanMiss()
	if e, ok := s.peerRematerialize(ctx, key, body); ok {
		return e, "peer-plan", nil
	}
	e, shared, err := s.flights.do(ctx, key, s.cfg.Timeout,
		func(jobCtx context.Context, finish func(*cacheEntry, error)) error {
			s.metrics.IncRewrite()
			start := time.Now()
			res, rerr := s.runRewrite(jobCtx, body, spec)
			s.observeRewrite(time.Since(start))
			if rerr != nil {
				finish(nil, rerr)
				return nil
			}
			ce := entryFromResult(res)
			s.cache.put(key, ce)
			finish(ce, nil)
			return nil
		})
	status := "miss"
	if shared {
		s.metrics.IncCoalesced()
		status = "coalesced"
	}
	return e, status, err
}

// resolvePlan is resolveEntry's plan-delta sibling: it returns the
// encoded plan for one key, fetching from the owner or planning
// locally as needed.
func (s *Server) resolvePlan(ctx context.Context, key string, body []byte, spec *Spec) ([]byte, string, error) {
	if pe, ok := s.plans.get(key); ok {
		s.metrics.IncPlanHit()
		return pe.data, "plan", nil
	}
	s.metrics.IncPlanMiss()
	if data, _, ok := s.peerPlan(ctx, key); ok {
		s.metrics.IncPeerPlanHit()
		s.plans.put(key, &planEntry{data: data})
		return data, "peer-plan", nil
	}
	_, status, err := s.resolveEntry(ctx, key, body, spec)
	if err != nil {
		return nil, "", err
	}
	pe, ok := s.plans.get(key)
	if !ok {
		return nil, "", e9err.Internal("server", "no plan banked for key after rewrite")
	}
	return pe.data, status, nil
}

// tenantLimiter caps concurrent batch items per tenant. Slots are
// tracked per live tenant only — the map entry exists while acquirers
// (running or waiting) reference it, so hostile tenant-name churn
// cannot grow it without holding work in flight.
type tenantLimiter struct {
	mu    sync.Mutex
	max   int
	slots map[string]*tenantSlot
}

type tenantSlot struct {
	sem  chan struct{}
	refs int
}

func newTenantLimiter(max int) *tenantLimiter {
	if max <= 0 {
		max = 1
	}
	return &tenantLimiter{max: max, slots: make(map[string]*tenantSlot)}
}

// acquire blocks until the tenant has a free slot or ctx is done.
func (t *tenantLimiter) acquire(ctx context.Context, tenant string) error {
	t.mu.Lock()
	slot, ok := t.slots[tenant]
	if !ok {
		slot = &tenantSlot{sem: make(chan struct{}, t.max)}
		t.slots[tenant] = slot
	}
	slot.refs++
	t.mu.Unlock()

	select {
	case slot.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		t.drop(tenant, slot)
		return ctx.Err()
	}
}

// release frees the caller's slot.
func (t *tenantLimiter) release(tenant string) {
	t.mu.Lock()
	slot := t.slots[tenant]
	t.mu.Unlock()
	if slot == nil {
		return // release without acquire: a bug, but never a hang
	}
	<-slot.sem
	t.drop(tenant, slot)
}

// drop decrements a slot's refcount and deletes idle slots.
func (t *tenantLimiter) drop(tenant string, slot *tenantSlot) {
	t.mu.Lock()
	slot.refs--
	if slot.refs <= 0 && t.slots[tenant] == slot {
		delete(t.slots, tenant)
	}
	t.mu.Unlock()
}
