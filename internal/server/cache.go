package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// cacheEntry is one cached rewrite outcome: the output binary plus the
// pre-serialised stats JSON served in the response header.
type cacheEntry struct {
	out       []byte
	statsJSON []byte
}

// size is the entry's byte charge against the cache budget.
func (e *cacheEntry) size() int64 { return int64(len(e.out) + len(e.statsJSON)) }

// planEntry is one cached patch plan in its encoded (JSON) form — the
// second, cheaper cache tier: a plan is a few kilobytes of decisions
// where the result entry is the whole output binary, so the plan tier
// retains far more history per byte and rematerializes evicted results
// without redoing any tactic search.
type planEntry struct {
	data []byte
}

func (e *planEntry) size() int64 { return int64(len(e.data)) }

// cacheKey derives the content address of a rewrite: the SHA-256 of
// the input binary joined with the SHA-256 of the canonicalised
// request spec. Identical bytes + identical effective config → same
// key, regardless of parameter spelling or ordering. Both cache tiers
// share this key space.
func cacheKey(body []byte, spec *Spec) string {
	hb := sha256.Sum256(body)
	hs := sha256.Sum256([]byte(spec.Canonical()))
	return hex.EncodeToString(hb[:]) + "-" + hex.EncodeToString(hs[:])
}

// sized is the charge contract cache entries implement.
type sized interface{ size() int64 }

// lruItem pairs a stored value with its key for eviction bookkeeping.
type lruItem[E sized] struct {
	key string
	val E
}

// lruCache is a byte-budgeted LRU keyed by content address. Eviction
// is by total byte charge, not entry count: one huge entry can evict
// many small ones, never the reverse surprise. It is generic over the
// entry type so the result tier (output binaries) and the plan tier
// (encoded plans) share one implementation with separate budgets.
type lruCache[E sized] struct {
	mu        sync.Mutex
	budget    int64
	used      int64
	ll        *list.List // front = most recently used; values are *lruItem[E]
	items     map[string]*list.Element
	evictions uint64
}

func newLRUCache[E sized](budget int64) *lruCache[E] {
	return &lruCache[E]{budget: budget, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the entry for key, refreshing its recency.
func (c *lruCache[E]) get(key string) (E, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero E
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem[E]).val, true
}

// put inserts (or refreshes) an entry, evicting least-recently-used
// entries until the byte budget holds. Entries larger than the whole
// budget are not cached, and a zero or negative budget disables the
// cache entirely.
func (c *lruCache[E]) put(key string, e E) {
	if c.budget <= 0 || e.size() > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		it := el.Value.(*lruItem[E])
		c.used += e.size() - it.val.size()
		it.val = e
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruItem[E]{key: key, val: e})
		c.used += e.size()
	}
	for c.used > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*lruItem[E])
		c.ll.Remove(back)
		delete(c.items, victim.key)
		c.used -= victim.val.size()
		c.evictions++
	}
}

// stats reports entry count, used bytes and lifetime evictions.
func (c *lruCache[E]) stats() (entries int, bytes int64, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items), c.used, c.evictions
}
