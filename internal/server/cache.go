package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// cacheEntry is one cached rewrite outcome: the output binary plus the
// pre-serialised stats JSON served in the response header.
type cacheEntry struct {
	key       string
	out       []byte
	statsJSON []byte
}

// size is the entry's byte charge against the cache budget.
func (e *cacheEntry) size() int64 { return int64(len(e.out) + len(e.statsJSON)) }

// cacheKey derives the content address of a rewrite: the SHA-256 of
// the input binary joined with the SHA-256 of the canonicalised
// request spec. Identical bytes + identical effective config → same
// key, regardless of parameter spelling or ordering.
func cacheKey(body []byte, spec *Spec) string {
	hb := sha256.Sum256(body)
	hs := sha256.Sum256([]byte(spec.Canonical()))
	return hex.EncodeToString(hb[:]) + "-" + hex.EncodeToString(hs[:])
}

// lruCache is a byte-budgeted LRU over rewrite results. Eviction is by
// total byte charge, not entry count: one huge binary can evict many
// small ones, never the reverse surprise.
type lruCache struct {
	mu        sync.Mutex
	budget    int64
	used      int64
	ll        *list.List // front = most recently used; values are *cacheEntry
	items     map[string]*list.Element
	evictions uint64
}

func newLRUCache(budget int64) *lruCache {
	return &lruCache{budget: budget, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the entry for key, refreshing its recency.
func (c *lruCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put inserts (or refreshes) an entry, evicting least-recently-used
// entries until the byte budget holds. Entries larger than the whole
// budget are not cached.
func (c *lruCache) put(e *cacheEntry) {
	if e.size() > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		c.used += e.size() - el.Value.(*cacheEntry).size()
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.items[e.key] = c.ll.PushFront(e)
		c.used += e.size()
	}
	for c.used > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, victim.key)
		c.used -= victim.size()
		c.evictions++
	}
}

// stats reports entry count, used bytes and lifetime evictions.
func (c *lruCache) stats() (entries int, bytes int64, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items), c.used, c.evictions
}
