package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"e9patch"
	"e9patch/internal/patch"
)

// v2Session builds a size-framed protocol stream for elf with the given
// extra message lines between binary and emit.
func v2Session(elf []byte, pre []string, mid []string) []byte {
	var b bytes.Buffer
	for _, m := range pre {
		b.WriteString(m + "\n")
	}
	fmt.Fprintf(&b, `{"method":"binary","params":{"size":%d}}`+"\n", len(elf))
	b.Write(elf)
	b.WriteByte('\n')
	for _, m := range mid {
		b.WriteString(m + "\n")
	}
	b.WriteString(`{"method":"emit"}` + "\n")
	return b.Bytes()
}

// TestStreamEndpoint drives /v2/rewrite with a full session and checks
// the response body is byte-identical to an in-process rewrite of the
// same binary and configuration.
func TestStreamEndpoint(t *testing.T) {
	elf := kernelELF(t)
	srv := New(Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	session := v2Session(elf,
		[]string{`{"method":"option","params":{"b0Fallback":true,"granularity":2}}`},
		[]string{
			`{"method":"patch","params":{"match":"jcc"}}`,
			`{"method":"patch","params":{"match":"call"}}`,
		})
	resp, err := http.Post(ts.URL+"/v2/rewrite", "application/x-ndjson", bytes.NewReader(session))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if resp.Header.Get("X-E9-Cache") != "stream" {
		t.Fatalf("X-E9-Cache = %q, want stream", resp.Header.Get("X-E9-Cache"))
	}
	var stats rewriteStats
	if err := json.Unmarshal([]byte(resp.Header.Get("X-E9-Stats")), &stats); err != nil {
		t.Fatalf("bad X-E9-Stats header: %v", err)
	}
	if stats.OutputSize != len(got) {
		t.Fatalf("stats report %d output bytes, body has %d", stats.OutputSize, len(got))
	}

	sel, err := e9patch.SelectMatch("jcc | call")
	if err != nil {
		t.Fatal(err)
	}
	want, err := e9patch.Rewrite(elf, e9patch.Config{
		Select:      sel,
		Granularity: 2,
		Patch:       patch.Options{B0Fallback: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Output) {
		t.Fatalf("streamed output (%d bytes) differs from direct rewrite (%d bytes)",
			len(got), len(want.Output))
	}
	if n := metricValue(t, srv.Handler(), "e9served_streams_total"); n != 1 {
		t.Fatalf("e9served_streams_total = %v, want 1", n)
	}
}

// TestStreamEndpointChunked sends the session over a pipe with no
// Content-Length — chunked transfer encoding — feeding messages after
// the binary is already server-side, the browser-class driving shape.
func TestStreamEndpointChunked(t *testing.T) {
	elf := kernelELF(t)
	srv := New(Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		defer pw.Close()
		if _, err := fmt.Fprintf(pw, `{"method":"binary","params":{"size":%d}}`+"\n", len(elf)); err != nil {
			done <- err
			return
		}
		pw.Write(elf)
		pw.Write([]byte("\n"))
		// The binary is parsed and disassembled before these arrive.
		time.Sleep(50 * time.Millisecond)
		io.WriteString(pw, `{"method":"patch","params":{"app":"jumps"}}`+"\n")
		io.WriteString(pw, `{"method":"emit"}`+"\n")
		done <- nil
	}()

	resp, err := http.Post(ts.URL+"/v2/rewrite", "application/x-ndjson", pr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("writing session: %v", werr)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	want, err := e9patch.Rewrite(elf, e9patch.Config{Select: e9patch.SelectJumps})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Output) {
		t.Fatal("chunked streamed output differs from direct rewrite")
	}
}

// TestStreamEndpointErrors maps protocol and pipeline failures onto
// HTTP statuses: broken streams are 400s, oversized ones 413, bad
// binaries 422 — and none of them take the server down.
func TestStreamEndpointErrors(t *testing.T) {
	elf := kernelELF(t)
	srv := New(Config{Workers: 1, MaxBodyBytes: int64(len(elf) + 4096)})
	defer srv.Close()
	h := srv.Handler()

	b64 := base64.StdEncoding.EncodeToString(elf)
	for name, tc := range map[string]struct {
		stream string
		status int
	}{
		"empty":             {"", http.StatusBadRequest},
		"no-emit":           {`{"method":"option","params":{"granularity":2}}` + "\n", http.StatusBadRequest},
		"patch-first":       {`{"method":"patch","params":{"app":"jumps"}}` + "\n", http.StatusBadRequest},
		"bad-json":          {"{nope\n", http.StatusBadRequest},
		"unknown-method":    {`{"method":"transmogrify"}` + "\n", http.StatusBadRequest},
		"filename-denied":   {`{"method":"binary","params":{"filename":"/etc/passwd"}}` + "\n", http.StatusBadRequest},
		"output-denied":     {fmt.Sprintf(`{"method":"binary","params":{"data":%q}}`+"\n", b64) + `{"method":"emit","params":{"output":"/tmp/x"}}` + "\n", http.StatusBadRequest},
		"not-an-elf":        {`{"method":"binary","params":{"data":"bm90IGFuIGVsZg=="}}` + "\n", http.StatusUnprocessableEntity},
		"oversized-framed":  {fmt.Sprintf(`{"method":"binary","params":{"size":%d}}`+"\n", len(elf)*10), http.StatusRequestEntityTooLarge},
		"oversized-message": {`{"method":"patch","params":{"addrs":[` + strings.Repeat("1,", 1<<20) + "1]}}\n", http.StatusRequestEntityTooLarge},
	} {
		t.Run(name, func(t *testing.T) {
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("POST", "/v2/rewrite", strings.NewReader(tc.stream)))
			if rr.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", rr.Code, tc.status, rr.Body.String())
			}
		})
	}
}
